package parsge

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// This file implements session-level observability: a Target aggregates
// what every query it served did — how many, how long, and crucially
// *which preprocessing plan* the adaptive scheduler resolved for each —
// into a PlanHistogram, so a long-running service can see the scheduler
// behave (or misbehave) in production instead of only in per-query
// Result fields that nothing collects. Target.Stats() returns a
// consistent snapshot; the service layer and sgeserve's /stats endpoint
// build on it.

// PlanBucket aggregates every query whose preprocessing resolved to one
// filter plan (bucketed by the plan's String rendering, e.g.
// "nlf+ac:adaptive:1" or "ac:fixpoint+inducedAC") at one target
// mutation epoch. On an immutable target all buckets carry Epoch 0;
// after ApplyUpdates, traffic against the updated graph lands in fresh
// buckets, so /stats distinguishes pre- and post-mutation behavior
// instead of silently aliasing them.
type PlanBucket struct {
	// Plan is the bucket key: the PlanInfo.String() rendering.
	Plan string
	// Epoch is the target mutation epoch the bucket's queries ran
	// against.
	Epoch uint64
	// Count is the number of queries that resolved to this plan and ran
	// to completion. Truncated runs (timed out or aborted) are counted
	// separately — see Truncated — so mean costs derived from this bucket
	// are not biased optimistic by partial timings.
	Count int64
	// UnaryTime, ACTime and InducedACTime are summed over the bucket's
	// queries, so Time/Count gives the mean per-filter cost of the plan.
	UnaryTime, ACTime, InducedACTime time.Duration
	// MatchTime is the summed search wall time of the bucket's *completed*
	// queries; MatchTime/Count is the plan's historical mean match cost —
	// the signal the service's admission estimator reads.
	MatchTime time.Duration
	// Truncated counts runs that timed out or were aborted mid-search;
	// TruncatedTime sums their partial match wall times. A truncated
	// timing is a cost *floor* (the query cost at least that much), never
	// a sample, which is why it is kept out of Count/MatchTime.
	Truncated     int64
	TruncatedTime time.Duration
	// DomainAfterUnary and DomainFinal are summed staged domain sizes —
	// the aggregate pruning trace of the plan.
	DomainAfterUnary, DomainFinal int64
}

// PlanHistogram is the distribution of resolved preprocessing plans over
// a session's queries: the observable footprint of the adaptive
// scheduler (ROADMAP: "a session-level plan histogram would make the
// scheduler's behavior observable in production").
type PlanHistogram struct {
	// Planned counts the queries that reported a plan; NoPlan those that
	// ran without domain preprocessing (plain RI) or were cancelled
	// before preprocessing.
	Planned, NoPlan int64
	// Buckets is sorted by descending Count (ties by plan string).
	Buckets []PlanBucket
}

// Bucket returns the aggregate over all epochs of the buckets for a
// plan rendering, or a zero bucket when no query resolved to it. For a
// per-epoch view use BucketAt or walk Buckets directly.
func (h *PlanHistogram) Bucket(plan string) PlanBucket {
	out := PlanBucket{Plan: plan}
	for _, b := range h.Buckets {
		if b.Plan != plan {
			continue
		}
		out.Epoch = b.Epoch // of the last contributing bucket; callers wanting epochs use BucketAt
		out.Count += b.Count
		out.UnaryTime += b.UnaryTime
		out.ACTime += b.ACTime
		out.InducedACTime += b.InducedACTime
		out.MatchTime += b.MatchTime
		out.Truncated += b.Truncated
		out.TruncatedTime += b.TruncatedTime
		out.DomainAfterUnary += b.DomainAfterUnary
		out.DomainFinal += b.DomainFinal
	}
	return out
}

// BucketAt returns the bucket for a plan rendering at one target
// mutation epoch, or a zero bucket when no query at that epoch resolved
// to it.
func (h *PlanHistogram) BucketAt(epoch uint64, plan string) PlanBucket {
	for _, b := range h.Buckets {
		if b.Plan == plan && b.Epoch == epoch {
			return b
		}
	}
	return PlanBucket{Plan: plan, Epoch: epoch}
}

// SessionStats is a snapshot of everything a Target did since NewTarget:
// query and match totals, aggregate timings, and the plan histogram.
type SessionStats struct {
	// Queries counts every enumeration the session answered (batch items
	// and streams count individually; queries that failed validation do
	// not count).
	Queries int64
	// Matches and States are summed over all queries.
	Matches, States int64
	// Timeouts counts queries ended early by context, Timeout or a
	// Visit stop (a Limit-capped query counts as complete, not ended
	// early); Unsatisfiable those preprocessing proved empty.
	Timeouts, Unsatisfiable int64
	// PreprocTime and MatchTime are summed wall times (concurrent
	// queries overlap, so these can exceed elapsed wall time).
	PreprocTime, MatchTime time.Duration
	// Steals is the summed stolen task-group count of parallel queries.
	Steals int64
	// Plans is the resolved-plan histogram over all queries.
	Plans PlanHistogram
}

// sessionStats is the mutable accumulator behind Target.Stats.
type sessionStats struct {
	mu      sync.Mutex
	queries int64
	matches int64
	states  int64
	timeout int64
	unsat   int64
	preproc time.Duration
	match   time.Duration
	steals  int64
	noPlan  int64
	buckets map[string]*PlanBucket
}

// record folds one completed query result into the accumulator.
func (s *sessionStats) record(res *Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queries++
	s.matches += res.Matches
	s.states += res.States
	if res.TimedOut {
		s.timeout++
	}
	if res.Unsatisfiable {
		s.unsat++
	}
	s.preproc += res.PreprocTime
	s.match += res.MatchTime
	s.steals += res.Steals
	p := res.Plan
	if p == nil {
		s.noPlan++
		return
	}
	b := s.bucket(res.Epoch, p.String())
	if res.TimedOut {
		// A truncated run's match time is a cost floor, not a sample:
		// folding it into Count/MatchTime would bias per-plan means
		// optimistic (the run was cut off *because* it was expensive).
		b.Truncated++
		b.TruncatedTime += res.MatchTime
		return
	}
	b.Count++
	b.UnaryTime += p.UnaryTime
	b.ACTime += p.ACTime
	b.InducedACTime += p.InducedACTime
	b.MatchTime += res.MatchTime
	b.DomainAfterUnary += int64(p.DomainAfterUnary)
	b.DomainFinal += int64(p.DomainFinal)
}

// recordCensus folds one census run into the accumulator. A census is a
// query like any other for the session totals — Subgraphs stands in for
// both matches and states (each emitted subgraph is one unit of found
// result and one unit of explored work) — and lands in the plan
// histogram under the bucket "census:k=<K>", so a service's funnel sees
// census traffic next to the enumeration plans.
func (s *sessionStats) recordCensus(res *CensusResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queries++
	s.matches += res.Subgraphs
	s.states += res.Subgraphs
	if res.TimedOut {
		s.timeout++
	}
	s.match += res.Duration
	s.steals += res.Steals
	b := s.bucket(res.Epoch, fmt.Sprintf("census:k=%d", res.K))
	if res.TimedOut {
		b.Truncated++
		b.TruncatedTime += res.Duration
		return
	}
	b.Count++
	b.MatchTime += res.Duration
}

// bucket returns (creating on demand) the accumulator bucket for one
// (epoch, plan) pair. Keying by epoch is what keeps pre- and
// post-mutation traffic apart — before epochs existed, a census or plan
// bucket silently aggregated across graph versions.
func (s *sessionStats) bucket(epoch uint64, plan string) *PlanBucket {
	if s.buckets == nil {
		s.buckets = make(map[string]*PlanBucket)
	}
	key := fmt.Sprintf("%d|%s", epoch, plan)
	b := s.buckets[key]
	if b == nil {
		b = &PlanBucket{Plan: plan, Epoch: epoch}
		s.buckets[key] = b
	}
	return b
}

// snapshot returns a consistent copy.
func (s *sessionStats) snapshot() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := SessionStats{
		Queries:       s.queries,
		Matches:       s.matches,
		States:        s.states,
		Timeouts:      s.timeout,
		Unsatisfiable: s.unsat,
		PreprocTime:   s.preproc,
		MatchTime:     s.match,
		Steals:        s.steals,
		Plans:         PlanHistogram{NoPlan: s.noPlan},
	}
	for _, b := range s.buckets {
		out.Plans.Planned += b.Count + b.Truncated
		out.Plans.Buckets = append(out.Plans.Buckets, *b)
	}
	sort.Slice(out.Plans.Buckets, func(i, j int) bool {
		bi, bj := out.Plans.Buckets[i], out.Plans.Buckets[j]
		if bi.Count != bj.Count {
			return bi.Count > bj.Count
		}
		if bi.Plan != bj.Plan {
			return bi.Plan < bj.Plan
		}
		return bi.Epoch < bj.Epoch
	})
	return out
}

// Stats returns a snapshot of the session's aggregate query statistics,
// including the plan histogram. Safe for concurrent use with queries;
// concurrent queries not yet completed are not included.
func (t *Target) Stats() SessionStats { return t.stats.snapshot() }

// PlanCost is the historical cost summary of one (epoch, plan) bucket,
// the estimator-facing view of the plan histogram: completed samples
// with their mean search time, plus truncated runs whose mean partial
// time is a cost *floor* (each truncated run cost at least that much).
type PlanCost struct {
	// Samples is the number of completed queries in the bucket.
	Samples int64
	// MeanMatch is the mean search wall time over completed queries
	// (zero when Samples is zero).
	MeanMatch time.Duration
	// Truncated counts timed-out/aborted runs; TruncatedMean is the mean
	// of their partial search times (zero when Truncated is zero).
	Truncated     int64
	TruncatedMean time.Duration
}

// planCost reads one bucket's cost summary without building a full
// snapshot — the hot-path accessor the service's admission estimator
// calls per query.
func (s *sessionStats) planCost(epoch uint64, plan string) PlanCost {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.buckets[fmt.Sprintf("%d|%s", epoch, plan)]
	if b == nil {
		return PlanCost{}
	}
	out := PlanCost{Samples: b.Count, Truncated: b.Truncated}
	if b.Count > 0 {
		out.MeanMatch = b.MatchTime / time.Duration(b.Count)
	}
	if b.Truncated > 0 {
		out.TruncatedMean = b.TruncatedTime / time.Duration(b.Truncated)
	}
	return out
}

// PlanCost returns the historical cost summary of the plan's histogram
// bucket at one target mutation epoch (use the epoch a CostEstimate was
// pinned at, so pre-mutation history never prices post-mutation
// queries). A zero PlanCost means no query with that plan has finished
// at that epoch.
func (t *Target) PlanCost(epoch uint64, plan string) PlanCost {
	return t.stats.planCost(epoch, plan)
}
