// Package parsge is a shared-memory parallel subgraph enumeration
// library: a from-scratch Go reproduction of
//
//	R. Kimmig, H. Meyerhenke, D. Strash,
//	"Shared Memory Parallel Subgraph Enumeration" (IPDPS workshops 2017,
//	arXiv:1705.09358),
//
// which parallelizes the state-of-the-art RI / RI-DS subgraph
// enumeration algorithms of Bonnici et al. with work stealing over
// private deques, and improves RI-DS with domain-size tie-breaking and
// forward checking.
//
// # Quick start
//
//	pattern := parsge.NewBuilder(3, 3)
//	pattern.AddNode(0)               // labels are small integers
//	...
//	res, err := parsge.Enumerate(gp, gt, parsge.Options{
//		Algorithm: parsge.RIDSSIFC,
//		Workers:   8,
//	})
//	fmt.Println(res.Matches)
//
// # Sessions
//
// The one-shot functions above rebuild all target-side state per call.
// A service answering many pattern queries against the same target
// should build the session object once and query it instead — the
// label index, density statistics and scratch arenas are then computed
// a single time and shared by all queries, and every query takes a
// context.Context for cancellation:
//
//	tgt, err := parsge.NewTarget(gt, parsge.TargetOptions{})
//	res, err := tgt.Enumerate(ctx, gp, parsge.Options{Workers: 8})
//	results, err := tgt.EnumerateBatch(ctx, patterns, parsge.Options{})
//
// A *Target is safe for concurrent use.
//
// Graphs are directed and labeled; model an undirected edge by adding
// both arcs (Builder.AddEdgeBoth). The default matching semantics is
// non-induced subgraph isomorphism: every pattern edge must exist in the
// target with a compatible label, target edges not in the pattern are
// ignored, node labels must be equal, and the mapping is injective.
// Options.Semantics switches every engine to induced matching
// (InducedIso: pattern non-edges must map to target non-edges) or to
// graph homomorphisms (Homomorphism: the mapping need not be injective).
//
// The heavy lifting lives in the internal packages (see DESIGN.md for
// the full inventory); this package is the stable outward-facing API.
package parsge

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"parsge/internal/domain"
	"parsge/internal/graph"
	"parsge/internal/graphio"
	"parsge/internal/ri"
)

// Semantics selects what counts as a match; see the package comment and
// the constants below. The zero value is SemanticsUnset — "no semantics
// chosen" — which resolves to the session's DefaultSemantics and then to
// the library default, SubgraphIso (the semantics of the source paper).
// Because unset and SubgraphIso are distinct values, an explicit
// Semantics: SubgraphIso always wins over a Target's DefaultSemantics.
type Semantics = graph.Semantics

const (
	// SemanticsUnset is the zero value: the query does not choose a
	// semantics, deferring to TargetOptions.DefaultSemantics and then
	// to the library default (SubgraphIso).
	SemanticsUnset = graph.SemanticsUnset
	// SubgraphIso is non-induced subgraph isomorphism (the library
	// default): injective, edge- and label-preserving; extra target
	// edges between images are ignored.
	SubgraphIso = graph.SubgraphIso
	// InducedIso is induced subgraph isomorphism: additionally, every
	// ordered pattern non-edge (self-loops included) must map to a
	// target non-edge, regardless of edge labels.
	InducedIso = graph.InducedIso
	// Homomorphism drops injectivity: distinct pattern nodes may map to
	// the same target node. Patterns larger than the target can match;
	// counts can be much larger than under the injective semantics.
	Homomorphism = graph.Homomorphism
)

// Graph is an immutable directed labeled graph. Build one with Builder.
type Graph = graph.Graph

// Builder accumulates nodes and edges for a Graph.
type Builder = graph.Builder

// Label is a node or edge label; labels compare by equality only.
type Label = graph.Label

// NoLabel is the label of unlabeled nodes and edges.
const NoLabel = graph.NoLabel

// NewBuilder returns a Builder pre-sized for n nodes and m edges.
func NewBuilder(n, m int) *Builder { return graph.NewBuilder(n, m) }

// Algorithm selects the search algorithm.
type Algorithm int

const (
	// RI is the plain RI algorithm — fastest on sparse targets
	// (the paper's PDBSv1).
	RI Algorithm = iota
	// RIDS is RI with precomputed candidate domains — for medium to
	// large dense targets (PPIS32, GRAEMLIN32).
	RIDS
	// RIDSSI is RI-DS with domain-size tie-breaking in the node
	// ordering (the paper's first improvement).
	RIDSSI
	// RIDSSIFC is RI-DS-SI plus forward checking of singleton domains
	// (the paper's best dense-graph variant).
	RIDSSIFC
	// VF2 is the classic Cordella et al. baseline with dynamic variable
	// ordering. Sequential only; provided for comparison.
	VF2 Algorithm = 100
	// LAD is a constraint-propagation engine in the style of Solnon's
	// LAD: per-assignment domain filtering (AllDifferent plus arc
	// consistency along incident pattern edges). It represents the
	// "spend time to shrink space" end of the design spectrum the paper
	// surveys (§2.2.1). Sequential only.
	LAD Algorithm = 101
	// Auto picks between RI and RI-DS-SI-FC from the target's density,
	// following the paper's guidance (RI on sparse collections like
	// PDBSv1, the DS variants on dense ones like PPIS32/GRAEMLIN32).
	Auto Algorithm = -1
)

// AutoWorkers, used as Options.Workers, sizes the worker pool
// automatically: min(GOMAXPROCS, number of consistent root candidates).
// This implements the direction the paper's conclusion sketches
// ("future work should address a dynamic strategy for determining the
// optimal level of parallelism"): tiny searches stay sequential, wide
// ones use every core.
const AutoWorkers = -1

// autoDensityThreshold is the mean total degree above which Auto prefers
// the domain-based variant. The paper's sparse collection (PDBSv1) has
// mean degree ≈ 3 (undirected; 6 total), the dense ones 27+.
const autoDensityThreshold = 12.0

// chooseAlgorithm resolves Auto against the target's density.
func chooseAlgorithm(a Algorithm, target *Graph) Algorithm {
	if a != Auto {
		return a
	}
	if target.NumNodes() == 0 {
		return RI
	}
	meanDeg := 2 * float64(target.NumEdges()) / float64(target.NumNodes())
	if meanDeg < autoDensityThreshold {
		return RI
	}
	return RIDSSIFC
}

// String returns the conventional name of the algorithm.
func (a Algorithm) String() string {
	switch a {
	case RI, RIDS, RIDSSI, RIDSSIFC:
		return ri.Variant(a).String()
	case VF2:
		return "VF2"
	case LAD:
		return "LAD"
	case Auto:
		return "Auto"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options configures Enumerate.
type Options struct {
	// Algorithm picks the engine; the zero value is RI.
	Algorithm Algorithm
	// Workers sets the parallel worker count; 0 or 1 runs the
	// sequential engine. VF2 ignores it (always sequential).
	Workers int
	// TaskGroupSize is the work-stealing coalescing granularity
	// (1–16, default 4 — the paper's setting).
	TaskGroupSize int
	// DisableStealing turns off load balancing between workers.
	DisableStealing bool
	// Limit stops after at least this many matches (0 = enumerate all).
	Limit int64
	// Timeout aborts the run after the given wall time (0 = none); the
	// paper's experiments use 180 s. It is implemented as a
	// context.WithTimeout layered over the ctx the session methods
	// take, so both compose: whichever fires first aborts the query.
	Timeout time.Duration
	// Semantics selects the matching semantics: SubgraphIso (the
	// paper's non-induced subgraph isomorphism), InducedIso, or
	// Homomorphism. The zero value, SemanticsUnset, falls back to the
	// session's TargetOptions.DefaultSemantics and then to SubgraphIso;
	// an explicit choice — SubgraphIso included — always overrides the
	// session default. Every engine — the RI family, the parallel
	// engine, VF2 and LAD — supports all three, so cross-validation
	// stays available under every semantics. An extension beyond the
	// paper.
	Semantics Semantics
	// Induced is the legacy spelling of Semantics: InducedIso. It may
	// accompany an unset Semantics or a redundant InducedIso; any other
	// explicit Semantics — SubgraphIso included, now that the unset
	// sentinel makes it an explicit choice — is a contradiction (an
	// error).
	//
	// Deprecated: set Semantics instead.
	Induced bool
	// Pruning tunes the semantics-aware domain filters applied during
	// preprocessing. The zero value enables everything; the fields are
	// opt-outs for ablation, debugging and differential testing.
	Pruning PruningOptions
	// Visit is called for every match with the mapping indexed by
	// pattern node id (mapping[patternNode] = targetNode). The slice is
	// reused — copy it to retain. With Workers > 1 it is called
	// concurrently and must be safe for concurrent use. Returning false
	// stops the enumeration.
	Visit func(mapping []int32) bool
	// Seed seeds scheduling decisions of the parallel engine. Results
	// are identical for all seeds; timings and steal counts vary.
	Seed int64
}

// Schedule selects how the preprocessing filter pipeline is chosen per
// query; see the constants below. Every point of the schedule space
// yields identical match counts (the filters are all sound — the
// metamorphic test battery holds the whole space to the brute-force
// oracle); schedules differ only in preprocessing cost versus search
// savings.
type Schedule = domain.Schedule

const (
	// ScheduleAuto (the default) adapts the filter plan to the target's
	// cached statistics — density, label entropy, degree skew — and the
	// pattern's shape: NLF plus a single arc-consistency pass on
	// label-rich targets, fixpoint arc consistency otherwise, and the
	// induced non-edge propagation only on targets dense enough for it
	// to bite. The chosen plan is reported in Result.Plan.
	ScheduleAuto = domain.ScheduleAuto
	// ScheduleFixed runs the full fixed pipeline of earlier versions
	// (every applicable filter, fixpoint arc consistency) — the
	// reference configuration for reproducing paper-style runs.
	ScheduleFixed = domain.ScheduleFixed
)

// Kernel selects the candidate-intersection implementation of the
// enumeration hot paths; see the constants below. Like Schedule, every
// kernel yields identical match counts (the kernel differential battery
// pins bitset against slice across engines and semantics) — kernels
// differ only in constant factors and allocation behavior.
type Kernel = domain.Kernel

const (
	// KernelAuto (the default) picks per query: bitset adjacency rows
	// whenever the target fits the dense-row threshold (2^14 nodes),
	// the classic sorted-slice paths otherwise.
	KernelAuto = domain.KernelAuto
	// KernelBitset forces the dense bitset adjacency rows (word-parallel
	// candidate intersection). Above the dense-row threshold the rows
	// cannot be built and the engines fall back to the slice paths.
	KernelBitset = domain.KernelBitset
	// KernelSlice forces the sorted-slice CSR paths — the ablation
	// baseline the bitset kernel is measured against.
	KernelSlice = domain.KernelSlice
)

// NLFMode selects the representation of a Target index's NLF
// signatures; see TargetOptions.NLF.
type NLFMode = domain.NLFMode

const (
	// NLFAuto (the default) picks NLFExact below a million target edges
	// and NLFCompact above.
	NLFAuto = domain.NLFAuto
	// NLFExact stores exact per-key signatures: maximum pruning,
	// O(target edges) memory.
	NLFExact = domain.NLFExact
	// NLFCompact stores bucketed signatures: constant memory per target
	// node, sound but possibly coarser pruning (exact for small label
	// alphabets).
	NLFCompact = domain.NLFCompact
)

// PruningOptions selects which of the semantics-aware domain filters
// run during query preprocessing and how the plan is chosen. All
// filters are sound under every semantics they apply to — no knob here
// ever changes match counts, only the preprocessing/search cost split —
// so beyond Schedule these are opt-outs for ablation, debugging and
// differential testing.
type PruningOptions struct {
	// Schedule picks the filter plan: ScheduleAuto (the zero value)
	// adapts it to the target statistics, ScheduleFixed reproduces the
	// fixed full pipeline. The explicit knobs below are respected under
	// both schedules.
	Schedule Schedule
	// ACPasses caps the arc-consistency sweeps at n > 0 (1 reproduces
	// the original RI-DS schedule); 0 lets the schedule decide (Fixed:
	// iterate to fixpoint).
	ACPasses int
	// DisableNLF turns off the neighborhood-label-frequency filter
	// (candidate neighborhoods must dominate the pattern node's labeled
	// neighborhood — multiset domination under the injective semantics,
	// set containment under Homomorphism).
	DisableNLF bool
	// DisableInducedAC turns off the induced non-edge arc-consistency
	// propagation (InducedIso only: pattern non-edges shrink the
	// domains before the search).
	DisableInducedAC bool
	// Kernel selects the candidate-intersection implementation of the
	// enumeration hot paths: KernelAuto (the zero value) picks bitset
	// adjacency rows for targets up to the dense-row threshold,
	// KernelBitset/KernelSlice force one side (kernel ablations and the
	// differential battery run both).
	Kernel Kernel
}

// resolveSemantics folds the legacy Induced flag into the Semantics
// axis and validates the combination. SemanticsUnset (without Induced)
// passes through so the session layer can substitute its default.
func resolveSemantics(opts Options) (Semantics, error) {
	if !opts.Semantics.Valid() {
		return 0, fmt.Errorf("parsge: unknown semantics %d", int32(opts.Semantics))
	}
	if opts.Induced {
		switch opts.Semantics {
		case SemanticsUnset, InducedIso:
			return InducedIso, nil
		default:
			// Post-sentinel, any other Semantics is an explicit choice
			// the legacy flag contradicts — SubgraphIso included.
			return 0, fmt.Errorf("parsge: Options.Induced contradicts Semantics: %v", opts.Semantics)
		}
	}
	return opts.Semantics, nil
}

// Result reports one enumeration.
type Result struct {
	// Matches is the number of embeddings found under the query's
	// Semantics (non-induced subgraph isomorphisms by default).
	Matches int64
	// States is the number of search states explored — the paper's
	// "search space size".
	States int64
	// PreprocTime covers domain computation and node ordering.
	PreprocTime time.Duration
	// MatchTime covers the search itself.
	MatchTime time.Duration
	// TimedOut reports that Timeout (or a Visit stop) ended the run
	// before the search space was exhausted; Matches is a lower bound.
	TimedOut bool
	// Unsatisfiable reports that preprocessing proved zero matches.
	Unsatisfiable bool
	// Steals counts stolen task groups (parallel runs only).
	Steals int64
	// PerWorkerStates breaks States down by worker (parallel runs only).
	PerWorkerStates []int64
	// DepthStates breaks States down by search depth (RI family only):
	// the search profile, useful for diagnosing irregular instances.
	DepthStates []int64
	// Plan reports the preprocessing filter plan the scheduler resolved
	// for this query, with per-filter timings and staged domain sizes.
	// It is nil when the engine ran without domain preprocessing (plain
	// RI).
	Plan *PlanInfo
	// Epoch is the target mutation epoch the query executed against
	// (see Target.ApplyUpdates): 0 until the first effective update
	// batch, incremented once per batch. Caches keyed on query results
	// compare it against Target.Epoch() to invalidate entries made
	// stale by updates.
	Epoch uint64
}

// PlanInfo describes the resolved preprocessing filter plan of one
// query: which filters fired (under ScheduleAuto this depends on the
// target's statistics), where preprocessing time went, and how far each
// stage shrank the candidate domains.
type PlanInfo struct {
	// NLF reports the neighborhood-label-frequency filter ran;
	// CompactNLF that it consulted the bucketed signatures of a compact
	// index (see TargetOptions.NLF).
	NLF, CompactNLF bool
	// AC reports classic arc consistency ran, capped at ACPasses sweeps
	// (0 = fixpoint); InducedAC that the induced non-edge propagation
	// ran (InducedIso only). ACAdaptive reports the scheduler's one-pass
	// cap was a revisable prediction measured after the first sweep:
	// ACPasses then records the outcome (1 = the probe stopped, 0 = the
	// domains stayed large and the sweeps escalated to fixpoint).
	AC         bool
	ACPasses   int
	ACAdaptive bool
	InducedAC  bool
	// UnaryTime covers the initial per-node filters (label, degree,
	// self-loops, NLF); ACTime the classic sweeps; InducedACTime the
	// induced non-edge passes.
	UnaryTime, ACTime, InducedACTime time.Duration
	// DomainAfterUnary and DomainFinal are total domain sizes (sum of
	// candidates over pattern nodes) after the unary stage and after
	// all propagation.
	DomainAfterUnary, DomainFinal int
}

// String renders the plan the way logs and golden tables show it, e.g.
// "nlf+ac:1" or "ac:fixpoint+inducedAC".
func (p *PlanInfo) String() string {
	if p == nil {
		return "none"
	}
	pl := domain.Plan{
		NLF: p.NLF, CompactNLF: p.CompactNLF,
		AC: p.AC, ACPasses: p.ACPasses, ACAdaptive: p.ACAdaptive, InducedAC: p.InducedAC,
	}
	return pl.String()
}

// planInfo converts a domain preprocessing report to the public type.
func planInfo(st *domain.ComputeStats) *PlanInfo {
	if st == nil {
		return nil
	}
	return &PlanInfo{
		NLF: st.Plan.NLF, CompactNLF: st.Plan.CompactNLF,
		AC: st.Plan.AC, ACPasses: st.Plan.ACPasses, ACAdaptive: st.Plan.ACAdaptive, InducedAC: st.Plan.InducedAC,
		UnaryTime: st.UnaryTime, ACTime: st.ACTime, InducedACTime: st.InducedACTime,
		DomainAfterUnary: st.AfterUnary, DomainFinal: st.Final,
	}
}

// TotalTime is preprocessing plus match time.
func (r Result) TotalTime() time.Duration { return r.PreprocTime + r.MatchTime }

// Enumerate finds all subgraphs of target isomorphic to pattern.
//
// It is a convenience wrapper building a throwaway session per call;
// code issuing several queries against one target should build a
// *Target once and use its ctx-aware methods instead.
func Enumerate(pattern, target *Graph, opts Options) (Result, error) {
	if pattern == nil || target == nil {
		return Result{}, fmt.Errorf("parsge: nil graph")
	}
	t, err := NewTarget(target, TargetOptions{})
	if err != nil {
		return Result{}, err
	}
	return t.Enumerate(context.Background(), pattern, opts) //sgelint:ignore ctxbackground one-shot convenience wrapper: no ctx in its signature by design; ctx-aware callers use Target.Enumerate
}

// autoWorkerCount sizes the pool for AutoWorkers: one worker per
// available CPU, but never more than the search root's branching factor
// (extra workers would start idle and only add scheduling overhead on a
// narrow search).
func autoWorkerCount(prep *ri.Prepared) int {
	roots := 0
	prep.RootCandidates(func(int32) bool {
		roots++
		return roots < 1024 // counting beyond the CPU count is pointless
	})
	w := runtime.GOMAXPROCS(0)
	if roots < w {
		w = roots
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Count is shorthand for Enumerate(...).Matches.
func Count(pattern, target *Graph, opts Options) (int64, error) {
	res, err := Enumerate(pattern, target, opts)
	return res.Matches, err
}

// FindAll collects every mapping into a slice (mapping[patternNode] =
// targetNode). It overrides opts.Visit; enumeration order is unspecified
// for parallel runs. Use a Limit for patterns with very many embeddings —
// the result set can be exponential in the pattern size.
func FindAll(pattern, target *Graph, opts Options) ([][]int32, error) {
	if pattern == nil || target == nil {
		return nil, fmt.Errorf("parsge: nil graph")
	}
	t, err := NewTarget(target, TargetOptions{})
	if err != nil {
		return nil, err
	}
	return t.FindAll(context.Background(), pattern, opts) //sgelint:ignore ctxbackground one-shot convenience wrapper: no ctx in its signature by design; ctx-aware callers use Target.FindAll
}

// LabelTable interns string labels for the text graph format.
type LabelTable = graphio.LabelTable

// NewLabelTable returns an empty label table.
func NewLabelTable() *LabelTable { return graphio.NewLabelTable() }

// NamedGraph is a graph plus the name of its file section.
type NamedGraph = graphio.NamedGraph

// ReadGraphs parses every graph section from r (see internal/graphio for
// the format), interning labels into table (which may be nil for a
// private table — but share one table between pattern and target files
// so equal label strings compare equal).
func ReadGraphs(r io.Reader, table *LabelTable) ([]NamedGraph, error) {
	return graphio.NewReader(r, table).ReadAll()
}

// WriteGraph serializes g as one text section.
func WriteGraph(w io.Writer, name string, g *Graph, table *LabelTable) error {
	return graphio.Write(w, name, g, table)
}

// Match is one enumerated embedding delivered by EnumerateStream.
type Match struct {
	// Mapping maps pattern node id → target node id. The slice is owned
	// by the receiver.
	Mapping []int32
}

// EnumerateStream runs Enumerate in a background goroutine and delivers
// matches over a channel; see Target.EnumerateStream for the streaming
// contract. This wrapper has no context, so the only ways to end a
// stream early are opts.Timeout, opts.Limit, or draining it — set one
// of those when early termination is expected, or use
// Target.EnumerateStream with a cancellable context, which tears the
// producer down on cancellation. opts.Visit must be nil.
func EnumerateStream(pattern, target *Graph, opts Options) (<-chan Match, <-chan error) {
	if pattern == nil || target == nil {
		matches := make(chan Match)
		close(matches)
		done := make(chan error, 1)
		done <- fmt.Errorf("parsge: nil graph")
		return matches, done
	}
	t, err := NewTarget(target, TargetOptions{})
	if err != nil {
		matches := make(chan Match)
		close(matches)
		done := make(chan error, 1)
		done <- err
		return matches, done
	}
	return t.EnumerateStream(context.Background(), pattern, opts) //sgelint:ignore ctxbackground one-shot convenience wrapper: no ctx in its signature by design; ctx-aware callers use Target.EnumerateStream
}

// Automorphisms returns the size of the pattern's automorphism group,
// computed by enumerating the pattern in itself: an injective map
// between equal-size graphs that preserves all edges is a bijection, and
// with equal edge counts it preserves them exactly — an automorphism.
// Divide Enumerate(...).Matches by this to convert ordered embeddings
// into distinct occurrences (vertex-set matches), as motif counting
// wants.
func Automorphisms(pattern *Graph) (int64, error) {
	if pattern == nil {
		return 0, fmt.Errorf("parsge: nil graph")
	}
	if pattern.NumNodes() == 0 {
		return 1, nil
	}
	return Count(pattern, pattern, Options{Algorithm: RI})
}
