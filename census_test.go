package parsge

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"parsge/internal/testutil"
)

// randomUndirected builds a random undirected graph (every edge as an
// arc pair) — the symmetric counterpart of testutil.RandomInstance's
// directed targets.
func randomUndirected(seed int64, nodes, edges, labels int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(nodes, 2*edges)
	for i := 0; i < nodes; i++ {
		b.AddNode(Label(rng.Intn(labels)))
	}
	for e := 0; e < edges; e++ {
		u, v := int32(rng.Intn(nodes)), int32(rng.Intn(nodes))
		if u != v {
			b.AddEdgeBoth(u, v, Label(rng.Intn(2)))
		}
	}
	return b.MustBuild()
}

// checkCensusOracle holds one Target.Census result to the brute-force
// oracle on the underlying graph.
func checkCensusOracle(t *testing.T, g *Graph, res CensusResult, k int, label string) {
	t.Helper()
	if res.TimedOut {
		t.Fatalf("%s: k=%d truncated without cancellation", label, k)
	}
	total, classes := testutil.BruteCensus(g, k)
	if res.Subgraphs != total {
		t.Fatalf("%s: k=%d found %d subgraphs, oracle %d", label, k, res.Subgraphs, total)
	}
	if len(res.Classes) != len(classes) {
		t.Fatalf("%s: k=%d found %d classes, oracle %d", label, k, len(res.Classes), len(classes))
	}
	for _, c := range res.Classes {
		if want := classes[string(c.Encoding)]; c.Count != want {
			t.Fatalf("%s: k=%d class count %d, oracle %d", label, k, c.Count, want)
		}
	}
}

// TestCensusOracle: the acceptance sweep — Target.Census against the
// brute-force oracle on over a hundred random graphs, directed and
// undirected, clean and nasty, sequential and parallel, at k=3 and 4.
func TestCensusOracle(t *testing.T) {
	type instance struct {
		g     *Graph
		label string
	}
	var instances []instance
	for seed := int64(0); seed < 60; seed++ {
		_, gt := testutil.RandomInstance(seed, testutil.InstanceOptions{
			TargetNodes: 10, TargetEdges: 24, NodeLabels: 2, EdgeLabels: 2,
			Nasty: seed%4 == 0,
		})
		instances = append(instances, instance{gt, "directed"})
		instances = append(instances, instance{randomUndirected(seed, 10, 14, 2), "undirected"})
	}
	for i, inst := range instances {
		tgt, err := NewTarget(inst.g, TargetOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{3, 4} {
			workers := 1
			if i%2 == 1 {
				workers = 4
			}
			res, err := tgt.Census(context.Background(), CensusOptions{K: k, Workers: workers, Seed: int64(i)})
			if err != nil {
				t.Fatal(err)
			}
			checkCensusOracle(t, inst.g, res, k, inst.label)
		}
	}
}

// TestCensusRelabelInvariance: the metamorphic acceptance property — a
// census is a graph invariant, so relabeling the target must preserve
// every class encoding and count exactly.
func TestCensusRelabelInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for seed := int64(0); seed < 12; seed++ {
		_, gt := testutil.RandomInstance(seed, testutil.InstanceOptions{
			TargetNodes: 12, TargetEdges: 32, NodeLabels: 3, EdgeLabels: 2, Nasty: seed%3 == 0,
		})
		pgt := testutil.PermuteGraph(rng, gt)
		t1, err := NewTarget(gt, TargetOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t2, err := NewTarget(pgt, TargetOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{3, 4} {
			r1, err := t1.Census(context.Background(), CensusOptions{K: k})
			if err != nil {
				t.Fatal(err)
			}
			r2, err := t2.Census(context.Background(), CensusOptions{K: k, Workers: 3})
			if err != nil {
				t.Fatal(err)
			}
			if r1.Subgraphs != r2.Subgraphs || len(r1.Classes) != len(r2.Classes) {
				t.Fatalf("seed %d k=%d: census not relabel-invariant (%d/%d subgraphs, %d/%d classes)",
					seed, k, r1.Subgraphs, r2.Subgraphs, len(r1.Classes), len(r2.Classes))
			}
			m := make(map[string]int64, len(r2.Classes))
			for _, c := range r2.Classes {
				m[string(c.Encoding)] = c.Count
			}
			for _, c := range r1.Classes {
				if m[string(c.Encoding)] != c.Count {
					t.Fatalf("seed %d k=%d: class count %d vs %d after relabeling",
						seed, k, c.Count, m[string(c.Encoding)])
				}
			}
		}
	}
}

// TestCensusRepresentativeQueryable: a class representative fed back
// into Enumerate under InducedIso finds Count × automorphisms ordered
// embeddings — the two sides of the library agree with each other.
func TestCensusRepresentativeQueryable(t *testing.T) {
	_, gt := testutil.RandomInstance(9, testutil.InstanceOptions{
		TargetNodes: 12, TargetEdges: 30, NodeLabels: 2,
	})
	tgt, err := NewTarget(gt, TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tgt.Census(context.Background(), CensusOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Classes) == 0 {
		t.Skip("no 3-subgraphs in this instance")
	}
	for _, c := range res.Classes {
		enc, _ := CanonicalPattern(c.Pattern)
		if string(enc) != string(c.Encoding) {
			t.Fatal("representative does not canonize to its class encoding")
		}
		if HashEncoding(c.Encoding) != c.Hash {
			t.Fatal("class hash does not match its encoding")
		}
		auts, err := Automorphisms(c.Pattern)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tgt.Count(context.Background(), c.Pattern, Options{Semantics: InducedIso})
		if err != nil {
			t.Fatal(err)
		}
		if got != c.Count*auts {
			t.Fatalf("representative found %d embeddings, census count %d × %d automorphisms = %d",
				got, c.Count, auts, c.Count*auts)
		}
	}
}

// TestCensusStatsFunnel: census runs land in the session plan histogram
// under their census:k=<K> bucket.
func TestCensusStatsFunnel(t *testing.T) {
	_, gt := testutil.RandomInstance(4, testutil.InstanceOptions{TargetNodes: 10, TargetEdges: 20})
	tgt, err := NewTarget(gt, TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tgt.Census(context.Background(), CensusOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := tgt.Stats()
	if st.Plans.Planned == 0 {
		t.Fatal("census did not register in the plan histogram")
	}
	if b := st.Plans.Bucket("census:k=3"); b.Count != 1 {
		t.Fatalf("census:k=3 bucket count %d, want 1", b.Count)
	}
	if st.Matches != res.Subgraphs {
		t.Fatalf("session matches %d, census subgraphs %d", st.Matches, res.Subgraphs)
	}
}

// TestCensusTimeout: CensusOptions.Timeout truncates a census the same
// way Options.Timeout truncates a query.
func TestCensusTimeout(t *testing.T) {
	_, gt := testutil.RandomInstance(5, testutil.InstanceOptions{
		TargetNodes: 400, TargetEdges: 12000, NodeLabels: 1,
	})
	tgt, err := NewTarget(gt, TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tgt.Census(context.Background(), CensusOptions{K: 6, Timeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Fatal("a 20ms census of a dense 400-node graph at k=6 reported complete")
	}
}

// TestConcurrentCensus is the census -race soak: one shared Target
// serving censuses, pattern queries and a mid-run cancellation from
// concurrent goroutines. CI runs it under -race.
func TestConcurrentCensus(t *testing.T) {
	gp, gt := testutil.RandomInstance(11, testutil.InstanceOptions{
		TargetNodes: 40, TargetEdges: 240, NodeLabels: 2, Extract: true,
	})
	tgt, err := NewTarget(gt, TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantCensus, err := tgt.Census(context.Background(), CensusOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	wantCount, err := tgt.Count(context.Background(), gp, Options{})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) { // censuses, alternating sequential and parallel
			defer wg.Done()
			for i := 0; i < 3; i++ {
				res, err := tgt.Census(context.Background(), CensusOptions{K: 3, Workers: 1 + (g+i)%4, Seed: int64(i)})
				if err != nil {
					errs <- err
					return
				}
				if res.Subgraphs != wantCensus.Subgraphs || len(res.Classes) != len(wantCensus.Classes) {
					t.Errorf("goroutine %d: census drifted: %d subgraphs, want %d", g, res.Subgraphs, wantCensus.Subgraphs)
					return
				}
			}
		}(g)
		wg.Add(1)
		go func(g int) { // pattern queries interleaved with the censuses
			defer wg.Done()
			for i := 0; i < 3; i++ {
				got, err := tgt.Count(context.Background(), gp, Options{Workers: 1 + g%2})
				if err != nil {
					errs <- err
					return
				}
				if got != wantCount {
					t.Errorf("goroutine %d: count drifted: %d, want %d", g, got, wantCount)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() { // a census cancelled mid-run
		defer wg.Done()
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(2 * time.Millisecond)
			cancel()
		}()
		res, err := tgt.Census(ctx, CensusOptions{K: 6, Workers: 4})
		if err != nil {
			errs <- err
			return
		}
		_ = res // truncation is timing-dependent; racing is the point
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
