package parsge

import (
	"context"
	"fmt"
	"time"

	"parsge/internal/domain"
	"parsge/internal/ri"
)

// This file exposes the cheap per-query cost signals the service layer's
// admission model classifies on: domain preprocessing run *ahead* of
// admission (it is milliseconds and shares the target's label index),
// summarized as a staged upper bound plus the plan key that links the
// estimate to the epoch-keyed plan histogram (Target.PlanCost).

// CostEstimate is the pre-admission cost summary of one query: the
// resolved preprocessing plan, the staged domain sizes it produced, and
// the snapshot epoch everything was pinned at. It is an upper-bound
// signal, not a prediction — callers combine it with the plan's
// historical mean match time (Target.PlanCost at the same Epoch) to
// price the query.
type CostEstimate struct {
	// Plan is the resolved preprocessing plan with its timings and
	// staged domain sizes; nil when the resolved engine is plain RI
	// (which computes no domains — the estimate still runs them for the
	// bound, but the query itself will record no plan).
	Plan *PlanInfo
	// PlanKey is the histogram bucket key the query's result will land
	// in: Plan.String(), or "none" for plain RI. Feed it with Epoch to
	// Target.PlanCost for the plan's historical cost.
	PlanKey string
	// LogDomainProduct is log2 of the product of final domain sizes —
	// the staged upper bound on candidate assignments. Zero when
	// Unsatisfiable.
	LogDomainProduct float64
	// DomainFinal is the total domain size (sum over pattern nodes)
	// after all propagation.
	DomainFinal int
	// PatternNodes and PatternEdges describe the simplified pattern.
	PatternNodes, PatternEdges int
	// TargetDensity is the target's arc density m/(n·(n−1)) — the
	// signal that scales how explosive a loose domain bound really is.
	TargetDensity float64
	// Unsatisfiable reports preprocessing proved zero matches: some
	// domain ran empty, so the query is free however large the pattern.
	Unsatisfiable bool
	// PreprocTime is the wall time this estimate spent (domain
	// computation included).
	PreprocTime time.Duration
	// Epoch is the target mutation epoch the estimate was computed
	// against. An admission decision derived from this estimate is
	// attributable to exactly this graph version.
	Epoch uint64
}

// EstimateCost runs the query's domain preprocessing against the current
// target snapshot and returns the staged cost signals without searching.
// It resolves algorithm, semantics and the preprocessing schedule exactly
// as Enumerate would (so PlanKey matches the bucket the real run will
// record into), pins everything to one snapshot epoch, and costs
// milliseconds — the point is to classify *after* preprocessing instead
// of guessing from pattern size alone.
func (t *Target) EstimateCost(ctx context.Context, pattern *Graph, opts Options) (CostEstimate, error) {
	if pattern == nil {
		return CostEstimate{}, fmt.Errorf("parsge: nil pattern graph")
	}
	start := time.Now()
	st := t.state.Load()
	if ctx != nil && ctx.Err() != nil {
		return CostEstimate{Epoch: st.epoch}, ctx.Err()
	}
	alg := st.resolveAlgorithm(opts.Algorithm)
	if (alg < RI || alg > RIDSSIFC) && alg != VF2 && alg != LAD {
		return CostEstimate{}, fmt.Errorf("parsge: unknown algorithm %d", int(alg))
	}
	sem, err := t.ResolveSemantics(opts)
	if err != nil {
		return CostEstimate{}, err
	}
	gp := pattern.Simplify()

	// Mirror ri.Prepare's domain resolution so the estimate prices the
	// same plan the query will run (plain RI computes no domains, but
	// the bound is still the best shed signal available, so the
	// estimate always computes them).
	dopts := domain.Options{
		ACPasses:      opts.Pruning.ACPasses,
		SkipNLF:       opts.Pruning.DisableNLF,
		SkipInducedAC: opts.Pruning.DisableInducedAC,
		Index:         st.index,
		Kernel:        opts.Pruning.Kernel,
		Semantics:     sem,
	}
	if opts.Pruning.Schedule == domain.ScheduleAuto {
		dopts = domain.AutoTune(dopts, gp, st.g)
	}
	doms, dstats := domain.ComputeWithStats(gp, st.g, dopts)
	logProd, anyEmpty := doms.LogProduct()

	est := CostEstimate{
		DomainFinal:   dstats.Final,
		PatternNodes:  gp.NumNodes(),
		PatternEdges:  gp.NumEdges(),
		Unsatisfiable: anyEmpty,
		Epoch:         st.epoch,
	}
	if !anyEmpty {
		est.LogDomainProduct = logProd
	}
	if n := st.g.NumNodes(); n > 1 {
		est.TargetDensity = float64(st.g.NumEdges()) / (float64(n) * float64(n-1))
	}
	if alg >= RI && alg <= RIDSSIFC && !ri.Variant(alg).UsesDomains() {
		est.PlanKey = "none" // plain RI records no plan
	} else {
		est.Plan = planInfo(&dstats)
		est.PlanKey = est.Plan.String()
	}
	est.PreprocTime = time.Since(start)
	return est, nil
}

// MeanDegreeAt returns the mean total degree together with the mutation
// epoch of the snapshot it was read from — one atomic load, so the two
// are consistent. Admission decisions that consult the degree pin this
// epoch into their record instead of reading MeanDegree at an unpinned
// instant.
func (t *Target) MeanDegreeAt() (float64, uint64) {
	st := t.state.Load()
	return st.meanDegree, st.epoch
}
