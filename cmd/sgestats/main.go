// Command sgestats summarizes the graphs in a GFF-style file: sizes,
// degree statistics, label distribution and connectivity — the numbers
// Table 1 of the paper reports per collection. It can also export any
// section as Graphviz DOT for visual inspection.
//
// Usage:
//
//	sgestats -in data/PPIS32-targets.gff
//	sgestats -in data/PPIS32-patterns.gff -labels
//	sgestats -in q.gff -dot 0 > q.dot     # section 0 as DOT
//	sgestats -in old.gff -rewrite new.gff # re-serialize, %undirected
//	                                      # where symmetric (≈half size)
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"text/tabwriter"

	"parsge/internal/graph"
	"parsge/internal/graphio"
)

func main() {
	var (
		in         = flag.String("in", "", "input graph file (required)")
		withLabels = flag.Bool("labels", false, "print the node-label histogram per graph")
		dotIndex   = flag.Int("dot", -1, "write section N as Graphviz DOT to stdout and exit")
		rewrite    = flag.String("rewrite", "", "re-serialize every section to this file, using the compact %undirected form for symmetric graphs, and exit")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	exitOn(err)
	defer f.Close()
	table := graphio.NewLabelTable()
	gs, err := graphio.NewReader(f, table).ReadAll()
	exitOn(err)
	if len(gs) == 0 {
		exitOn(fmt.Errorf("%s: no graph sections", *in))
	}

	if *dotIndex >= 0 {
		if *dotIndex >= len(gs) {
			exitOn(fmt.Errorf("section %d out of range (file has %d)", *dotIndex, len(gs)))
		}
		exitOn(graphio.WriteDOT(os.Stdout, gs[*dotIndex].Name, gs[*dotIndex].Graph, table))
		return
	}

	if *rewrite != "" {
		out, err := os.Create(*rewrite)
		exitOn(err)
		for _, ng := range gs {
			if ng.Graph.Symmetric() {
				exitOn(graphio.WriteUndirected(out, ng.Name, ng.Graph, table))
			} else {
				exitOn(graphio.Write(out, ng.Name, ng.Graph, table))
			}
		}
		exitOn(out.Close())
		fmt.Printf("rewrote %d sections to %s\n", len(gs), *rewrite)
		return
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "graph\tnodes\tedges\tdeg µ\tdeg σ\tdeg max\tlabels\tconnected\tundirected")
	for _, ng := range gs {
		g := ng.Graph
		mean, sd, maxDeg := degreeStats(g)
		fmt.Fprintf(w, "%s\t%d\t%d\t%.2f\t%.2f\t%d\t%d\t%v\t%v\n",
			ng.Name, g.NumNodes(), g.NumEdges(), mean, sd, maxDeg,
			distinctLabels(g), g.ConnectedUndirected(), g.Symmetric())
	}
	w.Flush()

	if *withLabels {
		for _, ng := range gs {
			printLabelHistogram(ng, table)
		}
	}
}

// degreeStats returns mean, population stddev and max of total degree.
func degreeStats(g *graph.Graph) (mean, sd float64, max int) {
	n := g.NumNodes()
	if n == 0 {
		return 0, 0, 0
	}
	sum := 0.0
	for v := int32(0); v < int32(n); v++ {
		d := g.Degree(v)
		sum += float64(d)
		if d > max {
			max = d
		}
	}
	mean = sum / float64(n)
	sq := 0.0
	for v := int32(0); v < int32(n); v++ {
		d := float64(g.Degree(v)) - mean
		sq += d * d
	}
	return mean, math.Sqrt(sq / float64(n)), max
}

func distinctLabels(g *graph.Graph) int {
	seen := map[graph.Label]bool{}
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		seen[g.NodeLabel(v)] = true
	}
	return len(seen)
}

func printLabelHistogram(ng graphio.NamedGraph, table *graphio.LabelTable) {
	g := ng.Graph
	counts := map[graph.Label]int{}
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		counts[g.NodeLabel(v)]++
	}
	type lc struct {
		l graph.Label
		c int
	}
	var all []lc
	for l, c := range counts {
		all = append(all, lc{l, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].l < all[j].l
	})
	fmt.Printf("\n%s label histogram:\n", ng.Name)
	for _, e := range all {
		name := table.Name(e.l)
		if name == "" {
			name = "_"
		}
		fmt.Printf("  %-12s %6d (%.1f%%)\n", name, e.c, 100*float64(e.c)/float64(g.NumNodes()))
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sgestats:", err)
		os.Exit(1)
	}
}
