// Command sgebench regenerates the tables and figures of the paper's
// evaluation (Kimmig et al. §5) on the synthetic data collections.
//
// Usage:
//
//	sgebench -exp all                     # every table, figure, ablation
//	sgebench -exp table2 -scale 0.05      # just Table 2, bigger instances
//	sgebench -exp fig4,fig3               # a comma-separated subset
//
// The -scale flag sizes the synthetic collections relative to the
// paper's Table 1 (1.0 reproduces the original node counts; expect very
// long runs). The per-instance -timeout mirrors the paper's 180 s budget
// proportionally. Each speedup table reports both wall-clock speedup and
// the hardware-independent work-division speedup (see EXPERIMENTS.md).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"time"

	"parsge/internal/bench"
)

var experiments = []string{
	"table1", "fig3", "fig4", "table2", "fig5", "fig6",
	"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "table3",
	"ablations", "service", "census",
}

// ablations maps the -ablation names to their suite methods, so a
// single ablation can be (re)run without paying for all of them.
var ablations = map[string]func(*bench.Suite) bench.AblationResult{
	"stealend":  (*bench.Suite).AblationStealEnd,
	"eagercopy": (*bench.Suite).AblationEagerCopy,
	"initdist":  (*bench.Suite).AblationInitialDistribution,
	"ac":        (*bench.Suite).AblationArcConsistency,
	"ordering":  (*bench.Suite).AblationOrdering,
	"pruning":   (*bench.Suite).AblationPruningFilters,
	"adaptive":  (*bench.Suite).AblationAdaptiveSchedule,
	"admission": (*bench.Suite).AblationAdmission,
}

func ablationNames() []string {
	names := make([]string, 0, len(ablations))
	for n := range ablations {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// splitNames splits a comma-separated flag value, dropping empty parts.
func splitNames(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiments to run: all, or comma-separated subset of "+strings.Join(experiments, ","))
		ablation = flag.String("ablation", "", "run a single named ablation instead of -exp: one of "+strings.Join(ablationNames(), ","))

		loadgen         = flag.String("loadgen", "", "replay a mixed query workload against a running sgeserve at this base URL instead of -exp")
		loadgenTarget   = flag.String("loadgen-target", "", "target graph file the server serves (patterns are extracted from it)")
		loadgenClients  = flag.Int("clients", 8, "concurrent loadgen clients")
		loadgenDuration = flag.Duration("duration", 10*time.Second, "loadgen run length")
		loadgenPatterns = flag.Int("patterns", 12, "distinct patterns in the loadgen pool")
		censusFrac      = flag.Float64("census-frac", 0, "fraction of loadgen requests issued as /census (0..1)")
		explosiveFrac   = flag.Float64("explosive-frac", 0, "fraction of loadgen requests issued as predicted-explosive star probes under hom (0..1)")
		loadgenTargets  = flag.String("loadgen-targets", "", "comma-separated target names on a multi-target server (sgeserve -targets) to round-robin the workload across")
		updateTarget    = flag.String("update-target", "", "target name that receives a steady stream of edge-update batches during the run (needs -loadgen-targets)")
		scale           = flag.Float64("scale", 0.03, "dataset scale relative to the paper's Table 1")
		seed            = flag.Int64("seed", 20170525, "generation and scheduling seed")
		timeout         = flag.Duration("timeout", 20*time.Second, "per-instance time budget (paper: 180s at scale 1.0)")
		long            = flag.Duration("long", 50*time.Millisecond, "short/long split threshold (paper: 1s at scale 1.0)")
		maxInst         = flag.Int("max", 60, "max instances per experiment (0 = all)")
		workers         = flag.String("workers", "1,2,4,8,16", "comma-separated worker sweep")
		csvDir          = flag.String("csv", "", "also write each experiment's data as CSV into this directory")
	)
	flag.Parse()

	if *loadgen != "" {
		exitOn(runLoadgen(loadgenConfig{
			URL:           strings.TrimRight(*loadgen, "/"),
			TargetFile:    *loadgenTarget,
			Clients:       *loadgenClients,
			Duration:      *loadgenDuration,
			Patterns:      *loadgenPatterns,
			Seed:          *seed,
			CensusFrac:    *censusFrac,
			ExplosiveFrac: *explosiveFrac,
			Targets:       splitNames(*loadgenTargets),
			UpdateTarget:  *updateTarget,
		}))
		return
	}

	ws, err := parseWorkers(*workers)
	exitOn(err)

	// Ctrl-C aborts the in-flight instance through the suite's context;
	// already-collected rows are simply abandoned.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	s := (&bench.Suite{
		Ctx:           ctx,
		Scale:         *scale,
		Seed:          *seed,
		Timeout:       *timeout,
		LongThreshold: *long,
		Workers:       ws,
		MaxInstances:  *maxInst,
		Out:           os.Stdout,
		CSVDir:        *csvDir,
	}).Defaults()

	if *ablation != "" {
		run, ok := ablations[strings.TrimSpace(strings.ToLower(*ablation))]
		if !ok {
			exitOn(fmt.Errorf("unknown ablation %q (want one of %s)", *ablation, strings.Join(ablationNames(), ", ")))
		}
		start := time.Now()
		fmt.Printf("sgebench: ablation=%s scale=%.3g seed=%d timeout=%v\n", *ablation, *scale, *seed, *timeout)
		run(s)
		fmt.Printf("\nsgebench: done in %v\n", time.Since(start).Round(time.Millisecond))
		return
	}

	selected := map[string]bool{}
	if *exp == "all" {
		for _, e := range experiments {
			selected[e] = true
		}
	} else {
		for _, e := range strings.Split(*exp, ",") {
			e = strings.TrimSpace(strings.ToLower(e))
			if e == "" {
				continue
			}
			if !contains(experiments, e) {
				exitOn(fmt.Errorf("unknown experiment %q (want one of %s)", e, strings.Join(experiments, ", ")))
			}
			selected[e] = true
		}
	}

	start := time.Now()
	fmt.Printf("sgebench: scale=%.3g seed=%d timeout=%v long-threshold=%v workers=%v\n",
		*scale, *seed, *timeout, *long, ws)

	if selected["table1"] {
		s.Table1()
	}
	if selected["fig3"] {
		s.Fig3()
	}
	if selected["fig4"] {
		s.Fig4()
	}
	if selected["table2"] {
		s.Table2()
	}
	if selected["fig5"] {
		s.Fig5()
	}
	if selected["fig6"] {
		s.Fig6()
	}
	if selected["fig7"] {
		s.Fig7()
	}
	if selected["fig8"] {
		s.Fig8()
	}
	if selected["fig9"] {
		s.Fig9()
	}
	// Fig 10 and Fig 11 share one measurement (11 is 10 split
	// short/long); run it if either was requested.
	if selected["fig10"] || selected["fig11"] {
		s.Fig10()
	}
	if selected["fig12"] {
		s.Fig12()
	}
	if selected["table3"] {
		s.Table3()
	}
	if selected["ablations"] {
		s.Ablations()
	}
	if selected["service"] {
		s.ServiceThroughput()
	}
	if selected["census"] {
		s.CensusThroughput()
	}

	fmt.Printf("\nsgebench: done in %v\n", time.Since(start).Round(time.Millisecond))
}

func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty worker list")
	}
	return out, nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sgebench:", err)
		os.Exit(1)
	}
}
