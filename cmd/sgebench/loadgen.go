package main

// Loadgen mode: replay a mixed query workload against a running sgeserve
// instance. Patterns are extracted from the same target file the server
// loaded, serialized through a shared label table so label strings agree,
// and issued by N concurrent clients cycling through the three matching
// semantics with a sprinkle of mapping and streaming requests — the
// closest thing to production traffic the bench harness can synthesize.
//
//	sgeserve  -target data/PPIS32-targets.gff &
//	sgebench  -loadgen http://localhost:8642 -target data/PPIS32-targets.gff \
//	          -clients 8 -duration 10s
//
// Against a multi-target server (sgeserve -targets), -loadgen-targets
// round-robins the query mix across the named targets and an optional
// -update-target receives a steady trickle of edge-update batches while
// the others are queried — the CI smoke shape for mutation under load:
//
//	sgeserve  -targets -target data/PPIS32-targets.gff &
//	sgebench  -loadgen http://localhost:8642 -loadgen-target data/PPIS32-targets.gff \
//	          -loadgen-targets t0,t1 -update-target t2
//
// The run reports throughput, latency percentiles, cache hit rate and
// the server-side plan histogram, and fails (exit 1) when no request
// succeeded, when counts were inconsistent between requests for the same
// query identity — keyed by (target, pattern, semantics, epoch), since a
// mutated target legitimately changes counts across epochs but must
// never disagree within one — or when the server reports an empty plan
// histogram. These are the assertions the CI smoke jobs stand on.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"parsge"
	"parsge/internal/graphio"
	"parsge/internal/service"
	"parsge/internal/testutil"
)

type loadgenConfig struct {
	URL        string
	TargetFile string
	Clients    int
	Duration   time.Duration
	Patterns   int
	Seed       int64
	// CensusFrac is the fraction of requests issued as POST /census
	// (k cycling 3..4) instead of pattern queries, mixing the service's
	// heaviest always-large workload into the stream.
	CensusFrac float64
	// ExplosiveFrac is the fraction of requests issued as a
	// deliberately explosive probe: a star pattern rooted at the
	// target's max-degree vertex, matched under homomorphism, whose
	// count blows up combinatorially. A cost-model server sheds these
	// with 429 (counted, not errored); a static server burns its full
	// timeout on each one.
	ExplosiveFrac float64
	// Targets, when non-empty, switches to multi-target mode: queries
	// and censuses round-robin across these named targets via
	// /targets/{name}/..., and /stats is decoded as router stats.
	// Names follow the server's convention: GFF section names, with
	// "t<i>" for unnamed or duplicate sections.
	Targets []string
	// UpdateTarget, when set (multi-target mode only), names a target
	// that receives a steady stream of small edge-update batches for
	// the whole run. It may also appear in Targets: epoch-keyed count
	// consistency makes querying a mutating target safe.
	UpdateTarget string
}

type loadgenResult struct {
	requests, errors, cacheHits, streams, censuses int64
	explosives, sheds                              int64 // explosive probes issued; requests shed with 429
	updates                                        int64 // applied update batches
	lastEpoch                                      uint64
	latencies                                      []float64 // ms, successful requests
	countMismatch                                  string
}

// queryTarget is one round-robin destination: base is the URL prefix the
// /query and /census paths hang off ("" name = single-target mode).
// explosive is the serialized star probe for this target (empty when the
// explosive mix is off).
type queryTarget struct {
	name      string
	base      string
	texts     []string
	explosive string
}

func runLoadgen(cfg loadgenConfig) error {
	if cfg.TargetFile == "" {
		return fmt.Errorf("-loadgen needs -loadgen-target (the file the server serves, to extract patterns from)")
	}
	if cfg.UpdateTarget != "" && len(cfg.Targets) == 0 {
		return fmt.Errorf("-update-target needs -loadgen-targets (updates only exist on a multi-target server)")
	}
	f, err := os.Open(cfg.TargetFile)
	if err != nil {
		return err
	}
	table := graphio.NewLabelTable()
	graphs, err := parsge.ReadGraphs(f, table)
	f.Close()
	if err != nil {
		return err
	}
	if len(graphs) == 0 {
		return fmt.Errorf("%s: no graph sections", cfg.TargetFile)
	}

	// Name the sections exactly as sgeserve -targets does, so
	// -loadgen-targets names resolve to the same graphs the server routes.
	byName := make(map[string]*parsge.Graph, len(graphs))
	seen := make(map[string]bool, len(graphs))
	for i, ng := range graphs {
		name := ng.Name
		if name == "" || seen[name] {
			name = fmt.Sprintf("t%d", i)
		}
		seen[name] = true
		byName[name] = ng.Graph
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	var qts []queryTarget
	if len(cfg.Targets) == 0 {
		texts, err := patternPool(rng, graphs[0].Graph, cfg.Patterns, table)
		if err != nil {
			return err
		}
		qts = []queryTarget{{name: "", base: cfg.URL, texts: texts}}
	} else {
		for _, name := range cfg.Targets {
			g, ok := byName[name]
			if !ok {
				return fmt.Errorf("-loadgen-targets: no section named %q in %s", name, cfg.TargetFile)
			}
			texts, err := patternPool(rng, g, cfg.Patterns, table)
			if err != nil {
				return err
			}
			qts = append(qts, queryTarget{name: name, base: cfg.URL + "/targets/" + name, texts: texts})
		}
	}
	if cfg.ExplosiveFrac > 0 {
		for i := range qts {
			g := graphs[0].Graph
			if qts[i].name != "" {
				g = byName[qts[i].name]
			}
			text, err := explosivePattern(g, table)
			if err != nil {
				return err
			}
			qts[i].explosive = text
		}
	}
	var updateGraph *parsge.Graph
	if cfg.UpdateTarget != "" {
		g, ok := byName[cfg.UpdateTarget]
		if !ok {
			return fmt.Errorf("-update-target: no section named %q in %s", cfg.UpdateTarget, cfg.TargetFile)
		}
		updateGraph = g
	}
	semantics := []string{"iso", "induced", "hom"}

	// Wait for the server to come up (the CI smoke job starts it
	// concurrently).
	client := &http.Client{Timeout: 60 * time.Second}
	if err := waitHealthy(client, cfg.URL, 10*time.Second); err != nil {
		return err
	}

	var mu sync.Mutex
	res := &loadgenResult{}
	counts := make(map[string]int64) // (target, query identity, epoch) -> first observed count
	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			crng := rand.New(rand.NewSource(cfg.Seed + int64(c)*7919))
			for i := 0; time.Now().Before(deadline); i++ {
				qt := qts[(c+i)%len(qts)]
				if cfg.CensusFrac > 0 && crng.Float64() < cfg.CensusFrac {
					k := 3 + (c+i)%2
					start := time.Now()
					subgraphs, epoch, hit, err := issueCensus(client, qt.base, k)
					lat := float64(time.Since(start)) / float64(time.Millisecond)
					mu.Lock()
					res.requests++
					if err != nil {
						res.errors++
					} else {
						res.latencies = append(res.latencies, lat)
						res.censuses++
						if hit {
							res.cacheHits++
						}
						if subgraphs >= 0 { // truncated censuses carry lower bounds
							id := fmt.Sprintf("%s/census/k=%d@e%d", qt.name, k, epoch)
							if prev, ok := counts[id]; ok && prev != subgraphs {
								if res.countMismatch == "" {
									res.countMismatch = fmt.Sprintf("%s: %d subgraphs then %d", id, prev, subgraphs)
								}
							} else {
								counts[id] = subgraphs
							}
						}
					}
					mu.Unlock()
					continue
				}
				if qt.explosive != "" && crng.Float64() < cfg.ExplosiveFrac {
					start := time.Now()
					_, _, _, shed, err := issueQuery(client, qt.base, qt.explosive, "hom", false, false)
					lat := float64(time.Since(start)) / float64(time.Millisecond)
					mu.Lock()
					res.requests++
					res.explosives++
					if err != nil {
						res.errors++
					} else {
						res.latencies = append(res.latencies, lat)
						if shed {
							res.sheds++
						}
					}
					mu.Unlock()
					continue
				}
				pi := crng.Intn(len(qt.texts))
				sem := semantics[(c+i)%len(semantics)]
				stream := crng.Intn(16) == 0
				withMappings := !stream && crng.Intn(8) == 0
				start := time.Now()
				matches, epoch, hit, shed, err := issueQuery(client, qt.base, qt.texts[pi], sem, withMappings, stream)
				lat := float64(time.Since(start)) / float64(time.Millisecond)
				mu.Lock()
				res.requests++
				if err != nil {
					res.errors++
				} else {
					res.latencies = append(res.latencies, lat)
					if hit {
						res.cacheHits++
					}
					if shed {
						res.sheds++
					}
					if stream {
						res.streams++
					}
					if matches >= 0 { // truncated replies carry no exact count
						id := fmt.Sprintf("%s/%d/%s@e%d", qt.name, pi, sem, epoch)
						if prev, ok := counts[id]; ok && prev != matches {
							if res.countMismatch == "" {
								res.countMismatch = fmt.Sprintf("query %s: count %d then %d", id, prev, matches)
							}
						} else {
							counts[id] = matches
						}
					}
				}
				mu.Unlock()
			}
		}(c)
	}
	if updateGraph != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runUpdater(client, cfg, updateGraph, deadline, &mu, res)
		}()
	}
	wg.Wait()

	multi := len(cfg.Targets) > 0
	var stats service.Stats
	var rstats service.RouterStats
	var statsErr error
	// Token release on streaming queries trails the HTTP response by a
	// hair; give the server a few polls to report an idle pool before
	// asserting zero worker pinning.
	for attempt := 0; ; attempt++ {
		if multi {
			rstats, statsErr = fetchRouterStats(client, cfg.URL)
			stats = mergeRouterStats(rstats, cfg.Targets)
		} else {
			stats, statsErr = fetchStats(client, cfg.URL)
		}
		if statsErr != nil || stats.TokensInUse == 0 || attempt >= 20 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	report(cfg, res, stats)
	if multi && statsErr == nil {
		for _, ti := range rstats.Targets {
			fmt.Printf("loadgen: server: target %-12s epoch %d, %d nodes, %d edges, index hot %v\n",
				ti.Name, ti.Epoch, ti.Nodes, ti.Edges, ti.IndexHot)
		}
	}

	switch {
	case res.countMismatch != "":
		return fmt.Errorf("inconsistent counts: %s", res.countMismatch)
	case len(res.latencies) == 0:
		return fmt.Errorf("no successful requests against %s", cfg.URL)
	case statsErr != nil:
		return fmt.Errorf("stats: %v", statsErr)
	case len(stats.Session.Plans.Buckets) == 0:
		return fmt.Errorf("server reports an empty plan histogram")
	case stats.TokensInUse != 0:
		return fmt.Errorf("server still pins %d worker tokens after drain", stats.TokensInUse)
	case cfg.ExplosiveFrac > 0 && res.sheds == 0 && stats.Deprioritized == 0:
		return fmt.Errorf("explosive mix (%d probes) produced no sheds and no deprioritizations — cost model not engaging", res.explosives)
	}
	if cfg.UpdateTarget != "" {
		ust := rstats.PerTarget[cfg.UpdateTarget]
		switch {
		case res.updates == 0:
			return fmt.Errorf("update client applied no batches against %s", cfg.UpdateTarget)
		case ust.Updates == 0 || ust.Epoch == 0:
			return fmt.Errorf("server reports no updates on %s (updates=%d epoch=%d)", cfg.UpdateTarget, ust.Updates, ust.Epoch)
		}
	}
	return nil
}

// patternPool extracts n connected patterns from g and serializes each
// once through the shared table. Sizes 3–6 keep single queries fast
// enough that a 10 s run sees hundreds of them.
func patternPool(rng *rand.Rand, g *parsge.Graph, n int, table *graphio.LabelTable) ([]string, error) {
	texts := make([]string, 0, n)
	for len(texts) < n {
		gp := testutil.ExtractPattern(rng, g, 3+rng.Intn(4))
		if gp.NumNodes() == 0 {
			continue
		}
		var buf bytes.Buffer
		if err := graphio.Write(&buf, fmt.Sprintf("lg-%d", len(texts)), gp, table); err != nil {
			return nil, err
		}
		texts = append(texts, buf.String())
	}
	return texts, nil
}

// explosivePattern builds the star probe for one target: the max-degree
// vertex with up to 12 of its distinct neighbors, arcs copied verbatim
// (labels and directions included) so the pattern is guaranteed
// satisfiable. Under homomorphism every leaf independently ranges over
// the center candidate's whole neighborhood, so the match count scales
// like sum over centers of degree^leaves — combinatorial explosion with
// large, healthy-looking domains. Exactly the query shape the cost
// model exists to shed.
func explosivePattern(g *parsge.Graph, table *graphio.LabelTable) (string, error) {
	center := int32(0)
	for v := int32(1); v < int32(g.NumNodes()); v++ {
		if g.Degree(v) > g.Degree(center) {
			center = v
		}
	}
	const maxLeaves = 12
	b := parsge.NewBuilder(1+maxLeaves, maxLeaves)
	b.AddNode(g.NodeLabel(center))
	taken := map[int32]bool{center: true}
	leaves := 0
	addLeaf := func(w int32, lab parsge.Label, out bool) {
		if leaves >= maxLeaves || taken[w] {
			return
		}
		taken[w] = true
		leaf := b.AddNode(g.NodeLabel(w))
		if out {
			b.AddEdge(0, leaf, lab)
		} else {
			b.AddEdge(leaf, 0, lab)
		}
		leaves++
	}
	outs, outLabs := g.OutNeighbors(center), g.OutEdgeLabels(center)
	for k, w := range outs {
		addLeaf(w, outLabs[k], true)
	}
	ins, inLabs := g.InNeighbors(center), g.InEdgeLabels(center)
	for k, w := range ins {
		addLeaf(w, inLabs[k], false)
	}
	gp, err := b.Build()
	if err != nil {
		return "", err
	}
	var buf bytes.Buffer
	if err := graphio.Write(&buf, "lg-explosive", gp, table); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// runUpdater trickles small edge-update batches at the update target
// until the deadline: it alternates adding a random unlabeled arc and
// removing one it added earlier, so the graph oscillates around its base
// instead of drifting unboundedly while epochs keep advancing.
func runUpdater(client *http.Client, cfg loadgenConfig, g *parsge.Graph, deadline time.Time, mu *sync.Mutex, res *loadgenResult) {
	type arc struct{ from, to int32 }
	urng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))
	n := int32(g.NumNodes())
	base := cfg.URL + "/targets/" + cfg.UpdateTarget
	var added []arc
	for time.Now().Before(deadline) {
		var ups []map[string]any
		if len(added) > 0 && urng.Intn(2) == 0 {
			j := urng.Intn(len(added))
			e := added[j]
			added = append(added[:j], added[j+1:]...)
			ups = append(ups, map[string]any{"from": e.from, "to": e.to, "remove": true})
		} else {
			e := arc{urng.Int31n(n), urng.Int31n(n)}
			added = append(added, e)
			ups = append(ups, map[string]any{"from": e.from, "to": e.to})
		}
		start := time.Now()
		epoch, err := issueUpdate(client, base, ups)
		lat := float64(time.Since(start)) / float64(time.Millisecond)
		mu.Lock()
		res.requests++
		if err != nil {
			res.errors++
		} else {
			res.latencies = append(res.latencies, lat)
			res.updates++
			res.lastEpoch = epoch
		}
		mu.Unlock()
		time.Sleep(25 * time.Millisecond)
	}
}

func waitHealthy(client *http.Client, url string, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		resp, err := client.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy after %v: %v", url, patience, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// issueQuery posts one query and returns the match count, the epoch the
// reply executed against, whether it was a cache hit, and whether the
// server shed it as predicted-explosive (HTTP 429 — an expected outcome
// under the cost model, not an error; the count is -1 and excluded from
// the consistency check). Streams are drained line by line to their
// terminal record.
func issueQuery(client *http.Client, base, pattern, sem string, mappings, stream bool) (int64, uint64, bool, bool, error) {
	body, _ := json.Marshal(map[string]any{
		"pattern":    pattern,
		"semantics":  sem,
		"mappings":   mappings,
		"stream":     stream,
		"timeout_ms": 30000,
	})
	resp, err := client.Post(base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, false, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		return -1, 0, false, true, nil
	}
	if resp.StatusCode != http.StatusOK {
		return 0, 0, false, false, fmt.Errorf("status %s", resp.Status)
	}
	if stream {
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<16), 1<<24)
		var streamed int64
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			var rec struct {
				Mapping   []int32 `json:"mapping"`
				Done      bool    `json:"done"`
				Matches   int64   `json:"matches"`
				Epoch     uint64  `json:"epoch"`
				Truncated bool    `json:"truncated"`
				Error     string  `json:"error"`
			}
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				return 0, 0, false, false, err
			}
			if rec.Done {
				if rec.Error != "" {
					return 0, 0, false, false, fmt.Errorf("stream error: %s", rec.Error)
				}
				if rec.Truncated {
					// A truncated stream has a lower-bound count; do not
					// feed it to the consistency check.
					return -1, rec.Epoch, false, false, nil
				}
				if rec.Matches != streamed {
					return 0, 0, false, false, fmt.Errorf("stream delivered %d mappings, terminal says %d", streamed, rec.Matches)
				}
				return rec.Matches, rec.Epoch, false, false, sc.Err()
			}
			streamed++
		}
		return 0, 0, false, false, fmt.Errorf("stream ended without terminal record: %v", sc.Err())
	}
	var rec struct {
		Matches   int64  `json:"matches"`
		Epoch     uint64 `json:"epoch"`
		Truncated bool   `json:"truncated"`
		CacheHit  bool   `json:"cache_hit"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		return 0, 0, false, false, err
	}
	if rec.Truncated {
		return -1, rec.Epoch, rec.CacheHit, false, nil
	}
	return rec.Matches, rec.Epoch, rec.CacheHit, false, nil
}

// issueCensus posts one census request and returns the subgraph total
// (-1 when truncated), the epoch it executed against, and whether it was
// a cache hit. top=1 keeps the reply small — totals are reported
// regardless of classes shown.
func issueCensus(client *http.Client, base string, k int) (int64, uint64, bool, error) {
	body, _ := json.Marshal(map[string]any{
		"k":          k,
		"top":        1,
		"timeout_ms": 30000,
	})
	resp, err := client.Post(base+"/census", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, false, fmt.Errorf("census status %s", resp.Status)
	}
	var rec struct {
		Subgraphs int64  `json:"subgraphs"`
		Epoch     uint64 `json:"epoch"`
		Truncated bool   `json:"truncated"`
		CacheHit  bool   `json:"cache_hit"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		return 0, 0, false, err
	}
	if rec.Truncated {
		return -1, rec.Epoch, rec.CacheHit, nil
	}
	return rec.Subgraphs, rec.Epoch, rec.CacheHit, nil
}

// issueUpdate posts one edge-update batch and returns the resulting
// epoch.
func issueUpdate(client *http.Client, base string, ups []map[string]any) (uint64, error) {
	body, _ := json.Marshal(map[string]any{"updates": ups})
	resp, err := client.Post(base+"/update", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("update status %s", resp.Status)
	}
	var rec struct {
		Epoch uint64 `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		return 0, err
	}
	return rec.Epoch, nil
}

func fetchStats(client *http.Client, url string) (service.Stats, error) {
	var st service.Stats
	resp, err := client.Get(url + "/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("stats status %s", resp.Status)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// fetchRouterStats decodes the /stats document of a multi-target server.
func fetchRouterStats(client *http.Client, url string) (service.RouterStats, error) {
	var st service.RouterStats
	resp, err := client.Get(url + "/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("stats status %s", resp.Status)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// mergeRouterStats folds the queried targets' per-target stats into one
// aggregate view for the shared report: counters sum, plan-histogram
// buckets concatenate (labeled by target), admission counters come from
// the router's shared view once.
func mergeRouterStats(rs service.RouterStats, targets []string) service.Stats {
	var out service.Stats
	for _, name := range targets {
		st, ok := rs.PerTarget[name]
		if !ok {
			continue
		}
		out.Queries += st.Queries
		out.Shared += st.Shared
		out.Sequential += st.Sequential
		out.Parallel += st.Parallel
		out.Census += st.Census
		out.CensusCacheHits += st.CensusCacheHits
		out.CensusCacheMisses += st.CensusCacheMisses
		out.Updates += st.Updates
		out.CacheHits += st.CacheHits
		out.CacheMisses += st.CacheMisses
		out.ShedExplosive += st.ShedExplosive
		out.Deprioritized += st.Deprioritized
		out.MispredictSmall += st.MispredictSmall
		out.MispredictLarge += st.MispredictLarge
		out.EstimateHits += st.EstimateHits
		out.EstimateMisses += st.EstimateMisses
		out.Session.Plans.Planned += st.Session.Plans.Planned
		out.Session.Plans.NoPlan += st.Session.Plans.NoPlan
		for _, b := range st.Session.Plans.Buckets {
			b.Plan = name + ":" + b.Plan
			out.Session.Plans.Buckets = append(out.Session.Plans.Buckets, b)
		}
	}
	out.TokensInUse = rs.TokensInUse
	out.Queued = rs.Queued
	out.Granted = rs.Granted
	out.Shed = rs.Shed
	out.QueueTimeouts = rs.QueueTimeouts
	out.TotalQueueWait = rs.TotalQueueWait
	return out
}

func report(cfg loadgenConfig, res *loadgenResult, stats service.Stats) {
	ok := len(res.latencies)
	qps := float64(ok) / cfg.Duration.Seconds()
	fmt.Printf("loadgen: %d requests (%d ok, %d errors, %d streamed, %d censuses) in %v from %d clients\n",
		res.requests, ok, res.errors, res.streams, res.censuses, cfg.Duration, cfg.Clients)
	fmt.Printf("loadgen: throughput %.1f q/s, cache hits %d (%.1f%%)\n",
		qps, res.cacheHits, 100*float64(res.cacheHits)/max(1, float64(ok)))
	if res.updates > 0 {
		fmt.Printf("loadgen: %d update batches applied to %s (final epoch %d)\n",
			res.updates, cfg.UpdateTarget, res.lastEpoch)
	}
	if ok > 0 {
		sort.Float64s(res.latencies)
		pct := func(p float64) float64 { return res.latencies[min(ok-1, int(p*float64(ok)))] }
		fmt.Printf("loadgen: latency ms p50=%.2f p95=%.2f p99=%.2f max=%.2f\n",
			pct(0.50), pct(0.95), pct(0.99), res.latencies[ok-1])
	}
	if res.explosives > 0 || res.sheds > 0 {
		fmt.Printf("loadgen: %d explosive probes issued, %d requests shed with 429\n",
			res.explosives, res.sheds)
	}
	fmt.Printf("loadgen: server: %d queries, %d singleflight-shared, %d shed, %d queue timeouts, %d/%d seq/par runs\n",
		stats.Queries, stats.Shared, stats.Shed, stats.QueueTimeouts, stats.Sequential, stats.Parallel)
	if stats.ShedExplosive > 0 || stats.Deprioritized > 0 || stats.MispredictSmall+stats.MispredictLarge > 0 {
		fmt.Printf("loadgen: server: %d shed explosive, %d deprioritized, %d/%d mispredicted small/large, %d/%d estimate hits/misses\n",
			stats.ShedExplosive, stats.Deprioritized, stats.MispredictSmall, stats.MispredictLarge,
			stats.EstimateHits, stats.EstimateMisses)
	}
	if stats.Census > 0 {
		fmt.Printf("loadgen: server: %d censuses (%d/%d census-cache hits/misses)\n",
			stats.Census, stats.CensusCacheHits, stats.CensusCacheMisses)
	}
	fmt.Printf("loadgen: plan histogram (%d executed, %d no-plan):\n", stats.Session.Plans.Planned, stats.Session.Plans.NoPlan)
	for _, b := range stats.Session.Plans.Buckets {
		fmt.Printf("loadgen:   %-32s %6d queries  unary %8v  ac %8v  inducedAC %8v\n",
			b.Plan, b.Count, b.UnaryTime.Round(time.Microsecond), b.ACTime.Round(time.Microsecond), b.InducedACTime.Round(time.Microsecond))
	}
}
