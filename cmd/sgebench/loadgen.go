package main

// Loadgen mode: replay a mixed query workload against a running sgeserve
// instance. Patterns are extracted from the same target file the server
// loaded, serialized through a shared label table so label strings agree,
// and issued by N concurrent clients cycling through the three matching
// semantics with a sprinkle of mapping and streaming requests — the
// closest thing to production traffic the bench harness can synthesize.
//
//	sgeserve  -target data/PPIS32-targets.gff &
//	sgebench  -loadgen http://localhost:8642 -target data/PPIS32-targets.gff \
//	          -clients 8 -duration 10s
//
// The run reports throughput, latency percentiles, cache hit rate and
// the server-side plan histogram, and fails (exit 1) when no request
// succeeded, when counts were inconsistent between requests for the same
// query identity, or when the server reports an empty plan histogram —
// the assertions the CI smoke job stands on.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"parsge"
	"parsge/internal/graphio"
	"parsge/internal/service"
	"parsge/internal/testutil"
)

type loadgenConfig struct {
	URL        string
	TargetFile string
	Clients    int
	Duration   time.Duration
	Patterns   int
	Seed       int64
	// CensusFrac is the fraction of requests issued as POST /census
	// (k cycling 3..4) instead of pattern queries, mixing the service's
	// heaviest always-large workload into the stream.
	CensusFrac float64
}

type loadgenResult struct {
	requests, errors, cacheHits, streams, censuses int64
	latencies                                      []float64 // ms, successful requests
	countMismatch                                  string
}

func runLoadgen(cfg loadgenConfig) error {
	if cfg.TargetFile == "" {
		return fmt.Errorf("-loadgen needs -loadgen-target (the file the server serves, to extract patterns from)")
	}
	f, err := os.Open(cfg.TargetFile)
	if err != nil {
		return err
	}
	table := graphio.NewLabelTable()
	graphs, err := parsge.ReadGraphs(f, table)
	f.Close()
	if err != nil {
		return err
	}
	if len(graphs) == 0 {
		return fmt.Errorf("%s: no graph sections", cfg.TargetFile)
	}
	target := graphs[0].Graph

	// Extract the pattern pool and serialize each once. Sizes 3–6 keep
	// single queries fast enough that a 10 s run sees hundreds of them.
	rng := rand.New(rand.NewSource(cfg.Seed))
	texts := make([]string, 0, cfg.Patterns)
	for len(texts) < cfg.Patterns {
		gp := testutil.ExtractPattern(rng, target, 3+rng.Intn(4))
		if gp.NumNodes() == 0 {
			continue
		}
		var buf bytes.Buffer
		if err := graphio.Write(&buf, fmt.Sprintf("lg-%d", len(texts)), gp, table); err != nil {
			return err
		}
		texts = append(texts, buf.String())
	}
	semantics := []string{"iso", "induced", "hom"}

	// Wait for the server to come up (the CI smoke job starts it
	// concurrently).
	client := &http.Client{Timeout: 60 * time.Second}
	if err := waitHealthy(client, cfg.URL, 10*time.Second); err != nil {
		return err
	}

	var mu sync.Mutex
	res := &loadgenResult{}
	counts := make(map[string]int64) // query identity -> first observed count
	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			crng := rand.New(rand.NewSource(cfg.Seed + int64(c)*7919))
			for i := 0; time.Now().Before(deadline); i++ {
				if cfg.CensusFrac > 0 && crng.Float64() < cfg.CensusFrac {
					k := 3 + (c+i)%2
					start := time.Now()
					subgraphs, hit, err := issueCensus(client, cfg.URL, k)
					lat := float64(time.Since(start)) / float64(time.Millisecond)
					mu.Lock()
					res.requests++
					if err != nil {
						res.errors++
					} else {
						res.latencies = append(res.latencies, lat)
						res.censuses++
						if hit {
							res.cacheHits++
						}
						if subgraphs >= 0 { // truncated censuses carry lower bounds
							id := fmt.Sprintf("census/k=%d", k)
							if prev, ok := counts[id]; ok && prev != subgraphs {
								if res.countMismatch == "" {
									res.countMismatch = fmt.Sprintf("%s: %d subgraphs then %d", id, prev, subgraphs)
								}
							} else {
								counts[id] = subgraphs
							}
						}
					}
					mu.Unlock()
					continue
				}
				pi := crng.Intn(len(texts))
				sem := semantics[(c+i)%len(semantics)]
				stream := crng.Intn(16) == 0
				withMappings := !stream && crng.Intn(8) == 0
				start := time.Now()
				matches, hit, err := issueQuery(client, cfg.URL, texts[pi], sem, withMappings, stream)
				lat := float64(time.Since(start)) / float64(time.Millisecond)
				mu.Lock()
				res.requests++
				if err != nil {
					res.errors++
				} else {
					res.latencies = append(res.latencies, lat)
					if hit {
						res.cacheHits++
					}
					if stream {
						res.streams++
					}
					if matches >= 0 { // truncated replies carry no exact count
						id := fmt.Sprintf("%d/%s", pi, sem)
						if prev, ok := counts[id]; ok && prev != matches {
							if res.countMismatch == "" {
								res.countMismatch = fmt.Sprintf("query %s: count %d then %d", id, prev, matches)
							}
						} else {
							counts[id] = matches
						}
					}
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	stats, statsErr := fetchStats(client, cfg.URL)
	report(cfg, res, stats)

	switch {
	case res.countMismatch != "":
		return fmt.Errorf("inconsistent counts: %s", res.countMismatch)
	case len(res.latencies) == 0:
		return fmt.Errorf("no successful requests against %s", cfg.URL)
	case statsErr != nil:
		return fmt.Errorf("stats: %v", statsErr)
	case len(stats.Session.Plans.Buckets) == 0:
		return fmt.Errorf("server reports an empty plan histogram")
	}
	return nil
}

func waitHealthy(client *http.Client, url string, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		resp, err := client.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy after %v: %v", url, patience, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// issueQuery posts one query and returns the match count and whether it
// was a cache hit. Streams are drained line by line to their terminal
// record.
func issueQuery(client *http.Client, url, pattern, sem string, mappings, stream bool) (int64, bool, error) {
	body, _ := json.Marshal(map[string]any{
		"pattern":    pattern,
		"semantics":  sem,
		"mappings":   mappings,
		"stream":     stream,
		"timeout_ms": 30000,
	})
	resp, err := client.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, false, fmt.Errorf("status %s", resp.Status)
	}
	if stream {
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<16), 1<<24)
		var streamed int64
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			var rec struct {
				Mapping   []int32 `json:"mapping"`
				Done      bool    `json:"done"`
				Matches   int64   `json:"matches"`
				Truncated bool    `json:"truncated"`
				Error     string  `json:"error"`
			}
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				return 0, false, err
			}
			if rec.Done {
				if rec.Error != "" {
					return 0, false, fmt.Errorf("stream error: %s", rec.Error)
				}
				if rec.Truncated {
					// A truncated stream has a lower-bound count; do not
					// feed it to the consistency check.
					return -1, false, nil
				}
				if rec.Matches != streamed {
					return 0, false, fmt.Errorf("stream delivered %d mappings, terminal says %d", streamed, rec.Matches)
				}
				return rec.Matches, false, sc.Err()
			}
			streamed++
		}
		return 0, false, fmt.Errorf("stream ended without terminal record: %v", sc.Err())
	}
	var rec struct {
		Matches   int64 `json:"matches"`
		Truncated bool  `json:"truncated"`
		CacheHit  bool  `json:"cache_hit"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		return 0, false, err
	}
	if rec.Truncated {
		return -1, rec.CacheHit, nil
	}
	return rec.Matches, rec.CacheHit, nil
}

// issueCensus posts one census request and returns the subgraph total
// (-1 when truncated) and whether it was a cache hit. top=1 keeps the
// reply small — totals are reported regardless of classes shown.
func issueCensus(client *http.Client, url string, k int) (int64, bool, error) {
	body, _ := json.Marshal(map[string]any{
		"k":          k,
		"top":        1,
		"timeout_ms": 30000,
	})
	resp, err := client.Post(url+"/census", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, false, fmt.Errorf("census status %s", resp.Status)
	}
	var rec struct {
		Subgraphs int64 `json:"subgraphs"`
		Truncated bool  `json:"truncated"`
		CacheHit  bool  `json:"cache_hit"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		return 0, false, err
	}
	if rec.Truncated {
		return -1, rec.CacheHit, nil
	}
	return rec.Subgraphs, rec.CacheHit, nil
}

func fetchStats(client *http.Client, url string) (service.Stats, error) {
	var st service.Stats
	resp, err := client.Get(url + "/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("stats status %s", resp.Status)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

func report(cfg loadgenConfig, res *loadgenResult, stats service.Stats) {
	ok := len(res.latencies)
	qps := float64(ok) / cfg.Duration.Seconds()
	fmt.Printf("loadgen: %d requests (%d ok, %d errors, %d streamed, %d censuses) in %v from %d clients\n",
		res.requests, ok, res.errors, res.streams, res.censuses, cfg.Duration, cfg.Clients)
	fmt.Printf("loadgen: throughput %.1f q/s, cache hits %d (%.1f%%)\n",
		qps, res.cacheHits, 100*float64(res.cacheHits)/max(1, float64(ok)))
	if ok > 0 {
		sort.Float64s(res.latencies)
		pct := func(p float64) float64 { return res.latencies[min(ok-1, int(p*float64(ok)))] }
		fmt.Printf("loadgen: latency ms p50=%.2f p95=%.2f p99=%.2f max=%.2f\n",
			pct(0.50), pct(0.95), pct(0.99), res.latencies[ok-1])
	}
	fmt.Printf("loadgen: server: %d queries, %d singleflight-shared, %d shed, %d queue timeouts, %d/%d seq/par runs\n",
		stats.Queries, stats.Shared, stats.Shed, stats.QueueTimeouts, stats.Sequential, stats.Parallel)
	if stats.Census > 0 {
		fmt.Printf("loadgen: server: %d censuses (%d/%d census-cache hits/misses)\n",
			stats.Census, stats.CensusCacheHits, stats.CensusCacheMisses)
	}
	fmt.Printf("loadgen: plan histogram (%d executed, %d no-plan):\n", stats.Session.Plans.Planned, stats.Session.Plans.NoPlan)
	for _, b := range stats.Session.Plans.Buckets {
		fmt.Printf("loadgen:   %-32s %6d queries  unary %8v  ac %8v  inducedAC %8v\n",
			b.Plan, b.Count, b.UnaryTime.Round(time.Microsecond), b.ACTime.Round(time.Microsecond), b.InducedACTime.Round(time.Microsecond))
	}
}
