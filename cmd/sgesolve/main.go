// Command sgesolve enumerates all subgraphs of a target graph isomorphic
// to a pattern graph, both given as GFF-style text files (see
// internal/graphio for the format).
//
// Usage:
//
//	sgesolve -pattern p.gff -target t.gff [-algo RI-DS-SI-FC] [-workers 8]
//	         [-semantics iso|induced|hom] [-group 4] [-timeout 180s]
//	         [-limit 0] [-print]
//	sgesolve -census 4 -target t.gff [-workers 8] [-timeout 180s] [-print]
//
// The second form runs a motif census instead of a pattern query: every
// connected k-subgraph of the target is counted per isomorphism class
// (no -pattern needed); -print emits each class representative as GFF.
//
// When a file contains several graph sections, the first is used; the
// -pattern-index / -target-index flags select others. Pattern and target
// share one label table so equal label strings match.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"time"

	"parsge"
)

func main() {
	var (
		patternPath  = flag.String("pattern", "", "pattern graph file (required)")
		targetPath   = flag.String("target", "", "target graph file (required)")
		patternIndex = flag.Int("pattern-index", 0, "which section of the pattern file to use")
		targetIndex  = flag.Int("target-index", 0, "which section of the target file to use")
		algo         = flag.String("algo", "RI-DS-SI-FC", "algorithm: RI, RI-DS, RI-DS-SI, RI-DS-SI-FC, VF2, LAD or Auto")
		workers      = flag.Int("workers", 1, "parallel workers (1 = sequential)")
		group        = flag.Int("group", 4, "task group size for work stealing (1-16)")
		timeout      = flag.Duration("timeout", 0, "abort after this wall time (0 = none)")
		limit        = flag.Int64("limit", 0, "stop after this many matches (0 = all)")
		printMaps    = flag.Bool("print", false, "print every mapping (pattern node -> target node)")
		induced      = flag.Bool("induced", false, "shorthand for -semantics induced")
		semantics    = flag.String("semantics", "iso", "matching semantics: iso (non-induced subgraph isomorphism), induced, or hom (homomorphism)")
		profile      = flag.Bool("profile", false, "print the per-depth search profile")
		censusK      = flag.Int("census", 0, "run a motif census at this subgraph size instead of a pattern query (no -pattern needed)")
	)
	flag.Parse()
	if *targetPath == "" || (*censusK == 0 && *patternPath == "") {
		flag.Usage()
		os.Exit(2)
	}

	table := parsge.NewLabelTable()
	gt, err := loadGraph(*targetPath, *targetIndex, table)
	exitOn(err)
	if *censusK != 0 {
		runCensus(gt, table, *censusK, *workers, *timeout, *printMaps)
		return
	}
	gp, err := loadGraph(*patternPath, *patternIndex, table)
	exitOn(err)

	alg, err := parseAlgo(*algo)
	exitOn(err)
	sem, err := parseSemantics(*semantics)
	exitOn(err)
	if *induced {
		if sem == parsge.Homomorphism {
			exitOn(fmt.Errorf("-induced contradicts -semantics hom"))
		}
		sem = parsge.InducedIso
	}

	opts := parsge.Options{
		Algorithm:     alg,
		Workers:       *workers,
		TaskGroupSize: *group,
		Timeout:       *timeout,
		Limit:         *limit,
		Semantics:     sem,
	}
	var mu sync.Mutex
	if *printMaps {
		opts.Visit = func(m []int32) bool {
			mu.Lock()
			defer mu.Unlock()
			parts := make([]string, len(m))
			for vp, vt := range m {
				parts[vp] = fmt.Sprintf("%d->%d", vp, vt)
			}
			fmt.Println(strings.Join(parts, " "))
			return true
		}
	}

	// Session API: target-side state is built once, and Ctrl-C cancels
	// the search cleanly through the context (reported as a timeout).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	tgt, err := parsge.NewTarget(gt, parsge.TargetOptions{})
	exitOn(err)
	res, err := tgt.Enumerate(ctx, gp, opts)
	exitOn(err)

	fmt.Printf("pattern: n=%d m=%d   target: n=%d m=%d\n",
		gp.NumNodes(), gp.NumEdges(), gt.NumNodes(), gt.NumEdges())
	fmt.Printf("algorithm: %s   workers: %d   semantics: %s\n", alg, *workers, sem)
	fmt.Printf("matches:   %d\n", res.Matches)
	fmt.Printf("states:    %d\n", res.States)
	fmt.Printf("preproc:   %v\n", res.PreprocTime)
	fmt.Printf("match:     %v\n", res.MatchTime)
	if *workers > 1 {
		fmt.Printf("steals:    %d\n", res.Steals)
	}
	if *profile && len(res.DepthStates) > 0 {
		fmt.Println("search profile (states per depth):")
		for d, c := range res.DepthStates {
			fmt.Printf("  depth %3d: %d\n", d, c)
		}
	}
	if res.Unsatisfiable {
		fmt.Println("note: preprocessing proved zero matches (empty domain)")
	}
	if res.TimedOut {
		fmt.Println("note: TIMED OUT — match count is a lower bound")
		os.Exit(3)
	}
}

// runCensus is the -census mode: count every connected k-subgraph of
// the target per isomorphism class and print the class table.
func runCensus(gt *parsge.Graph, table *parsge.LabelTable, k, workers int, timeout time.Duration, printReps bool) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	tgt, err := parsge.NewTarget(gt, parsge.TargetOptions{})
	exitOn(err)
	res, err := tgt.Census(ctx, parsge.CensusOptions{K: k, Workers: workers, Timeout: timeout})
	exitOn(err)

	fmt.Printf("target: n=%d m=%d   census: k=%d   workers: %d\n",
		gt.NumNodes(), gt.NumEdges(), k, workers)
	fmt.Printf("subgraphs: %d in %d classes\n", res.Subgraphs, len(res.Classes))
	fmt.Printf("memo:      %d hits / %d misses\n", res.MemoHits, res.MemoMisses)
	fmt.Printf("elapsed:   %v\n", res.Duration)
	if workers > 1 {
		fmt.Printf("steals:    %d\n", res.Steals)
	}
	fmt.Printf("%-18s %12s %6s %6s\n", "class", "count", "nodes", "edges")
	for _, c := range res.Classes {
		fmt.Printf("%016x   %12d %6d %6d\n", c.Hash, c.Count, c.Pattern.NumNodes(), c.Pattern.NumEdges())
	}
	if printReps {
		for i, c := range res.Classes {
			fmt.Println()
			exitOn(parsge.WriteGraph(os.Stdout, fmt.Sprintf("motif-%d", i), c.Pattern, table))
		}
	}
	if res.TimedOut {
		fmt.Println("note: TIMED OUT — counts are lower bounds")
		os.Exit(3)
	}
}

func loadGraph(path string, index int, table *parsge.LabelTable) (*parsge.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	gs, err := parsge.ReadGraphs(f, table)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if index < 0 || index >= len(gs) {
		return nil, fmt.Errorf("%s: has %d sections, index %d out of range", path, len(gs), index)
	}
	return gs[index].Graph, nil
}

func parseAlgo(s string) (parsge.Algorithm, error) {
	switch strings.ToUpper(strings.ReplaceAll(s, "_", "-")) {
	case "RI":
		return parsge.RI, nil
	case "RI-DS", "RIDS":
		return parsge.RIDS, nil
	case "RI-DS-SI", "RIDSSI":
		return parsge.RIDSSI, nil
	case "RI-DS-SI-FC", "RIDSSIFC":
		return parsge.RIDSSIFC, nil
	case "VF2":
		return parsge.VF2, nil
	case "LAD":
		return parsge.LAD, nil
	case "AUTO":
		return parsge.Auto, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", s)
	}
}

func parseSemantics(s string) (parsge.Semantics, error) {
	switch strings.ToLower(s) {
	case "iso", "subgraph-iso", "mono", "":
		return parsge.SubgraphIso, nil
	case "induced", "induced-iso":
		return parsge.InducedIso, nil
	case "hom", "homomorphism":
		return parsge.Homomorphism, nil
	default:
		return 0, fmt.Errorf("unknown semantics %q (want iso, induced, or hom)", s)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sgesolve:", err)
		os.Exit(1)
	}
}
