// Command sgeserve serves subgraph-enumeration queries over HTTP: the
// parsge library wrapped in the internal/service layer — result cache,
// admission control, plan observability — behind a small JSON API.
//
//	sgeserve -target data/PPIS32-targets.gff -listen :8642
//	sgeserve -collection PPIS32 -scale 0.05 -listen :8642
//	sgeserve -collection PPIS32 -scale 0.02 -targets -listen :8642
//
// Endpoints:
//
//	POST /query   {"pattern": "<GFF section>", "semantics": "induced",
//	               "mappings": true, "stream": false, ...}
//	GET  /healthz liveness (503 once draining)
//	GET  /stats   serving counters + the session plan histogram
//
// With -targets every graph section of -target (or every collection
// target) is hosted as a named target of one multi-target router
// sharing the worker budget, served under /targets/{name}/query,
// /targets/{name}/census and /targets/{name}/update — the update
// endpoint applies batched edge mutations (parsge.Target.ApplyUpdates)
// with epoch-tagged cache invalidation. /stats then lists every target
// with its mutation epoch.
//
// On SIGTERM/SIGINT the server drains gracefully: health flips to 503,
// new queries are refused, in-flight queries (streams included) get
// -drain-timeout to finish, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"parsge"
	"parsge/internal/datasets"
	"parsge/internal/graphio"
	"parsge/internal/service"
)

func main() {
	var (
		listen       = flag.String("listen", ":8642", "listen address")
		targetFile   = flag.String("target", "", "target graph file (GFF text format; first section is served unless -index is set)")
		index        = flag.Int("index", 0, "which graph section of -target (or collection target) to serve")
		multi        = flag.Bool("targets", false, "serve every section/collection target as a named router target under /targets/{name}/")
		collection   = flag.String("collection", "", "generate a synthetic collection target instead of reading -target: PPIS32, GRAEMLIN32 or PDBSv1")
		scale        = flag.Float64("scale", 0.05, "collection scale (with -collection)")
		seed         = flag.Int64("seed", 20170525, "collection seed (with -collection)")
		workers      = flag.Int("workers", 0, "total worker budget (0 = GOMAXPROCS)")
		parallel     = flag.Int("parallel", 0, "workers granted to a large query (0 = half the budget)")
		maxQueue     = flag.Int("queue", 0, "admission queue bound before shedding (0 = 8x budget)")
		queueTimeout = flag.Duration("queue-timeout", 2*time.Second, "max admission queue wait")
		cacheBudget  = flag.Int64("cache", 1<<20, "result cache budget in match-count units (-1 disables)")
		defTimeout   = flag.Duration("default-timeout", 30*time.Second, "timeout applied to queries that set none (0 = unbounded)")
		maxTimeout   = flag.Duration("max-timeout", 0, "clamp every query/census timeout to this server budget (0 = no clamp)")
		smallBudget  = flag.Duration("small-budget", 0, "predicted cost under which a query runs sequentially (0 = 25ms)")
		explosiveBud = flag.Duration("explosive-budget", 0, "predicted cost at which a query is shed/deprioritized (0 = max-timeout or 30s; negative disables)")
		explosivePol = flag.String("explosive-policy", "shed", "what happens to predicted-explosive queries: shed (HTTP 429) or deprioritize (low-priority queue)")
		smallLogDom  = flag.Float64("small-logdomain", 0, "domain score below which a history-less query runs sequentially (0 = 22)")
		explLogDom   = flag.Float64("explosive-logdomain", 0, "domain score at which a query is shed regardless of plan history (0 = 44)")
		staticCls    = flag.Bool("static-classify", false, "disable the cost model; classify on pattern size x mean degree (the pre-cost-model heuristic)")
		semantics    = flag.String("default-semantics", "", "semantics for queries that choose none: iso, induced or hom (empty = iso)")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "grace period for in-flight queries on shutdown")
		maxPattern   = flag.Int("max-pattern-nodes", 64, "reject patterns larger than this")
		maxHot       = flag.Int("max-hot-indexes", 0, "with -targets: max targets holding their label index at once (LRU eviction; 0 = unbounded)")
	)
	flag.Parse()

	var policy service.ExplosivePolicy
	switch *explosivePol {
	case "shed":
		policy = service.ExplosiveShed
	case "deprioritize":
		policy = service.ExplosiveDeprioritize
	default:
		exitOn(fmt.Errorf("unknown -explosive-policy %q (want shed or deprioritize)", *explosivePol))
	}

	table := graphio.NewLabelTable()

	defSem := parsge.SemanticsUnset
	if *semantics != "" {
		switch *semantics {
		case "iso":
			defSem = parsge.SubgraphIso
		case "induced":
			defSem = parsge.InducedIso
		case "hom":
			defSem = parsge.Homomorphism
		default:
			exitOn(fmt.Errorf("unknown -default-semantics %q", *semantics))
		}
	}

	var (
		handler *service.Server
		svc     *service.Service
		router  *service.Router
		banner  string
	)
	if *multi {
		named, err := loadTargets(*targetFile, *collection, *scale, *seed, table)
		exitOn(err)
		router = service.NewRouter(service.RouterConfig{
			Workers:            *workers,
			ParallelWorkers:    *parallel,
			MaxQueue:           *maxQueue,
			QueueTimeout:       *queueTimeout,
			CacheMaxMatches:    *cacheBudget,
			DefaultTimeout:     *defTimeout,
			MaxTimeout:         *maxTimeout,
			SmallBudget:        *smallBudget,
			ExplosiveBudget:    *explosiveBud,
			SmallLogDomain:     *smallLogDom,
			ExplosiveLogDomain: *explLogDom,
			ExplosivePolicy:    policy,
			DisableCostModel:   *staticCls,
			MaxHotIndexes:      *maxHot,
		})
		for _, nt := range named {
			exitOn(router.AddTarget(nt.name, nt.g, parsge.TargetOptions{DefaultSemantics: defSem}))
		}
		handler = service.NewRouterServer(router, table)
		banner = fmt.Sprintf("%d targets", len(named))
		for _, nt := range named {
			banner += fmt.Sprintf(" %s(%dn/%de)", nt.name, nt.g.NumNodes(), nt.g.NumEdges())
		}
	} else {
		g, name, err := loadTarget(*targetFile, *collection, *index, *scale, *seed, table)
		exitOn(err)
		tgt, err := parsge.NewTarget(g, parsge.TargetOptions{DefaultSemantics: defSem})
		exitOn(err)
		svc, err = service.New(service.Config{
			Target:             tgt,
			Workers:            *workers,
			ParallelWorkers:    *parallel,
			MaxQueue:           *maxQueue,
			QueueTimeout:       *queueTimeout,
			CacheMaxMatches:    *cacheBudget,
			DefaultTimeout:     *defTimeout,
			MaxTimeout:         *maxTimeout,
			SmallBudget:        *smallBudget,
			ExplosiveBudget:    *explosiveBud,
			SmallLogDomain:     *smallLogDom,
			ExplosiveLogDomain: *explLogDom,
			ExplosivePolicy:    policy,
			DisableCostModel:   *staticCls,
		})
		exitOn(err)
		handler = service.NewServer(svc, table)
		banner = fmt.Sprintf("%s (%d nodes, %d edges, mean degree %.1f)",
			name, g.NumNodes(), g.NumEdges(), tgt.MeanDegree())
	}
	handler.MaxPatternNodes = *maxPattern
	srv := &http.Server{
		Addr:    *listen,
		Handler: handler,
		// Transport-level untrusted-client defenses: a slowloris peer
		// must not pin a connection goroutine forever. WriteTimeout
		// stays 0 — streaming responses are legitimately long-lived.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	log.Printf("sgeserve: serving %s on %s", banner, *listen)

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-errc:
		exitOn(err)
	case sig := <-sigc:
		log.Printf("sgeserve: %v, draining (grace %v)", sig, *drainTimeout)
	}

	// Graceful drain: stop advertising health, refuse new queries, give
	// in-flight requests the grace period, then cut stragglers loose.
	handler.StartDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("sgeserve: drain incomplete: %v", err)
		srv.Close()
	}
	if router != nil {
		if err := router.Close(ctx); err != nil {
			log.Printf("sgeserve: router drain incomplete: %v", err)
		}
		rst := router.Stats()
		var queries, hits, updates, shedExpl, mispred int64
		for _, ts := range rst.PerTarget {
			queries += ts.Queries
			hits += ts.CacheHits
			updates += ts.Updates
			shedExpl += ts.ShedExplosive
			mispred += ts.MispredictSmall + ts.MispredictLarge
		}
		log.Printf("sgeserve: shut down after %d queries (%d cache hits, %d updates, %d shed, %d shed explosive, %d mispredicted)",
			queries, hits, updates, rst.Shed, shedExpl, mispred)
		return
	}
	if err := svc.Close(ctx); err != nil {
		log.Printf("sgeserve: service drain incomplete: %v", err)
	}
	st := svc.Stats()
	log.Printf("sgeserve: shut down after %d queries (%d cache hits, %d shed, %d shed explosive, %d mispredicted)",
		st.Queries, st.CacheHits, st.Shed, st.ShedExplosive, st.MispredictSmall+st.MispredictLarge)
}

// namedGraph is one router target read from disk or generated.
type namedGraph struct {
	name string
	g    *parsge.Graph
}

// loadTargets loads every graph section of file (or every collection
// target) for multi-target serving. Names are the GFF section names —
// "t<i>" when a section is unnamed — or "t0".."tN" for collections.
func loadTargets(file, collection string, scale float64, seed int64, table *graphio.LabelTable) ([]namedGraph, error) {
	switch {
	case file != "" && collection != "":
		return nil, fmt.Errorf("set -target or -collection, not both")
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		graphs, err := parsge.ReadGraphs(f, table)
		if err != nil {
			return nil, err
		}
		if len(graphs) == 0 {
			return nil, fmt.Errorf("%s has no graph sections", file)
		}
		out := make([]namedGraph, len(graphs))
		seen := make(map[string]bool, len(graphs))
		for i, ng := range graphs {
			name := ng.Name
			if name == "" || seen[name] {
				name = fmt.Sprintf("t%d", i)
			}
			seen[name] = true
			out[i] = namedGraph{name: name, g: ng.Graph}
		}
		return out, nil
	case collection != "":
		c, err := datasets.ByName(collection, datasets.Config{Scale: scale, Seed: seed})
		if err != nil {
			return nil, err
		}
		maxLabel := 0
		for _, g := range c.Targets {
			if l := int(g.MaxNodeLabel()); l > maxLabel {
				maxLabel = l
			}
		}
		for l := 1; l <= maxLabel; l++ {
			table.Intern(strconv.Itoa(l))
		}
		out := make([]namedGraph, len(c.Targets))
		for i, g := range c.Targets {
			out[i] = namedGraph{name: fmt.Sprintf("t%d", i), g: g}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("one of -target or -collection is required")
	}
}

// loadTarget reads the target graph from a file or generates a synthetic
// collection target.
func loadTarget(file, collection string, index int, scale float64, seed int64, table *graphio.LabelTable) (*parsge.Graph, string, error) {
	switch {
	case file != "" && collection != "":
		return nil, "", fmt.Errorf("set -target or -collection, not both")
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		graphs, err := parsge.ReadGraphs(f, table)
		if err != nil {
			return nil, "", err
		}
		if index < 0 || index >= len(graphs) {
			return nil, "", fmt.Errorf("%s has %d graph sections, -index %d out of range", file, len(graphs), index)
		}
		return graphs[index].Graph, graphs[index].Name, nil
	case collection != "":
		c, err := datasets.ByName(collection, datasets.Config{Scale: scale, Seed: seed})
		if err != nil {
			return nil, "", err
		}
		if index < 0 || index >= len(c.Targets) {
			return nil, "", fmt.Errorf("collection %s has %d targets, -index %d out of range", collection, len(c.Targets), index)
		}
		g := c.Targets[index]
		// Collection targets carry programmatic numeric labels that never
		// went through a LabelTable. Pre-intern their decimal spellings in
		// identity order ("1" → 1, "2" → 2, ...) so client patterns using
		// decimal labels (the LabelTable.Spell convention) intern to the
		// ids the target actually carries.
		for l := 1; l <= int(g.MaxNodeLabel()); l++ {
			table.Intern(strconv.Itoa(l))
		}
		return g, fmt.Sprintf("%s-t%d", c.Name, index), nil
	default:
		return nil, "", fmt.Errorf("one of -target or -collection is required")
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sgeserve:", err)
		os.Exit(1)
	}
}
