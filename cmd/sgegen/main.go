// Command sgegen writes the synthetic stand-ins for the paper's data
// collections (PPIS32, GRAEMLIN32, PDBSv1) to disk in the GFF-style text
// format, so they can be inspected, archived, or fed to sgesolve.
//
// Usage:
//
//	sgegen -collection PPIS32 -scale 0.05 -seed 1 -out ./data
//
// produces ./data/PPIS32-targets.gff (all target graphs) and
// ./data/PPIS32-patterns.gff (all pattern graphs, named with their
// provenance: target index, edge class, density class).
//
// The collections are undirected by construction, so sections are
// written in the compact "%undirected" form (one line per undirected
// edge — half the file size); -directed forces the legacy one-arc-per-
// line form. Both forms read back identically through graphio.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"parsge/internal/datasets"
	"parsge/internal/graph"
	"parsge/internal/graphio"
)

func main() {
	var (
		collection = flag.String("collection", "PPIS32", "PPIS32, GRAEMLIN32 or PDBSv1")
		scale      = flag.Float64("scale", 0.05, "size factor relative to the paper's Table 1 (1.0 = full size)")
		seed       = flag.Int64("seed", 20170525, "generation seed")
		patterns   = flag.Int("patterns", 0, "number of patterns (0 = scaled default)")
		out        = flag.String("out", ".", "output directory")
		directed   = flag.Bool("directed", false, "write the legacy one-arc-per-line form instead of %undirected sections")
	)
	flag.Parse()

	c, err := datasets.ByName(*collection, datasets.Config{
		Scale:       *scale,
		Seed:        *seed,
		NumPatterns: *patterns,
	})
	exitOn(err)

	exitOn(os.MkdirAll(*out, 0o755))
	table := graphio.NewLabelTable()
	write := func(w io.Writer, name string, g *graph.Graph) error {
		if *directed || !g.Symmetric() {
			return graphio.Write(w, name, g, table)
		}
		return graphio.WriteUndirected(w, name, g, table)
	}

	targetsPath := filepath.Join(*out, c.Name+"-targets.gff")
	tf, err := os.Create(targetsPath)
	exitOn(err)
	for i, g := range c.Targets {
		exitOn(write(tf, fmt.Sprintf("%s-t%02d", c.Name, i), g))
	}
	exitOn(tf.Close())

	patternsPath := filepath.Join(*out, c.Name+"-patterns.gff")
	pf, err := os.Create(patternsPath)
	exitOn(err)
	for _, p := range c.Patterns {
		exitOn(write(pf, p.Name, p.Graph))
	}
	exitOn(pf.Close())

	row := datasets.Table1(c)
	fmt.Printf("%s: %d targets (|V| %d..%d, |E| %d..%d, deg µ=%.2f σ=%.2f), %d patterns\n",
		c.Name, row.NumTargets, row.MinNodes, row.MaxNodes, row.MinEdges, row.MaxEdges,
		row.DegreeMean, row.DegreeSD, row.NumPatterns)
	fmt.Println("wrote", targetsPath)
	fmt.Println("wrote", patternsPath)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sgegen:", err)
		os.Exit(1)
	}
}
