// Command sgelint is the repository's static invariant suite — the
// concurrency, epoch, and context discipline checks described in
// DESIGN.md ("Static analysis") — packaged as a vet tool:
//
//	go build -o "$(go env GOPATH)/bin/sgelint" ./cmd/sgelint
//	go vet -vettool="$(go env GOPATH)/bin/sgelint" ./...
//
// or simply `make lint`. Run `sgelint` with no arguments for the
// analyzer list and the suppression syntax.
package main

import "parsge/internal/analysis"

func main() {
	analysis.Main(analysis.All())
}
