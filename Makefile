# Reproduces the CI gates locally. `make lint test` before pushing runs
# exactly what the lint and test jobs run.

GOBIN := $(shell go env GOPATH)/bin

.PHONY: all build test lint sgelint fmt-check vet clean

all: build lint test

build:
	go build ./...

test:
	go test ./...

# lint = the CI lint job: the sgelint invariant suite over every
# package (including test files, via go vet's [pkg.test] variants),
# plain go vet, and a gofmt cleanliness check.
lint: sgelint vet fmt-check

sgelint:
	go build -o $(GOBIN)/sgelint ./cmd/sgelint
	go vet -vettool=$(GOBIN)/sgelint ./...

vet:
	go vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

clean:
	rm -f $(GOBIN)/sgelint coverage.out
