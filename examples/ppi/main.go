// PPI: the paper's motivating workload — enumerating a labeled query in
// protein-protein interaction networks (Kimmig et al. §1, §5.1).
//
// This example synthesizes a PPI-style target (heavy-tailed degrees, 32
// protein-family labels), extracts a query subgraph the way the
// benchmark collections were built, and compares the four RI-family
// algorithms and the VF2 baseline on it, sequentially and in parallel.
//
//	go run ./examples/ppi
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"text/tabwriter"

	"parsge"
)

const (
	numProteins   = 1500
	meanDegree    = 14
	labelAlphabet = 32
	queryEdges    = 24
	seed          = 42
)

func main() {
	rng := rand.New(rand.NewSource(seed))
	target := buildPPINetwork(rng)
	query := extractQuery(rng, target, queryEdges)
	fmt.Printf("target: %d proteins, %d interactions; query: %d nodes, %d edges\n\n",
		target.NumNodes(), target.NumEdges()/2, query.NumNodes(), query.NumEdges()/2)

	// One session serves the whole comparison: the label index over the
	// 32 protein families is built once and shared by every run below.
	tgt, err := parsge.NewTarget(target, parsge.TargetOptions{})
	if err != nil {
		log.Fatal(err)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "algorithm\tworkers\tmatches\tstates\tpreproc\tmatch time")
	run := func(alg parsge.Algorithm, workers int) {
		res, err := tgt.Enumerate(context.Background(), query, parsge.Options{
			Algorithm: alg,
			Workers:   workers,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%v\t%d\t%d\t%d\t%v\t%v\n",
			alg, workers, res.Matches, res.States, res.PreprocTime, res.MatchTime)
	}
	for _, alg := range []parsge.Algorithm{parsge.RI, parsge.RIDS, parsge.RIDSSI, parsge.RIDSSIFC, parsge.VF2} {
		run(alg, 1)
	}
	run(parsge.RIDSSIFC, 4)
	run(parsge.RIDSSIFC, 16)
	w.Flush()
	fmt.Println("\nNote how the DS variants shrink the explored states on this dense,")
	fmt.Println("label-rich network — the effect behind the paper's Figs 7 and 12.")
}

// buildPPINetwork samples a Chung-Lu-style graph with lognormal degree
// weights (heavy tail) and Gaussian-distributed labels, the shape of the
// paper's PPIS32 collection.
func buildPPINetwork(rng *rand.Rand) *parsge.Graph {
	weights := make([]float64, numProteins)
	sum := 0.0
	for i := range weights {
		weights[i] = math.Exp(rng.NormFloat64())
		sum += weights[i]
	}
	cum := make([]float64, numProteins)
	acc := 0.0
	for i, w := range weights {
		acc += w
		cum[i] = acc
	}
	pick := func() int32 {
		x := rng.Float64() * sum
		lo, hi := 0, numProteins-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return int32(lo)
	}

	b := parsge.NewBuilder(numProteins, numProteins*meanDegree)
	for i := 0; i < numProteins; i++ {
		lab := int(float64(labelAlphabet)/2 + rng.NormFloat64()*float64(labelAlphabet)/6)
		if lab < 0 {
			lab = 0
		}
		if lab >= labelAlphabet {
			lab = labelAlphabet - 1
		}
		b.AddNode(parsge.Label(lab))
	}
	seen := map[int64]bool{}
	for added := 0; added < numProteins*meanDegree/2; {
		u, v := pick(), pick()
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := int64(u)<<32 | int64(v)
		if seen[key] {
			continue
		}
		seen[key] = true
		b.AddEdgeBoth(u, v, parsge.NoLabel)
		added++
	}
	return b.MustBuild()
}

// extractQuery grows a connected subgraph with the requested number of
// undirected edges — the construction used by the benchmark collections,
// guaranteeing at least one embedding exists.
func extractQuery(rng *rand.Rand, gt *parsge.Graph, wantEdges int) *parsge.Graph {
	start := int32(rng.Intn(gt.NumNodes()))
	nodes := []int32{start}
	index := map[int32]int32{start: 0}
	type und struct{ a, b int32 }
	chosen := map[und]bool{}
	for len(chosen) < wantEdges {
		v := nodes[rng.Intn(len(nodes))]
		adj := gt.OutNeighbors(v)
		if len(adj) == 0 {
			break
		}
		u := adj[rng.Intn(len(adj))]
		a, b := v, u
		if a > b {
			a, b = b, a
		}
		if chosen[und{a, b}] {
			continue
		}
		chosen[und{a, b}] = true
		if _, ok := index[u]; !ok {
			index[u] = int32(len(nodes))
			nodes = append(nodes, u)
		}
	}
	qb := parsge.NewBuilder(len(nodes), 2*len(chosen))
	for _, tv := range nodes {
		qb.AddNode(gt.NodeLabel(tv))
	}
	for e := range chosen {
		qb.AddEdgeBoth(index[e.a], index[e.b], parsge.NoLabel)
	}
	return qb.MustBuild()
}
