// Quickstart: build a labeled pattern and target with the parsge API,
// enumerate all matches, and inspect the result.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"parsge"
)

func main() {
	// Labels are small integers; applications typically intern strings
	// through parsge.NewLabelTable (see the file-based tools), but any
	// stable mapping works. Here: 1 = kinase, 2 = substrate.
	const (
		kinase    = parsge.Label(1)
		substrate = parsge.Label(2)
	)

	// Pattern: a kinase phosphorylating two substrates that interact
	// with each other (a labeled triangle). AddEdgeBoth models an
	// undirected interaction; AddEdge a directed one.
	pb := parsge.NewBuilder(3, 4)
	k := pb.AddNode(kinase)
	s1 := pb.AddNode(substrate)
	s2 := pb.AddNode(substrate)
	pb.AddEdge(k, s1, parsge.NoLabel) // phosphorylation: directed
	pb.AddEdge(k, s2, parsge.NoLabel)
	pb.AddEdgeBoth(s1, s2, parsge.NoLabel) // interaction: undirected
	pattern := pb.MustBuild()

	// Target: a small interaction network containing two copies of the
	// motif plus decoys.
	tb := parsge.NewBuilder(8, 16)
	tk1 := tb.AddNode(kinase)
	ta := tb.AddNode(substrate)
	tc := tb.AddNode(substrate)
	tk2 := tb.AddNode(kinase)
	td := tb.AddNode(substrate)
	te := tb.AddNode(substrate)
	tf := tb.AddNode(substrate) // decoy: not phosphorylated
	tg := tb.AddNode(kinase)    // decoy kinase without substrates
	tb.AddEdge(tk1, ta, parsge.NoLabel)
	tb.AddEdge(tk1, tc, parsge.NoLabel)
	tb.AddEdgeBoth(ta, tc, parsge.NoLabel)
	tb.AddEdge(tk2, td, parsge.NoLabel)
	tb.AddEdge(tk2, te, parsge.NoLabel)
	tb.AddEdgeBoth(td, te, parsge.NoLabel)
	tb.AddEdgeBoth(tf, td, parsge.NoLabel)
	tb.AddEdge(tg, tg, parsge.NoLabel) // self-loop decoy
	target := tb.MustBuild()

	// Build the query session once — the label index and scratch pools
	// are shared by every query against this target — then enumerate
	// with the paper's best dense-graph variant. For graphs this small
	// one worker is plenty; see examples/tuning for the parallel knobs.
	tgt, err := parsge.NewTarget(target, parsge.TargetOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := tgt.Enumerate(context.Background(), pattern, parsge.Options{
		Algorithm: parsge.RIDSSIFC,
		Visit: func(m []int32) bool {
			fmt.Printf("  match: kinase=%d substrates=%d,%d\n", m[k], m[s1], m[s2])
			return true
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("matches: %d (search explored %d states in %v; preprocessing %v)\n",
		res.Matches, res.States, res.MatchTime, res.PreprocTime)

	// Each motif occurrence is reported twice (s1/s2 swap) because the
	// pattern has an automorphism — standard for subgraph enumeration.
	if res.Matches != 4 {
		log.Fatalf("expected 4 matches (2 occurrences × 2 automorphisms), got %d", res.Matches)
	}
}
