// Motifs: count classic directed three- and four-node motifs in a
// synthetic regulatory network — the network-analysis application family
// the paper cites (motif discovery, §1).
//
// Each motif is a small unlabeled directed pattern; Enumerate counts its
// embeddings, and the counts are normalized by the motif's automorphism
// group size to report *occurrences* (vertex sets) rather than ordered
// embeddings.
//
//	go run ./examples/motifs
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"parsge"
)

func main() {
	target := buildRegulatoryNetwork(800, 3200, 7)
	fmt.Printf("network: %d genes, %d directed regulations\n\n",
		target.NumNodes(), target.NumEdges())

	// A motif census is the canonical batch workload: one target, many
	// small patterns. EnumerateBatch schedules the whole catalog over
	// one shared work-stealing pool, reusing the session's target-side
	// state for every motif.
	tgt, err := parsge.NewTarget(target, parsge.TargetOptions{})
	if err != nil {
		log.Fatal(err)
	}
	catalog := motifs()
	patterns := make([]*parsge.Graph, len(catalog))
	for i, m := range catalog {
		patterns[i] = m.pattern
	}
	results, err := tgt.EnumerateBatch(context.Background(), patterns, parsge.Options{
		Algorithm: parsge.RI, // unlabeled sparse queries: plain RI
	})
	if err != nil {
		log.Fatal(err)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "motif\tembeddings\tautomorphisms\toccurrences\tstates")
	for i, m := range catalog {
		res := results[i]
		autos, err := parsge.Automorphisms(m.pattern)
		if err != nil {
			log.Fatal(err)
		}
		if autos != int64(m.autos) {
			log.Fatalf("%s: computed %d automorphisms, textbook says %d", m.name, autos, m.autos)
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\n",
			m.name, res.Matches, autos, res.Matches/autos, res.States)
	}
	w.Flush()
}

type motif struct {
	name    string
	pattern *parsge.Graph
	autos   int // size of the automorphism group (embeddings per occurrence)
}

// motifs returns the classic catalog: feed-forward loop, 3-cycle, bifan
// and the 4-node feedback cycle.
func motifs() []motif {
	ffl := parsge.NewBuilder(3, 3) // a→b, a→c, b→c
	a := ffl.AddNode(parsge.NoLabel)
	b := ffl.AddNode(parsge.NoLabel)
	c := ffl.AddNode(parsge.NoLabel)
	ffl.AddEdge(a, b, parsge.NoLabel)
	ffl.AddEdge(a, c, parsge.NoLabel)
	ffl.AddEdge(b, c, parsge.NoLabel)

	cyc3 := parsge.NewBuilder(3, 3) // a→b→c→a
	a = cyc3.AddNode(parsge.NoLabel)
	b = cyc3.AddNode(parsge.NoLabel)
	c = cyc3.AddNode(parsge.NoLabel)
	cyc3.AddEdge(a, b, parsge.NoLabel)
	cyc3.AddEdge(b, c, parsge.NoLabel)
	cyc3.AddEdge(c, a, parsge.NoLabel)

	bifan := parsge.NewBuilder(4, 4) // a→c, a→d, b→c, b→d
	a = bifan.AddNode(parsge.NoLabel)
	b = bifan.AddNode(parsge.NoLabel)
	c = bifan.AddNode(parsge.NoLabel)
	d := bifan.AddNode(parsge.NoLabel)
	bifan.AddEdge(a, c, parsge.NoLabel)
	bifan.AddEdge(a, d, parsge.NoLabel)
	bifan.AddEdge(b, c, parsge.NoLabel)
	bifan.AddEdge(b, d, parsge.NoLabel)

	cyc4 := parsge.NewBuilder(4, 4) // a→b→c→d→a
	a = cyc4.AddNode(parsge.NoLabel)
	b = cyc4.AddNode(parsge.NoLabel)
	c = cyc4.AddNode(parsge.NoLabel)
	d = cyc4.AddNode(parsge.NoLabel)
	cyc4.AddEdge(a, b, parsge.NoLabel)
	cyc4.AddEdge(b, c, parsge.NoLabel)
	cyc4.AddEdge(c, d, parsge.NoLabel)
	cyc4.AddEdge(d, a, parsge.NoLabel)

	return []motif{
		{"feed-forward loop", ffl.MustBuild(), 1},
		{"3-cycle", cyc3.MustBuild(), 3},
		{"bifan", bifan.MustBuild(), 4},
		{"4-cycle", cyc4.MustBuild(), 4},
	}
}

// buildRegulatoryNetwork samples a directed scale-free-ish graph via
// preferential attachment with extra random regulations.
func buildRegulatoryNetwork(n, m int, seed int64) *parsge.Graph {
	rng := rand.New(rand.NewSource(seed))
	bld := parsge.NewBuilder(n, m)
	bld.AddNodes(n)
	// Endpoint pool for preferential attachment: every edge endpoint is
	// appended, so high-degree nodes attract more edges.
	pool := make([]int32, 0, 2*m)
	for i := 0; i < n; i++ {
		pool = append(pool, int32(i))
	}
	seen := map[int64]bool{}
	for added := 0; added < m; {
		u := pool[rng.Intn(len(pool))]
		v := pool[rng.Intn(len(pool))]
		if u == v {
			continue
		}
		key := int64(u)<<32 | int64(v)
		if seen[key] {
			continue
		}
		seen[key] = true
		bld.AddEdge(u, v, parsge.NoLabel)
		pool = append(pool, u, v)
		added++
	}
	return bld.MustBuild()
}
