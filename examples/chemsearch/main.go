// Chemsearch: an end-to-end file-based workflow — the "chemical
// similarity" application family the paper cites (§1). A molecular
// database is written to disk in the GFF text format, read back with a
// shared label table, and searched for a functional-group-like query
// with each algorithm, induced and non-induced.
//
//	go run ./examples/chemsearch
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"parsge"
)

func main() {
	// 1. Build a small "database" of molecule-like graphs and serialize
	// it — in a real pipeline this file would come from an extraction
	// tool. Atoms are node labels, bond orders are edge labels.
	table := parsge.NewLabelTable()
	var db bytes.Buffer
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 6; i++ {
		mol := makeMolecule(rng, table, 30+10*i)
		if err := parsge.WriteGraph(&db, fmt.Sprintf("mol%02d", i), mol, table); err != nil {
			log.Fatal(err)
		}
	}

	// 2. Read the database back. Sharing the label table guarantees
	// "C" in the query means the same label id as "C" in the database.
	mols, err := parsge.ReadGraphs(bytes.NewReader(db.Bytes()), table)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d molecules\n\n", len(mols))

	// 3. The query: a carboxyl-like group C(-O)(=O) attached to a
	// carbon chain. Single bonds are label "-", double bonds "=".
	q := parsge.NewBuilder(4, 6)
	c1 := q.AddNode(table.Intern("C"))
	c2 := q.AddNode(table.Intern("C"))
	o1 := q.AddNode(table.Intern("O"))
	o2 := q.AddNode(table.Intern("O"))
	q.AddEdgeBoth(c1, c2, table.Intern("-"))
	q.AddEdgeBoth(c2, o1, table.Intern("-"))
	q.AddEdgeBoth(c2, o2, table.Intern("="))
	query := q.MustBuild()

	// 4. Search every molecule with every engine under every matching
	// semantics: induced insists the matched atoms have no extra bonds
	// among themselves, homomorphism allows atoms to be revisited (it
	// counts labeled walks rather than embeddings). Each molecule gets
	// one session, amortizing its atom-label index over all queries
	// against it.
	ctx := context.Background()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "molecule\tatoms\tbonds\tRI-DS-SI-FC\tVF2\tLAD\tinduced\thom")
	for _, m := range mols {
		tgt, err := parsge.NewTarget(m.Graph, parsge.TargetOptions{})
		if err != nil {
			log.Fatal(err)
		}
		counts := make(map[string]int64)
		for _, alg := range []parsge.Algorithm{parsge.RIDSSIFC, parsge.VF2, parsge.LAD} {
			n, err := tgt.Count(ctx, query, parsge.Options{Algorithm: alg})
			if err != nil {
				log.Fatal(err)
			}
			counts[alg.String()] = n
		}
		induced, err := tgt.Count(ctx, query, parsge.Options{Algorithm: parsge.RIDSSIFC, Semantics: parsge.InducedIso})
		if err != nil {
			log.Fatal(err)
		}
		hom, err := tgt.Count(ctx, query, parsge.Options{Algorithm: parsge.RIDSSIFC, Semantics: parsge.Homomorphism})
		if err != nil {
			log.Fatal(err)
		}
		if counts["RI-DS-SI-FC"] != counts["VF2"] || counts["VF2"] != counts["LAD"] {
			log.Fatalf("engines disagree on %s: %v", m.Name, counts)
		}
		if induced > counts["RI-DS-SI-FC"] || hom < counts["RI-DS-SI-FC"] {
			log.Fatalf("semantics ordering violated on %s: induced=%d iso=%d hom=%d",
				m.Name, induced, counts["RI-DS-SI-FC"], hom)
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			m.Name, m.Graph.NumNodes(), m.Graph.NumEdges()/2,
			counts["RI-DS-SI-FC"], counts["VF2"], counts["LAD"], induced, hom)
	}
	w.Flush()
	fmt.Println("\nAll three engines agree on every molecule (they cross-validate each")
	fmt.Println("other); per molecule, induced ≤ non-induced ≤ homomorphism counts.")
}

// makeMolecule builds a chain-with-branches graph with C/N/O atoms and
// -/= bonds, sprinkling in carboxyl-like groups so the query hits.
func makeMolecule(rng *rand.Rand, table *parsge.LabelTable, atoms int) *parsge.Graph {
	carbon := table.Intern("C")
	nitrogen := table.Intern("N")
	oxygen := table.Intern("O")
	single := table.Intern("-")
	double := table.Intern("=")

	b := parsge.NewBuilder(atoms, 3*atoms)
	kinds := []parsge.Label{carbon, carbon, carbon, nitrogen, oxygen}
	for i := 0; i < atoms; i++ {
		b.AddNode(kinds[rng.Intn(len(kinds))])
	}
	// Backbone chain with occasional double bonds.
	for i := 1; i < atoms; i++ {
		bond := single
		if rng.Intn(5) == 0 {
			bond = double
		}
		lo := i - 3
		if lo < 0 {
			lo = 0
		}
		b.AddEdgeBoth(int32(lo+rng.Intn(i-lo)), int32(i), bond)
	}
	// Attach a few explicit carboxyl groups: C(-O)(=O).
	for g := 0; g < 1+atoms/20; g++ {
		c := b.AddNode(carbon)
		oS := b.AddNode(oxygen)
		oD := b.AddNode(oxygen)
		b.AddEdgeBoth(int32(rng.Intn(atoms)), c, single)
		b.AddEdgeBoth(c, oS, single)
		b.AddEdgeBoth(c, oD, double)
	}
	return b.MustBuild()
}
