// Tuning: explore the parallel runtime's knobs — worker count, task
// group size (coalescing), and work stealing — on one hard instance,
// reproducing in miniature the paper's Fig 3 and Fig 4 methodology.
//
//	go run ./examples/tuning
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"parsge"
)

func main() {
	target, query := makeInstance()
	fmt.Printf("target: %d nodes, %d arcs; query: %d nodes, %d arcs\n",
		target.NumNodes(), target.NumEdges(), query.NumNodes(), query.NumEdges())

	// One session for the whole sweep: every configuration below reuses
	// the same target-side index and scratch pools.
	tgt, err := parsge.NewTarget(target, parsge.TargetOptions{})
	if err != nil {
		log.Fatal(err)
	}
	base, err := tgt.Enumerate(context.Background(), query, parsge.Options{Algorithm: parsge.RIDS})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential RI-DS: %d matches, %d states, %v match time\n\n",
		base.Matches, base.States, base.MatchTime)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "workers\tgroup\tstealing\tmatch time\tsteals\tbalance speedup")
	for _, workers := range []int{2, 4, 8, 16} {
		for _, group := range []int{1, 4, 16} {
			report(w, tgt, query, base.Matches, parsge.Options{
				Algorithm:     parsge.RIDS,
				Workers:       workers,
				TaskGroupSize: group,
			})
		}
	}
	// The Fig 3 ablation: stealing off ruins the load balance.
	report(w, tgt, query, base.Matches, parsge.Options{
		Algorithm:       parsge.RIDS,
		Workers:         16,
		TaskGroupSize:   4,
		DisableStealing: true,
	})
	w.Flush()
	fmt.Println("\nbalance speedup = total states / max per-worker states: the")
	fmt.Println("hardware-independent upper bound on parallel speedup (perfect = workers).")
}

func report(w *tabwriter.Writer, tgt *parsge.Target, query *parsge.Graph, want int64, opts parsge.Options) {
	res, err := tgt.Enumerate(context.Background(), query, opts)
	if err != nil {
		log.Fatal(err)
	}
	if res.Matches != want {
		log.Fatalf("configuration %+v returned %d matches, want %d", opts, res.Matches, want)
	}
	var sum, max int64
	for _, s := range res.PerWorkerStates {
		sum += s
		if s > max {
			max = s
		}
	}
	balance := 1.0
	if max > 0 {
		balance = float64(sum) / float64(max)
	}
	fmt.Fprintf(w, "%d\t%d\t%v\t%v\t%d\t%.2f\n",
		opts.Workers, opts.TaskGroupSize, !opts.DisableStealing, res.MatchTime, res.Steals, balance)
}

// makeInstance builds a dense unlabeled-ish instance hard enough that
// scheduling effects are visible.
func makeInstance() (target, query *parsge.Graph) {
	const n, m = 400, 4800
	rng := rand.New(rand.NewSource(11))
	tb := parsge.NewBuilder(n, 2*m)
	for i := 0; i < n; i++ {
		tb.AddNode(parsge.Label(rng.Intn(4)))
	}
	seen := map[int64]bool{}
	for added := 0; added < m; {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := int64(u)<<32 | int64(v)
		if seen[key] {
			continue
		}
		seen[key] = true
		tb.AddEdgeBoth(u, v, parsge.NoLabel)
		added++
	}
	target = tb.MustBuild()

	// Query: a 6-node connected subgraph of the target.
	start := int32(rng.Intn(n))
	nodes := []int32{start}
	index := map[int32]int32{start: 0}
	for len(nodes) < 6 {
		v := nodes[rng.Intn(len(nodes))]
		adj := target.OutNeighbors(v)
		u := adj[rng.Intn(len(adj))]
		if _, ok := index[u]; !ok {
			index[u] = int32(len(nodes))
			nodes = append(nodes, u)
		}
	}
	qb := parsge.NewBuilder(len(nodes), 0)
	for _, tv := range nodes {
		qb.AddNode(target.NodeLabel(tv))
	}
	for i, a := range nodes {
		for j, b := range nodes {
			if i < j && target.HasEdge(a, b) {
				qb.AddEdgeBoth(int32(i), int32(j), parsge.NoLabel)
			}
		}
	}
	query = qb.MustBuild()
	return target, query
}
