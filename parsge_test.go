package parsge

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"parsge/internal/testutil"
)

// squarePattern is an undirected 4-cycle with alternating labels.
func squarePattern() *Graph {
	b := NewBuilder(4, 8)
	b.AddNode(1)
	b.AddNode(2)
	b.AddNode(1)
	b.AddNode(2)
	b.AddEdgeBoth(0, 1, 0)
	b.AddEdgeBoth(1, 2, 0)
	b.AddEdgeBoth(2, 3, 0)
	b.AddEdgeBoth(3, 0, 0)
	return b.MustBuild()
}

// gridTarget builds a labeled 4x4 grid (checkerboard labels) which
// contains many labeled 4-cycles.
func gridTarget() *Graph {
	const k = 4
	b := NewBuilder(k*k, 4*k*k)
	for i := 0; i < k*k; i++ {
		r, c := i/k, i%k
		b.AddNode(Label(1 + (r+c)%2))
	}
	id := func(r, c int) int32 { return int32(r*k + c) }
	for r := 0; r < k; r++ {
		for c := 0; c < k; c++ {
			if c+1 < k {
				b.AddEdgeBoth(id(r, c), id(r, c+1), 0)
			}
			if r+1 < k {
				b.AddEdgeBoth(id(r, c), id(r+1, c), 0)
			}
		}
	}
	return b.MustBuild()
}

func TestAllAlgorithmsAgree(t *testing.T) {
	gp, gt := squarePattern(), gridTarget()
	var counts []int64
	for _, alg := range []Algorithm{RI, RIDS, RIDSSI, RIDSSIFC, VF2} {
		res, err := Enumerate(gp, gt, Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		counts = append(counts, res.Matches)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] != counts[0] {
			t.Fatalf("algorithms disagree: %v", counts)
		}
	}
	if counts[0] == 0 {
		t.Fatal("grid should contain labeled squares")
	}
}

func TestParallelAgreesWithSequential(t *testing.T) {
	gp, gt := squarePattern(), gridTarget()
	seq, err := Enumerate(gp, gt, Options{Algorithm: RIDSSIFC})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8} {
		par, err := Enumerate(gp, gt, Options{Algorithm: RIDSSIFC, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if par.Matches != seq.Matches {
			t.Errorf("workers=%d: %d matches, want %d", w, par.Matches, seq.Matches)
		}
		if len(par.PerWorkerStates) != w {
			t.Errorf("workers=%d: PerWorkerStates has %d entries", w, len(par.PerWorkerStates))
		}
	}
}

func TestCount(t *testing.T) {
	gp, gt := squarePattern(), gridTarget()
	n, err := Count(gp, gt, Options{})
	if err != nil || n == 0 {
		t.Fatalf("Count = %d, %v", n, err)
	}
}

func TestNilGraphs(t *testing.T) {
	if _, err := Enumerate(nil, gridTarget(), Options{}); err == nil {
		t.Error("nil pattern accepted")
	}
	if _, err := Enumerate(squarePattern(), nil, Options{}); err == nil {
		t.Error("nil target accepted")
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	if _, err := Enumerate(squarePattern(), gridTarget(), Options{Algorithm: Algorithm(7)}); err == nil {
		t.Error("bogus algorithm accepted")
	}
}

func TestAlgorithmString(t *testing.T) {
	want := map[Algorithm]string{
		RI: "RI", RIDS: "RI-DS", RIDSSI: "RI-DS-SI", RIDSSIFC: "RI-DS-SI-FC",
		VF2: "VF2", Algorithm(9): "Algorithm(9)",
	}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), s)
		}
	}
}

func TestLimitAndVisit(t *testing.T) {
	gp, gt := squarePattern(), gridTarget()
	res, err := Enumerate(gp, gt, Options{Limit: 2})
	if err != nil || res.Matches != 2 {
		t.Fatalf("limit: %+v, %v", res, err)
	}

	var mu sync.Mutex
	var got [][]int32
	_, err = Enumerate(gp, gt, Options{Workers: 4, Visit: func(m []int32) bool {
		mu.Lock()
		got = append(got, append([]int32(nil), m...))
		mu.Unlock()
		return true
	}})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range got {
		for _, e := range gp.Edges() {
			if !gt.HasEdgeLabeled(m[e.From], m[e.To], e.Label) {
				t.Fatalf("invalid mapping delivered: %v", m)
			}
		}
	}
}

func TestTimeout(t *testing.T) {
	// A large unlabeled instance that cannot finish in a microsecond.
	gp, gt := testutil.RandomInstance(3, testutil.InstanceOptions{
		TargetNodes:  300,
		TargetEdges:  9000,
		PatternNodes: 8,
		NodeLabels:   1,
		Extract:      true,
	})
	res, err := Enumerate(gp, gt, Options{Algorithm: RI, Timeout: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Skip("instance finished before the timeout fired; environment too fast")
	}
}

func TestTotalTime(t *testing.T) {
	r := Result{PreprocTime: time.Second, MatchTime: 2 * time.Second}
	if r.TotalTime() != 3*time.Second {
		t.Fatal("TotalTime wrong")
	}
}

func TestGraphIORoundTripThroughFacade(t *testing.T) {
	table := NewLabelTable()
	gp := squarePattern()
	var buf bytes.Buffer
	if err := WriteGraph(&buf, "sq", gp, table); err != nil {
		t.Fatal(err)
	}
	gs, err := ReadGraphs(strings.NewReader(buf.String()), table)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 1 || gs[0].Name != "sq" || gs[0].Graph.NumEdges() != gp.NumEdges() {
		t.Fatalf("round trip failed: %+v", gs)
	}
	// Labels written as integers intern back to consistent ids: matching
	// the round-tripped pattern against the original target must agree.
	n1, err := Count(gp, gridTarget(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n1 == 0 {
		t.Fatal("baseline count zero")
	}
}

func TestQuickFacadeMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		gp, gt := testutil.RandomInstance(seed, testutil.InstanceOptions{
			TargetNodes:  10,
			TargetEdges:  30,
			PatternNodes: 4,
			Extract:      seed%2 == 0,
		})
		want := testutil.BruteCount(gp, gt)
		for _, alg := range []Algorithm{RI, RIDSSIFC, VF2} {
			n, err := Count(gp, gt, Options{Algorithm: alg})
			if err != nil || n != want {
				return false
			}
		}
		n, err := Count(gp, gt, Options{Algorithm: RIDS, Workers: 3})
		return err == nil && n == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAutoAlgorithmSelection(t *testing.T) {
	// Sparse target → RI; dense target → RI-DS-SI-FC.
	sparse := NewBuilder(40, 80)
	sparse.AddNodes(40)
	for i := int32(1); i < 40; i++ {
		sparse.AddEdgeBoth(i-1, i, NoLabel)
	}
	if got := chooseAlgorithm(Auto, sparse.MustBuild()); got != RI {
		t.Errorf("sparse target chose %v, want RI", got)
	}
	if got := chooseAlgorithm(Auto, gridTarget()); got != RI {
		// 4x4 grid has mean total degree 2*2*24/16 = 6 < 12: still sparse.
		t.Errorf("grid chose %v, want RI", got)
	}
	dense := NewBuilder(20, 400)
	dense.AddNodes(20)
	for i := int32(0); i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			dense.AddEdgeBoth(i, j, NoLabel)
		}
	}
	if got := chooseAlgorithm(Auto, dense.MustBuild()); got != RIDSSIFC {
		t.Errorf("dense target chose %v, want RI-DS-SI-FC", got)
	}
	if got := chooseAlgorithm(RIDS, sparse.MustBuild()); got != RIDS {
		t.Errorf("explicit algorithm overridden: %v", got)
	}
	if got := chooseAlgorithm(Auto, (&Builder{}).MustBuild()); got != RI {
		t.Errorf("empty target chose %v, want RI", got)
	}
	if Auto.String() != "Auto" {
		t.Errorf("Auto.String() = %q", Auto.String())
	}
}

func TestAutoEndToEnd(t *testing.T) {
	gp, gt := squarePattern(), gridTarget()
	want, err := Count(gp, gt, Options{Algorithm: RI})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Count(gp, gt, Options{Algorithm: Auto, Workers: AutoWorkers})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("Auto = %d, want %d", got, want)
	}
}

func TestAutoWorkersNarrowSearch(t *testing.T) {
	// A pattern whose root has a single candidate: AutoWorkers must not
	// spin up more than one worker (we can only observe via success and
	// PerWorkerStates length when parallel was chosen).
	pb := NewBuilder(1, 0)
	pb.AddNode(7)
	tb := NewBuilder(2, 0)
	tb.AddNode(7)
	tb.AddNode(8)
	res, err := Enumerate(pb.MustBuild(), tb.MustBuild(), Options{Workers: AutoWorkers})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 1 {
		t.Fatalf("matches = %d, want 1", res.Matches)
	}
	if len(res.PerWorkerStates) > 1 {
		t.Fatalf("narrow search used %d workers", len(res.PerWorkerStates))
	}
}

func TestFindAll(t *testing.T) {
	gp, gt := squarePattern(), gridTarget()
	want, err := Count(gp, gt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 4} {
		maps, err := FindAll(gp, gt, Options{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(maps)) != want {
			t.Fatalf("workers=%d: FindAll returned %d mappings, want %d", w, len(maps), want)
		}
		for _, m := range maps {
			for _, e := range gp.Edges() {
				if !gt.HasEdgeLabeled(m[e.From], m[e.To], e.Label) {
					t.Fatalf("invalid mapping %v", m)
				}
			}
		}
	}
	if _, err := FindAll(nil, gt, Options{}); err == nil {
		t.Fatal("FindAll accepted nil pattern")
	}
}

// TestQuickNastyInstances cross-validates all engines on targets with
// parallel edges and self-loops — corner cases where a mapping must be
// counted exactly once regardless of edge multiplicity.
func TestQuickNastyInstances(t *testing.T) {
	f := func(seed int64) bool {
		gp, gt := testutil.RandomInstance(seed, testutil.InstanceOptions{
			TargetNodes:  9,
			TargetEdges:  40,
			PatternNodes: 3,
			Nasty:        true,
		})
		want := testutil.BruteCount(gp, gt)
		for _, alg := range []Algorithm{RI, RIDS, RIDSSI, RIDSSIFC, VF2, LAD} {
			n, err := Count(gp, gt, Options{Algorithm: alg})
			if err != nil || n != want {
				t.Logf("seed=%d alg=%v got=%d want=%d err=%v", seed, alg, n, want, err)
				return false
			}
		}
		n, err := Count(gp, gt, Options{Algorithm: RIDS, Workers: 4})
		if err != nil || n != want {
			t.Logf("seed=%d parallel got=%d want=%d", seed, n, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestLADThroughFacade(t *testing.T) {
	gp, gt := squarePattern(), gridTarget()
	want, err := Count(gp, gt, Options{Algorithm: RI})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Count(gp, gt, Options{Algorithm: LAD})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("LAD = %d, want %d", got, want)
	}
	if LAD.String() != "LAD" {
		t.Errorf("LAD.String() = %q", LAD.String())
	}
	// Limit flows through.
	n, err := Count(gp, gt, Options{Algorithm: LAD, Limit: 1})
	if err != nil || n != 1 {
		t.Fatalf("LAD limit: %d, %v", n, err)
	}
}

func TestInducedFacade(t *testing.T) {
	// Square pattern in a grid: every 4-cycle in a grid is chordless, so
	// induced and non-induced counts coincide here...
	gp, gt := squarePattern(), gridTarget()
	non, err := Count(gp, gt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ind, err := Count(gp, gt, Options{Induced: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ind != non {
		t.Fatalf("grid 4-cycles: induced %d != non-induced %d", ind, non)
	}
	// ...and VF2/LAD now support every semantics, so they must agree.
	if got, err := Count(gp, gt, Options{Algorithm: VF2, Induced: true}); err != nil || got != ind {
		t.Errorf("VF2 induced = %d, %v; want %d", got, err, ind)
	}
	if got, err := Count(gp, gt, Options{Algorithm: LAD, Induced: true}); err != nil || got != ind {
		t.Errorf("LAD induced = %d, %v; want %d", got, err, ind)
	}
	// The legacy flag and the Semantics axis spell the same thing; a
	// contradictory combination is rejected.
	if got, err := Count(gp, gt, Options{Semantics: InducedIso}); err != nil || got != ind {
		t.Errorf("Semantics: InducedIso = %d, %v; want %d", got, err, ind)
	}
	if _, err := Count(gp, gt, Options{Semantics: Homomorphism, Induced: true}); err == nil {
		t.Error("Induced + Homomorphism accepted")
	}
	// Post-sentinel, SubgraphIso is an explicit choice too, so the
	// legacy flag contradicts it instead of silently winning.
	if _, err := Count(gp, gt, Options{Semantics: SubgraphIso, Induced: true}); err == nil {
		t.Error("Induced + explicit SubgraphIso accepted")
	}
	// The redundant spelling stays valid.
	if got, err := Count(gp, gt, Options{Semantics: InducedIso, Induced: true}); err != nil || got != ind {
		t.Errorf("Semantics: InducedIso + Induced = %d, %v; want %d", got, err, ind)
	}
	if _, err := Count(gp, gt, Options{Semantics: Semantics(42)}); err == nil {
		t.Error("unknown Semantics accepted")
	}
}

func TestEnumerateStream(t *testing.T) {
	gp, gt := squarePattern(), gridTarget()
	want, err := Count(gp, gt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	matches, done := EnumerateStream(gp, gt, Options{Workers: 4})
	var got int64
	for m := range matches {
		got++
		for _, e := range gp.Edges() {
			if !gt.HasEdgeLabeled(m.Mapping[e.From], m.Mapping[e.To], e.Label) {
				t.Fatal("invalid streamed mapping")
			}
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("streamed %d matches, want %d", got, want)
	}
	// Visit must be rejected.
	m2, d2 := EnumerateStream(gp, gt, Options{Visit: func([]int32) bool { return true }})
	for range m2 {
	}
	if err := <-d2; err == nil {
		t.Fatal("stream with Visit accepted")
	}
}

func TestAutomorphisms(t *testing.T) {
	// Directed 3-cycle: Aut = 3 (rotations).
	b := NewBuilder(3, 3)
	b.AddNodes(3)
	b.AddEdge(0, 1, 0)
	b.AddEdge(1, 2, 0)
	b.AddEdge(2, 0, 0)
	if n, err := Automorphisms(b.MustBuild()); err != nil || n != 3 {
		t.Fatalf("cycle automorphisms = %d, %v", n, err)
	}
	// Undirected edge: Aut = 2.
	e := NewBuilder(2, 2)
	e.AddNodes(2)
	e.AddEdgeBoth(0, 1, 0)
	if n, _ := Automorphisms(e.MustBuild()); n != 2 {
		t.Fatalf("edge automorphisms = %d", n)
	}
	// Labels break symmetry.
	l := NewBuilder(2, 2)
	l.AddNode(1)
	l.AddNode(2)
	l.AddEdgeBoth(0, 1, 0)
	if n, _ := Automorphisms(l.MustBuild()); n != 1 {
		t.Fatalf("labeled edge automorphisms = %d", n)
	}
	if n, err := Automorphisms((&Builder{}).MustBuild()); err != nil || n != 1 {
		t.Fatalf("empty pattern automorphisms = %d, %v", n, err)
	}
	if _, err := Automorphisms(nil); err == nil {
		t.Fatal("nil pattern accepted")
	}
}
