package parsge

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"parsge/internal/testutil"
)

// The metamorphic battery of the adaptive pruning scheduler: enumeration
// counts are an invariant of the *problem*, not of the preprocessing
// plan, so every point of the schedule space — each filter toggled on
// and off, compact versus exact NLF signatures, capped versus fixpoint
// arc consistency, Auto versus Fixed — must produce the count of the
// brute-force oracle. A schedule-dependent count is by definition an
// unsound filter or a broken wiring of the plan into an engine.

// schedulePoint is one point of the schedule space.
type schedulePoint struct {
	sched      Schedule
	acPasses   int
	disableNLF bool
	disableIAC bool
}

// schedulePoints spans {Auto, Fixed} × {fixpoint, 1-pass} × each
// adaptive-controlled filter on/off.
func schedulePoints() []schedulePoint {
	var pts []schedulePoint
	for _, sched := range []Schedule{ScheduleAuto, ScheduleFixed} {
		for _, ac := range []int{0, 1} {
			for _, noNLF := range []bool{false, true} {
				for _, noIAC := range []bool{false, true} {
					pts = append(pts, schedulePoint{sched, ac, noNLF, noIAC})
				}
			}
		}
	}
	return pts
}

func (p schedulePoint) String() string {
	return fmt.Sprintf("sched=%v/ac=%d/noNLF=%v/noIAC=%v",
		p.sched, p.acPasses, p.disableNLF, p.disableIAC)
}

// metamorphicInstances are the random instance shapes of the battery.
// The 4-node-label × 3-edge-label alphabet exceeds the compact NLF
// bucket array on some targets, exercising the hashed (inexact) bucket
// assignment alongside the small-alphabet exactness fallback.
var metamorphicInstances = []struct {
	name string
	opts testutil.InstanceOptions
}{
	{"plain", testutil.InstanceOptions{TargetNodes: 9, TargetEdges: 24, PatternNodes: 4}},
	{"labelRich", testutil.InstanceOptions{TargetNodes: 9, TargetEdges: 26, PatternNodes: 4, NodeLabels: 4, EdgeLabels: 3}},
	{"dense", testutil.InstanceOptions{TargetNodes: 7, TargetEdges: 30, PatternNodes: 4, NodeLabels: 2, Extract: true}},
	{"nasty", testutil.InstanceOptions{TargetNodes: 8, TargetEdges: 22, PatternNodes: 3, Nasty: true}},
}

// TestMetamorphicScheduleSpace sweeps the whole public schedule space —
// schedule × AC depth × filter toggles × compact-vs-exact NLF × engine —
// over random instances under all three semantics and holds every
// combination to testutil.BruteCountSem. Since every point is compared
// to the same oracle, this also proves Auto and Fixed agree everywhere.
func TestMetamorphicScheduleSpace(t *testing.T) {
	engines := []struct {
		name string
		opts Options
	}{
		{"RI-DS-SI-FC", Options{Algorithm: RIDSSIFC}},
		{"VF2", Options{Algorithm: VF2}},
		{"LAD", Options{Algorithm: LAD}},
	}
	pts := schedulePoints()
	const seedsPerKind = 6
	for _, k := range metamorphicInstances {
		for seed := int64(0); seed < seedsPerKind; seed++ {
			gp, gt := testutil.RandomInstance(seed+100, k.opts)
			for _, compact := range []bool{false, true} {
				tgt, err := NewTarget(gt, TargetOptions{NLF: nlfMode(compact)})
				if err != nil {
					t.Fatal(err)
				}
				for _, sem := range allSemantics {
					want := testutil.BruteCountSem(gp, gt, sem)
					for _, pt := range pts {
						for _, eng := range engines {
							opts := eng.opts
							opts.Semantics = sem
							opts.Pruning = PruningOptions{
								Schedule:         pt.sched,
								ACPasses:         pt.acPasses,
								DisableNLF:       pt.disableNLF,
								DisableInducedAC: pt.disableIAC,
							}
							got, err := tgt.Count(context.Background(), gp, opts)
							if err != nil {
								t.Fatalf("%s/seed=%d compact=%v %s %s under %v: %v",
									k.name, seed, compact, eng.name, pt, sem, err)
							}
							if got != want {
								t.Errorf("%s/seed=%d compact=%v %s %s under %v = %d, oracle = %d",
									k.name, seed, compact, eng.name, pt, sem, got, want)
							}
						}
					}
				}
			}
		}
	}
}

// TestMetamorphicParallelSchedule covers the parallel engine (which
// inherits the plan through the shared ri.Prepare) on the Auto and
// Fixed endpoints of the schedule space, with compact and exact NLF.
func TestMetamorphicParallelSchedule(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		gp, gt := testutil.RandomInstance(seed, testutil.InstanceOptions{
			TargetNodes: 10, TargetEdges: 30, PatternNodes: 4, NodeLabels: 4, EdgeLabels: 3, Extract: seed%2 == 0,
		})
		for _, sem := range allSemantics {
			want := testutil.BruteCountSem(gp, gt, sem)
			for _, compact := range []bool{false, true} {
				tgt, err := NewTarget(gt, TargetOptions{NLF: nlfMode(compact)})
				if err != nil {
					t.Fatal(err)
				}
				for _, sched := range []Schedule{ScheduleAuto, ScheduleFixed} {
					got, err := tgt.Count(context.Background(), gp, Options{
						Algorithm: RIDSSIFC, Workers: 4, TaskGroupSize: 2,
						Semantics: sem, Pruning: PruningOptions{Schedule: sched},
					})
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Errorf("seed=%d compact=%v sched=%v under %v: parallel = %d, oracle = %d",
							seed, compact, sched, sem, got, want)
					}
				}
			}
		}
	}
}

// TestMetamorphicPlanReported: every domain-preprocessing engine reports
// the resolved plan in Result.Plan, Fixed reports the full pipeline, and
// an explicit ACPasses cap survives both schedules. Plain RI reports no
// plan (it computes no domains).
func TestMetamorphicPlanReported(t *testing.T) {
	gp, gt := testutil.RandomInstance(3, testutil.InstanceOptions{
		TargetNodes: 10, TargetEdges: 30, PatternNodes: 4,
	})
	tgt, err := NewTarget(gt, TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, alg := range []Algorithm{RIDSSIFC, VF2, LAD} {
		res, err := tgt.Enumerate(ctx, gp, Options{Algorithm: alg, Pruning: PruningOptions{Schedule: ScheduleFixed}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Plan == nil {
			t.Fatalf("%v: Fixed run reported no plan", alg)
		}
		if !res.Plan.NLF || !res.Plan.AC || res.Plan.ACPasses != 0 {
			t.Errorf("%v: Fixed plan = %v, want full pipeline at fixpoint", alg, res.Plan)
		}
		res, err = tgt.Enumerate(ctx, gp, Options{Algorithm: alg, Pruning: PruningOptions{ACPasses: 1}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Plan == nil || !res.Plan.AC || res.Plan.ACPasses != 1 {
			t.Errorf("%v: explicit ACPasses=1 not honored under Auto: plan = %v", alg, res.Plan)
		}
		if res.Plan.DomainAfterUnary < res.Plan.DomainFinal {
			t.Errorf("%v: propagation grew domains: %d -> %d", alg, res.Plan.DomainAfterUnary, res.Plan.DomainFinal)
		}
	}
	res, err := tgt.Enumerate(ctx, gp, Options{Algorithm: RI})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan != nil {
		t.Errorf("plain RI reported a plan: %v", res.Plan)
	}
}

// TestConcurrentAutoScheduleCancellation is the race/cancellation stress
// of the adaptive scheduler: many goroutines fire queries of mixed
// semantics, schedules and engines at one shared Target (hence one
// shared domain.Index and arena pool) while others cancel mid-
// enumeration. Run under -race (the CI test job does), this catches
// unsynchronized mutation of the shared index by the scheduler; counts
// of uncancelled runs must stay exact.
func TestConcurrentAutoScheduleCancellation(t *testing.T) {
	gp, gt := testutil.RandomInstance(11, testutil.InstanceOptions{
		TargetNodes: 14, TargetEdges: 60, PatternNodes: 4, NodeLabels: 2, Extract: true,
	})
	tgt, err := NewTarget(gt, TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[Semantics]int64, len(allSemantics))
	for _, sem := range allSemantics {
		want[sem] = testutil.BruteCountSem(gp, gt, sem)
	}

	const goroutines = 8
	const iters = 12
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				sem := allSemantics[(g+i)%len(allSemantics)]
				opts := Options{
					Algorithm: []Algorithm{RIDSSIFC, VF2, LAD, RIDSSIFC}[i%4],
					Semantics: sem,
					Pruning:   PruningOptions{Schedule: []Schedule{ScheduleAuto, ScheduleFixed}[i%2]},
				}
				if i%4 == 3 {
					opts.Workers = 3 // exercise the parallel engine too
				}
				ctx := context.Background()
				cancelled := false
				if (g+i)%3 == 0 {
					// Cancel mid-enumeration (or before it starts).
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, time.Duration(i%5)*50*time.Microsecond)
					defer cancel()
					cancelled = true
				}
				res, err := tgt.Enumerate(ctx, gp, opts)
				if err != nil {
					t.Errorf("g=%d i=%d: %v", g, i, err)
					return
				}
				if !res.TimedOut && res.Matches != want[sem] {
					t.Errorf("g=%d i=%d under %v: got %d, want %d", g, i, sem, res.Matches, want[sem])
					return
				}
				if cancelled && res.TimedOut && res.Matches > want[sem] {
					t.Errorf("g=%d i=%d under %v: cancelled run overcounted: %d > %d", g, i, sem, res.Matches, want[sem])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// nlfMode maps the battery's compact axis onto TargetOptions.NLF.
func nlfMode(compact bool) NLFMode {
	if compact {
		return NLFCompact
	}
	return NLFExact
}
