package parsge

import (
	"fmt"
	"testing"

	"parsge/internal/domain"
	"parsge/internal/ri"
	"parsge/internal/testutil"
)

// kernelEngines are the engines the kernel differential battery sweeps:
// the RI family's best variant sequentially and through the
// work-stealing parallel engine (which inherits the kernel through the
// shared ri.Prepare/Feasible), plus the two independent baselines that
// got their own kernel rewires.
var kernelEngines = []struct {
	name string
	opts Options
}{
	{"RI-DS-SI-FC", Options{Algorithm: RIDSSIFC}},
	{"steal-RI-DS-SI-FC", Options{Algorithm: RIDSSIFC, Workers: 4, TaskGroupSize: 2}},
	{"VF2", Options{Algorithm: VF2}},
	{"LAD", Options{Algorithm: LAD}},
}

// TestKernelDifferential is the bitset-kernel acceptance battery: on 120
// random instances (the same four instance kinds as the cross-engine
// differential — plain, extracted, nasty, dense-labeled), every engine
// must return the brute-force oracle's count under BOTH kernels and all
// three semantics. A bitset row with a stale or missing bit loses or
// invents matches on some instance here; a divergence between the two
// kernels on the same engine localizes the bug to the kernel layer.
func TestKernelDifferential(t *testing.T) {
	kinds := []struct {
		name string
		opts testutil.InstanceOptions
	}{
		{"plain", testutil.InstanceOptions{TargetNodes: 9, TargetEdges: 24, PatternNodes: 4}},
		{"extract", testutil.InstanceOptions{TargetNodes: 9, TargetEdges: 24, PatternNodes: 4, Extract: true}},
		{"nasty", testutil.InstanceOptions{TargetNodes: 8, TargetEdges: 22, PatternNodes: 3, Nasty: true}},
		{"dense", testutil.InstanceOptions{TargetNodes: 7, TargetEdges: 30, PatternNodes: 4, NodeLabels: 2, Extract: true}},
	}
	kernels := []Kernel{KernelBitset, KernelSlice}
	const seedsPerKind = 30 // 4 kinds × 30 seeds = 120 instances per semantics
	for _, k := range kinds {
		for seed := int64(0); seed < seedsPerKind; seed++ {
			gp, gt := testutil.RandomInstance(seed, k.opts)
			for _, sem := range allSemantics {
				want := testutil.BruteCountSem(gp, gt, sem)
				for _, eng := range kernelEngines {
					for _, kern := range kernels {
						opts := eng.opts
						opts.Semantics = sem
						opts.Pruning.Kernel = kern
						got, err := Count(gp, gt, opts)
						if err != nil {
							t.Fatalf("%s/seed=%d: %s/%v under %v: %v", k.name, seed, eng.name, kern, sem, err)
						}
						if got != want {
							t.Errorf("%s/seed=%d: %s/%v under %v = %d, want %d",
								k.name, seed, eng.name, kern, sem, got, want)
						}
					}
				}
			}
		}
	}
}

// TestKernelDifferentialGoldenMotifs re-runs the hand-computed golden
// motif tables with the bitset kernel forced on every engine
// configuration of the differential suite (the default Auto already
// resolves to bitset on these tiny targets; forcing it removes any
// dependence on the resolution rule).
func TestKernelDifferentialGoldenMotifs(t *testing.T) {
	for _, c := range goldenMotifCases {
		t.Run(c.name, func(t *testing.T) {
			wants := map[Semantics]int64{
				SubgraphIso:  c.iso,
				InducedIso:   c.induced,
				Homomorphism: c.homo,
			}
			for _, sem := range allSemantics {
				for _, ec := range engineConfigs {
					opts := ec.opts
					opts.Semantics = sem
					opts.Pruning.Kernel = KernelBitset
					got, err := Count(c.pattern, c.target, opts)
					if err != nil {
						t.Fatalf("%s under %v: %v", ec.name, sem, err)
					}
					if got != wants[sem] {
						t.Errorf("%s under %v = %d, want %d", ec.name, sem, got, wants[sem])
					}
				}
			}
		})
	}
}

// TestKernelDifferentialAllocs pins the inner extend loop at zero
// allocations per embedding under the bitset kernel: a complete run on a
// fixed dense graph with over a thousand embeddings may only pay the
// constant per-run setup (searcher state), never an allocation that
// scales with matches or states. The bound is a ratio rather than an
// absolute so the pin stays green under -race instrumentation and
// testing-harness noise.
func TestKernelDifferentialAllocs(t *testing.T) {
	gp, gt := cliqueGraph(3), cliqueGraph(12) // 12·11·10 = 1320 embeddings
	prep, err := ri.Prepare(gp, gt, ri.Options{
		Variant:  ri.VariantRIDSSIFC,
		Kernel:   domain.KernelBitset,
		Schedule: domain.ScheduleFixed,
	})
	if err != nil {
		t.Fatal(err)
	}
	arena := ri.NewArena(gt.NumNodes())
	warm := prep.Run(ri.RunOptions{Arena: arena})
	if warm.Matches < 100 {
		t.Fatalf("fixed seed instance too easy: %d embeddings (want ≥ 100 for a meaningful pin)", warm.Matches)
	}
	per := testing.AllocsPerRun(5, func() {
		prep.Run(ri.RunOptions{Arena: arena})
	})
	perEmbedding := per / float64(warm.Matches)
	t.Logf("%d embeddings, %.1f allocs/run, %.5f allocs/embedding", warm.Matches, per, perEmbedding)
	if perEmbedding > 0.02 {
		t.Errorf("inner loop allocates: %.1f allocs/run over %d embeddings = %.4f allocs/embedding (want ≤ 0.02, i.e. constant per-run setup only)",
			per, warm.Matches, perEmbedding)
	}
}

// TestKernelFallbackAboveLimit pins the sorted-slice fallback rule:
// forcing KernelBitset must be a silent no-op (identical counts, no
// error) when the target exceeds the dense-row threshold. Building a
// >2^14-node graph per test run is too slow, so this covers the
// resolution rule directly plus the engine-level nil-rows path via the
// ResolveKernel contract.
func TestKernelFallbackAboveLimit(t *testing.T) {
	if got := domain.ResolveKernel(domain.KernelAuto, 1<<14); got != domain.KernelBitset {
		t.Errorf("ResolveKernel(Auto, 2^14) = %v, want bitset (limit is inclusive)", got)
	}
	if got := domain.ResolveKernel(domain.KernelAuto, 1<<14+1); got != domain.KernelSlice {
		t.Errorf("ResolveKernel(Auto, 2^14+1) = %v, want slice", got)
	}
	for _, k := range []domain.Kernel{domain.KernelBitset, domain.KernelSlice} {
		if got := domain.ResolveKernel(k, 1); got != k {
			t.Errorf("ResolveKernel(%v, 1) = %v, want explicit choice preserved", k, got)
		}
	}
	for k, want := range map[Kernel]string{KernelAuto: "auto", KernelBitset: "bitset", KernelSlice: "slice"} {
		if got := fmt.Sprint(k); got != want {
			t.Errorf("Kernel(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}
