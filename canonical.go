package parsge

import "parsge/internal/graph"

// CanonicalPattern returns a relabeling-invariant encoding of g and the
// permutation that produced it (node v of g becomes node perm[v] of the
// canonical numbering). Two graphs have equal encodings if and only if
// they are isomorphic — the same labeled structure under some node
// renumbering — so the encoding (or a hash of it) identifies a pattern
// regardless of how a client happened to number its nodes. This is the
// identity the service layer's result cache is keyed by: isomorphic
// patterns submitted by different clients share one cache entry, and
// cached mappings are stored in canonical numbering and translated back
// through perm.
//
// The bytes are an opaque comparison value, not a serialization format.
// Cost is near-linear on label-diverse graphs and exponential in the
// worst case (highly symmetric unlabeled graphs); intended for pattern
// graphs — a handful of nodes — not for million-node targets.
func CanonicalPattern(g *Graph) (encoding []byte, perm []int32) {
	return graph.CanonicalForm(g)
}

// CanonicalHash returns a 64-bit hash of g's canonical encoding: equal
// for isomorphic graphs, distinct for non-isomorphic ones up to hash
// collisions. Callers for whom a collision would be a correctness bug —
// the service cache — compare the full encodings, using the hash only to
// shard.
func CanonicalHash(g *Graph) uint64 {
	return graph.CanonicalHash(g)
}

// HashEncoding hashes an encoding already in hand — the bytes returned
// by CanonicalPattern, or CensusClass.Encoding — with the same 64-bit
// function CanonicalHash uses, so callers holding the encoding never
// re-derive it just to get its hash.
func HashEncoding(encoding []byte) uint64 {
	return graph.HashBytes(encoding)
}
