package parsge

import (
	"context"
	"fmt"
	"time"

	"parsge/internal/domain"
	"parsge/internal/graph"
)

// This file is the graph-mutation API of a Target session: batched edge
// updates applied under an epoch counter, with the target-side index
// maintained incrementally — only the touched vertices' NLF signatures
// and the degree moments behind the cached statistics are recomputed,
// never the whole index (the differential battery in update_test.go
// pins the incremental state bit-identical to a full rebuild). The
// epoch is the cache-invalidation currency of the service layer: every
// Result and CensusResult carries the epoch it executed against, and
// epoch-tagged cache entries die with their graph version.

// EdgeUpdate is one edge mutation of an update batch; see
// Target.ApplyUpdates. The node set and node labels of a target are
// immutable — updates rewire edges only.
type EdgeUpdate = graph.EdgeUpdate

// Edge is one labeled arc as reported by Graph.Edges.
type Edge = graph.Edge

// UpdateResult reports one applied update batch.
type UpdateResult struct {
	// Epoch is the target's mutation epoch after the batch: unchanged
	// when the batch had no net effect, incremented by one otherwise.
	Epoch uint64
	// Applied is the number of arcs actually added plus removed, net of
	// add/remove pairs within the batch that cancelled each other.
	Applied int
	// NoOps counts removals of absent arcs (tolerated, not errors —
	// replayed or duplicated update streams are expected inputs).
	NoOps int
	// TouchedVertices is the number of distinct endpoints of changed
	// arcs — the vertices whose index state was recomputed.
	TouchedVertices int
	// Duration is the wall time of graph rebuild plus index
	// maintenance.
	Duration time.Duration
}

// Epoch returns the target's current mutation epoch: 0 at NewTarget,
// incremented once per effective ApplyUpdates batch. A cache keyed on
// this target compares entry epochs against it to invalidate answers
// computed on superseded graph versions.
func (t *Target) Epoch() uint64 { return t.state.Load().epoch }

// ApplyUpdates applies a batch of edge additions and removals to the
// session's target. The batch is atomic: queries either see the whole
// batch or none of it, never a partial application — concurrent queries
// already running continue undisturbed on the snapshot they started
// with, and queries issued after ApplyUpdates returns see the updated
// graph (their results carry the new epoch).
//
// Update semantics are those of graph.ApplyUpdates: adds may create
// parallel edges exactly like Builder.AddEdge, removals consume one
// matching (From, To, Label) arc and tolerate absent ones. The node set
// and node labels are immutable; an update referencing a node outside
// the target fails the whole batch.
//
// The target-side index is maintained incrementally — label buckets and
// untouched vertices' NLF signatures are shared with the previous
// snapshot, and cached TargetStats are adjusted by exact integer deltas
// — so the cost is proportional to the touched vertices' degrees, not
// the graph. Batches are serialized with respect to each other; ctx
// cancellation before the commit point discards all work (the epoch
// does not advance).
func (t *Target) ApplyUpdates(ctx context.Context, updates []EdgeUpdate) (UpdateResult, error) {
	if ctx == nil {
		ctx = context.Background() //sgelint:ignore ctxbackground documented nil-ctx default at the public update boundary, mirroring queryContext
	}
	t.updateMu.Lock()
	defer t.updateMu.Unlock()
	st := t.state.Load()
	out := UpdateResult{Epoch: st.epoch}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	start := time.Now()
	g2, touched, applied, noops, err := st.g.ApplyUpdates(updates)
	if err != nil {
		return out, fmt.Errorf("parsge: %w", err)
	}
	out.NoOps = noops
	if g2 == st.g {
		// No net effect: same graph, same epoch, caches stay valid.
		out.Duration = time.Since(start)
		return out, nil
	}
	if err := ctx.Err(); err != nil {
		// Cancelled before commit: discard the built graph.
		return out, err
	}
	var ix2 *domain.Index
	if st.index != nil {
		ix2 = st.index.ApplyUpdates(st.g, g2, touched)
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	ns := &targetState{
		g:             g2,
		index:         ix2,
		autoAlgorithm: chooseAlgorithm(Auto, g2),
		epoch:         st.epoch + 1,
	}
	if n := g2.NumNodes(); n > 0 {
		ns.meanDegree = 2 * float64(g2.NumEdges()) / float64(n)
	}
	t.state.Store(ns)
	out.Epoch = ns.epoch
	out.Applied = applied
	out.TouchedVertices = len(touched)
	out.Duration = time.Since(start)
	return out, nil
}

// HasIndex reports whether the current snapshot carries a label/NLF
// index (false with SkipLabelIndex, or between ReleaseIndex and the
// next EnsureIndex).
func (t *Target) HasIndex() bool { return t.state.Load().index != nil }

// ReleaseIndex drops the target's label/NLF index, freeing its memory
// while keeping the target fully queryable — preprocessing falls back
// to whole-vertex-set scans, exactly like a SkipLabelIndex target. The
// epoch is unchanged: the graph itself did not move, so cached results
// remain valid. It returns whether an index was actually dropped. The
// service Router uses this to evict cold targets' indexes under an LRU
// budget; EnsureIndex rebuilds on demand.
func (t *Target) ReleaseIndex() bool {
	t.updateMu.Lock()
	defer t.updateMu.Unlock()
	st := t.state.Load()
	if st.index == nil {
		return false
	}
	ns := *st
	ns.index = nil
	t.state.Store(&ns)
	return true
}

// EnsureIndex rebuilds the label/NLF index if the current snapshot
// lacks one, under the NLF mode the target was created with. Targets
// created with SkipLabelIndex opted out permanently and are left alone.
// It returns whether an index was (re)built. Like ReleaseIndex it does
// not advance the epoch — index presence changes preprocessing cost,
// never results.
func (t *Target) EnsureIndex() bool {
	if t.skipIndex {
		return false
	}
	t.updateMu.Lock()
	defer t.updateMu.Unlock()
	st := t.state.Load()
	if st.index != nil {
		return false
	}
	ns := *st
	ns.index = domain.NewIndexMode(st.g, t.nlfMode)
	t.state.Store(&ns)
	return true
}
