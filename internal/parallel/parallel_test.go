package parallel

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"parsge/internal/graph"
	"parsge/internal/ri"
	"parsge/internal/testutil"
)

func prepared(t testing.TB, gp, gt *graph.Graph, v ri.Variant) *ri.Prepared {
	t.Helper()
	p, err := ri.Prepare(gp, gt, ri.Options{Variant: v})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// mediumInstance builds a deterministic instance with a non-trivial number
// of matches for scheduling tests.
func mediumInstance(t testing.TB) (*graph.Graph, *graph.Graph) {
	t.Helper()
	gp, gt := testutil.RandomInstance(17, testutil.InstanceOptions{
		TargetNodes:  60,
		TargetEdges:  420,
		PatternNodes: 5,
		NodeLabels:   2,
		Extract:      true,
	})
	return gp, gt
}

func TestMatchesSequentialAcrossWorkers(t *testing.T) {
	gp, gt := mediumInstance(t)
	seq, err := ri.Enumerate(gp, gt, ri.Options{Variant: ri.VariantRIDSSIFC}, ri.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Matches == 0 {
		t.Fatal("test instance has no matches; pick another seed")
	}
	for _, workers := range []int{1, 2, 3, 4, 8, 16} {
		p := prepared(t, gp, gt, ri.VariantRIDSSIFC)
		res := Enumerate(p, Options{Workers: workers, Seed: int64(workers)})
		if res.Matches != seq.Matches {
			t.Errorf("workers=%d: matches = %d, want %d", workers, res.Matches, seq.Matches)
		}
		if res.Aborted {
			t.Errorf("workers=%d: unexpected abort", workers)
		}
		var sum int64
		for _, s := range res.PerWorkerStates {
			sum += s
		}
		if sum != res.States {
			t.Errorf("workers=%d: per-worker states %d != total %d", workers, sum, res.States)
		}
	}
}

func TestAllGroupSizes(t *testing.T) {
	gp, gt := mediumInstance(t)
	want := Enumerate(prepared(t, gp, gt, ri.VariantRI), Options{Workers: 1}).Matches
	for _, g := range []int{1, 2, 4, 8, 16} {
		res := Enumerate(prepared(t, gp, gt, ri.VariantRI), Options{Workers: 4, TaskGroupSize: g, Seed: int64(g)})
		if res.Matches != want {
			t.Errorf("group size %d: matches = %d, want %d", g, res.Matches, want)
		}
	}
}

func TestNoStealing(t *testing.T) {
	gp, gt := mediumInstance(t)
	want := Enumerate(prepared(t, gp, gt, ri.VariantRIDS), Options{Workers: 1}).Matches
	res := Enumerate(prepared(t, gp, gt, ri.VariantRIDS), Options{Workers: 4, DisableStealing: true})
	if res.Matches != want {
		t.Fatalf("no-stealing matches = %d, want %d", res.Matches, want)
	}
	if res.Steals != 0 {
		t.Fatalf("stealing disabled but Steals = %d", res.Steals)
	}
}

func TestStealFromFrontAblation(t *testing.T) {
	gp, gt := mediumInstance(t)
	want := Enumerate(prepared(t, gp, gt, ri.VariantRI), Options{Workers: 1}).Matches
	res := Enumerate(prepared(t, gp, gt, ri.VariantRI), Options{Workers: 4, StealFromFront: true, Seed: 3})
	if res.Matches != want {
		t.Fatalf("front-steal matches = %d, want %d", res.Matches, want)
	}
}

func TestEagerCopyAblation(t *testing.T) {
	gp, gt := mediumInstance(t)
	want := Enumerate(prepared(t, gp, gt, ri.VariantRI), Options{Workers: 1}).Matches
	res := Enumerate(prepared(t, gp, gt, ri.VariantRI), Options{Workers: 4, EagerCopy: true, Seed: 5})
	if res.Matches != want {
		t.Fatalf("eager-copy matches = %d, want %d", res.Matches, want)
	}
}

func TestUnsatisfiable(t *testing.T) {
	bp := &graph.Builder{}
	bp.AddNode(9)
	bt := &graph.Builder{}
	bt.AddNode(1)
	p := prepared(t, bp.MustBuild(), bt.MustBuild(), ri.VariantRIDS)
	res := Enumerate(p, Options{Workers: 4})
	if !res.Unsatisfiable || res.Matches != 0 {
		t.Fatalf("unsat shortcut missing: %+v", res)
	}
}

func TestEmptyPattern(t *testing.T) {
	p := prepared(t, (&graph.Builder{}).MustBuild(), (&graph.Builder{}).MustBuild(), ri.VariantRI)
	if res := Enumerate(p, Options{Workers: 2}); res.Matches != 0 {
		t.Fatalf("empty pattern matched: %+v", res)
	}
}

func TestSingleNodePattern(t *testing.T) {
	bp := &graph.Builder{}
	bp.AddNode(1)
	bt := &graph.Builder{}
	bt.AddNode(1)
	bt.AddNode(1)
	bt.AddNode(2)
	p := prepared(t, bp.MustBuild(), bt.MustBuild(), ri.VariantRI)
	res := Enumerate(p, Options{Workers: 3})
	if res.Matches != 2 {
		t.Fatalf("single-node pattern matches = %d, want 2", res.Matches)
	}
}

func TestLimit(t *testing.T) {
	gp, gt := mediumInstance(t)
	res := Enumerate(prepared(t, gp, gt, ri.VariantRI), Options{Workers: 4, Limit: 5})
	if res.Matches < 5 {
		t.Fatalf("limit run found %d matches, want ≥ 5", res.Matches)
	}
	if res.Aborted {
		t.Fatal("limit-stop must not count as abort")
	}
}

func TestVisitCollectsValidMappings(t *testing.T) {
	gp, gt := mediumInstance(t)
	var mu sync.Mutex
	var collected [][]int32
	res := Enumerate(prepared(t, gp, gt, ri.VariantRIDSSIFC), Options{
		Workers: 4,
		Visit: func(m []int32) bool {
			cp := append([]int32(nil), m...)
			mu.Lock()
			collected = append(collected, cp)
			mu.Unlock()
			return true
		},
	})
	if int64(len(collected)) != res.Matches {
		t.Fatalf("visited %d mappings for %d matches", len(collected), res.Matches)
	}
	seen := make(map[string]bool)
	for _, m := range collected {
		// Validity: injective and edge-preserving.
		usedT := map[int32]bool{}
		for _, vt := range m {
			if usedT[vt] {
				t.Fatal("non-injective mapping emitted")
			}
			usedT[vt] = true
		}
		for _, e := range gp.Edges() {
			if !gt.HasEdgeLabeled(m[e.From], m[e.To], e.Label) {
				t.Fatalf("mapping %v misses edge %v", m, e)
			}
		}
		// Uniqueness: no duplicate emissions.
		key := ""
		for _, vt := range m {
			key += string(rune(vt)) + ","
		}
		if seen[key] {
			t.Fatal("duplicate mapping emitted")
		}
		seen[key] = true
	}
}

func TestVisitStopAborts(t *testing.T) {
	gp, gt := mediumInstance(t)
	var calls atomic.Int64
	res := Enumerate(prepared(t, gp, gt, ri.VariantRI), Options{
		Workers: 4,
		Visit:   func([]int32) bool { return calls.Add(1) < 3 },
	})
	if !res.Aborted {
		t.Fatal("visit-stop should abort")
	}
}

func TestExternalCancel(t *testing.T) {
	gp, gt := mediumInstance(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := Enumerate(prepared(t, gp, gt, ri.VariantRI), Options{Workers: 4, Ctx: ctx})
	if !res.Aborted {
		t.Fatal("pre-cancelled context did not abort the run")
	}
	if res.Matches != 0 {
		t.Fatalf("aborted-before-start run found %d matches", res.Matches)
	}
}

func TestCancelMidRun(t *testing.T) {
	// A heavier instance so cancellation lands mid-search.
	gp, gt := testutil.RandomInstance(7, testutil.InstanceOptions{
		TargetNodes:  150,
		TargetEdges:  3000,
		PatternNodes: 7,
		NodeLabels:   1,
		Extract:      true,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan Result, 1)
	go func() {
		done <- Enumerate(prepared(t, gp, gt, ri.VariantRI), Options{Workers: 4, Ctx: ctx})
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case res := <-done:
		if !res.Aborted && res.Matches == 0 {
			t.Fatal("cancelled run neither aborted nor completed")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancel did not stop the run")
	}
}

func TestArenaRunsAgree(t *testing.T) {
	gp, gt := mediumInstance(t)
	p := prepared(t, gp, gt, ri.VariantRIDS)
	want := Enumerate(p, Options{Workers: 4}).Matches
	arena := ri.NewArena(gt.NumNodes())
	for i := 0; i < 3; i++ {
		got := Enumerate(p, Options{Workers: 4, Arena: arena, Seed: int64(i)}).Matches
		if got != want {
			t.Fatalf("arena run %d: %d matches, want %d", i, got, want)
		}
	}
	// Early-terminated runs (Limit) must hand buffers back clean too.
	Enumerate(p, Options{Workers: 4, Arena: arena, Limit: 1})
	u := arena.AcquireUsed()
	for i, b := range u {
		if b {
			t.Fatalf("arena buffer returned dirty at %d", i)
		}
	}
	arena.ReleaseUsed(u)
}

func TestDeterministicMatchCount(t *testing.T) {
	gp, gt := mediumInstance(t)
	p := prepared(t, gp, gt, ri.VariantRIDS)
	first := Enumerate(p, Options{Workers: 8, Seed: 1}).Matches
	for seed := int64(2); seed <= 5; seed++ {
		if got := Enumerate(p, Options{Workers: 8, Seed: seed}).Matches; got != first {
			t.Fatalf("seed %d: matches = %d, want %d", seed, got, first)
		}
	}
}

// TestQuickParallelEqualsSequential is the central conservation property:
// any worker count, group size and scheduling configuration must yield
// exactly the sequential match count.
func TestQuickParallelEqualsSequential(t *testing.T) {
	f := func(seed int64, workersRaw, groupRaw uint8, variantRaw uint8, stealing bool) bool {
		workers := 1 + int(workersRaw%8)
		group := 1 + int(groupRaw%16)
		variant := ri.Variant(variantRaw % 4)
		gp, gt := testutil.RandomInstance(seed, testutil.InstanceOptions{
			TargetNodes:  20,
			TargetEdges:  90,
			PatternNodes: 5,
			Extract:      seed%2 == 0,
		})
		seq, err := ri.Enumerate(gp, gt, ri.Options{Variant: variant}, ri.RunOptions{})
		if err != nil {
			return false
		}
		p, err := ri.Prepare(gp, gt, ri.Options{Variant: variant})
		if err != nil {
			return false
		}
		res := Enumerate(p, Options{
			Workers:         workers,
			TaskGroupSize:   group,
			DisableStealing: !stealing,
			Seed:            seed,
		})
		if res.Matches != seq.Matches {
			t.Logf("seed=%d workers=%d group=%d variant=%v stealing=%v: got %d want %d",
				seed, workers, group, variant, stealing, res.Matches, seq.Matches)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfg.MaxCount = 15
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEnumerateGraphsConvenience(t *testing.T) {
	gp, gt := mediumInstance(t)
	res, err := EnumerateGraphs(gp, gt, ri.Options{Variant: ri.VariantRIDS}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	seq, _ := ri.Enumerate(gp, gt, ri.Options{Variant: ri.VariantRIDS}, ri.RunOptions{})
	if res.Matches != seq.Matches {
		t.Fatalf("EnumerateGraphs = %d, want %d", res.Matches, seq.Matches)
	}
}

func TestOptionsNormalized(t *testing.T) {
	o := Options{}.normalized()
	if o.Workers != 1 || o.TaskGroupSize != DefaultGroupSize {
		t.Fatalf("normalized zero options = %+v", o)
	}
	o = Options{TaskGroupSize: 99}.normalized()
	if o.TaskGroupSize != MaxGroupSize {
		t.Fatalf("oversized group not clamped: %d", o.TaskGroupSize)
	}
}

func BenchmarkParallel4Workers(b *testing.B) {
	gp, gt := mediumInstance(b)
	p := prepared(b, gp, gt, ri.VariantRIDSSIFC)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Enumerate(p, Options{Workers: 4, Seed: int64(i)})
	}
}

// TestMatchTimeRecorded guards against the named-return/defer pitfall.
func TestMatchTimeRecorded(t *testing.T) {
	gp, gt := mediumInstance(t)
	res := Enumerate(prepared(t, gp, gt, ri.VariantRI), Options{Workers: 2})
	if res.MatchTime <= 0 {
		t.Fatalf("MatchTime not recorded: %v", res.MatchTime)
	}
}

// TestMappingSetEqualsSequential checks that the parallel engine emits
// exactly the same *set* of mappings as the sequential engine — a
// stronger property than equal counts.
func TestMappingSetEqualsSequential(t *testing.T) {
	gp, gt := mediumInstance(t)
	key := func(m []int32) string {
		b := make([]byte, 0, 4*len(m))
		for _, v := range m {
			b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		return string(b)
	}

	seqSet := map[string]bool{}
	_, err := ri.Enumerate(gp, gt, ri.Options{Variant: ri.VariantRIDS}, ri.RunOptions{
		Visit: func(m []int32) bool {
			seqSet[key(m)] = true
			return true
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	parSet := map[string]bool{}
	res := Enumerate(prepared(t, gp, gt, ri.VariantRIDS), Options{
		Workers: 4,
		Visit: func(m []int32) bool {
			mu.Lock()
			parSet[key(m)] = true
			mu.Unlock()
			return true
		},
	})
	if len(seqSet) != len(parSet) || int64(len(parSet)) != res.Matches {
		t.Fatalf("set sizes differ: seq=%d par=%d matches=%d", len(seqSet), len(parSet), res.Matches)
	}
	for k := range seqSet {
		if !parSet[k] {
			t.Fatal("parallel run missed a mapping the sequential run found")
		}
	}
}

// TestNoInitialDistribution checks the §3.3 ablation still enumerates
// everything when all seeds start on worker 0.
func TestNoInitialDistribution(t *testing.T) {
	gp, gt := mediumInstance(t)
	want := Enumerate(prepared(t, gp, gt, ri.VariantRI), Options{Workers: 1}).Matches
	res := Enumerate(prepared(t, gp, gt, ri.VariantRI), Options{
		Workers: 4, NoInitialDistribution: true, Seed: 9,
	})
	if res.Matches != want {
		t.Fatalf("no-init-dist matches = %d, want %d", res.Matches, want)
	}
}

// TestInducedParallel: the parallel engine shares Feasible with the
// sequential one, so induced mode must agree across worker counts.
func TestInducedParallel(t *testing.T) {
	gp, gt := testutil.RandomInstance(23, testutil.InstanceOptions{
		TargetNodes: 40, TargetEdges: 260, PatternNodes: 5, Extract: true,
	})
	p, err := ri.Prepare(gp, gt, ri.Options{Variant: ri.VariantRIDS, Semantics: graph.InducedIso})
	if err != nil {
		t.Fatal(err)
	}
	want := p.Run(ri.RunOptions{}).Matches
	for _, w := range []int{2, 4, 8} {
		if got := Enumerate(p, Options{Workers: w, Seed: int64(w)}).Matches; got != want {
			t.Errorf("workers=%d induced matches = %d, want %d", w, got, want)
		}
	}
}

func TestDepthStatesParallel(t *testing.T) {
	gp, gt := mediumInstance(t)
	seq, err := ri.Enumerate(gp, gt, ri.Options{Variant: ri.VariantRIDS}, ri.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := Enumerate(prepared(t, gp, gt, ri.VariantRIDS), Options{Workers: 4, Seed: 2})
	if len(res.DepthStates) != len(seq.DepthStates) {
		t.Fatalf("profile lengths differ: %d vs %d", len(res.DepthStates), len(seq.DepthStates))
	}
	var sum int64
	for d, c := range res.DepthStates {
		sum += c
		// Parallel explores exactly the same tree: per-depth counts match.
		if c != seq.DepthStates[d] {
			t.Errorf("depth %d: parallel %d states vs sequential %d", d, c, seq.DepthStates[d])
		}
	}
	if sum != res.States {
		t.Fatalf("profile sums to %d, States = %d", sum, res.States)
	}
}

func TestSenderInitiatedParallel(t *testing.T) {
	gp, gt := mediumInstance(t)
	want := Enumerate(prepared(t, gp, gt, ri.VariantRIDS), Options{Workers: 1}).Matches
	res := Enumerate(prepared(t, gp, gt, ri.VariantRIDS), Options{
		Workers: 4, SenderInitiated: true, Seed: 6,
	})
	if res.Matches != want {
		t.Fatalf("sender-initiated matches = %d, want %d", res.Matches, want)
	}
}
