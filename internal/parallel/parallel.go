// Package parallel implements the paper's shared-memory parallel subgraph
// enumeration (Kimmig et al. §3) on top of the work-stealing runtime in
// internal/steal and the preprocessing/feasibility rules in internal/ri.
//
// Task representation (§3.1): a task is the pair (ordering position,
// candidate target node) — "we effectively represent a task by the node
// pair (µ_i, v_t)". Tasks do not carry the partial mapping; each worker
// maintains its mapping incrementally, which is always valid for private
// tasks thanks to the deque's depth-first discipline (§3.2(i)). Only when
// a task group is stolen does the victim attach a copy of the mapping
// prefix below it (§3.2(ii)) — the only mapping copies in the system.
// Consistency of every task is checked *before* it is spawned, so stolen
// tasks are rarely dead ends (§3.1).
//
// Task coalescing (§3.4): up to Options.TaskGroupSize sibling tasks are
// packed into one deque entry; steals move whole groups, trading
// granularity against steal overhead (evaluated in the paper's Fig 4).
//
// Initial work distribution (§3.3): the consistent children of the search
// root (candidates for µ_1) are dealt round-robin into all workers'
// deques before the workers start.
package parallel

import (
	"context"
	"sync/atomic"
	"time"

	"parsge/internal/graph"
	"parsge/internal/order"
	"parsge/internal/ri"
	"parsge/internal/steal"
)

// MaxGroupSize caps task coalescing; the paper evaluates group sizes up
// to 16 (Fig 4). The fixed-size array keeps task groups allocation-free.
const MaxGroupSize = 16

// DefaultGroupSize is the task group size used when Options leaves it 0;
// the paper settles on four ("For our remaining experiments, we use task
// group size four", §5.2.2).
const DefaultGroupSize = 4

// Options configures a parallel enumeration run.
type Options struct {
	// Workers is the number of workers; 0 means 1.
	Workers int
	// TaskGroupSize is the coalescing granularity G in [1, MaxGroupSize];
	// 0 means DefaultGroupSize.
	TaskGroupSize int
	// DisableStealing turns load balancing off (Fig 3 ablation): workers
	// process only their share of the initial distribution.
	DisableStealing bool
	// StealFromFront makes victims service steals from the front (deep
	// end) of their deque — an ablation violating §3.2(ii).
	StealFromFront bool
	// EagerCopy attaches a copy of the mapping prefix to every spawned
	// task group, stolen or not. This reproduces the overhead of the
	// Cilk++ VF2 parallelization the paper criticizes ("the amount of
	// state copied to enable work stealing results in a lot of
	// overhead", §2.2.2) and is used by the ablation bench.
	EagerCopy bool
	// SenderInitiated switches the runtime to sender-initiated dealing
	// (busy workers push to advertised-idle ones) — the load-balancing
	// alternative the paper mentions and sets aside (§3.2); ablation.
	SenderInitiated bool
	// NoInitialDistribution seeds all root tasks into worker 0's deque
	// instead of dealing them round-robin — the §3.3 ablation: all
	// other workers must then bootstrap via stealing.
	NoInitialDistribution bool
	// Seed seeds victim selection.
	Seed int64
	// Limit stops the run after at least this many matches (0 = all).
	Limit int64
	// Visit, when non-nil, is called for every match with the mapping
	// indexed by pattern node id. It is invoked concurrently from
	// worker goroutines and must be safe for concurrent use; the slice
	// is reused, copy to retain. Returning false cancels the run.
	Visit func(mapping []int32) bool
	// Ctx, when non-nil, cooperatively aborts the run when cancelled
	// (the harness derives a context.WithTimeout from it for the 180 s
	// time limit of the paper's setup). Busy workers poll the done
	// channel at the same low frequency the previous atomic-flag design
	// used; idle workers are woken by the steal runtime's own watcher.
	Ctx context.Context
	// Arena, when non-nil and sized for the prepared target, supplies
	// each worker's target-sized used-set from a shared pool instead of
	// allocating per run — the per-worker scratch reuse of the session
	// API.
	Arena *ri.Arena
}

func (o Options) normalized() Options {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.TaskGroupSize <= 0 {
		o.TaskGroupSize = DefaultGroupSize
	}
	if o.TaskGroupSize > MaxGroupSize {
		o.TaskGroupSize = MaxGroupSize
	}
	return o
}

// Result reports a parallel run.
type Result struct {
	// Matches is the number of isomorphic subgraphs found.
	Matches int64
	// States is the total number of search states checked across all
	// workers (the paper's search space size).
	States int64
	// PerWorkerStates breaks States down by worker — its standard
	// deviation is the load-balance metric of Fig 3.
	PerWorkerStates []int64
	// DepthStates breaks States down by ordering position (summed over
	// workers): the search profile.
	DepthStates []int64
	// PerWorkerMatches breaks Matches down by worker.
	PerWorkerMatches []int64
	// Steals is the number of task groups moved between workers (Fig 4).
	Steals int64
	// StealStats retains the full runtime counters.
	StealStats steal.Stats
	// PreprocTime is the preprocessing time of the Prepared instance.
	PreprocTime time.Duration
	// MatchTime is the wall time of the parallel search phase.
	MatchTime time.Duration
	// Aborted reports an external cancellation (timeout) or a Visit
	// callback stop; Limit-triggered stops are not aborts.
	Aborted bool
	// Unsatisfiable is inherited from preprocessing.
	Unsatisfiable bool
}

// TotalTime returns preprocessing plus matching wall time.
func (r Result) TotalTime() time.Duration { return r.PreprocTime + r.MatchTime }

// taskGroup packs up to MaxGroupSize sibling tasks: candidate target
// nodes for the same ordering position, valid under the same mapping
// prefix.
type taskGroup struct {
	depth   int32 // ordering position of every task in the group
	idx     int32 // next unexecuted task within targets
	n       int32 // number of valid entries in targets
	targets [MaxGroupSize]int32
	// prefix, when non-nil, holds the mapping values for positions
	// [0, depth) that must be installed before executing the group —
	// attached by PackSteal for stolen groups (and by every spawn under
	// EagerCopy).
	prefix []int32
}

// workerState is the per-worker search state: the incrementally
// maintained partial mapping of §3.2(i).
type workerState struct {
	mapped      []int32 // ordering position → target node (valid below depth)
	used        []bool  // target node → used by current mapping
	depth       int     // number of valid mapping entries
	states      int64
	depthStates []int64
	matches     int64
	visitBuf    []int32 // pattern node id → target node, for Visit
}

// engine implements steal.Runner[taskGroup].
type engine struct {
	p    *ri.Prepared
	opts Options
	done <-chan struct{} // Ctx's done channel (nil without one)
	ws   []*workerState
	rt   *steal.Runtime[taskGroup]

	globalMatches atomic.Int64 // only maintained when Limit > 0
	limitHit      atomic.Bool
	visitStop     atomic.Bool
}

const cancelCheckMask = 0x3FF

// Enumerate runs the parallel search over a prepared instance.
func Enumerate(p *ri.Prepared, opts Options) (res Result) {
	opts = opts.normalized()
	res = Result{
		PreprocTime:      p.PreprocTime,
		Unsatisfiable:    p.Unsat,
		PerWorkerStates:  make([]int64, opts.Workers),
		PerWorkerMatches: make([]int64, opts.Workers),
	}
	start := time.Now()
	defer func() { res.MatchTime = time.Since(start) }()

	if p.Unsat || p.NumPositions() == 0 {
		return res
	}
	if opts.Ctx != nil && opts.Ctx.Err() != nil {
		res.Aborted = true
		return res
	}

	e := &engine{p: p, opts: opts, ws: make([]*workerState, opts.Workers)}
	if opts.Ctx != nil {
		e.done = opts.Ctx.Done()
	}
	arena := opts.Arena
	if arena != nil && arena.NumNodes() != p.Target.NumNodes() {
		arena = nil // built for a different target: ignore
	}
	for i := range e.ws {
		var used []bool
		if arena != nil {
			used = arena.AcquireUsed()
		} else {
			used = make([]bool, p.Target.NumNodes())
		}
		e.ws[i] = &workerState{
			mapped:      make([]int32, p.NumPositions()),
			used:        used,
			visitBuf:    make([]int32, p.Pattern.NumNodes()),
			depthStates: make([]int64, p.NumPositions()),
		}
	}
	if arena != nil {
		// Workers stop wherever the schedule left them, so their
		// used-sets still carry the bits of the current partial mapping;
		// clear exactly those before the buffers go back to the pool.
		defer func() {
			for _, ws := range e.ws {
				for i := 0; i < ws.depth; i++ {
					ws.used[ws.mapped[i]] = false
				}
				arena.ReleaseUsed(ws.used)
			}
		}()
	}

	rt, err := steal.New(steal.Config{
		Workers:         opts.Workers,
		Stealing:        !opts.DisableStealing,
		StealFromFront:  opts.StealFromFront,
		SenderInitiated: opts.SenderInitiated,
		Seed:            opts.Seed,
	}, e)
	if err != nil {
		// normalized() guarantees Workers ≥ 1; steal.New cannot fail.
		panic(err)
	}
	e.rt = rt

	e.seedInitialTasks()

	// The runtime watches Ctx itself (idle workers included); busy
	// workers additionally poll the done channel inline via shouldStop.
	res.StealStats = rt.Run(opts.Ctx)
	res.Steals = res.StealStats.TotalSteals()

	res.DepthStates = make([]int64, p.NumPositions())
	for i, ws := range e.ws {
		res.PerWorkerStates[i] = ws.states
		res.PerWorkerMatches[i] = ws.matches
		res.States += ws.states
		res.Matches += ws.matches
		for d, c := range ws.depthStates {
			res.DepthStates[d] += c
		}
	}
	res.Aborted = rt.Cancelled() && !e.limitHit.Load()
	if e.visitStop.Load() {
		res.Aborted = true
	}
	return res
}

// EnumerateGraphs is the convenience entry point combining ri.Prepare and
// Enumerate.
func EnumerateGraphs(gp, gt *graph.Graph, prep ri.Options, opts Options) (Result, error) {
	p, err := ri.Prepare(gp, gt, prep)
	if err != nil {
		return Result{}, err
	}
	return Enumerate(p, opts), nil
}

// seedInitialTasks creates the tasks directly below the search root —
// one per consistent candidate of µ_1 — and deals them into the workers'
// deques in groups (§3.3). The consistency checks are counted against
// worker 0's state counter.
func (e *engine) seedInitialTasks() {
	ws0 := e.ws[0]
	g := taskGroup{depth: 0}
	next := 0
	flush := func() {
		if g.n > 0 {
			if e.opts.EagerCopy {
				g.prefix = []int32{}
			}
			e.rt.Seed(next, g)
			if !e.opts.NoInitialDistribution {
				next = (next + 1) % e.opts.Workers
			}
			g = taskGroup{depth: 0}
		}
	}
	e.p.RootCandidates(func(vt int32) bool {
		ws0.states++
		ws0.depthStates[0]++
		if e.p.Feasible(0, vt, ws0.mapped, ws0.used) {
			g.targets[g.n] = vt
			g.n++
			if int(g.n) == e.opts.TaskGroupSize {
				flush()
			}
		}
		return true
	})
	flush()
}

// Execute processes one task group on worker w: install the prefix if the
// group was stolen, split off the head task, push the remainder back, and
// expand the head (§3.4 processes groups "as a single unit of work";
// splitting preserves the depth-first mapping discipline).
func (e *engine) Execute(w *steal.Worker[taskGroup], g taskGroup) {
	ws := e.ws[w.ID]
	if g.prefix != nil {
		e.installPrefix(ws, g)
	}
	// Re-push the remaining siblings before expanding the head so the
	// head's children (pushed after) are popped first — depth-first.
	head := g.targets[g.idx]
	if g.idx+1 < g.n {
		rest := g
		rest.idx++
		rest.prefix = nil // the owner's mapping is valid for it now
		if e.opts.EagerCopy {
			rest.prefix = append([]int32(nil), ws.mapped[:g.depth]...)
		}
		w.Push(rest)
	}
	e.expand(w, ws, int(g.depth), head)
}

// installPrefix rewinds the worker's mapping completely and installs the
// stolen prefix. A thief only steals when its deque is empty, so no other
// private task depends on the discarded mapping.
func (e *engine) installPrefix(ws *workerState, g taskGroup) {
	for i := ws.depth - 1; i >= 0; i-- {
		ws.used[ws.mapped[i]] = false
	}
	ws.depth = 0
	for i, vt := range g.prefix[:g.depth] {
		ws.mapped[i] = vt
		ws.used[vt] = true
	}
	ws.depth = int(g.depth)
}

// expand maps the task (depth, vt) — already proven consistent at spawn
// time — and spawns the consistent children at depth+1.
func (e *engine) expand(w *steal.Worker[taskGroup], ws *workerState, depth int, vt int32) {
	// Rewind the mapping to the task's depth (§3.2(i): private tasks pop
	// in depth-first order, so entries below depth remain valid).
	for i := ws.depth - 1; i >= depth; i-- {
		ws.used[ws.mapped[i]] = false
	}
	ws.mapped[depth] = vt
	ws.used[vt] = true
	ws.depth = depth + 1

	if ws.depth == e.p.NumPositions() {
		e.emit(ws)
		return
	}

	next := ws.depth
	cur := taskGroup{depth: int32(next)}
	flush := func() {
		if cur.n > 0 {
			if e.opts.EagerCopy {
				cur.prefix = append([]int32(nil), ws.mapped[:next]...)
			}
			w.Push(cur)
			cur = taskGroup{depth: int32(next)}
		}
	}
	push := func(cand int32) {
		cur.targets[cur.n] = cand
		cur.n++
		if int(cur.n) == e.opts.TaskGroupSize {
			flush()
		}
	}

	tryCandidate := func(cand int32) bool {
		ws.states++
		ws.depthStates[next]++
		if ws.states&cancelCheckMask == 0 && e.shouldStop() {
			return false
		}
		if e.p.Feasible(next, cand, ws.mapped, ws.used) {
			push(cand)
		}
		return true
	}

	if parent := e.p.ParentPos(next); parent != order.NoParent {
		adj := e.p.Candidates(next, ws.mapped[parent])
		for i, cand := range adj {
			if i > 0 && adj[i-1] == cand {
				continue // parallel target edges: same candidate node
			}
			if !tryCandidate(cand) {
				return
			}
		}
	} else if e.p.Doms != nil {
		u := e.p.Ord.Seq[next]
		ok := true
		e.p.Doms.Of(u).ForEach(func(i int) bool {
			ok = tryCandidate(int32(i))
			return ok
		})
		if !ok {
			return
		}
	} else {
		// Parentless position without domains: label bucket (with a
		// shared target index) or every target node.
		ok := true
		e.p.FreeCandidates(next, func(cand int32) bool {
			ok = tryCandidate(cand)
			return ok
		})
		if !ok {
			return
		}
	}
	flush()
}

// emit records a complete match on the worker and handles Limit/Visit.
func (e *engine) emit(ws *workerState) {
	ws.matches++
	if e.opts.Visit != nil {
		for i, vt := range ws.mapped {
			ws.visitBuf[e.p.Ord.Seq[i]] = vt
		}
		if !e.opts.Visit(ws.visitBuf) {
			e.visitStop.Store(true)
			e.rt.Cancel()
			return
		}
	}
	if e.opts.Limit > 0 {
		if e.globalMatches.Add(1) >= e.opts.Limit {
			e.limitHit.Store(true)
			e.rt.Cancel()
		}
	}
}

// shouldStop polls the context's done channel from the expansion hot loop.
func (e *engine) shouldStop() bool {
	if e.rt.Cancelled() {
		return true
	}
	if e.done != nil {
		select {
		case <-e.done:
			e.rt.Cancel()
			return true
		default:
		}
	}
	return false
}

// PackSteal attaches a copy of the victim's mapping prefix below the
// stolen group — the only mapping copy in the private-deque scheme
// ("our parallelization copies partial solutions only for stolen tasks,
// not those that remain private", §2.2.2).
func (e *engine) PackSteal(victim *steal.Worker[taskGroup], g taskGroup) taskGroup {
	if g.prefix == nil {
		ws := e.ws[victim.ID]
		prefix := make([]int32, g.depth)
		copy(prefix, ws.mapped[:g.depth])
		g.prefix = prefix
	}
	return g
}
