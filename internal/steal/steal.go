// Package steal implements the receiver-initiated work-stealing runtime
// with private deques that the paper adopts from Acar, Charguéraud and
// Rainey (PPoPP 2013) — Kimmig et al. §3.2–§3.5.
//
// Each worker owns a private, completely unsynchronized deque. The owner
// pushes and pops task groups at the front in depth-first order; idle
// workers place a request in the victim's requests cell and the *victim*
// services it inside its work loop, popping from the back of its own
// deque and handing the task over through a transfer cell. Because tasks
// near the back are close to the root of the search space tree, stolen
// tasks tend to be long-running and steals stay rare (§3.2(ii)).
//
// Shared state is exactly the three arrays the paper lists (§3.2):
//
//	workAvailable — one flag per worker: "my deque is non-empty";
//	requests      — one cell per worker holding a requesting thief's id,
//	                the only CAS-synchronized structure ("Except for the
//	                requests, all data structures are completely
//	                unsynchronized");
//	transfers     — one cell per worker where a granted (or rejected)
//	                steal is delivered.
//
// Termination uses the Dijkstra token-ring algorithm (§3.5): idle
// workers pass a token around the worker ring; granting a steal colors
// the victim black; a black worker blackens the token as it forwards it;
// worker 0 declares global termination when a white token completes a
// round while worker 0 itself is white and idle.
package steal

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"parsge/internal/deque"
)

// Runner is the client of the runtime: it supplies task semantics.
type Runner[T any] interface {
	// Execute runs one task group on the calling worker. It may push
	// follow-up groups via w.Push; pushes go to the front of w's deque
	// in depth-first order.
	Execute(w *Worker[T], task T)
	// PackSteal is invoked on the *victim's* goroutine just before task
	// (popped from the back of the victim's deque) is transferred to a
	// thief. It returns the value delivered — typically the task plus a
	// copy of the victim's current partial-mapping prefix, the only
	// mapping copy the system ever performs (§3.2).
	PackSteal(victim *Worker[T], task T) T
}

// Config configures a Runtime.
type Config struct {
	// Workers is the number of workers (goroutines). Must be ≥ 1.
	Workers int
	// Stealing enables load balancing. With false, workers only process
	// their initial share (the Fig 3 ablation).
	Stealing bool
	// StealFromFront services steals from the *front* of the victim's
	// deque instead of the back — an ablation that violates the
	// "steal close to the root" principle (§3.2(ii)).
	StealFromFront bool
	// SenderInitiated switches load balancing to sender-initiated
	// dealing: busy workers with surplus tasks push work to workers
	// advertising idleness, instead of idle workers requesting it. The
	// paper notes both directions are possible and picks
	// receiver-initiated for comparable performance (§3.2); this mode
	// exists for the ablation benchmark.
	SenderInitiated bool
	// Seed seeds the per-worker victim-selection RNGs.
	Seed int64
}

// Stats aggregates runtime counters after Run returns.
type Stats struct {
	// StealsReceived[w] counts tasks worker w obtained by stealing.
	StealsReceived []int64
	// StealsGranted[w] counts tasks worker w handed to thieves.
	StealsGranted []int64
	// Rejects counts steal requests answered with "no work".
	Rejects int64
	// TokenRounds counts termination-probe rounds (≥ 1).
	TokenRounds int64
}

// TotalSteals sums StealsReceived — the paper's "number of steals".
func (s Stats) TotalSteals() int64 {
	var t int64
	for _, v := range s.StealsReceived {
		t += v
	}
	return t
}

const (
	noRequest = int32(-1)
	white     = int32(0)
	black     = int32(1)
)

// transferMsg carries a granted steal (ok) or a rejection (!ok).
type transferMsg[T any] struct {
	task T
	ok   bool
}

// pad prevents false sharing between per-worker atomic cells. 64 bytes
// is the dominant cache line size; the exact value only affects
// performance, not correctness.
type paddedBool struct {
	v atomic.Bool
	_ [56]byte
}

type paddedInt32 struct {
	v atomic.Int32
	_ [60]byte
}

type paddedPtr[T any] struct {
	v atomic.Pointer[transferMsg[T]]
	_ [56]byte
}

// Worker is the per-goroutine state. Only the owning goroutine touches
// dq, rng, and color.
type Worker[T any] struct {
	// ID is the worker index in [0, Config.Workers).
	ID int

	rt    *Runtime[T]
	dq    deque.Deque[T]
	rng   *rand.Rand
	color int32 // white/black for termination detection; owner-only

	stealsReceived int64
	stealsGranted  int64
}

// Push adds a task group at the front of the worker's private deque
// (depth-first order). Must only be called from Runner.Execute on the
// same worker.
func (w *Worker[T]) Push(t T) { w.dq.PushFront(t) }

// QueueLen reports the current private deque length (owner-only; used by
// Runner implementations for adaptive decisions and by tests).
func (w *Worker[T]) QueueLen() int { return w.dq.Len() }

// Cancelled reports whether the runtime was cancelled; long Execute
// implementations should poll it.
func (w *Worker[T]) Cancelled() bool { return w.rt.cancelled.Load() }

// Runtime executes a task graph over a fixed set of workers until global
// termination or cancellation.
type Runtime[T any] struct {
	cfg    Config
	runner Runner[T]

	workers       []*Worker[T]
	workAvailable []paddedBool
	requests      []paddedInt32
	transfers     []paddedPtr[T]
	// idle advertises receivers for sender-initiated dealing.
	idle []paddedBool

	tokenHolder atomic.Int32
	tokenColor  atomic.Int32
	terminated  atomic.Bool
	cancelled   atomic.Bool

	rejects     atomic.Int64
	tokenRounds atomic.Int64
}

// New builds a runtime. Seed tasks with Seed before calling Run.
func New[T any](cfg Config, r Runner[T]) (*Runtime[T], error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("steal: Workers = %d, need at least 1", cfg.Workers)
	}
	rt := &Runtime[T]{
		cfg:           cfg,
		runner:        r,
		workers:       make([]*Worker[T], cfg.Workers),
		workAvailable: make([]paddedBool, cfg.Workers),
		requests:      make([]paddedInt32, cfg.Workers),
		transfers:     make([]paddedPtr[T], cfg.Workers),
		idle:          make([]paddedBool, cfg.Workers),
	}
	for i := range rt.workers {
		rt.workers[i] = &Worker[T]{
			ID:  i,
			rt:  rt,
			rng: rand.New(rand.NewSource(cfg.Seed + int64(i)*0x9E3779B9)),
		}
		rt.requests[i].v.Store(noRequest)
	}
	// Token starts black at worker 0 so at least one full white round is
	// required before termination.
	rt.tokenHolder.Store(0)
	rt.tokenColor.Store(black)
	return rt, nil
}

// Seed places a task group at the back of a worker's deque before Run.
// The initial work distribution deals root-level tasks across workers
// (§3.3); pushing to the back keeps the owner's front free for its own
// depth-first children.
func (rt *Runtime[T]) Seed(worker int, t T) {
	rt.workers[worker].dq.PushBack(t)
}

// Cancel aborts the run as soon as every worker notices the flag.
func (rt *Runtime[T]) Cancel() { rt.cancelled.Store(true) }

// Cancelled reports whether Cancel was called.
func (rt *Runtime[T]) Cancelled() bool { return rt.cancelled.Load() }

// Run starts all workers and blocks until global termination or
// cancellation. A nil ctx means context.Background(); when ctx carries a
// cancellation signal, a watcher goroutine translates it into Cancel()
// the moment it fires, so even fully idle workers notice promptly —
// workers themselves never touch the context. Run may be called once per
// Runtime.
func (rt *Runtime[T]) Run(ctx context.Context) Stats {
	if ctx != nil {
		if done := ctx.Done(); done != nil {
			stop := make(chan struct{})
			defer close(stop)
			go func() {
				select {
				case <-done:
					rt.Cancel()
				case <-stop:
				}
			}()
		}
	}
	for i := range rt.workers {
		rt.workAvailable[i].v.Store(!rt.workers[i].dq.Empty())
	}
	var wg sync.WaitGroup
	wg.Add(len(rt.workers))
	for _, w := range rt.workers {
		go func(w *Worker[T]) {
			defer wg.Done()
			w.loop()
		}(w)
	}
	wg.Wait()

	st := Stats{
		StealsReceived: make([]int64, len(rt.workers)),
		StealsGranted:  make([]int64, len(rt.workers)),
		Rejects:        rt.rejects.Load(),
		TokenRounds:    rt.tokenRounds.Load(),
	}
	for i, w := range rt.workers {
		st.StealsReceived[i] = w.stealsReceived
		st.StealsGranted[i] = w.stealsGranted
	}
	return st
}

// loop is the work loop of Fig 2 in the paper:
//
//	while not terminated:
//	    if q.is_empty(): acquire_task(worker)
//	    task = q.pop()
//	    work_available[worker] = not q.is_empty()
//	    process_task_requests(worker)
//	    execute(task)
func (w *Worker[T]) loop() {
	rt := w.rt
	iter := 0
	for !rt.terminated.Load() && !rt.cancelled.Load() {
		// Periodic fairness yield: when workers outnumber CPUs (the
		// paper runs 16 workers; hosts may have fewer cores), a busy
		// worker in a tight loop can starve thieves and the
		// termination token of scheduler time.
		if iter++; iter&63 == 0 {
			runtime.Gosched()
		}
		if w.dq.Empty() {
			if !w.acquire() {
				break // terminated or cancelled while idle
			}
		}
		task, ok := w.dq.PopFront()
		if !ok {
			continue // acquire can return without a task after a reject
		}
		rt.workAvailable[w.ID].v.Store(!w.dq.Empty())
		if rt.cfg.SenderInitiated {
			w.maybeDeal()
		} else {
			w.processRequests()
		}
		rt.runner.Execute(w, task)
	}
	// Leave no thief spinning on our transfer cell: answer any pending
	// request with a rejection on the way out.
	rt.workAvailable[w.ID].v.Store(false)
	w.rejectPending()
}

// acquire implements the idle phase: the worker repeatedly requests work
// from random victims until it receives a task or the computation
// terminates (§3.2: "Once it runs out of tasks, it repeatedly requests
// work from a random worker until it receives a task or is terminated").
// It returns false on termination/cancellation.
func (w *Worker[T]) acquire() bool {
	rt := w.rt
	rt.workAvailable[w.ID].v.Store(false)
	if rt.cfg.SenderInitiated {
		return w.acquireFromSenders()
	}
	for {
		if rt.terminated.Load() || rt.cancelled.Load() {
			return false
		}
		// We hold no work, so answer any thief immediately.
		w.rejectPending()
		// Termination token: idle workers pass it along the ring.
		w.handleToken()
		if !rt.cfg.Stealing || len(rt.workers) == 1 {
			runtime.Gosched()
			continue
		}
		victim := w.pickVictim()
		if victim < 0 {
			runtime.Gosched()
			continue
		}
		if !rt.requests[victim].v.CompareAndSwap(noRequest, int32(w.ID)) {
			runtime.Gosched()
			continue
		}
		if msg := w.awaitTransfer(); msg != nil && msg.ok {
			w.dq.PushFront(msg.task)
			w.stealsReceived++
			rt.workAvailable[w.ID].v.Store(true)
			return true
		}
	}
}

// acquireFromSenders is the idle phase of sender-initiated dealing: the
// worker advertises idleness and waits for a busy worker to deliver a
// task into its transfer cell. The requests cell is used in the reverse
// direction as the sender's delivery claim.
func (w *Worker[T]) acquireFromSenders() bool {
	rt := w.rt
	rt.idle[w.ID].v.Store(true)
	defer rt.idle[w.ID].v.Store(false)
	cell := &rt.transfers[w.ID].v
	for {
		if rt.terminated.Load() || rt.cancelled.Load() {
			return false
		}
		// Consume any pending delivery BEFORE touching the termination
		// token: passing a white token while holding an unconsumed task
		// would hide the reactivation from the ring and allow a false
		// termination.
		if msg := cell.Load(); msg != nil {
			cell.Store(nil)
			rt.requests[w.ID].v.Store(noRequest) // release the sender's claim
			if msg.ok {
				w.dq.PushFront(msg.task)
				w.stealsReceived++
				rt.workAvailable[w.ID].v.Store(true)
				return true
			}
		}
		w.handleToken()
		runtime.Gosched()
	}
}

// maybeDeal is the busy-side half of sender-initiated dealing: with
// surplus work, probe one random worker and, if it advertises idleness,
// claim its delivery slot and hand over the back task group.
func (w *Worker[T]) maybeDeal() {
	rt := w.rt
	if !rt.cfg.Stealing || w.dq.Len() < 2 || len(rt.workers) == 1 {
		return
	}
	j := w.rng.Intn(len(rt.workers))
	if j == w.ID || !rt.idle[j].v.Load() {
		return
	}
	if !rt.requests[j].v.CompareAndSwap(noRequest, int32(w.ID)) {
		return // another sender beat us to this receiver
	}
	task, ok := w.dq.PopBack()
	if !ok {
		rt.requests[j].v.Store(noRequest)
		return
	}
	msg := transferMsg[T]{task: rt.runner.PackSteal(w, task), ok: true}
	w.stealsGranted++
	w.color = black // same conservative blackening rule as steal grants
	rt.workAvailable[w.ID].v.Store(!w.dq.Empty())
	rt.transfers[j].v.Store(&msg)
}

// pickVictim returns a random other worker advertising work, or -1.
func (w *Worker[T]) pickVictim() int {
	rt := w.rt
	n := len(rt.workers)
	// One random probe per iteration, as in receiver-initiated private
	// deque stealing; scanning all workers would serialize on the flags.
	v := w.rng.Intn(n)
	if v == w.ID || !rt.workAvailable[v].v.Load() {
		return -1
	}
	return v
}

// awaitTransfer spins until the victim answers our request (grant or
// reject). While waiting it keeps answering its own pending requests and
// returns nil on cancellation (the victim may have exited).
func (w *Worker[T]) awaitTransfer() *transferMsg[T] {
	rt := w.rt
	cell := &rt.transfers[w.ID].v
	for {
		if msg := cell.Load(); msg != nil {
			cell.Store(nil)
			return msg
		}
		if rt.cancelled.Load() {
			return nil
		}
		w.rejectPending()
		runtime.Gosched()
	}
}

// processRequests services at most one pending steal request from the
// work loop (§3.2: the worker "checks for a work request in requests,
// answering that via transfers from the back of its queue if possible").
func (w *Worker[T]) processRequests() {
	rt := w.rt
	thief := rt.requests[w.ID].v.Load()
	if thief == noRequest {
		return
	}
	var msg transferMsg[T]
	var task T
	var ok bool
	if rt.cfg.StealFromFront {
		task, ok = w.dq.PopFront()
	} else {
		task, ok = w.dq.PopBack()
	}
	if ok {
		msg = transferMsg[T]{task: rt.runner.PackSteal(w, task), ok: true}
		w.stealsGranted++
		// Granting a steal may reactivate a worker the termination token
		// already passed: turn black so the current probe round fails
		// (conservative variant of Dijkstra's rule).
		w.color = black
		rt.workAvailable[w.ID].v.Store(!w.dq.Empty())
	} else {
		rt.rejects.Add(1)
	}
	rt.transfers[thief].v.Store(&msg)
	rt.requests[w.ID].v.Store(noRequest)
}

// rejectPending answers a pending request with "no work"; used whenever
// the worker is idle or exiting.
func (w *Worker[T]) rejectPending() {
	rt := w.rt
	thief := rt.requests[w.ID].v.Load()
	if thief == noRequest {
		return
	}
	rt.rejects.Add(1)
	rt.transfers[thief].v.Store(&transferMsg[T]{})
	rt.requests[w.ID].v.Store(noRequest)
}

// handleToken advances Dijkstra's termination-detection token if this
// idle worker currently holds it (§3.5).
func (w *Worker[T]) handleToken() {
	rt := w.rt
	if rt.tokenHolder.Load() != int32(w.ID) {
		return
	}
	n := int32(len(rt.workers))
	if w.ID == 0 {
		if rt.tokenColor.Load() == white && w.color == white {
			rt.terminated.Store(true)
			return
		}
		// Start a fresh probe round with a white token.
		rt.tokenRounds.Add(1)
		w.color = white
		rt.tokenColor.Store(white)
		rt.tokenHolder.Store(1 % n)
		return
	}
	if w.color == black {
		rt.tokenColor.Store(black)
	}
	w.color = white
	rt.tokenHolder.Store((int32(w.ID) + 1) % n)
}
