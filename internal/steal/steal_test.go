package steal

import (
	"context"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// rangeTask is a synthetic divisible workload: process the integers in
// [lo, hi). Execute splits big ranges and "processes" small ones by
// adding them into a global sum. The expected total is independent of
// scheduling, so lost or duplicated tasks are detected exactly.
type rangeTask struct {
	lo, hi int64
}

type rangeRunner struct {
	sum       atomic.Int64
	count     atomic.Int64
	packCalls atomic.Int64
	spinWork  int // artificial work per leaf to make stealing worthwhile
}

func (r *rangeRunner) Execute(w *Worker[rangeTask], t rangeTask) {
	n := t.hi - t.lo
	if n > 4 {
		mid := t.lo + n/2
		w.Push(rangeTask{t.lo, mid})
		w.Push(rangeTask{mid, t.hi})
		return
	}
	for i := t.lo; i < t.hi; i++ {
		x := 0
		for k := 0; k < r.spinWork; k++ {
			x += k
		}
		_ = x
		r.sum.Add(i)
		r.count.Add(1)
	}
}

func (r *rangeRunner) PackSteal(_ *Worker[rangeTask], t rangeTask) rangeTask {
	r.packCalls.Add(1)
	return t
}

// runRange executes [0, n) over the given config and returns the stats.
func runRange(t *testing.T, cfg Config, n int64, r *rangeRunner) Stats {
	t.Helper()
	rt, err := New(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	// Deal initial chunks round-robin as the engines do.
	const chunk = 64
	w := 0
	for lo := int64(0); lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		rt.Seed(w, rangeTask{lo, hi})
		w = (w + 1) % cfg.Workers
	}
	done := make(chan Stats, 1)
	go func() { done <- rt.Run(nil) }()
	select {
	case st := <-done:
		return st
	case <-time.After(30 * time.Second):
		t.Fatal("runtime did not terminate")
		return Stats{}
	}
}

func checkSum(t *testing.T, r *rangeRunner, n int64) {
	t.Helper()
	want := n * (n - 1) / 2
	if got := r.sum.Load(); got != want {
		t.Fatalf("sum = %d, want %d (lost or duplicated tasks)", got, want)
	}
	if got := r.count.Load(); got != n {
		t.Fatalf("count = %d, want %d", got, n)
	}
}

func TestSingleWorker(t *testing.T) {
	r := &rangeRunner{}
	st := runRange(t, Config{Workers: 1, Stealing: true}, 1000, r)
	checkSum(t, r, 1000)
	if st.TotalSteals() != 0 {
		t.Errorf("single worker stole %d tasks", st.TotalSteals())
	}
	if st.TokenRounds < 1 {
		t.Error("termination without any token round")
	}
}

func TestManyWorkers(t *testing.T) {
	for _, workers := range []int{2, 3, 4, 8, 16} {
		r := &rangeRunner{spinWork: 50}
		st := runRange(t, Config{Workers: workers, Stealing: true, Seed: int64(workers)}, 20000, r)
		checkSum(t, r, 20000)
		if got := st.TotalSteals(); got < 0 {
			t.Errorf("workers=%d: negative steals %d", workers, got)
		}
		var granted int64
		for _, g := range st.StealsGranted {
			granted += g
		}
		if granted != st.TotalSteals() {
			t.Errorf("workers=%d: granted %d != received %d", workers, granted, st.TotalSteals())
		}
		if r.packCalls.Load() != granted {
			t.Errorf("workers=%d: PackSteal called %d times for %d grants", workers, r.packCalls.Load(), granted)
		}
	}
}

func TestNoStealing(t *testing.T) {
	r := &rangeRunner{}
	st := runRange(t, Config{Workers: 4, Stealing: false}, 5000, r)
	checkSum(t, r, 5000)
	if st.TotalSteals() != 0 {
		t.Fatalf("stealing disabled but %d steals happened", st.TotalSteals())
	}
}

func TestStealFromFrontAblation(t *testing.T) {
	r := &rangeRunner{spinWork: 20}
	st := runRange(t, Config{Workers: 4, Stealing: true, StealFromFront: true}, 10000, r)
	checkSum(t, r, 10000)
	_ = st
}

func TestUnevenSeeding(t *testing.T) {
	// All work starts on worker 0; others must obtain it by stealing.
	r := &rangeRunner{spinWork: 100}
	rt, err := New(Config{Workers: 8, Stealing: true, Seed: 7}, r)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	rt.Seed(0, rangeTask{0, n})
	done := make(chan Stats, 1)
	go func() { done <- rt.Run(nil) }()
	var st Stats
	select {
	case st = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("runtime did not terminate")
	}
	checkSum(t, r, n)
	if st.TotalSteals() == 0 {
		t.Error("no steals despite all work seeded on worker 0")
	}
}

func TestEmptyRun(t *testing.T) {
	r := &rangeRunner{}
	st := runRange(t, Config{Workers: 4, Stealing: true}, 0, r)
	if r.count.Load() != 0 {
		t.Fatal("processed tasks in empty run")
	}
	if st.TokenRounds < 1 {
		t.Error("empty run should still complete a token round")
	}
}

func TestBadConfig(t *testing.T) {
	if _, err := New[int](Config{Workers: 0}, nil); err == nil {
		t.Fatal("Workers=0 accepted")
	}
}

// blockRunner blocks inside Execute until released, to exercise Cancel.
type blockRunner struct {
	started chan struct{}
	release chan struct{}
}

func (b *blockRunner) Execute(w *Worker[rangeTask], t rangeTask) {
	b.started <- struct{}{}
	<-b.release
}
func (b *blockRunner) PackSteal(_ *Worker[rangeTask], t rangeTask) rangeTask { return t }

func TestCancel(t *testing.T) {
	br := &blockRunner{started: make(chan struct{}, 1), release: make(chan struct{})}
	rt, err := New(Config{Workers: 4, Stealing: true}, br)
	if err != nil {
		t.Fatal(err)
	}
	rt.Seed(0, rangeTask{0, 1})
	done := make(chan Stats, 1)
	go func() { done <- rt.Run(nil) }()
	<-br.started // worker 0 is now blocked in Execute
	rt.Cancel()
	close(br.release)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled runtime did not stop")
	}
	if !rt.Cancelled() {
		t.Fatal("Cancelled() false after Cancel")
	}
}

// TestContextCancel: cancelling the context passed to Run stops the
// runtime even when every worker is idle (no task ever polls anything).
func TestContextCancel(t *testing.T) {
	br := &blockRunner{started: make(chan struct{}, 1), release: make(chan struct{})}
	rt, err := New(Config{Workers: 4, Stealing: true}, br)
	if err != nil {
		t.Fatal(err)
	}
	rt.Seed(0, rangeTask{0, 1})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan Stats, 1)
	go func() { done <- rt.Run(ctx) }()
	<-br.started // worker 0 is now blocked in Execute
	cancel()
	close(br.release)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("context cancellation did not stop the runtime")
	}
	if !rt.Cancelled() {
		t.Fatal("Cancelled() false after ctx cancel")
	}
}

// TestQuickConservation: across random worker counts, seeds and stealing
// configurations, no task is ever lost or duplicated.
func TestQuickConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64, workersRaw uint8, stealing bool) bool {
		workers := 1 + int(workersRaw%8)
		r := &rangeRunner{spinWork: 10}
		rt, err := New(Config{Workers: workers, Stealing: stealing, Seed: seed}, r)
		if err != nil {
			return false
		}
		const n = 3000
		w := 0
		for lo := int64(0); lo < n; lo += 97 {
			hi := lo + 97
			if hi > n {
				hi = n
			}
			rt.Seed(w, rangeTask{lo, hi})
			w = (w + 1) % workers
		}
		rt.Run(nil)
		return r.sum.Load() == n*(n-1)/2 && r.count.Load() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRuntimeOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := &rangeRunner{}
		rt, _ := New(Config{Workers: 4, Stealing: true, Seed: 1}, r)
		rt.Seed(0, rangeTask{0, 4096})
		rt.Run(nil)
	}
}

func TestWorkerAccessors(t *testing.T) {
	r := &rangeRunner{}
	rt, err := New(Config{Workers: 2, Stealing: true}, r)
	if err != nil {
		t.Fatal(err)
	}
	w := rt.workers[0]
	if w.QueueLen() != 0 {
		t.Fatal("fresh worker deque not empty")
	}
	rt.Seed(0, rangeTask{0, 1})
	if w.QueueLen() != 1 {
		t.Fatalf("QueueLen = %d after Seed", w.QueueLen())
	}
	if w.Cancelled() {
		t.Fatal("Cancelled before Cancel")
	}
	rt.Cancel()
	if !w.Cancelled() {
		t.Fatal("Cancelled() false after Cancel")
	}
	rt.Run(nil) // drains nothing (cancelled); must return promptly
}

func TestTokenRoundsGrowWithIdleTime(t *testing.T) {
	// A run with work completes with at least one round; the counter is
	// monotonic and small for quick runs.
	r := &rangeRunner{}
	st := runRange(t, Config{Workers: 2, Stealing: true, Seed: 3}, 500, r)
	if st.TokenRounds < 1 {
		t.Fatalf("TokenRounds = %d", st.TokenRounds)
	}
	if st.Rejects < 0 {
		t.Fatal("negative rejects")
	}
}

func TestSenderInitiated(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		r := &rangeRunner{spinWork: 50}
		st := runRange(t, Config{Workers: workers, Stealing: true, SenderInitiated: true, Seed: int64(workers)}, 20000, r)
		checkSum(t, r, 20000)
		var granted int64
		for _, g := range st.StealsGranted {
			granted += g
		}
		if granted != st.TotalSteals() {
			t.Errorf("workers=%d: dealt %d != received %d", workers, granted, st.TotalSteals())
		}
	}
}

func TestSenderInitiatedUnevenSeeding(t *testing.T) {
	r := &rangeRunner{spinWork: 100}
	rt, err := New(Config{Workers: 8, Stealing: true, SenderInitiated: true, Seed: 7}, r)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	rt.Seed(0, rangeTask{0, n})
	done := make(chan Stats, 1)
	go func() { done <- rt.Run(nil) }()
	var st Stats
	select {
	case st = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("sender-initiated runtime did not terminate")
	}
	checkSum(t, r, n)
	if st.TotalSteals() == 0 {
		t.Error("no deals despite all work seeded on worker 0")
	}
}

// TestQuickSenderInitiatedConservation mirrors TestQuickConservation for
// the dealing mode — no lost or duplicated tasks under any configuration.
func TestQuickSenderInitiatedConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64, workersRaw uint8) bool {
		workers := 1 + int(workersRaw%8)
		r := &rangeRunner{spinWork: 10}
		rt, err := New(Config{Workers: workers, Stealing: true, SenderInitiated: true, Seed: seed}, r)
		if err != nil {
			return false
		}
		const n = 3000
		w := 0
		for lo := int64(0); lo < n; lo += 97 {
			hi := lo + 97
			if hi > n {
				hi = n
			}
			rt.Seed(w, rangeTask{lo, hi})
			w = (w + 1) % workers
		}
		rt.Run(nil)
		return r.sum.Load() == n*(n-1)/2 && r.count.Load() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
