// Package lad implements a LAD-style constraint-propagation subgraph
// enumeration engine, the third algorithm family the paper surveys
// (Kimmig et al. §2.2.1: "constraint propagation based" approaches,
// Solnon's LAD being the canonical example).
//
// Where RI keeps search-time checks minimal and accepts a larger search
// space, a CSP solver pays per-state propagation cost to cut the space
// harder: after each assignment the candidate domains of all unassigned
// pattern nodes are filtered — the assigned target node is removed
// everywhere (injectivity, "AllDifferent"), and the domains of the
// assigned node's pattern neighbors are intersected with the actual
// target neighborhood of the assigned image (arc consistency along every
// pattern edge incident to the assignment). A domain wipe-out triggers
// immediate backtracking.
//
// This implementation is deliberately faithful to that trade-off rather
// than to LAD's exact filtering schedule: it is the repository's
// representative of the "spend time to shrink space" end of the design
// spectrum, used as a baseline in the ablation benchmarks. It supports
// the same graph.Semantics axis as internal/ri and internal/vf2
// (non-induced subgraph isomorphism by default, induced and
// homomorphism on request), so all three engines cross-validate each
// other under every semantics.
package lad

import (
	"context"
	"time"

	"parsge/internal/bitset"
	"parsge/internal/domain"
	"parsge/internal/graph"
	"parsge/internal/order"
)

// Options configures an enumeration run.
type Options struct {
	// Limit stops after this many matches (0 = all).
	Limit int64
	// Visit is called per match with the mapping indexed by pattern
	// node id (reused slice; copy to retain). Returning false stops.
	Visit func(mapping []int32) bool
	// Ctx, when non-nil, cooperatively aborts the run soon after the
	// context is cancelled (polled every cancelCheckMask+1 states).
	Ctx context.Context
	// Index, when non-nil and built for the same target, narrows the
	// initial domain filter to label buckets and supplies precomputed
	// NLF signatures (see domain.Index).
	Index *domain.Index
	// SkipNLF / SkipInducedAC disable the corresponding preprocessing
	// filters (ablation and differential testing); see domain.Options.
	SkipNLF       bool
	SkipInducedAC bool
	// ACPasses caps the arc-consistency sweeps of domain preprocessing
	// (0 = fixpoint); see domain.Options.ACPasses.
	ACPasses int
	// Schedule selects the preprocessing filter plan: the zero value,
	// domain.ScheduleAuto, adapts the filters to the target's statistics
	// (see domain.AutoTune); domain.ScheduleFixed runs the full fixed
	// pipeline. The resolved plan is reported in Result.PreprocStats.
	Schedule domain.Schedule
	// Kernel selects the candidate-intersection implementation of the
	// per-state propagation: under the bitset kernel the neighborhood
	// intersections and induced subtractions are word-parallel row ops
	// on graph.BitGraph instead of per-neighbor bit edits. The zero
	// value, domain.KernelAuto, picks by target size.
	Kernel domain.Kernel
	// Semantics selects the matching semantics (zero value: normalized
	// to non-induced subgraph isomorphism). Under graph.Homomorphism
	// the AllDifferent propagation is skipped (no injectivity); under
	// graph.InducedIso the propagation additionally removes the images'
	// neighborhoods from the domains of pattern non-neighbors.
	Semantics graph.Semantics
}

// Result reports an enumeration run.
type Result struct {
	Matches int64
	// States counts assignments attempted (search tree nodes).
	States int64
	// Propagations counts domain-filter passes — the extra work this
	// algorithm family invests per state.
	Propagations int64
	PreprocTime  time.Duration
	// PreprocStats reports the resolved filter plan and per-filter
	// timings of domain preprocessing.
	PreprocStats *domain.ComputeStats
	MatchTime    time.Duration
	Aborted      bool
	// Unsatisfiable is set when initial domains prove zero matches.
	Unsatisfiable bool
}

// TotalTime returns preprocessing plus match time.
func (r Result) TotalTime() time.Duration { return r.PreprocTime + r.MatchTime }

const cancelCheckMask = 0xFF

// solver carries the DFS state. Domains are saved by copy per depth —
// simple and adequate for a baseline (LAD itself uses smarter trailing).
type solver struct {
	gp, gt    *graph.Graph
	ord       *order.Ordering
	opts      Options
	injective bool
	induced   bool
	// rows are the target's bitset adjacency rows under the bitset
	// kernel (nil otherwise); propagation uses them for word-parallel
	// neighborhood intersection and induced subtraction.
	rows *graph.BitGraph
	// scratch is the reusable target-sized set filterNeighbors builds
	// label-compatible neighborhoods in on the slice path.
	scratch *bitset.Set

	// domains[d] is the domain vector valid at depth d (one bitset per
	// pattern node). domains[0] comes from preprocessing; deeper levels
	// are copies refined by propagation.
	domains [][]*bitset.Set
	mapped  []int32 // ordering position → target
	nodeMap []int32 // pattern node → target, for Visit

	matches      int64
	states       int64
	propagations int64
	done         <-chan struct{}
	stopped      bool
	aborted      bool
}

// Enumerate lists all labeled embeddings of gp in gt under the
// configured semantics using constraint propagation.
func Enumerate(gp, gt *graph.Graph, opts Options) Result {
	start := time.Now()
	res := Result{}
	opts.Semantics = opts.Semantics.Norm()

	gp = gp.Simplify() // duplicate pattern edges would poison degree pruning
	dopts := domain.Options{
		Index:         opts.Index,
		ACPasses:      opts.ACPasses,
		SkipNLF:       opts.SkipNLF,
		SkipInducedAC: opts.SkipInducedAC,
		Kernel:        opts.Kernel,
		Semantics:     opts.Semantics,
	}
	if opts.Schedule == domain.ScheduleAuto {
		dopts = domain.AutoTune(dopts, gp, gt)
	}
	doms, dstats := domain.ComputeWithStats(gp, gt, dopts)
	res.PreprocStats = &dstats
	if doms.AnyEmpty() {
		res.Unsatisfiable = true
		res.PreprocTime = time.Since(start)
		return res
	}
	ord, err := order.Compute(gp, order.Options{DomainSizes: doms.Sizes(), DomainTieBreak: true})
	if err != nil {
		// Options above are always valid for a computed domain set.
		panic(err)
	}
	res.PreprocTime = time.Since(start)

	n := gp.NumNodes()
	// Homomorphic images may coincide, so only injective semantics rule
	// out patterns larger than the target.
	if n == 0 || (opts.Semantics.Injective() && n > gt.NumNodes()) {
		return res
	}

	if opts.Ctx != nil && opts.Ctx.Err() != nil {
		res.Aborted = true
		return res
	}
	s := &solver{
		gp:        gp,
		gt:        gt,
		ord:       ord,
		opts:      opts,
		injective: opts.Semantics.Injective(),
		induced:   opts.Semantics.Induced(),
		rows:      dstats.Rows,
		scratch:   bitset.New(gt.NumNodes()),
		domains:   make([][]*bitset.Set, n+1),
		mapped:    make([]int32, n),
		nodeMap:   make([]int32, n),
	}
	if s.rows == nil && domain.ResolveKernel(opts.Kernel, gt.NumNodes()) == domain.KernelBitset {
		if opts.Index != nil && opts.Index.NumNodes() == gt.NumNodes() {
			s.rows = opts.Index.Rows(gt)
		} else {
			s.rows = graph.NewBitGraph(gt)
		}
	}
	if opts.Ctx != nil {
		s.done = opts.Ctx.Done()
	}
	// Depth 0 domains alias the preprocessed ones; deeper levels are
	// allocated lazily as refined copies.
	level0 := make([]*bitset.Set, n)
	for v := int32(0); v < int32(n); v++ {
		level0[v] = doms.Of(v)
	}
	s.domains[0] = level0

	matchStart := time.Now()
	s.search(0)
	res.MatchTime = time.Since(matchStart)
	res.Matches = s.matches
	res.States = s.states
	res.Propagations = s.propagations
	res.Aborted = s.aborted
	return res
}

// search assigns the pattern node at ordering position pos.
func (s *solver) search(pos int) {
	if pos == len(s.ord.Seq) {
		s.emit()
		return
	}
	u := s.ord.Seq[pos]
	dom := s.domains[pos][u]
	dom.ForEach(func(vti int) bool {
		vt := int32(vti)
		s.states++
		if s.states&cancelCheckMask == 0 && s.done != nil {
			select {
			case <-s.done:
				s.aborted = true
				s.stopped = true
				return false
			default:
			}
		}
		if !s.selfLoopsOK(u, vt) {
			return true
		}
		s.mapped[pos] = vt
		if s.propagate(pos, u, vt) {
			s.search(pos + 1)
		}
		return !s.stopped
	})
}

// selfLoopsOK verifies self-loop labels, which domains do not encode:
// pattern self-loops need a label-compatible target self-loop, and under
// induced semantics a target self-loop is forbidden when the pattern
// node has none.
func (s *solver) selfLoopsOK(u, vt int32) bool {
	adj := s.gp.OutNeighbors(u)
	labs := s.gp.OutEdgeLabels(u)
	hasLoop := false
	for i, w := range adj {
		if w == u {
			hasLoop = true
			if !s.gt.HasEdgeLabeled(vt, vt, labs[i]) {
				return false
			}
		}
	}
	if s.induced && !hasLoop && s.gt.HasEdge(vt, vt) {
		return false
	}
	return true
}

// propagate refines the next level's domains after assigning u→vt at
// position pos. It returns false on a wipe-out (some unassigned domain
// became empty), in which case the branch is pruned.
func (s *solver) propagate(pos int, u, vt int32) bool {
	s.propagations++
	n := s.gp.NumNodes()
	cur := s.domains[pos]
	next := s.domains[pos+1]
	if next == nil {
		next = make([]*bitset.Set, n)
		for i := range next {
			next[i] = bitset.New(s.gt.NumNodes())
		}
		s.domains[pos+1] = next
	}

	// Start from the parent level, then remove the assigned target from
	// every other domain (AllDifferent/forward checking) — injective
	// semantics only: homomorphic images may coincide.
	for v := int32(0); v < int32(n); v++ {
		next[v].Copy(cur[v])
	}
	assignedPos := s.ord.Pos
	if s.injective {
		for v := int32(0); v < int32(n); v++ {
			if assignedPos[v] <= int32(pos) {
				continue // already assigned (including u itself)
			}
			next[v].Clear(int(vt))
		}
	}
	// Pin u's domain to the chosen value so later propagation through u
	// stays exact.
	next[u].ClearAll()
	next[u].Set(int(vt))

	// Induced semantics: a pattern non-edge between u and an unassigned
	// w forbids the corresponding target edge, per direction — so w's
	// domain must exclude the matching neighborhood of vt.
	if s.induced {
		for w := int32(0); w < int32(n); w++ {
			if w == u || assignedPos[w] <= int32(pos) {
				continue
			}
			if !s.gp.HasEdge(u, w) {
				if s.rows != nil {
					next[w].AndNot(s.rows.Out[vt])
				} else {
					for _, wt := range s.gt.OutNeighbors(vt) {
						next[w].Clear(int(wt))
					}
				}
			}
			if !s.gp.HasEdge(w, u) {
				if s.rows != nil {
					next[w].AndNot(s.rows.In[vt])
				} else {
					for _, wt := range s.gt.InNeighbors(vt) {
						next[w].Clear(int(wt))
					}
				}
			}
		}
	}

	// Arc consistency along every pattern edge incident to u: unassigned
	// out-neighbors must lie in vt's out-neighborhood with a matching
	// edge label; symmetrically for in-neighbors.
	var outLabRows, inLabRows map[graph.Label][]*bitset.Set
	if s.rows != nil && s.rows.HasLabelRows() {
		outLabRows, inLabRows = s.rows.OutLab, s.rows.InLab
	}
	if !s.filterNeighbors(next, pos, vt, s.gp.OutNeighbors(u), s.gp.OutEdgeLabels(u), s.gt.OutNeighbors(vt), s.gt.OutEdgeLabels(vt), outLabRows) {
		return false
	}
	if !s.filterNeighbors(next, pos, vt, s.gp.InNeighbors(u), s.gp.InEdgeLabels(u), s.gt.InNeighbors(vt), s.gt.InEdgeLabels(vt), inLabRows) {
		return false
	}
	// Wipe-out check over all unassigned domains.
	for v := int32(0); v < int32(n); v++ {
		if assignedPos[v] > int32(pos) && next[v].Empty() {
			return false
		}
	}
	return true
}

// filterNeighbors intersects the domains of u's unassigned pattern
// neighbors with the edge-label-compatible neighborhood of vt. Under the
// bitset kernel's label rows (labRows non-nil) the compatible
// neighborhood is a precomputed row and the intersection is a single
// And; otherwise it is built per edge label in the solver's reusable
// scratch set.
func (s *solver) filterNeighbors(next []*bitset.Set, pos int, vt int32, pAdj []int32, pLabs []graph.Label,
	tAdj []int32, tLabs []graph.Label, labRows map[graph.Label][]*bitset.Set) bool {

	for i, w := range pAdj {
		if s.ord.Pos[w] <= int32(pos) {
			// Already assigned: consistency was enforced when w was
			// assigned (w's domain was a singleton at its level) or
			// will fail immediately through the pinned domain.
			continue
		}
		want := pLabs[i]
		if labRows != nil {
			rows := labRows[want]
			if rows == nil {
				// Label absent from the target alphabet: the compatible
				// neighborhood is empty, wiping out w's domain.
				return false
			}
			next[w].And(rows[vt])
			if next[w].Empty() {
				return false
			}
			continue
		}
		s.scratch.ClearAll()
		for k, wt := range tAdj {
			if tLabs[k] == want {
				s.scratch.Set(int(wt))
			}
		}
		next[w].And(s.scratch)
		if next[w].Empty() {
			return false
		}
	}
	return true
}

// emit records a match.
func (s *solver) emit() {
	s.matches++
	if s.opts.Visit != nil {
		for i, vt := range s.mapped {
			s.nodeMap[s.ord.Seq[i]] = vt
		}
		if !s.opts.Visit(s.nodeMap) {
			// Visit stop = abort (truncated result); limit stop is not.
			s.stopped = true
			s.aborted = true
			return
		}
	}
	if s.opts.Limit > 0 && s.matches >= s.opts.Limit {
		s.stopped = true
	}
}
