package lad

import (
	"context"
	"testing"
	"testing/quick"

	"parsge/internal/graph"
	"parsge/internal/ri"
	"parsge/internal/testutil"
)

func TestTriangle(t *testing.T) {
	b := &graph.Builder{}
	b.AddNodes(3)
	b.AddEdge(0, 1, 0)
	b.AddEdge(1, 2, 0)
	b.AddEdge(2, 0, 0)
	g := b.MustBuild()
	res := Enumerate(g, g, Options{})
	if res.Matches != 3 {
		t.Fatalf("triangle self-match = %d, want 3", res.Matches)
	}
	if res.Propagations == 0 {
		t.Error("no propagation recorded")
	}
}

func TestEmptyAndOversized(t *testing.T) {
	small := &graph.Builder{}
	small.AddNodes(2)
	small.AddEdge(0, 1, 0)
	gt := small.MustBuild()
	if res := Enumerate((&graph.Builder{}).MustBuild(), gt, Options{}); res.Matches != 0 {
		t.Error("empty pattern matched")
	}
	big := &graph.Builder{}
	big.AddNodes(5)
	big.AddEdgeBoth(0, 1, 0)
	if res := Enumerate(big.MustBuild(), gt, Options{}); res.Matches != 0 {
		t.Error("oversized pattern matched")
	}
}

func TestUnsatisfiableDomains(t *testing.T) {
	bp := &graph.Builder{}
	bp.AddNode(5)
	bt := &graph.Builder{}
	bt.AddNode(6)
	res := Enumerate(bp.MustBuild(), bt.MustBuild(), Options{})
	if !res.Unsatisfiable || res.Matches != 0 || res.States != 0 {
		t.Fatalf("label mismatch should be unsat without search: %+v", res)
	}
}

func TestSelfLoops(t *testing.T) {
	bp := &graph.Builder{}
	bp.AddNodes(1)
	bp.AddEdge(0, 0, 7)
	gp := bp.MustBuild()
	bt := &graph.Builder{}
	bt.AddNodes(3)
	bt.AddEdge(0, 0, 7)
	bt.AddEdge(1, 1, 8)
	gt := bt.MustBuild()
	if res := Enumerate(gp, gt, Options{}); res.Matches != 1 {
		t.Fatalf("self-loop matches = %d, want 1", res.Matches)
	}
}

func TestLimitVisitCancel(t *testing.T) {
	bp := &graph.Builder{}
	bp.AddNodes(1)
	gp := bp.MustBuild()
	bt := &graph.Builder{}
	bt.AddNodes(10)
	gt := bt.MustBuild()

	if res := Enumerate(gp, gt, Options{Limit: 4}); res.Matches != 4 {
		t.Fatalf("limit ignored: %d", res.Matches)
	}
	calls := 0
	res := Enumerate(gp, gt, Options{Visit: func(m []int32) bool {
		calls++
		return calls < 3
	}})
	if calls != 3 || res.Matches != 3 {
		t.Fatalf("visit stop wrong: %d/%d", calls, res.Matches)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	bigT := &graph.Builder{}
	bigT.AddNodes(4000)
	resC := Enumerate(gp, bigT.MustBuild(), Options{Ctx: ctx})
	if !resC.Aborted {
		t.Error("pre-cancelled context did not abort")
	}
}

func TestVisitMappingsValid(t *testing.T) {
	gp, gt := testutil.RandomInstance(5, testutil.InstanceOptions{
		TargetNodes: 12, TargetEdges: 40, PatternNodes: 4, Extract: true,
	})
	count := 0
	Enumerate(gp, gt, Options{Visit: func(m []int32) bool {
		count++
		used := map[int32]bool{}
		for _, vt := range m {
			if used[vt] {
				t.Fatal("non-injective mapping")
			}
			used[vt] = true
		}
		for _, e := range gp.Edges() {
			if !gt.HasEdgeLabeled(m[e.From], m[e.To], e.Label) {
				t.Fatalf("mapping %v misses edge %v", m, e)
			}
		}
		return true
	}})
	if count == 0 {
		t.Fatal("extracted instance had no matches")
	}
}

// TestQuickAgreesWithBruteForce is the definitional cross-validation.
func TestQuickAgreesWithBruteForce(t *testing.T) {
	f := func(seed int64, extract bool) bool {
		gp, gt := testutil.RandomInstance(seed, testutil.InstanceOptions{
			TargetNodes:  10,
			TargetEdges:  34,
			PatternNodes: 4,
			Extract:      extract,
		})
		return Enumerate(gp, gt, Options{}).Matches == testutil.BruteCount(gp, gt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAgreesWithRIOnNasty covers parallel edges and self-loops.
func TestQuickAgreesWithRIOnNasty(t *testing.T) {
	f := func(seed int64) bool {
		gp, gt := testutil.RandomInstance(seed, testutil.InstanceOptions{
			TargetNodes:  9,
			TargetEdges:  40,
			PatternNodes: 3,
			Nasty:        true,
		})
		want, err := ri.Enumerate(gp, gt, ri.Options{Variant: ri.VariantRIDSSIFC}, ri.RunOptions{})
		if err != nil {
			return false
		}
		return Enumerate(gp, gt, Options{}).Matches == want.Matches
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSearchSpaceNotLargerThanRIDS: propagation must explore at most as
// many assignments as RI-DS explores states on extracted instances.
func TestSearchSpaceProfile(t *testing.T) {
	gp, gt := testutil.RandomInstance(17, testutil.InstanceOptions{
		TargetNodes: 40, TargetEdges: 240, PatternNodes: 5, Extract: true,
	})
	ladRes := Enumerate(gp, gt, Options{})
	riRes, err := ri.Enumerate(gp, gt, ri.Options{Variant: ri.VariantRIDS}, ri.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ladRes.Matches != riRes.Matches {
		t.Fatalf("LAD %d matches vs RI-DS %d", ladRes.Matches, riRes.Matches)
	}
	t.Logf("states: LAD=%d (props=%d) RI-DS=%d", ladRes.States, ladRes.Propagations, riRes.States)
}

func BenchmarkLAD(b *testing.B) {
	gp, gt := testutil.RandomInstance(11, testutil.InstanceOptions{
		TargetNodes: 60, TargetEdges: 400, PatternNodes: 6, Extract: true,
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Enumerate(gp, gt, Options{})
	}
}

// TestSemanticsAgainstOracle validates the propagation engine under
// every matching semantics directly at the package level: the induced
// non-edge filtering and the homomorphism AllDifferent skip must both
// agree with the brute-force oracle.
func TestSemanticsAgainstOracle(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		gp, gt := testutil.RandomInstance(seed, testutil.InstanceOptions{
			TargetNodes: 8, TargetEdges: 20, PatternNodes: 4, Nasty: seed%2 == 1,
		})
		for _, sem := range []graph.Semantics{graph.SubgraphIso, graph.InducedIso, graph.Homomorphism} {
			want := testutil.BruteCountSem(gp, gt, sem)
			res := Enumerate(gp, gt, Options{Semantics: sem})
			if res.Matches != want {
				t.Errorf("seed %d under %v: LAD = %d, oracle = %d", seed, sem, res.Matches, want)
			}
		}
	}
}

// TestInducedSelfLoopRejected: a looped target node is not an induced
// image of a loop-free pattern node, even when degrees allow it.
func TestInducedSelfLoopRejected(t *testing.T) {
	bp := &graph.Builder{}
	bp.AddNodes(1)
	gp := bp.MustBuild()
	bt := &graph.Builder{}
	bt.AddNodes(2)
	bt.AddEdge(1, 1, 0)
	gt := bt.MustBuild()
	if res := Enumerate(gp, gt, Options{Semantics: graph.InducedIso}); res.Matches != 1 {
		t.Fatalf("induced single-node matches = %d, want 1 (only the loop-free node)", res.Matches)
	}
	if res := Enumerate(gp, gt, Options{}); res.Matches != 2 {
		t.Fatalf("non-induced single-node matches = %d, want 2", res.Matches)
	}
}
