// Package deque implements the private double-ended queue at the heart of
// the work-stealing strategy of Acar, Charguéraud and Rainey (PPoPP 2013)
// that the paper adopts (Kimmig et al. §3.2).
//
// The deque is deliberately unsynchronized: each worker owns one and is
// the only goroutine that ever touches it. The owner pushes and pops at
// the front in depth-first order; when another worker's steal request is
// serviced, the *owner* pops from the back on the thief's behalf and
// hands the task over through a transfer cell. Tasks near the back are
// closer to the root of the search space tree and therefore expected to
// be long-running, which keeps the number of steals low (§3.2(ii)).
package deque

// Deque is a growable ring-buffer double-ended queue. The zero value is
// an empty deque ready for use. It is NOT safe for concurrent use; see
// the package comment for the ownership discipline.
type Deque[T any] struct {
	buf   []T
	head  int // index of front element, valid when size > 0
	size  int
	zeroT T
}

// Len returns the number of elements.
func (d *Deque[T]) Len() int { return d.size }

// Empty reports whether the deque holds no elements.
func (d *Deque[T]) Empty() bool { return d.size == 0 }

// grow doubles capacity, re-linearizing the ring.
func (d *Deque[T]) grow() {
	newCap := 2 * len(d.buf)
	if newCap == 0 {
		newCap = 8
	}
	buf := make([]T, newCap)
	for i := 0; i < d.size; i++ {
		buf[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf = buf
	d.head = 0
}

// PushFront adds x at the front (the owner's DFS end).
func (d *Deque[T]) PushFront(x T) {
	if d.size == len(d.buf) {
		d.grow()
	}
	d.head = (d.head - 1 + len(d.buf)) % len(d.buf)
	d.buf[d.head] = x
	d.size++
}

// PushBack adds x at the back. The engines use it for the initial work
// distribution (§3.3), which deals root-level tasks to the back so that
// the owner still works depth-first from the front.
func (d *Deque[T]) PushBack(x T) {
	if d.size == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.size)%len(d.buf)] = x
	d.size++
}

// PopFront removes and returns the front element. ok is false when the
// deque is empty.
func (d *Deque[T]) PopFront() (x T, ok bool) {
	if d.size == 0 {
		return d.zeroT, false
	}
	x = d.buf[d.head]
	d.buf[d.head] = d.zeroT // release references for the GC
	d.head = (d.head + 1) % len(d.buf)
	d.size--
	return x, true
}

// PopBack removes and returns the back element (the steal end). ok is
// false when the deque is empty.
func (d *Deque[T]) PopBack() (x T, ok bool) {
	if d.size == 0 {
		return d.zeroT, false
	}
	i := (d.head + d.size - 1) % len(d.buf)
	x = d.buf[i]
	d.buf[i] = d.zeroT
	d.size--
	return x, true
}

// Front returns the front element without removing it.
func (d *Deque[T]) Front() (x T, ok bool) {
	if d.size == 0 {
		return d.zeroT, false
	}
	return d.buf[d.head], true
}

// Back returns the back element without removing it.
func (d *Deque[T]) Back() (x T, ok bool) {
	if d.size == 0 {
		return d.zeroT, false
	}
	return d.buf[(d.head+d.size-1)%len(d.buf)], true
}

// Clear removes all elements, keeping capacity.
func (d *Deque[T]) Clear() {
	for i := 0; i < d.size; i++ {
		d.buf[(d.head+i)%len(d.buf)] = d.zeroT
	}
	d.head = 0
	d.size = 0
}
