package deque

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroValueEmpty(t *testing.T) {
	var d Deque[int]
	if !d.Empty() || d.Len() != 0 {
		t.Fatal("zero deque not empty")
	}
	if _, ok := d.PopFront(); ok {
		t.Fatal("PopFront on empty returned ok")
	}
	if _, ok := d.PopBack(); ok {
		t.Fatal("PopBack on empty returned ok")
	}
	if _, ok := d.Front(); ok {
		t.Fatal("Front on empty returned ok")
	}
	if _, ok := d.Back(); ok {
		t.Fatal("Back on empty returned ok")
	}
}

func TestLIFOFront(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 100; i++ {
		d.PushFront(i)
	}
	for i := 99; i >= 0; i-- {
		x, ok := d.PopFront()
		if !ok || x != i {
			t.Fatalf("PopFront = %d,%v want %d", x, ok, i)
		}
	}
}

func TestFIFOAcrossEnds(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 50; i++ {
		d.PushFront(i)
	}
	// Popping from the back yields the oldest pushes first.
	for i := 0; i < 50; i++ {
		x, ok := d.PopBack()
		if !ok || x != i {
			t.Fatalf("PopBack = %d,%v want %d", x, ok, i)
		}
	}
}

func TestPushBack(t *testing.T) {
	var d Deque[string]
	d.PushBack("a")
	d.PushBack("b")
	d.PushFront("z")
	if x, _ := d.Front(); x != "z" {
		t.Fatalf("Front = %q", x)
	}
	if x, _ := d.Back(); x != "b" {
		t.Fatalf("Back = %q", x)
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestClear(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 10; i++ {
		d.PushFront(i)
	}
	d.Clear()
	if !d.Empty() {
		t.Fatal("deque not empty after Clear")
	}
	d.PushFront(7)
	if x, _ := d.PopBack(); x != 7 {
		t.Fatal("deque unusable after Clear")
	}
}

func TestGrowthPreservesOrder(t *testing.T) {
	var d Deque[int]
	// Interleave to exercise ring wrap-around across several growths.
	for i := 0; i < 1000; i++ {
		if i%3 == 0 {
			d.PushBack(i)
		} else {
			d.PushFront(i)
		}
		if i%5 == 4 {
			d.PopBack()
		}
	}
	// Drain and verify count only; order is checked by the model test.
	n := d.Len()
	got := 0
	for {
		if _, ok := d.PopFront(); !ok {
			break
		}
		got++
	}
	if got != n {
		t.Fatalf("drained %d items, Len said %d", got, n)
	}
}

// TestQuickMatchesSliceModel drives the deque and a plain-slice reference
// implementation with the same random operations and compares behavior.
func TestQuickMatchesSliceModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var d Deque[int]
		var model []int
		for op := 0; op < 500; op++ {
			switch rng.Intn(5) {
			case 0, 1: // PushFront
				v := rng.Int()
				d.PushFront(v)
				model = append([]int{v}, model...)
			case 2: // PushBack
				v := rng.Int()
				d.PushBack(v)
				model = append(model, v)
			case 3: // PopFront
				x, ok := d.PopFront()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if x != model[0] {
						return false
					}
					model = model[1:]
				}
			case 4: // PopBack
				x, ok := d.PopBack()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if x != model[len(model)-1] {
						return false
					}
					model = model[:len(model)-1]
				}
			}
			if d.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPushPopFront(b *testing.B) {
	var d Deque[int]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.PushFront(i)
		if i%2 == 1 {
			d.PopFront()
			d.PopFront()
		}
	}
}
