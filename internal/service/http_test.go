package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"parsge"
	"parsge/internal/graph"
	"parsge/internal/graphio"
	"parsge/internal/testutil"
)

// identityTable pre-interns the decimal spellings of programmatic
// numeric labels ("1" → 1, ...), the same convention cmd/sgeserve uses
// for -collection targets, so patterns serialized with Spell intern back
// to the ids the target carries.
func identityTable(gt *graph.Graph) *graphio.LabelTable {
	table := graphio.NewLabelTable()
	for l := 1; l <= int(gt.MaxNodeLabel()); l++ {
		table.Intern(strconv.Itoa(l))
	}
	return table
}

func patternText(t *testing.T, gp *graph.Graph, table *graphio.LabelTable) string {
	t.Helper()
	var buf bytes.Buffer
	if err := graphio.Write(&buf, "p", gp, table); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func postQuery(t *testing.T, url string, body map[string]any) (*http.Response, error) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	return http.Post(url+"/query", "application/json", bytes.NewReader(b))
}

// TestHTTPEndpoints: the full client journey over real HTTP — counts,
// mappings, streams, health and stats — held to the brute-force oracle.
func TestHTTPEndpoints(t *testing.T) {
	w := buildSoakWorld(t, 55)
	svc, err := New(Config{Target: w.tgt})
	if err != nil {
		t.Fatal(err)
	}
	table := identityTable(w.gt)
	handler := NewServer(svc, table)
	ts := httptest.NewServer(handler)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp.Status)
	}
	resp.Body.Close()

	for pi, gp := range w.patterns {
		text := patternText(t, gp, table)
		for _, sem := range []string{"iso", "induced", "hom"} {
			want := w.oracle[pi][map[string]parsge.Semantics{
				"iso": parsge.SubgraphIso, "induced": parsge.InducedIso, "hom": parsge.Homomorphism,
			}[sem]]
			resp, err := postQuery(t, ts.URL, map[string]any{"pattern": text, "semantics": sem})
			if err != nil {
				t.Fatal(err)
			}
			var rec struct {
				Matches  int64  `json:"matches"`
				CacheHit bool   `json:"cache_hit"`
				Plan     string `json:"plan"`
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("pattern %d %s: %s", pi, sem, resp.Status)
			}
			if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if rec.Matches != want {
				t.Fatalf("pattern %d %s: HTTP count %d, oracle %d", pi, sem, rec.Matches, want)
			}
		}
	}

	// Mappings round trip: every mapping valid against the target.
	gp := w.patterns[0]
	want := w.oracle[0][parsge.SubgraphIso]
	resp, err = postQuery(t, ts.URL, map[string]any{"pattern": patternText(t, gp, table), "mappings": true})
	if err != nil {
		t.Fatal(err)
	}
	var mrec struct {
		Matches  int64     `json:"matches"`
		Mappings [][]int32 `json:"mappings"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&mrec); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if int64(len(mrec.Mappings)) != want {
		t.Fatalf("mappings: got %d, oracle %d", len(mrec.Mappings), want)
	}
	for _, m := range mrec.Mappings {
		verifyMapping(t, gp, w.gt, m, parsge.SubgraphIso)
	}

	// Stream round trip: NDJSON lines then a terminal record.
	resp, err = postQuery(t, ts.URL, map[string]any{"pattern": patternText(t, gp, table), "stream": true})
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	var streamed int64
	sawDone := false
	for sc.Scan() {
		var line struct {
			Mapping []int32 `json:"mapping"`
			Done    bool    `json:"done"`
			Matches int64   `json:"matches"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		if line.Done {
			sawDone = true
			if line.Matches != want || streamed != want {
				t.Fatalf("stream: %d lines, terminal %d, oracle %d", streamed, line.Matches, want)
			}
			break
		}
		verifyMapping(t, gp, w.gt, line.Mapping, parsge.SubgraphIso)
		streamed++
	}
	resp.Body.Close()
	if !sawDone {
		t.Fatal("stream ended without terminal record")
	}

	// Stats: the histogram is populated and queries were counted. The
	// soak target is sparse, so Auto resolves to plain RI (no plan, by
	// design); one explicit domain-variant query guarantees a planned
	// execution for the histogram to show.
	resp, err = postQuery(t, ts.URL, map[string]any{"pattern": patternText(t, gp, table), "algorithm": "ridssifc", "semantics": "induced"})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Queries == 0 || len(st.Session.Plans.Buckets) == 0 {
		t.Fatalf("stats empty after traffic: %+v", st)
	}

	// Bad inputs are 400s.
	for name, body := range map[string]map[string]any{
		"no pattern":    {"pattern": ""},
		"bad semantics": {"pattern": patternText(t, gp, table), "semantics": "quantum"},
		"bad algorithm": {"pattern": patternText(t, gp, table), "algorithm": "bogo"},
	} {
		resp, err := postQuery(t, ts.URL, body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %s, want 400", name, resp.Status)
		}
		resp.Body.Close()
	}

	// Draining: health 503, queries refused.
	handler.StartDrain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: %v %v", err, resp.Status)
	}
	resp.Body.Close()
	resp, err = postQuery(t, ts.URL, map[string]any{"pattern": patternText(t, gp, table)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining query: status %s, want 503", resp.Status)
	}
	resp.Body.Close()
}

// TestHTTPOverloadStatus: admission failures map to retryable statuses
// (503 shed / 504 queue timeout), not client errors.
func TestHTTPOverloadStatus(t *testing.T) {
	svc, gp := blockingWorld(t, Config{
		Workers:      1,
		MaxQueue:     1,
		QueueTimeout: 300 * time.Millisecond,
		Classify:     func(*parsge.Graph, parsge.Options) bool { return false },
	})
	table := graphio.NewLabelTable()
	ts := httptest.NewServer(NewServer(svc, table))
	defer ts.Close()
	text := patternText(t, gp, table)

	// Hold the only token with an undrained stream.
	sctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	matches, end, err := svc.Stream(sctx, Query{Pattern: gp, Options: parsge.Options{Semantics: parsge.Homomorphism}})
	if err != nil {
		t.Fatal(err)
	}
	<-matches

	// Occupy the queue slot with a second HTTP query (will 504)...
	q2 := make(chan int, 1)
	go func() {
		resp, err := postQuery(t, ts.URL, map[string]any{"pattern": text, "semantics": "iso"})
		if err != nil {
			q2 <- 0
			return
		}
		resp.Body.Close()
		q2 <- resp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second query never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// ...so the third is shed with 503.
	resp, err := postQuery(t, ts.URL, map[string]any{"pattern": text, "semantics": "induced"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("shed query: status %s, want 503", resp.Status)
	}
	resp.Body.Close()
	if code := <-q2; code != http.StatusGatewayTimeout {
		t.Errorf("queued query: status %d, want 504", code)
	}
	cancel()
	for range matches {
	}
	<-end
}

// TestHTTPClientDisconnectTeardown is the satellite regression test: a
// client that walks away mid-stream must tear the enumeration down
// promptly — admission tokens released, no goroutine left behind
// (goleak-style before/after counting) — through nothing but its
// connection dropping.
func TestHTTPClientDisconnectTeardown(t *testing.T) {
	svc, gp := blockingWorld(t, Config{Workers: 2})
	table := graphio.NewLabelTable()
	ts := httptest.NewServer(NewServer(svc, table))
	defer ts.Close()
	text := patternText(t, gp, table)

	runtime.GC()
	baseline := runtime.NumGoroutine()

	for i := 0; i < 8; i++ {
		body, _ := json.Marshal(map[string]any{"pattern": text, "semantics": "hom", "stream": true})
		req, err := http.NewRequest("POST", ts.URL+"/query", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		// Read one line — proof the enumeration is producing — then
		// hang up without draining the thousands still pending.
		br := bufio.NewReader(resp.Body)
		line, err := br.ReadString('\n')
		if err != nil || !strings.Contains(line, "mapping") {
			t.Fatalf("iteration %d: first stream line: %q, %v", i, line, err)
		}
		resp.Body.Close() // the disconnect
	}

	// Teardown must be prompt: tokens drain to zero and the goroutine
	// count returns to (about) the baseline. The slack absorbs netpoll
	// and keep-alive goroutines owned by the HTTP stack, not by us.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		st := svc.Stats()
		if st.TokensInUse == 0 && runtime.NumGoroutine() <= baseline+4 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("leak after disconnects: tokens=%d goroutines=%d (baseline %d)\n%s",
				st.TokensInUse, runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := svc.Stats(); st.Queries != 8 {
		t.Errorf("Queries = %d, want 8", st.Queries)
	}
	// The service itself must still be fully functional.
	r, err := svc.Count(context.Background(), Query{Pattern: gp, Options: parsge.Options{Semantics: parsge.SubgraphIso}})
	if err != nil || r.Result.Matches == 0 {
		t.Fatalf("service wedged after disconnects: %v %+v", err, r.Result)
	}
}

// TestHTTPRouterEndpoints: the multi-target HTTP tree — per-target
// query and census, the update endpoint advancing the epoch and
// invalidating caches, unknown-target 404s, and the router /stats
// listing.
func TestHTTPRouterEndpoints(t *testing.T) {
	wa := buildSoakWorld(t, 61)
	wb := buildSoakWorld(t, 62)
	r := NewRouter(RouterConfig{Workers: 4})
	if err := r.AddTargetSession("alpha", wa.tgt); err != nil {
		t.Fatal(err)
	}
	if err := r.AddTargetSession("beta", wb.tgt); err != nil {
		t.Fatal(err)
	}
	defer r.Close(context.Background())
	table := identityTable(wa.gt)
	for l := 1; l <= int(wb.gt.MaxNodeLabel()); l++ {
		table.Intern(strconv.Itoa(l))
	}
	srv := httptest.NewServer(NewRouterServer(r, table))
	defer srv.Close()

	post := func(path string, body map[string]any) (*http.Response, map[string]any) {
		t.Helper()
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		return resp, out
	}

	// Per-target counts match each target's own oracle.
	pa := patternText(t, wa.patterns[0], table)
	pb := patternText(t, wb.patterns[0], table)
	resp, out := post("/targets/alpha/query", map[string]any{"pattern": pa, "semantics": "iso"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alpha query: %d %v", resp.StatusCode, out)
	}
	if int64(out["matches"].(float64)) != wa.oracle[0][parsge.SubgraphIso] {
		t.Fatalf("alpha matches %v, oracle %d", out["matches"], wa.oracle[0][parsge.SubgraphIso])
	}
	if out["epoch"].(float64) != 0 {
		t.Fatalf("alpha epoch %v", out["epoch"])
	}
	resp, out = post("/targets/beta/query", map[string]any{"pattern": pb, "semantics": "iso"})
	if resp.StatusCode != http.StatusOK || int64(out["matches"].(float64)) != wb.oracle[0][parsge.SubgraphIso] {
		t.Fatalf("beta query: %d %v (oracle %d)", resp.StatusCode, out, wb.oracle[0][parsge.SubgraphIso])
	}

	// Census per target.
	resp, out = post("/targets/alpha/census", map[string]any{"k": 3})
	if resp.StatusCode != http.StatusOK || out["subgraphs"].(float64) <= 0 {
		t.Fatalf("alpha census: %d %v", resp.StatusCode, out)
	}

	// Unknown target: 404.
	resp, _ = post("/targets/nope/query", map[string]any{"pattern": pa})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown target status %d", resp.StatusCode)
	}

	// Update alpha: remove one existing arc (and its reverse, the soak
	// target is undirected-encoded) — epoch 1, then a re-query reflects
	// the mutated graph and misses the stale cache.
	e := wa.gt.Edges()[0]
	lab := ""
	if e.Label != 0 {
		lab = table.Name(e.Label)
	}
	ups := []map[string]any{
		{"from": e.From, "to": e.To, "label": lab, "remove": true},
		{"from": e.To, "to": e.From, "label": lab, "remove": true},
	}
	resp, out = post("/targets/alpha/update", map[string]any{"updates": ups})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: %d %v", resp.StatusCode, out)
	}
	if out["epoch"].(float64) != 1 || out["applied"].(float64) == 0 {
		t.Fatalf("update reply %v", out)
	}
	want := countOracle(t, wa.patterns[0], wa.tgt.Graph(), parsge.SubgraphIso)
	resp, out = post("/targets/alpha/query", map[string]any{"pattern": pa, "semantics": "iso"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-update query: %d %v", resp.StatusCode, out)
	}
	if out["epoch"].(float64) != 1 || out["cache_hit"].(bool) {
		t.Fatalf("post-update reply %v", out)
	}
	if int64(out["matches"].(float64)) != want {
		t.Fatalf("post-update matches %v, oracle %d", out["matches"], want)
	}

	// Malformed updates: empty batch and out-of-range endpoint.
	resp, _ = post("/targets/alpha/update", map[string]any{"updates": []map[string]any{}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch status %d", resp.StatusCode)
	}
	resp, _ = post("/targets/alpha/update", map[string]any{"updates": []map[string]any{{"from": 0, "to": 99999}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range status %d", resp.StatusCode)
	}

	// Router /stats: both targets listed with their epochs.
	sresp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var rstats struct {
		Targets []struct {
			Name  string `json:"Name"`
			Epoch uint64 `json:"Epoch"`
		}
		PerTarget map[string]struct {
			Queries int64
			Updates int64
		}
	}
	if err := json.NewDecoder(sresp.Body).Decode(&rstats); err != nil {
		t.Fatal(err)
	}
	if len(rstats.Targets) != 2 || rstats.Targets[0].Name != "alpha" || rstats.Targets[1].Name != "beta" {
		t.Fatalf("stats targets %+v", rstats.Targets)
	}
	if rstats.Targets[0].Epoch != 1 || rstats.Targets[1].Epoch != 0 {
		t.Fatalf("stats epochs %+v", rstats.Targets)
	}
	if rstats.PerTarget["alpha"].Updates != 1 {
		t.Fatalf("alpha updates %d", rstats.PerTarget["alpha"].Updates)
	}
}

// countOracle is BruteCountSem spelled out for post-update graphs.
func countOracle(t *testing.T, gp, gt *graph.Graph, sem parsge.Semantics) int64 {
	t.Helper()
	return testutil.BruteCountSem(gp, gt, sem)
}
