package service

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"parsge"
	"parsge/internal/graph"
	"parsge/internal/testutil"
)

// TestCacheKeyRelabelingInvariant is the satellite property test: the
// cache key must be identical for every relabeling of a pattern (so
// isomorphic patterns from different clients share an entry), and must
// separate whenever semantics or any result-relevant option differs (so
// no two distinguishable queries ever alias one entry).
func TestCacheKeyRelabelingInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 150; trial++ {
		gp, _ := testutil.RandomInstance(int64(trial), testutil.InstanceOptions{
			TargetNodes:  20,
			TargetEdges:  60,
			PatternNodes: 2 + trial%5,
			NodeLabels:   1 + trial%4,
			Extract:      true,
		})
		canon, _ := parsge.CanonicalPattern(gp)
		base := cacheKey(canon, parsge.SubgraphIso, parsge.Options{})
		for k := 0; k < 4; k++ {
			pg := testutil.PermuteGraph(rng, gp)
			pcanon, _ := parsge.CanonicalPattern(pg)
			if got := cacheKey(pcanon, parsge.SubgraphIso, parsge.Options{}); got != base {
				t.Fatalf("trial %d: relabeled pattern got a different cache key", trial)
			}
		}
	}
}

// TestCacheKeySeparatesOptions: every semantics and every result-
// relevant option axis must produce a distinct key over one pattern;
// execution-only knobs (Workers, Seed, Timeout) must not.
func TestCacheKeySeparatesOptions(t *testing.T) {
	gp, _ := testutil.RandomInstance(1, testutil.InstanceOptions{
		TargetNodes: 12, TargetEdges: 30, PatternNodes: 4, NodeLabels: 2, Extract: true,
	})
	canon, _ := parsge.CanonicalPattern(gp)
	variants := map[string]string{
		"iso":      cacheKey(canon, parsge.SubgraphIso, parsge.Options{}),
		"induced":  cacheKey(canon, parsge.InducedIso, parsge.Options{}),
		"hom":      cacheKey(canon, parsge.Homomorphism, parsge.Options{}),
		"limit":    cacheKey(canon, parsge.SubgraphIso, parsge.Options{Limit: 5}),
		"alg":      cacheKey(canon, parsge.SubgraphIso, parsge.Options{Algorithm: parsge.LAD}),
		"sched":    cacheKey(canon, parsge.SubgraphIso, parsge.Options{Pruning: parsge.PruningOptions{Schedule: parsge.ScheduleFixed}}),
		"acpasses": cacheKey(canon, parsge.SubgraphIso, parsge.Options{Pruning: parsge.PruningOptions{ACPasses: 2}}),
		"nonlf":    cacheKey(canon, parsge.SubgraphIso, parsge.Options{Pruning: parsge.PruningOptions{DisableNLF: true}}),
		"noindac":  cacheKey(canon, parsge.SubgraphIso, parsge.Options{Pruning: parsge.PruningOptions{DisableInducedAC: true}}),
	}
	seen := map[string]string{}
	for name, key := range variants {
		if prev, dup := seen[key]; dup {
			t.Errorf("options %q and %q alias one cache key", prev, name)
		}
		seen[key] = name
	}
	for name, opts := range map[string]parsge.Options{
		"workers": {Workers: 8},
		"seed":    {Seed: 42},
		"timeout": {Timeout: 1e9},
		"tgs":     {TaskGroupSize: 8},
	} {
		if got := cacheKey(canon, parsge.SubgraphIso, opts); got != variants["iso"] {
			t.Errorf("execution knob %q changed the cache key", name)
		}
	}
}

// TestCacheKeySeparatesNonIsomorphic: patterns that are not isomorphic
// must have different keys — guaranteed exactly (not probabilistically)
// because the key embeds the full canonical encoding, not its hash.
func TestCacheKeySeparatesNonIsomorphic(t *testing.T) {
	keys := map[string]int{}
	for trial := 0; trial < 60; trial++ {
		gp, _ := testutil.RandomInstance(int64(1000+trial), testutil.InstanceOptions{
			TargetNodes: 16, TargetEdges: 48, PatternNodes: 2 + trial%5, NodeLabels: 3, Extract: true,
		})
		canon, _ := parsge.CanonicalPattern(gp)
		key := cacheKey(canon, parsge.SubgraphIso, parsge.Options{})
		if prev, dup := keys[key]; dup {
			// Same key is only legal for isomorphic patterns: equal
			// canonical encodings. Verify by counting embeddings of one
			// in the other both ways.
			prevGp, _ := testutil.RandomInstance(int64(1000+prev), testutil.InstanceOptions{
				TargetNodes: 16, TargetEdges: 48, PatternNodes: 2 + prev%5, NodeLabels: 3, Extract: true,
			})
			if gp.NumNodes() != prevGp.NumNodes() || gp.NumEdges() != prevGp.NumEdges() ||
				testutil.BruteCountSem(gp, prevGp, parsge.SubgraphIso) == 0 {
				t.Fatalf("trials %d and %d share a key but are not isomorphic", prev, trial)
			}
			continue
		}
		keys[key] = trial
	}
}

// TestServiceNoSemanticsAliasing: the end-to-end version of the aliasing
// property on an instance where the three semantics disagree (P3 in a
// triangle: 6 subgraph-isos, 0 induced, 12 homomorphisms). A cache that
// aliased semantics would leak the first answer into the others.
func TestServiceNoSemanticsAliasing(t *testing.T) {
	tb := graph.NewBuilder(3, 6)
	tb.AddNodes(3)
	tb.AddEdgeBoth(0, 1, graph.NoLabel)
	tb.AddEdgeBoth(1, 2, graph.NoLabel)
	tb.AddEdgeBoth(0, 2, graph.NoLabel)
	gt := tb.MustBuild()
	pb := graph.NewBuilder(3, 4)
	pb.AddNodes(3)
	pb.AddEdgeBoth(0, 1, graph.NoLabel)
	pb.AddEdgeBoth(1, 2, graph.NoLabel)
	gp := pb.MustBuild()

	tgt, err := parsge.NewTarget(gt, parsge.TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(Config{Target: tgt})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ { // round 2: everything cached
		for _, c := range []struct {
			sem  parsge.Semantics
			want int64
		}{
			{parsge.SubgraphIso, 6},
			{parsge.InducedIso, 0},
			{parsge.Homomorphism, 12},
		} {
			if oracle := testutil.BruteCountSem(gp, gt, c.sem); oracle != c.want {
				t.Fatalf("oracle disagrees with the test's arithmetic: %v = %d", c.sem, oracle)
			}
			r, err := svc.Count(context.Background(), Query{Pattern: gp, Options: parsge.Options{Semantics: c.sem}})
			if err != nil {
				t.Fatal(err)
			}
			if r.Result.Matches != c.want {
				t.Fatalf("round %d %v: %d matches, want %d (cache aliasing?)", round, c.sem, r.Result.Matches, c.want)
			}
			if round == 1 && !r.CacheHit {
				t.Errorf("round 2 %v was not a cache hit", c.sem)
			}
		}
	}
}

// TestServiceRelabeledPatternHitsCache: an isomorphic twin of a cached
// pattern must be served from the cache, and its translated mappings
// must be valid embeddings of the twin (not of the original).
func TestServiceRelabeledPatternHitsCache(t *testing.T) {
	w := buildSoakWorld(t, 77)
	svc, err := New(Config{Target: w.tgt})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for pi, gp := range w.patterns {
		want := w.oracle[pi][parsge.SubgraphIso]
		first, err := svc.Enumerate(context.Background(), Query{Pattern: gp})
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(first.Mappings)) != want {
			t.Fatalf("pattern %d: %d mappings, oracle %d", pi, len(first.Mappings), want)
		}
		for k := 0; k < 3; k++ {
			twin := testutil.PermuteGraph(rng, gp)
			r, err := svc.Enumerate(context.Background(), Query{Pattern: twin})
			if err != nil {
				t.Fatal(err)
			}
			if !r.CacheHit {
				t.Errorf("pattern %d twin %d missed the cache", pi, k)
			}
			if int64(len(r.Mappings)) != want {
				t.Fatalf("pattern %d twin %d: %d mappings, oracle %d", pi, k, len(r.Mappings), want)
			}
			for _, m := range r.Mappings {
				verifyMapping(t, twin, w.gt, m, parsge.SubgraphIso)
			}
		}
	}
}

// TestCacheLRU: the budget holds, the least-recently-used entry goes
// first, and a get refreshes recency.
func TestCacheLRU(t *testing.T) {
	c := newCache(10) // room for ~3 mapping entries of cost 3
	mk := func(i int) *entry {
		return &entry{
			key:         fmt.Sprintf("k%d", i),
			epoch:       0,
			hasMappings: true,
			mappings:    [][]int32{{0}, {1}}, // cost 3
		}
	}
	for i := 0; i < 3; i++ {
		c.put(mk(i))
	}
	if _, ok := c.get("k0", false, 0); !ok {
		t.Fatal("k0 evicted under budget")
	}
	// k0 is now most recent; inserting k3 must evict k1 (the coldest).
	c.put(mk(3))
	if _, ok := c.get("k1", false, 0); ok {
		t.Fatal("k1 survived past the budget")
	}
	for _, want := range []string{"k0", "k2", "k3"} {
		if _, ok := c.get(want, false, 0); !ok {
			t.Fatalf("%s missing", want)
		}
	}
	if entries, cost, _, _, evictions := c.stats(); entries != 3 || cost > 10 || evictions != 1 {
		t.Fatalf("entries=%d cost=%d evictions=%d", entries, cost, evictions)
	}
	// An entry alone exceeding the budget is refused outright.
	big := &entry{key: "big", epoch: 0, hasMappings: true, mappings: make([][]int32, 64)}
	c.put(big)
	if _, ok := c.get("big", false, 0); ok {
		t.Fatal("over-budget entry was cached")
	}
	// Disabled cache accepts nothing.
	d := newCache(0)
	d.put(mk(0))
	if _, ok := d.get("k0", false, 0); ok {
		t.Fatal("disabled cache served an entry")
	}
}

// TestCacheCountOnlyUpgrade: a count-only entry serves counts but not
// mapping requests; the subsequent mapping run upgrades it; a later
// count-only put must not downgrade it back.
func TestCacheCountOnlyUpgrade(t *testing.T) {
	c := newCache(100)
	c.put(&entry{key: "k", res: parsge.Result{Matches: 2}, epoch: 0})
	if _, ok := c.get("k", false, 0); !ok {
		t.Fatal("count-only entry does not serve counts")
	}
	if _, ok := c.get("k", true, 0); ok {
		t.Fatal("count-only entry served a mappings request")
	}
	c.put(&entry{key: "k", res: parsge.Result{Matches: 2}, epoch: 0, hasMappings: true, mappings: [][]int32{{0}, {1}}})
	e, ok := c.get("k", true, 0)
	if !ok || len(e.mappings) != 2 {
		t.Fatal("upgrade failed")
	}
	c.put(&entry{key: "k", res: parsge.Result{Matches: 2}, epoch: 0})
	if e, ok := c.get("k", true, 0); !ok || !e.hasMappings {
		t.Fatal("count-only put downgraded a mappings entry")
	}
}
