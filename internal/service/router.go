package service

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"parsge"
)

// This file is the multi-target router: one machine, many named target
// graphs, one shared worker budget. Each target gets its own Service —
// own result cache, census cache, singleflight state — but all of them
// queue on a single admission instance, each under its own class, so
// the round-robin discipline in admission.go shares the machine fairly:
// a flood of queries against one target cannot starve the others.
//
// Targets are mutable (Service.Update → Target.ApplyUpdates) and their
// dominant memory cost beyond the graph is the label/NLF index. The
// router bounds that cost with an LRU over *indexes*, not targets: a
// cold target's index is released (Target.ReleaseIndex) when more than
// MaxHotIndexes targets are hot, and rebuilt on demand the next time
// the target is queried (EnsureIndex). Eviction never changes results —
// an index-free target answers every query identically, just with
// whole-vertex-set preprocessing — so the LRU is purely a memory/latency
// trade.

// ErrUnknownTarget reports a request naming a target the router does
// not host.
var ErrUnknownTarget = fmt.Errorf("service: unknown target")

// RouterConfig configures NewRouter. The worker-budget, queue, cache
// and timeout fields mean exactly what they do in Config — they are
// applied machine-wide (admission) or per added target (caches).
type RouterConfig struct {
	// Workers is the machine-wide admission budget shared by every
	// target. Default: GOMAXPROCS.
	Workers int
	// ParallelWorkers is the pool size granted to a large query.
	// Default: half the budget, at least 2, at most the budget.
	ParallelWorkers int
	// MaxQueue bounds the admission queue across all targets.
	// Default: 8× Workers.
	MaxQueue int
	// QueueTimeout bounds admission waits. Default: 2s; negative
	// disables.
	QueueTimeout time.Duration
	// CacheMaxMatches and CacheMaxMappingsPerEntry configure each
	// target's result cache (per target, not shared).
	CacheMaxMatches          int64
	CacheMaxMappingsPerEntry int
	// DefaultTimeout is applied to queries that set none.
	DefaultTimeout time.Duration
	// MaxTimeout clamps every query and census timeout to the server
	// budget (0 = no clamp); see Config.MaxTimeout.
	MaxTimeout time.Duration
	// SmallBudget, ExplosiveBudget, SmallLogDomain, ExplosiveLogDomain,
	// ExplosivePolicy and DisableCostModel configure each target's
	// cost-model admission (per-target estimators over the shared
	// budget); see the Config fields of the same names.
	SmallBudget                        time.Duration
	ExplosiveBudget                    time.Duration
	SmallLogDomain, ExplosiveLogDomain float64
	ExplosivePolicy                    ExplosivePolicy
	DisableCostModel                   bool
	// MaxHotIndexes bounds how many targets may hold their label/NLF
	// index at once; beyond it the least-recently-used target's index
	// is released and rebuilt on demand. 0 means unbounded (no
	// eviction).
	MaxHotIndexes int
	// Classify overrides classification for every target.
	Classify func(pattern *parsge.Graph, opts parsge.Options) bool
}

func (c RouterConfig) svcConfig(tgt *parsge.Target) Config {
	return Config{
		Target:                   tgt,
		Workers:                  c.Workers,
		ParallelWorkers:          c.ParallelWorkers,
		MaxQueue:                 c.MaxQueue,
		QueueTimeout:             c.QueueTimeout,
		CacheMaxMatches:          c.CacheMaxMatches,
		CacheMaxMappingsPerEntry: c.CacheMaxMappingsPerEntry,
		DefaultTimeout:           c.DefaultTimeout,
		MaxTimeout:               c.MaxTimeout,
		SmallBudget:              c.SmallBudget,
		ExplosiveBudget:          c.ExplosiveBudget,
		SmallLogDomain:           c.SmallLogDomain,
		ExplosiveLogDomain:       c.ExplosiveLogDomain,
		ExplosivePolicy:          c.ExplosivePolicy,
		DisableCostModel:         c.DisableCostModel,
		Classify:                 c.Classify,
	}.withDefaults()
}

// TargetInfo describes one hosted target in listings and /stats.
type TargetInfo struct {
	// Name is the routing key.
	Name string
	// Epoch is the target's mutation epoch (0 = never updated).
	Epoch uint64
	// Nodes and Edges describe the current graph version.
	Nodes, Edges int
	// IndexHot reports the label/NLF index is currently resident (false
	// after LRU eviction, until the next query rebuilds it).
	IndexHot bool
}

// RouterStats is a point-in-time snapshot of the router: the shared
// admission state plus every hosted target's service snapshot.
type RouterStats struct {
	// Targets is sorted by name; the map key of PerTarget is the name.
	Targets   []TargetInfo
	PerTarget map[string]Stats
	// Shared admission counters (the per-target Stats repeat these —
	// the admission is shared — so read them here once).
	TokensInUse    int64
	Queued         int
	Granted        int64
	Shed           int64
	QueueTimeouts  int64
	TotalQueueWait time.Duration
}

// Router hosts many named targets behind one shared admission budget.
// All methods are safe for concurrent use.
type Router struct {
	cfg RouterConfig
	adm *admission

	mu     sync.Mutex
	routes map[string]*routerEntry
	clock  uint64 // logical LRU clock: bumped on every route use
	closed bool
}

type routerEntry struct {
	svc     *Service
	tgt     *parsge.Target
	lastUse uint64
}

// NewRouter builds an empty router; add targets with AddTarget.
func NewRouter(cfg RouterConfig) *Router {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	probe := cfg.svcConfig(nil) // resolve defaults once for the shared admission
	cfg.Workers = probe.Workers
	cfg.ParallelWorkers = probe.ParallelWorkers
	cfg.MaxQueue = probe.MaxQueue
	return &Router{
		cfg:    cfg,
		adm:    newAdmission(int64(probe.Workers), probe.MaxQueue),
		routes: make(map[string]*routerEntry),
	}
}

// AddTarget builds a Target session over g and hosts it under name.
// Names are unique; adding to a closed router fails.
func (r *Router) AddTarget(name string, g *parsge.Graph, topts parsge.TargetOptions) error {
	if name == "" {
		return fmt.Errorf("service: empty target name")
	}
	tgt, err := parsge.NewTarget(g, topts)
	if err != nil {
		return err
	}
	return r.AddTargetSession(name, tgt)
}

// AddTargetSession hosts an existing Target session under name.
func (r *Router) AddTargetSession(name string, tgt *parsge.Target) error {
	if name == "" {
		return fmt.Errorf("service: empty target name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if _, dup := r.routes[name]; dup {
		return fmt.Errorf("service: duplicate target %q", name)
	}
	r.clock++
	r.routes[name] = &routerEntry{
		svc:     newServiceWith(r.cfg.svcConfig(tgt), r.adm, name),
		tgt:     tgt,
		lastUse: r.clock,
	}
	r.enforceIndexBudgetLocked(name)
	return nil
}

// RemoveTarget closes the named target's service (draining in-flight
// requests until ctx fires) and drops the route.
func (r *Router) RemoveTarget(ctx context.Context, name string) error {
	r.mu.Lock()
	e := r.routes[name]
	delete(r.routes, name)
	r.mu.Unlock()
	if e == nil {
		return fmt.Errorf("%w: %q", ErrUnknownTarget, name)
	}
	return e.svc.Close(ctx)
}

// route resolves a name to its service, stamps the LRU clock, restores
// the target's index if it was evicted, and evicts over-budget cold
// indexes.
func (r *Router) route(name string) (*Service, error) {
	r.mu.Lock()
	e := r.routes[name]
	if e == nil {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownTarget, name)
	}
	r.clock++
	e.lastUse = r.clock
	r.enforceIndexBudgetLocked(name)
	r.mu.Unlock()
	// Rebuild outside r.mu: index construction is O(graph) and must not
	// block routing to other targets.
	e.tgt.EnsureIndex()
	return e.svc, nil
}

// enforceIndexBudgetLocked releases the least-recently-used targets'
// indexes until at most MaxHotIndexes remain hot. The route being
// touched (keep) is never evicted — it is about to serve.
func (r *Router) enforceIndexBudgetLocked(keep string) {
	if r.cfg.MaxHotIndexes <= 0 {
		return
	}
	type hot struct {
		name    string
		lastUse uint64
	}
	var hots []hot
	for name, e := range r.routes {
		if e.tgt.HasIndex() {
			hots = append(hots, hot{name, e.lastUse})
		}
	}
	// The touched route's index may not be resident yet (EnsureIndex
	// runs after the lock drops) — count it as hot so the budget holds
	// after the rebuild.
	if keep != "" {
		if e := r.routes[keep]; e != nil && !e.tgt.HasIndex() {
			hots = append(hots, hot{keep, e.lastUse})
		}
	}
	sort.Slice(hots, func(i, j int) bool { return hots[i].lastUse < hots[j].lastUse })
	over := len(hots) - r.cfg.MaxHotIndexes
	for _, h := range hots {
		if over <= 0 {
			return
		}
		if h.name == keep {
			continue
		}
		r.routes[h.name].tgt.ReleaseIndex()
		over--
	}
}

// Count serves a match-count query against the named target.
func (r *Router) Count(ctx context.Context, name string, q Query) (Reply, error) {
	svc, err := r.route(name)
	if err != nil {
		return Reply{}, err
	}
	return svc.Count(ctx, q)
}

// Enumerate serves a full-result query against the named target.
func (r *Router) Enumerate(ctx context.Context, name string, q Query) (Reply, error) {
	svc, err := r.route(name)
	if err != nil {
		return Reply{}, err
	}
	return svc.Enumerate(ctx, q)
}

// Stream serves a live match stream from the named target.
func (r *Router) Stream(ctx context.Context, name string, q Query) (<-chan parsge.Match, <-chan parsge.StreamEnd, error) {
	svc, err := r.route(name)
	if err != nil {
		return nil, nil, err
	}
	return svc.Stream(ctx, q)
}

// Census serves a motif census of the named target.
func (r *Router) Census(ctx context.Context, name string, req CensusRequest) (CensusReply, error) {
	svc, err := r.route(name)
	if err != nil {
		return CensusReply{}, err
	}
	return svc.Census(ctx, req)
}

// Update applies an edge-update batch to the named target (see
// Service.Update: batch-atomic, epoch-advancing, cache-invalidating).
func (r *Router) Update(ctx context.Context, name string, updates []parsge.EdgeUpdate) (parsge.UpdateResult, error) {
	svc, err := r.route(name)
	if err != nil {
		return parsge.UpdateResult{}, err
	}
	return svc.Update(ctx, updates)
}

// Target returns the named hosted target session, or nil.
func (r *Router) Target(name string) *parsge.Target {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.routes[name]; e != nil {
		return e.tgt
	}
	return nil
}

// Targets lists the hosted targets, sorted by name.
func (r *Router) Targets() []TargetInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TargetInfo, 0, len(r.routes))
	for name, e := range r.routes {
		g := e.tgt.Graph()
		out = append(out, TargetInfo{
			Name:     name,
			Epoch:    e.tgt.Epoch(),
			Nodes:    g.NumNodes(),
			Edges:    g.NumEdges(),
			IndexHot: e.tgt.HasIndex(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Stats returns a point-in-time snapshot of the router.
func (r *Router) Stats() RouterStats {
	r.mu.Lock()
	entries := make(map[string]*routerEntry, len(r.routes))
	for name, e := range r.routes {
		entries[name] = e
	}
	r.mu.Unlock()

	st := RouterStats{PerTarget: make(map[string]Stats, len(entries))}
	for name, e := range entries {
		g := e.tgt.Graph()
		st.Targets = append(st.Targets, TargetInfo{
			Name:     name,
			Epoch:    e.tgt.Epoch(),
			Nodes:    g.NumNodes(),
			Edges:    g.NumEdges(),
			IndexHot: e.tgt.HasIndex(),
		})
		st.PerTarget[name] = e.svc.Stats()
	}
	sort.Slice(st.Targets, func(i, j int) bool { return st.Targets[i].Name < st.Targets[j].Name })
	st.TokensInUse, st.Queued, st.Granted, st.Shed, st.QueueTimeouts, st.TotalQueueWait = r.adm.load()
	return st
}

// Close drains every hosted target's service: new requests fail with
// ErrClosed, in-flight ones are waited for until ctx fires.
func (r *Router) Close(ctx context.Context) error {
	r.mu.Lock()
	r.closed = true
	entries := make([]*routerEntry, 0, len(r.routes))
	for _, e := range r.routes {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	var first error
	for _, e := range entries {
		if err := e.svc.Close(ctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}
