package service

import (
	"context"
	"errors"
	"time"

	"parsge"
)

// This file is the census request path of the Service: the same three
// production concerns the query path has — caching, admission control,
// observability — applied to the motif-census workload.
//
//   - Admission: a census is always "large". It enumerates every
//     connected k-subgraph of the whole target, fanning out over every
//     vertex, so it takes the full parallel-pool token grant
//     (ParallelWorkers) like the biggest pattern queries do; small
//     queries keep flowing around it under the weighted-FIFO discipline.
//   - Caching: the target is immutable for the life of the Service, so
//     a complete census at one K never goes stale — a tiny per-K map
//     (at most MaxCensusK−MinCensusK+1 entries) replaces the LRU, and
//     per-K singleflight collapses concurrent identical requests onto
//     one run.
//   - Observability: runs are recorded by Target.Census into the plan
//     histogram under "census:k=<K>", and the service counts census
//     requests next to its query counters.

// CensusRequest is one client census request.
type CensusRequest struct {
	// K is the subgraph size, in [parsge.MinCensusK, parsge.MaxCensusK].
	K int
	// Timeout bounds the run (0 falls back to Config.DefaultTimeout).
	Timeout time.Duration
}

// CensusReply reports one served census.
type CensusReply struct {
	// Result is the census outcome. For a cache hit it is the result of
	// the run that populated the entry (its Duration describes that
	// run, not this request).
	Result parsge.CensusResult
	// CacheHit reports the reply was served from the census cache;
	// Shared that it was computed once by a concurrent identical
	// request and shared.
	CacheHit, Shared bool
	// QueueWait is the time spent in the admission queue.
	QueueWait time.Duration
}

// censusFlight is one in-flight census identical requests rendezvous on.
type censusFlight struct {
	done chan struct{}
	res  *parsge.CensusResult // nil when the leader's run was truncated
	err  error
}

// Census serves a motif-census request: cache, then singleflight, then
// an admission-controlled run on the parallel pool.
func (s *Service) Census(ctx context.Context, req CensusRequest) (CensusReply, error) {
	if err := s.begin(); err != nil {
		return CensusReply{}, err
	}
	defer s.wg.Done()
	if req.K < parsge.MinCensusK || req.K > parsge.MaxCensusK {
		return CensusReply{}, errors.New("service: census K out of range")
	}
	s.statMu.Lock()
	s.queries++
	s.census++
	s.statMu.Unlock()

	// The same retry discipline as the query path: each turn either hits
	// the cache, joins an in-flight identical census, or leads one; a
	// waiter whose leader was truncated retries, and after a few turns
	// stops deduplicating so a perpetually-timing-out leader cannot
	// livelock its followers.
	for attempt := 0; ; attempt++ {
		if res := s.censusGet(req.K); res != nil {
			return CensusReply{Result: *res, CacheHit: true}, nil
		}
		if ctx.Err() != nil {
			return CensusReply{}, ctx.Err()
		}

		s.censusMu.Lock()
		if f := s.censusFlights[req.K]; f != nil && attempt < 3 {
			s.censusMu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return CensusReply{}, ctx.Err()
			}
			if f.err != nil && !errors.Is(f.err, context.Canceled) && !errors.Is(f.err, context.DeadlineExceeded) {
				// Deterministic for an identical request (validation,
				// overload backpressure): share it instead of stampeding.
				return CensusReply{}, f.err
			}
			if f.err == nil && f.res != nil {
				s.statMu.Lock()
				s.shared++
				s.statMu.Unlock()
				return CensusReply{Result: *f.res, Shared: true}, nil
			}
			// Leader truncated or its own context died — leader-specific
			// outcomes, not verdicts on the census. Retry.
			continue
		}
		var f *censusFlight
		if attempt < 3 {
			if s.censusFlights == nil {
				s.censusFlights = make(map[int]*censusFlight)
			}
			f = &censusFlight{done: make(chan struct{})}
			s.censusFlights[req.K] = f
		}
		s.censusMu.Unlock()

		reply, res, err := s.runCensusLeader(ctx, req)
		if f != nil {
			s.censusMu.Lock()
			delete(s.censusFlights, req.K)
			s.censusMu.Unlock()
			f.res, f.err = res, err
			close(f.done)
		}
		if err != nil {
			return CensusReply{}, err
		}
		return reply, nil
	}
}

// runCensusLeader acquires the full parallel-pool grant and runs the
// census for real; a complete (un-truncated) result is cached for the
// life of the service.
func (s *Service) runCensusLeader(ctx context.Context, req CensusRequest) (CensusReply, *parsge.CensusResult, error) {
	need := int64(s.cfg.ParallelWorkers)
	waited, err := s.adm.acquire(ctx, need, s.cfg.QueueTimeout)
	if err != nil {
		return CensusReply{}, nil, err
	}
	defer s.adm.release(need)
	s.statMu.Lock()
	s.parallel++
	s.statMu.Unlock()

	timeout := req.Timeout
	if timeout == 0 {
		timeout = s.cfg.DefaultTimeout
	}
	res, err := s.tgt.Census(ctx, parsge.CensusOptions{
		K:       req.K,
		Workers: s.cfg.ParallelWorkers,
		Timeout: timeout,
	})
	if err != nil {
		return CensusReply{}, nil, err
	}
	reply := CensusReply{Result: res, QueueWait: waited}
	if res.TimedOut {
		// Truncated: counts are lower bounds — correct for this caller,
		// not a result identical requests may reuse.
		return reply, nil, nil
	}
	s.censusPut(req.K, &res)
	return reply, &res, nil
}

// censusGet returns the cached complete census for k, or nil.
func (s *Service) censusGet(k int) *parsge.CensusResult {
	s.censusMu.Lock()
	defer s.censusMu.Unlock()
	res := s.censusCache[k]
	if res != nil {
		s.censusHits++
	} else {
		s.censusMisses++
	}
	return res
}

// censusPut caches a complete census. The target is immutable, so
// entries never expire; at most MaxCensusK−MinCensusK+1 can exist.
func (s *Service) censusPut(k int, res *parsge.CensusResult) {
	s.censusMu.Lock()
	defer s.censusMu.Unlock()
	if s.censusCache == nil {
		s.censusCache = make(map[int]*parsge.CensusResult)
	}
	s.censusCache[k] = res
}
