package service

import (
	"context"
	"errors"
	"time"

	"parsge"
)

// This file is the census request path of the Service: the same three
// production concerns the query path has — caching, admission control,
// observability — applied to the motif-census workload.
//
//   - Admission: a census is always "large". It enumerates every
//     connected k-subgraph of the whole target, fanning out over every
//     vertex, so it takes the full parallel-pool token grant
//     (ParallelWorkers) like the biggest pattern queries do; small
//     queries keep flowing around it under the weighted-FIFO discipline.
//   - Caching: a complete census at one K is immutable for the life of
//     a graph version, so a tiny map keyed (K, mutation epoch) replaces
//     the LRU — entries of superseded epochs are evicted on sight, and
//     per-(K, epoch) singleflight collapses concurrent identical
//     requests onto one run without ever latching a post-update request
//     onto a pre-update leader.
//   - Observability: runs are recorded by Target.Census into the plan
//     histogram under "census:k=<K>", and the service counts census
//     requests next to its query counters.

// CensusRequest is one client census request.
type CensusRequest struct {
	// K is the subgraph size, in [parsge.MinCensusK, parsge.MaxCensusK].
	K int
	// Timeout bounds the run (0 falls back to Config.DefaultTimeout).
	Timeout time.Duration
}

// CensusReply reports one served census.
type CensusReply struct {
	// Result is the census outcome. For a cache hit it is the result of
	// the run that populated the entry (its Duration describes that
	// run, not this request).
	Result parsge.CensusResult
	// CacheHit reports the reply was served from the census cache;
	// Shared that it was computed once by a concurrent identical
	// request and shared.
	CacheHit, Shared bool
	// QueueWait is the time spent in the admission queue.
	QueueWait time.Duration
}

// censusID identifies one census computation: the subgraph size at one
// target mutation epoch. Keying cache and singleflight by the pair is
// what makes updates safe — a request after ApplyUpdates uses a fresh
// ID and cannot see (or join) pre-update state. Constructions must set
// the epoch explicitly (sgelint: epochkey).
//
//sgelint:epochkey
type censusID struct {
	k     int
	epoch uint64
}

// censusFlight is one in-flight census identical requests rendezvous on.
type censusFlight struct {
	done chan struct{}
	res  *parsge.CensusResult // nil when the leader's run was truncated
	err  error
}

// Census serves a motif-census request: cache, then singleflight, then
// an admission-controlled run on the parallel pool.
func (s *Service) Census(ctx context.Context, req CensusRequest) (CensusReply, error) {
	if err := s.begin(); err != nil {
		return CensusReply{}, err
	}
	defer s.wg.Done()
	if req.K < parsge.MinCensusK || req.K > parsge.MaxCensusK {
		return CensusReply{}, errors.New("service: census K out of range")
	}
	s.statMu.Lock()
	s.queries++
	s.census++
	s.statMu.Unlock()

	// The same retry discipline as the query path: each turn either hits
	// the cache, joins an in-flight identical census, or leads one; a
	// waiter whose leader was truncated retries, and after a few turns
	// stops deduplicating so a perpetually-timing-out leader cannot
	// livelock its followers.
	for attempt := 0; ; attempt++ {
		id := censusID{k: req.K, epoch: s.tgt.Epoch()}
		if res := s.censusGet(id); res != nil {
			return CensusReply{Result: *res, CacheHit: true}, nil
		}
		if ctx.Err() != nil {
			return CensusReply{}, ctx.Err()
		}

		s.censusMu.Lock()
		if f := s.censusFlights[id]; f != nil && attempt < 3 {
			s.censusMu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return CensusReply{}, ctx.Err()
			}
			if f.err != nil && !errors.Is(f.err, context.Canceled) && !errors.Is(f.err, context.DeadlineExceeded) {
				// Deterministic for an identical request (validation,
				// overload backpressure): share it instead of stampeding.
				return CensusReply{}, f.err
			}
			if f.err == nil && f.res != nil {
				s.statMu.Lock()
				s.shared++
				s.statMu.Unlock()
				return CensusReply{Result: *f.res, Shared: true}, nil
			}
			// Leader truncated or its own context died — leader-specific
			// outcomes, not verdicts on the census. Retry.
			continue
		}
		var f *censusFlight
		if attempt < 3 {
			if s.censusFlights == nil {
				s.censusFlights = make(map[censusID]*censusFlight)
			}
			f = &censusFlight{done: make(chan struct{})}
			s.censusFlights[id] = f
		}
		s.censusMu.Unlock()

		reply, res, err := s.runCensusLeader(ctx, req)
		if f != nil {
			s.censusMu.Lock()
			delete(s.censusFlights, id)
			s.censusMu.Unlock()
			f.res, f.err = res, err
			close(f.done)
		}
		if err != nil {
			return CensusReply{}, err
		}
		return reply, nil
	}
}

// runCensusLeader acquires the full parallel-pool grant and runs the
// census for real; a complete (un-truncated) result is cached for the
// life of the service.
func (s *Service) runCensusLeader(ctx context.Context, req CensusRequest) (CensusReply, *parsge.CensusResult, error) {
	need := int64(s.cfg.ParallelWorkers)
	waited, err := s.adm.acquire(ctx, s.cls, need, s.cfg.QueueTimeout, false)
	if err != nil {
		return CensusReply{}, nil, err
	}
	defer s.adm.release(need)
	s.statMu.Lock()
	s.parallel++
	s.statMu.Unlock()

	timeout := req.Timeout
	if timeout == 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if mt := s.cfg.MaxTimeout; mt > 0 && (timeout == 0 || timeout > mt) {
		timeout = mt // a census is bound by the server budget like any query
	}
	res, err := s.tgt.Census(ctx, parsge.CensusOptions{
		K:       req.K,
		Workers: s.cfg.ParallelWorkers,
		Timeout: timeout,
	})
	if err != nil {
		return CensusReply{}, nil, err
	}
	reply := CensusReply{Result: res, QueueWait: waited}
	if res.TimedOut {
		// Truncated: counts are lower bounds — correct for this caller,
		// not a result identical requests may reuse.
		return reply, nil, nil
	}
	s.censusPut(&res)
	return reply, &res, nil
}

// censusGet returns the cached complete census for id, or nil. Entries
// of other epochs at the same K are superseded graph versions — evicted
// here, never returned.
func (s *Service) censusGet(id censusID) *parsge.CensusResult {
	s.censusMu.Lock()
	defer s.censusMu.Unlock()
	for old := range s.censusCache {
		if old.k == id.k && old.epoch != id.epoch {
			delete(s.censusCache, old)
		}
	}
	res := s.censusCache[id]
	if res != nil {
		s.censusHits++
	} else {
		s.censusMisses++
	}
	return res
}

// censusPut caches a complete census under the (K, epoch) its run
// executed against — res.Epoch tells the truth even if the target moved
// on while the run was in flight (the entry is then already stale and
// dies on the next lookup).
func (s *Service) censusPut(res *parsge.CensusResult) {
	s.censusMu.Lock()
	defer s.censusMu.Unlock()
	if s.censusCache == nil {
		s.censusCache = make(map[censusID]*parsge.CensusResult)
	}
	s.censusCache[censusID{k: res.K, epoch: res.Epoch}] = res
}
