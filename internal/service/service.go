// Package service is the query-serving layer above parsge.Target: it
// multiplexes many concurrent pattern queries from many clients onto one
// shared-memory machine. The paper (Kimmig/Meyerhenke/Strash) parallelizes
// a single enumeration; a production service needs three things on top,
// and this package is exactly those three:
//
//   - A result cache keyed by canonical pattern hash × resolved
//     semantics × options fingerprint (see cacheKey), LRU-bounded by
//     match-count memory, with singleflight deduplication so identical
//     in-flight queries run once and share the result.
//   - Admission control that partitions the machine's worker budget
//     across concurrent queries — large queries get the work-stealing
//     parallel pool, small ones run sequentially — with FIFO queueing,
//     a wait bound, and load shedding under overload (see admission).
//   - Observability: Stats() aggregates the service counters with the
//     Target's session statistics, including the plan histogram that
//     makes the adaptive preprocessing scheduler visible in production.
//
// cmd/sgeserve exposes the service over HTTP; the soak and property
// tests in this package hold it to the brute-force oracle under
// concurrency, cancellation and cache churn.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"parsge"
	"parsge/internal/graph"
)

// ErrClosed reports a query submitted after Close began draining.
var ErrClosed = errors.New("service: closed")

// Config configures New. The zero value of every field is a usable
// default; only Target is required.
type Config struct {
	// Target is the session the service serves queries against.
	Target *parsge.Target
	// Workers is the machine's total worker budget — the number of
	// admission tokens. Default: GOMAXPROCS.
	Workers int
	// ParallelWorkers is the pool size granted to a large query (its
	// token demand). Default: half the budget, at least 2, at most the
	// budget.
	ParallelWorkers int
	// MaxQueue bounds the admission queue; a query arriving with the
	// queue full is shed with ErrOverloaded. Default: 8× Workers.
	MaxQueue int
	// QueueTimeout bounds the time a query waits for admission before
	// failing with ErrQueueTimeout. Default: 2s; negative disables.
	QueueTimeout time.Duration
	// CacheMaxMatches is the result cache budget in match-count memory
	// units (see entryCost). Default: 1<<20; negative disables caching.
	CacheMaxMatches int64
	// CacheMaxMappingsPerEntry caps the mappings stored in one cache
	// entry; a complete result set larger than this is cached count-only.
	// Default: 4096.
	CacheMaxMappingsPerEntry int
	// DefaultTimeout is applied to queries that set no Timeout of their
	// own (0 keeps them unbounded). A robustness valve for serving
	// untrusted patterns.
	DefaultTimeout time.Duration
	// MaxTimeout clamps every query and census timeout — client-supplied
	// or defaulted — to the server's budget (0 = no clamp). Without it a
	// client asking for an hour bypasses DefaultTimeout entirely.
	MaxTimeout time.Duration
	// SmallBudget is the cost under which a query is classified small
	// (one sequential token). Default: 25ms.
	SmallBudget time.Duration
	// ExplosiveBudget is the predicted cost at or above which a query is
	// classified explosive (shed or deprioritized, per ExplosivePolicy).
	// Default: MaxTimeout when set, else 30s; negative disables the
	// explosive class entirely (everything expensive is just large).
	ExplosiveBudget time.Duration
	// SmallLogDomain and ExplosiveLogDomain are the history-free
	// fallback thresholds on the domain upper bound (log2 of the product
	// of domain sizes, density-adjusted): at or below SmallLogDomain the
	// query is small, at or above ExplosiveLogDomain explosive.
	// Defaults: 22 and 44.
	SmallLogDomain, ExplosiveLogDomain float64
	// ExplosivePolicy selects shed (default) or deprioritize for
	// explosive-classified queries.
	ExplosivePolicy ExplosivePolicy
	// DisableCostModel reverts classification to the pre-cost-model
	// static heuristic (pattern size × mean degree, epoch-pinned). The
	// ablation baseline; also the escape hatch if the model misbehaves.
	DisableCostModel bool
	// Classify overrides classification entirely: return true to give
	// the query the parallel pool, false to run it sequentially. No
	// query is shed and the cost model is bypassed — the full-override
	// escape hatch predating the cost model.
	Classify func(pattern *parsge.Graph, opts parsge.Options) bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.ParallelWorkers <= 0 {
		c.ParallelWorkers = c.Workers / 2
	}
	if c.ParallelWorkers < 2 {
		c.ParallelWorkers = 2
	}
	if c.ParallelWorkers > c.Workers {
		c.ParallelWorkers = c.Workers
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 8 * c.Workers
	}
	if c.QueueTimeout == 0 {
		c.QueueTimeout = 2 * time.Second
	}
	if c.QueueTimeout < 0 {
		c.QueueTimeout = 0
	}
	if c.CacheMaxMatches == 0 {
		c.CacheMaxMatches = 1 << 20
	}
	if c.CacheMaxMatches < 0 {
		c.CacheMaxMatches = 0 // newCache(0) disables
	}
	if c.CacheMaxMappingsPerEntry <= 0 {
		c.CacheMaxMappingsPerEntry = 4096
	}
	if c.SmallBudget <= 0 {
		c.SmallBudget = 25 * time.Millisecond
	}
	if c.ExplosiveBudget == 0 {
		if c.MaxTimeout > 0 {
			c.ExplosiveBudget = c.MaxTimeout
		} else {
			c.ExplosiveBudget = 30 * time.Second
		}
	}
	if c.ExplosiveBudget < 0 {
		c.ExplosiveBudget = 0 // explosive class disabled
	}
	if c.SmallLogDomain == 0 {
		c.SmallLogDomain = 22
	}
	if c.ExplosiveLogDomain == 0 {
		c.ExplosiveLogDomain = 44
	}
	return c
}

// Query is one client request: a pattern plus the options it should run
// under. Options.Visit must be nil (the service owns result delivery)
// and Options.Workers is advisory only — admission control, not the
// client, decides the parallelism a query actually gets.
type Query struct {
	Pattern *parsge.Graph
	Options parsge.Options
}

// Reply reports one served query.
type Reply struct {
	// Result is the enumeration outcome. For a cache hit it is the
	// result of the run that populated the entry (its timings describe
	// that run, not this request).
	Result parsge.Result
	// Mappings holds the embeddings in the client pattern's numbering;
	// nil for Count queries. Cached mappings are translated from the
	// canonical numbering through the client pattern's permutation.
	Mappings [][]int32
	// CacheHit reports the reply was served from the result cache;
	// Shared that it was computed once by a concurrent identical query
	// (singleflight) and shared.
	CacheHit, Shared bool
	// Large reports the query was classified large and ran on the
	// parallel pool. QueueWait is the time spent in the admission queue.
	Large     bool
	QueueWait time.Duration
	// Class is the cost model's admission verdict; the zero value marks
	// replies served without an admission decision (cache hits,
	// singleflight followers). ClassEpoch is the target mutation epoch
	// the decision was pinned at — compare it with Result.Epoch to audit
	// whether an update landed between classification and run.
	// PredictedCost is the model's cost estimate (0 when no plan history
	// backed one).
	Class         AdmissionClass
	ClassEpoch    uint64
	PredictedCost time.Duration
}

// flightKey identifies one singleflight rendezvous: the result cache
// key, the result shape (a mappings run cannot satisfy waiters joined
// for counts and vice versa — they rendezvous separately), and the
// target mutation epoch. The epoch is what keeps a query arriving
// after ApplyUpdates from latching onto a pre-update leader; it was a
// "#e%d" suffix in a formatted string until sgelint's epochkey
// analyzer demanded a field it could see.
//
//sgelint:epochkey
type flightKey struct {
	key          string
	needMappings bool
	epoch        uint64
}

// flight is one in-flight computation identical queries rendezvous on.
type flight struct {
	done chan struct{}
	ent  *entry // nil when the leader's run was truncated or failed
	err  error
}

// Service multiplexes concurrent queries onto one Target. All methods
// are safe for concurrent use.
type Service struct {
	cfg   Config
	tgt   *parsge.Target
	cache *cache
	adm   *admission
	// cls is the admission class the service's queries queue under: ""
	// for a standalone Service (a single class degenerates to plain
	// FIFO), the target name when the Service is one route of a Router
	// sharing its admission with sibling targets.
	cls string

	flightMu sync.Mutex
	flights  map[flightKey]*flight

	// Census state: the per-(K, epoch) complete-result cache and
	// singleflight map; see census.go. Entries of superseded epochs are
	// evicted on sight.
	censusMu      sync.Mutex
	censusFlights map[censusID]*censusFlight
	censusCache   map[censusID]*parsge.CensusResult
	censusHits    int64
	censusMisses  int64

	// est is the per-plan realized-cost EWMA the cost model feeds back
	// into; estMu guards the per-epoch cost-estimate cache behind it.
	est       estimator
	estMu     sync.Mutex
	estCache  map[estKey]parsge.CostEstimate
	estEpoch  uint64
	estHits   int64
	estMisses int64

	statMu          sync.Mutex
	queries         int64
	shared          int64
	sequential      int64
	parallel        int64
	census          int64
	updates         int64
	shedExplosive   int64
	deprioritized   int64
	mispredictSmall int64
	mispredictLarge int64

	closeMu sync.RWMutex
	closed  bool
	wg      sync.WaitGroup
}

// New builds a Service over cfg.Target.
func New(cfg Config) (*Service, error) {
	if cfg.Target == nil {
		return nil, fmt.Errorf("service: nil Target")
	}
	cfg = cfg.withDefaults()
	return newServiceWith(cfg, newAdmission(int64(cfg.Workers), cfg.MaxQueue), ""), nil
}

// newServiceWith builds a Service over an externally-owned admission —
// how a Router gives every target its own cache and singleflight state
// while all targets share one machine-wide worker budget, queueing
// under their own class.
func newServiceWith(cfg Config, adm *admission, cls string) *Service {
	return &Service{
		cfg:     cfg,
		tgt:     cfg.Target,
		cache:   newCache(cfg.CacheMaxMatches),
		adm:     adm,
		cls:     cls,
		flights: make(map[flightKey]*flight),
	}
}

// Target returns the underlying session.
func (s *Service) Target() *parsge.Target { return s.tgt }

// begin registers an in-flight request, refusing once draining started.
func (s *Service) begin() error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	s.wg.Add(1)
	return nil
}

// Close drains the service: new queries fail with ErrClosed, in-flight
// ones (streams included) are waited for until ctx fires. The Target is
// not touched — it may be shared with other services.
func (s *Service) Close(ctx context.Context) error {
	s.closeMu.Lock()
	s.closed = true
	s.closeMu.Unlock()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// canonBudget caps the individualization search of untrusted patterns:
// 4096 complete orderings is thousands of times what any real labeled
// pattern needs (refinement usually discretizes immediately) yet bounds
// a hostile highly-symmetric pattern — whose canonicalization is
// factorial and would otherwise pin a core before admission control —
// to milliseconds.
const canonBudget = 1 << 12

// validate normalizes a query and resolves its cache identity. An empty
// key marks the query uncacheable (its canonicalization exceeded
// canonBudget): it bypasses the cache and singleflight and just runs.
func (s *Service) validate(q Query) (sem parsge.Semantics, perm []int32, key string, err error) {
	if q.Pattern == nil {
		return 0, nil, "", fmt.Errorf("service: nil pattern")
	}
	if q.Options.Visit != nil {
		return 0, nil, "", fmt.Errorf("service: Options.Visit must be nil")
	}
	sem, err = s.tgt.ResolveSemantics(q.Options)
	if err != nil {
		return 0, nil, "", err
	}
	canon, perm, ok := graph.CanonicalFormBudget(q.Pattern, canonBudget)
	if !ok {
		return sem, nil, "", nil
	}
	return sem, perm, cacheKey(canon, sem, q.Options), nil
}

// prepared returns the options a query actually runs with: the service
// owns parallelism and result delivery, folds in DefaultTimeout, and
// clamps every timeout — client-supplied or defaulted — to MaxTimeout.
func (s *Service) prepared(opts parsge.Options, workers int) parsge.Options {
	opts.Workers = workers
	opts.Visit = nil
	if opts.Timeout == 0 {
		opts.Timeout = s.cfg.DefaultTimeout
	}
	if mt := s.cfg.MaxTimeout; mt > 0 && (opts.Timeout == 0 || opts.Timeout > mt) {
		opts.Timeout = mt
	}
	return opts
}

// Count serves a match-count query: cache, then singleflight, then an
// admission-controlled run.
func (s *Service) Count(ctx context.Context, q Query) (Reply, error) {
	return s.do(ctx, q, false)
}

// Enumerate serves a full-result query: like Count, plus the embeddings
// in the client pattern's numbering. Result sets can be exponential in
// the pattern size — set Options.Limit when serving untrusted patterns.
func (s *Service) Enumerate(ctx context.Context, q Query) (Reply, error) {
	return s.do(ctx, q, true)
}

func (s *Service) do(ctx context.Context, q Query, needMappings bool) (Reply, error) {
	if err := s.begin(); err != nil {
		return Reply{}, err
	}
	defer s.wg.Done()
	sem, perm, key, err := s.validate(q)
	if err != nil {
		return Reply{}, err
	}
	s.statMu.Lock()
	s.queries++
	s.statMu.Unlock()

	if key == "" {
		// Uncacheable (canonicalization over budget): no cache, no
		// singleflight — just an admission-controlled run.
		reply, _, err := s.runLeader(ctx, q, sem, perm, key, needMappings)
		return reply, err
	}

	// The retry loop: each turn either hits the cache, joins an
	// in-flight identical query, or becomes the leader and runs. A
	// waiter whose leader was truncated (timeout/cancel — nothing
	// cacheable) retries; after a few turns it stops deduplicating and
	// just runs, so one perpetually-timing-out leader cannot livelock
	// its followers. Every turn re-reads the target's mutation epoch:
	// cache entries from superseded epochs are misses (get evicts them),
	// and the singleflight key carries the epoch so a query arriving
	// after ApplyUpdates never latches onto a pre-update leader.
	for attempt := 0; ; attempt++ {
		epoch := s.tgt.Epoch()
		if ent, ok := s.cache.get(key, needMappings, epoch); ok {
			return s.replyFromEntry(ent, perm, needMappings, true, false), nil
		}
		if ctx.Err() != nil {
			return Reply{}, ctx.Err()
		}

		fkey := flightKey{key: key, needMappings: needMappings, epoch: epoch}
		s.flightMu.Lock()
		if f := s.flights[fkey]; f != nil && attempt < 3 {
			s.flightMu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return Reply{}, ctx.Err()
			}
			if f.err != nil && !errors.Is(f.err, context.Canceled) && !errors.Is(f.err, context.DeadlineExceeded) {
				// Deterministic for an identical query (validation,
				// overload backpressure): share it instead of stampeding.
				return Reply{}, f.err
			}
			if f.err == nil && f.ent != nil {
				s.statMu.Lock()
				s.shared++
				s.statMu.Unlock()
				return s.replyFromEntry(f.ent, perm, needMappings, false, true), nil
			}
			// The leader was truncated or its own context died — both
			// leader-specific outcomes, not verdicts on the query.
			// This waiter (whose context is checked at the loop top)
			// retries rather than failing a live client with someone
			// else's cancellation.
			continue
		}
		var f *flight
		if attempt < 3 {
			f = &flight{done: make(chan struct{})}
			s.flights[fkey] = f
		}
		s.flightMu.Unlock()

		reply, ent, err := s.runLeader(ctx, q, sem, perm, key, needMappings)
		if f != nil {
			s.flightMu.Lock()
			delete(s.flights, fkey)
			s.flightMu.Unlock()
			f.ent, f.err = ent, err
			close(f.done)
		}
		if err != nil {
			return Reply{}, err
		}
		return reply, nil
	}
}

// admit classifies q via the cost model, acquires its admission tokens,
// and counts the run. An explosive verdict under ExplosiveShed returns
// an *ExplosiveError without touching the token pool; under
// ExplosiveDeprioritize the query takes pool tokens through the
// low-priority tier. On success the caller runs with `workers`
// parallelism and must call release when the query (or stream) ends.
func (s *Service) admit(ctx context.Context, q Query, key string) (rec admitRecord, workers int, waited time.Duration, release func(), err error) {
	rec, err = s.classifyQuery(ctx, q, key)
	if err != nil {
		return rec, 0, 0, nil, err
	}
	need := int64(1)
	workers = 1
	low := false
	switch rec.class {
	case ClassLarge:
		need = int64(s.cfg.ParallelWorkers)
		workers = s.cfg.ParallelWorkers
	case ClassExplosive:
		if s.cfg.ExplosivePolicy == ExplosiveShed {
			s.statMu.Lock()
			s.shedExplosive++
			s.statMu.Unlock()
			return rec, 0, 0, nil, &ExplosiveError{
				Predicted:        rec.predicted,
				Plan:             rec.planKey,
				LogDomainProduct: rec.logProd,
			}
		}
		need = int64(s.cfg.ParallelWorkers)
		workers = s.cfg.ParallelWorkers
		low = true
	}
	waited, err = s.adm.acquire(ctx, s.cls, need, s.cfg.QueueTimeout, low)
	if err != nil {
		return rec, 0, waited, nil, err
	}
	s.statMu.Lock()
	switch {
	case low:
		s.deprioritized++
		s.parallel++
	case rec.class == ClassLarge:
		s.parallel++
	default:
		s.sequential++
	}
	s.statMu.Unlock()
	return rec, workers, waited, func() { s.adm.release(need) }, nil
}

// runLeader acquires admission and runs the query for real. On a
// complete (un-truncated) run it builds the canonical cache entry,
// caches it, and returns it for singleflight sharing.
func (s *Service) runLeader(ctx context.Context, q Query, sem parsge.Semantics, perm []int32, key string, needMappings bool) (Reply, *entry, error) {
	rec, workers, waited, release, err := s.admit(ctx, q, key)
	if err != nil {
		return Reply{}, nil, err
	}
	defer release()

	opts := s.prepared(q.Options, workers)
	var mu sync.Mutex
	var mappings [][]int32
	if needMappings {
		opts.Visit = func(m []int32) bool {
			cp := append([]int32(nil), m...)
			mu.Lock()
			mappings = append(mappings, cp)
			mu.Unlock()
			return true
		}
	}
	res, err := s.tgt.Enumerate(ctx, q.Pattern, opts)
	if err != nil {
		return Reply{}, nil, err
	}
	s.observe(rec, &res)
	reply := Reply{
		Result:        res,
		Mappings:      mappings,
		Large:         rec.class != ClassSmall,
		QueueWait:     waited,
		Class:         rec.class,
		ClassEpoch:    rec.epoch,
		PredictedCost: rec.predicted,
	}
	if res.TimedOut || key == "" {
		// Truncated (Matches is a lower bound) or uncacheable: correct
		// for this caller, but not a result identical queries may reuse.
		return reply, nil, nil
	}
	ent := &entry{key: key, res: res, epoch: res.Epoch}
	if needMappings {
		ent.hasMappings = true
		ent.mappings = make([][]int32, len(mappings))
		for i, m := range mappings {
			cm := make([]int32, len(m))
			for v, tv := range m {
				cm[perm[v]] = tv
			}
			ent.mappings[i] = cm
		}
	}
	s.cachePut(ent)
	return reply, ent, nil
}

// cachePut inserts an entry, stripping mappings beyond the per-entry cap
// (the count is still worth caching).
func (s *Service) cachePut(ent *entry) {
	if len(ent.mappings) > s.cfg.CacheMaxMappingsPerEntry {
		ent = &entry{key: ent.key, res: ent.res, epoch: ent.epoch}
	}
	s.cache.put(ent)
}

// cacheGetStream looks up a mapping-bearing entry for a stream replay;
// an uncacheable query (empty key) never consults the cache, so its
// counters only see real lookups.
func (s *Service) cacheGetStream(key string) (*entry, bool) {
	if key == "" {
		return nil, false
	}
	return s.cache.get(key, true, s.tgt.Epoch())
}

// replyFromEntry materializes a cached/shared entry for a client whose
// pattern has canonical permutation perm.
func (s *Service) replyFromEntry(ent *entry, perm []int32, needMappings, hit, shared bool) Reply {
	r := Reply{Result: ent.res, CacheHit: hit, Shared: shared}
	if needMappings {
		r.Mappings = make([][]int32, len(ent.mappings))
		for i, cm := range ent.mappings {
			r.Mappings[i] = translate(cm, perm)
		}
	}
	return r
}

// Stream serves a query as a live match stream: the matches channel
// closes when the enumeration finishes, then exactly one StreamEnd is
// delivered (Result.TimedOut reports truncation). A cache hit replays
// the cached result set; a miss runs admission-controlled like any other
// query, holding its tokens until the stream ends, and — when the stream
// completes un-truncated within the per-entry cap — populates the cache.
// Streams do not join singleflight (two streams would each need every
// match anyway). Cancelling ctx tears the stream down promptly; a
// disconnected client costs nothing beyond its context firing.
func (s *Service) Stream(ctx context.Context, q Query) (<-chan parsge.Match, <-chan parsge.StreamEnd, error) {
	if err := s.begin(); err != nil {
		return nil, nil, err
	}
	_, perm, key, err := s.validate(q)
	if err != nil {
		s.wg.Done()
		return nil, nil, err
	}
	s.statMu.Lock()
	s.queries++
	s.statMu.Unlock()

	matches := make(chan parsge.Match, 64)
	end := make(chan parsge.StreamEnd, 1)

	if ent, ok := s.cacheGetStream(key); ok {
		go func() {
			defer s.wg.Done()
			res := ent.res
			for _, cm := range ent.mappings {
				select {
				case matches <- parsge.Match{Mapping: translate(cm, perm)}:
					continue
				case <-ctx.Done():
					res.TimedOut = true
				}
				break
			}
			// The terminal send happens exactly once, outside the replay
			// loop — `end` is a one-shot buffered channel, so this can
			// never block a cancelled client (sgelint: ctxsend).
			close(matches)
			end <- parsge.StreamEnd{Result: res}
		}()
		return matches, end, nil
	}

	rec, workers, _, release, err := s.admit(ctx, q, key)
	if err != nil {
		s.wg.Done()
		return nil, nil, err
	}

	inner, innerEnd := s.tgt.EnumerateStreamResult(ctx, q.Pattern, s.prepared(q.Options, workers))
	go func() {
		defer s.wg.Done()
		defer release()
		var collected [][]int32
		overflow := key == "" // uncacheable: don't accumulate for the cache
		dead := false
		for m := range inner {
			if !overflow {
				if len(collected) >= s.cfg.CacheMaxMappingsPerEntry {
					overflow, collected = true, nil
				} else {
					cm := make([]int32, len(m.Mapping))
					for v, tv := range m.Mapping {
						cm[perm[v]] = tv
					}
					collected = append(collected, cm)
				}
			}
			if !dead {
				select {
				case matches <- m:
				case <-ctx.Done():
					dead = true // stop forwarding; the producer winds down on the same ctx
				}
			}
		}
		e := <-innerEnd
		if e.Err == nil {
			s.observe(rec, &e.Result)
		}
		close(matches)
		if e.Err == nil && !e.Result.TimedOut && !dead && key != "" {
			ent := &entry{key: key, res: e.Result, epoch: e.Result.Epoch}
			if !overflow {
				ent.hasMappings = true
				ent.mappings = collected
			}
			s.cache.put(ent)
		}
		end <- e
	}()
	return matches, end, nil
}

// Update applies a batch of edge mutations to the service's target
// (see parsge.Target.ApplyUpdates: batch-atomic, epoch-advancing).
// Queries already running finish on the snapshot they started with;
// queries arriving after Update returns see the new graph, and every
// cache entry of the superseded epoch dies on its next lookup — the
// service can never serve a pre-update result for a post-update query.
// The update takes one admission token, so mutation work queues behind
// the same budget as everything else.
func (s *Service) Update(ctx context.Context, updates []parsge.EdgeUpdate) (parsge.UpdateResult, error) {
	if err := s.begin(); err != nil {
		return parsge.UpdateResult{}, err
	}
	defer s.wg.Done()
	if _, err := s.adm.acquire(ctx, s.cls, 1, s.cfg.QueueTimeout, false); err != nil {
		return parsge.UpdateResult{}, err
	}
	defer s.adm.release(1)
	res, err := s.tgt.ApplyUpdates(ctx, updates)
	if err == nil {
		s.statMu.Lock()
		s.updates++
		s.statMu.Unlock()
	}
	return res, err
}

// Stats is a point-in-time snapshot of the service: its own serving
// counters plus the Target's session statistics (including the plan
// histogram of the adaptive preprocessing scheduler).
type Stats struct {
	// Queries counts every well-formed query the service took on —
	// cache hits included; malformed requests are rejected before
	// counting. Shared counts those served by a singleflight leader.
	Queries, Shared int64
	// Sequential and Parallel count admitted runs by class.
	Sequential, Parallel int64
	// Census counts census requests (a subset of Queries; every admitted
	// census run also counts as Parallel — census is always large).
	// CensusCacheHits and CensusCacheMisses are the per-K census cache
	// counters, separate from the pattern-result cache below.
	Census                             int64
	CensusCacheHits, CensusCacheMisses int64
	// Updates counts applied edge-update batches; Epoch is the target's
	// mutation epoch at snapshot time.
	Updates int64
	Epoch   uint64
	// Cache counters.
	CacheHits, CacheMisses, CacheEvictions int64
	CacheEntries                           int
	CacheCost                              int64
	// Admission counters: tokens in use now, queries queued now, total
	// grants, immediate sheds, queue-wait timeouts, summed queue wait.
	TokensInUse    int64
	Queued         int
	Granted        int64
	Shed           int64
	QueueTimeouts  int64
	TotalQueueWait time.Duration
	// Cost-model counters. ShedExplosive counts queries rejected with
	// ErrPredictedExplosive; Deprioritized those admitted through the
	// low-priority tier. MispredictSmall counts predicted-small queries
	// that timed out, MispredictLarge predicted-large/explosive ones
	// that finished under SmallBudget — the misprediction rate is
	// (MispredictSmall+MispredictLarge) over the model-classified runs.
	// EstimateHits/EstimateMisses are the cost-estimate cache counters.
	ShedExplosive   int64
	Deprioritized   int64
	MispredictSmall int64
	MispredictLarge int64
	EstimateHits    int64
	EstimateMisses  int64
	// Session aggregates everything the Target executed — for queries
	// answered from the cache no new execution happens, which is why
	// Session.Queries can be far below Queries under a hot cache.
	Session parsge.SessionStats
}

// Stats returns the current snapshot.
func (s *Service) Stats() Stats {
	entries, cost, hits, misses, evictions := s.cache.stats()
	inUse, queued, granted, shed, timedOut, totalWait := s.adm.load()
	s.censusMu.Lock()
	censusHits, censusMisses := s.censusHits, s.censusMisses
	s.censusMu.Unlock()
	s.estMu.Lock()
	estHits, estMisses := s.estHits, s.estMisses
	s.estMu.Unlock()
	s.statMu.Lock()
	st := Stats{
		Queries:           s.queries,
		Shared:            s.shared,
		Sequential:        s.sequential,
		Parallel:          s.parallel,
		Census:            s.census,
		CensusCacheHits:   censusHits,
		CensusCacheMisses: censusMisses,
		Updates:           s.updates,
		Epoch:             s.tgt.Epoch(),
		CacheHits:         hits,
		CacheMisses:       misses,
		CacheEvictions:    evictions,
		CacheEntries:      entries,
		CacheCost:         cost,
		TokensInUse:       inUse,
		Queued:            queued,
		Granted:           granted,
		Shed:              shed,
		QueueTimeouts:     timedOut,
		TotalQueueWait:    totalWait,
		ShedExplosive:     s.shedExplosive,
		Deprioritized:     s.deprioritized,
		MispredictSmall:   s.mispredictSmall,
		MispredictLarge:   s.mispredictLarge,
		EstimateHits:      estHits,
		EstimateMisses:    estMisses,
	}
	s.statMu.Unlock()
	st.Session = s.tgt.Stats()
	return st
}
