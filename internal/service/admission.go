package service

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"time"
)

// Admission errors. Both are load signals, not query failures: the
// client may retry (ideally with backoff), and sgeserve maps them to
// HTTP 503 / 504 so load balancers can react.
var (
	// ErrOverloaded reports the admission queue was full when the query
	// arrived: the service sheds it immediately rather than letting the
	// queue grow without bound.
	ErrOverloaded = errors.New("service: overloaded, query shed")
	// ErrQueueTimeout reports the query waited in the admission queue
	// longer than the configured bound without a slot freeing up.
	ErrQueueTimeout = errors.New("service: timed out waiting for admission")
)

// admission partitions a fixed worker budget across concurrent queries.
// A small query holds one token and runs the sequential engine; a large
// one holds several and gets the work-stealing parallel pool — so the
// machine is never oversubscribed: the sum of held tokens never exceeds
// the budget, whatever mix of query sizes is in flight.
//
// Waiting is FIFO with two overload valves: a queue-length bound (shed
// immediately once exceeded — ErrOverloaded) and a per-query wait bound
// (ErrQueueTimeout). FIFO means a large query at the head blocks smaller
// ones behind it until its tokens fit; that head-of-line blocking is
// deliberate — skipping ahead would starve large queries under a steady
// trickle of small ones.
type admission struct {
	mu       sync.Mutex
	capacity int64
	inUse    int64
	queue    *list.List // of *waiter, FIFO
	maxQueue int

	granted, shed, timedOut int64
	totalWait               time.Duration
}

type waiter struct {
	need    int64
	ready   chan struct{} // closed on grant, with w.granted set
	granted bool          // guarded by admission.mu
}

func newAdmission(capacity int64, maxQueue int) *admission {
	return &admission{capacity: capacity, maxQueue: maxQueue, queue: list.New()}
}

// acquire blocks until need tokens are granted, the context fires, the
// queue timeout elapses, or the queue is full on arrival. It returns the
// time spent waiting. need is clamped to the capacity by the caller.
func (a *admission) acquire(ctx context.Context, need int64, timeout time.Duration) (time.Duration, error) {
	a.mu.Lock()
	if a.queue.Len() == 0 && a.inUse+need <= a.capacity {
		a.inUse += need
		a.granted++
		a.mu.Unlock()
		return 0, nil
	}
	if a.queue.Len() >= a.maxQueue {
		a.shed++
		a.mu.Unlock()
		return 0, ErrOverloaded
	}
	w := &waiter{need: need, ready: make(chan struct{})}
	el := a.queue.PushBack(w)
	a.mu.Unlock()

	start := time.Now()
	var timeoutC <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timeoutC = t.C
	}
	select {
	case <-w.ready:
		waited := time.Since(start)
		a.mu.Lock()
		a.totalWait += waited
		a.mu.Unlock()
		return waited, nil
	case <-ctx.Done():
		a.abandon(el, w)
		return time.Since(start), ctx.Err()
	case <-timeoutC:
		a.abandon(el, w)
		a.mu.Lock()
		a.timedOut++
		a.mu.Unlock()
		return time.Since(start), ErrQueueTimeout
	}
}

// abandon removes an un-granted waiter from the queue. If the grant
// raced the abandonment (ready closed between the select firing and the
// lock being taken), the tokens are handed straight back.
func (a *admission) abandon(el *list.Element, w *waiter) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if w.granted {
		a.inUse -= w.need
		a.grantLocked()
		return
	}
	a.queue.Remove(el)
}

// release returns tokens and wakes queued waiters in FIFO order.
func (a *admission) release(need int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.inUse -= need
	a.grantLocked()
}

// grantLocked admits queue heads while their token demand fits.
func (a *admission) grantLocked() {
	for a.queue.Len() > 0 {
		w := a.queue.Front().Value.(*waiter)
		if a.inUse+w.need > a.capacity {
			return
		}
		a.queue.Remove(a.queue.Front())
		a.inUse += w.need
		a.granted++
		w.granted = true
		close(w.ready)
	}
}

// load returns a point-in-time view of the admission state.
func (a *admission) load() (inUse int64, queued int, granted, shed, timedOut int64, totalWait time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inUse, a.queue.Len(), a.granted, a.shed, a.timedOut, a.totalWait
}
