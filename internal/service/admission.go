package service

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"time"
)

// Admission errors. Both are load signals, not query failures: the
// client may retry (ideally with backoff), and sgeserve maps them to
// HTTP 503 / 504 so load balancers can react.
var (
	// ErrOverloaded reports the admission queue was full when the query
	// arrived: the service sheds it immediately rather than letting the
	// queue grow without bound.
	ErrOverloaded = errors.New("service: overloaded, query shed")
	// ErrQueueTimeout reports the query waited in the admission queue
	// longer than the configured bound without a slot freeing up.
	ErrQueueTimeout = errors.New("service: timed out waiting for admission")
)

// admission partitions a fixed worker budget across concurrent queries.
// A small query holds one token and runs the sequential engine; a large
// one holds several and gets the work-stealing parallel pool — so the
// machine is never oversubscribed: the sum of held tokens never exceeds
// the budget, whatever mix of query sizes is in flight.
//
// Waiters queue per *class* (a Router runs one class per target; a
// standalone Service uses a single class), FIFO within a class, and
// grants rotate round-robin across classes — so one target's request
// flood cannot starve its siblings: each release hands the next slot to
// the next class in rotation, head-of-queue first. With a single class
// the rotation is a no-op and the discipline is exactly plain FIFO.
//
// Two overload valves apply across all classes: a total queue-length
// bound (shed immediately once exceeded — ErrOverloaded) and a
// per-query wait bound (ErrQueueTimeout). Within the rotation, a head
// whose token demand does not fit freezes further grants until tokens
// free up: that head-of-line reservation is deliberate — skipping ahead
// would starve large queries under a steady trickle of small ones, and
// the rotation guarantees every class's head gets its turn as the
// frozen head.
type admission struct {
	mu       sync.Mutex
	capacity int64
	inUse    int64
	queues   map[string]*list.List // per class, of *waiter, FIFO
	order    []string              // round-robin rotation of classes with waiters
	rr       int                   // next rotation position to serve
	queued   int                   // total waiters across classes
	maxQueue int

	granted, shed, timedOut int64
	totalWait               time.Duration
}

type waiter struct {
	class   string
	need    int64
	ready   chan struct{} // closed on grant, with w.granted set
	granted bool          // guarded by admission.mu
}

func newAdmission(capacity int64, maxQueue int) *admission {
	return &admission{capacity: capacity, maxQueue: maxQueue, queues: make(map[string]*list.List)}
}

// acquire blocks until need tokens are granted, the context fires, the
// queue timeout elapses, or the queue is full on arrival. It returns the
// time spent waiting. need is clamped to the capacity by the caller.
func (a *admission) acquire(ctx context.Context, class string, need int64, timeout time.Duration) (time.Duration, error) {
	a.mu.Lock()
	if a.queued == 0 && a.inUse+need <= a.capacity {
		a.inUse += need
		a.granted++
		a.mu.Unlock()
		return 0, nil
	}
	if a.queued >= a.maxQueue {
		a.shed++
		a.mu.Unlock()
		return 0, ErrOverloaded
	}
	q := a.queues[class]
	if q == nil {
		q = list.New()
		a.queues[class] = q
	}
	if q.Len() == 0 {
		a.order = append(a.order, class)
	}
	w := &waiter{class: class, need: need, ready: make(chan struct{})}
	el := q.PushBack(w)
	a.queued++
	a.mu.Unlock()

	start := time.Now()
	var timeoutC <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timeoutC = t.C
	}
	select {
	case <-w.ready:
		waited := time.Since(start)
		a.mu.Lock()
		a.totalWait += waited
		a.mu.Unlock()
		return waited, nil
	case <-ctx.Done():
		a.abandon(el, w)
		return time.Since(start), ctx.Err()
	case <-timeoutC:
		a.abandon(el, w)
		a.mu.Lock()
		a.timedOut++
		a.mu.Unlock()
		return time.Since(start), ErrQueueTimeout
	}
}

// abandon removes an un-granted waiter from its class queue. If the
// grant raced the abandonment (ready closed between the select firing
// and the lock being taken), the tokens are handed straight back.
func (a *admission) abandon(el *list.Element, w *waiter) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if w.granted {
		a.inUse -= w.need
		a.grantLocked()
		return
	}
	q := a.queues[w.class]
	q.Remove(el)
	a.queued--
	if q.Len() == 0 {
		a.dropClassLocked(w.class)
	}
	// The abandoned waiter may have been the frozen head reserving
	// capacity; whoever is behind it may fit now.
	a.grantLocked()
}

// release returns tokens and wakes queued waiters.
func (a *admission) release(need int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.inUse -= need
	a.grantLocked()
}

// dropClassLocked removes an empty class from the rotation, keeping the
// rr position pointed at the same next class.
func (a *admission) dropClassLocked(class string) {
	for i, c := range a.order {
		if c != class {
			continue
		}
		a.order = append(a.order[:i], a.order[i+1:]...)
		if a.rr > i {
			a.rr--
		}
		if len(a.order) > 0 {
			a.rr %= len(a.order)
		} else {
			a.rr = 0
		}
		return
	}
}

// grantLocked admits class heads round-robin while their token demand
// fits; the first head that does not fit freezes further grants
// (capacity is reserved for it — see the type comment).
func (a *admission) grantLocked() {
	for a.queued > 0 {
		cls := a.order[a.rr%len(a.order)]
		q := a.queues[cls]
		w := q.Front().Value.(*waiter)
		if a.inUse+w.need > a.capacity {
			return
		}
		q.Remove(q.Front())
		a.queued--
		if q.Len() == 0 {
			a.dropClassLocked(cls)
		} else {
			a.rr = (a.rr + 1) % len(a.order)
		}
		a.inUse += w.need
		a.granted++
		w.granted = true
		close(w.ready)
	}
}

// load returns a point-in-time view of the admission state.
func (a *admission) load() (inUse int64, queued int, granted, shed, timedOut int64, totalWait time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inUse, a.queued, a.granted, a.shed, a.timedOut, a.totalWait
}
