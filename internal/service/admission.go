package service

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"time"
)

// Admission errors. Both are load signals, not query failures: the
// client may retry (ideally with backoff), and sgeserve maps them to
// HTTP 503 / 504 so load balancers can react.
var (
	// ErrOverloaded reports the admission queue was full when the query
	// arrived: the service sheds it immediately rather than letting the
	// queue grow without bound.
	ErrOverloaded = errors.New("service: overloaded, query shed")
	// ErrQueueTimeout reports the query waited in the admission queue
	// longer than the configured bound without a slot freeing up.
	ErrQueueTimeout = errors.New("service: timed out waiting for admission")
)

// queueSet is one priority tier of the admission queue: per-class FIFO
// queues with a round-robin rotation across the classes that currently
// have waiters. A Router runs one class per target; a standalone
// Service uses a single class, degenerating to plain FIFO.
type queueSet struct {
	queues map[string]*list.List // per class, of *waiter, FIFO
	order  []string              // round-robin rotation of classes with waiters
	rr     int                   // next rotation position to serve
	queued int                   // total waiters across classes
}

// push enqueues w at the back of its class queue, registering the class
// in the rotation when it was empty.
func (qs *queueSet) push(w *waiter) *list.Element {
	if qs.queues == nil {
		qs.queues = make(map[string]*list.List)
	}
	q := qs.queues[w.class]
	if q == nil {
		q = list.New()
		qs.queues[w.class] = q
	}
	if q.Len() == 0 {
		qs.order = append(qs.order, w.class)
	}
	el := q.PushBack(w)
	qs.queued++
	return el
}

// remove unlinks an un-granted waiter from its class queue.
func (qs *queueSet) remove(el *list.Element, w *waiter) {
	q := qs.queues[w.class]
	q.Remove(el)
	qs.queued--
	if q.Len() == 0 {
		qs.dropClass(w.class)
	}
}

// dropClass removes an empty class from the rotation, keeping the rr
// position pointed at the same next class.
func (qs *queueSet) dropClass(class string) {
	for i, c := range qs.order {
		if c != class {
			continue
		}
		qs.order = append(qs.order[:i], qs.order[i+1:]...)
		if qs.rr > i {
			qs.rr--
		}
		if len(qs.order) > 0 {
			qs.rr %= len(qs.order)
		} else {
			qs.rr = 0
		}
		return
	}
}

// admission partitions a fixed worker budget across concurrent queries.
// A small query holds one token and runs the sequential engine; a large
// one holds several and gets the work-stealing parallel pool — so the
// machine is never oversubscribed: the sum of held tokens never exceeds
// the budget, whatever mix of query sizes is in flight.
//
// Waiters queue per *class* (a Router runs one class per target; a
// standalone Service uses a single class), FIFO within a class, and
// grants rotate round-robin across classes — so one target's request
// flood cannot starve its siblings: each release hands the next slot to
// the next class in rotation, head-of-queue first. With a single class
// the rotation is a no-op and the discipline is exactly plain FIFO.
//
// There are two priority tiers: the normal tier, and a low tier behind
// it for queries the cost model predicted explosive but chose to
// deprioritize rather than shed (ExplosiveDeprioritize). Priority is
// strict — a low waiter is granted only when the normal tier is empty —
// so a steady stream of normal traffic can hold low waiters back
// indefinitely; the per-query wait bound (ErrQueueTimeout) is what
// keeps a deprioritized query from waiting forever.
//
// Two overload valves apply across all classes and both tiers: a total
// queue-length bound (shed immediately once exceeded — ErrOverloaded)
// and a per-query wait bound (ErrQueueTimeout). Within a tier's
// rotation, a head whose token demand does not fit freezes further
// grants until tokens free up: that head-of-line reservation is
// deliberate — skipping ahead would starve large queries under a steady
// trickle of small ones, and the rotation guarantees every class's head
// gets its turn as the frozen head. A frozen normal head also blocks
// the low tier (its reservation holds against lower-priority work by
// construction).
type admission struct {
	mu       sync.Mutex
	capacity int64
	inUse    int64
	normal   queueSet
	low      queueSet
	maxQueue int

	granted, shed, timedOut int64
	totalWait               time.Duration
}

type waiter struct {
	class   string
	need    int64
	low     bool          // queued in the low-priority tier
	ready   chan struct{} // closed on grant, with w.granted set
	granted bool          // guarded by admission.mu
}

func newAdmission(capacity int64, maxQueue int) *admission {
	return &admission{capacity: capacity, maxQueue: maxQueue}
}

// acquire blocks until need tokens are granted, the context fires, the
// queue timeout elapses, or the queue is full on arrival. It returns the
// time spent waiting. need is clamped to the capacity by the caller.
// low queues the waiter in the low-priority tier, behind all normal
// traffic.
func (a *admission) acquire(ctx context.Context, class string, need int64, timeout time.Duration, low bool) (time.Duration, error) {
	a.mu.Lock()
	if a.normal.queued == 0 && (!low || a.low.queued == 0) && a.inUse+need <= a.capacity {
		a.inUse += need
		a.granted++
		a.mu.Unlock()
		return 0, nil
	}
	if a.normal.queued+a.low.queued >= a.maxQueue {
		a.shed++
		a.mu.Unlock()
		return 0, ErrOverloaded
	}
	w := &waiter{class: class, need: need, low: low, ready: make(chan struct{})}
	var el *list.Element
	if low {
		el = a.low.push(w)
	} else {
		el = a.normal.push(w)
	}
	a.mu.Unlock()

	start := time.Now()
	var timeoutC <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timeoutC = t.C
	}
	select {
	case <-w.ready:
		waited := time.Since(start)
		a.mu.Lock()
		a.totalWait += waited
		a.mu.Unlock()
		return waited, nil
	case <-ctx.Done():
		a.abandon(el, w)
		return time.Since(start), ctx.Err()
	case <-timeoutC:
		a.abandon(el, w)
		a.mu.Lock()
		a.timedOut++
		a.mu.Unlock()
		return time.Since(start), ErrQueueTimeout
	}
}

// abandon removes an un-granted waiter from its tier's class queue. If
// the grant raced the abandonment (ready closed between the select
// firing and the lock being taken), the tokens are handed straight back.
func (a *admission) abandon(el *list.Element, w *waiter) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if w.granted {
		a.inUse -= w.need
		a.grantLocked()
		return
	}
	if w.low {
		a.low.remove(el, w)
	} else {
		a.normal.remove(el, w)
	}
	// The abandoned waiter may have been the frozen head reserving
	// capacity; whoever is behind it may fit now.
	a.grantLocked()
}

// release returns tokens and wakes queued waiters.
func (a *admission) release(need int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.inUse -= need
	a.grantLocked()
}

// grantLocked admits waiters while tokens fit: the normal tier's class
// heads round-robin first, then — only once the normal tier is empty —
// the low tier's. The first head that does not fit freezes further
// grants in both tiers (capacity is reserved for it — see the type
// comment).
func (a *admission) grantLocked() {
	if !a.grantFromLocked(&a.normal) {
		return // frozen normal head reserves capacity against low too
	}
	a.grantFromLocked(&a.low)
}

// grantFromLocked admits the tier's class heads round-robin while their
// token demand fits. It returns false when it stopped on a head that
// did not fit (the tier still has waiters and capacity is reserved),
// true when the tier drained.
func (a *admission) grantFromLocked(qs *queueSet) bool {
	for qs.queued > 0 {
		cls := qs.order[qs.rr%len(qs.order)]
		q := qs.queues[cls]
		w := q.Front().Value.(*waiter)
		if a.inUse+w.need > a.capacity {
			return false
		}
		q.Remove(q.Front())
		qs.queued--
		if q.Len() == 0 {
			qs.dropClass(cls)
		} else {
			qs.rr = (qs.rr + 1) % len(qs.order)
		}
		a.inUse += w.need
		a.granted++
		w.granted = true
		close(w.ready)
	}
	return true
}

// load returns a point-in-time view of the admission state.
func (a *admission) load() (inUse int64, queued int, granted, shed, timedOut int64, totalWait time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inUse, a.normal.queued + a.low.queued, a.granted, a.shed, a.timedOut, a.totalWait
}
