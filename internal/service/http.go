package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"parsge"
	"parsge/internal/graphio"
)

// Server exposes a Service — or a multi-target Router — over HTTP with
// a small JSON API:
//
//	POST /query                  — submit a pattern; count, enumerate, or stream matches
//	POST /census                 — motif census of the target
//	POST /targets/{name}/query   — the same, against a named router target
//	POST /targets/{name}/census
//	POST /targets/{name}/update  — apply an edge-update batch to a named target
//	GET  /healthz                — liveness; 503 once draining
//	GET  /stats                  — the Stats snapshot, plan histogram included
//
// The single-target endpoints exist on a NewServer server; the
// /targets/{name}/ tree on a NewRouterServer server (whose /stats lists
// every hosted target with its mutation epoch).
//
// The query body is JSON: {"pattern": "<graph section in the GFF text
// format>", "semantics": "iso"|"induced"|"hom", "algorithm": "auto"|...,
// "limit": n, "timeout_ms": n, "mappings": bool, "stream": bool}.
// Non-stream replies are one JSON object; stream replies are NDJSON —
// one {"mapping": [...]} line per match, then a terminal
// {"done": true, ...} line. A client that disconnects mid-stream tears
// the enumeration down through the request context.
//
// The update body is JSON: {"updates": [{"from": u, "to": v, "label":
// "x", "remove": bool}, ...]} — one batch, applied atomically (see
// parsge.Target.ApplyUpdates); the reply carries the new epoch.
//
// Pattern and update labels are interned into the server's label table
// (shared with the target graph so equal label strings compare equal);
// the table is guarded here because graphio tables are not safe for
// concurrent interning.
type Server struct {
	svc     *Service
	router  *Router
	table   *graphio.LabelTable
	tableMu sync.Mutex
	mux     *http.ServeMux

	// MaxPatternNodes rejects absurd patterns at parse time (pattern
	// searches are exponential in pattern size). Default 64. Hostile
	// *symmetric* patterns within this bound are defused separately:
	// canonicalization runs under a cost budget and a pattern exceeding
	// it is simply served uncached (see Service.validate).
	MaxPatternNodes int

	// MaxUpdateBatch bounds the updates accepted in one POST .../update
	// body. Default 65536.
	MaxUpdateBatch int

	draining atomic.Bool
}

// NewServer wraps svc. table must be the label table the target graph
// was read with (a fresh table is only correct for label-free use).
func NewServer(svc *Service, table *graphio.LabelTable) *Server {
	h := newServer(svc, nil, table)
	h.mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) { h.handleQuery(w, r, svc) })
	h.mux.HandleFunc("POST /census", func(w http.ResponseWriter, r *http.Request) { h.handleCensus(w, r, svc) })
	return h
}

// NewRouterServer wraps a multi-target router: every hosted target is
// served under /targets/{name}/, and /stats reports the router
// snapshot. table must be the label table the target graphs were read
// with.
func NewRouterServer(router *Router, table *graphio.LabelTable) *Server {
	h := newServer(nil, router, table)
	resolve := func(w http.ResponseWriter, r *http.Request) *Service {
		svc, err := router.route(r.PathValue("name"))
		if err != nil {
			code := http.StatusNotFound
			if !errors.Is(err, ErrUnknownTarget) {
				code = errorCode(err)
			}
			httpError(w, code, err)
			return nil
		}
		return svc
	}
	h.mux.HandleFunc("POST /targets/{name}/query", func(w http.ResponseWriter, r *http.Request) {
		if svc := resolve(w, r); svc != nil {
			h.handleQuery(w, r, svc)
		}
	})
	h.mux.HandleFunc("POST /targets/{name}/census", func(w http.ResponseWriter, r *http.Request) {
		if svc := resolve(w, r); svc != nil {
			h.handleCensus(w, r, svc)
		}
	})
	h.mux.HandleFunc("POST /targets/{name}/update", func(w http.ResponseWriter, r *http.Request) {
		if svc := resolve(w, r); svc != nil {
			h.handleUpdate(w, r, svc)
		}
	})
	return h
}

func newServer(svc *Service, router *Router, table *graphio.LabelTable) *Server {
	if table == nil {
		table = graphio.NewLabelTable()
	}
	h := &Server{svc: svc, router: router, table: table, MaxPatternNodes: 64, MaxUpdateBatch: 1 << 16}
	h.mux = http.NewServeMux()
	h.mux.HandleFunc("GET /healthz", h.handleHealthz)
	h.mux.HandleFunc("GET /stats", h.handleStats)
	return h
}

func (h *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

// StartDrain flips the server to draining: /healthz turns 503 so load
// balancers stop routing here, and new queries are refused while
// in-flight ones finish (the http.Server.Shutdown the caller runs next
// waits for those).
func (h *Server) StartDrain() { h.draining.Store(true) }

type queryRequest struct {
	Pattern   string `json:"pattern"`
	Semantics string `json:"semantics,omitempty"`
	Algorithm string `json:"algorithm,omitempty"`
	Limit     int64  `json:"limit,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
	Mappings  bool   `json:"mappings,omitempty"`
	Stream    bool   `json:"stream,omitempty"`
}

type queryResponse struct {
	Matches       int64   `json:"matches"`
	Epoch         uint64  `json:"epoch"`
	States        int64   `json:"states"`
	Truncated     bool    `json:"truncated,omitempty"`
	Unsatisfiable bool    `json:"unsatisfiable,omitempty"`
	CacheHit      bool    `json:"cache_hit"`
	Shared        bool    `json:"shared,omitempty"`
	Large         bool    `json:"large,omitempty"`
	QueueWaitMS   float64 `json:"queue_wait_ms"`
	PreprocMS     float64 `json:"preproc_ms"`
	MatchMS       float64 `json:"match_ms"`
	Plan          string  `json:"plan,omitempty"`
	// Class is the cost model's admission verdict ("small", "large",
	// "explosive"; empty for cache hits and singleflight followers),
	// ClassEpoch the target epoch the decision was pinned at, and
	// PredictedMS the model's cost estimate when plan history backed one.
	Class       string    `json:"class,omitempty"`
	ClassEpoch  uint64    `json:"class_epoch,omitempty"`
	PredictedMS float64   `json:"predicted_ms,omitempty"`
	Mappings    [][]int32 `json:"mappings,omitempty"`
}

// streamLine is one NDJSON line of a streaming reply. The terminal
// (done) line carries the epoch the stream executed against.
type streamLine struct {
	Mapping   []int32 `json:"mapping,omitempty"`
	Done      bool    `json:"done,omitempty"`
	Matches   int64   `json:"matches,omitempty"`
	Epoch     uint64  `json:"epoch,omitempty"`
	Truncated bool    `json:"truncated,omitempty"`
	Error     string  `json:"error,omitempty"`
}

func parseSemantics(s string) (parsge.Semantics, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "":
		return parsge.SemanticsUnset, nil
	case "iso", "subgraph-iso":
		return parsge.SubgraphIso, nil
	case "induced", "induced-iso":
		return parsge.InducedIso, nil
	case "hom", "homomorphism":
		return parsge.Homomorphism, nil
	default:
		return 0, fmt.Errorf("unknown semantics %q", s)
	}
}

func parseAlgorithm(s string) (parsge.Algorithm, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return parsge.Auto, nil
	case "ri":
		return parsge.RI, nil
	case "rids", "ri-ds":
		return parsge.RIDS, nil
	case "ridssi", "ri-ds-si":
		return parsge.RIDSSI, nil
	case "ridssifc", "ri-ds-si-fc":
		return parsge.RIDSSIFC, nil
	case "vf2":
		return parsge.VF2, nil
	case "lad":
		return parsge.LAD, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", s)
	}
}

// parsePattern reads the first graph section from the request text,
// interning labels into the shared table under the table lock.
func (h *Server) parsePattern(text string) (*parsge.Graph, error) {
	h.tableMu.Lock()
	defer h.tableMu.Unlock()
	graphs, err := parsge.ReadGraphs(strings.NewReader(text), h.table)
	if err != nil {
		return nil, err
	}
	if len(graphs) == 0 {
		return nil, fmt.Errorf("no graph section in pattern")
	}
	return graphs[0].Graph, nil
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// errorCode maps service errors to HTTP statuses: overload signals get
// retryable 5xx codes, a cost-model shed is 429 (retry later, smaller,
// or with a longer budget), everything else is the client's fault.
func errorCode(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrQueueTimeout):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrPredictedExplosive):
		return http.StatusTooManyRequests
	default:
		return http.StatusBadRequest
	}
}

// queryError writes a query-path error reply. A cost-model shed gets a
// Retry-After header and a body carrying the estimate that triggered it,
// so clients can back off proportionally instead of blind-retrying.
func queryError(w http.ResponseWriter, err error) {
	var ex *ExplosiveError
	if errors.As(err, &ex) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(map[string]any{
			"error":              err.Error(),
			"predicted_ms":       float64(ex.Predicted) / float64(time.Millisecond),
			"plan":               ex.Plan,
			"log_domain_product": ex.LogDomainProduct,
		})
		return
	}
	httpError(w, errorCode(err), err)
}

func (h *Server) handleQuery(w http.ResponseWriter, r *http.Request, svc *Service) {
	if h.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, errors.New("draining"))
		return
	}
	var req queryRequest
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	pattern, err := h.parsePattern(req.Pattern)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad pattern: %w", err))
		return
	}
	if pattern.NumNodes() > h.MaxPatternNodes {
		httpError(w, http.StatusBadRequest, fmt.Errorf("pattern has %d nodes, limit %d", pattern.NumNodes(), h.MaxPatternNodes))
		return
	}
	sem, err := parseSemantics(req.Semantics)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	alg, err := parseAlgorithm(req.Algorithm)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	q := Query{Pattern: pattern, Options: parsge.Options{
		Semantics: sem,
		Algorithm: alg,
		Limit:     req.Limit,
		Timeout:   time.Duration(req.TimeoutMS) * time.Millisecond,
	}}

	if req.Stream {
		h.streamQuery(w, r, q, svc)
		return
	}
	var reply Reply
	if req.Mappings {
		reply, err = svc.Enumerate(r.Context(), q)
	} else {
		reply, err = svc.Count(r.Context(), q)
	}
	if err != nil {
		queryError(w, err)
		return
	}
	resp := queryResponse{
		Matches:       reply.Result.Matches,
		Epoch:         reply.Result.Epoch,
		States:        reply.Result.States,
		Truncated:     reply.Result.TimedOut,
		Unsatisfiable: reply.Result.Unsatisfiable,
		CacheHit:      reply.CacheHit,
		Shared:        reply.Shared,
		Large:         reply.Large,
		QueueWaitMS:   float64(reply.QueueWait) / float64(time.Millisecond),
		PreprocMS:     float64(reply.Result.PreprocTime) / float64(time.Millisecond),
		MatchMS:       float64(reply.Result.MatchTime) / float64(time.Millisecond),
		Plan:          reply.Result.Plan.String(),
		Class:         reply.Class.String(),
		ClassEpoch:    reply.ClassEpoch,
		PredictedMS:   float64(reply.PredictedCost) / float64(time.Millisecond),
		Mappings:      reply.Mappings,
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// streamQuery writes matches as NDJSON as they arrive. The request
// context tears the enumeration down when the client disconnects: the
// service stream unblocks on ctx, releases its admission tokens, and the
// handler returns — the regression tests count goroutines to hold this.
func (h *Server) streamQuery(w http.ResponseWriter, r *http.Request, q Query, svc *Service) {
	matches, end, err := svc.Stream(r.Context(), q)
	if err != nil {
		queryError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for m := range matches {
		if err := enc.Encode(streamLine{Mapping: m.Mapping}); err != nil {
			// Client gone: the ResponseWriter is dead, but the request
			// context will cancel and the service winds the stream down;
			// keep draining so we deliver the end event exactly once.
			break
		}
		// Adaptive flush: when more matches are already queued, batch
		// them into one write; when the producer is trickling (a hard
		// instance finding matches slowly), every match reaches the
		// client immediately instead of sitting in the response buffer.
		if flusher != nil && len(matches) == 0 {
			flusher.Flush()
		}
	}
	for range matches {
		// Drain after a write error so the producer never blocks on us
		// longer than its context allows.
	}
	e := <-end
	line := streamLine{Done: true, Matches: e.Result.Matches, Epoch: e.Result.Epoch, Truncated: e.Result.TimedOut}
	if e.Err != nil {
		line.Error = e.Err.Error()
	}
	enc.Encode(line)
	if flusher != nil {
		flusher.Flush()
	}
}

// censusRequest is the POST /census body: {"k": 4, "timeout_ms": n,
// "top": n}. top caps the classes returned (default 32, -1 = all); the
// full class total and subgraph count are always reported.
type censusRequest struct {
	K         int   `json:"k"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	Top       int   `json:"top,omitempty"`
}

// censusClassJSON is one isomorphism class of a census reply: the count,
// the class identity (the canonical hash, rendered hex), the shape, and
// the representative pattern as a GFF text section — directly
// resubmittable to POST /query.
type censusClassJSON struct {
	Count   int64  `json:"count"`
	ID      string `json:"id"`
	Nodes   int    `json:"nodes"`
	Edges   int    `json:"edges"`
	Pattern string `json:"pattern"`
}

type censusResponse struct {
	K            int               `json:"k"`
	Epoch        uint64            `json:"epoch"`
	Subgraphs    int64             `json:"subgraphs"`
	ClassesTotal int               `json:"classes_total"`
	Classes      []censusClassJSON `json:"classes"`
	ClassesShown int               `json:"classes_shown"`
	Truncated    bool              `json:"truncated,omitempty"`
	CacheHit     bool              `json:"cache_hit"`
	Shared       bool              `json:"shared,omitempty"`
	QueueWaitMS  float64           `json:"queue_wait_ms"`
	ElapsedMS    float64           `json:"elapsed_ms"`
	MemoHits     int64             `json:"memo_hits"`
	MemoMisses   int64             `json:"memo_misses"`
}

func (h *Server) handleCensus(w http.ResponseWriter, r *http.Request, svc *Service) {
	if h.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, errors.New("draining"))
		return
	}
	var req censusRequest
	r.Body = http.MaxBytesReader(w, r.Body, 1<<16)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.K < parsge.MinCensusK || req.K > parsge.MaxCensusK {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("k must be in [%d, %d], got %d", parsge.MinCensusK, parsge.MaxCensusK, req.K))
		return
	}
	reply, err := svc.Census(r.Context(), CensusRequest{
		K:       req.K,
		Timeout: time.Duration(req.TimeoutMS) * time.Millisecond,
	})
	if err != nil {
		httpError(w, errorCode(err), err)
		return
	}
	res := reply.Result
	top := req.Top
	if top == 0 {
		top = 32
	}
	shown := res.Classes
	if top > 0 && len(shown) > top {
		shown = shown[:top]
	}
	resp := censusResponse{
		K:            res.K,
		Epoch:        res.Epoch,
		Subgraphs:    res.Subgraphs,
		ClassesTotal: len(res.Classes),
		Classes:      make([]censusClassJSON, len(shown)),
		ClassesShown: len(shown),
		Truncated:    res.TimedOut,
		CacheHit:     reply.CacheHit,
		Shared:       reply.Shared,
		QueueWaitMS:  float64(reply.QueueWait) / float64(time.Millisecond),
		ElapsedMS:    float64(res.Duration) / float64(time.Millisecond),
		MemoHits:     res.MemoHits,
		MemoMisses:   res.MemoMisses,
	}
	for i, c := range shown {
		resp.Classes[i] = censusClassJSON{
			Count:   c.Count,
			ID:      fmt.Sprintf("%016x", c.Hash),
			Nodes:   c.Pattern.NumNodes(),
			Edges:   c.Pattern.NumEdges(),
			Pattern: h.renderPattern(i, c.Pattern),
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// renderPattern serializes a census representative as a GFF section
// under the table lock (label lookups share the interning table with
// pattern parsing).
func (h *Server) renderPattern(i int, g *parsge.Graph) string {
	var b strings.Builder
	h.tableMu.Lock()
	err := graphio.Write(&b, fmt.Sprintf("motif-%d", i), g, h.table)
	h.tableMu.Unlock()
	if err != nil {
		return ""
	}
	return b.String()
}

func (h *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if h.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"status": "draining"})
		return
	}
	json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
}

func (h *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if h.router != nil {
		json.NewEncoder(w).Encode(h.router.Stats())
		return
	}
	json.NewEncoder(w).Encode(h.svc.Stats())
}

// updateRequest is the POST /targets/{name}/update body. Labels are
// strings interned into the shared table; an empty or omitted label is
// the unlabeled-graph label.
type updateRequest struct {
	Updates []struct {
		From   int32  `json:"from"`
		To     int32  `json:"to"`
		Label  string `json:"label,omitempty"`
		Remove bool   `json:"remove,omitempty"`
	} `json:"updates"`
}

type updateResponse struct {
	Epoch           uint64  `json:"epoch"`
	Applied         int     `json:"applied"`
	NoOps           int     `json:"noops"`
	TouchedVertices int     `json:"touched_vertices"`
	ElapsedMS       float64 `json:"elapsed_ms"`
}

func (h *Server) handleUpdate(w http.ResponseWriter, r *http.Request, svc *Service) {
	if h.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, errors.New("draining"))
		return
	}
	var req updateRequest
	r.Body = http.MaxBytesReader(w, r.Body, 8<<20)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Updates) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("empty update batch"))
		return
	}
	if len(req.Updates) > h.MaxUpdateBatch {
		httpError(w, http.StatusBadRequest, fmt.Errorf("batch has %d updates, limit %d", len(req.Updates), h.MaxUpdateBatch))
		return
	}
	ups := make([]parsge.EdgeUpdate, len(req.Updates))
	h.tableMu.Lock()
	for i, u := range req.Updates {
		lab := parsge.Label(0)
		if u.Label != "" {
			lab = h.table.Intern(u.Label)
		}
		ups[i] = parsge.EdgeUpdate{From: u.From, To: u.To, Label: lab, Remove: u.Remove}
	}
	h.tableMu.Unlock()
	res, err := svc.Update(r.Context(), ups)
	if err != nil {
		httpError(w, errorCode(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(updateResponse{
		Epoch:           res.Epoch,
		Applied:         res.Applied,
		NoOps:           res.NoOps,
		TouchedVertices: res.TouchedVertices,
		ElapsedMS:       float64(res.Duration) / float64(time.Millisecond),
	})
}
