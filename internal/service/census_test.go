package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"parsge"
	"parsge/internal/testutil"
)

// censusOracle compares a service census result against the brute-force
// oracle on the soak world's target.
func censusOracle(t *testing.T, w *soakWorld, res parsge.CensusResult, k int) {
	t.Helper()
	total, classes := testutil.BruteCensus(w.gt, k)
	if res.TimedOut {
		t.Fatalf("k=%d: census truncated without cancellation", k)
	}
	if res.Subgraphs != total {
		t.Fatalf("k=%d: %d subgraphs, oracle %d", k, res.Subgraphs, total)
	}
	if len(res.Classes) != len(classes) {
		t.Fatalf("k=%d: %d classes, oracle %d", k, len(res.Classes), len(classes))
	}
	for _, c := range res.Classes {
		if classes[string(c.Encoding)] != c.Count {
			t.Fatalf("k=%d: class count %d, oracle %d", k, c.Count, classes[string(c.Encoding)])
		}
	}
}

// TestServiceCensus: the census path end to end — oracle-correct
// counts, the per-K cache, and the admission counters.
func TestServiceCensus(t *testing.T) {
	w := buildSoakWorld(t, 91)
	svc, err := New(Config{Target: w.tgt, Workers: 4, ParallelWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	reply, err := svc.Census(ctx, CensusRequest{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if reply.CacheHit || reply.Shared {
		t.Fatal("first census reported cached/shared")
	}
	censusOracle(t, w, reply.Result, 3)

	again, err := svc.Census(ctx, CensusRequest{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Fatal("second identical census missed the cache")
	}
	if again.Result.Subgraphs != reply.Result.Subgraphs {
		t.Fatal("cached census differs from the original")
	}

	// A different K is its own entry.
	r4, err := svc.Census(ctx, CensusRequest{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r4.CacheHit {
		t.Fatal("census at a new K reported a cache hit")
	}
	censusOracle(t, w, r4.Result, 4)

	st := svc.Stats()
	if st.Census != 3 {
		t.Fatalf("Stats.Census = %d, want 3", st.Census)
	}
	if st.Parallel != 2 {
		t.Fatalf("Stats.Parallel = %d, want 2 (census is always large)", st.Parallel)
	}
	if st.CensusCacheHits != 1 || st.CensusCacheMisses != 2 {
		t.Fatalf("census cache hits/misses = %d/%d, want 1/2", st.CensusCacheHits, st.CensusCacheMisses)
	}
	// The runs landed in the plan histogram funnel.
	if b := st.Session.Plans.Bucket("census:k=3"); b.Count != 1 {
		t.Fatalf("plan bucket census:k=3 count %d, want 1", b.Count)
	}
	if b := st.Session.Plans.Bucket("census:k=4"); b.Count != 1 {
		t.Fatalf("plan bucket census:k=4 count %d, want 1", b.Count)
	}
}

// TestServiceCensusSingleflight: concurrent identical censuses run once
// and share; followers report Shared or CacheHit, never a second run.
func TestServiceCensusSingleflight(t *testing.T) {
	w := buildSoakWorld(t, 92)
	svc, err := New(Config{Target: w.tgt, Workers: 4, ParallelWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	const clients = 8
	var wg sync.WaitGroup
	replies := make([]CensusReply, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			replies[i], errs[i] = svc.Census(context.Background(), CensusRequest{K: 4})
		}(i)
	}
	wg.Wait()
	leaders := 0
	for i := range replies {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		censusOracle(t, w, replies[i].Result, 4)
		if !replies[i].CacheHit && !replies[i].Shared {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders ran, want 1", leaders)
	}
	if st := svc.Stats(); st.Parallel != 1 {
		t.Fatalf("Stats.Parallel = %d, want 1 (one admitted run)", st.Parallel)
	}
}

// TestServiceCensusValidationAndClose: bad K is rejected; a draining
// service refuses censuses with ErrClosed.
func TestServiceCensusValidationAndClose(t *testing.T) {
	w := buildSoakWorld(t, 93)
	svc, err := New(Config{Target: w.tgt})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 1, 7, -2} {
		if _, err := svc.Census(context.Background(), CensusRequest{K: k}); err == nil {
			t.Errorf("K=%d accepted", k)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Census(context.Background(), CensusRequest{K: 3}); err != ErrClosed {
		t.Fatalf("census after Close: %v, want ErrClosed", err)
	}
}

// TestServiceCensusCancelled: a truncated census is returned to its
// caller but never cached.
func TestServiceCensusCancelled(t *testing.T) {
	w := buildSoakWorld(t, 94)
	svc, err := New(Config{Target: w.tgt})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reply, err := svc.Census(ctx, CensusRequest{K: 4})
	if err != nil {
		// ctx.Err() surfacing directly is also acceptable here.
		if ctx.Err() == nil {
			t.Fatal(err)
		}
	} else if !reply.Result.TimedOut {
		t.Fatal("census under a cancelled context reported complete")
	}
	if res := svc.censusGet(censusID{k: 4, epoch: 0}); res != nil {
		t.Fatal("truncated census was cached")
	}
}

// TestHTTPCensus: the /census endpoint end to end — counts held to the
// oracle, representatives resubmittable as /query patterns, the cache
// hit on the second request, and the error statuses.
func TestHTTPCensus(t *testing.T) {
	w := buildSoakWorld(t, 95)
	svc, err := New(Config{Target: w.tgt})
	if err != nil {
		t.Fatal(err)
	}
	table := identityTable(w.gt)
	handler := NewServer(svc, table)
	ts := httptest.NewServer(handler)
	defer ts.Close()

	post := func(body map[string]any) *http.Response {
		t.Helper()
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/census", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	var rec censusResponse
	resp := post(map[string]any{"k": 3, "top": -1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("census: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	total, classes := testutil.BruteCensus(w.gt, 3)
	if rec.Subgraphs != total || rec.ClassesTotal != len(classes) {
		t.Fatalf("census: %d subgraphs in %d classes, oracle %d in %d",
			rec.Subgraphs, rec.ClassesTotal, total, len(classes))
	}
	var sum int64
	for _, c := range rec.Classes {
		sum += c.Count
	}
	if sum != total {
		t.Fatalf("class counts sum to %d, want %d", sum, total)
	}

	// Each representative is a valid GFF pattern; resubmitted under
	// induced semantics it must find at least its counted occurrences.
	c0 := rec.Classes[0]
	if c0.Pattern == "" || !strings.Contains(c0.Pattern, "#motif-0") {
		t.Fatalf("representative pattern not serialized: %q", c0.Pattern)
	}
	qresp, err := postQuery(t, ts.URL, map[string]any{"pattern": c0.Pattern, "semantics": "induced"})
	if err != nil {
		t.Fatal(err)
	}
	var qrec struct {
		Matches int64 `json:"matches"`
	}
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("resubmitted representative: %s", qresp.Status)
	}
	if err := json.NewDecoder(qresp.Body).Decode(&qrec); err != nil {
		t.Fatal(err)
	}
	qresp.Body.Close()
	if qrec.Matches < c0.Count {
		t.Fatalf("representative matched %d times, census counted %d", qrec.Matches, c0.Count)
	}

	// Second request: served from the census cache.
	resp = post(map[string]any{"k": 3})
	var rec2 censusResponse
	if err := json.NewDecoder(resp.Body).Decode(&rec2); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !rec2.CacheHit {
		t.Fatal("second census not a cache hit")
	}

	// top caps the classes shown without touching the totals.
	resp = post(map[string]any{"k": 3, "top": 1})
	var rec3 censusResponse
	if err := json.NewDecoder(resp.Body).Decode(&rec3); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rec3.ClassesShown > 1 || rec3.ClassesTotal != rec.ClassesTotal || rec3.Subgraphs != rec.Subgraphs {
		t.Fatalf("top=1: shown %d of %d, subgraphs %d", rec3.ClassesShown, rec3.ClassesTotal, rec3.Subgraphs)
	}

	// Bad K → 400.
	resp = post(map[string]any{"k": 99})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("k=99: %s, want 400", resp.Status)
	}
	resp.Body.Close()

	// Draining → 503.
	handler.StartDrain()
	resp = post(map[string]any{"k": 3})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining census: %s, want 503", resp.Status)
	}
	resp.Body.Close()
}
