package service

import (
	"container/list"
	"encoding/binary"
	"sync"

	"parsge"
)

// cacheKey builds the full identity of a query result: the canonical
// pattern encoding (relabeling-invariant — isomorphic patterns from
// different clients share an entry) × the resolved matching semantics ×
// a fingerprint of every option that can change the result *content*.
//
// Execution knobs — Workers, TaskGroupSize, DisableStealing, Seed,
// Timeout, Visit — are deliberately excluded: they change how a result
// is computed, never what it is (a timed-out run is not cached at all,
// so Timeout cannot leak partial results into the cache). Everything
// else is included, conservatively: Limit truncates the result set;
// Semantics selects it; Algorithm and the pruning knobs are sound (all
// engines and all filter plans agree on counts) but change the reported
// Plan/States, and aliasing them would make /stats lie about what ran.
func cacheKey(canon []byte, sem parsge.Semantics, opts parsge.Options) string {
	b := make([]byte, 0, len(canon)+24)
	b = append(b, canon...)
	b = append(b, 0xfe) // separator: canon is length-prefixed varints, this byte cannot extend it
	b = binary.AppendVarint(b, int64(sem))
	b = binary.AppendVarint(b, opts.Limit)
	b = binary.AppendVarint(b, int64(opts.Algorithm))
	b = binary.AppendVarint(b, int64(opts.Pruning.Schedule))
	b = binary.AppendVarint(b, int64(opts.Pruning.ACPasses))
	var flags int64
	if opts.Pruning.DisableNLF {
		flags |= 1
	}
	if opts.Pruning.DisableInducedAC {
		flags |= 2
	}
	b = binary.AppendVarint(b, flags)
	return string(b)
}

// entry is one cached result. Mappings, when present, are stored in the
// *canonical* pattern numbering (mappings[i][canonPos] = target node),
// so any client pattern isomorphic to the cached one can have them
// translated back through its own canonical permutation.
//
// entry is epoch-keyed: every construction site must say which graph
// version the result belongs to (sgelint's epochkey analyzer enforces
// it) — an entry whose epoch silently defaulted to zero would be
// served as if computed on the never-updated graph.
//
//sgelint:epochkey
type entry struct {
	key      string
	res      parsge.Result // the complete run that populated the entry (never TimedOut)
	mappings [][]int32     // canonical numbering; nil with !hasMappings
	// epoch is the target mutation epoch the entry's run executed
	// against (res.Epoch at construction). A lookup at a different
	// epoch treats the entry as stale and evicts it (see get) — the
	// cache can never serve a result computed on a superseded graph
	// version.
	epoch uint64
	// hasMappings distinguishes "cached zero mappings" (a complete
	// empty result set) from a count-only entry.
	hasMappings bool
	cost        int64
}

// entryCost weighs an entry by the match memory it pins: one unit for
// the counts themselves plus one per stored mapping. This is the
// "match-count memory" the LRU budget bounds — a count-only entry for a
// billion-match query costs 1, a 10k-mapping entry costs 10001.
func entryCost(e *entry) int64 {
	return 1 + int64(len(e.mappings))
}

// translate converts one cached canonical mapping to the numbering of a
// client pattern with canonical permutation perm (node v of the client
// pattern is canonical node perm[v]).
func translate(cm []int32, perm []int32) []int32 {
	out := make([]int32, len(perm))
	for v, p := range perm {
		out[v] = cm[p]
	}
	return out
}

// cache is the LRU result cache: entries keyed by cacheKey, total cost
// bounded by maxCost, least-recently-used evicted first. A maxCost of 0
// disables caching entirely (every get misses, every put is dropped).
type cache struct {
	mu      sync.Mutex
	maxCost int64
	cost    int64
	byKey   map[string]*list.Element // of *entry
	lru     *list.List               // front = most recent

	hits, misses, evictions int64
}

func newCache(maxCost int64) *cache {
	return &cache{maxCost: maxCost, byKey: make(map[string]*list.Element), lru: list.New()}
}

// get returns the entry for key if present, current, and sufficient: an
// entry from a different target mutation epoch is stale — it is evicted
// on sight and the lookup misses — and a count-only entry cannot serve
// a request that needs mappings (it reports a miss, and the subsequent
// put upgrades the entry).
func (c *cache) get(key string, needMappings bool, epoch uint64) (*entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if ok {
		e := el.Value.(*entry)
		if e.epoch != epoch {
			c.lru.Remove(el)
			delete(c.byKey, e.key)
			c.cost -= e.cost
			c.evictions++
			c.misses++
			return nil, false
		}
		if !needMappings || e.hasMappings {
			c.lru.MoveToFront(el)
			c.hits++
			return e, true
		}
	}
	c.misses++
	return nil, false
}

// put inserts (or upgrades) an entry and evicts from the cold end until
// the budget holds again. Entries are immutable once inserted — readers
// hold them outside the lock — so an upgrade replaces the element.
func (c *cache) put(e *entry) {
	e.cost = entryCost(e)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.maxCost <= 0 || e.cost > c.maxCost {
		return
	}
	if old, ok := c.byKey[e.key]; ok {
		oe := old.Value.(*entry)
		if oe.hasMappings && !e.hasMappings && oe.epoch == e.epoch {
			// Never downgrade a same-epoch mapping entry to a count-only
			// one. Across epochs the new entry always replaces — if a
			// straggler reinstates a superseded epoch, get evicts it on
			// the next current-epoch lookup.
			c.lru.MoveToFront(old)
			return
		}
		c.cost -= oe.cost
		c.lru.Remove(old)
	}
	c.byKey[e.key] = c.lru.PushFront(e)
	c.cost += e.cost
	for c.cost > c.maxCost {
		back := c.lru.Back()
		be := back.Value.(*entry)
		c.lru.Remove(back)
		delete(c.byKey, be.key)
		c.cost -= be.cost
		c.evictions++
	}
}

// stats returns a point-in-time view of the cache counters.
func (c *cache) stats() (entries int, cost, hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byKey), c.cost, c.hits, c.misses, c.evictions
}
