package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"parsge"
	"parsge/internal/graph"
)

// clique builds an unlabeled (shared-label) complete graph on n nodes.
func clique(n int32) *graph.Graph {
	b := graph.NewBuilder(int(n), int(n*(n-1)))
	b.AddNodes(int(n))
	for i := int32(0); i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdgeBoth(i, j, graph.NoLabel)
		}
	}
	return b.MustBuild()
}

// star builds an unlabeled undirected star: one center, leaves leaves.
func star(leaves int) *graph.Graph {
	b := graph.NewBuilder(1+leaves, 2*leaves)
	b.AddNodes(1 + leaves)
	for i := 1; i <= leaves; i++ {
		b.AddEdgeBoth(0, int32(i), graph.NoLabel)
	}
	return b.MustBuild()
}

// TestMaxTimeoutClampsClientTimeout: Config.MaxTimeout must bound every
// query and census however generous the client's own timeout is — a
// client asking for an hour must not hold a worker for an hour. The
// regression this pins: before the clamp, the serving path trusted
// Options.Timeout verbatim, so one hostile request could pin the pool
// for its full client-side budget.
func TestMaxTimeoutClampsClientTimeout(t *testing.T) {
	t.Parallel()
	// Query path: a 7-leaf star over K12 under homomorphism has
	// 12·11^7 ≈ 2.3e8 embeddings — far more than 100 ms of search.
	tgt, err := parsge.NewTarget(clique(12), parsge.TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(Config{Target: tgt, MaxTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	reply, err := svc.Count(context.Background(), Query{
		Pattern: star(7),
		Options: parsge.Options{Semantics: parsge.Homomorphism, Timeout: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reply.Result.TimedOut {
		t.Fatalf("hour-long query not truncated by MaxTimeout (matches=%d)", reply.Result.Matches)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("clamped query still took %v", d)
	}

	// Census path: connected 6-subgraphs of K40 number C(40,6) ≈ 3.8M —
	// well past a 20 ms budget. The clamp must apply to census runs
	// too (the original bug let census bypass it entirely).
	ctgt, err := parsge.NewTarget(clique(40), parsge.TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	csvc, err := New(Config{Target: ctgt, MaxTimeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	crep, err := csvc.Census(context.Background(), CensusRequest{K: 6, Timeout: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if !crep.Result.TimedOut {
		t.Fatalf("hour-long census not truncated by MaxTimeout (subgraphs=%d)", crep.Result.Subgraphs)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("clamped census still took %v", d)
	}
}

// TestAdmissionClassDifferential pins the cost model's verdicts on a
// fixed constructed workload: each query's (class, shed/served, epoch)
// against explicit thresholds. The workload spans every class —
// unsatisfiable (free), small, large, and explosive under both
// policies.
func TestAdmissionClassDifferential(t *testing.T) {
	t.Parallel()
	gt := clique(20)
	tgt, err := parsge.NewTarget(gt, parsge.TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Thresholds sized to the K20 target: an 8-node unlabeled pattern
	// has log2 bound 8·log2(20) ≈ 34.6 (explosive), a 3-node one
	// ≈ 13 (between small and explosive: large), and a pattern with a
	// label absent from the target is unsatisfiable (small).
	cfg := Config{
		Target:             tgt,
		SmallLogDomain:     8,
		ExplosiveLogDomain: 30,
		CacheMaxMatches:    -1,
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	labeled := graph.NewBuilder(2, 2)
	labeled.AddNode(7) // label 7 does not occur in the unlabeled target
	labeled.AddNode(7)
	labeled.AddEdgeBoth(0, 1, graph.NoLabel)
	unsat := labeled.MustBuild()

	epoch := tgt.Epoch()
	cases := []struct {
		name    string
		pattern *graph.Graph
		class   AdmissionClass
		shed    bool
	}{
		{"unsatisfiable", unsat, ClassSmall, false},
		{"large path", star(2), ClassLarge, false}, // 3 nodes: score ≈ 13
		{"explosive star", star(7), classUnset, true},
	}
	for _, tc := range cases {
		reply, err := svc.Count(context.Background(), Query{
			Pattern: tc.pattern,
			Options: parsge.Options{Semantics: parsge.Homomorphism, Timeout: 5 * time.Second},
		})
		if tc.shed {
			if !errors.Is(err, ErrPredictedExplosive) {
				t.Fatalf("%s: want ErrPredictedExplosive, got %v", tc.name, err)
			}
			var ex *ExplosiveError
			if !errors.As(err, &ex) {
				t.Fatalf("%s: shed error is not an *ExplosiveError: %v", tc.name, err)
			}
			if ex.Plan == "" || ex.LogDomainProduct < cfg.ExplosiveLogDomain {
				t.Fatalf("%s: shed verdict under-specified: %+v", tc.name, ex)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if reply.Class != tc.class {
			t.Fatalf("%s: class %v, want %v", tc.name, reply.Class, tc.class)
		}
		if reply.ClassEpoch != epoch {
			t.Fatalf("%s: class epoch %d, want %d", tc.name, reply.ClassEpoch, epoch)
		}
	}
	st := svc.Stats()
	if st.ShedExplosive != 1 {
		t.Fatalf("ShedExplosive = %d, want 1", st.ShedExplosive)
	}

	// The same explosive query under ExplosiveDeprioritize is served —
	// truncated by its timeout on the low-priority tier, not shed.
	dtgt, err := parsge.NewTarget(gt, parsge.TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dcfg := cfg
	dcfg.Target = dtgt
	dcfg.ExplosivePolicy = ExplosiveDeprioritize
	dsvc, err := New(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := dsvc.Count(context.Background(), Query{
		Pattern: star(7),
		Options: parsge.Options{Semantics: parsge.Homomorphism, Timeout: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("deprioritized explosive: %v", err)
	}
	if reply.Class != ClassExplosive {
		t.Fatalf("deprioritized explosive: class %v, want %v", reply.Class, ClassExplosive)
	}
	if st := dsvc.Stats(); st.Deprioritized != 1 || st.ShedExplosive != 0 {
		t.Fatalf("deprioritized=%d shedExplosive=%d, want 1/0", st.Deprioritized, st.ShedExplosive)
	}
}

// TestMispredictionFeedbackFlips: a fast query forced to classify large
// by a near-zero SmallLogDomain must flip to small once the per-plan
// EWMA has estimatorMinSamples observations — and the pass that
// misclassified it must show up in MispredictLarge. The cache is
// disabled so every iteration really enumerates and feeds the
// estimator.
func TestMispredictionFeedbackFlips(t *testing.T) {
	t.Parallel()
	tgt, err := parsge.NewTarget(clique(6), parsge.TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(Config{
		Target:          tgt,
		SmallLogDomain:  0.001, // everything satisfiable scores above this
		CacheMaxMatches: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{
		Pattern: star(2), // hom 3-path over K6: 6·5·5 = 150 matches, microseconds
		Options: parsge.Options{Semantics: parsge.Homomorphism, Timeout: 5 * time.Second},
	}
	var flippedAt int
	for i := 1; i <= estimatorMinSamples+3; i++ {
		reply, err := svc.Count(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case i == 1 && reply.Class != ClassLarge:
			t.Fatalf("iteration 1: class %v, want %v (no history yet)", reply.Class, ClassLarge)
		case reply.Class == ClassSmall && flippedAt == 0:
			flippedAt = i
		case reply.Class == ClassLarge && flippedAt != 0:
			t.Fatalf("iteration %d: flipped back to large after going small at %d", i, flippedAt)
		}
	}
	if flippedAt == 0 || flippedAt > estimatorMinSamples+2 {
		t.Fatalf("EWMA never flipped the class to small within %d iterations (flip at %d)",
			estimatorMinSamples+3, flippedAt)
	}
	st := svc.Stats()
	if st.MispredictLarge == 0 {
		t.Fatal("misclassified-large iterations recorded no MispredictLarge")
	}
	if st.MispredictLarge >= int64(estimatorMinSamples+3) {
		t.Fatalf("MispredictLarge = %d: feedback never stopped the mispredictions", st.MispredictLarge)
	}
}

// TestClassEpochPinnedUnderUpdates hammers classification against
// concurrent target mutations under -race: every reply's ClassEpoch
// must be a snapshot that existed (≤ the epoch the query ran against —
// epochs are monotonic, and classification happens before the run).
func TestClassEpochPinnedUnderUpdates(t *testing.T) {
	t.Parallel()
	gt := clique(8)
	tgt, err := parsge.NewTarget(gt, parsge.TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(Config{Target: tgt, CacheMaxMatches: -1})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Oscillate one arc so the graph never drifts while epochs
		// advance continuously.
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			up := parsge.EdgeUpdate{From: 0, To: 1, Remove: i%2 == 0}
			if _, err := svc.Update(context.Background(), []parsge.EdgeUpdate{up}); err != nil {
				t.Errorf("update: %v", err)
				return
			}
		}
	}()
	q := Query{
		Pattern: star(2),
		Options: parsge.Options{Semantics: parsge.Homomorphism, Timeout: 5 * time.Second},
	}
	for i := 0; i < 200; i++ {
		reply, err := svc.Count(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if reply.Class == classUnset {
			t.Fatalf("iteration %d: reply carries no admission class", i)
		}
		if reply.ClassEpoch > reply.Result.Epoch {
			t.Fatalf("iteration %d: class epoch %d from the future (run epoch %d)",
				i, reply.ClassEpoch, reply.Result.Epoch)
		}
	}
	close(stop)
	wg.Wait()
}
