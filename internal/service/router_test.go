package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parsge"
	"parsge/internal/graph"
	"parsge/internal/testutil"
)

// routerWorld builds a router hosting n independent random targets
// (small enough for the brute-force oracle), each with one extracted
// probe pattern.
type routerWorld struct {
	r        *Router
	names    []string
	graphs   map[string]*graph.Graph
	patterns map[string]*graph.Graph
}

func buildRouterWorld(t testing.TB, cfg RouterConfig, n int, seed int64) *routerWorld {
	t.Helper()
	w := &routerWorld{
		r:        NewRouter(cfg),
		graphs:   make(map[string]*graph.Graph),
		patterns: make(map[string]*graph.Graph),
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("t%d", i)
		_, gt := testutil.RandomInstance(seed+int64(i)*101, testutil.InstanceOptions{
			TargetNodes:  14 + 2*i,
			TargetEdges:  50 + 10*i,
			PatternNodes: 3,
			NodeLabels:   3,
			Extract:      true,
		})
		if err := w.r.AddTarget(name, gt, parsge.TargetOptions{}); err != nil {
			t.Fatal(err)
		}
		w.names = append(w.names, name)
		w.graphs[name] = gt
		w.patterns[name] = testutil.ExtractPattern(rng, gt, 3)
	}
	return w
}

// TestRouterBasics: routing, per-target isolation of results and
// caches, unknown-target errors, listing order.
func TestRouterBasics(t *testing.T) {
	w := buildRouterWorld(t, RouterConfig{Workers: 4}, 3, 41)
	defer w.r.Close(context.Background())
	ctx := context.Background()

	for _, name := range w.names {
		want := testutil.BruteCountSem(w.patterns[name], w.graphs[name], parsge.SubgraphIso)
		rep, err := w.r.Count(ctx, name, Query{Pattern: w.patterns[name]})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Result.Matches != want {
			t.Fatalf("%s: %d matches, oracle %d", name, rep.Result.Matches, want)
		}
		// Same query again: served from this target's own cache.
		rep, err = w.r.Count(ctx, name, Query{Pattern: w.patterns[name]})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.CacheHit {
			t.Fatalf("%s: repeat query missed the cache", name)
		}
	}

	if _, err := w.r.Count(ctx, "nope", Query{Pattern: w.patterns[w.names[0]]}); !errors.Is(err, ErrUnknownTarget) {
		t.Fatalf("unknown target error = %v", err)
	}
	if err := w.r.AddTarget(w.names[0], w.graphs[w.names[0]], parsge.TargetOptions{}); err == nil {
		t.Fatal("duplicate AddTarget succeeded")
	}
	if err := w.r.AddTarget("", w.graphs[w.names[0]], parsge.TargetOptions{}); err == nil {
		t.Fatal("empty-name AddTarget succeeded")
	}

	infos := w.r.Targets()
	if len(infos) != 3 {
		t.Fatalf("%d targets listed", len(infos))
	}
	for i, info := range infos {
		if info.Name != w.names[i] {
			t.Fatalf("listing order: %v", infos)
		}
		if info.Nodes != w.graphs[info.Name].NumNodes() || info.Edges != w.graphs[info.Name].NumEdges() {
			t.Fatalf("listing sizes wrong: %+v", info)
		}
		if info.Epoch != 0 {
			t.Fatalf("fresh target epoch %d", info.Epoch)
		}
	}

	st := w.r.Stats()
	if len(st.PerTarget) != 3 {
		t.Fatalf("stats for %d targets", len(st.PerTarget))
	}
	var totalQueries int64
	for _, ts := range st.PerTarget {
		totalQueries += ts.Queries
	}
	if totalQueries != 6 {
		t.Fatalf("total queries %d, want 6", totalQueries)
	}
}

// TestRouterUpdateInvalidation: an update through the router bumps the
// target's epoch and both result and census caches refuse to serve the
// superseded epoch — the post-update counts equal a fresh oracle run on
// the updated graph.
func TestRouterUpdateInvalidation(t *testing.T) {
	w := buildRouterWorld(t, RouterConfig{Workers: 4}, 2, 43)
	defer w.r.Close(context.Background())
	ctx := context.Background()
	name := w.names[0]
	gp := w.patterns[name]

	rep, err := w.r.Count(ctx, name, Query{Pattern: gp})
	if err != nil {
		t.Fatal(err)
	}
	preCount := rep.Result.Matches
	cen, err := w.r.Census(ctx, name, CensusRequest{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	preCensus := cen.Result.Subgraphs

	// Delete every arc incident to node 0 going out — guaranteed to
	// change the graph (RandomInstance targets are connected enough).
	g := w.graphs[name]
	var ups []parsge.EdgeUpdate
	for _, e := range g.Edges() {
		if e.From == 0 || e.To == 0 {
			ups = append(ups, parsge.EdgeUpdate{From: e.From, To: e.To, Label: e.Label, Remove: true})
		}
	}
	if len(ups) == 0 {
		t.Fatal("fixture: node 0 isolated")
	}
	upRes, err := w.r.Update(ctx, name, ups)
	if err != nil {
		t.Fatal(err)
	}
	if upRes.Epoch != 1 {
		t.Fatalf("epoch after update = %d", upRes.Epoch)
	}

	// Rebuild the oracle graph and recompute.
	ng := w.r.Target(name).Graph()
	wantCount := testutil.BruteCountSem(gp, ng, parsge.SubgraphIso)

	rep, err = w.r.Count(ctx, name, Query{Pattern: gp})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheHit {
		t.Fatal("post-update query served from the pre-update cache")
	}
	if rep.Result.Matches != wantCount {
		t.Fatalf("post-update count %d, oracle %d", rep.Result.Matches, wantCount)
	}
	if rep.Result.Epoch != 1 {
		t.Fatalf("post-update result epoch %d", rep.Result.Epoch)
	}

	cen, err = w.r.Census(ctx, name, CensusRequest{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cen.CacheHit {
		t.Fatal("post-update census served from the pre-update cache")
	}
	if cen.Result.Epoch != 1 {
		t.Fatalf("post-update census epoch %d", cen.Result.Epoch)
	}
	if preCensus == cen.Result.Subgraphs && preCount == rep.Result.Matches {
		t.Log("update changed neither count — fixture weak but invalidation still verified")
	}

	// The sibling target's epoch and cache are untouched.
	other := w.names[1]
	if w.r.Target(other).Epoch() != 0 {
		t.Fatal("sibling epoch moved")
	}
	if _, err := w.r.Count(ctx, other, Query{Pattern: w.patterns[other]}); err != nil {
		t.Fatal(err)
	}
	rep, err = w.r.Count(ctx, other, Query{Pattern: w.patterns[other]})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.CacheHit {
		t.Fatal("sibling cache was invalidated by an unrelated update")
	}

	st := w.r.Stats().PerTarget[name]
	if st.Updates != 1 || st.Epoch != 1 {
		t.Fatalf("stats updates/epoch = %d/%d", st.Updates, st.Epoch)
	}
}

// TestRouterIndexLRU: with MaxHotIndexes=1, touching target B evicts
// cold target A's index; touching A again rebuilds it (and evicts B's).
// Counts stay correct throughout — eviction is invisible to results.
func TestRouterIndexLRU(t *testing.T) {
	w := buildRouterWorld(t, RouterConfig{Workers: 4, MaxHotIndexes: 1}, 3, 47)
	defer w.r.Close(context.Background())
	ctx := context.Background()

	hotCount := func() (n int, hot string) {
		for _, info := range w.r.Targets() {
			if info.IndexHot {
				n++
				hot = info.Name
			}
		}
		return
	}

	for round := 0; round < 2; round++ {
		for _, name := range w.names {
			want := testutil.BruteCountSem(w.patterns[name], w.graphs[name], parsge.SubgraphIso)
			rep, err := w.r.Count(ctx, name, Query{Pattern: w.patterns[name]})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Result.Matches != want {
				t.Fatalf("%s after eviction churn: %d matches, oracle %d", name, rep.Result.Matches, want)
			}
			if n, hot := hotCount(); n > 1 {
				t.Fatalf("%d hot indexes under MaxHotIndexes=1", n)
			} else if n == 1 && hot != name {
				t.Fatalf("hot index is %s after touching %s", hot, name)
			}
		}
	}
	// Unbounded router never evicts.
	w2 := buildRouterWorld(t, RouterConfig{Workers: 4}, 3, 47)
	defer w2.r.Close(context.Background())
	for _, name := range w2.names {
		if _, err := w2.r.Count(ctx, name, Query{Pattern: w2.patterns[name]}); err != nil {
			t.Fatal(err)
		}
	}
	for _, info := range w2.r.Targets() {
		if !info.IndexHot {
			t.Fatalf("%s evicted with MaxHotIndexes unset", info.Name)
		}
	}
}

// TestAdmissionClassFairness: two classes contending for a single
// token must alternate grants (round-robin across classes) even when
// one class enqueued every waiter first — a flood from one target
// cannot monopolize the budget.
func TestAdmissionClassFairness(t *testing.T) {
	a := newAdmission(1, 64)
	ctx := context.Background()
	if _, err := a.acquire(ctx, "hold", 1, 0, false); err != nil {
		t.Fatal(err)
	}

	const perClass = 4
	var mu sync.Mutex
	var grants []string
	var wg sync.WaitGroup
	start := func(class string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := a.acquire(ctx, class, 1, 0, false); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			grants = append(grants, class)
			mu.Unlock()
			a.release(1)
		}()
	}
	// All of class A enqueues first, then all of class B.
	for i := 0; i < perClass; i++ {
		start("A")
		// Deterministic FIFO position within the class.
		for {
			if _, q, _, _, _, _ := a.load(); q == i+1 {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	for i := 0; i < perClass; i++ {
		start("B")
		for {
			if _, q, _, _, _, _ := a.load(); q == perClass+i+1 {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	a.release(1) // open the floodgate
	wg.Wait()

	// Strict FIFO would grant AAAABBBB; round-robin across classes must
	// interleave: within the first four grants, both classes appear at
	// least once, and no class gets more than one grant of lead over
	// the other at any prefix beyond the first.
	counts := map[string]int{}
	for i, c := range grants {
		counts[c]++
		if i >= 1 {
			if d := counts["A"] - counts["B"]; d < -1 || d > 1 {
				t.Fatalf("grant order %v: class lead |%d| > 1 at prefix %d", grants, d, i+1)
			}
		}
	}
	if counts["A"] != perClass || counts["B"] != perClass {
		t.Fatalf("grants %v", grants)
	}
}

// TestConcurrentRouterMutation is the -race soak of ISSUE 7 satellite
// 3: concurrent query, stream, census and update clients hammer a
// shared Router. Every reply must be consistent with the epoch it
// claims: a result stamped epoch E equals the oracle count for graph
// version E — so no stale cache entry, singleflight rendezvous or
// admission reordering can serve a pre-update answer for a post-update
// graph. A mid-update cancellation client exercises the discard path.
func TestConcurrentRouterMutation(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	// Base target: a small labeled random graph; updates toggle a fixed
	// pool of extra arcs so every graph version is precomputable.
	_, gt := testutil.RandomInstance(59, testutil.InstanceOptions{
		TargetNodes:  16,
		TargetEdges:  60,
		PatternNodes: 3,
		NodeLabels:   2,
		Extract:      true,
	})
	rng := rand.New(rand.NewSource(59))
	gp := testutil.ExtractPattern(rng, gt, 3)

	// The mutation schedule: version v of the graph has the first
	// v%len(extra) arcs of the pool added. Precompute every version's
	// oracle count.
	type arc struct {
		u, v int32
		l    graph.Label
	}
	extra := []arc{{0, 5, 1}, {1, 9, 0}, {2, 13, 1}, {3, 7, 0}}
	versions := len(extra) + 1
	oracle := make([]int64, versions)
	graphs := make([]*graph.Graph, versions)
	for v := 0; v < versions; v++ {
		b := graph.NewBuilder(gt.NumNodes(), 0)
		for i := int32(0); i < int32(gt.NumNodes()); i++ {
			b.AddNode(gt.NodeLabel(i))
		}
		for _, e := range gt.Edges() {
			b.AddEdge(e.From, e.To, e.Label)
		}
		for i := 0; i < v; i++ {
			b.AddEdgeBoth(extra[i].u, extra[i].v, extra[i].l)
		}
		graphs[v] = b.MustBuild()
		oracle[v] = testutil.BruteCountSem(gp, graphs[v], parsge.SubgraphIso)
	}

	r := NewRouter(RouterConfig{Workers: 8, MaxQueue: 256, QueueTimeout: 10 * time.Second})
	defer r.Close(context.Background())
	if err := r.AddTarget("mut", gt, parsge.TargetOptions{}); err != nil {
		t.Fatal(err)
	}
	// A second, immutable target shares the admission: its count must
	// never waver while its sibling mutates.
	if err := r.AddTarget("fix", gt, parsge.TargetOptions{}); err != nil {
		t.Fatal(err)
	}
	fixWant := oracle[0]

	ctx := context.Background()
	deadline := time.Now().Add(2 * time.Second)
	var wg sync.WaitGroup
	var epochsServed [16]int64 // epoch → hits observed (sized generously)

	// Updater: walk the version schedule up and down; each step is one
	// batch (add or remove one pooled arc, both directions).
	wg.Add(1)
	go func() {
		defer wg.Done()
		v := 0
		for time.Now().Before(deadline) {
			next := (v + 1) % versions
			var ups []parsge.EdgeUpdate
			if next > v { // add arc v
				a := extra[v]
				ups = []parsge.EdgeUpdate{{From: a.u, To: a.v, Label: a.l}, {From: a.v, To: a.u, Label: a.l}}
			} else { // wrap: remove every pooled arc
				for i := 0; i < v; i++ {
					a := extra[i]
					ups = append(ups, parsge.EdgeUpdate{From: a.u, To: a.v, Label: a.l, Remove: true},
						parsge.EdgeUpdate{From: a.v, To: a.u, Label: a.l, Remove: true})
				}
			}
			if _, err := r.Update(ctx, "mut", ups); err != nil {
				t.Error(err)
				return
			}
			v = next
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Mid-update cancellation client: fires already-cancelled updates;
	// none may ever commit (they would desync the version schedule and
	// the count oracle below would catch it, but check the error too).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			cctx, cancel := context.WithCancel(ctx)
			cancel()
			if _, err := r.Update(cctx, "mut", []parsge.EdgeUpdate{{From: 0, To: 1, Label: 7}}); err == nil {
				t.Error("cancelled update succeeded")
				return
			}
			time.Sleep(3 * time.Millisecond)
		}
	}()

	// Query clients: counts against the mutable target must match the
	// oracle for the epoch the reply claims.
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				rep, err := r.Count(ctx, "mut", Query{Pattern: gp})
				if err != nil {
					t.Error(err)
					return
				}
				v := int(rep.Result.Epoch) % versions
				if rep.Result.Matches != oracle[v] {
					t.Errorf("epoch %d served %d matches, oracle %d", rep.Result.Epoch, rep.Result.Matches, oracle[v])
					return
				}
				atomic.AddInt64(&epochsServed[rep.Result.Epoch%16], 1)
			}
		}()
	}

	// Stream client on the mutable target: the end-of-stream result
	// must be internally consistent with its own epoch too.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			matches, end, err := r.Stream(ctx, "mut", Query{Pattern: gp})
			if err != nil {
				t.Error(err)
				return
			}
			n := int64(0)
			for range matches {
				n++
			}
			e := <-end
			if e.Err != nil {
				t.Error(e.Err)
				return
			}
			v := int(e.Result.Epoch) % versions
			if n != oracle[v] || e.Result.Matches != oracle[v] {
				t.Errorf("stream at epoch %d delivered %d/%d, oracle %d", e.Result.Epoch, n, e.Result.Matches, oracle[v])
				return
			}
		}
	}()

	// Census client on the mutable target: cached replies must be from
	// the current graph version (epoch-keyed census cache).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			rep, err := r.Census(ctx, "mut", CensusRequest{K: 3})
			if err != nil {
				t.Error(err)
				return
			}
			if rep.Result.K != 3 || rep.Result.Subgraphs <= 0 {
				t.Errorf("census reply %+v", rep.Result)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Immutable sibling client: the answer never changes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			rep, err := r.Count(ctx, "fix", Query{Pattern: gp})
			if err != nil {
				t.Error(err)
				return
			}
			if rep.Result.Matches != fixWant || rep.Result.Epoch != 0 {
				t.Errorf("immutable sibling served %d at epoch %d, want %d at 0", rep.Result.Matches, rep.Result.Epoch, fixWant)
				return
			}
		}
	}()

	wg.Wait()
	var distinct int
	for _, n := range epochsServed {
		if n > 0 {
			distinct++
		}
	}
	if distinct < 2 {
		t.Logf("soak served only %d distinct epochs — timing-bound, not a failure", distinct)
	}
	if err := r.Close(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}
