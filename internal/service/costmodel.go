// Cost-model admission: instead of guessing a query's weight from
// pattern size before preprocessing, the service runs domain
// preprocessing *first* (milliseconds, cached per canonical form via
// the estimate cache) and classifies from what it learns — the
// product-of-domain upper bound, the target's arc density, and the
// plan's historical mean match time from the epoch-keyed plan histogram
// plus a per-plan EWMA the service feeds with realized costs. Small
// queries take one sequential token, large ones the steal pool, and
// predicted-explosive ones are shed with ErrPredictedExplosive (HTTP
// 429) or deprioritized behind the low-priority admission tier.
// Mispredictions are counted and exported so the model is observable.

package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"parsge"
)

// AdmissionClass is the cost model's verdict on one query.
type AdmissionClass int

const (
	// classUnset is the zero value: replies served without an admission
	// decision (cache hits, singleflight followers) carry it.
	classUnset AdmissionClass = iota
	// ClassSmall runs on one sequential token.
	ClassSmall
	// ClassLarge runs on the work-stealing parallel pool.
	ClassLarge
	// ClassExplosive is predicted to blow its budget however many
	// workers it gets: shed (ErrPredictedExplosive) or deprioritized,
	// per Config.ExplosivePolicy.
	ClassExplosive
)

// String renders the class the way /stats and reply JSON show it.
func (c AdmissionClass) String() string {
	switch c {
	case ClassSmall:
		return "small"
	case ClassLarge:
		return "large"
	case ClassExplosive:
		return "explosive"
	default:
		return ""
	}
}

// ExplosivePolicy selects what happens to a ClassExplosive query.
type ExplosivePolicy int

const (
	// ExplosiveShed (the default) rejects the query immediately with an
	// *ExplosiveError wrapping ErrPredictedExplosive; the HTTP layer
	// maps it to 429 with the estimate in the body.
	ExplosiveShed ExplosivePolicy = iota
	// ExplosiveDeprioritize admits the query on the parallel pool but
	// queues it in the low-priority admission tier, behind all normal
	// traffic.
	ExplosiveDeprioritize
)

// ErrPredictedExplosive reports a query shed by the cost model: its
// predicted cost exceeded Config.ExplosiveBudget (or its domain bound
// exceeded Config.ExplosiveLogDomain with no history to say otherwise).
// Errors returned by the service wrap it in an *ExplosiveError carrying
// the estimate, so clients can back off proportionally.
var ErrPredictedExplosive = errors.New("service: predicted explosive, query shed")

// ExplosiveError is the typed shed verdict: the predicted cost (zero
// when the static domain bound, not history, triggered the shed), the
// plan key the prediction was keyed on, and the domain upper bound.
type ExplosiveError struct {
	// Predicted is the model's cost estimate from plan history; zero
	// when the query was shed on the static domain bound alone.
	Predicted time.Duration
	// Plan is the resolved preprocessing plan key.
	Plan string
	// LogDomainProduct is log2 of the product of final domain sizes.
	LogDomainProduct float64
}

func (e *ExplosiveError) Error() string {
	if e.Predicted > 0 {
		return fmt.Sprintf("service: predicted explosive (plan %s, ~%s), query shed", e.Plan, e.Predicted)
	}
	return fmt.Sprintf("service: predicted explosive (plan %s, log2 bound %.1f), query shed", e.Plan, e.LogDomainProduct)
}

// Unwrap makes errors.Is(err, ErrPredictedExplosive) hold.
func (e *ExplosiveError) Unwrap() error { return ErrPredictedExplosive }

// estimatorAlpha is the EWMA smoothing factor: recent observations
// dominate after ~1/α samples, so a misclassified repeated pattern
// flips class within a handful of queries.
const estimatorAlpha = 0.3

// estimatorMinSamples is how many observations a plan needs before its
// mean is trusted over the static domain-bound heuristic.
const estimatorMinSamples = 3

// planEstimate is one plan's realized-cost state: an EWMA over
// completed runs and a raise-only floor from truncated ones (a run cut
// off at t cost *at least* t — a floor, never a sample).
type planEstimate struct {
	n         int64   // completed observations
	ewma      float64 // seconds, over completed runs
	floor     float64 // seconds, max partial time of truncated runs
	truncated int64
}

// estimator is the per-service realized-cost feedback state, keyed by
// plan rendering. It deliberately ignores epochs: the epoch-keyed plan
// histogram (Target.PlanCost) is the attributable record; the EWMA is
// the fast-adapting overlay that tracks the current workload.
type estimator struct {
	mu    sync.Mutex
	plans map[string]*planEstimate
}

// observe folds one realized cost in. Truncated runs only raise the
// floor — folding their partial timings into the EWMA would bias it
// optimistic (the run was cut off *because* it was expensive).
func (e *estimator) observe(plan string, d time.Duration, truncated bool) {
	sec := d.Seconds()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.plans == nil {
		e.plans = make(map[string]*planEstimate)
	}
	p := e.plans[plan]
	if p == nil {
		p = &planEstimate{}
		e.plans[plan] = p
	}
	if truncated {
		p.truncated++
		if sec > p.floor {
			p.floor = sec
		}
		return
	}
	if p.n == 0 {
		p.ewma = sec
	} else {
		p.ewma = estimatorAlpha*sec + (1-estimatorAlpha)*p.ewma
	}
	p.n++
}

// predict returns the plan's EWMA mean (seconds), how many completed
// observations back it, and the truncation floor (seconds).
func (e *estimator) predict(plan string) (ewma float64, n int64, floor float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	p := e.plans[plan]
	if p == nil {
		return 0, 0, 0
	}
	return p.ewma, p.n, p.floor
}

// admitRecord is one query's admission decision with everything needed
// to attribute and audit it: the class, the prediction it rested on,
// the plan key and snapshot epoch it was pinned at, and whether a
// Classify override (or the static fallback) made the call — overridden
// decisions are excluded from the feedback loop, since the model never
// made a prediction to score.
type admitRecord struct {
	class     AdmissionClass
	predicted time.Duration
	planKey   string
	epoch     uint64
	logProd   float64
	override  bool
}

// predictCost combines the plan's history at the estimate's pinned
// epoch with the service's EWMA into one cost prediction. The second
// return reports whether any history backed the number; floors from
// truncated runs raise the prediction even when no completed sample
// exists.
func (s *Service) predictCost(est parsge.CostEstimate) (time.Duration, bool) {
	pc := s.tgt.PlanCost(est.Epoch, est.PlanKey)
	ewmaSec, n, floorSec := s.est.predict(est.PlanKey)
	sec := -1.0
	if pc.Samples >= estimatorMinSamples {
		sec = pc.MeanMatch.Seconds()
	}
	if n >= estimatorMinSamples {
		sec = ewmaSec // the recency-weighted overlay wins
	}
	if f := pc.TruncatedMean.Seconds(); f > floorSec {
		floorSec = f
	}
	if floorSec > 0 && floorSec > sec {
		sec = floorSec // a truncated run is a cost floor, sample or not
	}
	if sec < 0 {
		return 0, false
	}
	return time.Duration(sec * float64(time.Second)), true
}

// classifyEstimate turns a cost estimate plus history into an admission
// class. The domain score — log2 of candidate assignments, nudged up on
// dense targets where a loose bound is likelier to be realized — is
// *query-specific* evidence; plan history is evidence about the whole
// plan bucket, which many queries share. That asymmetry sets the
// precedence: a query whose own bound crosses ExplosiveLogDomain is
// shed however cheap its plan bucket has been, and a history-predicted
// shed never fires on a query whose own bound sits in small territory —
// one truncated run must not poison every cheap query sharing its plan.
// Between those guards, plan history (when backed by enough samples)
// prices the query against the small/explosive budgets; without
// history the score alone picks the class.
func (s *Service) classifyEstimate(est parsge.CostEstimate) (AdmissionClass, time.Duration) {
	if est.Unsatisfiable {
		return ClassSmall, 0 // preprocessing proved it free
	}
	explosiveOn := s.cfg.ExplosiveBudget > 0
	score := est.LogDomainProduct + est.TargetDensity*float64(est.PatternNodes)
	if explosiveOn && score >= s.cfg.ExplosiveLogDomain {
		return ClassExplosive, 0
	}
	if pred, ok := s.predictCost(est); ok {
		switch {
		case explosiveOn && pred >= s.cfg.ExplosiveBudget && score > s.cfg.SmallLogDomain:
			return ClassExplosive, pred
		case pred <= s.cfg.SmallBudget:
			return ClassSmall, pred
		default:
			return ClassLarge, pred
		}
	}
	if score <= s.cfg.SmallLogDomain {
		return ClassSmall, 0
	}
	return ClassLarge, 0
}

// estKey identifies one cached cost estimate: the query's cache key
// (canonical pattern × semantics × options) at one target mutation
// epoch.
//
//sgelint:epochkey
type estKey struct {
	key   string
	epoch uint64
}

// estCacheMax bounds the estimate cache; preprocessing is milliseconds,
// so on overflow the map is simply cleared rather than LRU-tracked.
const estCacheMax = 4096

// estimate returns the query's cost estimate, consulting the per-epoch
// estimate cache when the query has a cache identity. The cache is
// cleared wholesale when the target's epoch advances (stale estimates
// must never price live queries) and when it overflows estCacheMax.
func (s *Service) estimate(ctx context.Context, q Query, key string) (parsge.CostEstimate, error) {
	if key == "" {
		return s.tgt.EstimateCost(ctx, q.Pattern, q.Options)
	}
	epoch := s.tgt.Epoch()
	ek := estKey{key: key, epoch: epoch}
	s.estMu.Lock()
	if s.estEpoch != epoch {
		s.estCache = nil
		s.estEpoch = epoch
	}
	if est, ok := s.estCache[ek]; ok {
		s.estHits++
		s.estMu.Unlock()
		return est, nil
	}
	s.estMisses++
	s.estMu.Unlock()

	est, err := s.tgt.EstimateCost(ctx, q.Pattern, q.Options)
	if err != nil {
		return est, err
	}
	s.estMu.Lock()
	if s.estEpoch == est.Epoch {
		if len(s.estCache) >= estCacheMax {
			s.estCache = nil
		}
		if s.estCache == nil {
			s.estCache = make(map[estKey]parsge.CostEstimate)
		}
		s.estCache[estKey{key: key, epoch: est.Epoch}] = est
	}
	s.estMu.Unlock()
	return est, nil
}

// classifyQuery is the admission front half: it resolves the query's
// class and pins the epoch the decision was made at. A Classify
// override and the DisableCostModel static fallback short-circuit the
// cost model entirely (override=true keeps them out of the feedback
// loop).
func (s *Service) classifyQuery(ctx context.Context, q Query, key string) (admitRecord, error) {
	wantsParallel := q.Options.Workers > 1 || q.Options.Workers == parsge.AutoWorkers
	if s.cfg.Classify != nil {
		_, epoch := s.tgt.MeanDegreeAt()
		cls := ClassSmall
		if s.cfg.Classify(q.Pattern, q.Options) {
			cls = ClassLarge
		}
		return admitRecord{class: cls, epoch: epoch, override: true}, nil
	}
	if s.cfg.DisableCostModel {
		// The pre-cost-model static heuristic, with the degree read
		// pinned to one snapshot epoch.
		deg, epoch := s.tgt.MeanDegreeAt()
		np := q.Pattern.NumNodes()
		cls := ClassSmall
		if wantsParallel || np >= 6 || (np >= 4 && deg >= 8) {
			cls = ClassLarge
		}
		return admitRecord{class: cls, epoch: epoch, override: true}, nil
	}
	est, err := s.estimate(ctx, q, key)
	if err != nil {
		return admitRecord{}, err
	}
	cls, pred := s.classifyEstimate(est)
	if cls == ClassSmall && wantsParallel {
		// The client asked for parallelism and the model has no reason
		// to shed: honor the request (compatibility with the static
		// classifier, which always promoted such queries).
		cls = ClassLarge
	}
	if cls == ClassExplosive && q.Options.Limit > 0 {
		// A limit-bounded query cannot realize the full enumeration the
		// domain bound (or the plan's unbounded history) prices; admit
		// it large and let the timeout clamp bound the worst case.
		cls = ClassLarge
	}
	return admitRecord{
		class:     cls,
		predicted: pred,
		planKey:   est.PlanKey,
		epoch:     est.Epoch,
		logProd:   est.LogDomainProduct,
	}, nil
}

// observe feeds one realized cost back into the estimator and scores
// the prediction: a predicted-small query that timed out and a
// predicted-large/explosive one that finished under the small budget
// are both mispredictions, counted and exported via Stats.
func (s *Service) observe(rec admitRecord, res *parsge.Result) {
	if rec.override {
		return // no model prediction to score or train
	}
	plan := "none"
	if res.Plan != nil {
		plan = res.Plan.String()
	}
	s.est.observe(plan, res.MatchTime, res.TimedOut)
	s.statMu.Lock()
	if rec.class == ClassSmall && res.TimedOut {
		s.mispredictSmall++
	} else if rec.class != ClassSmall && !res.TimedOut && res.MatchTime <= s.cfg.SmallBudget {
		s.mispredictLarge++
	}
	s.statMu.Unlock()
}
