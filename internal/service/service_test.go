package service

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parsge"
	"parsge/internal/graph"
	"parsge/internal/testutil"
)

// soakWorld builds the shared fixture of the concurrency tests: one
// labeled target small enough for the brute-force oracle, a pool of
// patterns extracted from it (guaranteed at least one subgraph-iso
// match), and the oracle counts for every (pattern, semantics) pair.
type soakWorld struct {
	gt       *graph.Graph
	tgt      *parsge.Target
	patterns []*graph.Graph
	oracle   map[int]map[parsge.Semantics]int64
}

func buildSoakWorld(t testing.TB, seed int64) *soakWorld {
	t.Helper()
	_, gt := testutil.RandomInstance(seed, testutil.InstanceOptions{
		TargetNodes:  26,
		TargetEdges:  110,
		PatternNodes: 4,
		NodeLabels:   3,
		Extract:      true,
	})
	rng := rand.New(rand.NewSource(seed * 31))
	w := &soakWorld{gt: gt, oracle: make(map[int]map[parsge.Semantics]int64)}
	for len(w.patterns) < 6 {
		gp := testutil.ExtractPattern(rng, gt, 3+rng.Intn(3))
		if gp.NumNodes() == 0 {
			continue
		}
		w.patterns = append(w.patterns, gp)
	}
	for i, gp := range w.patterns {
		w.oracle[i] = map[parsge.Semantics]int64{
			parsge.SubgraphIso:  testutil.BruteCountSem(gp, gt, parsge.SubgraphIso),
			parsge.InducedIso:   testutil.BruteCountSem(gp, gt, parsge.InducedIso),
			parsge.Homomorphism: testutil.BruteCountSem(gp, gt, parsge.Homomorphism),
		}
	}
	tgt, err := parsge.NewTarget(gt, parsge.TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w.tgt = tgt
	return w
}

// blockingWorld builds a service whose homomorphism stream of a 3-path
// over a one-label clique yields thousands of matches — far more than
// the ~128 slots of channel buffering between producer and consumer —
// so a stream that is not drained genuinely holds its admission token
// and its producer goroutine until cancelled. The fixture behind every
// test that needs a query to still be "in flight" when asserted on.
func blockingWorld(t testing.TB, cfg Config) (*Service, *graph.Graph) {
	t.Helper()
	b := graph.NewBuilder(12, 12*11)
	b.AddNodes(12)
	for i := int32(0); i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			b.AddEdgeBoth(i, j, graph.NoLabel)
		}
	}
	gt := b.MustBuild()
	pb := graph.NewBuilder(3, 2)
	pb.AddNodes(3)
	pb.AddEdge(0, 1, graph.NoLabel)
	pb.AddEdge(1, 2, graph.NoLabel)
	gp := pb.MustBuild() // hom count: 12·11·11 = 1452 ≫ buffering
	tgt, err := parsge.NewTarget(gt, parsge.TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Target = tgt
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc, gp
}

// verifyMapping checks that a delivered mapping really is an embedding
// of gp in gt under sem — the guard that catches a bad canonical
// translation of cached mappings, which a count comparison would miss.
func verifyMapping(t *testing.T, gp, gt *graph.Graph, m []int32, sem parsge.Semantics) {
	t.Helper()
	if len(m) != gp.NumNodes() {
		t.Fatalf("mapping has %d entries for a %d-node pattern", len(m), gp.NumNodes())
	}
	seen := make(map[int32]bool)
	for vp := int32(0); vp < int32(gp.NumNodes()); vp++ {
		vt := m[vp]
		if vt < 0 || int(vt) >= gt.NumNodes() {
			t.Fatalf("mapping[%d] = %d out of range", vp, vt)
		}
		if gp.NodeLabel(vp) != gt.NodeLabel(vt) {
			t.Fatalf("mapping[%d] = %d: label mismatch", vp, vt)
		}
		if sem != parsge.Homomorphism {
			if seen[vt] {
				t.Fatalf("mapping not injective under %v: %v", sem, m)
			}
			seen[vt] = true
		}
	}
	for vp := int32(0); vp < int32(gp.NumNodes()); vp++ {
		adj := gp.OutNeighbors(vp)
		labs := gp.OutEdgeLabels(vp)
		for i, wp := range adj {
			if !gt.HasEdgeLabeled(m[vp], m[wp], labs[i]) {
				t.Fatalf("pattern edge (%d,%d) not preserved by %v", vp, wp, m)
			}
		}
		if sem == parsge.InducedIso {
			for wp := int32(0); wp < int32(gp.NumNodes()); wp++ {
				if wp != vp && !gp.HasEdge(vp, wp) && gt.HasEdge(m[vp], m[wp]) {
					t.Fatalf("pattern non-edge (%d,%d) violated by %v", vp, wp, m)
				}
			}
		}
	}
}

// TestServiceSoak is the satellite soak test: N concurrent clients
// issuing mixed semantics/algorithm queries — counts, enumerations,
// full streams, cancelled streams, and relabeled patterns that must be
// served from the cache of their isomorphic twins — against one service,
// every exact reply held to the brute-force oracle. Run under -race in
// CI; the cache budget is set small enough that eviction and recompute
// churn happen during the run.
func TestServiceSoak(t *testing.T) {
	w := buildSoakWorld(t, 42)
	svc, err := New(Config{
		Target:          w.tgt,
		Workers:         4,
		ParallelWorkers: 2,
		MaxQueue:        256,
		QueueTimeout:    30 * time.Second,
		CacheMaxMatches: 512, // small: force eviction churn mid-soak
	})
	if err != nil {
		t.Fatal(err)
	}
	algs := []parsge.Algorithm{parsge.Auto, parsge.RI, parsge.RIDSSIFC, parsge.VF2, parsge.LAD}
	sems := []parsge.Semantics{parsge.SubgraphIso, parsge.InducedIso, parsge.Homomorphism}

	const clients = 12
	const iters = 50
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	var cancelled atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)*97 + 5))
			ctx := context.Background()
			for i := 0; i < iters; i++ {
				pi := rng.Intn(len(w.patterns))
				sem := sems[rng.Intn(len(sems))]
				alg := algs[rng.Intn(len(algs))]
				gp := w.patterns[pi]
				if rng.Intn(3) == 0 {
					gp = testutil.PermuteGraph(rng, gp) // isomorphic twin: same oracle count, should share cache
				}
				want := w.oracle[pi][sem]
				q := Query{Pattern: gp, Options: parsge.Options{Semantics: sem, Algorithm: alg}}
				switch rng.Intn(4) {
				case 0: // count
					r, err := svc.Count(ctx, q)
					if err != nil {
						errs <- err
						return
					}
					if r.Result.Matches != want {
						t.Errorf("client %d: count %v/%v = %d, oracle %d", c, pi, sem, r.Result.Matches, want)
						return
					}
				case 1: // enumerate with mappings
					r, err := svc.Enumerate(ctx, q)
					if err != nil {
						errs <- err
						return
					}
					if int64(len(r.Mappings)) != want || r.Result.Matches != want {
						t.Errorf("client %d: enumerate %v/%v = %d mappings/%d count, oracle %d",
							c, pi, sem, len(r.Mappings), r.Result.Matches, want)
						return
					}
					if len(r.Mappings) > 0 {
						verifyMapping(t, gp, w.gt, r.Mappings[rng.Intn(len(r.Mappings))], sem)
					}
				case 2: // full stream
					matches, end, err := svc.Stream(ctx, q)
					if err != nil {
						errs <- err
						return
					}
					var got int64
					for m := range matches {
						if got == 0 {
							verifyMapping(t, gp, w.gt, m.Mapping, sem)
						}
						got++
					}
					e := <-end
					if e.Err != nil {
						errs <- e.Err
						return
					}
					if !e.Result.TimedOut && got != want {
						t.Errorf("client %d: stream %v/%v delivered %d, oracle %d", c, pi, sem, got, want)
						return
					}
				case 3: // cancelled mid-stream
					sctx, cancel := context.WithCancel(ctx)
					matches, end, err := svc.Stream(sctx, q)
					if err != nil {
						cancel()
						errs <- err
						return
					}
					for range matches {
						cancel() // cancel on (after) the first match, keep draining
					}
					e := <-end
					cancel()
					if e.Err != nil {
						errs <- e.Err
						return
					}
					// A cancelled stream must be truncated or complete —
					// its count is a lower bound either way.
					if e.Result.Matches > want && want >= 0 && !e.Result.TimedOut {
						t.Errorf("client %d: cancelled stream overcounted: %d > oracle %d", c, pi, want)
						return
					}
					cancelled.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := svc.Stats()
	if st.Queries != clients*iters {
		t.Errorf("Queries = %d, want %d", st.Queries, clients*iters)
	}
	if st.CacheHits == 0 {
		t.Error("soak never hit the cache")
	}
	if st.Session.Plans.Planned == 0 || len(st.Session.Plans.Buckets) == 0 {
		t.Errorf("plan histogram empty after soak: %+v", st.Session.Plans)
	}
	if st.TokensInUse != 0 || st.Queued != 0 {
		t.Errorf("tokens leaked: inUse=%d queued=%d", st.TokensInUse, st.Queued)
	}
	t.Logf("soak: %d queries, %d hits, %d misses, %d shared, %d executed, %d cancelled streams, %d evictions",
		st.Queries, st.CacheHits, st.CacheMisses, st.Shared, st.Session.Queries, cancelled.Load(), st.CacheEvictions)
}

// TestSingleflightDeduplicates: many goroutines issue the same query at
// once; the service must execute it far fewer times than it answers it
// (ideally once), and every answer must agree with the oracle.
func TestSingleflightDeduplicates(t *testing.T) {
	w := buildSoakWorld(t, 7)
	svc, err := New(Config{Target: w.tgt, Workers: 4, QueueTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	gp := w.patterns[0]
	want := w.oracle[0][parsge.Homomorphism] // hom: the most expensive of the three
	const n = 24
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			r, err := svc.Count(context.Background(), Query{Pattern: gp, Options: parsge.Options{Semantics: parsge.Homomorphism}})
			if err != nil {
				t.Error(err)
				return
			}
			if r.Result.Matches != want {
				t.Errorf("got %d, oracle %d", r.Result.Matches, want)
			}
		}()
	}
	close(start)
	wg.Wait()
	st := svc.Stats()
	if st.Session.Queries >= n {
		t.Errorf("no deduplication: %d executions for %d identical queries", st.Session.Queries, n)
	}
	if st.CacheHits+st.Shared == 0 {
		t.Errorf("neither cache nor singleflight served anyone: %+v", st)
	}
	t.Logf("%d identical queries: %d executed, %d cache hits, %d shared", n, st.Session.Queries, st.CacheHits, st.Shared)
}

// TestAdmissionOverload: with a single worker token held by a slow
// query, a full queue must shed (ErrOverloaded) and a bounded wait must
// time out (ErrQueueTimeout). Distinct patterns keep the cache and
// singleflight out of the way.
func TestAdmissionOverload(t *testing.T) {
	svc, gp := blockingWorld(t, Config{
		Workers:      1,
		MaxQueue:     1,
		QueueTimeout: 500 * time.Millisecond,
		Classify:     func(*parsge.Graph, parsge.Options) bool { return false },
	})
	w := buildSoakWorld(t, 13)
	// Occupy the only token: an undrained stream with thousands of
	// matches pending holds it until cancelled.
	sctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	matches, end, err := svc.Stream(sctx, Query{Pattern: gp, Options: parsge.Options{Semantics: parsge.Homomorphism}})
	if err != nil {
		t.Fatal(err)
	}
	<-matches // admitted and producing; token now held until the stream ends

	// Second query queues (slot 1 of 1)... (a foreign pattern: neither
	// cache nor singleflight can serve it)
	q2err := make(chan error, 1)
	go func() {
		_, err := svc.Count(context.Background(), Query{Pattern: w.patterns[1]})
		q2err <- err
	}()
	// ...wait until it actually occupies the queue slot.
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second query never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// Third query finds the queue full and must be shed immediately.
	if _, err := svc.Count(context.Background(), Query{Pattern: w.patterns[2]}); err != ErrOverloaded {
		t.Fatalf("expected ErrOverloaded, got %v", err)
	}
	// The queued query's wait bound fires.
	if err := <-q2err; err != ErrQueueTimeout {
		t.Fatalf("expected ErrQueueTimeout, got %v", err)
	}
	// Release the token; the system must drain clean.
	cancel()
	for range matches {
	}
	<-end
	if st := svc.Stats(); st.TokensInUse != 0 || st.Queued != 0 {
		t.Fatalf("tokens leaked after overload test: %+v", st)
	}
	st := svc.Stats()
	if st.Shed != 1 || st.QueueTimeouts != 1 {
		t.Fatalf("shed=%d queueTimeouts=%d, want 1/1", st.Shed, st.QueueTimeouts)
	}
}

// TestAdmissionPartition: a large query must run with the parallel pool
// (observable via Result.PerWorkerStates) and a small one sequentially,
// regardless of what Workers the client asked for.
func TestAdmissionPartition(t *testing.T) {
	w := buildSoakWorld(t, 23)
	large := false
	svc, err := New(Config{
		Target:          w.tgt,
		Workers:         4,
		ParallelWorkers: 3,
		Classify:        func(*parsge.Graph, parsge.Options) bool { return large },
	})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Pattern: w.patterns[0], Options: parsge.Options{Workers: 16}} // client asks for 16; service decides
	r, err := svc.Count(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if r.Large || len(r.Result.PerWorkerStates) != 0 {
		t.Fatalf("small query ran parallel: %+v", r.Result)
	}
	large = true
	q.Pattern = w.patterns[1] // distinct pattern: not served by cache
	r, err = svc.Count(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Large || len(r.Result.PerWorkerStates) != 3 {
		t.Fatalf("large query did not get the 3-worker pool: large=%v perWorker=%d", r.Large, len(r.Result.PerWorkerStates))
	}
	if got := svc.Stats(); got.Sequential != 1 || got.Parallel != 1 {
		t.Fatalf("class counters: %d/%d, want 1/1", got.Sequential, got.Parallel)
	}
}

// TestServiceClose: draining refuses new queries with ErrClosed and
// waits for in-flight streams.
func TestServiceClose(t *testing.T) {
	svc, gp := blockingWorld(t, Config{Workers: 2})
	w := buildSoakWorld(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	matches, end, err := svc.Stream(ctx, Query{Pattern: gp, Options: parsge.Options{Semantics: parsge.Homomorphism}})
	if err != nil {
		t.Fatal(err)
	}
	<-matches // in flight: the undrained producer holds the stream open

	closed := make(chan error, 1)
	go func() {
		cctx, ccancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer ccancel()
		closed <- svc.Close(cctx)
	}()
	// New queries refused while draining.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := svc.Count(context.Background(), Query{Pattern: w.patterns[1]}); err == ErrClosed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Close never started refusing queries")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-closed:
		t.Fatalf("Close returned while a stream was live: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	cancel() // disconnect the stream consumer
	for range matches {
	}
	<-end
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestServiceValidation: the error paths clients actually hit.
func TestServiceValidation(t *testing.T) {
	w := buildSoakWorld(t, 5)
	svc, err := New(Config{Target: w.tgt})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Count(context.Background(), Query{}); err == nil {
		t.Error("nil pattern accepted")
	}
	if _, err := svc.Count(context.Background(), Query{Pattern: w.patterns[0], Options: parsge.Options{Visit: func([]int32) bool { return true }}}); err == nil {
		t.Error("non-nil Visit accepted")
	}
	if _, err := svc.Count(context.Background(), Query{Pattern: w.patterns[0], Options: parsge.Options{Semantics: 99}}); err == nil {
		t.Error("invalid semantics accepted")
	}
	if _, err := New(Config{}); err == nil {
		t.Error("nil target accepted")
	}
}

// TestHostileSymmetricPatternUncacheable: a highly symmetric unlabeled
// pattern whose canonicalization would be factorial must be answered
// (correctly, via the oracle) without wedging the server — it bypasses
// the cache instead of paying for a canonical form. Repeats never hit
// the cache, and the whole exchange stays fast.
func TestHostileSymmetricPatternUncacheable(t *testing.T) {
	// Target: unlabeled K11. Pattern: unlabeled K10 — 10! ≈ 3.6M
	// orderings per canonicalization attempt; unbudgeted that is
	// minutes of CPU before the query even runs. The Limit keeps the
	// enumeration itself trivial, so the time bound measures exactly
	// what the budget must protect: the pre-admission validate path.
	build := func(n int) *graph.Graph {
		b := graph.NewBuilder(n, n*(n-1))
		b.AddNodes(n)
		for i := int32(0); i < int32(n); i++ {
			for j := i + 1; j < int32(n); j++ {
				b.AddEdgeBoth(i, j, graph.NoLabel)
			}
		}
		return b.MustBuild()
	}
	gt, gp := build(11), build(10)
	tgt, err := parsge.NewTarget(gt, parsge.TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(Config{Target: tgt})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for round := 0; round < 2; round++ {
		r, err := svc.Count(context.Background(), Query{Pattern: gp, Options: parsge.Options{Limit: 1000}})
		if err != nil {
			t.Fatal(err)
		}
		if r.Result.Matches < 1000 {
			t.Fatalf("round %d: %d matches, want >= 1000", round, r.Result.Matches)
		}
		if r.CacheHit {
			t.Fatal("uncacheable pattern reported a cache hit")
		}
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("hostile pattern took %v — canonicalization budget not protecting the service", d)
	}
	st := svc.Stats()
	if st.CacheEntries != 0 {
		t.Fatalf("hostile pattern was cached: %+v", st)
	}
	if st.Session.Queries != 2 {
		t.Fatalf("expected 2 real executions, got %d", st.Session.Queries)
	}
}

// TestSingleflightLeaderCancellation: a leader whose own context dies
// must not fail its waiters — they retry and succeed with their live
// contexts.
func TestSingleflightLeaderCancellation(t *testing.T) {
	svc, gp := blockingWorld(t, Config{Workers: 1, MaxQueue: 8, QueueTimeout: 30 * time.Second})
	// Occupy the only token so the leader queues in admission.
	sctx, scancel := context.WithCancel(context.Background())
	defer scancel()
	matches, end, err := svc.Stream(sctx, Query{Pattern: gp, Options: parsge.Options{Semantics: parsge.Homomorphism}})
	if err != nil {
		t.Fatal(err)
	}
	<-matches

	q := Query{Pattern: gp, Options: parsge.Options{Semantics: parsge.SubgraphIso}}
	lctx, lcancel := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := svc.Count(lctx, q)
		leaderErr <- err
	}()
	// Wait for the leader to reach the admission queue, then a waiter
	// joins its flight.
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never queued")
		}
		time.Sleep(time.Millisecond)
	}
	waiterDone := make(chan error, 1)
	var waiterReply Reply
	go func() {
		r, err := svc.Count(context.Background(), q)
		waiterReply = r
		waiterDone <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter join the flight
	lcancel()                         // the leader's client disconnects
	if err := <-leaderErr; err != context.Canceled {
		t.Fatalf("leader: %v, want context.Canceled", err)
	}
	// Free the token so the retrying waiter can run.
	scancel()
	for range matches {
	}
	<-end
	select {
	case err := <-waiterDone:
		if err != nil {
			t.Fatalf("waiter inherited the leader's cancellation: %v", err)
		}
		if waiterReply.Result.Matches == 0 {
			t.Fatal("waiter got an empty result")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("waiter never completed after leader cancellation")
	}
}
