package service

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestAdmissionBasic: grants up to capacity, blocks beyond, FIFO wakeup.
func TestAdmissionBasic(t *testing.T) {
	a := newAdmission(4, 8)
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, err := a.acquire(ctx, "", 1, 0, false); err != nil {
			t.Fatal(err)
		}
	}
	got := make(chan int, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := a.acquire(ctx, "", 1, 0, false); err != nil {
				t.Error(err)
				return
			}
			got <- i
		}(i)
		// Deterministic queue order: wait until waiter i is enqueued.
		for {
			if _, queued, _, _, _, _ := a.load(); queued == i+1 {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	a.release(1)
	first := <-got
	if first != 0 {
		t.Fatalf("FIFO violated: waiter %d woke first", first)
	}
	a.release(1)
	<-got
	wg.Wait()
	if inUse, queued, _, _, _, _ := a.load(); inUse != 4 || queued != 0 {
		t.Fatalf("inUse=%d queued=%d after grants", inUse, queued)
	}
}

// TestAdmissionHeadOfLine: a large waiter at the queue head holds back a
// later small one even when the small one would fit — the deliberate
// anti-starvation property.
func TestAdmissionHeadOfLine(t *testing.T) {
	a := newAdmission(4, 8)
	ctx := context.Background()
	if _, err := a.acquire(ctx, "", 3, 0, false); err != nil { // 3 of 4 in use
		t.Fatal(err)
	}
	largeDone := make(chan struct{})
	go func() {
		if _, err := a.acquire(ctx, "", 4, 0, false); err != nil { // must wait for all 4
			t.Error(err)
		}
		close(largeDone)
	}()
	for {
		if _, queued, _, _, _, _ := a.load(); queued == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	smallDone := make(chan struct{})
	go func() {
		if _, err := a.acquire(ctx, "", 1, 0, false); err != nil { // would fit, but queues behind large
			t.Error(err)
		}
		close(smallDone)
	}()
	select {
	case <-smallDone:
		t.Fatal("small waiter jumped the queue past the large head")
	case <-time.After(30 * time.Millisecond):
	}
	a.release(3) // large (4) fits now; then small (1) would exceed? 4+1>4: small still waits
	<-largeDone
	select {
	case <-smallDone:
		t.Fatal("small granted while large holds everything")
	case <-time.After(30 * time.Millisecond):
	}
	a.release(4)
	<-smallDone
	a.release(1)
	if inUse, queued, _, _, _, _ := a.load(); inUse != 0 || queued != 0 {
		t.Fatalf("inUse=%d queued=%d after drain", inUse, queued)
	}
}

// TestAdmissionAbandon: a waiter whose context fires leaves the queue
// without consuming tokens, and later waiters still get served.
func TestAdmissionAbandon(t *testing.T) {
	a := newAdmission(1, 8)
	bg := context.Background()
	if _, err := a.acquire(bg, "", 1, 0, false); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(bg)
	errc := make(chan error, 1)
	go func() {
		_, err := a.acquire(ctx, "", 1, 0, false)
		errc <- err
	}()
	for {
		if _, queued, _, _, _, _ := a.load(); queued == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("abandoned waiter got %v", err)
	}
	if _, queued, _, _, _, _ := a.load(); queued != 0 {
		t.Fatal("abandoned waiter left in queue")
	}
	// The token is still held by the first acquire; a release must reach
	// a fresh waiter, not the abandoned one.
	okc := make(chan struct{})
	go func() {
		if _, err := a.acquire(bg, "", 1, 0, false); err != nil {
			t.Error(err)
		}
		close(okc)
	}()
	a.release(1)
	select {
	case <-okc:
	case <-time.After(5 * time.Second):
		t.Fatal("fresh waiter starved after an abandonment")
	}
}

// TestAdmissionShedAndTimeout: queue-full sheds immediately; a bounded
// wait times out and is counted.
func TestAdmissionShedAndTimeout(t *testing.T) {
	a := newAdmission(1, 1)
	ctx := context.Background()
	if _, err := a.acquire(ctx, "", 1, 0, false); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := a.acquire(ctx, "", 1, 40*time.Millisecond, false)
		errc <- err
	}()
	for {
		if _, queued, _, _, _, _ := a.load(); queued == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := a.acquire(ctx, "", 1, 0, false); err != ErrOverloaded {
		t.Fatalf("queue-full acquire: %v, want ErrOverloaded", err)
	}
	if err := <-errc; err != ErrQueueTimeout {
		t.Fatalf("bounded wait: %v, want ErrQueueTimeout", err)
	}
	if _, queued, _, shed, timedOut, _ := a.load(); queued != 0 || shed != 1 || timedOut != 1 {
		t.Fatalf("queued=%d shed=%d timedOut=%d", queued, shed, timedOut)
	}
}
