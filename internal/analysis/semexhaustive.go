package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// watchedEnums are the cross-package enum types whose switches must be
// exhaustive everywhere in this module. Each entry earned its place by
// an actual bug class: a semantics switch that silently treated a new
// Semantics value as subgraph-iso (PR 2), a schedule switch that
// dropped ScheduleAuto on the floor (PR 4).
var watchedEnums = map[[2]string]bool{
	{"parsge/internal/graph", "Semantics"}: true,
	{"parsge/internal/domain", "NLFMode"}:  true,
	{"parsge/internal/domain", "Schedule"}: true,
}

// SemExhaustive enforces exhaustive switches over the designated enum
// types (graph.Semantics, domain.NLFMode, domain.Schedule — plus any
// same-package type marked //sgelint:exhaustive): every constant of
// the tag's type declared in the type's package must appear among the
// case expressions, or the switch must carry a non-empty default
// clause (one that returns an error, panics — anything but silently
// falling through). An empty default is not an escape hatch: it is
// exactly the "new enum value handled as zero work" failure this
// analyzer exists to prevent.
var SemExhaustive = &Analyzer{
	Name: "semexhaustive",
	Doc:  "switches over designated enum types must cover every declared constant or have a non-empty default",
	Run:  runSemExhaustive,
}

func runSemExhaustive(pass *Pass) error {
	info := pass.TypesInfo
	marked := markedTypes(pass, "exhaustive")
	markedSet := make(map[*types.TypeName]bool, len(marked))
	for tn := range marked {
		markedSet[tn] = true
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := info.Types[sw.Tag]
			if !ok {
				return true
			}
			named, ok := types.Unalias(tv.Type).(*types.Named)
			if !ok {
				return true
			}
			tn := named.Obj()
			if tn.Pkg() == nil {
				return true
			}
			if !watchedEnums[[2]string{tn.Pkg().Path(), tn.Name()}] && !markedSet[tn] {
				return true
			}

			consts := enumConstants(named)
			if len(consts) == 0 {
				return true
			}
			covered := make(map[string]bool)
			hasDefault, defaultEmpty := false, false
			for _, s := range sw.Body.List {
				cc, ok := s.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					hasDefault = true
					defaultEmpty = len(cc.Body) == 0
					continue
				}
				for _, e := range cc.List {
					if etv, ok := info.Types[e]; ok && etv.Value != nil {
						covered[etv.Value.ExactString()] = true
					}
				}
			}
			if hasDefault && !defaultEmpty {
				return true
			}
			var missing []string
			for _, c := range consts {
				if !covered[c.Val().ExactString()] {
					missing = append(missing, c.Name())
				}
			}
			if len(missing) == 0 {
				return true
			}
			sort.Strings(missing)
			what := "add them or a non-empty default"
			if hasDefault {
				what = "the empty default silently ignores them; make it return or panic"
			}
			pass.Reportf(sw.Switch, "switch over %s.%s is not exhaustive: missing %s (%s)",
				tn.Pkg().Name(), tn.Name(), strings.Join(missing, ", "), what)
			return true
		})
	}
	return nil
}

// enumConstants lists the constants of exactly the type named, declared
// in the type's own package. For an imported package the export data
// carries only exported constants — which is the visible enum surface a
// cross-package switch can name anyway.
func enumConstants(named *types.Named) []*types.Const {
	scope := named.Obj().Pkg().Scope()
	var out []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if types.Identical(types.Unalias(c.Type()), named) {
			out = append(out, c)
		}
	}
	return out
}
