package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicMix catches torn access disciplines: a struct field that is
// read or written through the sync/atomic free functions
// (atomic.AddInt64(&s.n, 1), atomic.LoadUint32(&s.flag), ...) anywhere
// in the package must never also be accessed plainly — a plain read
// races with the atomic writers, and the -race detector only notices
// when a soak happens to interleave the two. The single exemption is
// the owner's constructors (any function in the package whose results
// include the struct type or a pointer to it): before the value
// escapes, plain initialization is the idiom.
//
// Fields typed as the sync/atomic wrapper types (atomic.Int64,
// atomic.Bool, atomic.Pointer[T], ...) are immune by construction —
// they have no plain access to mix — which is why this codebase
// prefers them; this analyzer exists to keep any future free-function
// usage honest.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "fields accessed via sync/atomic must not also be accessed plainly outside the owner's constructors",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) error {
	info := pass.TypesInfo

	// Pass 1: collect every field passed by address to a sync/atomic
	// free function, and remember the exact &x.f argument nodes so
	// pass 2 does not flag the atomic call sites themselves.
	atomicFields := make(map[*types.Var]string) // field -> atomic func name seen
	atomicArgSel := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			name, ok := atomicFreeFunc(info, call)
			if !ok {
				return true
			}
			un, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok {
				return true
			}
			sel, ok := un.X.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fv := selectedField(info, sel)
			if fv == nil {
				return true
			}
			atomicFields[fv] = name
			atomicArgSel[sel] = true
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: flag every other selector of those fields, unless it
	// sits inside a constructor of the owning struct.
	for _, f := range pass.Files {
		withStack(f, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicArgSel[sel] {
				return true
			}
			fv := selectedField(info, sel)
			if fv == nil {
				return true
			}
			fn, ok := atomicFields[fv]
			if !ok {
				return true
			}
			if inConstructorOf(info, stack, fieldOwner(info, sel)) {
				return true
			}
			pass.Reportf(sel.Sel.Pos(), "plain access to field %s, which is accessed with atomic.%s elsewhere; use sync/atomic consistently", fv.Name(), fn)
			return true
		})
	}
	return nil
}

// atomicFreeFunc reports whether call invokes a sync/atomic package
// function whose first argument is an address (Add*, Load*, Store*,
// Swap*, CompareAndSwap*), returning the function name.
func atomicFreeFunc(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return "", false
	}
	name := obj.Name()
	for _, prefix := range []string{"Add", "And", "Or", "Load", "Store", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(name, prefix) {
			return name, true
		}
	}
	return "", false
}

// selectedField resolves x.f to the struct field *types.Var it
// denotes, or nil when the selector is not a field access.
func selectedField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// fieldOwner returns the named struct type the selector's field is
// reached through (after pointer indirection), or nil.
func fieldOwner(info *types.Info, sel *ast.SelectorExpr) *types.Named {
	s, ok := info.Selections[sel]
	if !ok {
		return nil
	}
	t := s.Recv()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := types.Unalias(t).(*types.Named)
	return named
}

// inConstructorOf reports whether the innermost enclosing FuncDecl
// returns owner (or *owner): a constructor may initialize atomic
// fields plainly before the value escapes.
func inConstructorOf(info *types.Info, stack []ast.Node, owner *types.Named) bool {
	if owner == nil {
		return false
	}
	for i := len(stack) - 1; i >= 0; i-- {
		fd, ok := stack[i].(*ast.FuncDecl)
		if !ok {
			continue
		}
		if fd.Type.Results == nil {
			return false
		}
		for _, res := range fd.Type.Results.List {
			t := info.Types[res.Type].Type
			if p, ok := types.Unalias(t).(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := types.Unalias(t).(*types.Named); ok && named.Obj() == owner.Obj() {
				return true
			}
		}
		return false
	}
	return false
}
