package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"
)

// This file implements the cmd/go vet tool protocol — the same
// contract golang.org/x/tools/go/analysis/unitchecker fulfills — on
// the standard library alone, so `go vet -vettool=$(which sgelint)
// ./...` drives the suite with full build-cache integration:
//
//  1. `sgelint -flags` prints a JSON description of the tool's flags
//     (none) so cmd/go can merge them into its own flag set.
//  2. `sgelint -V=full` prints a versioned identity line that cmd/go
//     hashes into its action cache keys, so analyzer changes (a new
//     binary) invalidate cached vet verdicts.
//  3. `sgelint <dir>/vet.cfg` analyzes one package: cmd/go writes a
//     JSON config naming the source files, the import map, and the
//     export-data file of every dependency; the tool type-checks from
//     those (importer.ForCompiler("gc", lookup) — no network, no
//     GOPATH source), runs the suite, prints findings, and writes the
//     (empty — no cross-package facts) .vetx output cmd/go caches.
//
// For dependency packages cmd/go sets VetxOnly: only facts are wanted.
// This suite has no facts, so those runs write the empty output and
// exit without parsing a single file — which keeps `go vet -vettool`
// over the whole module fast even though cmd/go schedules every
// transitive standard-library package.

// vetConfig mirrors cmd/go/internal/work.vetConfig (the JSON written
// next to each package's build actions). Unused fields are kept so the
// contract is documented in one place.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string
	ImportMap    map[string]string
	PackageFile  map[string]string
	Standard     map[string]bool
	PackageVetx  map[string]string
	VetxOnly     bool
	VetxOutput   string

	SucceedOnTypecheckFailure bool
}

// Main is the entry point for the sgelint binary: it speaks the vet
// tool protocol described above and exits. Findings go to stderr in
// the usual file:line:col form; any finding makes the run (and hence
// `go vet`) fail.
func Main(analyzers []*Analyzer) {
	progname := "sgelint"
	args := os.Args[1:]
	switch {
	case len(args) == 1 && args[0] == "-flags":
		fmt.Println("[]")
		os.Exit(0)
	case len(args) == 1 && args[0] == "-V=full":
		// cmd/go parses this line (see work.Builder.toolID): field 2
		// "devel" requires the last field to carry the content hash it
		// keys its vet cache on — hash the binary itself.
		self, err := os.Executable()
		if err != nil {
			self = os.Args[0]
		}
		f, err := os.Open(self)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		h := sha256.New()
		if _, err := io.Copy(h, f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("%s version devel buildID=%02x\n", progname, h.Sum(nil))
		os.Exit(0)
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		code, err := analyzeConfig(args[0], analyzers, os.Stderr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(1)
		}
		os.Exit(code)
	}
	fmt.Fprintf(os.Stderr, `usage of %[1]s, the sgelint invariant suite:

	go vet -vettool=$(command -v %[1]s) ./...

(%[1]s is a vet tool, not a standalone command: cmd/go resolves the
packages, builds dependency export data, and invokes %[1]s once per
package with a generated vet.cfg.)

Analyzers:
`, progname)
	for _, a := range analyzers {
		fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nSuppress a finding with `//sgelint:ignore <analyzer> <justification>`\non the offending line or the line above it.\n")
	os.Exit(2)
}

// analyzeConfig runs the suite over one vet.cfg unit of work. The
// returned code is the process exit status: 0 clean, 2 findings.
func analyzeConfig(cfgPath string, analyzers []*Analyzer, out io.Writer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}

	// Dependency runs want only facts; this suite has none. Write the
	// empty output (cmd/go caches it) and skip all work.
	if cfg.VetxOnly {
		return 0, writeVetx(cfg)
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, writeVetx(cfg)
			}
			return 0, err
		}
		files = append(files, f)
	}

	pkg, info, err := typecheck(fset, files, cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, writeVetx(cfg)
		}
		return 0, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	diags, err := Run(fset, files, pkg, info, analyzers)
	if err != nil {
		return 0, err
	}
	for _, d := range diags {
		fmt.Fprintf(out, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if err := writeVetx(cfg); err != nil {
		return 0, err
	}
	if len(diags) > 0 {
		return 2, nil
	}
	return 0, nil
}

// writeVetx writes the (empty) facts output cmd/go expects; without it
// the action cache cannot memoize this package's vet verdict.
func writeVetx(cfg *vetConfig) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	return os.WriteFile(cfg.VetxOutput, nil, 0o666)
}

// typecheck builds the types.Package for the unit: imports resolve
// through cfg.ImportMap to the export-data files cmd/go already built.
func typecheck(fset *token.FileSet, files []*ast.File, cfg *vetConfig) (*types.Package, *types.Info, error) {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	base, ok := importer.ForCompiler(fset, compiler, lookup).(types.ImporterFrom)
	if !ok {
		return nil, nil, fmt.Errorf("importer for compiler %q does not support ImportFrom", compiler)
	}
	tcfg := &types.Config{
		Importer:  unsafeAwareImporter{base},
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(compiler, goarch()),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// unsafeAwareImporter short-circuits the one package that has no
// export data.
type unsafeAwareImporter struct {
	base types.ImporterFrom
}

func (m unsafeAwareImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m unsafeAwareImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return m.base.ImportFrom(path, dir, mode)
}

func goarch() string {
	if a := os.Getenv("GOARCH"); a != "" {
		return a
	}
	return runtime.GOARCH
}
