// Package analysistest runs sgelint analyzers over fixture packages
// and checks their findings against // want annotations, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library
// alone.
//
// Fixtures live under testdata/src/<pkg>/ and are plain Go packages
// (skipped by the go tool because of the testdata path element). They
// may import the standard library — resolved by the source importer
// from GOROOT, so tests need no network and no pre-built export data —
// but not each other.
//
// An expectation is a comment on the offending line:
//
//	x := T{}        // want "missing field"
//	y := f(ctx)     // want "first finding" "second finding"
//
// Each quoted string is a regular expression that must match the
// message of exactly one finding reported on that line; findings with
// no matching expectation, and expectations with no matching finding,
// fail the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"testing"

	"parsge/internal/analysis"
)

// The source importer re-typechecks each imported package from GOROOT
// source; it caches internally, so one shared instance (it is not
// safe for concurrent use — guarded by mu) keeps fixture suites fast.
var (
	mu        sync.Mutex
	sharedSet = token.NewFileSet()
	sharedImp = importer.ForCompiler(sharedSet, "source", nil)
)

// Run analyzes each fixture package under filepath.Join(testdata,
// "src", pkg) with the given analyzers (through analysis.Run, so the
// //sgelint:ignore suppression path is active exactly as in the real
// driver) and reports mismatches against the // want annotations.
func Run(t testing.TB, testdata string, analyzers []*analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", pkg)
		if err := runPackage(t, dir, pkg, analyzers); err != nil {
			t.Errorf("%s: %v", pkg, err)
		}
	}
}

func runPackage(t testing.TB, dir, pkgPath string, analyzers []*analysis.Analyzer) error {
	t.Helper()
	mu.Lock()
	defer mu.Unlock()

	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(sharedSet, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return fmt.Errorf("no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tcfg := &types.Config{Importer: sharedImp}
	pkg, err := tcfg.Check(pkgPath, sharedSet, files, info)
	if err != nil {
		return fmt.Errorf("typechecking fixture: %w", err)
	}

	diags, err := analysis.Run(sharedSet, files, pkg, info, analyzers)
	if err != nil {
		return err
	}

	wants := collectWants(t, sharedSet, files)
	for _, d := range diags {
		p := sharedSet.Position(d.Pos)
		key := posKey{p.Filename, p.Line}
		if !claimWant(wants[key], d.Message) {
			t.Errorf("%s:%d: unexpected finding: %s: %s", p.Filename, p.Line, d.Analyzer, d.Message)
		}
	}
	var keys []posKey
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.claimed {
				t.Errorf("%s:%d: no finding matched want %q", k.file, k.line, w.re.String())
			}
		}
	}
	return nil
}

type posKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	claimed bool
}

// claimWant marks (and reports) the first unclaimed expectation on the
// line whose pattern matches the message.
func claimWant(ws []*want, message string) bool {
	for _, w := range ws {
		if !w.claimed && w.re.MatchString(message) {
			w.claimed = true
			return true
		}
	}
	return false
}

var wantRE = regexp.MustCompile(`// want((?:\s+(?:"(?:[^"\\]|\\.)*"|` + "`[^`]*`" + `))+)`)
var wantArgRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"|` + "`[^`]*`")

// collectWants parses every // want annotation, keyed by the line the
// comment sits on.
func collectWants(t testing.TB, fset *token.FileSet, files []*ast.File) map[posKey][]*want {
	t.Helper()
	out := make(map[posKey][]*want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				p := fset.Position(c.Pos())
				for _, arg := range wantArgRE.FindAllString(m[1], -1) {
					var pat string
					if arg[0] == '`' {
						pat = arg[1 : len(arg)-1]
					} else {
						var err error
						pat, err = strconv.Unquote(arg)
						if err != nil {
							t.Errorf("%s:%d: bad want pattern %s: %v", p.Filename, p.Line, arg, err)
							continue
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", p.Filename, p.Line, pat, err)
						continue
					}
					key := posKey{p.Filename, p.Line}
					out[key] = append(out[key], &want{re: re})
				}
			}
		}
	}
	return out
}
