package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// CtxBackground keeps cancellation threaded through every engine path:
// context.Background() and context.TODO() are forbidden outside
// process entry points (cmd/...), examples, and tests. A Background()
// deep in library code severs the query from its caller's deadline —
// the exact leak class PR 1 removed when it threaded ctx through every
// engine. Library code that wants a default for a nil caller context
// must either require one or carry a //sgelint:ignore with its
// justification, so each such boundary stays a reviewed decision.
var CtxBackground = &Analyzer{
	Name: "ctxbackground",
	Doc:  "context.Background()/context.TODO() are forbidden outside cmd/, examples/, and _test.go files",
	Run:  runCtxBackground,
}

func runCtxBackground(pass *Pass) error {
	for _, f := range pass.Files {
		if ctxBackgroundExempt(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				return true
			}
			if name := fn.Name(); name == "Background" || name == "TODO" {
				pass.Reportf(call.Pos(), "context.%s() outside cmd/, examples/, or a test severs cancellation; thread the caller's ctx through", name)
			}
			return true
		})
	}
	return nil
}

// ctxBackgroundExempt reports whether a file may legitimately mint a
// root context: process entry points under a cmd/ or examples/ path
// segment, and test files.
func ctxBackgroundExempt(filename string) bool {
	if strings.HasSuffix(filename, "_test.go") {
		return true
	}
	for _, seg := range strings.Split(filepath.ToSlash(filename), "/") {
		if seg == "cmd" || seg == "examples" {
			return true
		}
	}
	return false
}
