package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// CtxSend enforces the send-or-cancel streaming rule (PR 1 / PR 5): in
// any function that receives a context.Context — including closures
// nested inside one — a channel send must not be able to block past
// cancellation. A send is accepted when it is a case of a select that
// also has a <-ctx.Done() case (directly, or through a variable bound
// to ctx.Done()) or a default case; or when it targets a locally made
// channel with constant capacity ≥ 1 and sits outside any loop (the
// one-shot buffered terminal-event idiom: `end := make(chan T, 1)`).
// Anything else is the abandonment leak the streaming API was rebuilt
// to exclude: a consumer that stops draining pins the producer
// goroutine forever.
var CtxSend = &Analyzer{
	Name: "ctxsend",
	Doc:  "channel sends in context-bearing functions must be select-guarded by ctx.Done() (or go to a buffered local channel outside a loop)",
	Run:  runCtxSend,
}

func runCtxSend(pass *Pass) error {
	info := pass.TypesInfo

	// Pass 1 (package-wide): variables bound to ctx.Done() results
	// (`cancelled := qctx.Done()`) guard selects just like a direct
	// call; variables bound to `make(chan T, k)` with constant k ≥ 1
	// are buffered one-shot channels.
	doneVars := make(map[*types.Var]bool)
	bufferedChans := make(map[*types.Var]bool)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || rhs == nil {
			return
		}
		v, _ := info.Defs[id].(*types.Var)
		if v == nil {
			v, _ = info.Uses[id].(*types.Var)
		}
		if v == nil {
			return
		}
		if isDoneCall(info, rhs) {
			doneVars[v] = true
		}
		if isBufferedMake(info, rhs) {
			bufferedChans[v] = true
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) == len(st.Rhs) {
					for i := range st.Lhs {
						record(st.Lhs[i], st.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(st.Names) == len(st.Values) {
					for i := range st.Names {
						record(st.Names[i], st.Values[i])
					}
				}
			}
			return true
		})
	}

	// Pass 2: judge every send statement.
	for _, f := range pass.Files {
		withStack(f, func(n ast.Node, stack []ast.Node) bool {
			send, ok := n.(*ast.SendStmt)
			if !ok {
				return true
			}
			if !enclosingCtxFunc(info, stack) {
				return true
			}
			if selectGuardsSend(info, send, stack, doneVars) {
				return true
			}
			if bufferedChans[usedVar(info, send.Chan)] && !inLoop(stack) {
				return true
			}
			pass.Reportf(send.Arrow,
				"send on %s in a context-bearing function can block past cancellation; guard it with a select on ctx.Done()",
				types.ExprString(send.Chan))
			return true
		})
	}
	return nil
}

// isBufferedMake reports whether e is make(chan T, k) with constant
// k ≥ 1.
func isBufferedMake(info *types.Info, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
		return false
	}
	if _, ok := types.Unalias(info.Types[call.Args[0]].Type).(*types.Chan); !ok {
		return false
	}
	tv, ok := info.Types[call.Args[1]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false
	}
	return constant.Sign(tv.Value) > 0
}

// selectGuardsSend reports whether the send (whose ancestor stack is
// given) is the communication of a select case, and that select also
// offers an escape: a <-ctx.Done() case (direct call or done-variable)
// or a default case.
func selectGuardsSend(info *types.Info, send *ast.SendStmt, stack []ast.Node, doneVars map[*types.Var]bool) bool {
	// Stack shape for a guarded send: ..., SelectStmt, BlockStmt,
	// CommClause; the send must be the clause's Comm statement — a
	// send in a case *body* is an ordinary blocking send.
	if len(stack) < 3 {
		return false
	}
	clause, ok := stack[len(stack)-1].(*ast.CommClause)
	if !ok || clause.Comm != ast.Stmt(send) {
		return false
	}
	sel, ok := stack[len(stack)-3].(*ast.SelectStmt)
	if !ok {
		return false
	}
	for _, s := range sel.Body.List {
		cc, ok := s.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil { // default clause: the select cannot block
			return true
		}
		if recvIsDone(info, cc.Comm, doneVars) {
			return true
		}
	}
	return false
}

// recvIsDone reports whether a select communication statement receives
// from a context's Done channel.
func recvIsDone(info *types.Info, comm ast.Stmt, doneVars map[*types.Var]bool) bool {
	var recv ast.Expr
	switch st := comm.(type) {
	case *ast.ExprStmt:
		recv = st.X
	case *ast.AssignStmt:
		if len(st.Rhs) == 1 {
			recv = st.Rhs[0]
		}
	}
	un, ok := recv.(*ast.UnaryExpr)
	if !ok {
		return false
	}
	if isDoneCall(info, un.X) {
		return true
	}
	return doneVars[usedVar(info, un.X)]
}

// inLoop reports whether any stack entry between the innermost
// function and the node is a for/range statement: a "one-shot" send
// inside a loop is not one-shot.
func inLoop(stack []ast.Node) bool {
	for _, n := range stack {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}
