package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// EpochKey guards the PR 7 stale-cache bug class: every cache /
// singleflight key struct that embeds a target mutation epoch must be
// constructed with that epoch set explicitly. Key structs are
// designated with a marker on their declaration:
//
//	//sgelint:epochkey            // epoch fields inferred by name
//	//sgelint:epochkey epoch gen  // epoch fields listed explicitly
//
// Without arguments, every field whose name contains "epoch"
// (case-insensitive) is required. A composite literal of a marked
// struct that omits a required field — including the empty literal
// T{} — is a finding: a zero epoch silently aliases traffic onto graph
// version 0, which is exactly how a superseded cache entry outlives an
// update. Positional literals are accepted (the compiler already
// forces them to be complete). Markers are discovered in the package
// under analysis, so literals and declaration must share a package —
// which is also the only sound place to build a key.
var EpochKey = &Analyzer{
	Name: "epochkey",
	Doc:  "composite literals of //sgelint:epochkey-marked structs must set their epoch field(s) explicitly",
	Run:  runEpochKey,
}

func runEpochKey(pass *Pass) error {
	marked := markedTypes(pass, "epochkey")
	if len(marked) == 0 {
		return nil
	}

	// Resolve each marked type to its required field set.
	required := make(map[*types.TypeName][]string, len(marked))
	for tn, args := range marked {
		st, ok := types.Unalias(tn.Type()).Underlying().(*types.Struct)
		if !ok {
			pass.Reportf(tn.Pos(), "//sgelint:epochkey marker on %s, which is not a struct type", tn.Name())
			continue
		}
		fields := args
		if len(fields) == 0 {
			for i := 0; i < st.NumFields(); i++ {
				if name := st.Field(i).Name(); strings.Contains(strings.ToLower(name), "epoch") {
					fields = append(fields, name)
				}
			}
		} else {
			for _, name := range fields {
				if !structHasField(st, name) {
					pass.Reportf(tn.Pos(), "//sgelint:epochkey marker on %s names missing field %q", tn.Name(), name)
				}
			}
		}
		if len(fields) == 0 {
			pass.Reportf(tn.Pos(), "//sgelint:epochkey marker on %s, which has no epoch field (name one explicitly: //sgelint:epochkey <field>)", tn.Name())
			continue
		}
		required[tn] = fields
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[lit]
			if !ok {
				return true
			}
			named, ok := types.Unalias(tv.Type).(*types.Named)
			if !ok {
				return true
			}
			fields, ok := required[named.Obj()]
			if !ok {
				return true
			}
			// Positional literals must be complete, so the epoch is
			// necessarily present; only keyed (and empty) literals can
			// omit fields.
			if len(lit.Elts) > 0 {
				if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); !keyed {
					return true
				}
			}
			present := make(map[string]bool, len(lit.Elts))
			for _, el := range lit.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						present[id.Name] = true
					}
				}
			}
			for _, name := range fields {
				if !present[name] {
					pass.Reportf(lit.Pos(), "composite literal of epoch-keyed struct %s does not set %q; a zero epoch aliases graph version 0", named.Obj().Name(), name)
				}
			}
			return true
		})
	}
	return nil
}

func structHasField(st *types.Struct, name string) bool {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return true
		}
	}
	return false
}
