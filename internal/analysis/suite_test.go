package analysis_test

import (
	"testing"

	"parsge/internal/analysis"
	"parsge/internal/analysis/analysistest"
)

// Each analyzer runs alone over its fixture: the fixtures contain real
// `// want` violations, so disabling an analyzer fails its test with
// unmatched expectations — the suite cannot silently lose a checker.

func TestCtxSend(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.CtxSend}, "ctxsend")
}

func TestEpochKey(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.EpochKey}, "epochkey")
}

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.AtomicMix}, "atomicmix")
}

func TestSemExhaustive(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.SemExhaustive}, "semexhaustive")
}

func TestCtxBackground(t *testing.T) {
	// The cmd/bgok fixture is the non-flagging half: a cmd/ path
	// segment exempts root-context construction.
	analysistest.Run(t, "testdata", []*analysis.Analyzer{analysis.CtxBackground}, "ctxbackground", "cmd/bgok")
}

// TestSuppression runs the full suite over the suppress fixture: a
// well-formed //sgelint:ignore (same line and line-above forms)
// silences its finding, while malformed, unknown-analyzer, and stale
// directives are findings themselves.
func TestSuppression(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.All(), "suppress")
}

// recordingTB captures failure reports so a test can assert that the
// harness *would* fail.
type recordingTB struct {
	testing.TB
	failed bool
}

func (r *recordingTB) Helper()                      {}
func (r *recordingTB) Errorf(string, ...any)        { r.failed = true }
func (r *recordingTB) Fatalf(f string, args ...any) { r.failed = true; r.TB.Fatalf(f, args...) }

// TestFixturesRequireAnalyzers is the disabled-analyzer tripwire: every
// fixture carries real violations, so running it with its analyzer
// removed must produce unmatched // want expectations. If this test
// fails, a fixture has gone vacuous and no longer pins its analyzer.
func TestFixturesRequireAnalyzers(t *testing.T) {
	fixtures := []string{"ctxsend", "epochkey", "atomicmix", "semexhaustive", "ctxbackground"}
	for _, fx := range fixtures {
		rec := &recordingTB{TB: t}
		analysistest.Run(rec, "testdata", nil, fx)
		if !rec.failed {
			t.Errorf("fixture %q reports no mismatch with its analyzer disabled; it must contain real // want violations", fx)
		}
	}
}

// TestAllAnalyzersRegistered pins the suite composition: the vet
// driver and the fixtures above must agree on what "all" means.
func TestAllAnalyzersRegistered(t *testing.T) {
	want := []string{"ctxsend", "epochkey", "atomicmix", "semexhaustive", "ctxbackground"}
	all := analysis.All()
	if len(all) != len(want) {
		t.Fatalf("All() has %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q lacks Doc or Run", a.Name)
		}
	}
}
