package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// withStack walks root in depth-first order, calling fn for every node
// with the stack of its ancestors (outermost first, root included,
// node itself excluded). Returning false prunes the subtree.
func withStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// isNamedType reports whether t (after unaliasing) is the defined type
// pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool { return isNamedType(t, "context", "Context") }

// hasContextParam reports whether the function type declares a
// parameter of type context.Context.
func hasContextParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if tv, ok := info.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// enclosingCtxFunc reports whether any function on the stack (FuncDecl
// or FuncLit, innermost included) receives a context.Context parameter.
// A closure nested in a context-bearing function counts: it closes over
// the context and owes the same discipline.
func enclosingCtxFunc(info *types.Info, stack []ast.Node) bool {
	for _, n := range stack {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if hasContextParam(info, fn.Type) {
				return true
			}
		case *ast.FuncLit:
			if hasContextParam(info, fn.Type) {
				return true
			}
		}
	}
	return false
}

// isDoneCall reports whether e is a call of the Done method on a
// context.Context value (`ctx.Done()`).
func isDoneCall(info *types.Info, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	tv, ok := info.Types[sel.X]
	return ok && isContextType(tv.Type)
}

// usedVar resolves an expression to the *types.Var it names, or nil.
func usedVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

// marker is one //sgelint:<name> directive (other than ignore)
// attached to a declaration, e.g. //sgelint:epochkey epoch.
type marker struct {
	name string
	args []string
}

// commentMarkers parses sgelint markers out of a comment group.
func commentMarkers(cg *ast.CommentGroup, out []marker) []marker {
	if cg == nil {
		return out
	}
	for _, c := range cg.List {
		if !strings.HasPrefix(c.Text, "//sgelint:") || strings.HasPrefix(c.Text, ignorePrefix) {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(c.Text, "//sgelint:"))
		if len(fields) == 0 {
			continue
		}
		out = append(out, marker{name: fields[0], args: fields[1:]})
	}
	return out
}

// typeMarkers collects the sgelint markers attached to a type
// declaration: on the enclosing GenDecl's doc, the TypeSpec's doc, or
// the TypeSpec's trailing line comment.
func typeMarkers(gd *ast.GenDecl, ts *ast.TypeSpec) []marker {
	var out []marker
	// A doc comment on a grouped GenDecl applies to the group, not one
	// spec — only attribute it when the declaration holds a single spec.
	if len(gd.Specs) == 1 {
		out = commentMarkers(gd.Doc, out)
	}
	out = commentMarkers(ts.Doc, out)
	out = commentMarkers(ts.Comment, out)
	return out
}

// markedTypes returns, for each struct/defined type in the package
// carrying the given marker, its *types.TypeName mapped to the marker's
// arguments.
func markedTypes(pass *Pass, markerName string) map[*types.TypeName][]string {
	out := make(map[*types.TypeName][]string)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				for _, m := range typeMarkers(gd, ts) {
					if m.name != markerName {
						continue
					}
					if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
						out[tn] = m.args
					}
				}
			}
		}
	}
	return out
}
