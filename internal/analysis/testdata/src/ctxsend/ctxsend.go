// Package ctxsend is the fixture for the ctxsend analyzer: sends in
// context-bearing functions must be select-guarded or buffered
// one-shots.
package ctxsend

import "context"

func work(ctx context.Context) int { return len(ctx.Err().Error()) }

func bareSend(ctx context.Context, out chan<- int) {
	out <- 1 // want "send on out in a context-bearing function can block past cancellation"
}

func guardedDirect(ctx context.Context, out chan<- int) {
	select {
	case out <- 2:
	case <-ctx.Done():
	}
}

func guardedViaVar(ctx context.Context, out chan<- int) {
	cancelled := ctx.Done()
	select {
	case out <- 3:
	case <-cancelled:
	}
}

func guardedDefault(ctx context.Context, out chan<- int) {
	select {
	case out <- 4:
	default:
	}
}

func selectWithoutEscape(ctx context.Context, out chan<- int, in <-chan int) {
	select {
	case out <- 5: // want "can block past cancellation"
	case v := <-in:
		_ = v
	}
}

func sendInCaseBody(ctx context.Context, out chan<- int) {
	select {
	case <-ctx.Done():
		out <- 6 // want "can block past cancellation"
	}
}

func bufferedTerminal(ctx context.Context) <-chan error {
	errc := make(chan error, 1)
	go func() {
		errc <- ctx.Err() // one-shot buffered terminal channel: accepted
	}()
	return errc
}

func bufferedInLoop(ctx context.Context, n int) <-chan int {
	c := make(chan int, 8)
	for i := 0; i < n; i++ {
		c <- i // want "can block past cancellation"
	}
	close(c)
	return c
}

func unbuffered(ctx context.Context) <-chan int {
	c := make(chan int)
	go func() {
		c <- 7 // want "can block past cancellation"
	}()
	return c
}

func noContextAnywhere(out chan<- int) {
	out <- 8 // no context in scope: not this analyzer's business
}

func closureInheritsCtx(ctx context.Context, out chan<- int) func() {
	return func() {
		out <- 9 // want "can block past cancellation"
	}
}

func closureOwnCtx(out chan<- int) func(context.Context) {
	return func(ctx context.Context) {
		out <- 10 // want "can block past cancellation"
	}
}
