// Package semexhaustive is the fixture for the semexhaustive
// analyzer: switches over designated enum types must cover every
// declared constant or carry a non-empty default.
package semexhaustive

//sgelint:exhaustive
type Mode int

const (
	ModeA Mode = iota
	ModeB
	ModeC
)

func incomplete(m Mode) int {
	switch m { // want "switch over semexhaustive.Mode is not exhaustive: missing ModeC"
	case ModeA:
		return 1
	case ModeB:
		return 2
	}
	return 0
}

func complete(m Mode) int {
	switch m {
	case ModeA, ModeB:
		return 1
	case ModeC:
		return 2
	}
	return 0
}

func emptyDefault(m Mode) int {
	switch m { // want "missing ModeC.*empty default silently ignores"
	case ModeA, ModeB:
		return 1
	default:
	}
	return 0
}

func handledDefault(m Mode) int {
	switch m {
	case ModeA:
		return 1
	default:
		panic("unhandled mode")
	}
}

// plain is not designated: its switches are unconstrained.
type plain int

const plainA plain = 0

func unwatched(p plain) {
	switch p {
	case plainA:
	}
}
