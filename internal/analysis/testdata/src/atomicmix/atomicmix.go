// Package atomicmix is the fixture for the atomicmix analyzer: a
// field touched through sync/atomic free functions must never also be
// accessed plainly outside its owner's constructors.
package atomicmix

import "sync/atomic"

type counter struct {
	n     int64
	other int64
}

func newCounter(seed int64) *counter {
	c := &counter{}
	c.n = seed // constructor: plain initialization before escape is fine
	return c
}

func (c *counter) inc() { atomic.AddInt64(&c.n, 1) }

func (c *counter) load() int64 { return atomic.LoadInt64(&c.n) }

func (c *counter) torn() int64 {
	return c.n // want "plain access to field n, which is accessed with atomic"
}

func reset(c *counter) {
	c.n = 0 // want "plain access to field n"
}

func (c *counter) untouched() int64 {
	return c.other // never accessed atomically: fine
}

// gauge uses the wrapper types, which cannot be accessed plainly at
// all — nothing for the analyzer to do.
type gauge struct {
	v atomic.Int64
}

func (g *gauge) read() int64 { return g.v.Load() }

func (g *gauge) bump() { g.v.Add(1) }
