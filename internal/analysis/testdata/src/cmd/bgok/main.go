// Command bgok is the non-flagging half of the ctxbackground fixture:
// a path with a cmd/ segment is a process entry point, where minting
// the root context is exactly right.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = context.TODO()
	_ = ctx
}
