// Package ctxbackground is the fixture for the ctxbackground
// analyzer: no root contexts outside cmd/, examples/, and tests.
package ctxbackground

import "context"

func root() context.Context {
	return context.Background() // want `context.Background\(\) outside cmd/, examples/, or a test`
}

func todo() context.Context {
	return context.TODO() // want `context.TODO\(\) outside cmd/, examples/, or a test`
}

func threaded(ctx context.Context) context.Context {
	return ctx
}

// withCancel derives from a caller context — deriving is the point.
func withCancel(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(ctx)
}
