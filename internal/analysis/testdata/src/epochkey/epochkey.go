// Package epochkey is the fixture for the epochkey analyzer:
// composite literals of marked key structs must set their epoch
// field(s) explicitly.
package epochkey

// cacheKey relies on field-name inference: "epoch" is required.
//
//sgelint:epochkey
type cacheKey struct {
	id    string
	epoch uint64
}

// flightKey lists its required field explicitly (it is not named
// anything epoch-like).
//
//sgelint:epochkey gen
type flightKey struct {
	id  string
	gen uint64
}

//sgelint:epochkey
type noEpoch struct { // want "has no epoch field"
	id string
}

//sgelint:epochkey missing
type wrongField struct { // want `names missing field "missing"`
	epoch uint64
}

type unmarked struct {
	id    string
	epoch uint64
}

// rowCache mirrors the engine's epoch-tagged bitset-row cache entry
// (a pointer payload stamped with the index generation it was built
// at): a forgotten epoch here silently serves stale adjacency rows
// after an update, which is exactly what the analyzer exists to catch.
//
//sgelint:epochkey
type rowCache struct {
	rows  *[]uint64
	epoch uint64
}

func construct(e uint64) []any {
	good := cacheKey{id: "a", epoch: e}
	positional := cacheKey{"b", e} // complete by construction: accepted
	missing := cacheKey{id: "c"}   // want `does not set "epoch"`
	empty := cacheKey{}            // want `does not set "epoch"`
	byPtr := &cacheKey{id: "d"}    // want `does not set "epoch"`
	f := flightKey{id: "e", gen: e}
	fMissing := flightKey{id: "f"} // want `does not set "gen"`
	plain := unmarked{id: "g"}     // unmarked struct: not checked
	rc := rowCache{rows: nil, epoch: e}
	rcStale := rowCache{rows: nil} // want `does not set "epoch"`
	rcEmpty := &rowCache{}         // want `does not set "epoch"`
	return []any{good, positional, missing, empty, byPtr, f, fMissing, plain, rc, rcStale, rcEmpty}
}
