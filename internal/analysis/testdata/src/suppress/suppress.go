// Package suppress is the fixture for the //sgelint:ignore directive:
// well-formed suppressions silence a finding (same line or the line
// above), malformed or dangling ones are themselves findings.
package suppress

import "context"

func sameLine(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background() //sgelint:ignore ctxbackground nil-ctx compatibility default, fixture edition
	}
	return ctx
}

func lineAbove() context.Context {
	//sgelint:ignore ctxbackground fixture: the justification sits on the line above the finding
	return context.Background()
}

func missingJustification() context.Context {
	return context.Background() //sgelint:ignore ctxbackground // want "malformed suppression" "severs cancellation"
}

func unknownAnalyzer() {
	//sgelint:ignore nosuchanalyzer because this analyzer does not exist // want `suppression names unknown analyzer "nosuchanalyzer"`
	_ = 0
}

func stale() {
	//sgelint:ignore ctxsend the offending send was removed long ago // want `suppression for "ctxsend" matches no finding`
	_ = 1
}
