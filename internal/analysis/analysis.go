// Package analysis is sgelint: a suite of static invariant checkers
// for the concurrency, epoch, and context discipline this codebase
// depends on, plus the driver machinery to run them under
// `go vet -vettool` (see unitchecker.go) and under tests (see the
// analysistest subpackage).
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis —
// Analyzer, Pass, Diagnostic — but is built on the standard library
// only (go/ast, go/types, go/importer), because this module vendors
// nothing and adds no dependencies. Facts (cross-package analysis
// state) are not supported; every analyzer here is a per-package
// checker, with cross-package knowledge limited to what export data
// already carries (types, exported constants).
//
// Suppressions: a finding may be silenced with a comment on the same
// line, or the line immediately above it:
//
//	//sgelint:ignore <analyzer> <justification>
//
// The justification is mandatory — an ignore directive without one is
// itself reported. Unknown analyzer names in directives are reported
// too, so a typo cannot silently disable nothing.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //sgelint:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects a package and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// A Diagnostic is one finding: a position and a message, tagged with
// the analyzer that produced it.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreDirective is one parsed //sgelint:ignore comment.
type ignoreDirective struct {
	pos      token.Pos
	line     int    // line the directive appears on
	analyzer string // analyzer name it targets ("" = malformed)
	reason   string // justification ("" = malformed)
	used     bool
}

const ignorePrefix = "//sgelint:ignore"

// parseIgnores extracts every //sgelint:ignore directive from a file.
func parseIgnores(fset *token.FileSet, f *ast.File) []*ignoreDirective {
	var out []*ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			d := &ignoreDirective{pos: c.Pos(), line: fset.Position(c.Pos()).Line}
			text := strings.TrimPrefix(c.Text, ignorePrefix)
			// A justification never contains "//"; anything after one is
			// a nested comment (the fixtures' // want annotations ride
			// on directive lines this way).
			if i := strings.Index(text, "//"); i >= 0 {
				text = text[:i]
			}
			fields := strings.Fields(text)
			if len(fields) >= 1 {
				d.analyzer = fields[0]
			}
			if len(fields) >= 2 {
				d.reason = strings.Join(fields[1:], " ")
			}
			out = append(out, d)
		}
	}
	return out
}

// Run type-checks nothing — it receives an already-checked package —
// and runs every analyzer over it, returning the surviving
// diagnostics: findings silenced by a well-formed //sgelint:ignore
// directive (same line or the line immediately above) are dropped,
// malformed or dangling directives are reported, and the result is
// sorted by position.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		diags = append(diags, pass.diags...)
	}

	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	// Index directives by (file, analyzer, line). A directive on line L
	// suppresses matching findings on L (trailing comment) and L+1
	// (comment above the offending statement).
	type dirKey struct {
		file     string
		analyzer string
		line     int
	}
	dirs := make(map[dirKey][]*ignoreDirective)
	var all []*ignoreDirective
	for _, f := range files {
		fname := fset.Position(f.Pos()).Filename
		for _, d := range parseIgnores(fset, f) {
			all = append(all, d)
			if d.analyzer == "" || d.reason == "" {
				diags = append(diags, Diagnostic{
					Pos:      d.pos,
					Analyzer: "sgelint",
					Message:  "malformed suppression: want //sgelint:ignore <analyzer> <justification>",
				})
				continue
			}
			if !known[d.analyzer] {
				diags = append(diags, Diagnostic{
					Pos:      d.pos,
					Analyzer: "sgelint",
					Message:  fmt.Sprintf("suppression names unknown analyzer %q", d.analyzer),
				})
				continue
			}
			k := dirKey{fname, d.analyzer, d.line}
			dirs[k] = append(dirs[k], d)
		}
	}

	kept := diags[:0]
	for _, d := range diags {
		if d.Analyzer != "sgelint" {
			p := fset.Position(d.Pos)
			suppressed := false
			for _, line := range [2]int{p.Line, p.Line - 1} {
				for _, dir := range dirs[dirKey{p.Filename, d.Analyzer, line}] {
					dir.used = true
					suppressed = true
				}
			}
			if suppressed {
				continue
			}
		}
		kept = append(kept, d)
	}
	diags = kept

	// A directive that suppressed nothing is dead weight — likely a
	// stale annotation after the offending code changed. Report it so
	// suppressions cannot rot in place.
	for _, d := range all {
		if d.analyzer != "" && d.reason != "" && known[d.analyzer] && !d.used {
			diags = append(diags, Diagnostic{
				Pos:      d.pos,
				Analyzer: "sgelint",
				Message:  fmt.Sprintf("suppression for %q matches no finding (stale //sgelint:ignore?)", d.analyzer),
			})
		}
	}

	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// All returns the full sgelint analyzer suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		CtxSend,
		EpochKey,
		AtomicMix,
		SemExhaustive,
		CtxBackground,
	}
}
