package bench

import (
	"parsge/internal/datasets"
	"parsge/internal/domain"
	"parsge/internal/graph"
	"parsge/internal/order"
	"parsge/internal/ri"
	"parsge/internal/stats"
)

// Ablations beyond the paper's figures: each isolates one design choice
// called out in DESIGN.md and measures its effect on a hard sample.

// AblationRow is one configuration of an ablation experiment.
type AblationRow struct {
	Name          string
	MeanMatchTime float64
	MeanTotalTime float64
	MeanSteals    float64
	MeanStates    float64
	MeanPreproc   float64
	WorkSpeedup   float64
	// MeanAllocs is the mean match-phase heap allocation count (only
	// measured on sequential RI runs, 0 elsewhere; see Record.Allocs).
	MeanAllocs float64
	// TotalMatches sums matches over the aggregated records — the exact
	// count the kernel acceptance test compares across configurations.
	TotalMatches int64
}

// AblationResult is a titled list of configurations.
type AblationResult struct {
	Title string
	Rows  []AblationRow
}

// aggregate folds records into an AblationRow.
func aggregate(name string, recs []Record) AblationRow {
	var ws []float64
	for _, r := range recs {
		ws = append(ws, r.WorkSpeedup())
	}
	var allocs []float64
	var matches int64
	for _, r := range recs {
		allocs = append(allocs, float64(r.Allocs))
		matches += r.Matches
	}
	return AblationRow{
		Name:          name,
		MeanMatchTime: meanSeconds(matchTimes(recs)),
		MeanTotalTime: meanSeconds(totalTimes(recs)),
		MeanSteals:    meanSteals(recs),
		MeanStates:    meanStates(recs),
		MeanPreproc:   meanSeconds(preprocTimes(recs)),
		WorkSpeedup:   stats.Mean(ws),
		MeanAllocs:    stats.Mean(allocs),
		TotalMatches:  matches,
	}
}

func (s *Suite) printAblation(res AblationResult) {
	s.printf("\n== Ablation: %s ==\n", res.Title)
	w := s.tab()
	row(w, "configuration\tmatch (s)\ttotal (s)\tsteals\tstates\tpreproc (s)\twork speedup\tallocs")
	for _, r := range res.Rows {
		row(w, "%s\t%.4f\t%.4f\t%.1f\t%.0f\t%.5f\t%.2f\t%.0f",
			r.Name, r.MeanMatchTime, r.MeanTotalTime, r.MeanSteals, r.MeanStates, r.MeanPreproc, r.WorkSpeedup, r.MeanAllocs)
	}
	flush(w)
}

// AblationStealEnd compares stealing from the back of the victim's deque
// (the paper's design: tasks near the root, long-running, few steals)
// against stealing from the front (deep, short-lived tasks).
func (s *Suite) AblationStealEnd() AblationResult {
	insts := s.hardestInstances("PPIS32", 8)
	res := AblationResult{Title: "load balancing (steal end §3.2(ii); receiver vs sender)"}
	back := s.runAll(insts, runConfig{
		variant: ri.VariantRIDS, workers: 8, group: 4, stealing: true, seed: s.Seed,
	})
	front := s.runAll(insts, runConfig{
		variant: ri.VariantRIDS, workers: 8, group: 4, stealing: true, frontSteal: true, seed: s.Seed,
	})
	sender := s.runAll(insts, runConfig{
		variant: ri.VariantRIDS, workers: 8, group: 4, stealing: true, senderInitiated: true, seed: s.Seed,
	})
	res.Rows = append(res.Rows,
		aggregate("steal from back (paper)", back),
		aggregate("steal from front", front),
		aggregate("sender-initiated dealing", sender))
	s.printAblation(res)
	s.csvAblation(res)
	return res
}

// AblationEagerCopy compares the paper's lazy mapping transfer (copy only
// on steals) against copying the mapping prefix with every spawned task
// group — the overhead the paper attributes to the Cilk++ VF2
// parallelization (§2.2.2).
func (s *Suite) AblationEagerCopy() AblationResult {
	insts := s.hardestInstances("GRAEMLIN32", 8)
	res := AblationResult{Title: "mapping copies (lazy on steal vs eager per task)"}
	lazy := s.runAll(insts, runConfig{
		variant: ri.VariantRIDS, workers: 8, group: 4, stealing: true, seed: s.Seed,
	})
	eager := s.runAll(insts, runConfig{
		variant: ri.VariantRIDS, workers: 8, group: 4, stealing: true, eagerCopy: true, seed: s.Seed,
	})
	res.Rows = append(res.Rows, aggregate("lazy copy (paper)", lazy), aggregate("eager copy", eager))
	s.printAblation(res)
	s.csvAblation(res)
	return res
}

// AblationInitialDistribution compares the paper's round-robin initial
// work distribution (§3.3) against seeding all root tasks on worker 0,
// which forces every other worker to bootstrap via stealing.
func (s *Suite) AblationInitialDistribution() AblationResult {
	insts := s.hardestInstances("PPIS32", 8)
	res := AblationResult{Title: "initial distribution (§3.3)"}
	rr := s.runAll(insts, runConfig{
		variant: ri.VariantRIDS, workers: 8, group: 4, stealing: true, seed: s.Seed,
	})
	w0 := s.runAll(insts, runConfig{
		variant: ri.VariantRIDS, workers: 8, group: 4, stealing: true, noInitDist: true, seed: s.Seed,
	})
	res.Rows = append(res.Rows, aggregate("round-robin (paper)", rr), aggregate("all on worker 0", w0))
	s.printAblation(res)
	s.csvAblation(res)
	return res
}

// AblationArcConsistency compares domain preprocessing depth: no arc
// consistency, a single pass (the original RI-DS description), and the
// fixpoint this implementation defaults to. The NLF filter is disabled
// for all three configurations so the measurement isolates AC depth
// (with NLF on, initial domains are already near-tight and ordering
// noise would swamp the AC effect).
func (s *Suite) AblationArcConsistency() AblationResult {
	insts := s.instances("GRAEMLIN32")
	res := AblationResult{Title: "arc-consistency depth (domains, §4.1; NLF off)"}
	none := s.runAll(insts, runConfig{variant: ri.VariantRIDS, workers: 1, skipAC: true, skipNLF: true})
	one := s.runAll(insts, runConfig{variant: ri.VariantRIDS, workers: 1, acPasses: 1, skipNLF: true})
	fix := s.runAll(insts, runConfig{variant: ri.VariantRIDS, workers: 1, skipNLF: true})
	res.Rows = append(res.Rows,
		aggregate("no AC (label+degree only)", none),
		aggregate("single pass (RI-DS paper)", one),
		aggregate("fixpoint (this impl)", fix))
	s.printAblation(res)
	s.csvAblation(res)
	return res
}

// pruningSemantics are the semantics the pruning ablation sweeps.
var pruningSemantics = []graph.Semantics{graph.SubgraphIso, graph.InducedIso, graph.Homomorphism}

// PruningRowName names one pruning-ablation configuration; the
// acceptance tests parse rows back by these names.
func PruningRowName(collection string, sem graph.Semantics, config string) string {
	return collection + "/" + sem.String() + "/" + config
}

// AblationPruningFilters measures the semantics-aware pruning
// subsystem on a dense (PPIS32) and a sparse (PDBSv1) collection under
// all three matching semantics, along two axes:
//
//   - the RI-DS pipeline with all filters on vs the pre-subsystem
//     baseline (label/degree + classic arc consistency only), plus —
//     under induced semantics, where the non-edge propagation is the
//     dominant filter — each new filter off individually;
//   - the VF2 engine with the pruning subsystem wired in vs its classic
//     domain-free baseline, measuring what threading the shared domain
//     reductions through an engine that historically had none buys.
//
// Instances are restricted to small patterns so the homomorphism sweeps
// stay cheap.
func (s *Suite) AblationPruningFilters() AblationResult {
	res := AblationResult{Title: "semantics-aware pruning (NLF + induced non-edge AC; RI-DS and VF2 wiring)"}
	for _, coll := range []string{"PPIS32", "PDBSv1"} {
		insts := s.smallInstances(coll, 6, 8)
		for _, sem := range pruningSemantics {
			base := runConfig{variant: ri.VariantRIDSSIFC, workers: 1, semantics: sem}
			off := base
			off.skipNLF, off.skipInducedAC = true, true
			res.Rows = append(res.Rows,
				aggregate(PruningRowName(coll, sem, "RI-DS filters on"), s.runAll(insts, base)),
				aggregate(PruningRowName(coll, sem, "RI-DS filters off"), s.runAll(insts, off)))
			if sem == graph.InducedIso {
				noNLF, noIAC := base, base
				noNLF.skipNLF = true
				noIAC.skipInducedAC = true
				res.Rows = append(res.Rows,
					aggregate(PruningRowName(coll, sem, "RI-DS no NLF"), s.runAll(insts, noNLF)),
					aggregate(PruningRowName(coll, sem, "RI-DS no induced-AC"), s.runAll(insts, noIAC)))
			}
			vf2On := runConfig{vf2: true, semantics: sem}
			vf2Off := runConfig{vf2: true, vf2SkipDomains: true, semantics: sem}
			res.Rows = append(res.Rows,
				aggregate(PruningRowName(coll, sem, "VF2 pruned"), s.runAll(insts, vf2On)),
				aggregate(PruningRowName(coll, sem, "VF2 baseline"), s.runAll(insts, vf2Off)))
			// Kernel axis: the same full pipeline under the bitset vs the
			// slice candidate-intersection kernel. Counts must agree
			// exactly and bitset must not allocate more than slice — the
			// acceptance criteria of the BitGraph kernel layer.
			bitset, slice := base, base
			bitset.kernel, slice.kernel = domain.KernelBitset, domain.KernelSlice
			res.Rows = append(res.Rows,
				aggregate(PruningRowName(coll, sem, "RI-DS bitset kernel"), s.runAll(insts, bitset)),
				aggregate(PruningRowName(coll, sem, "RI-DS slice kernel"), s.runAll(insts, slice)))
		}
	}
	s.printAblation(res)
	s.csvAblation(res)
	return res
}

// ScheduleRowName names one adaptive-schedule configuration; the
// acceptance tests parse rows back by these names.
func ScheduleRowName(collection string, sem graph.Semantics, config string) string {
	return collection + "/" + sem.String() + "/" + config
}

// scheduleFixedConfigs are the Fixed-pipeline points the adaptive
// schedule is measured against: the full PR 3 pipeline, the original
// RI-DS single-pass schedule, and each adaptive-controlled filter
// forced off. "Auto" must never be slower than the worst of these —
// that is the whole claim of an adaptive schedule (never pick a plan
// worse than the configurations it chooses among).
var scheduleFixedConfigs = []struct {
	name string
	cfg  func(runConfig) runConfig
}{
	{"Fixed/full", func(c runConfig) runConfig { return c }},
	{"Fixed/AC1", func(c runConfig) runConfig { c.acPasses = 1; return c }},
	{"Fixed/noNLF", func(c runConfig) runConfig { c.skipNLF = true; return c }},
	{"Fixed/no-induced-AC", func(c runConfig) runConfig { c.skipInducedAC = true; return c }},
}

// AblationAdaptiveSchedule measures the adaptive preprocessing
// scheduler (domain.ScheduleAuto) against the Fixed schedule space it
// chooses from, on a dense (PPIS32) and a sparse (PDBSv1) collection
// under all three matching semantics. Match counts are identical across
// every row (all filters are sound; the root-package metamorphic
// battery proves it) — the measurement is preprocessing cost versus
// search savings, the trade the source paper's §4.1/§5 "preprocessing
// time is negligible" observation rests on.
func (s *Suite) AblationAdaptiveSchedule() AblationResult {
	res := AblationResult{Title: "adaptive preprocessing schedule (Auto vs the Fixed schedule space)"}
	for _, coll := range []string{"PPIS32", "PDBSv1"} {
		insts := s.smallInstances(coll, 6, 8)
		for _, sem := range pruningSemantics {
			base := runConfig{variant: ri.VariantRIDSSIFC, workers: 1, semantics: sem}
			auto := base
			auto.autoSchedule = true
			res.Rows = append(res.Rows,
				aggregate(ScheduleRowName(coll, sem, "Auto"), s.runAll(insts, auto)))
			for _, fc := range scheduleFixedConfigs {
				if fc.name == "Fixed/no-induced-AC" && sem != graph.InducedIso {
					continue // the induced pass never runs outside InducedIso
				}
				res.Rows = append(res.Rows,
					aggregate(ScheduleRowName(coll, sem, fc.name), s.runAll(insts, fc.cfg(base))))
			}
		}
	}
	s.printAblation(res)
	s.csvAblation(res)
	return res
}

// smallInstances returns up to k instances of the collection whose
// patterns have at most maxEdges undirected edges. Unlike instances it
// filters the full collection (not just the MaxInstances prefix), since
// small patterns are interleaved with large ones.
func (s *Suite) smallInstances(name string, k, maxEdges int) []datasets.Instance {
	var out []datasets.Instance
	for _, inst := range s.collection(name).Instances() {
		if inst.Pattern.NumEdges()/2 <= maxEdges {
			out = append(out, inst)
			if len(out) == k {
				break
			}
		}
	}
	return out
}

// Ablations runs every ablation.
func (s *Suite) Ablations() []AblationResult {
	return []AblationResult{
		s.AblationStealEnd(),
		s.AblationEagerCopy(),
		s.AblationInitialDistribution(),
		s.AblationArcConsistency(),
		s.AblationOrdering(),
		s.AblationPruningFilters(),
		s.AblationAdaptiveSchedule(),
		s.AblationAdmission(),
	}
}

// AblationOrdering compares RI's GreatestConstraintFirst static ordering
// against a degree-only ordering — the kind of weaker static strategy the
// variable-ordering study underlying RI rules out (Bonnici & Giugno,
// TCBB 2017, cited as [17] in the paper).
func (s *Suite) AblationOrdering() AblationResult {
	insts := s.hardestInstances("PDBSv1", 10)
	res := AblationResult{Title: "node ordering (GCF vs degree-only)"}
	gcf := s.runAll(insts, runConfig{variant: ri.VariantRI, workers: 1})
	deg := s.runAll(insts, runConfig{variant: ri.VariantRI, workers: 1, orderStrategy: order.DegreeOnly})
	res.Rows = append(res.Rows,
		aggregate("GreatestConstraintFirst (paper)", gcf),
		aggregate("degree-only", deg))
	s.printAblation(res)
	s.csvAblation(res)
	return res
}
