package bench

import (
	"fmt"
	"text/tabwriter"
)

// tab starts an aligned table writer over the suite's output.
func (s *Suite) tab() *tabwriter.Writer {
	if s.Out == nil {
		return nil
	}
	return tabwriter.NewWriter(s.Out, 2, 4, 2, ' ', 0)
}

func row(w *tabwriter.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format+"\n", args...)
	}
}

func flush(w *tabwriter.Writer) {
	if w != nil {
		w.Flush()
	}
}

func (s *Suite) printTable1(res Table1Result) {
	s.printf("\n== Table 1: graph data collections (synthetic, scale %.3g) ==\n", s.Scale)
	w := s.tab()
	row(w, "collection\t|V| min/max\t|E| min/max\tdeg µ\tdeg σ\ttargets\tpatterns")
	for _, r := range res.Rows {
		row(w, "%s\t%d / %d\t%d / %d\t%.2f\t%.2f\t%d\t%d",
			r.Name, r.MinNodes, r.MaxNodes, r.MinEdges, r.MaxEdges,
			r.DegreeMean, r.DegreeSD, r.NumTargets, r.NumPatterns)
	}
	flush(w)
}

func (s *Suite) printFig3(res Fig3Result) {
	s.printf("\n== Fig 3: effects of work stealing (%d workers, PPIS32 sample) ==\n", res.Workers)
	w := s.tab()
	row(w, "configuration\tmean match time (s)\tmean stddev worker states\tmean work speedup")
	for _, r := range res.Rows {
		name := "no work stealing"
		if r.Stealing {
			name = "work stealing"
		}
		row(w, "%s\t%.6f\t%.1f\t%.2f", name, r.MeanMatchTime, r.MeanStddevWorkerStates, r.MeanWorkSpeedup)
	}
	flush(w)
}

func (s *Suite) printFig4(res Fig4Result) {
	s.printf("\n== Fig 4: task group size vs match time and steals ==\n")
	w := s.tab()
	row(w, "collection\tgroup\tworkers\tmean match time (s)\tmean steals")
	for _, c := range res.Cells {
		row(w, "%s\t%d\t%d\t%.6f\t%.1f", c.Collection, c.GroupSize, c.Workers, c.MeanMatchTime, c.MeanSteals)
	}
	flush(w)
}

func (s *Suite) printSpeedupTable(title string, t SpeedupTable) {
	metric := "match time"
	if t.UseTotal {
		metric = "total time"
	}
	s.printf("\n== %s: speedup of parallel %s on %s over 1 worker (%s) ==\n",
		title, t.Algorithm, t.Collection, metric)
	w := s.tab()
	row(w, "workers\tall avg\tall gmean\tall max\tshort avg\tshort gmean\tshort max\tlong avg\tlong gmean\tlong max\twork avg\twork max\ttimeouts")
	for _, r := range t.Rows {
		row(w, "%d\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%d",
			r.Workers,
			r.All.Avg, r.All.GMean, r.All.Max,
			r.Short.Avg, r.Short.GMean, r.Short.Max,
			r.Long.Avg, r.Long.GMean, r.Long.Max,
			r.WorkAvg, r.WorkMax, r.Timeouts)
	}
	flush(w)
	s.printf("(work = states/max-worker-states: hardware-independent load-balance speedup; see EXPERIMENTS.md)\n")
}

func (s *Suite) printFig5(res Fig5Result) {
	s.printf("\n== Fig 5: timed-out instances on PDBSv1 (of %d) ==\n", res.Total)
	w := s.tab()
	row(w, "workers\tparallel RI\tRI 3.6*")
	for _, r := range res.Rows {
		row(w, "%d\t%d\t%d", r.Workers, r.TimeoutsParallel, r.TimeoutsBaseline)
	}
	flush(w)
	s.printf("(*) sequential stand-in with per-task mapping copies; see DESIGN.md substitutions\n")
}

func (s *Suite) printFig6(res Fig6Result) {
	s.printf("\n== Fig 6: match time on long PDBSv1 instances (%d instances) ==\n", res.Instances)
	w := s.tab()
	row(w, "workers\tmean match time (s)\tmean work speedup")
	for _, r := range res.Rows {
		row(w, "%d\t%.6f\t%.2f", r.Workers, r.MeanMatchTime, r.MeanWorkSpeed)
	}
	flush(w)
}

func (s *Suite) printVariantComparison(title string, res VariantComparison) {
	s.printf("\n== %s ==\n", title)
	w := s.tab()
	row(w, "collection\talgorithm\ttotal (s)\tmatch (s)\tpreproc (s)\tmean states\tσ states\tstates/s\ttimeout%%")
	for _, c := range res.Cells {
		row(w, "%s\t%s\t%.6f\t%.6f\t%.5f\t%.0f\t%.0f\t%.3g\t%.0f",
			c.Collection, c.Variant, c.TotalTime, c.MatchTime, c.PreprocTime,
			c.MeanStates, c.StddevStates, c.StatesPerSec, c.TimeoutPercent)
	}
	flush(w)
}

func (s *Suite) printFig10(res Fig10Result) {
	s.printf("\n== Fig 10/11: total time of RI-DS variants vs workers (all / short / long) ==\n")
	w := s.tab()
	row(w, "collection\talgorithm\tworkers\ttotal (s)\tshort (s)\tlong (s)")
	for _, c := range res.Cells {
		row(w, "%s\t%s\t%d\t%.6f\t%.6f\t%.6f",
			c.Collection, c.Algorithm, c.Workers, c.MeanTotal, c.MeanTotalShort, c.MeanTotalLong)
	}
	flush(w)
}

func (s *Suite) printFig12(res Fig12Result) {
	s.printf("\n== Fig 12: search space, RI-DS vs RI-DS-SI-FC (short / long) ==\n")
	w := s.tab()
	row(w, "collection\talgorithm\tmean states short\tmean states long")
	for _, c := range res.Cells {
		row(w, "%s\t%s\t%.0f\t%.0f", c.Collection, c.Algorithm, c.MeanStatesShort, c.MeanStatesLong)
	}
	flush(w)
}
