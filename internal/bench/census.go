package bench

// The census experiment measures the motif-census subsystem
// (internal/census) the way the paper's speedup tables measure the
// engines: a sequential ESU walk against the parallel root-split on the
// dense PPIS32 collection. As everywhere in the harness two speedups
// are reported — wall-clock (meaningless on a host with fewer cores
// than workers) and the hardware-independent work-division speedup
// totalSubgraphs/maxPerWorkerSubgraphs, which the acceptance test
// bounds from below.

import (
	"context"
	"fmt"
	"time"

	"parsge"
)

// CensusCell is one target's sequential-vs-parallel census measurement.
type CensusCell struct {
	Collection   string
	Nodes, Edges int
	K            int
	// Subgraphs and Classes come from the sequential run; Consistent
	// reports the parallel run reproduced both exactly.
	Subgraphs  int64
	Classes    int
	Consistent bool
	// SeqMS and ParMS are the two wall times.
	SeqMS, ParMS float64
	// WallSpeedup is SeqMS/ParMS; WorkSpeedup is the load-balance bound
	// totalSubgraphs/maxPerWorkerSubgraphs of the parallel run.
	WallSpeedup, WorkSpeedup float64
	// MemoHits and MemoMisses describe the parallel run's canonical
	// memo; Steals its root-task migration.
	MemoHits, MemoMisses, Steals int64
}

// CensusBenchResult is the census experiment outcome.
type CensusBenchResult struct {
	Cells   []CensusCell
	Workers int
	// MeanWallSpeedup and MeanWorkSpeedup aggregate the cells.
	MeanWallSpeedup, MeanWorkSpeedup float64
}

// CensusThroughput measures sequential vs parallel census at k=4 on the
// PPIS32 targets (the paper's dense protein-interaction collection).
func (s *Suite) CensusThroughput() CensusBenchResult {
	ctx := s.Ctx
	if ctx == nil {
		ctx = context.Background() //sgelint:ignore ctxbackground bench harness default when Suite.Ctx is unset; cmd/sgebench passes a SIGINT-bound ctx
	}
	const k = 4
	workers := 1
	for _, w := range s.Workers {
		if w > workers {
			workers = w
		}
	}
	res := CensusBenchResult{Workers: workers}

	targets := s.collection("PPIS32").Targets
	if len(targets) > 3 {
		targets = targets[:3]
	}
	var wallSum, workSum float64
	for _, g := range targets {
		if ctx.Err() != nil {
			break
		}
		tgt, err := parsge.NewTarget(g, parsge.TargetOptions{})
		if err != nil {
			continue
		}
		start := time.Now()
		seq, err := tgt.Census(ctx, parsge.CensusOptions{K: k, Workers: 1, Timeout: s.Timeout})
		seqMS := float64(time.Since(start)) / float64(time.Millisecond)
		if err != nil || seq.TimedOut {
			continue
		}
		start = time.Now()
		par, err := tgt.Census(ctx, parsge.CensusOptions{K: k, Workers: workers, Timeout: s.Timeout, Seed: s.Seed})
		parMS := float64(time.Since(start)) / float64(time.Millisecond)
		if err != nil || par.TimedOut {
			continue
		}

		cell := CensusCell{
			Collection: "PPIS32",
			Nodes:      g.NumNodes(),
			Edges:      g.NumEdges(),
			K:          k,
			Subgraphs:  seq.Subgraphs,
			Classes:    len(seq.Classes),
			Consistent: censusEqual(seq, par),
			SeqMS:      seqMS,
			ParMS:      parMS,
			MemoHits:   par.MemoHits,
			MemoMisses: par.MemoMisses,
			Steals:     par.Steals,
		}
		if parMS > 0 {
			cell.WallSpeedup = seqMS / parMS
		}
		cell.WorkSpeedup = censusWorkSpeedup(par)
		wallSum += cell.WallSpeedup
		workSum += cell.WorkSpeedup
		res.Cells = append(res.Cells, cell)
	}
	if n := len(res.Cells); n > 0 {
		res.MeanWallSpeedup = wallSum / float64(n)
		res.MeanWorkSpeedup = workSum / float64(n)
	}

	s.printCensus(res)
	s.csvCensus(res)
	return res
}

// censusEqual reports two census results agree class by class.
func censusEqual(a, b parsge.CensusResult) bool {
	if a.Subgraphs != b.Subgraphs || len(a.Classes) != len(b.Classes) {
		return false
	}
	m := make(map[string]int64, len(a.Classes))
	for _, c := range a.Classes {
		m[string(c.Encoding)] = c.Count
	}
	for _, c := range b.Classes {
		if m[string(c.Encoding)] != c.Count {
			return false
		}
	}
	return true
}

// censusWorkSpeedup is totalSubgraphs/maxPerWorkerSubgraphs — the
// census counterpart of Record.WorkSpeedup.
func censusWorkSpeedup(res parsge.CensusResult) float64 {
	if len(res.PerWorkerSubgraphs) == 0 {
		return 1
	}
	var max, sum int64
	for _, c := range res.PerWorkerSubgraphs {
		sum += c
		if c > max {
			max = c
		}
	}
	if max == 0 {
		return 1
	}
	return float64(sum) / float64(max)
}

func (s *Suite) printCensus(res CensusBenchResult) {
	s.printf("\n== Census: sequential vs %d-worker ESU at k=4 ==\n", res.Workers)
	w := s.tab()
	row(w, "collection\tn\tm\tsubgraphs\tclasses\tseq ms\tpar ms\twall\twork\tmemo hit%%\tsteals\tok")
	for _, c := range res.Cells {
		hitPct := 0.0
		if lookups := c.MemoHits + c.MemoMisses; lookups > 0 {
			hitPct = 100 * float64(c.MemoHits) / float64(lookups)
		}
		row(w, "%s\t%d\t%d\t%d\t%d\t%.2f\t%.2f\t%.2fx\t%.2fx\t%.1f\t%d\t%v",
			c.Collection, c.Nodes, c.Edges, c.Subgraphs, c.Classes,
			c.SeqMS, c.ParMS, c.WallSpeedup, c.WorkSpeedup, hitPct, c.Steals, c.Consistent)
	}
	flush(w)
	s.printf("mean wall speedup %.2fx, mean work speedup %.2fx over %d targets\n",
		res.MeanWallSpeedup, res.MeanWorkSpeedup, len(res.Cells))
}

func (s *Suite) csvCensus(res CensusBenchResult) {
	rows := make([][]string, 0, len(res.Cells))
	for _, c := range res.Cells {
		rows = append(rows, []string{
			c.Collection, fmt.Sprint(c.Nodes), fmt.Sprint(c.Edges), fmt.Sprint(c.K),
			fmt.Sprint(c.Subgraphs), fmt.Sprint(c.Classes),
			fmt.Sprintf("%.4f", c.SeqMS), fmt.Sprintf("%.4f", c.ParMS),
			fmt.Sprintf("%.3f", c.WallSpeedup), fmt.Sprintf("%.3f", c.WorkSpeedup),
			fmt.Sprint(c.MemoHits), fmt.Sprint(c.MemoMisses), fmt.Sprint(c.Steals),
			fmt.Sprint(c.Consistent),
		})
	}
	s.csvOut("census", []string{
		"collection", "nodes", "edges", "k", "subgraphs", "classes",
		"seq_ms", "par_ms", "wall_speedup", "work_speedup",
		"memo_hits", "memo_misses", "steals", "consistent",
	}, rows)
}
