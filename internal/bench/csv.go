package bench

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// csvOut writes one experiment's data as <CSVDir>/<name>.csv when the
// suite has a CSV directory configured. Plotting the paper's figures from
// these files is a five-line matplotlib/gnuplot job.
func (s *Suite) csvOut(name string, header []string, rows [][]string) {
	if s.CSVDir == "" {
		return
	}
	if err := os.MkdirAll(s.CSVDir, 0o755); err != nil {
		s.printf("csv: %v\n", err)
		return
	}
	path := filepath.Join(s.CSVDir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		s.printf("csv: %v\n", err)
		return
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		s.printf("csv: %v\n", err)
		return
	}
	if err := w.WriteAll(rows); err != nil {
		s.printf("csv: %v\n", err)
		return
	}
	s.printf("(csv written to %s)\n", path)
}

func f64(x float64) string { return strconv.FormatFloat(x, 'g', 8, 64) }
func i64(x int64) string   { return strconv.FormatInt(x, 10) }

// WriteCSVs exports every experiment result the suite knows how to
// serialize; experiments call these hooks from their Print step.

func (s *Suite) csvTable1(res Table1Result) {
	rows := make([][]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		rows = append(rows, []string{
			r.Name, strconv.Itoa(r.MinNodes), strconv.Itoa(r.MaxNodes),
			strconv.Itoa(r.MinEdges), strconv.Itoa(r.MaxEdges),
			f64(r.DegreeMean), f64(r.DegreeSD),
			strconv.Itoa(r.NumTargets), strconv.Itoa(r.NumPatterns),
		})
	}
	s.csvOut("table1", []string{"collection", "min_nodes", "max_nodes", "min_edges", "max_edges", "deg_mean", "deg_sd", "targets", "patterns"}, rows)
}

func (s *Suite) csvFig3(res Fig3Result) {
	var rows [][]string
	for _, r := range res.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%v", r.Stealing), f64(r.MeanMatchTime),
			f64(r.MeanStddevWorkerStates), f64(r.MeanWorkSpeedup),
		})
	}
	s.csvOut("fig3", []string{"stealing", "mean_match_s", "mean_stddev_worker_states", "mean_work_speedup"}, rows)
}

func (s *Suite) csvFig4(res Fig4Result) {
	var rows [][]string
	for _, c := range res.Cells {
		rows = append(rows, []string{
			c.Collection, strconv.Itoa(c.GroupSize), strconv.Itoa(c.Workers),
			f64(c.MeanMatchTime), f64(c.MeanSteals),
		})
	}
	s.csvOut("fig4", []string{"collection", "group", "workers", "mean_match_s", "mean_steals"}, rows)
}

func (s *Suite) csvSpeedupTable(name string, t SpeedupTable) {
	var rows [][]string
	for _, r := range t.Rows {
		rows = append(rows, []string{
			t.Collection, t.Algorithm, strconv.Itoa(r.Workers),
			f64(r.All.Avg), f64(r.All.GMean), f64(r.All.Max),
			f64(r.Short.Avg), f64(r.Short.GMean), f64(r.Short.Max),
			f64(r.Long.Avg), f64(r.Long.GMean), f64(r.Long.Max),
			f64(r.WorkAvg), f64(r.WorkMax),
			f64(r.MeanPreproc), f64(r.MeanMatch), strconv.Itoa(r.Timeouts),
		})
	}
	s.csvOut(name, []string{
		"collection", "algorithm", "workers",
		"all_avg", "all_gmean", "all_max",
		"short_avg", "short_gmean", "short_max",
		"long_avg", "long_gmean", "long_max",
		"work_avg", "work_max", "preproc_s", "match_s", "timeouts",
	}, rows)
}

func (s *Suite) csvFig5(res Fig5Result) {
	var rows [][]string
	for _, r := range res.Rows {
		rows = append(rows, []string{
			strconv.Itoa(r.Workers), strconv.Itoa(r.TimeoutsParallel), strconv.Itoa(r.TimeoutsBaseline),
		})
	}
	s.csvOut("fig5", []string{"workers", "timeouts_parallel_ri", "timeouts_ri36_standin"}, rows)
}

func (s *Suite) csvFig6(res Fig6Result) {
	var rows [][]string
	for _, r := range res.Rows {
		rows = append(rows, []string{strconv.Itoa(r.Workers), f64(r.MeanMatchTime), f64(r.MeanWorkSpeed)})
	}
	s.csvOut("fig6", []string{"workers", "mean_match_s", "mean_work_speedup"}, rows)
}

func (s *Suite) csvVariantComparison(name string, res VariantComparison) {
	var rows [][]string
	for _, c := range res.Cells {
		rows = append(rows, []string{
			c.Collection, c.Variant, f64(c.TotalTime), f64(c.MatchTime), f64(c.PreprocTime),
			f64(c.MeanStates), f64(c.StddevStates), f64(c.StatesPerSec), f64(c.TimeoutPercent),
		})
	}
	s.csvOut(name, []string{"collection", "algorithm", "total_s", "match_s", "preproc_s", "mean_states", "sd_states", "states_per_s", "timeout_pct"}, rows)
}

func (s *Suite) csvFig10(res Fig10Result) {
	var rows [][]string
	for _, c := range res.Cells {
		rows = append(rows, []string{
			c.Collection, c.Algorithm, strconv.Itoa(c.Workers),
			f64(c.MeanTotal), f64(c.MeanPreproc), f64(c.MeanTotalShort), f64(c.MeanTotalLong),
		})
	}
	s.csvOut("fig10_fig11", []string{"collection", "algorithm", "workers", "total_s", "preproc_s", "total_short_s", "total_long_s"}, rows)
}

func (s *Suite) csvFig12(res Fig12Result) {
	var rows [][]string
	for _, c := range res.Cells {
		rows = append(rows, []string{c.Collection, c.Algorithm, f64(c.MeanStatesShort), f64(c.MeanStatesLong)})
	}
	s.csvOut("fig12", []string{"collection", "algorithm", "states_short", "states_long"}, rows)
}

func (s *Suite) csvAblation(res AblationResult) {
	var rows [][]string
	for _, r := range res.Rows {
		rows = append(rows, []string{
			res.Title, r.Name, f64(r.MeanMatchTime), f64(r.MeanTotalTime),
			f64(r.MeanSteals), f64(r.MeanStates), f64(r.MeanPreproc), f64(r.WorkSpeedup),
			f64(r.MeanAllocs),
		})
	}
	s.csvOut("ablation_"+sanitize(res.Title), []string{"ablation", "configuration", "match_s", "total_s", "steals", "states", "preproc_s", "work_speedup", "allocs"}, rows)
}

// sanitize turns a title into a file-name-safe slug.
func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			out = append(out, c)
		case c >= 'A' && c <= 'Z':
			out = append(out, c+32)
		case c == ' ' || c == '-' || c == '_':
			if len(out) > 0 && out[len(out)-1] != '_' {
				out = append(out, '_')
			}
		}
	}
	for len(out) > 0 && out[len(out)-1] == '_' {
		out = out[:len(out)-1]
	}
	return string(out)
}

// unused placeholder to keep i64 referenced until more exporters need it.
var _ = i64
