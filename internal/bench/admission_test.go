package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestAblationAdmission is the acceptance gate for the cost-model
// admission path: on the mixed workload with explosive star probes, the
// cost-model service must never be slower than the static heuristic
// (which burns the full probe timeout on every explosive query), it must
// actually shed, and the second replay — classified from EWMA history —
// must not mispredict more than the first.
func TestAblationAdmission(t *testing.T) {
	var out bytes.Buffer
	res := tinySuite(&out).AblationAdmission()
	if len(res.Rows) != 4 {
		t.Fatalf("admission ablation rows = %d, want 4 (2 configs × 2 passes)", len(res.Rows))
	}
	rows := map[string]AblationRow{}
	for _, r := range res.Rows {
		rows[r.Name] = r
	}
	get := func(config string) AblationRow {
		name := AdmissionRowName("PPIS32", config)
		r, ok := rows[name]
		if !ok {
			t.Fatalf("missing row %q in %v", name, res.Rows)
		}
		return r
	}

	for pass := 1; pass <= 2; pass++ {
		p := "pass " + string(rune('0'+pass))
		static, cost := get("static heuristic "+p), get("cost model "+p)
		// Wall clock (MeanTotalTime, see admissionRow): shedding the
		// probes must never be slower than running them into their
		// timeouts. 10% slack absorbs scheduler noise on the served
		// share of the workload.
		if cost.MeanTotalTime > static.MeanTotalTime*1.10 {
			t.Errorf("%s: cost model wall %.4fs > static %.4fs",
				p, cost.MeanTotalTime, static.MeanTotalTime)
		}
		// The explosive probes separate from the collection patterns by
		// an order of magnitude in domain bound, so the calibrated
		// threshold must shed them (MeanSteals carries the shed count).
		if cost.MeanSteals == 0 {
			t.Errorf("%s: cost model shed nothing", p)
		}
		if static.MeanSteals != 0 {
			t.Errorf("%s: static heuristic reported %v sheds", p, static.MeanSteals)
		}
	}

	// Feedback: pass 2 classifies from pass 1's EWMA history, so its
	// misprediction count (MeanStates) must not exceed pass 1's.
	if p1, p2 := get("cost model pass 1"), get("cost model pass 2"); p2.MeanStates > p1.MeanStates {
		t.Errorf("mispredictions grew across replays: pass1=%v pass2=%v",
			p1.MeanStates, p2.MeanStates)
	}

	if !strings.Contains(out.String(), "cost-model admission") {
		t.Error("ablation printed no table")
	}
}
