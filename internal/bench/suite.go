// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (Kimmig et al. §5) on the
// synthetic data collections of internal/datasets.
//
// Each experiment is a method on Suite (Table1, Fig3, ..., Table3)
// returning a typed result that both carries the raw numbers and renders
// the paper-style table via its Print method. The cmd/sgebench tool and
// the repository-root benchmarks call these methods.
//
// Because the original testbed was a 16-core Xeon and this library runs
// wherever the user runs it, every speedup table reports two numbers:
//
//	wall  — measured wall-clock speedup (meaningless when the host has
//	        fewer cores than workers);
//	work  — the work-division speedup totalStates/maxPerWorkerStates,
//	        a hardware-independent upper bound on achievable speedup
//	        that reproduces the paper's *shape* (load balance) even on
//	        a single-core host.
package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"parsge/internal/datasets"
	"parsge/internal/domain"
	"parsge/internal/graph"
	"parsge/internal/order"
	"parsge/internal/parallel"
	"parsge/internal/ri"
	"parsge/internal/stats"
	"parsge/internal/vf2"
)

// Suite configures a harness run.
type Suite struct {
	// Ctx is the parent context of every measured run; cancelling it
	// (e.g. on SIGINT in cmd/sgebench) aborts the experiment promptly.
	// nil means context.Background().
	Ctx context.Context
	// Scale is the dataset scale factor (1.0 = paper sizes). The
	// default used by tests and benchmarks is small enough for a
	// laptop; cmd/sgebench exposes it as a flag.
	Scale float64
	// Seed drives dataset generation and scheduling.
	Seed int64
	// Timeout is the per-instance budget (paper: 180 s).
	Timeout time.Duration
	// LongThreshold splits instances into short and long running (the
	// paper splits at 1 s on full-size data). Scaled-down data needs a
	// proportionally smaller threshold.
	LongThreshold time.Duration
	// Workers is the worker-count sweep (paper: 1, 2, 4, 8, 16).
	Workers []int
	// MaxInstances caps how many instances each experiment touches
	// (0 = all generated instances).
	MaxInstances int
	// Out receives the printed tables (nil = discard).
	Out io.Writer
	// CSVDir, when non-empty, additionally writes each experiment's data
	// as a CSV file into this directory (created if needed).
	CSVDir string

	collections map[string]*datasets.Collection
}

// Defaults fills zero fields with the harness defaults.
func (s *Suite) Defaults() *Suite {
	if s.Scale <= 0 {
		s.Scale = 0.02
	}
	if s.Seed == 0 {
		s.Seed = 20170525 // arXiv date of the paper
	}
	if s.Timeout <= 0 {
		s.Timeout = 10 * time.Second
	}
	if s.LongThreshold <= 0 {
		s.LongThreshold = 30 * time.Millisecond
	}
	if len(s.Workers) == 0 {
		s.Workers = []int{1, 2, 4, 8, 16}
	}
	if s.MaxInstances == 0 {
		s.MaxInstances = 48
	}
	return s
}

// printf writes to Out when set.
func (s *Suite) printf(format string, args ...any) {
	if s.Out != nil {
		fmt.Fprintf(s.Out, format, args...)
	}
}

// collection memoizes dataset generation per suite.
func (s *Suite) collection(name string) *datasets.Collection {
	if s.collections == nil {
		s.collections = make(map[string]*datasets.Collection)
	}
	if c, ok := s.collections[name]; ok {
		return c
	}
	c, err := datasets.ByName(name, datasets.Config{Scale: s.Scale, Seed: s.Seed})
	if err != nil {
		panic(err) // names are internal constants
	}
	s.collections[name] = c
	return c
}

// instances returns up to MaxInstances instances of a collection.
func (s *Suite) instances(name string) []datasets.Instance {
	insts := s.collection(name).Instances()
	if s.MaxInstances > 0 && len(insts) > s.MaxInstances {
		insts = insts[:s.MaxInstances]
	}
	return insts
}

// Record is one measured run of one instance.
type Record struct {
	Instance datasets.Instance
	Workers  int
	Matches  int64
	States   int64
	// PerWorkerStates is nil for sequential runs.
	PerWorkerStates []int64
	Steals          int64
	Preproc         time.Duration
	Match           time.Duration
	TimedOut        bool
	// Allocs is the number of heap allocations during the match phase,
	// measured only on the sequential RI path (where preprocessing is
	// cleanly separated from the search); 0 elsewhere. The kernel
	// acceptance test pins bitset ≤ slice on this number.
	Allocs int64
}

// Total returns preprocessing plus match time.
func (r Record) Total() time.Duration { return r.Preproc + r.Match }

// WorkSpeedup returns totalStates/maxPerWorkerStates — the
// hardware-independent load-balance speedup bound.
func (r Record) WorkSpeedup() float64 {
	if len(r.PerWorkerStates) == 0 {
		return 1
	}
	var max, sum int64
	for _, s := range r.PerWorkerStates {
		sum += s
		if s > max {
			max = s
		}
	}
	if max == 0 {
		return 1
	}
	return float64(sum) / float64(max)
}

// runConfig selects engine and scheduling for runInstance.
type runConfig struct {
	variant  ri.Variant
	workers  int
	group    int
	stealing bool
	// eagerCopy reproduces the per-task state copying of the Cilk++ VF2
	// parallelization; combined with workers == 1 it is the harness's
	// stand-in for the original RI 3.6 / RI-DS 3.51 binaries (see
	// DESIGN.md, substitutions).
	eagerCopy bool
	// frontSteal services steals from the deep end of the deque
	// (ablation of §3.2(ii)).
	frontSteal bool
	// senderInitiated switches to dealing (ablation of §3.2's choice).
	senderInitiated bool
	// noInitDist seeds all root tasks on worker 0 (ablation of §3.3).
	noInitDist bool
	// acPasses / skipAC forward to domain computation (ablation of the
	// arc-consistency fixpoint).
	acPasses int
	skipAC   bool
	// skipNLF / skipInducedAC disable the semantics-aware domain
	// filters (ablation of the pruning subsystem).
	skipNLF       bool
	skipInducedAC bool
	// autoSchedule opts into the adaptive filter scheduler. The zero
	// value pins domain.ScheduleFixed so every other ablation isolates
	// exactly the knobs it sets; AblationAdaptiveSchedule measures Auto
	// against the Fixed configurations.
	autoSchedule bool
	// vf2 measures the VF2 engine instead of the RI family;
	// vf2SkipDomains restores its classic domain-free baseline
	// (ablation of wiring the pruning subsystem into VF2).
	vf2            bool
	vf2SkipDomains bool
	// semantics selects the matching semantics (zero value: the paper's
	// subgraph isomorphism).
	semantics graph.Semantics
	// orderStrategy overrides the node-ordering rule (ablation).
	orderStrategy order.Strategy
	// kernel selects the candidate-intersection implementation of the
	// hot paths (zero value domain.KernelAuto; the kernel ablation pins
	// KernelBitset vs KernelSlice).
	kernel domain.Kernel
	seed   int64
}

// runInstance measures one instance under one configuration.
func (s *Suite) runInstance(inst datasets.Instance, cfg runConfig) Record {
	rec := Record{Instance: inst, Workers: cfg.workers}

	parent := s.Ctx
	if parent == nil {
		parent = context.Background() //sgelint:ignore ctxbackground bench harness default when Suite.Ctx is unset; cmd/sgebench passes a SIGINT-bound ctx
	}
	ctx, cancel := context.WithTimeout(parent, s.Timeout)
	defer cancel()

	sched := domain.ScheduleFixed
	if cfg.autoSchedule {
		sched = domain.ScheduleAuto
	}

	if cfg.vf2 {
		res := vf2.Enumerate(inst.Pattern, inst.Target, vf2.Options{
			Ctx:           ctx,
			Semantics:     cfg.semantics,
			SkipDomains:   cfg.vf2SkipDomains,
			SkipNLF:       cfg.skipNLF,
			SkipInducedAC: cfg.skipInducedAC,
			ACPasses:      cfg.acPasses,
			Schedule:      sched,
			Kernel:        cfg.kernel,
		})
		rec.Matches = res.Matches
		rec.States = res.States
		rec.Preproc = res.PreprocTime
		rec.Match = res.MatchTime
		rec.TimedOut = res.Aborted
		return rec
	}

	prep, err := ri.Prepare(inst.Pattern, inst.Target, ri.Options{
		Variant:       cfg.variant,
		ACPasses:      cfg.acPasses,
		SkipAC:        cfg.skipAC,
		SkipNLF:       cfg.skipNLF,
		SkipInducedAC: cfg.skipInducedAC,
		Semantics:     cfg.semantics,
		OrderStrategy: cfg.orderStrategy,
		Schedule:      sched,
		Kernel:        cfg.kernel,
	})
	if err != nil {
		panic(err) // harness-internal configurations are always valid
	}

	if cfg.workers <= 1 && !cfg.eagerCopy {
		// Bracket the search with allocation counters: Prepare already
		// ran, so the delta is the match phase alone (the allocs/op story
		// of the kernel ablation). The harness is single-goroutine here,
		// so no concurrent allocations pollute the reading.
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		res := prep.Run(ri.RunOptions{Ctx: ctx})
		runtime.ReadMemStats(&m1)
		rec.Allocs = int64(m1.Mallocs - m0.Mallocs)
		rec.Matches = res.Matches
		rec.States = res.States
		rec.Preproc = res.PreprocTime
		rec.Match = res.MatchTime
		rec.TimedOut = res.Aborted
		return rec
	}

	group := cfg.group
	if group == 0 {
		group = parallel.DefaultGroupSize
	}
	res := parallel.Enumerate(prep, parallel.Options{
		Workers:               cfg.workers,
		TaskGroupSize:         group,
		DisableStealing:       !cfg.stealing,
		EagerCopy:             cfg.eagerCopy,
		StealFromFront:        cfg.frontSteal,
		SenderInitiated:       cfg.senderInitiated,
		NoInitialDistribution: cfg.noInitDist,
		Ctx:                   ctx,
		Seed:                  cfg.seed,
	})
	rec.Matches = res.Matches
	rec.States = res.States
	rec.PerWorkerStates = res.PerWorkerStates
	rec.Steals = res.Steals
	rec.Preproc = res.PreprocTime
	rec.Match = res.MatchTime
	rec.TimedOut = res.Aborted
	return rec
}

// runAll measures every instance under a configuration.
func (s *Suite) runAll(insts []datasets.Instance, cfg runConfig) []Record {
	out := make([]Record, len(insts))
	for i, inst := range insts {
		out[i] = s.runInstance(inst, cfg)
	}
	return out
}

// matchTimes extracts match times in order.
func matchTimes(recs []Record) []time.Duration {
	out := make([]time.Duration, len(recs))
	for i, r := range recs {
		out[i] = r.Match
	}
	return out
}

// totalTimes extracts total (preproc+match) times in order.
func totalTimes(recs []Record) []time.Duration {
	out := make([]time.Duration, len(recs))
	for i, r := range recs {
		out[i] = r.Total()
	}
	return out
}

// meanSeconds averages a duration slice in seconds.
func meanSeconds(ds []time.Duration) float64 {
	return stats.Mean(stats.Durations(ds))
}

// meanStates averages the search space size.
func meanStates(recs []Record) float64 {
	xs := make([]float64, len(recs))
	for i, r := range recs {
		xs[i] = float64(r.States)
	}
	return stats.Mean(xs)
}

// meanSteals averages steal counts.
func meanSteals(recs []Record) float64 {
	xs := make([]float64, len(recs))
	for i, r := range recs {
		xs[i] = float64(r.Steals)
	}
	return stats.Mean(xs)
}

// countTimeouts counts timed-out records.
func countTimeouts(recs []Record) int {
	n := 0
	for _, r := range recs {
		if r.TimedOut {
			n++
		}
	}
	return n
}

// selectRecords picks records by index.
func selectRecords(recs []Record, idx []int) []Record {
	out := make([]Record, len(idx))
	for i, j := range idx {
		out[i] = recs[j]
	}
	return out
}

// hardestInstances runs a cheap reference pass (RI-DS, 1 worker) and
// returns the k instances with the largest search spaces — the harness's
// notion of the paper's "sample of long running instances".
func (s *Suite) hardestInstances(name string, k int) []datasets.Instance {
	insts := s.instances(name)
	ref := s.runAll(insts, runConfig{variant: ri.VariantRIDS, workers: 1})
	idx := make([]int, len(insts))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return ref[idx[a]].States > ref[idx[b]].States })
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]datasets.Instance, k)
	for i := 0; i < k; i++ {
		out[i] = insts[idx[i]]
	}
	return out
}

// splitByReference partitions records of a sweep by the reference
// configuration's total time against LongThreshold, mirroring the
// paper's short (<1 s) / long (≥1 s) split.
func (s *Suite) splitByReference(ref []Record) (short, long []int) {
	return stats.SplitShortLong(totalTimes(ref), s.LongThreshold)
}
