package bench

// The service experiment measures the query-serving layer the way the
// paper's tables measure the engines: cold-path latency (a miss runs a
// real admission-controlled enumeration) against hit-path latency (a
// canonical-key cache lookup plus reply materialization), then a short
// concurrent mixed-semantics replay for sustained throughput. The
// acceptance test pins the headline claim — the hit path is at least an
// order of magnitude faster than the cold path — and that the plan
// histogram observes every executed query.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"parsge"
	"parsge/internal/service"
)

// ServiceCell is one (instance, semantics) measurement.
type ServiceCell struct {
	Collection, Pattern, Semantics string
	Matches                        int64
	ColdMS, HitMS                  float64
	Speedup                        float64
}

// ServiceResult is the service-layer experiment outcome.
type ServiceResult struct {
	Cells []ServiceCell
	// MeanColdMS / MeanHitMS aggregate the cells; Speedup is their
	// ratio — the number the acceptance test bounds from below.
	MeanColdMS, MeanHitMS, Speedup float64
	// WarmQPS is the sustained throughput of the concurrent replay
	// phase (hot cache, mixed semantics, 4 clients).
	WarmQPS float64
	// PlanBuckets counts distinct resolved plans across the experiment's
	// executed queries — non-zero proves the histogram observes them.
	PlanBuckets int
}

// ServiceThroughput measures the service layer on the dense collection:
// per-query cold vs cache-hit latency and a warm concurrent replay.
func (s *Suite) ServiceThroughput() ServiceResult {
	ctx := s.Ctx
	if ctx == nil {
		ctx = context.Background() //sgelint:ignore ctxbackground bench harness default when Suite.Ctx is unset; cmd/sgebench passes a SIGINT-bound ctx
	}
	var res ServiceResult
	insts := s.instances("PPIS32")
	if len(insts) > 6 {
		insts = insts[:6]
	}
	sems := []parsge.Semantics{parsge.SubgraphIso, parsge.InducedIso, parsge.Homomorphism}

	var lastSvc *service.Service
	var coldSum, hitSum float64
	for _, inst := range insts {
		if ctx.Err() != nil {
			break
		}
		tgt, err := parsge.NewTarget(inst.Target, parsge.TargetOptions{})
		if err != nil {
			continue
		}
		svc, err := service.New(service.Config{Target: tgt})
		if err != nil {
			continue
		}
		lastSvc = svc
		for _, sem := range sems {
			q := service.Query{Pattern: inst.Pattern, Options: parsge.Options{Algorithm: parsge.Auto, Semantics: sem, Timeout: s.Timeout}}
			start := time.Now()
			cold, err := svc.Count(ctx, q)
			coldMS := float64(time.Since(start)) / float64(time.Millisecond)
			if err != nil || cold.Result.TimedOut || cold.CacheHit {
				continue
			}
			// The hit path is microseconds; take the minimum of a few
			// repeats so scheduler noise does not inflate it.
			hitMS := -1.0
			for r := 0; r < 20; r++ {
				start = time.Now()
				hit, err := svc.Count(ctx, q)
				d := float64(time.Since(start)) / float64(time.Millisecond)
				if err != nil || !hit.CacheHit || hit.Result.Matches != cold.Result.Matches {
					hitMS = -1
					break
				}
				if hitMS < 0 || d < hitMS {
					hitMS = d
				}
			}
			if hitMS < 0 {
				continue
			}
			coldSum += coldMS
			hitSum += hitMS
			res.Cells = append(res.Cells, ServiceCell{
				Collection: inst.Collection,
				Pattern:    inst.Meta.Name,
				Semantics:  sem.String(),
				Matches:    cold.Result.Matches,
				ColdMS:     coldMS,
				HitMS:      hitMS,
				Speedup:    coldMS / hitMS,
			})
		}
		res.PlanBuckets += len(svc.Stats().Session.Plans.Buckets)
	}
	if n := len(res.Cells); n > 0 {
		res.MeanColdMS = coldSum / float64(n)
		res.MeanHitMS = hitSum / float64(n)
		if res.MeanHitMS > 0 {
			res.Speedup = res.MeanColdMS / res.MeanHitMS
		}
	}

	// Warm concurrent replay against the last service: 4 clients, mixed
	// semantics, 300 ms.
	if lastSvc != nil && len(insts) > 0 && ctx.Err() == nil {
		inst := insts[len(insts)-1]
		const clients = 4
		deadline := time.Now().Add(300 * time.Millisecond)
		var wg sync.WaitGroup
		counts := make([]int64, clients)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(s.Seed + int64(c)))
				for time.Now().Before(deadline) && ctx.Err() == nil {
					sem := sems[rng.Intn(len(sems))]
					if _, err := lastSvc.Count(ctx, service.Query{Pattern: inst.Pattern, Options: parsge.Options{Algorithm: parsge.Auto, Semantics: sem, Timeout: s.Timeout}}); err != nil {
						return
					}
					counts[c]++
				}
			}(c)
		}
		wg.Wait()
		var total int64
		for _, c := range counts {
			total += c
		}
		res.WarmQPS = float64(total) / 0.3
	}

	s.printService(res)
	s.csvService(res)
	return res
}

func (s *Suite) printService(res ServiceResult) {
	s.printf("\n== Service: cold vs cache-hit latency, warm throughput ==\n")
	w := s.tab()
	row(w, "collection\tpattern\tsemantics\tmatches\tcold ms\thit ms\tspeedup")
	for _, c := range res.Cells {
		row(w, "%s\t%s\t%s\t%d\t%.3f\t%.4f\t%.0fx", c.Collection, c.Pattern, c.Semantics, c.Matches, c.ColdMS, c.HitMS, c.Speedup)
	}
	flush(w)
	s.printf("mean cold %.3f ms, mean hit %.4f ms, speedup %.0fx, warm throughput %.0f q/s, %d plan buckets\n",
		res.MeanColdMS, res.MeanHitMS, res.Speedup, res.WarmQPS, res.PlanBuckets)
}

func (s *Suite) csvService(res ServiceResult) {
	rows := make([][]string, 0, len(res.Cells))
	for _, c := range res.Cells {
		rows = append(rows, []string{
			c.Collection, c.Pattern, c.Semantics,
			fmt.Sprint(c.Matches),
			fmt.Sprintf("%.5f", c.ColdMS), fmt.Sprintf("%.5f", c.HitMS), fmt.Sprintf("%.2f", c.Speedup),
		})
	}
	s.csvOut("service", []string{"collection", "pattern", "semantics", "matches", "cold_ms", "hit_ms", "speedup"}, rows)
}
