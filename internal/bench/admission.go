package bench

// The admission ablation measures the cost-model admission path against
// the static pattern-size heuristic it replaced, on a workload that
// mixes ordinary collection queries with deliberately explosive star
// probes (max-degree hub plus its neighborhood, matched under
// homomorphism). The static heuristic burns the full query timeout on
// every explosive probe; the cost model pays at most one truncated run
// per plan before its truncated-cost floor predicts the explosion and
// sheds the rest with ErrPredictedExplosive. The same workload is
// replayed twice against each service so the second pass shows the
// misprediction feedback loop: EWMA history reclassifies queries the
// domain-size score got wrong on the first pass.

import (
	"context"
	"errors"
	"strconv"
	"time"

	"parsge"
	"parsge/internal/graph"
	"parsge/internal/service"
)

// AdmissionRowName names one admission-ablation configuration; the
// acceptance tests parse rows back by these names. Configurations are
// "static heuristic pass N" and "cost model pass N".
func AdmissionRowName(collection, config string) string {
	return collection + "/" + config
}

// admissionPass is the measured outcome of one workload replay.
type admissionPass struct {
	wall       time.Duration // total wall clock of the pass
	requests   int
	latencySum time.Duration
	sheds      int64 // requests rejected with ErrPredictedExplosive
	matches    int64
	mispredict int64 // misprediction delta recorded during this pass
}

// admissionRow maps a pass onto the shared AblationRow shape. Field
// reuse, since this ablation measures a service rather than a kernel:
// MeanTotalTime is the pass's total wall clock in seconds (the headline
// the acceptance test bounds: cost model never slower than static),
// MeanMatchTime the mean per-request latency, MeanSteals the shed
// count, MeanStates the mispredictions recorded during the pass, and
// TotalMatches the matches summed over served queries.
func admissionRow(name string, p admissionPass) AblationRow {
	r := AblationRow{
		Name:          name,
		MeanTotalTime: p.wall.Seconds(),
		MeanSteals:    float64(p.sheds),
		MeanStates:    float64(p.mispredict),
		TotalMatches:  p.matches,
	}
	if p.requests > 0 {
		r.MeanMatchTime = p.latencySum.Seconds() / float64(p.requests)
	}
	return r
}

// explosiveStar builds the probe pattern: the target's max-degree
// vertex with up to maxLeaves of its distinct neighbors, arcs copied
// verbatim so the pattern is satisfiable. Under homomorphism every leaf
// ranges independently over a center candidate's whole neighborhood, so
// the count scales like sum over centers of degree^leaves.
func explosiveStar(g *graph.Graph, maxLeaves int) *graph.Graph {
	center := int32(0)
	for v := int32(1); v < int32(g.NumNodes()); v++ {
		if g.Degree(v) > g.Degree(center) {
			center = v
		}
	}
	b := graph.NewBuilder(1+maxLeaves, maxLeaves)
	b.AddNode(g.NodeLabel(center))
	taken := map[int32]bool{center: true}
	leaves := 0
	addLeaf := func(w int32, lab graph.Label, out bool) {
		if leaves >= maxLeaves || taken[w] {
			return
		}
		taken[w] = true
		leaf := b.AddNode(g.NodeLabel(w))
		if out {
			b.AddEdge(0, leaf, lab)
		} else {
			b.AddEdge(leaf, 0, lab)
		}
		leaves++
	}
	outs, outLabs := g.OutNeighbors(center), g.OutEdgeLabels(center)
	for k, w := range outs {
		addLeaf(w, outLabs[k], true)
	}
	ins, inLabs := g.InNeighbors(center), g.InEdgeLabels(center)
	for k, w := range ins {
		addLeaf(w, inLabs[k], false)
	}
	return b.MustBuild()
}

// admissionBudgets are the fixed time knobs of the ablation: every
// explosive probe carries explosiveTimeout, and the cost-model service
// sheds once it predicts at least explosiveBudget — so one truncated
// probe run establishes a cost floor above the shed threshold.
const (
	admissionExplosiveTimeout = 250 * time.Millisecond
	admissionExplosiveBudget  = 200 * time.Millisecond
	admissionExplosiveProbes  = 3
)

// runAdmissionPass replays the workload once: every collection pattern
// under subgraph iso with the suite budget, then the explosive probes
// under homomorphism with the short probe timeout. Sequential issue
// keeps singleflight out of the measurement.
func runAdmissionPass(ctx context.Context, svc *service.Service, patterns []*graph.Graph, star *graph.Graph, budget time.Duration) admissionPass {
	var p admissionPass
	before := svc.Stats()
	start := time.Now()
	run := func(gp *graph.Graph, sem parsge.Semantics, timeout time.Duration) {
		qstart := time.Now()
		reply, err := svc.Count(ctx, service.Query{
			Pattern: gp,
			Options: parsge.Options{Algorithm: parsge.Auto, Semantics: sem, Timeout: timeout},
		})
		p.latencySum += time.Since(qstart)
		p.requests++
		switch {
		case errors.Is(err, service.ErrPredictedExplosive):
			p.sheds++
		case err == nil && !reply.Result.TimedOut:
			p.matches += reply.Result.Matches
		}
	}
	for _, gp := range patterns {
		if ctx.Err() != nil {
			break
		}
		run(gp, parsge.SubgraphIso, budget)
	}
	for i := 0; i < admissionExplosiveProbes && ctx.Err() == nil; i++ {
		run(star, parsge.Homomorphism, admissionExplosiveTimeout)
	}
	p.wall = time.Since(start)
	after := svc.Stats()
	p.mispredict = (after.MispredictSmall + after.MispredictLarge) -
		(before.MispredictSmall + before.MispredictLarge)
	return p
}

// AblationAdmission compares cost-model admission against the static
// pattern-size heuristic on a mixed workload with explosive star
// probes, two replays each. The result cache is disabled on both
// services so every request really enumerates — the replay measures the
// estimator, not the cache. The cost-model service runs with a
// near-zero SmallLogDomain so that, without history, ordinary queries
// classify large: the first pass then records MispredictLarge for every
// fast query, and the second pass — classified from EWMA history —
// must record no more than the first. That non-increase, plus
// "cost model wall clock never above static", is what the acceptance
// test pins.
func (s *Suite) AblationAdmission() AblationResult {
	ctx := s.Ctx
	if ctx == nil {
		ctx = context.Background() //sgelint:ignore ctxbackground bench harness default when Suite.Ctx is unset; cmd/sgebench passes a SIGINT-bound ctx
	}
	res := AblationResult{Title: "cost-model admission (shed predicted-explosive vs static heuristic)"}
	const coll = "PPIS32"
	insts := s.smallInstances(coll, 4, 8)
	if len(insts) == 0 {
		return res
	}
	// One Target per service: Target.PlanCost is fed by every run
	// against it, and the static service's truncated probe runs must not
	// leak cost floors into the cost model under measurement.
	staticTgt, err := parsge.NewTarget(insts[0].Target, parsge.TargetOptions{})
	if err != nil {
		return res
	}
	costTgt, err := parsge.NewTarget(insts[0].Target, parsge.TargetOptions{})
	if err != nil {
		return res
	}
	patterns := make([]*graph.Graph, 0, len(insts))
	for _, inst := range insts {
		patterns = append(patterns, inst.Pattern)
	}
	star := explosiveStar(insts[0].Target, 12)

	// Self-calibrate the explosive bound threshold to the workload: the
	// midpoint between the heaviest ordinary pattern's domain score and
	// the star probe's, so the probe sheds on sight at any dataset scale
	// while every collection pattern stays admissible. If the probe's
	// bound does not separate from the patterns (degenerate tiny
	// targets), the midpoint keeps the ablation running — the probes
	// simply are not explosive there and no row asserts shedding.
	scoreOf := func(gp *graph.Graph, sem parsge.Semantics) float64 {
		est, err := costTgt.EstimateCost(ctx, gp, parsge.Options{Algorithm: parsge.Auto, Semantics: sem})
		if err != nil {
			return 0
		}
		return est.LogDomainProduct + est.TargetDensity*float64(est.PatternNodes)
	}
	maxPattern := 0.0
	for _, gp := range patterns {
		if sc := scoreOf(gp, parsge.SubgraphIso); sc > maxPattern {
			maxPattern = sc
		}
	}
	explosiveLogDomain := (maxPattern + scoreOf(star, parsge.Homomorphism)) / 2

	static, err := service.New(service.Config{
		Target:           staticTgt,
		DisableCostModel: true,
		CacheMaxMatches:  -1,
	})
	if err != nil {
		return res
	}
	cost, err := service.New(service.Config{
		Target:             costTgt,
		ExplosiveBudget:    admissionExplosiveBudget,
		SmallLogDomain:     0.5,
		ExplosiveLogDomain: explosiveLogDomain,
		CacheMaxMatches:    -1,
	})
	if err != nil {
		return res
	}

	for pass := 1; pass <= 2; pass++ {
		p := runAdmissionPass(ctx, static, patterns, star, s.Timeout)
		res.Rows = append(res.Rows, admissionRow(AdmissionRowName(coll, "static heuristic pass "+strconv.Itoa(pass)), p))
	}
	for pass := 1; pass <= 2; pass++ {
		p := runAdmissionPass(ctx, cost, patterns, star, s.Timeout)
		res.Rows = append(res.Rows, admissionRow(AdmissionRowName(coll, "cost model pass "+strconv.Itoa(pass)), p))
	}
	s.printAblation(res)
	s.csvAblation(res)
	return res
}
