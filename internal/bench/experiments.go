package bench

import (
	"time"

	"parsge/internal/datasets"
	"parsge/internal/ri"
	"parsge/internal/stats"
)

// ---------------------------------------------------------------- Table 1

// Table1Result reproduces the collection-statistics table.
type Table1Result struct {
	Rows []datasets.Table1Row
}

// Table1 generates all three collections and summarizes them.
func (s *Suite) Table1() Table1Result {
	var res Table1Result
	for _, name := range datasets.Names() {
		res.Rows = append(res.Rows, datasets.Table1(s.collection(name)))
	}
	s.printTable1(res)
	s.csvTable1(res)
	return res
}

// ----------------------------------------------------------------- Fig 3

// Fig3Row is one bar pair of Fig 3: work stealing on or off.
type Fig3Row struct {
	Stealing bool
	// MeanMatchTime is the mean match time over the sample (left plot).
	MeanMatchTime float64
	// MeanStddevWorkerStates is the mean (over instances) standard
	// deviation (over workers) of explored states (right plot) — the
	// paper's load-imbalance indicator.
	MeanStddevWorkerStates float64
	// MeanWorkSpeedup is the hardware-independent division-of-work
	// speedup; with stealing off it collapses towards 1.
	MeanWorkSpeedup float64
}

// Fig3Result reproduces Fig 3 (effects of work stealing, 16 workers,
// random PPIS32 sample).
type Fig3Result struct {
	Workers int
	Rows    []Fig3Row
}

// Fig3 measures the work-stealing ablation.
func (s *Suite) Fig3() Fig3Result {
	insts := s.hardestInstances("PPIS32", 10)
	res := Fig3Result{Workers: 16}
	for _, stealing := range []bool{false, true} {
		recs := s.runAll(insts, runConfig{
			variant: ri.VariantRIDS, workers: res.Workers, group: 4,
			stealing: stealing, seed: s.Seed,
		})
		row := Fig3Row{Stealing: stealing, MeanMatchTime: meanSeconds(matchTimes(recs))}
		var sds, wss []float64
		for _, r := range recs {
			perWorker := make([]float64, len(r.PerWorkerStates))
			for i, v := range r.PerWorkerStates {
				perWorker[i] = float64(v)
			}
			sds = append(sds, stats.StdDev(perWorker))
			wss = append(wss, r.WorkSpeedup())
		}
		row.MeanStddevWorkerStates = stats.Mean(sds)
		row.MeanWorkSpeedup = stats.Mean(wss)
		res.Rows = append(res.Rows, row)
	}
	s.printFig3(res)
	s.csvFig3(res)
	return res
}

// ----------------------------------------------------------------- Fig 4

// Fig4Cell is one (collection, group size, workers) measurement.
type Fig4Cell struct {
	Collection    string
	GroupSize     int
	Workers       int
	MeanMatchTime float64
	MeanSteals    float64
}

// Fig4Result reproduces Fig 4 (task coalescing sweep).
type Fig4Result struct {
	Cells []Fig4Cell
}

// fig4Variant picks the paper's engine per collection: RI on the sparse
// PDBSv1, RI-DS on the dense collections.
func fig4Variant(name string) ri.Variant {
	if name == "PDBSv1" {
		return ri.VariantRI
	}
	return ri.VariantRIDS
}

// Fig4 sweeps task group sizes {1, 2, 4, 8, 16} over worker counts
// {2, 4, 8, 16} on samples of all three collections.
func (s *Suite) Fig4() Fig4Result {
	var res Fig4Result
	for _, name := range datasets.Names() {
		insts := s.hardestInstances(name, 8)
		for _, g := range []int{1, 2, 4, 8, 16} {
			for _, w := range []int{2, 4, 8, 16} {
				recs := s.runAll(insts, runConfig{
					variant: fig4Variant(name), workers: w, group: g,
					stealing: true, seed: s.Seed + int64(g*100+w),
				})
				res.Cells = append(res.Cells, Fig4Cell{
					Collection:    name,
					GroupSize:     g,
					Workers:       w,
					MeanMatchTime: meanSeconds(matchTimes(recs)),
					MeanSteals:    meanSteals(recs),
				})
			}
		}
	}
	s.printFig4(res)
	s.csvFig4(res)
	return res
}

// ------------------------------------------------- speedup tables (2, 3)

// SpeedupRow aggregates one worker count of a speedup table.
type SpeedupRow struct {
	Workers int
	// All/Short/Long follow the paper's instance split.
	All, Short, Long stats.SpeedupSummary
	// WorkAvg and WorkMax summarize the hardware-independent work-
	// division speedup over all instances.
	WorkAvg, WorkMax float64
	// MeanPreproc and MeanMatch break the parallel runs' mean time into
	// preprocessing and search (seconds), so CSV consumers get the
	// preprocessing cost as its own column instead of folded into the
	// total the speedups are computed over.
	MeanPreproc, MeanMatch float64
	// Timeouts counts instances hitting the time budget at this width.
	Timeouts int
}

// SpeedupTable reproduces the layout of Tables 2 and 3.
type SpeedupTable struct {
	Collection string
	Algorithm  string
	// UseTotal selects total time (Table 3) over match time (Table 2).
	UseTotal bool
	Rows     []SpeedupRow
	// BaseTimeouts counts timeouts of the 1-worker base run.
	BaseTimeouts int
}

// speedupTable runs the base (1 worker) and the sweep and aggregates.
func (s *Suite) speedupTable(name string, variant ri.Variant, useTotal bool) SpeedupTable {
	insts := s.instances(name)
	base := s.runAll(insts, runConfig{variant: variant, workers: 1})
	shortIdx, longIdx := s.splitByReference(base)

	pick := matchTimes
	if useTotal {
		pick = totalTimes
	}
	table := SpeedupTable{
		Collection:   name,
		Algorithm:    variant.String(),
		UseTotal:     useTotal,
		BaseTimeouts: countTimeouts(base),
	}
	for _, w := range s.Workers {
		if w <= 1 {
			continue
		}
		recs := s.runAll(insts, runConfig{
			variant: variant, workers: w, group: 4, stealing: true,
			seed: s.Seed + int64(w),
		})
		row := SpeedupRow{
			Workers:     w,
			All:         stats.Speedups(pick(base), pick(recs)),
			Short:       stats.Speedups(pick(selectRecords(base, shortIdx)), pick(selectRecords(recs, shortIdx))),
			Long:        stats.Speedups(pick(selectRecords(base, longIdx)), pick(selectRecords(recs, longIdx))),
			MeanPreproc: meanSeconds(preprocTimes(recs)),
			MeanMatch:   meanSeconds(matchTimes(recs)),
			Timeouts:    countTimeouts(recs),
		}
		var ws []float64
		for _, r := range recs {
			ws = append(ws, r.WorkSpeedup())
		}
		row.WorkAvg = stats.Mean(ws)
		row.WorkMax = stats.Max(ws)
		table.Rows = append(table.Rows, row)
	}
	return table
}

// Table2 reproduces Table 2: speedup of parallel RI on PDBSv1 over the
// one-worker run, split all/short/long.
func (s *Suite) Table2() SpeedupTable {
	t := s.speedupTable("PDBSv1", ri.VariantRI, false)
	s.printSpeedupTable("Table 2", t)
	s.csvSpeedupTable("table2", t)
	return t
}

// Table3 reproduces Table 3: speedup of parallel RI-DS-SI-FC over itself
// with one worker, on GRAEMLIN32 and PPIS32.
func (s *Suite) Table3() []SpeedupTable {
	var out []SpeedupTable
	for _, name := range []string{"GRAEMLIN32", "PPIS32"} {
		t := s.speedupTable(name, ri.VariantRIDSSIFC, true)
		s.printSpeedupTable("Table 3 — "+name, t)
		s.csvSpeedupTable("table3_"+name, t)
		out = append(out, t)
	}
	return out
}

// ----------------------------------------------------------------- Fig 5

// Fig5Row is one point of the timed-out-instances plot.
type Fig5Row struct {
	Workers          int
	TimeoutsParallel int
	TimeoutsBaseline int // RI 3.6 stand-in: flat across worker counts
}

// Fig5Result reproduces Fig 5 (unsolved instances on PDBSv1).
type Fig5Result struct {
	Total int // instances measured
	Rows  []Fig5Row
}

// Fig5 counts instances not solved within the timeout per worker count,
// for parallel RI and for the sequential RI 3.6 stand-in.
func (s *Suite) Fig5() Fig5Result {
	insts := s.instances("PDBSv1")
	baseline := s.runAll(insts, runConfig{
		variant: ri.VariantRI, workers: 1, eagerCopy: true, stealing: false, group: 1,
	})
	baseTimeouts := countTimeouts(baseline)
	res := Fig5Result{Total: len(insts)}
	for _, w := range s.Workers {
		recs := s.runAll(insts, runConfig{
			variant: ri.VariantRI, workers: w, group: 4, stealing: true,
			seed: s.Seed + int64(w),
		})
		res.Rows = append(res.Rows, Fig5Row{
			Workers:          w,
			TimeoutsParallel: countTimeouts(recs),
			TimeoutsBaseline: baseTimeouts,
		})
	}
	s.printFig5(res)
	s.csvFig5(res)
	return res
}

// ----------------------------------------------------------------- Fig 6

// Fig6Row is one point of the long-instance match-time plot.
type Fig6Row struct {
	Workers       int
	MeanMatchTime float64
	MeanWorkSpeed float64 // work-division speedup
}

// Fig6Result reproduces Fig 6 (match time on long PDBSv1 instances).
type Fig6Result struct {
	Instances int
	Rows      []Fig6Row
}

// Fig6 measures mean match time of parallel RI on the hardest PDBSv1
// instances across the worker sweep.
func (s *Suite) Fig6() Fig6Result {
	insts := s.hardestInstances("PDBSv1", 10)
	res := Fig6Result{Instances: len(insts)}
	for _, w := range s.Workers {
		recs := s.runAll(insts, runConfig{
			variant: ri.VariantRI, workers: w, group: 4, stealing: true,
			seed: s.Seed + int64(w),
		})
		var ws []float64
		for _, r := range recs {
			ws = append(ws, r.WorkSpeedup())
		}
		res.Rows = append(res.Rows, Fig6Row{
			Workers:       w,
			MeanMatchTime: meanSeconds(matchTimes(recs)),
			MeanWorkSpeed: stats.Mean(ws),
		})
	}
	s.printFig6(res)
	s.csvFig6(res)
	return res
}

// ------------------------------------------------------------ Figs 7/8/9

// variantCell holds one (collection, variant) aggregate for Figs 7-9.
type variantCell struct {
	Collection string
	Variant    string
	// Mean times in seconds.
	TotalTime, MatchTime, PreprocTime float64
	// Search-space statistics.
	MeanStates     float64
	StatesPerSec   float64
	StddevStates   float64
	TimeoutPercent float64
}

// VariantComparison underlies Figs 7, 8 and 9: the three RI-DS variants
// measured sequentially per collection.
type VariantComparison struct {
	LongSample bool
	Cells      []variantCell
}

// dsVariants are the three algorithms compared in §5.2.4.
var dsVariants = []ri.Variant{ri.VariantRIDS, ri.VariantRIDSSI, ri.VariantRIDSSIFC}

// variantComparison measures the RI-DS variants on the given instances.
func (s *Suite) variantComparison(name string, insts []datasets.Instance, long bool) []variantCell {
	var cells []variantCell
	for _, v := range dsVariants {
		recs := s.runAll(insts, runConfig{variant: v, workers: 1})
		var states []float64
		var sps []float64
		timeouts := 0
		for _, r := range recs {
			states = append(states, float64(r.States))
			if sec := r.Match.Seconds(); sec > 0 {
				sps = append(sps, float64(r.States)/sec)
			}
			if r.TimedOut {
				timeouts++
			}
		}
		cells = append(cells, variantCell{
			Collection:     name,
			Variant:        v.String(),
			TotalTime:      meanSeconds(totalTimes(recs)),
			MatchTime:      meanSeconds(matchTimes(recs)),
			PreprocTime:    meanSeconds(preprocTimes(recs)),
			MeanStates:     stats.Mean(states),
			StddevStates:   stats.StdDev(states),
			StatesPerSec:   stats.Mean(sps),
			TimeoutPercent: 100 * float64(timeouts) / float64(max(1, len(recs))),
		})
	}
	return cells
}

func preprocTimes(recs []Record) []time.Duration {
	out := make([]time.Duration, len(recs))
	for i, r := range recs {
		out[i] = r.Preproc
	}
	return out
}

// Fig7 reproduces Fig 7: search-space reduction and single-threaded run
// time of RI-DS vs RI-DS-SI vs RI-DS-SI-FC on short instances of all
// three collections.
func (s *Suite) Fig7() VariantComparison {
	var res VariantComparison
	for _, name := range datasets.Names() {
		res.Cells = append(res.Cells, s.variantComparison(name, s.instances(name), false)...)
	}
	s.printVariantComparison("Fig 7 — short instances (mean total time, search space)", res)
	s.csvVariantComparison("fig7", res)
	return res
}

// Fig8 reproduces Fig 8: search space size and search speed (states/sec)
// on long-running samples of PPIS32 and GRAEMLIN32.
func (s *Suite) Fig8() VariantComparison {
	res := VariantComparison{LongSample: true}
	for _, name := range []string{"PPIS32", "GRAEMLIN32"} {
		res.Cells = append(res.Cells, s.variantComparison(name, s.hardestInstances(name, 8), true)...)
	}
	s.printVariantComparison("Fig 8 — long samples (search space, states/sec)", res)
	s.csvVariantComparison("fig8", res)
	return res
}

// Fig9 reproduces Fig 9: total / match / preprocessing time of the
// variants on PPIS32 and GRAEMLIN32 ("preprocessing time is negligible").
func (s *Suite) Fig9() VariantComparison {
	var res VariantComparison
	for _, name := range []string{"PPIS32", "GRAEMLIN32"} {
		res.Cells = append(res.Cells, s.variantComparison(name, s.instances(name), false)...)
	}
	s.printVariantComparison("Fig 9 — time breakdown (total/match/preproc)", res)
	s.csvVariantComparison("fig9", res)
	return res
}

// ------------------------------------------------------------ Figs 10/11

// Fig10Cell is one (collection, algorithm, workers) mean total time.
type Fig10Cell struct {
	Collection string
	Algorithm  string // "parallel RI-DS-SI-FC", "parallel RI-DS", "RI-DS 3.51*"
	Workers    int
	MeanTotal  float64
	// MeanPreproc is the preprocessing share of MeanTotal, exported as
	// its own CSV column.
	MeanPreproc float64
	// Short/long means (Fig 11); NaN-free: zero when the split is empty.
	MeanTotalShort, MeanTotalLong float64
}

// Fig10Result underlies Figs 10 and 11.
type Fig10Result struct {
	Cells []Fig10Cell
}

// Fig10 compares parallel RI-DS-SI-FC, parallel RI-DS and the RI-DS 3.51
// stand-in across worker counts on GRAEMLIN32 and PPIS32; Fig 11 is the
// same data split at the short/long threshold.
func (s *Suite) Fig10() Fig10Result {
	var res Fig10Result
	for _, name := range []string{"GRAEMLIN32", "PPIS32"} {
		insts := s.instances(name)
		ref := s.runAll(insts, runConfig{variant: ri.VariantRIDS, workers: 1})
		shortIdx, longIdx := s.splitByReference(ref)

		baseline := s.runAll(insts, runConfig{
			variant: ri.VariantRIDS, workers: 1, eagerCopy: true, group: 1,
		})
		for _, w := range s.Workers {
			res.Cells = append(res.Cells, fig10Cell(name, "RI-DS 3.51*", w, baseline, shortIdx, longIdx))
		}
		for _, w := range s.Workers {
			recs := s.runAll(insts, runConfig{
				variant: ri.VariantRIDS, workers: w, group: 4, stealing: true, seed: s.Seed + int64(w),
			})
			res.Cells = append(res.Cells, fig10Cell(name, "parallel RI-DS", w, recs, shortIdx, longIdx))
		}
		for _, w := range s.Workers {
			recs := s.runAll(insts, runConfig{
				variant: ri.VariantRIDSSIFC, workers: w, group: 4, stealing: true, seed: s.Seed + int64(w),
			})
			res.Cells = append(res.Cells, fig10Cell(name, "parallel RI-DS-SI-FC", w, recs, shortIdx, longIdx))
		}
	}
	s.printFig10(res)
	s.csvFig10(res)
	return res
}

func fig10Cell(name, alg string, w int, recs []Record, shortIdx, longIdx []int) Fig10Cell {
	return Fig10Cell{
		Collection:     name,
		Algorithm:      alg,
		Workers:        w,
		MeanTotal:      meanSeconds(totalTimes(recs)),
		MeanPreproc:    meanSeconds(preprocTimes(recs)),
		MeanTotalShort: meanSeconds(totalTimes(selectRecords(recs, shortIdx))),
		MeanTotalLong:  meanSeconds(totalTimes(selectRecords(recs, longIdx))),
	}
}

// ----------------------------------------------------------------- Fig 12

// Fig12Cell is one (collection, algorithm, split) search-space mean.
type Fig12Cell struct {
	Collection                      string
	Algorithm                       string
	MeanStatesShort, MeanStatesLong float64
}

// Fig12Result reproduces Fig 12 (search space, RI-DS vs RI-DS-SI-FC,
// split short/long).
type Fig12Result struct {
	Cells []Fig12Cell
}

// Fig12 measures search-space sizes of RI-DS and RI-DS-SI-FC.
func (s *Suite) Fig12() Fig12Result {
	var res Fig12Result
	for _, name := range []string{"GRAEMLIN32", "PPIS32"} {
		insts := s.instances(name)
		ref := s.runAll(insts, runConfig{variant: ri.VariantRIDS, workers: 1})
		shortIdx, longIdx := s.splitByReference(ref)
		for _, v := range []ri.Variant{ri.VariantRIDS, ri.VariantRIDSSIFC} {
			recs := ref
			if v != ri.VariantRIDS {
				recs = s.runAll(insts, runConfig{variant: v, workers: 1})
			}
			res.Cells = append(res.Cells, Fig12Cell{
				Collection:      name,
				Algorithm:       v.String(),
				MeanStatesShort: meanStates(selectRecords(recs, shortIdx)),
				MeanStatesLong:  meanStates(selectRecords(recs, longIdx)),
			})
		}
	}
	s.printFig12(res)
	s.csvFig12(res)
	return res
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
