package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"parsge/internal/datasets"
	"parsge/internal/domain"
	"parsge/internal/graph"
)

// tinySuite keeps experiments fast for unit tests: minuscule scale, few
// instances, short timeout.
func tinySuite(out *bytes.Buffer) *Suite {
	s := &Suite{
		Scale:         0.012,
		Seed:          7,
		Timeout:       3 * time.Second,
		LongThreshold: 2 * time.Millisecond,
		Workers:       []int{1, 2, 4},
		MaxInstances:  8,
	}
	if out != nil {
		// Assign only non-nil buffers: a nil *bytes.Buffer inside the
		// io.Writer interface would pass != nil checks and then panic.
		s.Out = out
	}
	return s.Defaults()
}

func TestDefaults(t *testing.T) {
	s := (&Suite{}).Defaults()
	if s.Scale <= 0 || s.Timeout <= 0 || len(s.Workers) == 0 || s.MaxInstances == 0 {
		t.Fatalf("defaults incomplete: %+v", s)
	}
}

func TestTable1(t *testing.T) {
	var out bytes.Buffer
	res := tinySuite(&out).Table1()
	if len(res.Rows) != 3 {
		t.Fatalf("Table1 rows = %d, want 3", len(res.Rows))
	}
	if !strings.Contains(out.String(), "PPIS32") {
		t.Error("printed table misses PPIS32")
	}
}

func TestFig3(t *testing.T) {
	var out bytes.Buffer
	res := tinySuite(&out).Fig3()
	if len(res.Rows) != 2 {
		t.Fatalf("Fig3 rows = %d, want 2 (stealing off/on)", len(res.Rows))
	}
	if res.Rows[0].Stealing || !res.Rows[1].Stealing {
		t.Error("rows out of order")
	}
	// With stealing the division of work can only improve (or tie).
	if res.Rows[1].MeanWorkSpeedup+1e-9 < res.Rows[0].MeanWorkSpeedup {
		t.Errorf("stealing reduced work speedup: off=%.3f on=%.3f",
			res.Rows[0].MeanWorkSpeedup, res.Rows[1].MeanWorkSpeedup)
	}
	if !strings.Contains(out.String(), "work stealing") {
		t.Error("Fig3 output missing")
	}
}

func TestFig4(t *testing.T) {
	var out bytes.Buffer
	res := tinySuite(&out).Fig4()
	// 3 collections × 5 group sizes × 4 worker counts
	if len(res.Cells) != 3*5*4 {
		t.Fatalf("Fig4 cells = %d, want 60", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.MeanMatchTime < 0 || c.MeanSteals < 0 {
			t.Fatalf("negative means: %+v", c)
		}
	}
}

func TestTable2(t *testing.T) {
	var out bytes.Buffer
	res := tinySuite(&out).Table2()
	if res.Collection != "PDBSv1" || res.Algorithm != "RI" {
		t.Fatalf("Table2 config wrong: %+v", res)
	}
	if len(res.Rows) != 2 { // workers 2 and 4 of {1,2,4}
		t.Fatalf("Table2 rows = %d, want 2", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.WorkAvg < 1-1e9 || r.WorkAvg > float64(r.Workers)+1e-9 {
			t.Errorf("work speedup %f out of [1, %d]", r.WorkAvg, r.Workers)
		}
	}
}

func TestTable3(t *testing.T) {
	var out bytes.Buffer
	res := tinySuite(&out).Table3()
	if len(res) != 2 {
		t.Fatalf("Table3 tables = %d, want 2", len(res))
	}
	names := map[string]bool{}
	for _, tb := range res {
		names[tb.Collection] = true
		if tb.Algorithm != "RI-DS-SI-FC" || !tb.UseTotal {
			t.Errorf("Table3 config wrong: %+v", tb)
		}
	}
	if !names["GRAEMLIN32"] || !names["PPIS32"] {
		t.Error("Table3 collections wrong")
	}
}

func TestFig5(t *testing.T) {
	var out bytes.Buffer
	res := tinySuite(&out).Fig5()
	if res.Total == 0 || len(res.Rows) != 3 {
		t.Fatalf("Fig5 shape wrong: %+v", res)
	}
	for _, r := range res.Rows {
		if r.TimeoutsParallel > res.Total || r.TimeoutsBaseline > res.Total {
			t.Fatalf("timeout counts exceed instance count: %+v", r)
		}
	}
}

func TestFig6(t *testing.T) {
	var out bytes.Buffer
	res := tinySuite(&out).Fig6()
	if res.Instances == 0 || len(res.Rows) != 3 {
		t.Fatalf("Fig6 shape wrong: %+v", res)
	}
}

func TestFig7(t *testing.T) {
	var out bytes.Buffer
	res := tinySuite(&out).Fig7()
	if len(res.Cells) != 9 { // 3 collections × 3 variants
		t.Fatalf("Fig7 cells = %d, want 9", len(res.Cells))
	}
	// SI-FC must never enlarge the search space relative to RI-DS on the
	// same collection (FC only removes candidates).
	byCollection := map[string]map[string]float64{}
	for _, c := range res.Cells {
		if byCollection[c.Collection] == nil {
			byCollection[c.Collection] = map[string]float64{}
		}
		byCollection[c.Collection][c.Variant] = c.MeanStates
	}
	for name, m := range byCollection {
		if m["RI-DS-SI-FC"] > m["RI-DS"]*1.001 {
			t.Errorf("%s: FC enlarged search space: %v", name, m)
		}
	}
}

func TestFig8(t *testing.T) {
	var out bytes.Buffer
	res := tinySuite(&out).Fig8()
	if len(res.Cells) != 6 { // 2 collections × 3 variants
		t.Fatalf("Fig8 cells = %d, want 6", len(res.Cells))
	}
	if !res.LongSample {
		t.Error("Fig8 should flag the long sample")
	}
}

func TestFig9(t *testing.T) {
	var out bytes.Buffer
	res := tinySuite(&out).Fig9()
	if len(res.Cells) != 6 {
		t.Fatalf("Fig9 cells = %d, want 6", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.TotalTime+1e-12 < c.MatchTime {
			t.Errorf("%s/%s: total %.6f < match %.6f", c.Collection, c.Variant, c.TotalTime, c.MatchTime)
		}
	}
}

func TestFig10(t *testing.T) {
	var out bytes.Buffer
	s := tinySuite(&out)
	res := s.Fig10()
	// 2 collections × 3 algorithms × 3 worker counts
	if len(res.Cells) != 18 {
		t.Fatalf("Fig10 cells = %d, want 18", len(res.Cells))
	}
}

func TestFig12(t *testing.T) {
	var out bytes.Buffer
	res := tinySuite(&out).Fig12()
	if len(res.Cells) != 4 {
		t.Fatalf("Fig12 cells = %d, want 4", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.MeanStatesShort < 0 || c.MeanStatesLong < 0 {
			t.Fatalf("negative search space: %+v", c)
		}
	}
}

func TestAblations(t *testing.T) {
	var out bytes.Buffer
	res := tinySuite(&out).Ablations()
	if len(res) != 8 {
		t.Fatalf("ablations = %d, want 8", len(res))
	}
	for _, a := range res {
		if len(a.Rows) < 2 {
			t.Fatalf("%s: only %d rows", a.Title, len(a.Rows))
		}
	}
	// AC ablation: fixpoint search space ≤ single pass ≤ none.
	ac := res[3]
	if ac.Rows[2].MeanStates > ac.Rows[1].MeanStates*1.001 ||
		ac.Rows[1].MeanStates > ac.Rows[0].MeanStates*1.001 {
		t.Errorf("AC depth did not shrink search space: %+v", ac.Rows)
	}
}

// TestAblationPruningFilters is the acceptance check for the
// semantics-aware pruning subsystem on a dense (PPIS32) and a sparse
// (PDBSv1) collection under every matching semantics — the win is
// measured, not asserted. Soundness (identical match counts) is covered
// by the root-package differential tests; this test covers efficacy:
//
//   - wiring the subsystem into VF2 must strictly shrink its visited
//     search space for every (collection, semantics) pair;
//   - the RI-DS filters must never meaningfully enlarge the search
//     space, and the induced non-edge propagation must strictly shrink
//     it on the dense collection (where target edges make pattern
//     non-edges binding);
//   - under induced semantics, no individual filter may beat the full
//     filter set.
func TestAblationPruningFilters(t *testing.T) {
	var out bytes.Buffer
	res := tinySuite(&out).AblationPruningFilters()

	rows := make(map[string]AblationRow, len(res.Rows))
	for _, r := range res.Rows {
		rows[r.Name] = r
	}
	row := func(coll string, sem graph.Semantics, config string) AblationRow {
		r, ok := rows[PruningRowName(coll, sem, config)]
		if !ok {
			t.Fatalf("%s/%v: missing ablation row %q", coll, sem, config)
		}
		return r
	}
	for _, coll := range []string{"PPIS32", "PDBSv1"} {
		for _, sem := range pruningSemantics {
			von := row(coll, sem, "VF2 pruned")
			voff := row(coll, sem, "VF2 baseline")
			if von.MeanStates >= voff.MeanStates {
				t.Errorf("%s under %v: pruning subsystem did not shrink VF2's search space: on=%.0f off=%.0f states",
					coll, sem, von.MeanStates, voff.MeanStates)
			}
			ron := row(coll, sem, "RI-DS filters on")
			roff := row(coll, sem, "RI-DS filters off")
			if ron.MeanStates > roff.MeanStates*1.05 {
				t.Errorf("%s under %v: filters enlarged the RI-DS search space: on=%.0f off=%.0f states",
					coll, sem, ron.MeanStates, roff.MeanStates)
			}
			// Kernel acceptance: the bitset and slice kernels are the
			// same algorithm over different set representations — match
			// counts must agree exactly, the search must not allocate
			// more under bitset than slice (the row bit tests replace
			// nothing that allocated, and the reusable-scratch fix
			// applies to both), and the state count is kernel-invariant.
			kb := row(coll, sem, "RI-DS bitset kernel")
			ks := row(coll, sem, "RI-DS slice kernel")
			if kb.TotalMatches != ks.TotalMatches {
				t.Errorf("%s under %v: kernel count mismatch: bitset=%d slice=%d matches",
					coll, sem, kb.TotalMatches, ks.TotalMatches)
			}
			if kb.MeanStates != ks.MeanStates {
				t.Errorf("%s under %v: kernel state mismatch: bitset=%.0f slice=%.0f states",
					coll, sem, kb.MeanStates, ks.MeanStates)
			}
			if kb.MeanAllocs > ks.MeanAllocs+1 {
				t.Errorf("%s under %v: bitset kernel allocates more: bitset=%.1f slice=%.1f allocs",
					coll, sem, kb.MeanAllocs, ks.MeanAllocs)
			}
		}
	}
	// Dense targets make induced non-edge constraints binding: the
	// filters must collapse the induced search space outright.
	denseOn := row("PPIS32", graph.InducedIso, "RI-DS filters on")
	denseOff := row("PPIS32", graph.InducedIso, "RI-DS filters off")
	if denseOn.MeanStates >= denseOff.MeanStates {
		t.Errorf("PPIS32 induced: filters did not shrink RI-DS search space: on=%.0f off=%.0f states",
			denseOn.MeanStates, denseOff.MeanStates)
	}
	// Under induced semantics each filter must individually not hurt.
	for _, coll := range []string{"PPIS32", "PDBSv1"} {
		on := row(coll, graph.InducedIso, "RI-DS filters on")
		for _, partial := range []string{"RI-DS no NLF", "RI-DS no induced-AC"} {
			p := row(coll, graph.InducedIso, partial)
			if on.MeanStates > p.MeanStates*1.05 {
				t.Errorf("%s induced: %q explored fewer states (%.0f) than all filters (%.0f)",
					coll, partial, p.MeanStates, on.MeanStates)
			}
		}
	}
}

// TestAblationAdaptiveSchedule is the acceptance check for the adaptive
// preprocessing scheduler: on both the dense (PPIS32) and the sparse
// (PDBSv1) collection, under every semantics, Auto must never be slower
// than the *worst* Fixed configuration of the schedule space it chooses
// from — the minimal bar for an adaptive policy. The comparison uses
// mean total time (preprocessing + search, the quantity the schedule
// trades) with a tolerance plus an absolute floor, since the tiny test
// instances run in microseconds where scheduler noise dominates.
func TestAblationAdaptiveSchedule(t *testing.T) {
	var out bytes.Buffer
	res := tinySuite(&out).AblationAdaptiveSchedule()

	rows := make(map[string]AblationRow, len(res.Rows))
	for _, r := range res.Rows {
		rows[r.Name] = r
	}
	for _, coll := range []string{"PPIS32", "PDBSv1"} {
		for _, sem := range pruningSemantics {
			auto, ok := rows[ScheduleRowName(coll, sem, "Auto")]
			if !ok {
				t.Fatalf("%s/%v: missing Auto row", coll, sem)
			}
			worst, worstName := 0.0, ""
			for _, fc := range scheduleFixedConfigs {
				r, ok := rows[ScheduleRowName(coll, sem, fc.name)]
				if !ok {
					continue // induced-only row outside InducedIso
				}
				if r.MeanTotalTime > worst {
					worst, worstName = r.MeanTotalTime, fc.name
				}
			}
			if worstName == "" {
				t.Fatalf("%s/%v: no Fixed rows", coll, sem)
			}
			if auto.MeanTotalTime > worst*1.5+0.002 {
				t.Errorf("%s under %v: Auto (%.6fs) slower than the worst Fixed configuration %q (%.6fs)",
					coll, sem, auto.MeanTotalTime, worstName, worst)
			}
		}
	}
}

func TestRecordHelpers(t *testing.T) {
	r := Record{Preproc: time.Second, Match: 2 * time.Second}
	if r.Total() != 3*time.Second {
		t.Error("Total wrong")
	}
	if r.WorkSpeedup() != 1 {
		t.Error("sequential work speedup should be 1")
	}
	r.PerWorkerStates = []int64{50, 50}
	if r.WorkSpeedup() != 2 {
		t.Errorf("balanced 2-worker speedup = %f, want 2", r.WorkSpeedup())
	}
	r.PerWorkerStates = []int64{100, 0}
	if r.WorkSpeedup() != 1 {
		t.Errorf("degenerate speedup = %f, want 1", r.WorkSpeedup())
	}
	r.PerWorkerStates = []int64{0, 0}
	if r.WorkSpeedup() != 1 {
		t.Error("zero-state speedup should be 1")
	}
}

func TestHardestInstancesOrdering(t *testing.T) {
	s := tinySuite(nil)
	insts := s.hardestInstances("PPIS32", 3)
	if len(insts) != 3 {
		t.Fatalf("hardest = %d, want 3", len(insts))
	}
	all := s.hardestInstances("PPIS32", 10000)
	if len(all) > s.MaxInstances {
		t.Fatalf("hardest returned %d > MaxInstances %d", len(all), s.MaxInstances)
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	s := tinySuite(nil)
	s.CSVDir = dir
	s.Table1()
	s.Fig3()
	res := s.Table2()
	if len(res.Rows) == 0 {
		t.Fatal("table2 empty")
	}
	for _, f := range []string{"table1.csv", "fig3.csv", "table2.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
		lines := strings.Count(string(data), "\n")
		if lines < 2 {
			t.Errorf("%s has only %d lines", f, lines)
		}
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("steal end (§3.2(ii): back = near root)"); got != "steal_end_32ii_back_near_root" {
		t.Fatalf("sanitize = %q", got)
	}
}

// TestCompactNLFMemoryOnLargestTarget: on the largest target the suite
// generates (across all three collections), the compact NLF signature
// representation must use less index memory than the exact one — the
// bound it exists to provide — while the metamorphic battery at the
// repository root proves counts are unchanged.
func TestCompactNLFMemoryOnLargestTarget(t *testing.T) {
	s := tinySuite(nil)
	var largest *graph.Graph
	for _, name := range datasets.Names() {
		for _, gt := range s.collection(name).Targets {
			if largest == nil || gt.NumEdges() > largest.NumEdges() {
				largest = gt
			}
		}
	}
	if largest == nil {
		t.Fatal("no targets generated")
	}
	exact := domain.NewIndexMode(largest, domain.NLFExact)
	compact := domain.NewIndexMode(largest, domain.NLFCompact)
	em, cm := exact.NLFMemoryBytes(), compact.NLFMemoryBytes()
	t.Logf("largest target: %d nodes, %d edges; exact NLF = %d bytes, compact = %d bytes",
		largest.NumNodes(), largest.NumEdges(), em, cm)
	if cm >= em {
		t.Errorf("compact NLF did not reduce index memory: exact %d bytes, compact %d bytes", em, cm)
	}
}

// TestServiceThroughputExperiment is the acceptance test of the serving
// layer's headline numbers: the cache-hit path must be at least an order
// of magnitude faster than the cold path (ISSUE 5 acceptance criterion),
// the warm concurrent replay must actually serve queries, and the plan
// histogram must have observed the executed queries.
func TestServiceThroughputExperiment(t *testing.T) {
	res := tinySuite(nil).ServiceThroughput()
	if len(res.Cells) == 0 {
		t.Fatal("service experiment produced no cells")
	}
	if res.Speedup < 10 {
		t.Fatalf("cache hit path only %.1fx faster than cold path (mean cold %.3f ms, mean hit %.4f ms), want >= 10x",
			res.Speedup, res.MeanColdMS, res.MeanHitMS)
	}
	if res.WarmQPS <= 0 {
		t.Fatalf("warm replay served nothing")
	}
	if res.PlanBuckets == 0 {
		t.Fatal("plan histogram empty after executed queries")
	}
	for _, c := range res.Cells {
		if c.HitMS <= 0 || c.ColdMS <= 0 {
			t.Fatalf("degenerate timing cell: %+v", c)
		}
	}
}

// TestCensusThroughputExperiment is the census acceptance test: the
// parallel ESU walk reproduces the sequential counts exactly and
// divides the work at least 2x at k=4 on the PPIS32 targets. Wall-clock
// speedup is only meaningful with enough cores under the workers, so it
// is gated on GOMAXPROCS.
func TestCensusThroughputExperiment(t *testing.T) {
	var out bytes.Buffer
	res := tinySuite(&out).CensusThroughput()
	if len(res.Cells) == 0 {
		t.Fatal("census experiment produced no cells")
	}
	for _, c := range res.Cells {
		if !c.Consistent {
			t.Fatalf("parallel census diverged from sequential on n=%d m=%d", c.Nodes, c.Edges)
		}
		if c.Subgraphs == 0 {
			t.Fatalf("empty census on a dense PPIS32 target (n=%d)", c.Nodes)
		}
		if c.WorkSpeedup < 2 {
			t.Fatalf("work-division speedup %.2fx on n=%d with %d workers, want >= 2x",
				c.WorkSpeedup, c.Nodes, res.Workers)
		}
	}
	if runtime.GOMAXPROCS(0) >= 4 && res.MeanWallSpeedup < 1.5 {
		t.Fatalf("mean wall speedup %.2fx on a %d-proc host, want >= 1.5x",
			res.MeanWallSpeedup, runtime.GOMAXPROCS(0))
	}
	if !strings.Contains(out.String(), "work speedup") {
		t.Error("census table not printed")
	}
}
