package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Error("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("mean of empty should be 0")
	}
}

func TestGeoMean(t *testing.T) {
	if !almost(GeoMean([]float64{1, 4}), 2) {
		t.Errorf("gmean = %f", GeoMean([]float64{1, 4}))
	}
	if !almost(GeoMean([]float64{2, 0, 8, -1}), 4) {
		t.Error("gmean should skip non-positive entries")
	}
	if GeoMean([]float64{0, -3}) != 0 {
		t.Error("gmean of non-positive entries should be 0")
	}
}

func TestMaxMin(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Max(xs) != 7 || Min(xs) != -1 {
		t.Error("max/min wrong")
	}
	if Max(nil) != 0 || Min(nil) != 0 {
		t.Error("max/min of empty should be 0")
	}
}

func TestStdDev(t *testing.T) {
	if !almost(StdDev([]float64{2, 2, 2}), 0) {
		t.Error("stddev of constants should be 0")
	}
	// population stddev of {1,3} is 1
	if !almost(StdDev([]float64{1, 3}), 1) {
		t.Errorf("stddev = %f", StdDev([]float64{1, 3}))
	}
}

func TestStdErr(t *testing.T) {
	if StdErr([]float64{5}) != 0 {
		t.Error("stderr of single sample should be 0")
	}
	// sample sd of {1,3} = sqrt(2); stderr = sqrt(2)/sqrt(2) = 1
	if !almost(StdErr([]float64{1, 3}), 1) {
		t.Errorf("stderr = %f", StdErr([]float64{1, 3}))
	}
}

func TestMedian(t *testing.T) {
	if !almost(Median([]float64{5, 1, 3}), 3) {
		t.Error("odd median wrong")
	}
	if !almost(Median([]float64{4, 1, 3, 2}), 2.5) {
		t.Error("even median wrong")
	}
	if Median(nil) != 0 {
		t.Error("empty median should be 0")
	}
	// Median must not mutate its argument.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Median mutated input")
	}
}

func TestDurations(t *testing.T) {
	ds := Durations([]time.Duration{time.Second, 500 * time.Millisecond})
	if !almost(ds[0], 1) || !almost(ds[1], 0.5) {
		t.Errorf("Durations = %v", ds)
	}
}

func TestSpeedups(t *testing.T) {
	base := []time.Duration{4 * time.Second, 2 * time.Second}
	par := []time.Duration{1 * time.Second, 1 * time.Second}
	s := Speedups(base, par)
	if !almost(s.Avg, 3) { // (4+2)/(1+1)
		t.Errorf("Avg = %f", s.Avg)
	}
	if !almost(s.GMean, math.Sqrt(8)) {
		t.Errorf("GMean = %f", s.GMean)
	}
	if !almost(s.Max, 4) {
		t.Errorf("Max = %f", s.Max)
	}
	if s.N != 2 {
		t.Errorf("N = %d", s.N)
	}
}

func TestSpeedupsZeroSafe(t *testing.T) {
	s := Speedups([]time.Duration{0}, []time.Duration{0})
	if s.Avg != 0 || s.GMean != 0 || s.Max != 0 {
		t.Errorf("zero speedups wrong: %+v", s)
	}
}

func TestSplitShortLong(t *testing.T) {
	ref := []time.Duration{10 * time.Millisecond, 2 * time.Second, time.Second}
	short, long := SplitShortLong(ref, time.Second)
	if len(short) != 1 || short[0] != 0 {
		t.Errorf("short = %v", short)
	}
	if len(long) != 2 || long[0] != 1 || long[1] != 2 {
		t.Errorf("long = %v", long)
	}
}

func TestSelect(t *testing.T) {
	xs := []time.Duration{1, 2, 3, 4}
	got := Select(xs, []int{3, 0})
	if len(got) != 2 || got[0] != 4 || got[1] != 1 {
		t.Errorf("Select = %v", got)
	}
}

func TestQuickGeoMeanLeqMean(t *testing.T) {
	// AM-GM inequality on positive data.
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			x = math.Abs(x)
			// Clamp away from the extremes where exp(log(x)) itself
			// overflows or underflows; GeoMean is used on speedup
			// ratios, which live comfortably inside this range.
			if x > 1e-100 && x < 1e100 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		return GeoMean(xs) <= Mean(xs)*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSplitPartitions(t *testing.T) {
	f := func(ns []uint32) bool {
		ref := make([]time.Duration, len(ns))
		for i, n := range ns {
			ref[i] = time.Duration(n)
		}
		short, long := SplitShortLong(ref, 1000)
		return len(short)+len(long) == len(ref)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
