// Package stats implements the aggregation statistics used throughout the
// paper's evaluation (§5.2): arithmetic mean over total runtime ("avg"),
// geometric mean of per-instance speedups ("gmean"), maxima, population
// standard deviation and standard error of the mean (the red bars in the
// paper's point plots), plus the short/long instance split at a time
// threshold.
package stats

import (
	"math"
	"sort"
	"time"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, ignoring non-positive entries
// (a zero-time instance has no meaningful speedup ratio). Returns 0 if no
// positive entry exists.
func GeoMean(xs []float64) float64 {
	s, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			s += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	if math.IsInf(m, 1) {
		return 0
	}
	return m
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// StdErr returns the standard error of the mean, StdDev/sqrt(n-1)-style
// with the usual sample correction; 0 for fewer than two samples.
func StdErr(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	sample := math.Sqrt(s / float64(n-1))
	return sample / math.Sqrt(float64(n))
}

// Median returns the median of xs, or 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	mid := len(c) / 2
	if len(c)%2 == 1 {
		return c[mid]
	}
	return (c[mid-1] + c[mid]) / 2
}

// Durations converts a slice of time.Duration to seconds.
func Durations(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds()
	}
	return out
}

// SpeedupSummary aggregates per-instance base and parallel times the way
// the paper's Tables 2 and 3 do.
type SpeedupSummary struct {
	// Avg is total base time over total parallel time: the arithmetic
	// mean over the runtime of a whole collection, which prevents the
	// many short instances from dominating (§5.2).
	Avg float64
	// GMean is the geometric mean of per-instance speedups.
	GMean float64
	// Max is the best per-instance speedup.
	Max float64
	// N is the number of instances aggregated.
	N int
}

// Speedups computes the SpeedupSummary of parallel runs against base runs.
// Instances where either time is non-positive are skipped for GMean/Max
// but still contribute to Avg totals.
func Speedups(base, par []time.Duration) SpeedupSummary {
	n := len(base)
	if len(par) < n {
		n = len(par)
	}
	var totalBase, totalPar float64
	ratios := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		b, p := base[i].Seconds(), par[i].Seconds()
		totalBase += b
		totalPar += p
		if b > 0 && p > 0 {
			ratios = append(ratios, b/p)
		}
	}
	s := SpeedupSummary{N: n, GMean: GeoMean(ratios), Max: Max(ratios)}
	if totalPar > 0 {
		s.Avg = totalBase / totalPar
	}
	return s
}

// SplitShortLong partitions instance indices by whether their reference
// time is below the threshold (the paper splits at one second, §5.2).
func SplitShortLong(ref []time.Duration, threshold time.Duration) (short, long []int) {
	for i, d := range ref {
		if d < threshold {
			short = append(short, i)
		} else {
			long = append(long, i)
		}
	}
	return short, long
}

// Select returns the elements of xs at the given indices.
func Select(xs []time.Duration, idx []int) []time.Duration {
	out := make([]time.Duration, len(idx))
	for i, j := range idx {
		out[i] = xs[j]
	}
	return out
}
