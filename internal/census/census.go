// Package census implements the motif-census subsystem: enumeration of
// every connected k-vertex subgraph of a target (k = 2..6) with counts
// per induced-subgraph isomorphism class — the network-motif analysis
// workload, inverting the library's usual "find matches of one pattern"
// question into "which patterns occur, and how often".
//
// The enumeration is ESU (Wernicke's FANMOD algorithm): for each root
// vertex v, grow subgraphs from extension sets restricted to ids > v
// and to the exclusive neighborhood of the current subgraph, which
// yields every connected k-vertex set exactly once. The hot-path sets —
// extension and visited-neighborhood per recursion depth — are
// internal/bitset masks; the "only ids past the root" rule costs
// nothing extra because the root's whole id prefix is pre-set into the
// visited mask (bitset.SetRange) that every extension is AndNot-ed
// against.
//
// Parallelism splits the top-level extension trees — one task per root
// vertex — across the internal/steal work-stealing pool: roots are
// dealt round-robin and idle workers steal queued roots from busy ones,
// which is exactly the irregular-tree balancing story of the source
// paper applied to ESU forests. Each worker accumulates counts into a
// private map; the maps are reduced after the pool terminates, so the
// enumeration itself is synchronization-free.
//
// Classifying an emitted subgraph runs through a two-level memo so each
// isomorphism class is canonized once: the induced subgraph serialized
// in discovery order (a cheap, relabeling-*variant* key) indexes a
// sharded concurrent map; a miss canonizes via
// graph.CanonicalFormBudget and dedups through a registry keyed by the
// canonical encoding, so distinct discovery orders of one class share a
// single classInfo and a single representative graph.
package census

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"parsge/internal/bitset"
	"parsge/internal/graph"
	"parsge/internal/steal"
)

// MinK and MaxK bound the subgraph size: 2 is the smallest connected
// subgraph with structure (an edge), 6 the point where the number of
// classes and the cost of exhaustive enumeration stop being a serving
// workload (the FANMOD tool draws the same line).
const (
	MinK = 2
	MaxK = 6
)

// canonBudget caps the individualization search per class. A k ≤ 6
// subgraph explores at most k! = 720 complete orderings even fully
// symmetric, so the budget never triggers; it is defense in depth
// should MaxK ever grow.
const canonBudget = 1 << 12

// denseAdjLimit is the node count up to which per-node adjacency
// bitsets are precomputed (O(n²) bits total — 32 MiB at the limit).
// Above it the walker falls back to sorted neighbor lists, trading the
// word-parallel set algebra for O(degree) loops. The limit is the
// shared BitGraph kernel threshold: the dense rows themselves come from
// graph.UnionRows, the same row construction the query kernels use.
const denseAdjLimit = graph.DenseRowLimit

// Options configures Run.
type Options struct {
	// K is the subgraph size, in [MinK, MaxK].
	K int
	// Workers sizes the steal pool; ≤ 1 runs sequentially.
	Workers int
	// Seed seeds the pool's scheduling decisions (results are identical
	// for all seeds).
	Seed int64
}

// Class is one induced-subgraph isomorphism class of the census.
type Class struct {
	// Count is the number of connected k-vertex sets whose induced
	// subgraph belongs to this class.
	Count int64
	// Rep is the class representative in canonical numbering.
	Rep *graph.Graph
	// Encoding is the canonical encoding identifying the class
	// (graph.CanonicalForm bytes); Hash is graph.HashBytes of it.
	Encoding []byte
	Hash     uint64
}

// Result reports one census run.
type Result struct {
	K int
	// Subgraphs is the total number of connected k-vertex subgraphs
	// (sum of all class counts).
	Subgraphs int64
	// Classes is sorted by descending Count (ties by encoding).
	Classes []Class
	// MemoHits and MemoMisses count discovery-order memo lookups; each
	// miss paid one canonization.
	MemoHits, MemoMisses int64
	// Steals counts stolen roots (parallel runs only).
	Steals int64
	// PerWorkerSubgraphs breaks Subgraphs down by worker (parallel runs
	// only) — the work-division profile of the root split.
	PerWorkerSubgraphs []int64
	// Aborted reports the run was cut short by context cancellation;
	// counts are then lower bounds.
	Aborted bool
}

// Run enumerates the census of g. Cancelling ctx aborts promptly with
// Result.Aborted set.
func Run(ctx context.Context, g *graph.Graph, opts Options) (Result, error) {
	if g == nil {
		return Result{}, fmt.Errorf("census: nil graph")
	}
	if opts.K < MinK || opts.K > MaxK {
		return Result{}, fmt.Errorf("census: K must be in [%d, %d], got %d", MinK, MaxK, opts.K)
	}
	if ctx == nil {
		ctx = context.Background() //sgelint:ignore ctxbackground documented nil-ctx default at the census entry point, mirroring the query boundary
	}
	n := g.NumNodes()
	res := Result{K: opts.K}
	if n < opts.K {
		return res, nil
	}
	adj := buildAdjacency(g)
	m := newMemo()

	workers := opts.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		w := newWalker(g, adj, opts.K, m, func() bool { return ctx.Err() != nil })
		for v := int32(0); v < int32(n) && !w.aborted; v++ {
			w.root(v)
		}
		gather(&res, m, []*walker{w}, false)
		res.Aborted = w.aborted
		return res, nil
	}

	r := &runner{g: g, adj: adj, k: opts.K, memo: m, walkers: make([]*walker, workers)}
	rt, err := steal.New(steal.Config{Workers: workers, Stealing: true, Seed: opts.Seed}, r)
	if err != nil {
		return Result{}, err
	}
	for v := 0; v < n; v++ {
		rt.Seed(v%workers, int32(v))
	}
	st := rt.Run(ctx)
	gather(&res, m, r.walkers, true)
	res.Steals = st.TotalSteals()
	if ctx.Err() != nil {
		res.Aborted = true
	}
	return res, nil
}

// runner schedules root vertices as tasks of the steal pool. Execute
// runs on the owning worker's goroutine, so the lazily-built per-worker
// walkers (indexed by Worker.ID) are never shared.
type runner struct {
	g       *graph.Graph
	adj     *adjacency
	k       int
	memo    *memo
	walkers []*walker
}

func (r *runner) Execute(w *steal.Worker[int32], v int32) {
	wk := r.walkers[w.ID]
	if wk == nil {
		wk = newWalker(r.g, r.adj, r.k, r.memo, w.Cancelled)
		r.walkers[w.ID] = wk
	}
	wk.root(v)
}

func (r *runner) PackSteal(_ *steal.Worker[int32], v int32) int32 { return v }

// gather reduces the per-walker count maps into the Result.
func gather(res *Result, m *memo, walkers []*walker, perWorker bool) {
	total := make(map[*classInfo]int64)
	if perWorker {
		res.PerWorkerSubgraphs = make([]int64, len(walkers))
	}
	for i, w := range walkers {
		if w == nil {
			continue
		}
		if perWorker {
			res.PerWorkerSubgraphs[i] = w.subgraphs
		}
		res.Subgraphs += w.subgraphs
		for ci, c := range w.counts {
			total[ci] += c
		}
		if w.aborted {
			res.Aborted = true
		}
	}
	res.Classes = make([]Class, 0, len(total))
	for ci, c := range total {
		res.Classes = append(res.Classes, Class{Count: c, Rep: ci.rep, Encoding: ci.enc, Hash: ci.hash})
	}
	sort.Slice(res.Classes, func(i, j int) bool {
		a, b := res.Classes[i], res.Classes[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		return bytes.Compare(a.Encoding, b.Encoding) < 0
	})
	res.MemoHits = m.hits.Load()
	res.MemoMisses = m.misses.Load()
}

// adjacency is the undirected-sense neighbor structure ESU walks:
// out ∪ in neighbors, self-loops and parallel edges collapsed (they do
// not affect connectivity; the induced subgraphs keep them). lists is
// always present; dense adds per-node bitsets when n ≤ denseAdjLimit.
type adjacency struct {
	n     int
	lists [][]int32
	dense []*bitset.Set // nil above denseAdjLimit
}

func buildAdjacency(g *graph.Graph) *adjacency {
	n := g.NumNodes()
	a := &adjacency{n: n, lists: make([][]int32, n)}
	for v := int32(0); v < int32(n); v++ {
		l := make([]int32, 0, g.Degree(v))
		l = append(l, g.OutNeighbors(v)...)
		l = append(l, g.InNeighbors(v)...)
		slices.Sort(l)
		l = slices.Compact(l)
		if i, ok := slices.BinarySearch(l, v); ok {
			l = slices.Delete(l, i, i+1)
		}
		a.lists[v] = l
	}
	// The dense rows are the shared BitGraph construction (out ∪ in,
	// self-loops removed — exactly the undirected sense ESU walks); nil
	// above denseAdjLimit, which is the same fallback rule.
	a.dense = graph.UnionRows(g)
	return a
}

// walker is one worker's ESU state: the vertex stack plus per-depth
// extension and visited-neighborhood bitsets, all allocated once.
type walker struct {
	g   *graph.Graph
	adj *adjacency
	k   int

	sub  []int32       // vertex stack, discovery order; length k
	ext  []*bitset.Set // ext[d]: extension candidates with d+1 vertices placed
	seen []*bitset.Set // seen[d]: {0..root} ∪ subgraph ∪ its neighborhood
	pos  []int32       // target node → position in sub, -1 outside

	memo    *memo
	counts  map[*classInfo]int64
	key     []byte        // discovery-order serialization scratch
	buckets []labelBucket // k×k per-ordered-pair edge-label collectors

	subgraphs int64
	steps     int
	cancelled func() bool
	aborted   bool
}

type labelBucket []graph.Label

func newWalker(g *graph.Graph, adj *adjacency, k int, m *memo, cancelled func() bool) *walker {
	n := g.NumNodes()
	w := &walker{
		g:         g,
		adj:       adj,
		k:         k,
		sub:       make([]int32, k),
		ext:       make([]*bitset.Set, k),
		seen:      make([]*bitset.Set, k),
		pos:       make([]int32, n),
		memo:      m,
		counts:    make(map[*classInfo]int64),
		buckets:   make([]labelBucket, k*k),
		cancelled: cancelled,
	}
	for d := 0; d < k; d++ {
		w.ext[d] = bitset.New(n)
		w.seen[d] = bitset.New(n)
	}
	for i := range w.pos {
		w.pos[i] = -1
	}
	return w
}

// poll checks for cancellation every 1024 expansion steps — the same
// low-frequency polling discipline the search engines use, cheap enough
// for the hot path yet prompt enough for sub-100ms teardown.
func (w *walker) poll() bool {
	w.steps++
	if w.steps&1023 == 0 && w.cancelled() {
		w.aborted = true
	}
	return w.aborted
}

// root enumerates every connected k-subgraph whose minimum vertex id is
// v. Seeding seen[0] with the whole prefix [0, v] makes the ESU ">root"
// rule implicit: every extension set is AndNot-ed against seen, so ids
// at or below the root can never re-enter.
func (w *walker) root(v int32) {
	if w.aborted {
		return
	}
	s0, e0 := w.seen[0], w.ext[0]
	s0.ClearAll()
	s0.SetRange(0, int(v)+1)
	if d := w.adj.dense; d != nil {
		e0.Copy(d[v])
		e0.AndNot(s0)
		s0.Or(d[v])
	} else {
		e0.ClearAll()
		for _, u := range w.adj.lists[v] {
			if u > v {
				e0.Set(int(u))
			}
			s0.Set(int(u))
		}
	}
	w.sub[0] = v
	w.extend(0)
}

// extend grows the subgraph from depth d (sub[0..d] placed, ext[d] and
// seen[d] valid). The last level short-circuits: with one vertex
// missing, every extension candidate completes a subgraph, so it emits
// straight off the bitset instead of recursing.
func (w *walker) extend(d int) {
	if d+2 == w.k {
		w.ext[d].ForEach(func(u int) bool {
			w.sub[d+1] = int32(u)
			w.emit()
			return !w.aborted
		})
		return
	}
	e := w.ext[d]
	for u := e.First(); u >= 0; u = e.Next(u + 1) {
		if w.poll() {
			return
		}
		// Pop u: later siblings must not see it (ESU's exactly-once
		// guarantee), and the child extension below starts from the
		// remaining candidates.
		e.Clear(u)
		w.sub[d+1] = int32(u)
		ne, ns := w.ext[d+1], w.seen[d+1]
		if dense := w.adj.dense; dense != nil {
			// Child candidates: u's exclusive neighborhood (N(u) minus
			// everything already visited or ≤ root) plus the remaining
			// siblings — three word-parallel ops.
			ne.Copy(dense[u])
			ne.AndNot(w.seen[d])
			ne.Or(e)
			ns.Copy(w.seen[d])
			ns.Or(dense[u])
		} else {
			ne.Copy(e)
			ns.Copy(w.seen[d])
			for _, x := range w.adj.lists[u] {
				if !ns.Test(int(x)) {
					ns.Set(int(x))
					ne.Set(int(x))
				}
			}
		}
		w.extend(d + 1)
		if w.aborted {
			return
		}
	}
}

// emit classifies the completed subgraph in sub[0..k-1] and counts it.
func (w *walker) emit() {
	if w.poll() {
		return
	}
	w.subgraphs++
	w.counts[w.classify()]++
}

// classify resolves the isomorphism class of the current subgraph via
// the memo: the discovery-order key is built once, and only a memo miss
// pays for materializing the induced subgraph and canonizing it.
func (w *walker) classify() *classInfo {
	for i := 0; i < w.k; i++ {
		w.pos[w.sub[i]] = int32(i)
	}
	key := w.buildKey()
	ci := w.memo.lookup(key)
	if ci == nil {
		ci = w.memo.insert(key, w.buildSubgraph())
	}
	for i := 0; i < w.k; i++ {
		w.pos[w.sub[i]] = -1
	}
	return ci
}

// buildKey serializes the induced subgraph in discovery order: the k
// node labels, then for each ordered position pair (i,j) — self-loops
// included — the sorted multiset of edge labels from sub[i] to sub[j].
// Equal keys mean identical labeled adjacency under the identity map on
// positions, so the key safely proxies the class; it is *not*
// relabeling-invariant, which is exactly why it is cheap. Requires pos
// to be set for the current sub.
func (w *walker) buildKey() []byte {
	k := w.k
	for i := range w.buckets {
		w.buckets[i] = w.buckets[i][:0]
	}
	key := w.key[:0]
	for i := 0; i < k; i++ {
		key = binary.AppendVarint(key, int64(w.g.NodeLabel(w.sub[i])))
	}
	for i := 0; i < k; i++ {
		v := w.sub[i]
		adjRow := w.g.OutNeighbors(v)
		labs := w.g.OutEdgeLabels(v)
		for t, u := range adjRow {
			if j := w.pos[u]; j >= 0 {
				w.buckets[i*k+int(j)] = append(w.buckets[i*k+int(j)], labs[t])
			}
		}
	}
	for i := range w.buckets {
		b := w.buckets[i]
		slices.Sort(b)
		key = binary.AppendUvarint(key, uint64(len(b)))
		for _, l := range b {
			key = binary.AppendVarint(key, int64(l))
		}
	}
	w.key = key
	return key
}

// buildSubgraph materializes the induced subgraph on sub[0..k-1] in
// discovery order, keeping directions, labels, self-loops and parallel
// edges. Requires pos to be set.
func (w *walker) buildSubgraph() *graph.Graph {
	k := w.k
	b := graph.NewBuilder(k, k)
	for i := 0; i < k; i++ {
		b.AddNode(w.g.NodeLabel(w.sub[i]))
	}
	for i := 0; i < k; i++ {
		v := w.sub[i]
		adjRow := w.g.OutNeighbors(v)
		labs := w.g.OutEdgeLabels(v)
		for t, u := range adjRow {
			if j := w.pos[u]; j >= 0 {
				b.AddEdge(int32(i), j, labs[t])
			}
		}
	}
	return b.MustBuild()
}

// classInfo is the unique record of one isomorphism class.
type classInfo struct {
	enc  []byte
	hash uint64
	rep  *graph.Graph
}

// memoShards spreads the discovery-order map over independent locks;
// 32 is far beyond any worker count this library configures.
const memoShards = 32

// memo is the two-level concurrent classifier: a sharded map from
// discovery-order key to classInfo (the hot path — an RLock and a map
// probe), backed by a registry keyed by canonical encoding that makes
// classInfo unique per class no matter how many discovery orders reach
// it.
type memo struct {
	shards [memoShards]memoShard

	classMu sync.Mutex
	classes map[string]*classInfo

	hits, misses atomic.Int64
}

type memoShard struct {
	mu sync.RWMutex
	m  map[string]*classInfo
}

func newMemo() *memo {
	m := &memo{classes: make(map[string]*classInfo)}
	for i := range m.shards {
		m.shards[i].m = make(map[string]*classInfo)
	}
	return m
}

func (m *memo) shard(key []byte) *memoShard {
	return &m.shards[graph.HashBytes(key)%memoShards]
}

func (m *memo) lookup(key []byte) *classInfo {
	sh := m.shard(key)
	sh.mu.RLock()
	ci := sh.m[string(key)] // string(key) in a map index does not allocate
	sh.mu.RUnlock()
	if ci != nil {
		m.hits.Add(1)
	} else {
		m.misses.Add(1)
	}
	return ci
}

// insert canonizes sub, dedups the class through the encoding registry,
// and publishes the discovery-order key. Two workers racing on the same
// key both canonize (a benign duplicate canonization, not a correctness
// issue) and converge on one classInfo through the registry.
func (m *memo) insert(key []byte, sub *graph.Graph) *classInfo {
	enc, perm, ok := graph.CanonicalFormBudget(sub, canonBudget)
	if !ok {
		// Unreachable for k ≤ 6 (≤ 720 orderings); keep correctness
		// independent of the budget anyway.
		enc, perm = graph.CanonicalForm(sub)
	}
	m.classMu.Lock()
	ci := m.classes[string(enc)]
	if ci == nil {
		rep, err := sub.Relabel(perm)
		if err != nil {
			rep = sub // perm is a permutation by construction
		}
		ci = &classInfo{enc: enc, hash: graph.HashBytes(enc), rep: rep}
		m.classes[string(enc)] = ci
	}
	m.classMu.Unlock()

	sh := m.shard(key)
	sh.mu.Lock()
	if prior := sh.m[string(key)]; prior != nil {
		ci = prior
	} else {
		sh.m[string(key)] = ci
	}
	sh.mu.Unlock()
	return ci
}
