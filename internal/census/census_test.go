package census

import (
	"context"
	"math/rand"
	"testing"

	"parsge/internal/graph"
	"parsge/internal/testutil"
)

// classMap flattens a Result to encoding → count for oracle comparison.
func classMap(res Result) map[string]int64 {
	m := make(map[string]int64, len(res.Classes))
	for _, c := range res.Classes {
		m[string(c.Encoding)] = c.Count
	}
	return m
}

func checkAgainstOracle(t *testing.T, g *graph.Graph, k int, res Result, label string) {
	t.Helper()
	total, classes := testutil.BruteCensus(g, k)
	if res.Aborted {
		t.Fatalf("%s: k=%d aborted without cancellation", label, k)
	}
	if res.Subgraphs != total {
		t.Fatalf("%s: k=%d subgraphs=%d, oracle %d", label, k, res.Subgraphs, total)
	}
	got := classMap(res)
	if len(got) != len(classes) {
		t.Fatalf("%s: k=%d classes=%d, oracle %d", label, k, len(got), len(classes))
	}
	for enc, want := range classes {
		if got[enc] != want {
			t.Fatalf("%s: k=%d class count %d, oracle %d", label, k, got[enc], want)
		}
	}
}

// TestCensusSmallFixtures pins golden counts on graphs whose censuses
// are computable by hand: a triangle, a path, a star and a directed
// cycle.
func TestCensusSmallFixtures(t *testing.T) {
	triangle := func() *graph.Graph {
		b := graph.NewBuilder(3, 6)
		for i := 0; i < 3; i++ {
			b.AddNode(0)
		}
		b.AddEdgeBoth(0, 1, 0)
		b.AddEdgeBoth(1, 2, 0)
		b.AddEdgeBoth(0, 2, 0)
		return b.MustBuild()
	}()
	path4 := func() *graph.Graph { // P4: 0-1-2-3
		b := graph.NewBuilder(4, 6)
		for i := 0; i < 4; i++ {
			b.AddNode(0)
		}
		b.AddEdgeBoth(0, 1, 0)
		b.AddEdgeBoth(1, 2, 0)
		b.AddEdgeBoth(2, 3, 0)
		return b.MustBuild()
	}()
	star5 := func() *graph.Graph { // K1,4: center 0
		b := graph.NewBuilder(5, 8)
		for i := 0; i < 5; i++ {
			b.AddNode(0)
		}
		for i := int32(1); i < 5; i++ {
			b.AddEdgeBoth(0, i, 0)
		}
		return b.MustBuild()
	}()
	cycle5 := func() *graph.Graph { // directed 5-cycle
		b := graph.NewBuilder(5, 5)
		for i := 0; i < 5; i++ {
			b.AddNode(0)
		}
		for i := int32(0); i < 5; i++ {
			b.AddEdge(i, (i+1)%5, 0)
		}
		return b.MustBuild()
	}()

	cases := []struct {
		name      string
		g         *graph.Graph
		k         int
		subgraphs int64
		classes   int
	}{
		{"triangle k=2", triangle, 2, 3, 1},
		{"triangle k=3", triangle, 3, 1, 1},
		{"path4 k=2", path4, 2, 3, 1},
		{"path4 k=3", path4, 3, 2, 1}, // two sub-paths
		{"path4 k=4", path4, 4, 1, 1}, // the path itself
		{"star5 k=3", star5, 3, 6, 1}, // C(4,2) cherries
		{"star5 k=5", star5, 5, 1, 1}, // the star itself
		{"star5 k=4", star5, 4, 4, 1}, // C(4,3) claws
		{"cycle5 k=3", cycle5, 3, 5, 1},
		{"cycle5 k=5", cycle5, 5, 1, 1},
	}
	for _, tc := range cases {
		res, err := Run(context.Background(), tc.g, Options{K: tc.k})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Subgraphs != tc.subgraphs || len(res.Classes) != tc.classes {
			t.Errorf("%s: got %d subgraphs in %d classes, want %d in %d",
				tc.name, res.Subgraphs, len(res.Classes), tc.subgraphs, tc.classes)
		}
		checkAgainstOracle(t, tc.g, tc.k, res, tc.name)
	}
}

// TestCensusMixedMotifs: a graph with both a triangle and a path motif
// must report two k=3 classes with the right counts, and the
// representatives must canonize back to their own encodings.
func TestCensusMixedMotifs(t *testing.T) {
	// Triangle 0-1-2 plus a tail 2-3-4: k=3 census has 1 triangle and
	// 3 paths (1-2-3, 2-3-4, 0-2-3).
	b := graph.NewBuilder(5, 10)
	for i := 0; i < 5; i++ {
		b.AddNode(0)
	}
	b.AddEdgeBoth(0, 1, 0)
	b.AddEdgeBoth(1, 2, 0)
	b.AddEdgeBoth(0, 2, 0)
	b.AddEdgeBoth(2, 3, 0)
	b.AddEdgeBoth(3, 4, 0)
	g := b.MustBuild()

	res, err := Run(context.Background(), g, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Subgraphs != 4 || len(res.Classes) != 2 {
		t.Fatalf("got %d subgraphs in %d classes, want 4 in 2", res.Subgraphs, len(res.Classes))
	}
	// Classes are sorted by descending count: paths (3) before the
	// triangle (1).
	if res.Classes[0].Count != 3 || res.Classes[1].Count != 1 {
		t.Fatalf("class counts %d, %d; want 3, 1", res.Classes[0].Count, res.Classes[1].Count)
	}
	for _, c := range res.Classes {
		enc, _ := graph.CanonicalForm(c.Rep)
		if string(enc) != string(c.Encoding) {
			t.Fatal("representative does not canonize to its class encoding")
		}
		if h := graph.HashBytes(c.Encoding); h != c.Hash {
			t.Fatalf("class hash %d != HashBytes(encoding) %d", c.Hash, h)
		}
	}
	if res.Classes[1].Rep.NumEdges() != 6 { // the undirected triangle: 6 arcs
		t.Fatalf("triangle representative has %d arcs, want 6", res.Classes[1].Rep.NumEdges())
	}
}

// TestCensusRandomOracle cross-checks sequential and parallel runs
// against the brute-force oracle on random directed graphs, nasty
// instances (self-loops, parallel edges) included.
func TestCensusRandomOracle(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		opts := testutil.InstanceOptions{TargetNodes: 11, TargetEdges: 26, NodeLabels: 2, EdgeLabels: 2, Nasty: seed%3 == 0}
		_, g := testutil.RandomInstance(seed, opts)
		for _, k := range []int{3, 4} {
			seq, err := Run(context.Background(), g, Options{K: k})
			if err != nil {
				t.Fatal(err)
			}
			checkAgainstOracle(t, g, k, seq, "seq")
			par, err := Run(context.Background(), g, Options{K: k, Workers: 4, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			checkAgainstOracle(t, g, k, par, "par")
			if len(par.PerWorkerSubgraphs) != 4 {
				t.Fatalf("PerWorkerSubgraphs has %d entries, want 4", len(par.PerWorkerSubgraphs))
			}
			var sum int64
			for _, c := range par.PerWorkerSubgraphs {
				sum += c
			}
			if sum != par.Subgraphs {
				t.Fatalf("per-worker sum %d != total %d", sum, par.Subgraphs)
			}
		}
	}
}

// TestCensusSparseFallback forces the neighbor-list fallback (the code
// path graphs above denseAdjLimit take) and cross-checks it against the
// dense bitset path on the same graphs.
func TestCensusSparseFallback(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		_, g := testutil.RandomInstance(seed, testutil.InstanceOptions{TargetNodes: 12, TargetEdges: 30, NodeLabels: 3})
		adj := buildAdjacency(g)
		sparse := &adjacency{n: adj.n, lists: adj.lists} // dense stripped
		for _, k := range []int{3, 4} {
			m1, m2 := newMemo(), newMemo()
			wd := newWalker(g, adj, k, m1, func() bool { return false })
			ws := newWalker(g, sparse, k, m2, func() bool { return false })
			for v := int32(0); v < int32(g.NumNodes()); v++ {
				wd.root(v)
				ws.root(v)
			}
			if wd.subgraphs != ws.subgraphs {
				t.Fatalf("seed %d k=%d: dense %d subgraphs, sparse %d", seed, k, wd.subgraphs, ws.subgraphs)
			}
			dres, sres := Result{K: k}, Result{K: k}
			gather(&dres, m1, []*walker{wd}, false)
			gather(&sres, m2, []*walker{ws}, false)
			dm, sm := classMap(dres), classMap(sres)
			if len(dm) != len(sm) {
				t.Fatalf("seed %d k=%d: dense %d classes, sparse %d", seed, k, len(dm), len(sm))
			}
			for enc, c := range dm {
				if sm[enc] != c {
					t.Fatalf("seed %d k=%d: class count mismatch dense %d sparse %d", seed, k, c, sm[enc])
				}
			}
		}
	}
}

// TestCensusMemoReuse: on a label-free graph every k-subgraph of one
// shape shares a discovery-order key, so the memo must hit far more
// often than it misses — that is the whole point of the memo.
func TestCensusMemoReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := graph.NewBuilder(30, 120)
	for i := 0; i < 30; i++ {
		b.AddNode(0)
	}
	for e := 0; e < 120; e++ {
		u, v := int32(rng.Intn(30)), int32(rng.Intn(30))
		if u != v {
			b.AddEdgeBoth(u, v, 0)
		}
	}
	g := b.MustBuild()
	res, err := Run(context.Background(), g, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Subgraphs == 0 {
		t.Fatal("no subgraphs found")
	}
	if res.MemoHits+res.MemoMisses != res.Subgraphs {
		t.Fatalf("memo lookups %d != subgraphs %d", res.MemoHits+res.MemoMisses, res.Subgraphs)
	}
	if res.MemoHits < res.MemoMisses {
		t.Fatalf("memo hits %d < misses %d on a label-free graph", res.MemoHits, res.MemoMisses)
	}
}

// TestCensusCancellation: a cancelled context must abort the run
// promptly with Aborted set, sequentially and in parallel.
func TestCensusCancellation(t *testing.T) {
	_, g := testutil.RandomInstance(7, testutil.InstanceOptions{TargetNodes: 60, TargetEdges: 600, NodeLabels: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		res, err := Run(ctx, g, Options{K: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Aborted {
			t.Fatalf("workers=%d: cancelled census not reported Aborted", workers)
		}
	}
}

// TestCensusValidation: bad K and nil graphs are rejected.
func TestCensusValidation(t *testing.T) {
	g := graph.NewBuilder(3, 0)
	g.AddNodes(3)
	built := g.MustBuild()
	for _, k := range []int{-1, 0, 1, 7} {
		if _, err := Run(context.Background(), built, Options{K: k}); err == nil {
			t.Errorf("K=%d accepted", k)
		}
	}
	if _, err := Run(context.Background(), nil, Options{K: 3}); err == nil {
		t.Error("nil graph accepted")
	}
}

// TestCensusTinyTarget: a target smaller than K yields an empty census,
// not an error.
func TestCensusTinyTarget(t *testing.T) {
	b := graph.NewBuilder(2, 2)
	b.AddNodes(2)
	b.AddEdgeBoth(0, 1, 0)
	res, err := Run(context.Background(), b.MustBuild(), Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Subgraphs != 0 || len(res.Classes) != 0 {
		t.Fatalf("census of 2-node target at k=4: %d subgraphs", res.Subgraphs)
	}
}
