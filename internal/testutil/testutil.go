// Package testutil provides reference implementations and random instance
// generators shared by the test suites of the search engines. The brute
// force enumerator is the ground truth every algorithm is validated
// against: any two correct engines must agree with it — and therefore
// with each other — on match counts.
package testutil

import (
	"math/rand"

	"parsge/internal/graph"
)

// BruteCountSem counts embeddings of gp in gt under the given matching
// semantics by exhaustive backtracking over assignments in pattern-node
// id order. It applies only the definitional constraints — label
// equivalence, edge preservation with compatible edge labels,
// injectivity when sem requires it, and per-direction non-edge
// preservation for induced matching — with none of the engines' pruning,
// ordering or propagation machinery, so it is independent ground truth
// for every engine. Intended for small instances in tests.
func BruteCountSem(gp, gt *graph.Graph, sem graph.Semantics) int64 {
	np, nt := gp.NumNodes(), gt.NumNodes()
	if np == 0 || (sem.Injective() && np > nt) {
		return 0
	}
	assign := make([]int32, np)
	used := make([]bool, nt)
	var count int64
	var rec func(vp int32)
	rec = func(vp int32) {
		if vp == int32(np) {
			count++
			return
		}
		for vt := int32(0); vt < int32(nt); vt++ {
			if sem.Injective() && used[vt] {
				continue
			}
			if gt.NodeLabel(vt) != gp.NodeLabel(vp) {
				continue
			}
			if !consistent(gp, gt, assign, vp, vt) {
				continue
			}
			if sem.Induced() && !inducedConsistent(gp, gt, assign, vp, vt) {
				continue
			}
			assign[vp] = vt
			used[vt] = true
			rec(vp + 1)
			used[vt] = false
		}
	}
	rec(0)
	return count
}

// BruteCount counts subgraph monomorphisms (non-induced subgraph
// isomorphisms) of gp in gt — BruteCountSem under the default semantics.
func BruteCount(gp, gt *graph.Graph) int64 {
	return BruteCountSem(gp, gt, graph.SubgraphIso)
}

// BruteCountInduced counts induced embeddings: in addition to the
// non-induced constraints, every ordered non-edge of the pattern must map
// to a non-edge of the target (self-loops included).
func BruteCountInduced(gp, gt *graph.Graph) int64 {
	return BruteCountSem(gp, gt, graph.InducedIso)
}

// inducedConsistent rejects vt when a pattern non-edge towards an
// already-assigned node maps onto a target edge.
func inducedConsistent(gp, gt *graph.Graph, assign []int32, vp, vt int32) bool {
	if !gp.HasEdge(vp, vp) && gt.HasEdge(vt, vt) {
		return false
	}
	for w := int32(0); w < vp; w++ {
		if !gp.HasEdge(vp, w) && gt.HasEdge(vt, assign[w]) {
			return false
		}
		if !gp.HasEdge(w, vp) && gt.HasEdge(assign[w], vt) {
			return false
		}
	}
	return true
}

// consistent checks all pattern edges between vp and already-assigned
// nodes (< vp) against the target.
func consistent(gp, gt *graph.Graph, assign []int32, vp, vt int32) bool {
	adj := gp.OutNeighbors(vp)
	labs := gp.OutEdgeLabels(vp)
	for i, w := range adj {
		if w < vp {
			if !gt.HasEdgeLabeled(vt, assign[w], labs[i]) {
				return false
			}
		} else if w == vp { // self-loop
			if !gt.HasEdgeLabeled(vt, vt, labs[i]) {
				return false
			}
		}
	}
	adj = gp.InNeighbors(vp)
	labs = gp.InEdgeLabels(vp)
	for i, w := range adj {
		if w < vp {
			if !gt.HasEdgeLabeled(assign[w], vt, labs[i]) {
				return false
			}
		}
	}
	return true
}

// InstanceOptions controls RandomInstance.
type InstanceOptions struct {
	// TargetNodes and TargetEdges size the target graph. Defaults: 12, 40.
	TargetNodes, TargetEdges int
	// PatternNodes sizes the pattern. Default: 4.
	PatternNodes int
	// NodeLabels and EdgeLabels set the alphabet sizes. Defaults: 3, 2
	// (edge label 0 means unlabeled).
	NodeLabels, EdgeLabels int
	// Extract, when true, builds the pattern as a connected subgraph of
	// the target so at least one match is guaranteed. When false the
	// pattern is independently random (often zero matches).
	Extract bool
	// Nasty adds parallel edges and self-loops to the target (and
	// self-loops to non-extracted patterns) — corner cases the engines
	// must count exactly once per mapping.
	Nasty bool
}

func (o *InstanceOptions) defaults() {
	if o.TargetNodes == 0 {
		o.TargetNodes = 12
	}
	if o.TargetEdges == 0 {
		o.TargetEdges = 40
	}
	if o.PatternNodes == 0 {
		o.PatternNodes = 4
	}
	if o.NodeLabels == 0 {
		o.NodeLabels = 3
	}
	if o.EdgeLabels == 0 {
		o.EdgeLabels = 2
	}
}

// RandomInstance generates a (pattern, target) pair from a seed.
func RandomInstance(seed int64, opts InstanceOptions) (gp, gt *graph.Graph) {
	opts.defaults()
	rng := rand.New(rand.NewSource(seed))

	bt := graph.NewBuilder(opts.TargetNodes, opts.TargetEdges)
	for i := 0; i < opts.TargetNodes; i++ {
		bt.AddNode(graph.Label(rng.Intn(opts.NodeLabels)))
	}
	for i := 0; i < opts.TargetEdges; i++ {
		u := int32(rng.Intn(opts.TargetNodes))
		v := int32(rng.Intn(opts.TargetNodes))
		if opts.Nasty {
			// Allow duplicates, parallel labels, and self-loops.
			bt.AddEdge(u, v, graph.Label(rng.Intn(opts.EdgeLabels)))
			continue
		}
		if u != v && !bt.HasEdgePending(u, v) {
			bt.AddEdge(u, v, graph.Label(rng.Intn(opts.EdgeLabels)))
		}
	}
	gt = bt.MustBuild()

	if !opts.Extract {
		bp := graph.NewBuilder(opts.PatternNodes, 0)
		for i := 0; i < opts.PatternNodes; i++ {
			bp.AddNode(graph.Label(rng.Intn(opts.NodeLabels)))
		}
		// Spanning chain plus extras keeps most patterns connected.
		for i := 1; i < opts.PatternNodes; i++ {
			bp.AddEdge(int32(rng.Intn(i)), int32(i), graph.Label(rng.Intn(opts.EdgeLabels)))
		}
		for i := 0; i < opts.PatternNodes; i++ {
			u := int32(rng.Intn(opts.PatternNodes))
			v := int32(rng.Intn(opts.PatternNodes))
			if u != v {
				bp.AddEdge(u, v, graph.Label(rng.Intn(opts.EdgeLabels)))
			}
		}
		if opts.Nasty {
			for i := 0; i < opts.PatternNodes; i++ {
				if rng.Intn(3) == 0 {
					bp.AddEdge(int32(i), int32(i), graph.Label(rng.Intn(opts.EdgeLabels)))
				}
			}
		}
		return bp.MustBuild(), gt
	}

	gp = ExtractPattern(rng, gt, opts.PatternNodes)
	return gp, gt
}

// ExtractPattern extracts a connected (undirected sense) subgraph of gt
// with up to want nodes via a random BFS-ish expansion, keeping every
// induced edge with probability 3/4 but always keeping a spanning
// connection. The result is a pattern guaranteed to match gt at least
// once (non-induced semantics).
func ExtractPattern(rng *rand.Rand, gt *graph.Graph, want int) *graph.Graph {
	nt := gt.NumNodes()
	if nt == 0 {
		return (&graph.Builder{}).MustBuild()
	}
	if want > nt {
		want = nt
	}
	start := int32(rng.Intn(nt))
	chosen := []int32{start}
	inChosen := map[int32]int32{start: 0}
	frontier := append([]int32(nil), neighborsUndirected(gt, start)...)
	for len(chosen) < want && len(frontier) > 0 {
		i := rng.Intn(len(frontier))
		v := frontier[i]
		frontier[i] = frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		if _, ok := inChosen[v]; ok {
			continue
		}
		inChosen[v] = int32(len(chosen))
		chosen = append(chosen, v)
		frontier = append(frontier, neighborsUndirected(gt, v)...)
	}

	bp := graph.NewBuilder(len(chosen), 0)
	for _, tv := range chosen {
		bp.AddNode(gt.NodeLabel(tv))
	}
	hasPatternEdge := make(map[[2]int32]bool)
	connected := make([]bool, len(chosen))
	connected[0] = true
	for pi, tv := range chosen {
		adj := gt.OutNeighbors(tv)
		labs := gt.OutEdgeLabels(tv)
		for k, tw := range adj {
			pj, ok := inChosen[tw]
			if !ok || int32(pi) == pj {
				continue
			}
			key := [2]int32{int32(pi), pj}
			if hasPatternEdge[key] {
				continue
			}
			// Keep edges randomly but never strand a node: if either
			// endpoint is not yet connected to the pattern, keep.
			keep := rng.Intn(4) != 0 || !connected[pi] || !connected[pj]
			if keep {
				hasPatternEdge[key] = true
				bp.AddEdge(int32(pi), pj, labs[k])
				connected[pi] = true
				connected[pj] = true
			}
		}
	}
	g := bp.MustBuild()
	if !g.ConnectedUndirected() {
		// Rare: the random expansion plus edge dropping disconnected
		// the pattern. Fall back to keeping every induced edge.
		bp2 := graph.NewBuilder(len(chosen), 0)
		for _, tv := range chosen {
			bp2.AddNode(gt.NodeLabel(tv))
		}
		seen := make(map[[2]int32]bool)
		for pi, tv := range chosen {
			adj := gt.OutNeighbors(tv)
			labs := gt.OutEdgeLabels(tv)
			for k, tw := range adj {
				pj, ok := inChosen[tw]
				if !ok || int32(pi) == pj {
					continue
				}
				key := [2]int32{int32(pi), pj}
				if !seen[key] {
					seen[key] = true
					bp2.AddEdge(int32(pi), pj, labs[k])
				}
			}
		}
		g = bp2.MustBuild()
	}
	return g
}

// PermuteGraph returns g with node ids relabeled by a random permutation
// drawn from rng. Enumeration counts are invariant under this for every
// semantics; the property tests use it to flush out ordering-dependent
// bugs in the node ordering and domain filtering.
func PermuteGraph(rng *rand.Rand, g *graph.Graph) *graph.Graph {
	n := g.NumNodes()
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	pg, err := g.Relabel(perm)
	if err != nil {
		panic(err) // perm is a permutation by construction
	}
	return pg
}

func neighborsUndirected(g *graph.Graph, v int32) []int32 {
	out := append([]int32(nil), g.OutNeighbors(v)...)
	return append(out, g.InNeighbors(v)...)
}

// InducedSubgraph materializes the induced subgraph of g on the given
// nodes (in the given order), keeping directions, labels, self-loops
// and parallel edges.
func InducedSubgraph(g *graph.Graph, nodes []int32) *graph.Graph {
	b := graph.NewBuilder(len(nodes), 0)
	pos := make(map[int32]int32, len(nodes))
	for i, v := range nodes {
		b.AddNode(g.NodeLabel(v))
		pos[v] = int32(i)
	}
	for i, v := range nodes {
		adj := g.OutNeighbors(v)
		labs := g.OutEdgeLabels(v)
		for t, u := range adj {
			if j, ok := pos[u]; ok {
				b.AddEdge(int32(i), j, labs[t])
			}
		}
	}
	return b.MustBuild()
}

// BruteCensus is the motif-census ground truth: it iterates every
// k-subset of g's vertices, keeps those whose induced subgraph is
// connected (undirected sense), and groups them by canonical encoding.
// It returns the total count of connected k-subgraphs and the per-class
// counts keyed by the canonical encoding bytes (as a string). Cost is
// C(n, k) induced-subgraph builds — intended for small test graphs.
func BruteCensus(g *graph.Graph, k int) (total int64, classes map[string]int64) {
	classes = make(map[string]int64)
	n := g.NumNodes()
	if k <= 0 || k > n {
		return 0, classes
	}
	subset := make([]int32, 0, k)
	var rec func(next int32)
	rec = func(next int32) {
		if len(subset) == k {
			sub := InducedSubgraph(g, subset)
			if !sub.ConnectedUndirected() {
				return
			}
			enc, _ := graph.CanonicalForm(sub)
			classes[string(enc)]++
			total++
			return
		}
		for v := next; int(v) < n-(k-len(subset))+1; v++ {
			subset = append(subset, v)
			rec(v + 1)
			subset = subset[:len(subset)-1]
		}
	}
	rec(0)
	return total, classes
}
