package domain

import "parsge/internal/graph"

// Kernel selects the candidate-intersection implementation of the
// enumeration hot paths: dense bitset adjacency rows (word-parallel set
// ops via graph.BitGraph) or the classic sorted-slice CSR scans. The
// zero value Auto lets the scheduler pick per query.
type Kernel int

const (
	// KernelAuto picks per query: bitset rows whenever the target fits
	// graph.DenseRowLimit, the slice paths otherwise.
	KernelAuto Kernel = iota
	// KernelBitset forces the bitset rows. Above graph.DenseRowLimit
	// rows cannot be built and the engines silently fall back to the
	// slice paths (the documented fallback rule) — results are
	// identical either way.
	KernelBitset
	// KernelSlice forces the sorted-slice CSR paths, disabling the
	// BitGraph everywhere. The ablation baseline.
	KernelSlice
)

// String names the kernel for logs and bench tables.
func (k Kernel) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelBitset:
		return "bitset"
	case KernelSlice:
		return "slice"
	default:
		return "kernel(?)"
	}
}

// ResolveKernel normalizes Auto against the target size: bitset rows
// are worth building exactly when the target fits the dense-row
// threshold. Explicit choices pass through untouched.
func ResolveKernel(k Kernel, targetNodes int) Kernel {
	if k != KernelAuto {
		return k
	}
	if targetNodes <= graph.DenseRowLimit {
		return KernelBitset
	}
	return KernelSlice
}
