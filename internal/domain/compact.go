package domain

import "parsge/internal/graph"

// Compact NLF signatures. The exact representation in nlfSig stores one
// (key, count) pair per distinct (neighbor label, edge label) incidence
// of every node and direction — O(edges) memory per direction, which on
// million-edge targets dominates the Index. The compact representation
// bounds per-node memory at a constant: keys are folded into
// compactBuckets saturating counters per node and direction, and the
// domination test compares bucket sums instead of per-key counts.
//
// Soundness: for a valid candidate, t.count(k) ≥ p.count(k) holds per
// key, so summing over the keys of any bucket keeps the inequality
// (target-only keys in the bucket only raise the target side). The
// bucketed test therefore never prunes a valid candidate; it may keep
// candidates the exact test would drop (keys sharing a bucket mask each
// other), which only costs search states, never matches.
//
// Exactness fallback: when the target's distinct key alphabet fits in
// the bucket array, keys get a perfect (injective) bucket assignment and
// the compact test is exactly the exact test — small label alphabets pay
// no pruning loss for the memory bound. A pattern key outside the
// target's alphabet can then be rejected outright (no target node
// anywhere offers it).

// compactBuckets is the per-direction bucket count (a power of two, so
// hashBucket's top-bits shift covers exactly [0, compactBuckets)).
// 8 × uint16 = 16 bytes per node per direction, independent of the
// edge count.
const (
	compactBucketBits = 3
	compactBuckets    = 1 << compactBucketBits
)

// compactAutoEdges is the edge count above which NLFAuto switches the
// Index to compact signatures (the "million-edge target" regime).
const compactAutoEdges = 1 << 20

// compactSig is one node's bucketed signature in one direction.
type compactSig [compactBuckets]uint16

// NLFMode selects the Index's NLF signature representation.
type NLFMode int32

const (
	// NLFAuto (the zero value) picks exact signatures below
	// compactAutoEdges target edges and compact ones above.
	NLFAuto NLFMode = iota
	// NLFExact always stores exact per-key signatures.
	NLFExact
	// NLFCompact always stores bucketed signatures.
	NLFCompact
)

// String names the mode for logs and golden tables.
func (m NLFMode) String() string {
	switch m {
	case NLFAuto:
		return "auto"
	case NLFExact:
		return "exact"
	case NLFCompact:
		return "compact"
	default:
		return "NLFMode(?)"
	}
}

// hashBucket folds an nlfKey into a bucket index (Fibonacci hashing —
// the keys are label pairs, typically tiny and sequential, so plain
// masking would collide systematically).
func hashBucket(key uint64) int {
	return int((key * 0x9E3779B97F4A7C15) >> (64 - compactBucketBits))
}

// bucketOf maps a key through the index's perfect assignment when one
// exists, else hashes. ok is false only under a perfect assignment for
// keys the target graph never exhibits.
func (ix *Index) bucketOf(key uint64) (int, bool) {
	if ix.keyBucket != nil {
		b, ok := ix.keyBucket[key]
		return int(b), ok
	}
	return hashBucket(key), true
}

// satAdd adds n to a saturating uint16 counter.
func satAdd(c uint16, n int32) uint16 {
	s := int64(c) + int64(n)
	if s > 0xFFFF {
		return 0xFFFF
	}
	return uint16(s)
}

// foldCompact folds an exact key buffer (as produced by appendNLFKeys,
// unsorted is fine) into a bucketed signature via the index's mapping.
func (ix *Index) foldCompact(keys []uint64) compactSig {
	var sig compactSig
	for _, k := range keys {
		if b, ok := ix.bucketOf(k); ok {
			sig[b] = satAdd(sig[b], 1)
		}
	}
	return sig
}

// compactDominates reports whether target buckets t cover pattern
// buckets p: per bucket at least the pattern's count (injective
// semantics) or mere presence (homomorphism — set containment).
func compactDominates(t, p compactSig, hom bool) bool {
	for b := 0; b < compactBuckets; b++ {
		if p[b] == 0 {
			continue
		}
		if t[b] == 0 || (!hom && t[b] < p[b]) {
			return false
		}
	}
	return true
}

// patternCompact is one pattern node's bucketed signature in one
// direction. impossible marks a pattern key outside the target's key
// alphabet under a perfect bucket assignment: no candidate anywhere can
// dominate it, so the node's domain is empty.
type patternCompact struct {
	sig        compactSig
	impossible bool
}

// buildPatternCompact folds one pattern adjacency row into a bucketed
// signature using the index's key mapping.
func (ix *Index) buildPatternCompact(buf []uint64) patternCompact {
	var pc patternCompact
	for _, k := range buf {
		b, ok := ix.bucketOf(k)
		if !ok {
			pc.impossible = true
			return pc
		}
		pc.sig[b] = satAdd(pc.sig[b], 1)
	}
	return pc
}

// buildCompactNLF fills the index's compact signature tables and the
// perfect key assignment when the target's key alphabet is small enough.
func (ix *Index) buildCompactNLF(gt *graph.Graph) {
	nt := gt.NumNodes()
	// First pass: collect the distinct key alphabet, giving up once it
	// outgrows the bucket array (the map stays O(compactBuckets)).
	alphabet := make(map[uint64]int8)
	small := true
	var buf []uint64
scan:
	for vt := int32(0); vt < int32(nt); vt++ {
		buf = appendNLFKeys(buf[:0], gt, gt.OutNeighbors(vt), gt.OutEdgeLabels(vt))
		buf = appendNLFKeys(buf, gt, gt.InNeighbors(vt), gt.InEdgeLabels(vt))
		for _, k := range buf {
			if _, ok := alphabet[k]; !ok {
				if len(alphabet) == compactBuckets {
					small = false
					break scan
				}
				alphabet[k] = int8(len(alphabet))
			}
		}
	}
	if small {
		ix.keyBucket = alphabet // injective: compact test is exact
	}
	ix.cout = make([]compactSig, nt)
	ix.cin = make([]compactSig, nt)
	for vt := int32(0); vt < int32(nt); vt++ {
		buf = appendNLFKeys(buf[:0], gt, gt.OutNeighbors(vt), gt.OutEdgeLabels(vt))
		ix.cout[vt] = ix.foldCompact(buf)
		buf = appendNLFKeys(buf[:0], gt, gt.InNeighbors(vt), gt.InEdgeLabels(vt))
		ix.cin[vt] = ix.foldCompact(buf)
	}
}

// CompactNLF reports whether the index stores bucketed NLF signatures.
func (ix *Index) CompactNLF() bool { return ix.cout != nil }

// NLFExactFallback reports whether a compact index's bucket assignment
// is perfect (small key alphabet), making the compact test exact.
func (ix *Index) NLFExactFallback() bool { return ix.keyBucket != nil }

// NLFMemoryBytes returns the payload bytes of the NLF signature storage
// — the quantity the compact representation exists to bound. Slice and
// map headers are excluded; the figure is for comparing representations,
// not accounting heap pages.
func (ix *Index) NLFMemoryBytes() int {
	if ix.CompactNLF() {
		return (len(ix.cout) + len(ix.cin)) * compactBuckets * 2
	}
	total := 0
	for _, sigs := range [][]nlfSig{ix.out, ix.in} {
		for _, s := range sigs {
			total += len(s.keys)*8 + len(s.counts)*4
		}
	}
	return total
}
