package domain

import (
	"fmt"

	"parsge/internal/graph"
)

// Incremental index maintenance under edge updates.
//
// A node's NLF signatures depend only on its own adjacency rows, and
// every endpoint of a changed arc is in the update's touched set — so
// after an edge batch, only the touched vertices' signatures can
// differ, and the rest are shared structurally with the previous index.
// Node labels never change under edge updates (graph.EdgeUpdate cannot
// add or relabel nodes), so the byLabel buckets and the label entropy
// are carried over verbatim; the degree moments behind MeanDegree and
// DegreeSkew are adjusted by exact integer deltas and re-derived
// through the same fillDegreeStats pipeline a fresh build uses, which
// is what makes the incremental stats bit-identical to a rebuild.

// ApplyUpdates derives the index of newG from the index of oldG, where
// newG = oldG.ApplyUpdates(batch) and touched is that call's changed
// endpoint set. ix must be the index of oldG. The receiver is not
// modified; untouched per-node state is shared between the two indexes.
//
// In exact NLF mode the result is bit-identical to NewIndexMode(newG,
// mode) — the property the differential update battery pins with
// IndexEqual. In compact mode the bucketed signatures are refolded for
// the touched vertices; if the target's key alphabet outgrows a perfect
// bucket assignment the whole compact table is rebuilt with hashed
// buckets (still O(n), never a full stats/bucket rebuild). A compact
// index maintained incrementally prunes identically, but may number its
// alphabet differently from a fresh rebuild.
func (ix *Index) ApplyUpdates(oldG, newG *graph.Graph, touched []int32) *Index {
	nix := &Index{
		byLabel: ix.byLabel, // node labels are immutable under edge updates
		nt:      ix.nt,
		gen:     ix.gen + 1,
	}
	if c := ix.rowCache.Load(); c != nil && c.epoch == ix.gen {
		// The old index had BitGraph rows for its generation: seed the new
		// index with an incremental rebuild (touched rows only, untouched
		// rows shared), tagged with the new generation. A stale or absent
		// cache is simply not carried — Rows rebuilds lazily on demand.
		nix.rowCache.Store(&bitRows{rows: c.rows.Rebuild(newG, touched), epoch: nix.gen})
	}
	sumDeg, sumSqDeg := ix.sumDeg, ix.sumSqDeg
	for _, v := range touched {
		od, nd := int64(oldG.Degree(v)), int64(newG.Degree(v))
		sumDeg += nd - od
		sumSqDeg += nd*nd - od*od
	}
	nix.sumDeg, nix.sumSqDeg = sumDeg, sumSqDeg
	st := TargetStats{
		Nodes:        ix.stats.Nodes,
		Edges:        newG.NumEdges(),
		Labels:       ix.stats.Labels,
		LabelEntropy: ix.stats.LabelEntropy,
	}
	fillDegreeStats(&st, sumDeg, sumSqDeg)
	nix.stats = st

	if ix.cout != nil {
		ix.applyCompactUpdates(nix, newG, touched)
		return nix
	}

	nix.out = make([]nlfSig, ix.nt)
	copy(nix.out, ix.out)
	nix.in = make([]nlfSig, ix.nt)
	copy(nix.in, ix.in)
	var buf []uint64
	for _, vt := range touched {
		buf = appendNLFKeys(buf[:0], newG, newG.OutNeighbors(vt), newG.OutEdgeLabels(vt))
		nix.out[vt] = buildNLFSig(buf)
		buf = appendNLFKeys(buf[:0], newG, newG.InNeighbors(vt), newG.InEdgeLabels(vt))
		nix.in[vt] = buildNLFSig(buf)
	}
	return nix
}

// applyCompactUpdates maintains the bucketed signature tables. Under a
// perfect key→bucket assignment, added edges can introduce keys the
// alphabet has never seen: while the array has room the assignment is
// extended (on a cloned map — the old index may be serving queries),
// past that the tables are rebuilt with hashed buckets. Keys that
// removals made extinct are deliberately kept: a superset alphabet is
// sound (a pattern key absent from the current graph folds to a bucket
// every live candidate has at zero, emptying the domain exactly as the
// "impossible" fast path would).
func (ix *Index) applyCompactUpdates(nix *Index, newG *graph.Graph, touched []int32) {
	var buf []uint64
	if ix.keyBucket != nil {
		fresh := make(map[uint64]struct{})
		for _, vt := range touched {
			buf = appendNLFKeys(buf[:0], newG, newG.OutNeighbors(vt), newG.OutEdgeLabels(vt))
			buf = appendNLFKeys(buf, newG, newG.InNeighbors(vt), newG.InEdgeLabels(vt))
			for _, k := range buf {
				if _, ok := ix.keyBucket[k]; !ok {
					fresh[k] = struct{}{}
				}
			}
		}
		if len(ix.keyBucket)+len(fresh) > compactBuckets {
			// The alphabet outgrew the perfect assignment for good:
			// rebuild the compact tables with hashed buckets.
			nix.buildCompactNLF(newG)
			return
		}
		kb := ix.keyBucket
		if len(fresh) > 0 {
			kb = make(map[uint64]int8, len(ix.keyBucket)+len(fresh))
			for k, b := range ix.keyBucket {
				kb[k] = b
			}
			for k := range fresh {
				kb[k] = int8(len(kb))
			}
		}
		nix.keyBucket = kb
	}
	nix.cout = make([]compactSig, ix.nt)
	copy(nix.cout, ix.cout)
	nix.cin = make([]compactSig, ix.nt)
	copy(nix.cin, ix.cin)
	for _, vt := range touched {
		buf = appendNLFKeys(buf[:0], newG, newG.OutNeighbors(vt), newG.OutEdgeLabels(vt))
		nix.cout[vt] = nix.foldCompact(buf)
		buf = appendNLFKeys(buf[:0], newG, newG.InNeighbors(vt), newG.InEdgeLabels(vt))
		nix.cin[vt] = nix.foldCompact(buf)
	}
}

// IndexEqual compares two indexes for exact equality — label buckets,
// cached statistics (including every float bit), NLF representation and
// per-node signature contents. It returns a description of the first
// difference for test diagnostics, or "" when equal. It is the oracle
// relation of the incremental-vs-rebuild differential battery.
func IndexEqual(a, b *Index) (bool, string) {
	if a == nil || b == nil {
		if a == b {
			return true, ""
		}
		return false, "one index is nil"
	}
	if a.nt != b.nt {
		return false, fmt.Sprintf("node count %d vs %d", a.nt, b.nt)
	}
	if a.HasRows() && b.HasRows() {
		// Rows are built lazily, so a one-sided cache is not a difference;
		// when both sides have current-generation rows they must encode
		// identical adjacency (the incremental-vs-rebuild row hook).
		if ok, why := graph.BitGraphEqual(a.cachedRows(), b.cachedRows()); !ok {
			return false, "bitset rows: " + why
		}
	}
	if a.stats != b.stats {
		return false, fmt.Sprintf("stats %+v vs %+v", a.stats, b.stats)
	}
	if a.sumDeg != b.sumDeg || a.sumSqDeg != b.sumSqDeg {
		return false, fmt.Sprintf("degree moments (%d,%d) vs (%d,%d)", a.sumDeg, a.sumSqDeg, b.sumDeg, b.sumSqDeg)
	}
	if len(a.byLabel) != len(b.byLabel) {
		return false, fmt.Sprintf("label bucket count %d vs %d", len(a.byLabel), len(b.byLabel))
	}
	for l, av := range a.byLabel {
		bv, ok := b.byLabel[l]
		if !ok || len(av) != len(bv) {
			return false, fmt.Sprintf("label %d bucket differs", l)
		}
		for i := range av {
			if av[i] != bv[i] {
				return false, fmt.Sprintf("label %d bucket entry %d: %d vs %d", l, i, av[i], bv[i])
			}
		}
	}
	if (a.cout != nil) != (b.cout != nil) {
		return false, "NLF representation differs (exact vs compact)"
	}
	if a.cout == nil {
		for _, dir := range []struct {
			name string
			a, b []nlfSig
		}{{"out", a.out, b.out}, {"in", a.in, b.in}} {
			if len(dir.a) != len(dir.b) {
				return false, fmt.Sprintf("%s signature table length %d vs %d", dir.name, len(dir.a), len(dir.b))
			}
			for v := range dir.a {
				sa, sb := dir.a[v], dir.b[v]
				if len(sa.keys) != len(sb.keys) {
					return false, fmt.Sprintf("node %d %s signature: %d keys vs %d", v, dir.name, len(sa.keys), len(sb.keys))
				}
				for i := range sa.keys {
					if sa.keys[i] != sb.keys[i] || sa.counts[i] != sb.counts[i] {
						return false, fmt.Sprintf("node %d %s signature entry %d differs", v, dir.name, i)
					}
				}
			}
		}
		return true, ""
	}
	if len(a.keyBucket) != len(b.keyBucket) {
		return false, fmt.Sprintf("alphabet size %d vs %d", len(a.keyBucket), len(b.keyBucket))
	}
	for k, ab := range a.keyBucket {
		if bb, ok := b.keyBucket[k]; !ok || ab != bb {
			return false, fmt.Sprintf("key %#x bucket differs", k)
		}
	}
	for v := range a.cout {
		if a.cout[v] != b.cout[v] || a.cin[v] != b.cin[v] {
			return false, fmt.Sprintf("node %d compact signature differs", v)
		}
	}
	return true, ""
}
