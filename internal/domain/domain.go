// Package domain implements RI-DS domain assignment (Kimmig et al. §4.1)
// and the paper's forward-checking improvement (§4.2.2), extended into a
// semantics-aware pruning subsystem.
//
// A domain D(v_p) is the set of target nodes that pattern node v_p may
// map to. Domains start from label equivalence and degree bounds, are
// tightened by the neighborhood-label-frequency filter (NLF: the
// candidate's labeled neighborhood must dominate the pattern node's),
// pruned by arc consistency over the pattern edges — and, under induced
// semantics, over the pattern *non*-edges too — and, in the RI-DS-SI-FC
// variant, further reduced by forward checking: every pattern node with
// a singleton domain will definitely be assigned its unique target node,
// so that target is removed from every other domain, cascading over
// newly created singletons.
//
// Every filter adapts to the matching semantics (see Options.Semantics):
// degree bounds and multiset NLF domination require injectivity, so
// under graph.Homomorphism the NLF check weakens to set containment (the
// image must offer every labeled-neighbor kind the pattern node needs,
// counted as a set) — the sound homomorphism label bound — and degree
// bounds are dropped. The non-edge propagation applies only under
// graph.InducedIso, the one semantics that constrains non-edges.
//
// Domains are represented as bitmasks over the target vertex set, exactly
// as in the original RI implementation ("In RI, domains are implemented
// as bitmasks, which we use to quickly remove singleton domains' contents
// from all other domains").
//
// Which filters run — and how deep arc consistency iterates — is chosen
// per query by the adaptive schedule (see Schedule, AutoTune in
// schedule.go): preprocessing cost is only paid where target statistics
// say it amortizes. NLF signatures have two representations: exact
// per-key (nlfSig) and memory-bounded bucketed (compact.go).
package domain

import (
	"fmt"
	"math"
	"slices"
	"sync/atomic"
	"time"

	"parsge/internal/bitset"
	"parsge/internal/graph"
)

// Domains holds one candidate set per pattern node over target node ids.
type Domains struct {
	sets []*bitset.Set
	nt   int
}

// Index is precomputed target-side state reusable across queries against
// the same target graph: nodes bucketed by label (in ascending node-id
// order), per-node neighborhood-label-frequency signatures for the NLF
// filter, and the target statistics the adaptive schedule consults.
// Building it once per target and sharing it between Compute calls turns
// the initial domain filter from a scan over all target nodes into a
// scan over the label's bucket, with each candidate's NLF signature
// ready instead of recomputed per query. An Index is immutable after
// NewIndex and safe for concurrent use.
type Index struct {
	byLabel map[graph.Label][]int32
	nt      int
	// stats are cached for AutoTune (density, label entropy, skew).
	stats TargetStats
	// out[v] / in[v] are node v's exact NLF signatures per direction
	// (nil in compact mode).
	out, in []nlfSig
	// cout / cin are the bucketed signatures of compact mode (nil in
	// exact mode); keyBucket is the perfect key→bucket assignment of the
	// exactness fallback (nil = hashed buckets). See compact.go.
	cout, cin []compactSig
	keyBucket map[uint64]int8
	// sumDeg / sumSqDeg are the exact integer degree moments behind
	// stats.MeanDegree/DegreeSkew, kept so incremental update
	// maintenance (update.go) can adjust them for touched vertices only
	// and still reproduce a rebuild bit-for-bit.
	sumDeg, sumSqDeg int64
	// gen is the index generation: 0 at construction, old.gen+1 for
	// every ApplyUpdates derivative. It tags the lazily-built BitGraph
	// row cache below so a seeded cache is only trusted for the
	// generation it was built for.
	gen uint64
	// rowCache holds the lazily-built bitset adjacency rows (see Rows).
	// The pointer itself is the only mutable state of an Index; racing
	// builders store identical content, so last-store-wins is safe.
	rowCache atomic.Pointer[bitRows]
}

// bitRows is the BitGraph row cache of an Index, tagged with the index
// generation it was built for so incremental seeding can never leak
// stale rows across an update.
//
//sgelint:epochkey
type bitRows struct {
	rows  *graph.BitGraph // nil when the target exceeds graph.DenseRowLimit
	epoch uint64          // Index generation the rows were built from
}

// Rows returns the target's dense bitset adjacency rows, building them
// on first use and caching them on the Index (the BitGraph kernel
// layer). g must be the graph the Index was built for. Returns nil when
// the target exceeds graph.DenseRowLimit nodes — the sorted-slice
// fallback rule; callers must treat nil as "use the CSR paths".
func (ix *Index) Rows(g *graph.Graph) *graph.BitGraph {
	if c := ix.rowCache.Load(); c != nil && c.epoch == ix.gen {
		return c.rows
	}
	bg := graph.NewBitGraph(g)
	ix.rowCache.Store(&bitRows{rows: bg, epoch: ix.gen})
	return bg
}

// cachedRows returns the row cache if it was built for this generation,
// without building anything.
func (ix *Index) cachedRows() *graph.BitGraph {
	if c := ix.rowCache.Load(); c != nil && c.epoch == ix.gen {
		return c.rows
	}
	return nil
}

// HasRows reports whether the BitGraph row cache is built for the
// current generation (tests and IndexEqual use it; laziness means an
// unbuilt cache is not a difference).
func (ix *Index) HasRows() bool {
	c := ix.rowCache.Load()
	return c != nil && c.epoch == ix.gen
}

// NewIndex buckets the target's nodes by label and precomputes the
// per-node NLF signatures, choosing the representation automatically
// (exact below compactAutoEdges edges, compact above).
func NewIndex(gt *graph.Graph) *Index { return NewIndexMode(gt, NLFAuto) }

// NewIndexMode is NewIndex with an explicit NLF signature representation
// (see NLFMode). Compact signatures bound per-node memory at a constant
// on huge targets at the cost of a (sound) coarser NLF test; with a
// small label alphabet the compact test is exact (NLFExactFallback).
func NewIndexMode(gt *graph.Graph, mode NLFMode) *Index {
	nt := gt.NumNodes()
	st, sumDeg, sumSqDeg := statsWithSums(gt)
	ix := &Index{
		byLabel:  make(map[graph.Label][]int32),
		nt:       nt,
		stats:    st,
		sumDeg:   sumDeg,
		sumSqDeg: sumSqDeg,
	}
	for vt := int32(0); vt < int32(nt); vt++ {
		l := gt.NodeLabel(vt)
		ix.byLabel[l] = append(ix.byLabel[l], vt)
	}
	if mode == NLFAuto && gt.NumEdges() >= compactAutoEdges {
		mode = NLFCompact
	}
	if mode == NLFCompact {
		ix.buildCompactNLF(gt)
		return ix
	}
	ix.out = make([]nlfSig, nt)
	ix.in = make([]nlfSig, nt)
	var buf []uint64
	for vt := int32(0); vt < int32(nt); vt++ {
		buf = appendNLFKeys(buf[:0], gt, gt.OutNeighbors(vt), gt.OutEdgeLabels(vt))
		ix.out[vt] = buildNLFSig(buf)
		buf = appendNLFKeys(buf[:0], gt, gt.InNeighbors(vt), gt.InEdgeLabels(vt))
		ix.in[vt] = buildNLFSig(buf)
	}
	return ix
}

// Stats returns the target statistics cached at index construction.
func (ix *Index) Stats() TargetStats { return ix.stats }

// Nodes returns the target nodes carrying label l, ascending by id. The
// slice is shared — callers must not modify it.
func (ix *Index) Nodes(l graph.Label) []int32 { return ix.byLabel[l] }

// NumNodes returns the node count of the indexed target, used to verify
// an Index belongs to the graph a query runs against.
func (ix *Index) NumNodes() int { return ix.nt }

// NumLabels returns the number of distinct node labels in the target.
func (ix *Index) NumLabels() int { return len(ix.byLabel) }

// nlfKey packs a (neighbor node label, edge label) pair into one
// comparable word. Labels are int32, so the two halves never collide.
func nlfKey(nodeLab, edgeLab graph.Label) uint64 {
	return uint64(uint32(nodeLab))<<32 | uint64(uint32(edgeLab))
}

// nlfSig is one node's neighborhood-label-frequency signature in one
// direction: sorted (neighbor label, edge label) keys with the number of
// distinct neighbors per key. Self-loops are included as ordinary
// incidences on both the pattern and the target side, which keeps the
// domination test sound for every semantics (a pattern self-loop can
// only map onto a target self-loop; under homomorphism a pattern edge
// may map onto a target self-loop, whose key is then present).
type nlfSig struct {
	keys   []uint64
	counts []int32
}

// appendNLFKeys appends one key per distinct (neighbor, edge label)
// incidence of an adjacency row. Rows are sorted by neighbor id, so
// parallel edges are contiguous; equal-label parallels are deduplicated
// (they impose a single constraint), different-label parallels each
// contribute their own key.
func appendNLFKeys(dst []uint64, g *graph.Graph, adj []int32, labs []graph.Label) []uint64 {
	for i := 0; i < len(adj); {
		j := i
		for j < len(adj) && adj[j] == adj[i] {
			j++
		}
		nl := g.NodeLabel(adj[i])
		for k := i; k < j; k++ {
			dup := false
			for m := i; m < k; m++ {
				if labs[m] == labs[k] {
					dup = true
					break
				}
			}
			if !dup {
				dst = append(dst, nlfKey(nl, labs[k]))
			}
		}
		i = j
	}
	return dst
}

// buildNLFSig sorts the key buffer and run-length encodes it into a
// signature. The buffer may be reused afterwards; the signature owns
// fresh storage.
func buildNLFSig(keys []uint64) nlfSig {
	if len(keys) == 0 {
		return nlfSig{}
	}
	slices.Sort(keys)
	var sig nlfSig
	for i := 0; i < len(keys); {
		j := i
		for j < len(keys) && keys[j] == keys[i] {
			j++
		}
		sig.keys = append(sig.keys, keys[i])
		sig.counts = append(sig.counts, int32(j-i))
		i = j
	}
	return sig
}

// dominates reports whether target signature t covers pattern signature
// p: every pattern key must be present with at least the pattern's
// count (multiset domination — sound under the injective semantics,
// where distinct pattern neighbors need distinct images) or, under
// homomorphism, with at least one distinct neighbor (set containment —
// distinct pattern neighbors may collapse onto one image, but every
// required labeled-edge kind must exist).
func (t nlfSig) dominates(p nlfSig, hom bool) bool {
	ti := 0
	for pi, k := range p.keys {
		for ti < len(t.keys) && t.keys[ti] < k {
			ti++
		}
		if ti == len(t.keys) || t.keys[ti] != k {
			return false
		}
		if !hom && t.counts[ti] < p.counts[pi] {
			return false
		}
	}
	return true
}

// Options configures domain computation.
type Options struct {
	// ACPasses bounds the number of arc-consistency sweeps: 0 means
	// iterate to fixpoint, n > 0 caps at n sweeps. A single sweep is
	// what the original RI-DS description performs; the fixpoint is
	// never weaker. The ablation bench compares the two.
	ACPasses int
	// ACAdaptive marks ACPasses as a revisable scheduler prediction
	// rather than a caller demand: after the capped sweeps the pipeline
	// measures the remaining domains and escalates to fixpoint when
	// their mean size is still at least acEscalateMeanDomain candidates
	// per pattern node (the second-stage AutoTune rule). Set by AutoTune
	// alongside its one-pass cap; ignored when ACPasses is 0.
	ACAdaptive bool
	// SkipAC disables arc consistency entirely (the induced non-edge
	// propagation included), leaving only the unary filters. Used by
	// ablation benchmarks.
	SkipAC bool
	// SkipNLF disables the neighborhood-label-frequency filter, leaving
	// the label/degree/self-loop unary filters. Used by ablation
	// benchmarks and the differential tests.
	SkipNLF bool
	// SkipInducedAC disables the induced non-edge propagation while
	// keeping the classic edge-support arc consistency. Only meaningful
	// under graph.InducedIso. Used by ablations and differential tests.
	SkipInducedAC bool
	// Index, when non-nil and built for the same target, restricts the
	// initial label/degree filter to each label's bucket instead of
	// scanning every target node, and supplies precomputed target NLF
	// signatures. Results are identical either way.
	Index *Index
	// Kernel selects the candidate-intersection implementation of the
	// propagation hot paths (classic AC support scans and the induced
	// non-edge pass): KernelBitset rewires them onto dense BitGraph
	// rows (cached on Index when one is supplied), KernelSlice keeps
	// the CSR scans, KernelAuto resolves by target size. Results are
	// identical for every kernel.
	Kernel Kernel
	// Semantics adjusts the filters to the matching semantics: under
	// graph.Homomorphism the degree bounds are dropped (several pattern
	// edges may collapse onto one target edge, so "image degree ≥
	// pattern degree" would wrongly prune valid images) and NLF
	// domination weakens to set containment; under graph.InducedIso the
	// unary self-loop filter and the arc-consistency sweep additionally
	// enforce non-edge constraints. Arc consistency over pattern edges
	// is sound for every semantics — it only requires each pattern edge
	// to have some compatible target edge. The zero value normalizes to
	// the paper's non-induced subgraph isomorphism.
	Semantics graph.Semantics
}

// Compute builds the domains of pattern gp against target gt.
func Compute(gp, gt *graph.Graph, opts Options) *Domains {
	d, _ := ComputeWithStats(gp, gt, opts)
	return d
}

// ComputeWithStats is Compute plus a report of what the filter pipeline
// did: the resolved Plan, per-filter wall times, and staged domain
// sizes. Callers that schedule adaptively (see AutoTune) surface the
// report so the chosen plan is measurable rather than implicit.
func ComputeWithStats(gp, gt *graph.Graph, opts Options) (*Domains, ComputeStats) {
	sem := opts.Semantics.Norm()
	np, nt := gp.NumNodes(), gt.NumNodes()
	d := &Domains{sets: make([]*bitset.Set, np), nt: nt}

	ix := opts.Index
	if ix != nil && ix.nt != nt {
		ix = nil // index built for a different target: ignore
	}
	hom := !sem.Injective()
	induced := sem.Induced()
	compact := ix != nil && ix.CompactNLF()
	stats := ComputeStats{Plan: Plan{
		NLF:        !opts.SkipNLF,
		CompactNLF: !opts.SkipNLF && compact,
		AC:         !opts.SkipAC,
		ACPasses:   opts.ACPasses,
		ACAdaptive: !opts.SkipAC && opts.ACAdaptive && opts.ACPasses > 0,
		InducedAC:  induced && !opts.SkipAC && !opts.SkipInducedAC,
	}}
	unaryStart := time.Now()

	// Pattern-side unary state, computed once per pattern node: NLF
	// signatures (exact, or bucketed to match a compact index) and
	// self-loop label sets.
	var psigOut, psigIn []nlfSig
	var pcOut, pcIn []patternCompact
	if !opts.SkipNLF {
		var buf []uint64
		if compact {
			pcOut = make([]patternCompact, np)
			pcIn = make([]patternCompact, np)
			for vp := int32(0); vp < int32(np); vp++ {
				buf = appendNLFKeys(buf[:0], gp, gp.OutNeighbors(vp), gp.OutEdgeLabels(vp))
				pcOut[vp] = ix.buildPatternCompact(buf)
				buf = appendNLFKeys(buf[:0], gp, gp.InNeighbors(vp), gp.InEdgeLabels(vp))
				pcIn[vp] = ix.buildPatternCompact(buf)
			}
		} else {
			psigOut = make([]nlfSig, np)
			psigIn = make([]nlfSig, np)
			for vp := int32(0); vp < int32(np); vp++ {
				buf = appendNLFKeys(buf[:0], gp, gp.OutNeighbors(vp), gp.OutEdgeLabels(vp))
				psigOut[vp] = buildNLFSig(buf)
				buf = appendNLFKeys(buf[:0], gp, gp.InNeighbors(vp), gp.InEdgeLabels(vp))
				psigIn[vp] = buildNLFSig(buf)
			}
		}
	}
	selfLoops := patternSelfLoops(gp)

	// Without an Index, target signatures are built on the fly and
	// memoized per node: same-label pattern nodes share a candidate
	// bucket, so each candidate would otherwise be re-encoded once per
	// pattern node.
	var scratch []uint64
	var tout, tin []nlfSig
	var tbuilt []bool
	targetSigs := func(vt int32) (out, in nlfSig) {
		if ix != nil {
			return ix.out[vt], ix.in[vt]
		}
		if tbuilt == nil {
			tout = make([]nlfSig, nt)
			tin = make([]nlfSig, nt)
			tbuilt = make([]bool, nt)
		}
		if !tbuilt[vt] {
			scratch = appendNLFKeys(scratch[:0], gt, gt.OutNeighbors(vt), gt.OutEdgeLabels(vt))
			tout[vt] = buildNLFSig(scratch)
			scratch = appendNLFKeys(scratch[:0], gt, gt.InNeighbors(vt), gt.InEdgeLabels(vt))
			tin[vt] = buildNLFSig(scratch)
			tbuilt[vt] = true
		}
		return tout[vt], tin[vt]
	}

	// Initial unary filter per pattern node: equivalent labels,
	// sufficient in/out degrees ("all nodes with in- and outdegree at
	// least that of v_p's, and with labels that match v_p's", §4.1, only
	// under the injective semantics), label-compatible self-loops (under
	// induced semantics also the absence of extra target self-loops),
	// and NLF domination. With a label Index only the matching bucket is
	// scanned; the label test is then implicit.
	for vp := int32(0); vp < int32(np); vp++ {
		s := bitset.New(nt)
		lab := gp.NodeLabel(vp)
		din, dout := gp.InDegree(vp), gp.OutDegree(vp)
		if !sem.DegreePruning() {
			din, dout = 0, 0
		}
		admit := func(vt int32) {
			if gt.InDegree(vt) < din || gt.OutDegree(vt) < dout {
				return
			}
			for _, l := range selfLoops[vp] {
				if !gt.HasEdgeLabeled(vt, vt, l) {
					return
				}
			}
			if induced && len(selfLoops[vp]) == 0 && gt.HasEdge(vt, vt) {
				return
			}
			if !opts.SkipNLF {
				if compact {
					if !compactDominates(ix.cout[vt], pcOut[vp].sig, hom) ||
						!compactDominates(ix.cin[vt], pcIn[vp].sig, hom) {
						return
					}
				} else if len(psigOut[vp].keys) > 0 || len(psigIn[vp].keys) > 0 {
					tout, tin := targetSigs(vt)
					if !tout.dominates(psigOut[vp], hom) || !tin.dominates(psigIn[vp], hom) {
						return
					}
				}
			}
			s.Set(int(vt))
		}
		if compact && !opts.SkipNLF && (pcOut[vp].impossible || pcIn[vp].impossible) {
			// A pattern key outside the target's key alphabet (perfect
			// bucket assignment): no candidate anywhere can supply it.
			d.sets[vp] = s
			continue
		}
		if ix != nil {
			for _, vt := range ix.Nodes(lab) {
				admit(vt)
			}
		} else {
			for vt := int32(0); vt < int32(nt); vt++ {
				if gt.NodeLabel(vt) == lab {
					admit(vt)
				}
			}
		}
		d.sets[vp] = s
	}

	stats.UnaryTime = time.Since(unaryStart)
	stats.AfterUnary = d.TotalSize()

	// Resolve the kernel and materialize the BitGraph rows the
	// propagation passes (and, via stats.Rows, the engines) run on.
	// With an Index the rows are cached across queries; without one
	// they are built here only when arc consistency will actually use
	// them.
	var rows *graph.BitGraph
	if ResolveKernel(opts.Kernel, nt) == KernelBitset {
		if ix != nil {
			rows = ix.Rows(gt)
		} else if !opts.SkipAC {
			rows = graph.NewBitGraph(gt)
		}
	}
	stats.Rows = rows

	if !opts.SkipAC {
		d.arcConsistency(gp, gt, rows, opts.ACPasses, stats.Plan.ACAdaptive, induced && !opts.SkipInducedAC, &stats)
	}
	stats.Final = d.TotalSize()
	if lp, empty := d.LogProduct(); !empty {
		stats.LogDomainProduct = lp
	}
	return d, stats
}

// patternSelfLoops collects, per pattern node, the distinct labels of
// its self-loops.
func patternSelfLoops(gp *graph.Graph) [][]graph.Label {
	out := make([][]graph.Label, gp.NumNodes())
	for vp := int32(0); vp < int32(gp.NumNodes()); vp++ {
		adj := gp.OutNeighbors(vp)
		labs := gp.OutEdgeLabels(vp)
		for i, w := range adj {
			if w == vp && !slices.Contains(out[vp], labs[i]) {
				out[vp] = append(out[vp], labs[i])
			}
		}
	}
	return out
}

// arcConsistency removes v_t from D(v_p) whenever some pattern edge at
// v_p has no compatible counterpart at v_t (§4.1): for every edge
// (v_p, w_p) there must be an edge-label-compatible w_t ∈ D(w_p) with
// (v_t, w_t) ∈ E(G_t), and symmetrically for incoming edges. When
// induced is set, each sweep additionally propagates the pattern
// *non*-edge constraints (see inducedPass); both prunings share the
// pass loop so they reach a joint fixpoint. st accumulates the wall
// time of the classic sweeps and the induced passes separately.
//
// With adaptive set, maxPasses is a revisable prediction: after the
// first sweep the remaining mean domain size is measured, and when it is
// still at least acEscalateMeanDomain candidates per pattern node the
// cap is lifted and the sweeps continue to fixpoint (the second-stage
// AutoTune rule). The outcome is written back to st.Plan.ACPasses so the
// reported plan shows the decision actually taken.
func (d *Domains) arcConsistency(gp, gt *graph.Graph, rows *graph.BitGraph, maxPasses int, adaptive, induced bool, st *ComputeStats) {
	np := gp.NumNodes()
	start := time.Now()
	defer func() {
		st.ACTime = time.Since(start) - st.InducedACTime
	}()
	// Under the bitset kernel with per-label rows, the support test
	// "some labeled neighbor of v_t lies in D(w_p)" is one word-parallel
	// intersection against the (direction, label) row. The row slices
	// are hoisted per pattern node so the candidate loop does no map
	// lookups; a nil slice means the label has no target edge at all.
	labelRows := rows != nil && rows.HasLabelRows()
	var outRows, inRows [][]*bitset.Set
	for pass := 0; maxPasses == 0 || pass < maxPasses; pass++ {
		changed := false
		for vp := int32(0); vp < int32(np); vp++ {
			dom := d.sets[vp]
			if dom.Empty() {
				continue
			}
			outP := gp.OutNeighbors(vp)
			outL := gp.OutEdgeLabels(vp)
			inP := gp.InNeighbors(vp)
			inL := gp.InEdgeLabels(vp)
			if labelRows {
				outRows = outRows[:0]
				for _, l := range outL {
					outRows = append(outRows, rows.OutLab[l])
				}
				inRows = inRows[:0]
				for _, l := range inL {
					inRows = append(inRows, rows.InLab[l])
				}
			}

			var drop []int
			dom.ForEach(func(vti int) bool {
				vt := int32(vti)
				for i, wp := range outP {
					if wp == vp {
						continue // self-loops are a unary constraint
					}
					if labelRows {
						if r := outRows[i]; r == nil || !d.sets[wp].Intersects(r[vt]) {
							drop = append(drop, vti)
							return true
						}
						continue
					}
					if rows != nil && !rows.Out[vt].Intersects(d.sets[wp]) {
						// Direction-row prefilter: no out-neighbor of
						// v_t lies in the domain under any label.
						drop = append(drop, vti)
						return true
					}
					if !hasSupport(gt.OutNeighbors(vt), gt.OutEdgeLabels(vt), outL[i], d.sets[wp]) {
						drop = append(drop, vti)
						return true
					}
				}
				for i, wp := range inP {
					if wp == vp {
						continue
					}
					if labelRows {
						if r := inRows[i]; r == nil || !d.sets[wp].Intersects(r[vt]) {
							drop = append(drop, vti)
							return true
						}
						continue
					}
					if rows != nil && !rows.In[vt].Intersects(d.sets[wp]) {
						drop = append(drop, vti)
						return true
					}
					if !hasSupport(gt.InNeighbors(vt), gt.InEdgeLabels(vt), inL[i], d.sets[wp]) {
						drop = append(drop, vti)
						return true
					}
				}
				return true
			})
			for _, vti := range drop {
				dom.Clear(vti)
				changed = true
			}
		}
		if induced {
			ipStart := time.Now()
			ipChanged := d.inducedPass(gp, gt, rows)
			st.InducedACTime += time.Since(ipStart)
			if ipChanged {
				changed = true
			}
		}
		if pass == 0 {
			st.AfterPass1 = d.TotalSize()
			if adaptive && changed && np > 0 &&
				float64(st.AfterPass1) >= acEscalateMeanDomain*float64(np) {
				// The one-pass prediction was wrong for this query:
				// the sweep is still pruning and the domains it left
				// behind are large, so further sweeps have real work.
				// Lift the cap and iterate to fixpoint.
				maxPasses = 0
				st.Plan.ACPasses = 0
			}
		}
		if !changed {
			return
		}
	}
}

// inducedPass propagates the non-edge constraints of induced matching:
// for an ordered pattern pair (v_p, w_p) with a missing edge in either
// direction, a valid induced embedding maps w_p to some w_t ∈ D(w_p)
// distinct from v_t (induced matching is injective) whose corresponding
// target edges are missing too. A candidate v_t with no such support in
// D(w_p) is removed.
//
// The support test is O(1) in the common case by pigeonhole: at most
// OutDegree(v_t) target nodes have an edge from v_t, at most
// InDegree(v_t) an edge to v_t, plus v_t itself — a domain larger than
// that necessarily contains a support, so only small domains are
// scanned. It returns whether any domain changed.
func (d *Domains) inducedPass(gp, gt *graph.Graph, rows *graph.BitGraph) bool {
	np := gp.NumNodes()
	changed := false
	for vp := int32(0); vp < int32(np); vp++ {
		dom := d.sets[vp]
		if dom.Empty() {
			continue
		}
		for wp := int32(0); wp < int32(np); wp++ {
			if wp == vp {
				continue // the self pair is the unary self-loop filter
			}
			needOut := !gp.HasEdge(vp, wp) // pattern non-edge vp→wp
			needIn := !gp.HasEdge(wp, vp)  // pattern non-edge wp→vp
			if !needOut && !needIn {
				continue
			}
			domW := d.sets[wp]
			sizeW := domW.Count()
			var drop []int
			dom.ForEach(func(vti int) bool {
				vt := int32(vti)
				bound := 1 // v_t itself is never a valid image of w_p
				if needOut {
					bound += gt.OutDegree(vt)
				}
				if needIn {
					bound += gt.InDegree(vt)
				}
				if sizeW > bound {
					return true // pigeonhole: a non-adjacent support exists
				}
				if rows != nil {
					// Bitset kernel: "some w_t ∈ D(w_p) \ {v_t} avoids
					// v_t's out/in rows" is one word-parallel pass.
					var a, b *bitset.Set
					if needOut {
						a = rows.Out[vt]
					}
					if needIn {
						b = rows.In[vt]
					}
					if !domW.ExistsOutside(a, b, vti) {
						drop = append(drop, vti)
					}
					return true
				}
				supported := false
				domW.ForEach(func(wti int) bool {
					wt := int32(wti)
					if wt == vt {
						return true
					}
					if needOut && gt.HasEdge(vt, wt) {
						return true
					}
					if needIn && gt.HasEdge(wt, vt) {
						return true
					}
					supported = true
					return false
				})
				if !supported {
					drop = append(drop, vti)
				}
				return true
			})
			for _, vti := range drop {
				dom.Clear(vti)
				changed = true
			}
		}
	}
	return changed
}

// hasSupport reports whether some neighbor w_t (with matching edge label)
// lies in the domain of the pattern neighbor.
func hasSupport(adj []int32, labs []graph.Label, want graph.Label, dom *bitset.Set) bool {
	for i, wt := range adj {
		if labs[i] == want && dom.Test(int(wt)) {
			return true
		}
	}
	return false
}

// Of returns the domain of pattern node vp. The set is shared, not a
// copy; the search engines only read it.
func (d *Domains) Of(vp int32) *bitset.Set { return d.sets[vp] }

// NumPattern returns the number of pattern nodes covered.
func (d *Domains) NumPattern() int { return len(d.sets) }

// Sizes returns the cardinality of each domain, used by the SI ordering
// tie-break and by the singleton hoisting rule.
func (d *Domains) Sizes() []int {
	out := make([]int, len(d.sets))
	for i, s := range d.sets {
		out[i] = s.Count()
	}
	return out
}

// AnyEmpty reports whether some domain is empty, in which case no
// isomorphic subgraph exists and the search can be skipped entirely.
func (d *Domains) AnyEmpty() bool {
	for _, s := range d.sets {
		if s.Empty() {
			return true
		}
	}
	return false
}

// ForwardCheck applies the paper's §4.2.2 improvement in place: for each
// pattern node with a singleton domain, its unique target node is removed
// from every other domain (the injectivity constraint is propagated ahead
// of the search). Newly created singletons are processed transitively.
// It propagates injectivity, so callers must not invoke it for
// non-injective semantics (graph.Homomorphism) — ri.Prepare gates on
// Semantics.Injective().
//
// It returns false when the instance is proven unsatisfiable: a domain
// ran empty, or two pattern nodes are both pinned to the same target.
func (d *Domains) ForwardCheck() bool {
	np := len(d.sets)
	processed := make([]bool, np)
	queue := make([]int, 0, np)
	for vp, s := range d.sets {
		if s.Count() == 1 {
			queue = append(queue, vp)
		}
	}
	for len(queue) > 0 {
		vp := queue[0]
		queue = queue[1:]
		if processed[vp] {
			continue
		}
		processed[vp] = true
		s := d.sets[vp]
		vt := s.First()
		if vt < 0 {
			return false // ran empty while queued
		}
		for wp, o := range d.sets {
			if wp == vp || !o.Test(vt) {
				continue
			}
			if processed[wp] && o.Count() == 1 {
				// Two pattern nodes pinned to the same target.
				return false
			}
			o.Clear(vt)
			switch o.Count() {
			case 0:
				return false
			case 1:
				queue = append(queue, wp)
			}
		}
	}
	return true
}

// Clone deep-copies the domains; the parallel engine gives each worker a
// read-only shared copy, but tests use Clone to compare variants.
func (d *Domains) Clone() *Domains {
	c := &Domains{sets: make([]*bitset.Set, len(d.sets)), nt: d.nt}
	for i, s := range d.sets {
		c.sets[i] = s.Clone()
	}
	return c
}

// TotalSize returns the sum of domain cardinalities — a scalar measure of
// search-space tightness used by tests and the experiment harness.
func (d *Domains) TotalSize() int {
	t := 0
	for _, s := range d.sets {
		t += s.Count()
	}
	return t
}

// LogProduct returns log2 of the product of domain cardinalities — the
// staged upper bound on the number of candidate assignments the search
// could enumerate — summed in log space so huge products don't overflow.
// Empty domains are skipped in the sum; the second return reports
// whether any domain was empty (the instance is then unsatisfiable and
// the bound is moot).
func (d *Domains) LogProduct() (float64, bool) {
	var sum float64
	empty := false
	for _, s := range d.sets {
		c := s.Count()
		if c == 0 {
			empty = true
			continue
		}
		sum += math.Log2(float64(c))
	}
	return sum, empty
}

// String summarizes domain sizes for debugging.
func (d *Domains) String() string {
	return fmt.Sprintf("Domains(pattern=%d, sizes=%v)", len(d.sets), d.Sizes())
}
