// Package domain implements RI-DS domain assignment (Kimmig et al. §4.1)
// and the paper's forward-checking improvement (§4.2.2).
//
// A domain D(v_p) is the set of target nodes that pattern node v_p may
// map to. Domains start from label equivalence and degree bounds, are
// pruned by arc consistency over the pattern edges, and — in the
// RI-DS-SI-FC variant — further reduced by forward checking: every
// pattern node with a singleton domain will definitely be assigned its
// unique target node, so that target is removed from every other domain,
// cascading over newly created singletons.
//
// Domains are represented as bitmasks over the target vertex set, exactly
// as in the original RI implementation ("In RI, domains are implemented
// as bitmasks, which we use to quickly remove singleton domains' contents
// from all other domains").
package domain

import (
	"fmt"

	"parsge/internal/bitset"
	"parsge/internal/graph"
)

// Domains holds one candidate set per pattern node over target node ids.
type Domains struct {
	sets []*bitset.Set
	nt   int
}

// Index is precomputed target-side state reusable across queries against
// the same target graph: nodes bucketed by label, in ascending node-id
// order. Building it once per target and sharing it between Compute calls
// turns the initial domain filter from a scan over all target nodes into
// a scan over the label's bucket only. An Index is immutable after
// NewIndex and safe for concurrent use.
type Index struct {
	byLabel map[graph.Label][]int32
	nt      int
}

// NewIndex buckets the target's nodes by label.
func NewIndex(gt *graph.Graph) *Index {
	ix := &Index{byLabel: make(map[graph.Label][]int32), nt: gt.NumNodes()}
	for vt := int32(0); vt < int32(gt.NumNodes()); vt++ {
		l := gt.NodeLabel(vt)
		ix.byLabel[l] = append(ix.byLabel[l], vt)
	}
	return ix
}

// Nodes returns the target nodes carrying label l, ascending by id. The
// slice is shared — callers must not modify it.
func (ix *Index) Nodes(l graph.Label) []int32 { return ix.byLabel[l] }

// NumNodes returns the node count of the indexed target, used to verify
// an Index belongs to the graph a query runs against.
func (ix *Index) NumNodes() int { return ix.nt }

// NumLabels returns the number of distinct node labels in the target.
func (ix *Index) NumLabels() int { return len(ix.byLabel) }

// Options configures domain computation.
type Options struct {
	// ACPasses bounds the number of arc-consistency sweeps: 0 means
	// iterate to fixpoint, n > 0 caps at n sweeps. A single sweep is
	// what the original RI-DS description performs; the fixpoint is
	// never weaker. The ablation bench compares the two.
	ACPasses int
	// SkipAC disables arc consistency entirely, leaving only the
	// label/degree filter. Used by ablation benchmarks.
	SkipAC bool
	// Index, when non-nil and built for the same target, restricts the
	// initial label/degree filter to each label's bucket instead of
	// scanning every target node. Results are identical either way.
	Index *Index
	// Semantics adjusts the filters to the matching semantics: under
	// graph.Homomorphism the degree bounds are dropped (several pattern
	// edges may collapse onto one target edge, so "image degree ≥
	// pattern degree" would wrongly prune valid images). Arc consistency
	// is sound for every semantics — it only requires each pattern edge
	// to have some compatible target edge. The zero value is the paper's
	// non-induced subgraph isomorphism.
	Semantics graph.Semantics
}

// Compute builds the domains of pattern gp against target gt.
func Compute(gp, gt *graph.Graph, opts Options) *Domains {
	np, nt := gp.NumNodes(), gt.NumNodes()
	d := &Domains{sets: make([]*bitset.Set, np), nt: nt}

	// Initial filter: equivalent labels and sufficient in/out degrees
	// ("all nodes with in- and outdegree at least that of v_p's, and
	// with labels that match v_p's", §4.1). With a label Index only the
	// matching bucket is scanned; the label test is then implicit.
	ix := opts.Index
	if ix != nil && ix.nt != nt {
		ix = nil // index built for a different target: ignore
	}
	for vp := int32(0); vp < int32(np); vp++ {
		s := bitset.New(nt)
		lab := gp.NodeLabel(vp)
		din, dout := gp.InDegree(vp), gp.OutDegree(vp)
		if !opts.Semantics.DegreePruning() {
			din, dout = 0, 0
		}
		if ix != nil {
			for _, vt := range ix.Nodes(lab) {
				if gt.InDegree(vt) >= din && gt.OutDegree(vt) >= dout {
					s.Set(int(vt))
				}
			}
		} else {
			for vt := int32(0); vt < int32(nt); vt++ {
				if gt.NodeLabel(vt) == lab && gt.InDegree(vt) >= din && gt.OutDegree(vt) >= dout {
					s.Set(int(vt))
				}
			}
		}
		d.sets[vp] = s
	}

	if !opts.SkipAC {
		d.arcConsistency(gp, gt, opts.ACPasses)
	}
	return d
}

// arcConsistency removes v_t from D(v_p) whenever some pattern edge at
// v_p has no compatible counterpart at v_t (§4.1): for every edge
// (v_p, w_p) there must be an edge-label-compatible w_t ∈ D(w_p) with
// (v_t, w_t) ∈ E(G_t), and symmetrically for incoming edges.
func (d *Domains) arcConsistency(gp, gt *graph.Graph, maxPasses int) {
	np := gp.NumNodes()
	for pass := 0; maxPasses == 0 || pass < maxPasses; pass++ {
		changed := false
		for vp := int32(0); vp < int32(np); vp++ {
			dom := d.sets[vp]
			if dom.Empty() {
				continue
			}
			outP := gp.OutNeighbors(vp)
			outL := gp.OutEdgeLabels(vp)
			inP := gp.InNeighbors(vp)
			inL := gp.InEdgeLabels(vp)

			var drop []int
			dom.ForEach(func(vti int) bool {
				vt := int32(vti)
				for i, wp := range outP {
					if !hasSupport(gt.OutNeighbors(vt), gt.OutEdgeLabels(vt), outL[i], d.sets[wp]) {
						drop = append(drop, vti)
						return true
					}
				}
				for i, wp := range inP {
					if !hasSupport(gt.InNeighbors(vt), gt.InEdgeLabels(vt), inL[i], d.sets[wp]) {
						drop = append(drop, vti)
						return true
					}
				}
				return true
			})
			for _, vti := range drop {
				dom.Clear(vti)
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// hasSupport reports whether some neighbor w_t (with matching edge label)
// lies in the domain of the pattern neighbor.
func hasSupport(adj []int32, labs []graph.Label, want graph.Label, dom *bitset.Set) bool {
	for i, wt := range adj {
		if labs[i] == want && dom.Test(int(wt)) {
			return true
		}
	}
	return false
}

// Of returns the domain of pattern node vp. The set is shared, not a
// copy; the search engines only read it.
func (d *Domains) Of(vp int32) *bitset.Set { return d.sets[vp] }

// NumPattern returns the number of pattern nodes covered.
func (d *Domains) NumPattern() int { return len(d.sets) }

// Sizes returns the cardinality of each domain, used by the SI ordering
// tie-break and by the singleton hoisting rule.
func (d *Domains) Sizes() []int {
	out := make([]int, len(d.sets))
	for i, s := range d.sets {
		out[i] = s.Count()
	}
	return out
}

// AnyEmpty reports whether some domain is empty, in which case no
// isomorphic subgraph exists and the search can be skipped entirely.
func (d *Domains) AnyEmpty() bool {
	for _, s := range d.sets {
		if s.Empty() {
			return true
		}
	}
	return false
}

// ForwardCheck applies the paper's §4.2.2 improvement in place: for each
// pattern node with a singleton domain, its unique target node is removed
// from every other domain (the injectivity constraint is propagated ahead
// of the search). Newly created singletons are processed transitively.
// It propagates injectivity, so callers must not invoke it for
// non-injective semantics (graph.Homomorphism) — ri.Prepare gates on
// Semantics.Injective().
//
// It returns false when the instance is proven unsatisfiable: a domain
// ran empty, or two pattern nodes are both pinned to the same target.
func (d *Domains) ForwardCheck() bool {
	np := len(d.sets)
	processed := make([]bool, np)
	queue := make([]int, 0, np)
	for vp, s := range d.sets {
		if s.Count() == 1 {
			queue = append(queue, vp)
		}
	}
	for len(queue) > 0 {
		vp := queue[0]
		queue = queue[1:]
		if processed[vp] {
			continue
		}
		processed[vp] = true
		s := d.sets[vp]
		vt := s.First()
		if vt < 0 {
			return false // ran empty while queued
		}
		for wp, o := range d.sets {
			if wp == vp || !o.Test(vt) {
				continue
			}
			if processed[wp] && o.Count() == 1 {
				// Two pattern nodes pinned to the same target.
				return false
			}
			o.Clear(vt)
			switch o.Count() {
			case 0:
				return false
			case 1:
				queue = append(queue, wp)
			}
		}
	}
	return true
}

// Clone deep-copies the domains; the parallel engine gives each worker a
// read-only shared copy, but tests use Clone to compare variants.
func (d *Domains) Clone() *Domains {
	c := &Domains{sets: make([]*bitset.Set, len(d.sets)), nt: d.nt}
	for i, s := range d.sets {
		c.sets[i] = s.Clone()
	}
	return c
}

// TotalSize returns the sum of domain cardinalities — a scalar measure of
// search-space tightness used by tests and the experiment harness.
func (d *Domains) TotalSize() int {
	t := 0
	for _, s := range d.sets {
		t += s.Count()
	}
	return t
}

// String summarizes domain sizes for debugging.
func (d *Domains) String() string {
	return fmt.Sprintf("Domains(pattern=%d, sizes=%v)", len(d.sets), d.Sizes())
}
