package domain

import (
	"math/rand"
	"testing"
	"testing/quick"

	"parsge/internal/graph"
)

// buildGraph constructs a graph from labels and directed edges.
func buildGraph(labels []graph.Label, edges [][3]int32) *graph.Graph {
	b := &graph.Builder{}
	for _, l := range labels {
		b.AddNode(l)
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1], graph.Label(e[2]))
	}
	return b.MustBuild()
}

func TestInitialLabelFilter(t *testing.T) {
	gp := buildGraph([]graph.Label{1}, nil)
	gt := buildGraph([]graph.Label{1, 2, 1}, nil)
	d := Compute(gp, gt, Options{})
	dom := d.Of(0)
	if !dom.Test(0) || dom.Test(1) || !dom.Test(2) {
		t.Fatalf("label filter wrong: %v", dom)
	}
}

func TestInitialDegreeFilter(t *testing.T) {
	// Pattern node has outdegree 1; target node 1 has outdegree 0.
	gp := buildGraph([]graph.Label{0, 0}, [][3]int32{{0, 1, 0}})
	gt := buildGraph([]graph.Label{0, 0, 0}, [][3]int32{{0, 1, 0}, {2, 0, 0}})
	d := Compute(gp, gt, Options{SkipAC: true})
	if d.Of(0).Test(1) {
		t.Error("node with outdegree 0 should not be candidate for pattern node with outdegree 1")
	}
	if !d.Of(0).Test(0) || !d.Of(0).Test(2) {
		t.Errorf("degree filter too strict: %v", d.Of(0))
	}
	// Pattern node 1 needs indegree >= 1: only target nodes 0 and 1 qualify.
	if d.Of(1).Test(2) {
		t.Error("node with indegree 0 kept for pattern node with indegree 1")
	}
}

func TestArcConsistencyPrunes(t *testing.T) {
	// Pattern: A→B. Target: A→B, plus an isolated A-labeled node with a
	// high-degree padding so the degree filter alone keeps it.
	gp := buildGraph([]graph.Label{1, 2}, [][3]int32{{0, 1, 0}})
	gt := buildGraph(
		[]graph.Label{1, 2, 1, 3},
		[][3]int32{{0, 1, 0}, {2, 3, 0}}, // node 2 is A but points at label 3
	)
	d := Compute(gp, gt, Options{})
	if d.Of(0).Test(2) {
		t.Error("AC should drop target 2: its only out-neighbor has wrong label")
	}
	if !d.Of(0).Test(0) {
		t.Error("AC dropped the valid candidate")
	}
}

func TestArcConsistencyEdgeLabels(t *testing.T) {
	// Pattern edge labeled 7; target has same structure but label 8.
	gp := buildGraph([]graph.Label{0, 0}, [][3]int32{{0, 1, 7}})
	gt := buildGraph([]graph.Label{0, 0}, [][3]int32{{0, 1, 8}})
	d := Compute(gp, gt, Options{})
	if !d.AnyEmpty() {
		t.Fatalf("edge-label mismatch should empty a domain: %v", d)
	}
}

func TestArcConsistencyFixpointStrongerThanOnePass(t *testing.T) {
	// Chain pattern a→b→c vs target chain that breaks only at the far
	// end; a single pass starting from the front may keep candidates a
	// fixpoint removes. Construct: pattern 0→1→2 (labels x,x,y). Target:
	// 0→1→2 with labels x,x,z (no y at the end).
	gp := buildGraph([]graph.Label{1, 1, 2}, [][3]int32{{0, 1, 0}, {1, 2, 0}})
	gt := buildGraph([]graph.Label{1, 1, 3}, [][3]int32{{0, 1, 0}, {1, 2, 0}})
	fix := Compute(gp, gt, Options{})
	if !fix.AnyEmpty() {
		t.Fatalf("fixpoint AC should prove unsatisfiable: %v", fix)
	}
	one := Compute(gp, gt, Options{ACPasses: 1})
	// One pass is allowed to be weaker, but never stronger.
	for vp := int32(0); vp < 3; vp++ {
		if !fix.Of(vp).Subset(one.Of(vp)) {
			t.Error("fixpoint domains must be subsets of single-pass domains")
		}
	}
}

func TestForwardCheckRemovesSingletonTargets(t *testing.T) {
	// Pattern: two isolated nodes, labels A and A. Target: nodes A, A.
	// Manually shrink one domain to a singleton and check propagation.
	gp := buildGraph([]graph.Label{1, 1}, nil)
	gt := buildGraph([]graph.Label{1, 1}, nil)
	d := Compute(gp, gt, Options{})
	d.Of(0).Clear(1) // pin pattern 0 to target 0
	if !d.ForwardCheck() {
		t.Fatal("satisfiable instance reported unsat")
	}
	if d.Of(1).Test(0) {
		t.Error("forward checking did not remove pinned target from other domain")
	}
	if d.Of(1).Count() != 1 || d.Of(1).First() != 1 {
		t.Errorf("domain of node 1 = %v, want {1}", d.Of(1))
	}
}

func TestForwardCheckCascades(t *testing.T) {
	// Three pattern nodes, three targets; pin 0→0, which must cascade:
	// after removing 0 everywhere, suppose D(1)={0,1}: becomes {1},
	// singleton; then D(2)={0,1,2} loses 0 and 1 → {2}.
	gp := buildGraph([]graph.Label{1, 1, 1}, nil)
	gt := buildGraph([]graph.Label{1, 1, 1}, nil)
	d := Compute(gp, gt, Options{})
	d.Of(0).Clear(1)
	d.Of(0).Clear(2) // D(0)={0}
	d.Of(1).Clear(2) // D(1)={0,1}
	if !d.ForwardCheck() {
		t.Fatal("satisfiable instance reported unsat")
	}
	if d.Of(1).Count() != 1 || d.Of(1).First() != 1 {
		t.Errorf("D(1) = %v, want {1}", d.Of(1))
	}
	if d.Of(2).Count() != 1 || d.Of(2).First() != 2 {
		t.Errorf("D(2) = %v, want {2}", d.Of(2))
	}
}

func TestForwardCheckDetectsConflict(t *testing.T) {
	// Two pattern nodes pinned to the same single target.
	gp := buildGraph([]graph.Label{1, 1}, nil)
	gt := buildGraph([]graph.Label{1}, nil)
	d := Compute(gp, gt, Options{})
	if d.ForwardCheck() {
		t.Fatal("two nodes pinned to one target should be unsatisfiable")
	}
}

func TestForwardCheckEmptyDomain(t *testing.T) {
	gp := buildGraph([]graph.Label{1}, nil)
	gt := buildGraph([]graph.Label{2}, nil)
	d := Compute(gp, gt, Options{})
	if !d.AnyEmpty() {
		t.Fatal("expected empty domain")
	}
}

func TestSizesAndTotal(t *testing.T) {
	gp := buildGraph([]graph.Label{0, 0}, nil)
	gt := buildGraph([]graph.Label{0, 0, 0}, nil)
	d := Compute(gp, gt, Options{})
	sizes := d.Sizes()
	if len(sizes) != 2 || sizes[0] != 3 || sizes[1] != 3 {
		t.Errorf("Sizes = %v", sizes)
	}
	if d.TotalSize() != 6 {
		t.Errorf("TotalSize = %d", d.TotalSize())
	}
	if d.NumPattern() != 2 {
		t.Errorf("NumPattern = %d", d.NumPattern())
	}
}

func TestClone(t *testing.T) {
	gp := buildGraph([]graph.Label{0}, nil)
	gt := buildGraph([]graph.Label{0, 0}, nil)
	d := Compute(gp, gt, Options{})
	c := d.Clone()
	c.Of(0).Clear(0)
	if !d.Of(0).Test(0) {
		t.Fatal("Clone aliases original")
	}
}

// randomInstance builds a random labeled pattern/target pair where the
// pattern is an actual subgraph of the target, so at least one match
// exists and domains must stay nonempty around it.
func randomInstance(seed int64) (gp, gt *graph.Graph, embed []int32) {
	rng := rand.New(rand.NewSource(seed))
	nt := 8 + rng.Intn(10)
	bt := &graph.Builder{}
	for i := 0; i < nt; i++ {
		bt.AddNode(graph.Label(rng.Intn(3)))
	}
	for i := 0; i < nt*3; i++ {
		u, v := int32(rng.Intn(nt)), int32(rng.Intn(nt))
		if u != v {
			bt.AddEdge(u, v, graph.Label(rng.Intn(2)))
		}
	}
	gt = bt.MustBuild()

	np := 2 + rng.Intn(4)
	perm := rng.Perm(nt)[:np]
	embed = make([]int32, np)
	for i, p := range perm {
		embed[i] = int32(p)
	}
	bp := &graph.Builder{}
	for _, tv := range embed {
		bp.AddNode(gt.NodeLabel(tv))
	}
	for i := 0; i < np; i++ {
		for j := 0; j < np; j++ {
			if i == j {
				continue
			}
			if l, ok := gt.EdgeLabel(embed[i], embed[j]); ok && rng.Intn(2) == 0 {
				bp.AddEdge(int32(i), int32(j), l)
			}
		}
	}
	gp = bp.MustBuild()
	return gp, gt, embed
}

// TestQuickDomainsSound: domains never exclude the known embedding; this
// is the soundness property that guarantees RI-DS variants enumerate the
// same matches as RI.
func TestQuickDomainsSound(t *testing.T) {
	f := func(seed int64) bool {
		gp, gt, embed := randomInstance(seed)
		d := Compute(gp, gt, Options{})
		for vp, vt := range embed {
			if !d.Of(int32(vp)).Test(int(vt)) {
				return false
			}
		}
		// Forward checking must also preserve the embedding unless it
		// proves unsat — and it cannot, since an embedding exists.
		if !d.ForwardCheck() {
			return false
		}
		for vp, vt := range embed {
			if !d.Of(int32(vp)).Test(int(vt)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickACMonotone: more AC passes can only shrink domains.
func TestQuickACMonotone(t *testing.T) {
	f := func(seed int64) bool {
		gp, gt, _ := randomInstance(seed)
		one := Compute(gp, gt, Options{ACPasses: 1})
		two := Compute(gp, gt, Options{ACPasses: 2})
		fix := Compute(gp, gt, Options{})
		for vp := int32(0); vp < int32(gp.NumNodes()); vp++ {
			if !two.Of(vp).Subset(one.Of(vp)) || !fix.Of(vp).Subset(two.Of(vp)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompute(b *testing.B) {
	gp, gt, _ := randomInstance(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Compute(gp, gt, Options{})
	}
}
