package domain

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"parsge/internal/datasets"
	"parsge/internal/graph"
)

// buildGraph constructs a graph from labels and directed edges.
func buildGraph(labels []graph.Label, edges [][3]int32) *graph.Graph {
	b := &graph.Builder{}
	for _, l := range labels {
		b.AddNode(l)
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1], graph.Label(e[2]))
	}
	return b.MustBuild()
}

func TestInitialLabelFilter(t *testing.T) {
	gp := buildGraph([]graph.Label{1}, nil)
	gt := buildGraph([]graph.Label{1, 2, 1}, nil)
	d := Compute(gp, gt, Options{})
	dom := d.Of(0)
	if !dom.Test(0) || dom.Test(1) || !dom.Test(2) {
		t.Fatalf("label filter wrong: %v", dom)
	}
}

func TestInitialDegreeFilter(t *testing.T) {
	// Pattern node has outdegree 1; target node 1 has outdegree 0.
	gp := buildGraph([]graph.Label{0, 0}, [][3]int32{{0, 1, 0}})
	gt := buildGraph([]graph.Label{0, 0, 0}, [][3]int32{{0, 1, 0}, {2, 0, 0}})
	d := Compute(gp, gt, Options{SkipAC: true})
	if d.Of(0).Test(1) {
		t.Error("node with outdegree 0 should not be candidate for pattern node with outdegree 1")
	}
	if !d.Of(0).Test(0) || !d.Of(0).Test(2) {
		t.Errorf("degree filter too strict: %v", d.Of(0))
	}
	// Pattern node 1 needs indegree >= 1: only target nodes 0 and 1 qualify.
	if d.Of(1).Test(2) {
		t.Error("node with indegree 0 kept for pattern node with indegree 1")
	}
}

func TestArcConsistencyPrunes(t *testing.T) {
	// Pattern: A→B. Target: A→B, plus an isolated A-labeled node with a
	// high-degree padding so the degree filter alone keeps it.
	gp := buildGraph([]graph.Label{1, 2}, [][3]int32{{0, 1, 0}})
	gt := buildGraph(
		[]graph.Label{1, 2, 1, 3},
		[][3]int32{{0, 1, 0}, {2, 3, 0}}, // node 2 is A but points at label 3
	)
	d := Compute(gp, gt, Options{})
	if d.Of(0).Test(2) {
		t.Error("AC should drop target 2: its only out-neighbor has wrong label")
	}
	if !d.Of(0).Test(0) {
		t.Error("AC dropped the valid candidate")
	}
}

func TestArcConsistencyEdgeLabels(t *testing.T) {
	// Pattern edge labeled 7; target has same structure but label 8.
	gp := buildGraph([]graph.Label{0, 0}, [][3]int32{{0, 1, 7}})
	gt := buildGraph([]graph.Label{0, 0}, [][3]int32{{0, 1, 8}})
	d := Compute(gp, gt, Options{})
	if !d.AnyEmpty() {
		t.Fatalf("edge-label mismatch should empty a domain: %v", d)
	}
}

func TestArcConsistencyFixpointStrongerThanOnePass(t *testing.T) {
	// Chain pattern a→b→c vs target chain that breaks only at the far
	// end; a single pass starting from the front may keep candidates a
	// fixpoint removes. Construct: pattern 0→1→2 (labels x,x,y). Target:
	// 0→1→2 with labels x,x,z (no y at the end).
	gp := buildGraph([]graph.Label{1, 1, 2}, [][3]int32{{0, 1, 0}, {1, 2, 0}})
	gt := buildGraph([]graph.Label{1, 1, 3}, [][3]int32{{0, 1, 0}, {1, 2, 0}})
	fix := Compute(gp, gt, Options{})
	if !fix.AnyEmpty() {
		t.Fatalf("fixpoint AC should prove unsatisfiable: %v", fix)
	}
	one := Compute(gp, gt, Options{ACPasses: 1})
	// One pass is allowed to be weaker, but never stronger.
	for vp := int32(0); vp < 3; vp++ {
		if !fix.Of(vp).Subset(one.Of(vp)) {
			t.Error("fixpoint domains must be subsets of single-pass domains")
		}
	}
}

func TestForwardCheckRemovesSingletonTargets(t *testing.T) {
	// Pattern: two isolated nodes, labels A and A. Target: nodes A, A.
	// Manually shrink one domain to a singleton and check propagation.
	gp := buildGraph([]graph.Label{1, 1}, nil)
	gt := buildGraph([]graph.Label{1, 1}, nil)
	d := Compute(gp, gt, Options{})
	d.Of(0).Clear(1) // pin pattern 0 to target 0
	if !d.ForwardCheck() {
		t.Fatal("satisfiable instance reported unsat")
	}
	if d.Of(1).Test(0) {
		t.Error("forward checking did not remove pinned target from other domain")
	}
	if d.Of(1).Count() != 1 || d.Of(1).First() != 1 {
		t.Errorf("domain of node 1 = %v, want {1}", d.Of(1))
	}
}

func TestForwardCheckCascades(t *testing.T) {
	// Three pattern nodes, three targets; pin 0→0, which must cascade:
	// after removing 0 everywhere, suppose D(1)={0,1}: becomes {1},
	// singleton; then D(2)={0,1,2} loses 0 and 1 → {2}.
	gp := buildGraph([]graph.Label{1, 1, 1}, nil)
	gt := buildGraph([]graph.Label{1, 1, 1}, nil)
	d := Compute(gp, gt, Options{})
	d.Of(0).Clear(1)
	d.Of(0).Clear(2) // D(0)={0}
	d.Of(1).Clear(2) // D(1)={0,1}
	if !d.ForwardCheck() {
		t.Fatal("satisfiable instance reported unsat")
	}
	if d.Of(1).Count() != 1 || d.Of(1).First() != 1 {
		t.Errorf("D(1) = %v, want {1}", d.Of(1))
	}
	if d.Of(2).Count() != 1 || d.Of(2).First() != 2 {
		t.Errorf("D(2) = %v, want {2}", d.Of(2))
	}
}

func TestForwardCheckDetectsConflict(t *testing.T) {
	// Two pattern nodes pinned to the same single target.
	gp := buildGraph([]graph.Label{1, 1}, nil)
	gt := buildGraph([]graph.Label{1}, nil)
	d := Compute(gp, gt, Options{})
	if d.ForwardCheck() {
		t.Fatal("two nodes pinned to one target should be unsatisfiable")
	}
}

func TestForwardCheckEmptyDomain(t *testing.T) {
	gp := buildGraph([]graph.Label{1}, nil)
	gt := buildGraph([]graph.Label{2}, nil)
	d := Compute(gp, gt, Options{})
	if !d.AnyEmpty() {
		t.Fatal("expected empty domain")
	}
}

func TestSizesAndTotal(t *testing.T) {
	gp := buildGraph([]graph.Label{0, 0}, nil)
	gt := buildGraph([]graph.Label{0, 0, 0}, nil)
	d := Compute(gp, gt, Options{})
	sizes := d.Sizes()
	if len(sizes) != 2 || sizes[0] != 3 || sizes[1] != 3 {
		t.Errorf("Sizes = %v", sizes)
	}
	if d.TotalSize() != 6 {
		t.Errorf("TotalSize = %d", d.TotalSize())
	}
	if d.NumPattern() != 2 {
		t.Errorf("NumPattern = %d", d.NumPattern())
	}
}

func TestClone(t *testing.T) {
	gp := buildGraph([]graph.Label{0}, nil)
	gt := buildGraph([]graph.Label{0, 0}, nil)
	d := Compute(gp, gt, Options{})
	c := d.Clone()
	c.Of(0).Clear(0)
	if !d.Of(0).Test(0) {
		t.Fatal("Clone aliases original")
	}
}

// randomInstance builds a random labeled pattern/target pair where the
// pattern is an actual subgraph of the target, so at least one match
// exists and domains must stay nonempty around it.
func randomInstance(seed int64) (gp, gt *graph.Graph, embed []int32) {
	rng := rand.New(rand.NewSource(seed))
	nt := 8 + rng.Intn(10)
	bt := &graph.Builder{}
	for i := 0; i < nt; i++ {
		bt.AddNode(graph.Label(rng.Intn(3)))
	}
	for i := 0; i < nt*3; i++ {
		u, v := int32(rng.Intn(nt)), int32(rng.Intn(nt))
		if u != v {
			bt.AddEdge(u, v, graph.Label(rng.Intn(2)))
		}
	}
	gt = bt.MustBuild()

	np := 2 + rng.Intn(4)
	perm := rng.Perm(nt)[:np]
	embed = make([]int32, np)
	for i, p := range perm {
		embed[i] = int32(p)
	}
	bp := &graph.Builder{}
	for _, tv := range embed {
		bp.AddNode(gt.NodeLabel(tv))
	}
	for i := 0; i < np; i++ {
		for j := 0; j < np; j++ {
			if i == j {
				continue
			}
			if l, ok := gt.EdgeLabel(embed[i], embed[j]); ok && rng.Intn(2) == 0 {
				bp.AddEdge(int32(i), int32(j), l)
			}
		}
	}
	gp = bp.MustBuild()
	return gp, gt, embed
}

// TestQuickDomainsSound: domains never exclude the known embedding; this
// is the soundness property that guarantees RI-DS variants enumerate the
// same matches as RI.
func TestQuickDomainsSound(t *testing.T) {
	f := func(seed int64) bool {
		gp, gt, embed := randomInstance(seed)
		d := Compute(gp, gt, Options{})
		for vp, vt := range embed {
			if !d.Of(int32(vp)).Test(int(vt)) {
				return false
			}
		}
		// Forward checking must also preserve the embedding unless it
		// proves unsat — and it cannot, since an embedding exists.
		if !d.ForwardCheck() {
			return false
		}
		for vp, vt := range embed {
			if !d.Of(int32(vp)).Test(int(vt)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickACMonotone: more AC passes can only shrink domains.
func TestQuickACMonotone(t *testing.T) {
	f := func(seed int64) bool {
		gp, gt, _ := randomInstance(seed)
		one := Compute(gp, gt, Options{ACPasses: 1})
		two := Compute(gp, gt, Options{ACPasses: 2})
		fix := Compute(gp, gt, Options{})
		for vp := int32(0); vp < int32(gp.NumNodes()); vp++ {
			if !two.Of(vp).Subset(one.Of(vp)) || !fix.Of(vp).Subset(two.Of(vp)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompute(b *testing.B) {
	gp, gt, _ := randomInstance(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Compute(gp, gt, Options{})
	}
}

// undirected adds both arcs of an undirected NoLabel edge to an edge
// list.
func undirected(pairs [][2]int32) [][3]int32 {
	var out [][3]int32
	for _, p := range pairs {
		out = append(out, [3]int32{p[0], p[1], 0}, [3]int32{p[1], p[0], 0})
	}
	return out
}

// TestGoldenDomainSizes pins exact per-node domain sizes on small
// fixtures for every (semantics, filter) combination that matters —
// the golden tables proving each filter actually shrinks domains:
//
//   - nlfStar: the multiset NLF bound (a candidate with only one
//     label-1 neighbor cannot host a pattern node needing two) prunes
//     under the injective semantics and correctly does NOT prune under
//     homomorphism, where the two pattern neighbors may collapse;
//   - homBound: the set-containment NLF bound prunes hom candidates
//     lacking a needed labeled-neighbor kind even with AC disabled —
//     the ROADMAP's "sound hom label bound" over label-only domains;
//   - inducedP3K3: the induced non-edge propagation wipes the domains
//     of P3-into-K3 (no independent pair exists in a clique), proving
//     unsatisfiability before any search;
//   - loops: the unary self-loop filters (label-compatible self-loop
//     required under every semantics; extra target self-loops rejected
//     under induced).
func TestGoldenDomainSizes(t *testing.T) {
	// nlfStar: pattern 0(L0)–1(L1), 0–2(L1); target a0(L0)–{b1,c1 (L1)},
	// d3(L0)–{e4 (L1), f5,g6 (L2)}.
	nlfStarP := buildGraph([]graph.Label{0, 1, 1}, undirected([][2]int32{{0, 1}, {0, 2}}))
	nlfStarT := buildGraph([]graph.Label{0, 1, 1, 0, 1, 2, 2},
		undirected([][2]int32{{0, 1}, {0, 2}, {3, 4}, {3, 5}, {3, 6}}))

	// homBound: pattern arc 0(L0)→1(L1); target h0(L0)→i1(L2),
	// j2(L0)→k3(L1).
	homBoundP := buildGraph([]graph.Label{0, 1}, [][3]int32{{0, 1, 0}})
	homBoundT := buildGraph([]graph.Label{0, 2, 0, 1}, [][3]int32{{0, 1, 0}, {2, 3, 0}})

	// inducedP3K3: path 0–1–2 into the triangle.
	p3 := buildGraph([]graph.Label{0, 0, 0}, undirected([][2]int32{{0, 1}, {1, 2}}))
	k3 := buildGraph([]graph.Label{0, 0, 0}, undirected([][2]int32{{0, 1}, {1, 2}, {0, 2}}))

	// loops: single pattern node without a self-loop; target node 1
	// carries one.
	plain := buildGraph([]graph.Label{0}, nil)
	looped := buildGraph([]graph.Label{0}, [][3]int32{{0, 0, 0}})
	loopT := buildGraph([]graph.Label{0, 0}, [][3]int32{{1, 1, 0}})

	cases := []struct {
		name   string
		gp, gt *graph.Graph
		opts   Options
		want   []int
	}{
		// The multiset bound prunes d3 (one L1 neighbor, two needed),
		// and AC then drops e4 (its only L0 neighbor left the domain).
		{"nlfStar/iso/filters", nlfStarP, nlfStarT, Options{Semantics: graph.SubgraphIso}, []int{1, 2, 2}},
		{"nlfStar/iso/noNLF", nlfStarP, nlfStarT, Options{Semantics: graph.SubgraphIso, SkipNLF: true}, []int{2, 3, 3}},
		{"nlfStar/induced/filters", nlfStarP, nlfStarT, Options{Semantics: graph.InducedIso}, []int{1, 2, 2}},
		// Homomorphism: the two L1 pattern nodes may share e4, so d3
		// must stay — set containment, not multiset domination.
		{"nlfStar/hom/filters", nlfStarP, nlfStarT, Options{Semantics: graph.Homomorphism}, []int{2, 3, 3}},

		// With AC off and NLF off, hom domains are label-only; NLF
		// restores the sound neighborhood-label bound.
		{"homBound/hom/labelOnly", homBoundP, homBoundT, Options{Semantics: graph.Homomorphism, SkipAC: true, SkipNLF: true}, []int{2, 1}},
		{"homBound/hom/nlf", homBoundP, homBoundT, Options{Semantics: graph.Homomorphism, SkipAC: true}, []int{1, 1}},

		// Induced non-edge propagation proves P3-into-K3 unsatisfiable;
		// without it the domains stay full.
		{"inducedP3K3/induced/filters", p3, k3, Options{Semantics: graph.InducedIso}, []int{0, 0, 0}},
		{"inducedP3K3/induced/noIAC", p3, k3, Options{Semantics: graph.InducedIso, SkipInducedAC: true}, []int{3, 3, 3}},
		{"inducedP3K3/iso/filters", p3, k3, Options{Semantics: graph.SubgraphIso}, []int{3, 3, 3}},

		// Self-loop unary filters: a pattern self-loop needs a target
		// self-loop under every semantics; under induced the absence of
		// a pattern self-loop forbids one.
		{"loops/iso/plain", plain, loopT, Options{Semantics: graph.SubgraphIso}, []int{2}},
		{"loops/induced/plain", plain, loopT, Options{Semantics: graph.InducedIso}, []int{1}},
		{"loops/iso/looped", looped, loopT, Options{Semantics: graph.SubgraphIso}, []int{1}},
		{"loops/hom/looped", looped, loopT, Options{Semantics: graph.Homomorphism}, []int{1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := Compute(c.gp, c.gt, c.opts)
			got := d.Sizes()
			if len(got) != len(c.want) {
				t.Fatalf("sizes = %v, want %v", got, c.want)
			}
			for i := range got {
				if got[i] != c.want[i] {
					t.Fatalf("sizes = %v, want %v", got, c.want)
				}
			}
		})
	}
}

// TestQuickFiltersMonotone: the NLF filter and the induced non-edge
// propagation may only shrink domains relative to their disabled
// configurations, under every semantics.
func TestQuickFiltersMonotone(t *testing.T) {
	sems := []graph.Semantics{graph.SubgraphIso, graph.InducedIso, graph.Homomorphism}
	f := func(seed int64) bool {
		gp, gt, _ := randomInstance(seed)
		for _, sem := range sems {
			full := Compute(gp, gt, Options{Semantics: sem})
			noNLF := Compute(gp, gt, Options{Semantics: sem, SkipNLF: true})
			noIAC := Compute(gp, gt, Options{Semantics: sem, SkipInducedAC: true})
			for vp := int32(0); vp < int32(gp.NumNodes()); vp++ {
				if !full.Of(vp).Subset(noNLF.Of(vp)) || !full.Of(vp).Subset(noIAC.Of(vp)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestIndexSignaturesMatchOnTheFly: Compute with and without an Index
// must produce identical domains — the Index only precomputes.
func TestIndexSignaturesMatchOnTheFly(t *testing.T) {
	sems := []graph.Semantics{graph.SubgraphIso, graph.InducedIso, graph.Homomorphism}
	for seed := int64(0); seed < 40; seed++ {
		gp, gt, _ := randomInstance(seed)
		ix := NewIndex(gt)
		for _, sem := range sems {
			with := Compute(gp, gt, Options{Semantics: sem, Index: ix})
			without := Compute(gp, gt, Options{Semantics: sem})
			for vp := int32(0); vp < int32(gp.NumNodes()); vp++ {
				if !with.Of(vp).Equal(without.Of(vp)) {
					t.Fatalf("seed %d %v node %d: indexed %v vs scan %v",
						seed, sem, vp, with.Of(vp), without.Of(vp))
				}
			}
		}
	}
}

// ------------------------------------------------------------------
// Adaptive schedule and compact NLF tests.

// TestGoldenSchedulePlans pins the adaptive scheduler's decisions — and
// the staged domain-size trace of the resulting pipeline — on the first
// instance of a dense (PPIS32) and a sparse (PDBSv1) bench collection
// under every semantics. A heuristic change shows up here as a
// reviewable golden diff instead of a silent behavior shift.
func TestGoldenSchedulePlans(t *testing.T) {
	cfg := datasets.Config{Scale: 0.012, Seed: 7}
	golden := map[string][]string{
		// PPIS32: 32 uniform labels (high entropy) and a dense target —
		// Auto keeps NLF, caps AC at one pass, and (under induced)
		// keeps the non-edge propagation.
		"PPIS32": {
			"subgraph-iso: plan=nlf+ac:adaptive:1 after-unary=25 final=25",
			"induced-iso: plan=nlf+ac:adaptive:1+inducedAC after-unary=25 final=4",
			"homomorphism: plan=nlf+ac:adaptive:1 after-unary=25 final=25",
		},
		// PDBSv1: a molecular target with few heavy labels is still
		// label-rich enough for the capped schedule, but too sparse for
		// the induced non-edge sweep to pay — Auto gates it off.
		"PDBSv1": {
			"subgraph-iso: plan=nlf+ac:adaptive:1 after-unary=40 final=35",
			"induced-iso: plan=nlf+ac:adaptive:1 after-unary=40 final=35",
			"homomorphism: plan=nlf+ac:adaptive:1 after-unary=40 final=35",
		},
	}
	for _, name := range []string{"PPIS32", "PDBSv1"} {
		coll, err := datasets.ByName(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		inst := coll.Instances()[0]
		ix := NewIndex(inst.Target)
		var got []string
		for _, sem := range []graph.Semantics{graph.SubgraphIso, graph.InducedIso, graph.Homomorphism} {
			opts := AutoTune(Options{Index: ix, Semantics: sem}, inst.Pattern, inst.Target)
			_, st := ComputeWithStats(inst.Pattern, inst.Target, opts)
			got = append(got, fmt.Sprintf("%v: plan=%v after-unary=%d final=%d",
				sem, st.Plan, st.AfterUnary, st.Final))
		}
		for i, line := range got {
			if line != golden[name][i] {
				t.Errorf("%s line %d:\n  got  %s\n  want %s", name, i, line, golden[name][i])
			}
		}
	}
}

// richInstance builds a random instance over a 5×3 label alphabet —
// more than compactBuckets distinct NLF keys, so compact signatures
// exercise the hashed (inexact-but-sound) bucket assignment.
func richInstance(seed int64) (gp, gt *graph.Graph, embed []int32) {
	rng := rand.New(rand.NewSource(seed))
	nt := 10 + rng.Intn(8)
	bt := &graph.Builder{}
	for i := 0; i < nt; i++ {
		bt.AddNode(graph.Label(rng.Intn(5)))
	}
	for i := 0; i < nt*4; i++ {
		u, v := int32(rng.Intn(nt)), int32(rng.Intn(nt))
		if u != v {
			bt.AddEdge(u, v, graph.Label(rng.Intn(3)))
		}
	}
	gt = bt.MustBuild()
	np := 2 + rng.Intn(4)
	perm := rng.Perm(nt)[:np]
	embed = make([]int32, np)
	for i, p := range perm {
		embed[i] = int32(p)
	}
	bp := &graph.Builder{}
	for _, tv := range embed {
		bp.AddNode(gt.NodeLabel(tv))
	}
	for i := 0; i < np; i++ {
		for j := 0; j < np; j++ {
			if i != j {
				if l, ok := gt.EdgeLabel(embed[i], embed[j]); ok && rng.Intn(2) == 0 {
					bp.AddEdge(int32(i), int32(j), l)
				}
			}
		}
	}
	return bp.MustBuild(), gt, embed
}

// TestCompactNLFSoundSuperset: compact-NLF domains must contain the
// exact-NLF domains (bucketing only coarsens the test) and must keep
// every known embedding — the soundness contract of the compact
// representation, under every semantics, on alphabets both below
// (perfect assignment) and above (hashed) the bucket count.
func TestCompactNLFSoundSuperset(t *testing.T) {
	sems := []graph.Semantics{graph.SubgraphIso, graph.InducedIso, graph.Homomorphism}
	for seed := int64(0); seed < 40; seed++ {
		var gp, gt *graph.Graph
		var embed []int32
		if seed%2 == 0 {
			gp, gt, embed = randomInstance(seed) // 3×2 alphabet: perfect assignment
		} else {
			gp, gt, embed = richInstance(seed) // 5×3 alphabet: hashed buckets
		}
		exact := NewIndexMode(gt, NLFExact)
		compact := NewIndexMode(gt, NLFCompact)
		if exact.CompactNLF() || !compact.CompactNLF() {
			t.Fatal("index mode not honored")
		}
		for _, sem := range sems {
			de := Compute(gp, gt, Options{Semantics: sem, Index: exact})
			dc := Compute(gp, gt, Options{Semantics: sem, Index: compact})
			for vp := int32(0); vp < int32(gp.NumNodes()); vp++ {
				if !de.Of(vp).Subset(dc.Of(vp)) {
					t.Fatalf("seed %d %v node %d: compact domain lost exact candidates", seed, sem, vp)
				}
			}
			if compact.NLFExactFallback() {
				for vp := int32(0); vp < int32(gp.NumNodes()); vp++ {
					if !de.Of(vp).Equal(dc.Of(vp)) {
						t.Fatalf("seed %d %v node %d: perfect bucket assignment not exact", seed, sem, vp)
					}
				}
			}
			// The extracted mapping is a valid embedding under non-induced
			// subgraph isomorphism only (dropped pattern edges leave target
			// edges between images, which induced matching forbids).
			if sem == graph.SubgraphIso {
				for vp, vt := range embed {
					if !dc.Of(int32(vp)).Test(int(vt)) {
						t.Fatalf("seed %d %v: compact domains exclude the known embedding", seed, sem)
					}
				}
			}
		}
	}
}

// TestCompactNLFMemory: the compact representation must use less
// signature memory than the exact one on a dense-enough target, and the
// gap must grow with the edge count (constant per node vs O(edges)).
func TestCompactNLFMemory(t *testing.T) {
	_, gt, _ := richInstance(1)
	exact := NewIndexMode(gt, NLFExact)
	compact := NewIndexMode(gt, NLFCompact)
	if compact.NLFMemoryBytes() >= exact.NLFMemoryBytes() {
		t.Errorf("compact NLF uses %d bytes, exact %d — no reduction",
			compact.NLFMemoryBytes(), exact.NLFMemoryBytes())
	}
}

// TestAutoTuneRespectsExplicitKnobs: ablation knobs the caller set
// survive Auto resolution (a skipped filter stays skipped, a positive
// AC cap is kept), and on a label-rich target Auto caps AC at one pass.
func TestAutoTuneRespectsExplicitKnobs(t *testing.T) {
	gp, gt, _ := richInstance(3) // 5 labels: label-rich
	tuned := AutoTune(Options{Semantics: graph.SubgraphIso}, gp, gt)
	if tuned.SkipNLF || tuned.ACPasses != 1 {
		t.Errorf("label-rich target: want NLF + 1-pass AC, got %+v", tuned)
	}
	tuned = AutoTune(Options{Semantics: graph.SubgraphIso, SkipNLF: true, ACPasses: 3}, gp, gt)
	if !tuned.SkipNLF || tuned.ACPasses != 3 {
		t.Errorf("explicit knobs overridden: %+v", tuned)
	}
	// Unlabeled target: zero entropy, so NLF is dropped and AC runs to
	// fixpoint.
	b := &graph.Builder{}
	b.AddNodes(8)
	for i := int32(0); i < 7; i++ {
		b.AddEdge(i, i+1, 0)
	}
	plain := b.MustBuild()
	tuned = AutoTune(Options{Semantics: graph.SubgraphIso}, gp, plain)
	if !tuned.SkipNLF || tuned.ACPasses != 0 {
		t.Errorf("label-poor target: want no NLF + fixpoint AC, got %+v", tuned)
	}
}

// TestIndexSharedConcurrently: one Index (exact and compact) serving
// many concurrent Compute calls across semantics — the sharing pattern
// of concurrent Target sessions — must be data-race free (run under
// -race) and deterministic.
func TestIndexSharedConcurrently(t *testing.T) {
	gp, gt, _ := richInstance(5)
	for _, mode := range []NLFMode{NLFExact, NLFCompact} {
		ix := NewIndexMode(gt, mode)
		sems := []graph.Semantics{graph.SubgraphIso, graph.InducedIso, graph.Homomorphism}
		want := make([]int, len(sems))
		for i, sem := range sems {
			want[i] = Compute(gp, gt, Options{Semantics: sem, Index: ix}).TotalSize()
		}
		done := make(chan error, 12)
		for g := 0; g < 12; g++ {
			go func(g int) {
				sem := sems[g%len(sems)]
				opts := AutoTune(Options{Semantics: sem, Index: ix}, gp, gt)
				Compute(gp, gt, opts) // Auto plan: races on ix.stats would trip -race
				got := Compute(gp, gt, Options{Semantics: sem, Index: ix}).TotalSize()
				if got != want[g%len(sems)] {
					done <- fmt.Errorf("goroutine %d: size %d, want %d", g, got, want[g%len(sems)])
					return
				}
				done <- nil
			}(g)
		}
		for g := 0; g < 12; g++ {
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestAdaptiveACEscalation: the second-stage rule in action. The target
// is label-rich (two balanced labels), so AutoTune caps AC at one
// adaptive pass — but the instance is built so that the first sweep
// leaves the domains large (mean well above acEscalateMeanDomain) while
// still pruning something: a set of "trap" A-nodes each with a private
// B-successor that the unary degree filter excludes from the middle
// domain. NLF cannot see the trap (the B-successor exists), only arc
// consistency can, so pass 1 changes the domains, the measured mean
// stays large, and the cap must be lifted to fixpoint — with the
// escalated result equal to a plain fixpoint run.
func TestAdaptiveACEscalation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const core, traps = 60, 12
	b := &graph.Builder{}
	for i := 0; i < core; i++ {
		b.AddNode(graph.Label(i % 2)) // even = A(0), odd = B(1)
	}
	for i := 0; i < traps; i++ {
		b.AddNode(0) // trap: label A
	}
	for i := 0; i < traps; i++ {
		b.AddNode(1) // sink: label B, will have out-degree 0
	}
	// Dense bipartite-ish core: edges only between different labels.
	for v := 0; v < core; v++ {
		for k := 0; k < 12; k++ {
			w := rng.Intn(core)
			if w%2 != v%2 {
				b.AddEdge(int32(v), int32(w), graph.NoLabel)
			}
		}
	}
	// Each trap's only out-edge goes to its private B sink; the sink has
	// no out-edges, so it is excluded from the middle domain by the
	// unary degree filter.
	for i := 0; i < traps; i++ {
		b.AddEdge(int32(core+i), int32(core+traps+i), graph.NoLabel)
	}
	gt := b.MustBuild()

	// Pattern: directed path A -> B -> A.
	pb := &graph.Builder{}
	pb.AddNode(0)
	pb.AddNode(1)
	pb.AddNode(0)
	pb.AddEdge(0, 1, graph.NoLabel)
	pb.AddEdge(1, 2, graph.NoLabel)
	gp := pb.MustBuild()

	opts := AutoTune(Options{Semantics: graph.SubgraphIso}, gp, gt)
	if !opts.ACAdaptive || opts.ACPasses != 1 {
		t.Fatalf("AutoTune did not choose the adaptive one-pass cap: %+v", opts)
	}
	d, st := ComputeWithStats(gp, gt, opts)
	if !st.Plan.ACAdaptive {
		t.Fatalf("plan does not report the adaptive cap: %v", st.Plan)
	}
	if st.Plan.ACPasses != 0 {
		t.Fatalf("large post-pass domains did not escalate to fixpoint: %v (after-pass1 %d over %d nodes)",
			st.Plan, st.AfterPass1, gp.NumNodes())
	}
	if st.AfterPass1 == 0 || st.AfterPass1 > st.AfterUnary || st.Final > st.AfterPass1 {
		t.Fatalf("staged sizes inconsistent: unary=%d pass1=%d final=%d", st.AfterUnary, st.AfterPass1, st.Final)
	}
	if got := st.Plan.String(); got != "nlf+ac:adaptive:fixpoint" {
		t.Fatalf("plan string = %q", got)
	}
	// The escalated run must land on the plain fixpoint domains.
	df, fst := ComputeWithStats(gp, gt, Options{Semantics: graph.SubgraphIso})
	if fst.Plan.ACAdaptive || fst.Plan.ACPasses != 0 {
		t.Fatalf("reference run unexpectedly adaptive: %v", fst.Plan)
	}
	for vp := int32(0); vp < int32(gp.NumNodes()); vp++ {
		if !d.Of(vp).Equal(df.Of(vp)) {
			t.Fatalf("node %d: escalated domains differ from the fixpoint", vp)
		}
	}
	// An explicit one-pass cap is a caller demand, never adaptive.
	_, est := ComputeWithStats(gp, gt, Options{Semantics: graph.SubgraphIso, ACPasses: 1})
	if est.Plan.ACAdaptive || est.Plan.ACPasses != 1 {
		t.Fatalf("explicit ACPasses=1 was made adaptive: %v", est.Plan)
	}
}
