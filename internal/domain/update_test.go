package domain

import (
	"math/rand"
	"testing"

	"parsge/internal/graph"
)

// randomGraph builds a random labeled graph with n nodes, ~m arcs and
// labels drawn from [0, labels).
func randomGraph(rng *rand.Rand, n, m, labels int) *graph.Graph {
	b := graph.NewBuilder(n, m)
	for i := 0; i < n; i++ {
		b.AddNode(graph.Label(rng.Intn(labels)))
	}
	for i := 0; i < m; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), graph.Label(rng.Intn(labels)))
	}
	return b.MustBuild()
}

func randomBatch(rng *rand.Rand, n, k, labels int) []graph.EdgeUpdate {
	ups := make([]graph.EdgeUpdate, k)
	for i := range ups {
		ups[i] = graph.EdgeUpdate{
			From:   int32(rng.Intn(n)),
			To:     int32(rng.Intn(n)),
			Label:  graph.Label(rng.Intn(labels)),
			Remove: rng.Intn(2) == 0,
		}
	}
	return ups
}

// TestIndexApplyUpdatesDifferential is the domain-level half of the
// incremental-vs-rebuild battery: across random update sequences, the
// incrementally-maintained exact-mode index must be IndexEqual —
// signatures, label buckets, stats down to the float bits — to a
// from-scratch NewIndexMode of the updated graph.
func TestIndexApplyUpdatesDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(8)
		g := randomGraph(rng, n, rng.Intn(3*n), 3)
		ix := NewIndexMode(g, NLFExact)
		for batch := 0; batch < 5; batch++ {
			g2, touched, _, _, err := g.ApplyUpdates(randomBatch(rng, n, 1+rng.Intn(6), 3))
			if err != nil {
				t.Fatal(err)
			}
			ix2 := ix
			if g2 != g {
				ix2 = ix.ApplyUpdates(g, g2, touched)
			}
			rebuilt := NewIndexMode(g2, NLFExact)
			if ok, diff := IndexEqual(ix2, rebuilt); !ok {
				t.Fatalf("trial %d batch %d: incremental index differs from rebuild: %s", trial, batch, diff)
			}
			g, ix = g2, ix2
		}
	}
}

// TestIndexApplyUpdatesCompact checks the compact-mode maintenance: the
// incrementally-maintained bucketed index must accept exactly the same
// candidates as a fresh index over the updated graph (same computed
// domains for random patterns), even though its alphabet numbering may
// differ from a rebuild's.
func TestIndexApplyUpdatesCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(7)
		g := randomGraph(rng, n, rng.Intn(3*n), 2)
		ix := NewIndexMode(g, NLFCompact)
		for batch := 0; batch < 4; batch++ {
			g2, touched, _, _, err := g.ApplyUpdates(randomBatch(rng, n, 1+rng.Intn(5), 2))
			if err != nil {
				t.Fatal(err)
			}
			ix2 := ix
			if g2 != g {
				ix2 = ix.ApplyUpdates(g, g2, touched)
			}
			rebuilt := NewIndexMode(g2, NLFCompact)
			// Stats must still be bit-identical (they don't depend on
			// the alphabet numbering).
			if ix2.stats != rebuilt.stats {
				t.Fatalf("trial %d batch %d: compact stats %+v vs rebuild %+v", trial, batch, ix2.stats, rebuilt.stats)
			}
			pat := randomGraph(rng, 2+rng.Intn(3), 3, 2)
			for _, sem := range []graph.Semantics{graph.SubgraphIso, graph.InducedIso, graph.Homomorphism} {
				di := Compute(pat, g2, Options{Index: ix2, Semantics: sem})
				dr := Compute(pat, g2, Options{Index: rebuilt, Semantics: sem})
				for vp := int32(0); vp < int32(pat.NumNodes()); vp++ {
					si, sr := di.Of(vp).Count(), dr.Of(vp).Count()
					if si != sr {
						t.Fatalf("trial %d batch %d sem %v: node %d domain %d vs rebuild %d", trial, batch, sem, vp, si, sr)
					}
				}
			}
			g, ix = g2, ix2
		}
	}
}

// TestIndexCompactAlphabetGrowth drives a perfect-assignment compact
// index past compactBuckets distinct keys via updates and checks it
// falls back to hashed buckets while still pruning soundly.
func TestIndexCompactAlphabetGrowth(t *testing.T) {
	// Start tiny: two nodes, one key.
	b := graph.NewBuilder(4, 2)
	for i := 0; i < 4; i++ {
		b.AddNode(0)
	}
	b.AddEdge(0, 1, 0)
	g := b.MustBuild()
	ix := NewIndexMode(g, NLFCompact)
	if !ix.NLFExactFallback() {
		t.Fatal("tiny alphabet should get a perfect assignment")
	}
	// Each new edge label is a new (node label, edge label) key; push
	// well past the bucket array.
	var ups []graph.EdgeUpdate
	for l := 1; l <= compactBuckets+2; l++ {
		ups = append(ups, graph.EdgeUpdate{From: 2, To: 3, Label: graph.Label(l)})
	}
	g2, touched, _, _, err := g.ApplyUpdates(ups)
	if err != nil {
		t.Fatal(err)
	}
	ix2 := ix.ApplyUpdates(g, g2, touched)
	if ix2.NLFExactFallback() {
		t.Fatal("alphabet overflow should fall back to hashed buckets")
	}
	// Sound: a pattern needing one of the new keys keeps its valid
	// candidate.
	pb := graph.NewBuilder(2, 1)
	pb.AddNode(0)
	pb.AddNode(0)
	pb.AddEdge(0, 1, graph.Label(compactBuckets+2))
	pat := pb.MustBuild()
	d := Compute(pat, g2, Options{Index: ix2})
	if !d.Of(0).Test(2) {
		t.Fatal("hashed-bucket fallback pruned the valid candidate")
	}
	// The old index must be untouched (it may be serving queries).
	if !ix.NLFExactFallback() {
		t.Fatal("ApplyUpdates mutated the receiver's alphabet")
	}
}

// TestIndexApplyUpdatesSharing pins the structural-sharing contract:
// untouched nodes' signatures are shared with the previous index, and
// byLabel is carried over as-is.
func TestIndexApplyUpdatesSharing(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	g := randomGraph(rng, 8, 16, 3)
	ix := NewIndexMode(g, NLFExact)
	g2, touched, _, _, err := g.ApplyUpdates([]graph.EdgeUpdate{{From: 0, To: 1, Label: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ix2 := ix.ApplyUpdates(g, g2, touched)
	tset := map[int32]bool{}
	for _, v := range touched {
		tset[v] = true
	}
	for v := 0; v < 8; v++ {
		if tset[int32(v)] {
			continue
		}
		if len(ix.out[v].keys) > 0 && &ix.out[v].keys[0] != &ix2.out[v].keys[0] {
			t.Fatalf("untouched node %d out signature was copied, not shared", v)
		}
	}
	if &ix.byLabel == nil || len(ix2.byLabel) != len(ix.byLabel) {
		t.Fatal("byLabel not carried over")
	}
}

// TestStatsDeterminism: StatsOf must be bit-for-bit reproducible across
// calls (sorted-order entropy, integer degree moments) — the property
// incremental maintenance relies on.
func TestStatsDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 2+rng.Intn(20), rng.Intn(60), 5)
		a := StatsOf(g)
		for i := 0; i < 5; i++ {
			if b := StatsOf(g); a != b {
				t.Fatalf("StatsOf not deterministic: %+v vs %+v", a, b)
			}
		}
	}
}
