package domain

import (
	"fmt"
	"math"
	"slices"
	"time"

	"parsge/internal/graph"
)

// Schedule selects how the preprocessing filter pipeline is chosen for a
// query. The filters themselves are always sound — the schedule only
// decides which of them are worth their cost on this target, so match
// counts are identical under every schedule (the metamorphic battery
// holds every point of the schedule space to the brute-force oracle).
type Schedule int32

const (
	// ScheduleAuto (the zero value) adapts the filter plan to the
	// target's cached statistics (density, label entropy, degree skew)
	// and the pattern's shape: NLF plus a single capped arc-consistency
	// pass on label-rich targets (where the initial domains are already
	// near-tight and the fixpoint rarely pays), fixpoint arc consistency
	// otherwise, and the induced non-edge propagation only on targets
	// dense enough for pattern non-edges to be binding. This closes the
	// preprocessing-cost-vs-search-savings trade the source paper
	// highlights (§4.1/§5: "preprocessing time is negligible" only
	// because the schedule is matched to the collection).
	ScheduleAuto Schedule = iota
	// ScheduleFixed runs the full fixed pipeline of earlier versions:
	// every applicable filter on, arc consistency to fixpoint (unless
	// ACPasses caps it explicitly). Use it to reproduce paper-style runs
	// exactly and as the reference the ablation bench measures Auto
	// against.
	ScheduleFixed
)

// String names the schedule for logs and golden tables.
func (s Schedule) String() string {
	switch s {
	case ScheduleAuto:
		return "auto"
	case ScheduleFixed:
		return "fixed"
	default:
		return fmt.Sprintf("Schedule(%d)", int32(s))
	}
}

// Plan is the resolved filter plan of one Compute run: which filters
// fired and how deep arc consistency went. It is recorded in ComputeStats
// so callers can report (and tests can pin) what the scheduler decided.
type Plan struct {
	// NLF reports the neighborhood-label-frequency filter ran.
	NLF bool
	// CompactNLF reports NLF consulted the bucketed signatures of a
	// compact Index rather than exact ones.
	CompactNLF bool
	// AC reports classic arc consistency ran; ACPasses is its sweep cap
	// (0 = fixpoint).
	AC       bool
	ACPasses int
	// ACAdaptive reports the second-stage online rule ran: arc
	// consistency probed one sweep and then decided — from the measured
	// domain sizes, not a prediction — whether to continue to fixpoint.
	// ACPasses then records the outcome: 1 when the probe stopped, 0
	// when domains stayed large and the sweeps escalated to fixpoint.
	ACAdaptive bool
	// InducedAC reports the induced non-edge propagation ran (only ever
	// true under graph.InducedIso).
	InducedAC bool
}

// String renders the plan compactly, e.g. "nlf+ac:1" or
// "nlf(compact)+ac:fixpoint+inducedAC".
func (p Plan) String() string {
	s := ""
	add := func(part string) {
		if s != "" {
			s += "+"
		}
		s += part
	}
	if p.NLF {
		if p.CompactNLF {
			add("nlf(compact)")
		} else {
			add("nlf")
		}
	}
	if p.AC {
		switch {
		case p.ACAdaptive && p.ACPasses == 0:
			add("ac:adaptive:fixpoint")
		case p.ACAdaptive:
			add(fmt.Sprintf("ac:adaptive:%d", p.ACPasses))
		case p.ACPasses == 0:
			add("ac:fixpoint")
		default:
			add(fmt.Sprintf("ac:%d", p.ACPasses))
		}
	}
	if p.InducedAC {
		add("inducedAC")
	}
	if s == "" {
		return "unary-only"
	}
	return s
}

// ComputeStats reports what one Compute run did: the resolved plan,
// per-filter wall times, and the total domain size after each pipeline
// stage (the reviewable trace golden tests pin).
type ComputeStats struct {
	Plan Plan
	// UnaryTime covers the initial per-node filter (label, degree,
	// self-loops, NLF); ACTime the classic arc-consistency sweeps;
	// InducedACTime the induced non-edge passes (interleaved with AC in
	// the joint fixpoint but timed separately).
	UnaryTime, ACTime, InducedACTime time.Duration
	// AfterUnary and Final are total domain sizes (sum over pattern
	// nodes) after the unary stage and after all propagation. AfterPass1
	// is the size after the first arc-consistency sweep — the signal the
	// adaptive second-stage rule reads (0 when AC did not run).
	AfterUnary, AfterPass1, Final int
	// LogDomainProduct is log2 of the product of final domain sizes —
	// the staged upper bound on candidate assignments (see
	// Domains.LogProduct), the cheap cost signal the service's admission
	// model classifies on. Zero when some domain ran empty.
	LogDomainProduct float64
	// Rows carries the BitGraph adjacency rows the propagation passes
	// used (nil under the slice kernel, or when the target exceeds
	// graph.DenseRowLimit), so engines reuse them instead of rebuilding.
	Rows *graph.BitGraph
}

// TargetStats are the target-side statistics the adaptive schedule
// consults. They are cached in Index at construction, so Auto scheduling
// costs nothing per query on a session; StatsOf computes them directly
// for index-free paths.
type TargetStats struct {
	Nodes, Edges int
	// Labels is the number of distinct node labels.
	Labels int
	// MeanDegree is the mean total degree (the paper's Table 1 µ).
	MeanDegree float64
	// Density is the arc density m / (n·(n−1)), in [0, ~1] for simple
	// graphs (self-loops and parallels can push it past 1).
	Density float64
	// LabelEntropy is the Shannon entropy of the node-label distribution
	// in bits: 0 for unlabeled graphs, log2(k) for k uniform labels.
	LabelEntropy float64
	// DegreeSkew is the coefficient of variation (σ/µ) of the total
	// degree: ~0 for regular graphs, large for hub-dominated ones.
	DegreeSkew float64
}

// StatsOf computes TargetStats in one O(n) pass over the graph.
func StatsOf(g *graph.Graph) TargetStats {
	st, _, _ := statsWithSums(g)
	return st
}

// statsWithSums computes TargetStats together with the integer degree
// accumulators (Σ deg, Σ deg²) the derived fields are computed from.
// Everything here is deterministic bit-for-bit: the entropy sums over
// labels in ascending order and the degree moments are exact integer
// sums fed through one shared float pipeline (fillDegreeStats) — so an
// incrementally-maintained Index (which adjusts the sums for touched
// vertices only) reproduces a from-scratch rebuild exactly, which the
// differential update battery asserts.
func statsWithSums(g *graph.Graph) (st TargetStats, sumDeg, sumSqDeg int64) {
	st = TargetStats{Nodes: g.NumNodes(), Edges: g.NumEdges()}
	if st.Nodes == 0 {
		return st, 0, 0
	}
	hist := make(map[graph.Label]int)
	for v := int32(0); v < int32(st.Nodes); v++ {
		hist[g.NodeLabel(v)]++
	}
	st.Labels = len(hist)
	st.LabelEntropy = labelEntropy(hist, st.Nodes)
	for v := int32(0); v < int32(st.Nodes); v++ {
		d := int64(g.Degree(v))
		sumDeg += d
		sumSqDeg += d * d
	}
	fillDegreeStats(&st, sumDeg, sumSqDeg)
	return st, sumDeg, sumSqDeg
}

// labelEntropy computes the Shannon entropy of a label histogram in a
// deterministic (sorted-label) order — float addition is not
// associative, so map-iteration order would make the low bits of the
// result vary run to run.
func labelEntropy(hist map[graph.Label]int, nodes int) float64 {
	labels := make([]graph.Label, 0, len(hist))
	for l := range hist {
		labels = append(labels, l)
	}
	slices.Sort(labels)
	n := float64(nodes)
	entropy := 0.0
	for _, l := range labels {
		p := float64(hist[l]) / n
		entropy -= p * math.Log2(p)
	}
	return entropy
}

// fillDegreeStats derives MeanDegree, DegreeSkew and Density from the
// exact integer degree moments. Shared by fresh stats computation and
// incremental index maintenance so the two produce identical floats.
func fillDegreeStats(st *TargetStats, sumDeg, sumSqDeg int64) {
	if st.Nodes == 0 {
		return
	}
	n := float64(st.Nodes)
	mean := float64(sumDeg) / n
	st.MeanDegree = mean
	variance := float64(sumSqDeg)/n - mean*mean
	if variance < 0 {
		variance = 0 // float cancellation on near-regular graphs
	}
	if mean > 0 {
		st.DegreeSkew = math.Sqrt(variance) / mean
	}
	if st.Nodes > 1 {
		st.Density = float64(st.Edges) / (n * (n - 1))
	}
}

// Thresholds of the Auto heuristic. They are deliberately few and
// coarse — the schedule only has to avoid the clearly wasted work
// (fixpoint sweeps on already-tight label-rich domains, non-edge
// propagation on sparse targets where every non-edge is trivially
// supported), not to find an optimum.
const (
	// labelRichEntropy: above this many bits of node-label entropy the
	// initial label+NLF filter already separates candidates well, so a
	// single AC pass (the original RI-DS schedule) suffices. 1.0 bit ≈
	// two balanced labels; the paper's dense collections carry 32.
	labelRichEntropy = 1.0
	// wildSkew: with a hub-dominated degree distribution domains stay
	// irregular after one pass, so the fixpoint is kept even on
	// label-rich targets.
	wildSkew = 1.5
	// inducedDenseDensity / inducedDenseMeanDegree: the induced non-edge
	// propagation only prunes when candidates' neighborhoods cover a
	// meaningful fraction of the other domains (see inducedPass's
	// pigeonhole bound: a domain larger than deg+1 always has support).
	// Either a high relative density or a high absolute mean degree
	// marks a target where the sweep can pay.
	inducedDenseDensity    = 0.08
	inducedDenseMeanDegree = 12.0
	// acEscalateMeanDomain: the second-stage online rule. When the
	// adaptive schedule capped arc consistency at one pass (label-rich
	// target) but the mean domain size after that pass is still at least
	// this many candidates per pattern node, the prediction "one pass
	// suffices" was wrong for this query — further sweeps have plenty
	// left to prune and the search would otherwise pay for it — so the
	// sweeps continue to fixpoint.
	acEscalateMeanDomain = 8.0
)

// AutoTune resolves the adaptive schedule: it inspects the target's
// statistics (taken from opts.Index when one is attached, computed
// directly otherwise), the pattern's shape, and the matching semantics,
// and returns opts with the filter knobs filled in. Knobs the caller
// already set explicitly are respected: a skipped filter stays skipped
// (ablations compose with Auto), and a positive ACPasses cap is kept.
//
// The rules implement the ROADMAP follow-ups of the pruning subsystem:
//
//   - NLF's marginal value over *fixpoint* AC is the multiset counting;
//     its payoff grows when AC is capped or labels are rich. So on
//     label-rich targets Auto runs NLF + a single AC pass; on label-poor
//     targets it drops NLF (the signatures would be near-constant) and
//     runs AC to fixpoint. A wildly skewed degree distribution keeps the
//     fixpoint even when labels are rich. The one-pass cap is adaptive
//     (Options.ACAdaptive): the sweep measures the domains it leaves
//     behind and escalates to fixpoint when they stay large — the
//     second-stage rule that corrects the static prediction online with
//     ComputeStats.AfterPass1 instead of trusting target statistics
//     alone.
//   - A pattern without edges makes both NLF and AC no-ops; they are
//     skipped outright.
//   - The induced non-edge propagation is gated on target density (and
//     on the pattern actually having non-edges): on sparse targets every
//     candidate's non-adjacent support exists by pigeonhole and the
//     sweep is wasted.
func AutoTune(opts Options, gp, gt *graph.Graph) Options {
	var st TargetStats
	if ix := opts.Index; ix != nil && ix.nt == gt.NumNodes() {
		st = ix.stats
	} else {
		st = StatsOf(gt)
	}
	patternEdges := gp.NumEdges()

	if !opts.SkipNLF {
		labelRich := st.LabelEntropy >= labelRichEntropy
		opts.SkipNLF = patternEdges == 0 || !labelRich
		if labelRich && opts.ACPasses == 0 && !opts.SkipAC && st.DegreeSkew < wildSkew {
			// The cap is the scheduler's own prediction, not a caller
			// knob, so it may be revised online: ACAdaptive lets the
			// sweep escalate to fixpoint when the measured post-pass
			// domains say one pass was not enough. An explicit caller
			// ACPasses is never made adaptive.
			opts.ACPasses = 1
			opts.ACAdaptive = true
		}
	}
	if patternEdges == 0 {
		opts.SkipAC = true
	}
	if opts.Semantics.Norm().Induced() && !opts.SkipInducedAC {
		dense := st.Density >= inducedDenseDensity || st.MeanDegree >= inducedDenseMeanDegree
		opts.SkipInducedAC = !dense || !patternHasNonEdge(gp)
	}
	opts.Kernel = ResolveKernel(opts.Kernel, st.Nodes)
	return opts
}

// patternHasNonEdge reports whether some ordered pattern pair (self
// pairs excluded — those are the unary self-loop filter) lacks an edge,
// i.e. whether induced non-edge propagation has anything to propagate.
func patternHasNonEdge(gp *graph.Graph) bool {
	n := int32(gp.NumNodes())
	for u := int32(0); u < n; u++ {
		for w := int32(0); w < n; w++ {
			if u != w && !gp.HasEdge(u, w) {
				return true
			}
		}
	}
	return false
}
