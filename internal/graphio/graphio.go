// Package graphio reads and writes graphs in a GFF-style text format
// compatible in spirit with the files shipped with the RI tool chain
// (Bonnici et al. 2013), which the paper's data collections use.
//
// The format, one graph per section, any number of sections per file:
//
//	#graph-name
//	%undirected        (optional directive, see below)
//	<number of nodes>
//	<label of node 0>
//	<label of node 1>
//	...
//	<number of edges>
//	<from> <to> [edge-label]
//	...
//
// Node and edge labels are arbitrary whitespace-free strings; they are
// interned into dense graph.Label ids through a LabelTable so that the
// engines can compare labels as integers. Sharing one LabelTable between
// a pattern and its target guarantees that equal strings map to equal ids
// (label equivalence, Kimmig et al. §2.1).
//
// Directive lines starting with '%' may appear between the header and
// the node count. "%directed" (the default) reads each edge line as one
// arc; "%undirected" reads each line as an undirected edge and adds both
// arcs (one arc for a self-loop), halving the on-disk size of symmetric
// datasets — the common case for the paper's collections. Write always
// emits the directed form; WriteUndirected emits "%undirected" sections
// for symmetric graphs.
package graphio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"parsge/internal/graph"
)

// LabelTable interns label strings into dense graph.Label ids. The zero
// value is not ready; use NewLabelTable. Id 0 is reserved for the empty
// label (graph.NoLabel) so unlabeled files round-trip naturally.
type LabelTable struct {
	ids   map[string]graph.Label
	names []string
}

// NewLabelTable returns an empty table with the empty string pre-interned
// as graph.NoLabel.
func NewLabelTable() *LabelTable {
	t := &LabelTable{ids: make(map[string]graph.Label)}
	t.ids[""] = graph.NoLabel
	t.names = append(t.names, "")
	return t
}

// Intern returns the id for name, assigning a fresh one if necessary.
// The strings "" and "_" both denote the empty label graph.NoLabel; "_"
// is its on-disk spelling (a blank line would be skipped by the parser).
func (t *LabelTable) Intern(name string) graph.Label {
	if name == "_" {
		return graph.NoLabel
	}
	if id, ok := t.ids[name]; ok {
		return id
	}
	id := graph.Label(len(t.names))
	t.ids[name] = id
	t.names = append(t.names, name)
	return id
}

// Name returns the string for a previously interned id, or "?" if the id
// is unknown.
func (t *LabelTable) Name(id graph.Label) string {
	if int(id) < 0 || int(id) >= len(t.names) {
		return "?"
	}
	return t.names[id]
}

// Size returns the number of interned labels, including the empty label.
func (t *LabelTable) Size() int { return len(t.names) }

// Spell returns the string for id like Name, but falls back to the
// decimal spelling for ids the table never interned — the case for
// graphs built programmatically with numeric labels (e.g. the synthetic
// datasets). Reading the spelled label back through Intern yields ids
// that are consistent across all graphs sharing the table, which is all
// the engines require.
func (t *LabelTable) Spell(id graph.Label) string {
	if int(id) >= 0 && int(id) < len(t.names) {
		return t.names[id]
	}
	return strconv.Itoa(int(id))
}

// NamedGraph pairs a graph with the name found in its file section.
type NamedGraph struct {
	Name  string
	Graph *graph.Graph
}

// Reader parses graph sections from an input stream.
type Reader struct {
	s      *bufio.Scanner
	labels *LabelTable
	line   int
}

// NewReader returns a Reader that interns labels into table. If table is
// nil a private table is created.
func NewReader(r io.Reader, table *LabelTable) *Reader {
	if table == nil {
		table = NewLabelTable()
	}
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 1<<16), 1<<24)
	return &Reader{s: s, labels: table}
}

// Labels returns the label table the reader interns into.
func (r *Reader) Labels() *LabelTable { return r.labels }

// errf decorates a parse error with the current line number.
func (r *Reader) errf(format string, args ...any) error {
	return fmt.Errorf("graphio: line %d: %s", r.line, fmt.Sprintf(format, args...))
}

// nextLine returns the next non-blank line, or io.EOF.
func (r *Reader) nextLine() (string, error) {
	for r.s.Scan() {
		r.line++
		line := strings.TrimSpace(r.s.Text())
		if line != "" {
			return line, nil
		}
	}
	if err := r.s.Err(); err != nil {
		return "", err
	}
	return "", io.EOF
}

// Read parses the next graph section. It returns io.EOF when the stream
// is exhausted.
func (r *Reader) Read() (NamedGraph, error) {
	header, err := r.nextLine()
	if err != nil {
		return NamedGraph{}, err
	}
	if !strings.HasPrefix(header, "#") {
		return NamedGraph{}, r.errf("expected '#name' header, got %q", header)
	}
	name := strings.TrimSpace(header[1:])

	nLine, err := r.nextLine()
	if err != nil {
		return NamedGraph{}, r.errf("missing node count: %v", err)
	}
	undirected := false
	for strings.HasPrefix(nLine, "%") {
		switch strings.TrimSpace(nLine[1:]) {
		case "undirected":
			undirected = true
		case "directed":
			undirected = false
		default:
			return NamedGraph{}, r.errf("unknown directive %q", nLine)
		}
		if nLine, err = r.nextLine(); err != nil {
			return NamedGraph{}, r.errf("missing node count: %v", err)
		}
	}
	n, err := strconv.Atoi(nLine)
	if err != nil || n < 0 {
		return NamedGraph{}, r.errf("bad node count %q", nLine)
	}

	b := graph.NewBuilder(n, 0)
	for i := 0; i < n; i++ {
		lab, err := r.nextLine()
		if err != nil {
			return NamedGraph{}, r.errf("missing label for node %d: %v", i, err)
		}
		b.AddNode(r.labels.Intern(lab))
	}

	mLine, err := r.nextLine()
	if err != nil {
		return NamedGraph{}, r.errf("missing edge count: %v", err)
	}
	m, err := strconv.Atoi(mLine)
	if err != nil || m < 0 {
		return NamedGraph{}, r.errf("bad edge count %q", mLine)
	}

	for i := 0; i < m; i++ {
		line, err := r.nextLine()
		if err != nil {
			return NamedGraph{}, r.errf("missing edge %d: %v", i, err)
		}
		fields := strings.Fields(line)
		if len(fields) != 2 && len(fields) != 3 {
			return NamedGraph{}, r.errf("bad edge line %q", line)
		}
		u, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			return NamedGraph{}, r.errf("bad edge endpoints %q", line)
		}
		lab := graph.NoLabel
		if len(fields) == 3 {
			lab = r.labels.Intern(fields[2])
		}
		if undirected && u != v {
			b.AddEdgeBoth(int32(u), int32(v), lab)
		} else {
			b.AddEdge(int32(u), int32(v), lab)
		}
	}

	g, err := b.Build()
	if err != nil {
		return NamedGraph{}, r.errf("%v", err)
	}
	return NamedGraph{Name: name, Graph: g}, nil
}

// ReadAll parses every section until EOF.
func (r *Reader) ReadAll() ([]NamedGraph, error) {
	var out []NamedGraph
	for {
		ng, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, ng)
	}
}

// WriteUndirected serializes g as one "%undirected" section: every
// symmetric arc pair is written once, self-loop arcs once each. It
// errors when g is not symmetric — some arc (u,v,l) lacks a matching
// reverse arc (v,u,l) — since the undirected form could not round-trip
// such a graph. Reading the section back yields a graph equal to g up
// to edge order.
func WriteUndirected(w io.Writer, name string, g *graph.Graph, table *LabelTable) error {
	unpaired := make(map[graph.Edge]int)
	var lines []graph.Edge
	for _, e := range g.Edges() {
		if e.From == e.To {
			lines = append(lines, e)
			continue
		}
		rev := graph.Edge{From: e.To, To: e.From, Label: e.Label}
		if unpaired[rev] > 0 {
			unpaired[rev]--
			if e.From > e.To {
				e = rev
			}
			lines = append(lines, e)
			continue
		}
		unpaired[e]++
	}
	for e, n := range unpaired {
		if n > 0 {
			return fmt.Errorf("graphio: graph is not symmetric: arc (%d,%d) has no reverse", e.From, e.To)
		}
	}
	return writeSection(w, name, "undirected", g, lines, table)
}

// Write serializes g as one section. Labels are resolved through table;
// passing the table used while building g round-trips label strings.
func Write(w io.Writer, name string, g *graph.Graph, table *LabelTable) error {
	return writeSection(w, name, "", g, g.Edges(), table)
}

// writeSection emits one text section — header, optional directive,
// node-label block, and the given edge lines — the serialization shared
// by Write and WriteUndirected so the two cannot drift apart.
func writeSection(w io.Writer, name, directive string, g *graph.Graph, edges []graph.Edge, table *LabelTable) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "#%s\n", name)
	if directive != "" {
		fmt.Fprintf(bw, "%%%s\n", directive)
	}
	fmt.Fprintf(bw, "%d\n", g.NumNodes())
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		lab := table.Spell(g.NodeLabel(v))
		if lab == "" {
			lab = "_" // keep the section parsable: blank lines are skipped
		}
		fmt.Fprintln(bw, lab)
	}
	fmt.Fprintf(bw, "%d\n", len(edges))
	for _, e := range edges {
		if e.Label == graph.NoLabel {
			fmt.Fprintf(bw, "%d %d\n", e.From, e.To)
		} else {
			fmt.Fprintf(bw, "%d %d %s\n", e.From, e.To, table.Spell(e.Label))
		}
	}
	return bw.Flush()
}
