package graphio

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"parsge/internal/graph"
)

const sample = `
#pattern0
3
A
B
A
3
0 1 x
1 2 y
2 0 x

#pattern1
2
A
A
1
0 1
`

func TestReadAll(t *testing.T) {
	r := NewReader(strings.NewReader(sample), nil)
	gs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 2 {
		t.Fatalf("parsed %d graphs, want 2", len(gs))
	}
	g0 := gs[0]
	if g0.Name != "pattern0" || g0.Graph.NumNodes() != 3 || g0.Graph.NumEdges() != 3 {
		t.Fatalf("graph 0 wrong: %v %v", g0.Name, g0.Graph)
	}
	if g0.Graph.NodeLabel(0) != g0.Graph.NodeLabel(2) {
		t.Error("nodes 0 and 2 should share label A")
	}
	if g0.Graph.NodeLabel(0) == g0.Graph.NodeLabel(1) {
		t.Error("nodes 0 and 1 should have different labels")
	}
	l01, ok := g0.Graph.EdgeLabel(0, 1)
	if !ok {
		t.Fatal("edge (0,1) missing")
	}
	l20, _ := g0.Graph.EdgeLabel(2, 0)
	if l01 != l20 {
		t.Error("edges with label x should share id")
	}
	if gs[1].Graph.NumEdges() != 1 {
		t.Error("graph 1 edges wrong")
	}
}

func TestSharedLabelTable(t *testing.T) {
	table := NewLabelTable()
	r1 := NewReader(strings.NewReader("#a\n1\nL\n0\n"), table)
	r2 := NewReader(strings.NewReader("#b\n1\nL\n0\n"), table)
	g1, err := r1.Read()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := r2.Read()
	if err != nil {
		t.Fatal(err)
	}
	if g1.Graph.NodeLabel(0) != g2.Graph.NodeLabel(0) {
		t.Fatal("same string interned to different labels across readers")
	}
}

func TestReadEOF(t *testing.T) {
	r := NewReader(strings.NewReader("   \n\n"), nil)
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"no header", "3\nA\n"},
		{"bad node count", "#g\nxyz\n"},
		{"negative node count", "#g\n-1\n"},
		{"missing labels", "#g\n2\nA\n"},
		{"bad edge count", "#g\n1\nA\nnope\n"},
		{"bad edge line", "#g\n2\nA\nB\n1\n0 1 2 3\n"},
		{"bad endpoints", "#g\n2\nA\nB\n1\nx y\n"},
		{"edge out of range", "#g\n2\nA\nB\n1\n0 9\n"},
		{"truncated edges", "#g\n2\nA\nB\n2\n0 1\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := NewReader(strings.NewReader(c.in), nil)
			if _, err := r.Read(); err == nil || err == io.EOF {
				t.Fatalf("Read(%q) err = %v, want parse error", c.in, err)
			}
		})
	}
}

func TestUnderscoreIsNoLabel(t *testing.T) {
	r := NewReader(strings.NewReader("#g\n1\n_\n0\n"), nil)
	ng, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if ng.Graph.NodeLabel(0) != graph.NoLabel {
		t.Fatal("_ did not intern to NoLabel")
	}
}

func TestLabelTableName(t *testing.T) {
	tb := NewLabelTable()
	id := tb.Intern("hello")
	if tb.Name(id) != "hello" {
		t.Errorf("Name(%d) = %q", id, tb.Name(id))
	}
	if tb.Name(graph.Label(999)) != "?" {
		t.Error("unknown id should map to ?")
	}
	if tb.Name(graph.NoLabel) != "" {
		t.Error("NoLabel should map to empty string")
	}
	if tb.Size() != 2 {
		t.Errorf("Size = %d, want 2", tb.Size())
	}
}

// randomLabeled generates a random labeled graph plus its table.
func randomLabeled(seed int64) (*graph.Graph, *LabelTable) {
	rng := rand.New(rand.NewSource(seed))
	table := NewLabelTable()
	names := []string{"A", "B", "C", "D"}
	elabs := []string{"", "x", "y"}
	n := 2 + rng.Intn(20)
	b := graph.NewBuilder(n, 0)
	for i := 0; i < n; i++ {
		b.AddNode(table.Intern(names[rng.Intn(len(names))]))
	}
	m := rng.Intn(3 * n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), table.Intern(elabs[rng.Intn(len(elabs))]))
	}
	return b.MustBuild(), table
}

func TestQuickWriteReadRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		g, table := randomLabeled(seed)
		var buf bytes.Buffer
		if err := Write(&buf, "g", g, table); err != nil {
			return false
		}
		r := NewReader(&buf, table)
		ng, err := r.Read()
		if err != nil {
			return false
		}
		g2 := ng.Graph
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			return false
		}
		for v := int32(0); v < int32(g.NumNodes()); v++ {
			if g.NodeLabel(v) != g2.NodeLabel(v) {
				return false
			}
		}
		e1, e2 := g.Edges(), g2.Edges()
		for i := range e1 {
			if e1[i] != e2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteMultipleSections(t *testing.T) {
	g1, table := randomLabeled(1)
	g2, _ := randomLabeled(2)
	var buf bytes.Buffer
	if err := Write(&buf, "one", g1, table); err != nil {
		t.Fatal(err)
	}
	if err := Write(&buf, "two", g2, table); err != nil {
		t.Fatal(err)
	}
	gs, err := NewReader(&buf, table).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 2 || gs[0].Name != "one" || gs[1].Name != "two" {
		t.Fatalf("sections wrong: %+v", gs)
	}
}

func TestSpell(t *testing.T) {
	tb := NewLabelTable()
	id := tb.Intern("foo")
	if tb.Spell(id) != "foo" {
		t.Errorf("Spell(interned) = %q", tb.Spell(id))
	}
	if tb.Spell(graph.Label(77)) != "77" {
		t.Errorf("Spell(unknown) = %q, want decimal fallback", tb.Spell(graph.Label(77)))
	}
	if tb.Spell(graph.NoLabel) != "" {
		t.Errorf("Spell(NoLabel) = %q", tb.Spell(graph.NoLabel))
	}
}

// TestWriteNumericLabelsRoundTrip covers graphs built programmatically
// with labels never interned into the table (the sgegen case).
func TestWriteNumericLabelsRoundTrip(t *testing.T) {
	b := graph.NewBuilder(2, 1)
	b.AddNode(graph.Label(31))
	b.AddNode(graph.Label(31))
	b.AddEdge(0, 1, graph.Label(5))
	g := b.MustBuild()
	table := NewLabelTable()
	var buf bytes.Buffer
	if err := Write(&buf, "num", g, table); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "31") || !strings.Contains(buf.String(), "0 1 5") {
		t.Fatalf("numeric labels not spelled:\n%s", buf.String())
	}
	ng, err := NewReader(&buf, table).Read()
	if err != nil {
		t.Fatal(err)
	}
	// Both nodes keep EQUAL labels (value may differ from 31 — it is an
	// interned id for the string "31").
	if ng.Graph.NodeLabel(0) != ng.Graph.NodeLabel(1) {
		t.Fatal("equal labels diverged through round trip")
	}
}

func TestUndirectedDirective(t *testing.T) {
	// One undirected edge line must expand to both arcs; a self-loop
	// line to a single arc.
	in := "#u\n%undirected\n3\nA\nB\nA\n3\n0 1 x\n1 2\n2 2 y\n"
	gs, err := NewReader(strings.NewReader(in), nil).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	g := gs[0].Graph
	if g.NumEdges() != 5 {
		t.Fatalf("NumEdges = %d, want 5 (2+2+1)", g.NumEdges())
	}
	for _, pair := range [][2]int32{{0, 1}, {1, 0}, {1, 2}, {2, 1}, {2, 2}} {
		if !g.HasEdge(pair[0], pair[1]) {
			t.Errorf("missing arc (%d,%d)", pair[0], pair[1])
		}
	}
	// An explicit %directed directive restores the default.
	in = "#d\n%directed\n2\nA\nA\n1\n0 1\n"
	gs, err = NewReader(strings.NewReader(in), nil).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if g := gs[0].Graph; g.NumEdges() != 1 || g.HasEdge(1, 0) {
		t.Errorf("directed section got reverse arc: %v", g)
	}
	// Unknown directives are a parse error, not silently ignored.
	if _, err := NewReader(strings.NewReader("#x\n%multigraph\n0\n0\n"), nil).ReadAll(); err == nil {
		t.Error("unknown directive accepted")
	}
}

func TestWriteUndirectedRoundTrip(t *testing.T) {
	table := NewLabelTable()
	b := graph.NewBuilder(4, 8)
	for _, l := range []string{"A", "B", "A", "C"} {
		b.AddNode(table.Intern(l))
	}
	b.AddEdgeBoth(0, 1, table.Intern("x"))
	b.AddEdgeBoth(1, 2, table.Intern("y"))
	b.AddEdgeBoth(2, 3, graph.NoLabel)
	b.AddEdge(3, 3, table.Intern("x")) // self-loop: one arc
	g := b.MustBuild()

	var buf bytes.Buffer
	if err := WriteUndirected(&buf, "g", g, table); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "%undirected") {
		t.Fatalf("missing directive in output:\n%s", buf.String())
	}
	// 3 undirected lines + 1 self-loop line, not 7 arcs.
	if want := "4\n"; !strings.Contains(buf.String(), "\n"+want) {
		t.Errorf("expected edge count 4 in output:\n%s", buf.String())
	}
	gs, err := NewReader(&buf, table).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	back := gs[0].Graph
	if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: got %v, want %v", back, g)
	}
	for _, e := range g.Edges() {
		if !back.HasEdgeLabeled(e.From, e.To, e.Label) {
			t.Errorf("round trip lost arc (%d,%d,%d)", e.From, e.To, e.Label)
		}
	}

	// Asymmetric graphs are rejected rather than silently mangled.
	ab := graph.NewBuilder(2, 1)
	ab.AddNodes(2)
	ab.AddEdge(0, 1, graph.NoLabel)
	if err := WriteUndirected(io.Discard, "bad", ab.MustBuild(), table); err == nil {
		t.Error("asymmetric graph accepted")
	}
}
