package graphio

import (
	"bytes"
	"strings"
	"testing"

	"parsge/internal/graph"
)

func TestWriteDOTDirected(t *testing.T) {
	table := NewLabelTable()
	b := graph.NewBuilder(2, 1)
	b.AddNode(table.Intern("A"))
	b.AddNode(table.Intern("B"))
	b.AddEdge(0, 1, table.Intern("x"))
	g := b.MustBuild()

	var buf bytes.Buffer
	if err := WriteDOT(&buf, "g", g, table); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`digraph "g" {`,
		`n0 [label="0:A"]`,
		`n1 [label="1:B"]`,
		`n0 -> n1 [label="x"]`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "dir=none") {
		t.Error("directed edge rendered as undirected")
	}
}

func TestWriteDOTUndirectedCollapse(t *testing.T) {
	table := NewLabelTable()
	b := graph.NewBuilder(2, 2)
	b.AddNodes(2)
	b.AddEdgeBoth(0, 1, graph.NoLabel)
	g := b.MustBuild()

	var buf bytes.Buffer
	if err := WriteDOT(&buf, "u", g, table); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "->") != 1 {
		t.Fatalf("undirected edge drawn %d times, want 1:\n%s", strings.Count(out, "->"), out)
	}
	if !strings.Contains(out, "dir=none") {
		t.Errorf("collapsed edge missing dir=none:\n%s", out)
	}
}

func TestWriteDOTUnlabeledNodes(t *testing.T) {
	table := NewLabelTable()
	b := graph.NewBuilder(1, 0)
	b.AddNodes(1)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, "n", b.MustBuild(), table); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `n0 [label="0"]`) {
		t.Errorf("unlabeled node rendered wrong:\n%s", buf.String())
	}
}

func TestEscape(t *testing.T) {
	if escape(`a"b\c`) != `a\"b\\c` {
		t.Fatalf("escape = %q", escape(`a"b\c`))
	}
}
