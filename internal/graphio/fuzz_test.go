package graphio

import (
	"strings"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the parser: it must never panic,
// and any graph it does return must be structurally valid.
func FuzzReader(f *testing.F) {
	f.Add(sample)
	f.Add("#g\n1\nA\n0\n")
	f.Add("#g\n2\nA\nB\n1\n0 1 x\n")
	f.Add("#g\n-1\n")
	f.Add("#\n0\n0\n")
	f.Fuzz(func(t *testing.T, in string) {
		r := NewReader(strings.NewReader(in), nil)
		for i := 0; i < 8; i++ { // bounded: sections can repeat
			ng, err := r.Read()
			if err != nil {
				return
			}
			g := ng.Graph
			for v := int32(0); v < int32(g.NumNodes()); v++ {
				for _, w := range g.OutNeighbors(v) {
					if w < 0 || int(w) >= g.NumNodes() {
						t.Fatalf("parser produced invalid edge target %d", w)
					}
				}
			}
		}
	})
}
