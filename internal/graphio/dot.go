package graphio

import (
	"bufio"
	"fmt"
	"io"

	"parsge/internal/graph"
)

// WriteDOT serializes g in Graphviz DOT syntax for visual inspection of
// patterns and small targets (`dot -Tsvg`). Node labels become the
// displayed labels; edge labels are rendered when non-empty. Pairs of
// antiparallel same-label edges — this repository's encoding of an
// undirected edge — are collapsed into one undirected-styled edge
// (dir=none) to keep drawings readable.
func WriteDOT(w io.Writer, name string, g *graph.Graph, table *LabelTable) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n", name)
	fmt.Fprintln(bw, "  node [shape=circle, fontsize=10];")
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		lab := table.Spell(g.NodeLabel(v))
		if lab == "" {
			fmt.Fprintf(bw, "  n%d [label=\"%d\"];\n", v, v)
		} else {
			fmt.Fprintf(bw, "  n%d [label=\"%d:%s\"];\n", v, v, escape(lab))
		}
	}
	type key struct {
		u, v int32
		l    graph.Label
	}
	drawn := make(map[key]bool)
	for _, e := range g.Edges() {
		k := key{e.From, e.To, e.Label}
		if drawn[k] {
			continue // parallel duplicate: draw once
		}
		attrs := ""
		if lab := table.Spell(e.Label); lab != "" {
			attrs = fmt.Sprintf(" [label=%q]", escape(lab))
		}
		// Collapse with the reverse edge when present and not yet drawn.
		rev := key{e.To, e.From, e.Label}
		if e.From != e.To && !drawn[rev] && g.HasEdgeLabeled(e.To, e.From, e.Label) {
			drawn[rev] = true
			if attrs == "" {
				attrs = " [dir=none]"
			} else {
				attrs = attrs[:len(attrs)-1] + ", dir=none]"
			}
		}
		drawn[k] = true
		fmt.Fprintf(bw, "  n%d -> n%d%s;\n", e.From, e.To, attrs)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// escape makes a string safe inside a DOT double-quoted id.
func escape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '"' || s[i] == '\\' {
			out = append(out, '\\')
		}
		out = append(out, s[i])
	}
	return string(out)
}
