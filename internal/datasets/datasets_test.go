package datasets

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"parsge/internal/graph"
	"parsge/internal/graphio"
	"parsge/internal/ri"
)

// smallCfg keeps generation fast in unit tests.
var smallCfg = Config{Scale: 0.02, Seed: 1, NumPatterns: 12}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		c, err := ByName(name, smallCfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.Name != name {
			t.Errorf("name mismatch: %q vs %q", c.Name, name)
		}
		if len(c.Targets) == 0 || len(c.Patterns) == 0 {
			t.Errorf("%s: empty collection", name)
		}
	}
	if _, err := ByName("nope", smallCfg); err == nil {
		t.Error("unknown collection accepted")
	}
}

func TestDeterminism(t *testing.T) {
	a := PPIS32(smallCfg)
	b := PPIS32(smallCfg)
	if len(a.Patterns) != len(b.Patterns) {
		t.Fatal("pattern counts differ across identical configs")
	}
	for i := range a.Patterns {
		ga, gb := a.Patterns[i].Graph, b.Patterns[i].Graph
		if ga.NumNodes() != gb.NumNodes() || ga.NumEdges() != gb.NumEdges() {
			t.Fatalf("pattern %d differs between identical configs", i)
		}
	}
	for i := range a.Targets {
		if a.Targets[i].NumEdges() != b.Targets[i].NumEdges() {
			t.Fatalf("target %d differs between identical configs", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := PPIS32(Config{Scale: 0.02, Seed: 1, NumPatterns: 4})
	b := PPIS32(Config{Scale: 0.02, Seed: 2, NumPatterns: 4})
	// Edge counts are fixed by construction; compare actual adjacency.
	ta, tb := a.Targets[0], b.Targets[0]
	same := ta.NumNodes() == tb.NumNodes()
	if same {
		ea, eb := ta.Edges(), tb.Edges()
		for i := range ea {
			if ea[i] != eb[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical targets (suspicious)")
	}
}

func TestPatternsConnected(t *testing.T) {
	for _, name := range Names() {
		c, _ := ByName(name, smallCfg)
		for _, p := range c.Patterns {
			if p.Graph.NumNodes() == 0 {
				t.Fatalf("%s: empty pattern", p.Name)
			}
			if !p.Graph.ConnectedUndirected() {
				t.Errorf("%s: pattern disconnected", p.Name)
			}
		}
	}
}

// TestPatternsMatchTheirTarget: extraction guarantees ≥ 1 match — the
// core property making the synthetic collections valid RI benchmarks.
func TestPatternsMatchTheirTarget(t *testing.T) {
	for _, name := range Names() {
		c, _ := ByName(name, Config{Scale: 0.02, Seed: 3, NumPatterns: 6})
		for _, inst := range c.Instances() {
			res, err := ri.Enumerate(inst.Pattern, inst.Target,
				ri.Options{Variant: ri.VariantRIDSSIFC}, ri.RunOptions{Limit: 1})
			if err != nil {
				t.Fatal(err)
			}
			if res.Matches < 1 {
				t.Errorf("%s: extracted pattern has no match", inst.Meta.Name)
			}
		}
	}
}

func TestDensityShapes(t *testing.T) {
	ppi := Table1(PPIS32(smallCfg))
	pdbs := Table1(PDBSv1(smallCfg))
	grm := Table1(GRAEMLIN32(smallCfg))
	if pdbs.DegreeMean > 4 {
		t.Errorf("PDBSv1 degree mean %.2f, want sparse (≤4)", pdbs.DegreeMean)
	}
	if ppi.DegreeMean < 2*pdbs.DegreeMean {
		t.Errorf("PPIS32 (%.2f) should be much denser than PDBSv1 (%.2f)", ppi.DegreeMean, pdbs.DegreeMean)
	}
	if grm.DegreeMean < ppi.DegreeMean {
		t.Errorf("GRAEMLIN32 (%.2f) should be denser than PPIS32 (%.2f)", grm.DegreeMean, ppi.DegreeMean)
	}
	// Heavy tail: PPI σ should exceed its mean (paper: σ ≈ 2.2 µ).
	if ppi.DegreeSD < ppi.DegreeMean {
		t.Errorf("PPIS32 degree σ=%.2f < µ=%.2f: tail not heavy enough", ppi.DegreeSD, ppi.DegreeMean)
	}
	if pdbs.DegreeSD > 2*pdbs.DegreeMean {
		t.Errorf("PDBSv1 degree σ=%.2f too large for molecular graphs", pdbs.DegreeSD)
	}
}

func TestTable1Bounds(t *testing.T) {
	row := Table1(PDBSv1(smallCfg))
	if row.MinNodes > row.MaxNodes || row.MinEdges > row.MaxEdges {
		t.Fatalf("bounds inverted: %+v", row)
	}
	if row.NumTargets != 30 {
		t.Errorf("PDBSv1 targets = %d, want 30", row.NumTargets)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		nodes, edges int
		want         DensityClass
	}{
		{10, 5, Sparse},
		{10, 13, SemiDense},
		{10, 20, Dense},
		{0, 0, Sparse},
	}
	for _, c := range cases {
		if got := Classify(c.nodes, c.edges); got != c.want {
			t.Errorf("Classify(%d,%d) = %v, want %v", c.nodes, c.edges, got, c.want)
		}
	}
	if Sparse.String() != "sparse" || Dense.String() != "dense" || SemiDense.String() != "semi-dense" {
		t.Error("DensityClass names wrong")
	}
	if DensityClass(9).String() == "" {
		t.Error("unknown class should still render")
	}
}

func TestInstancesWiring(t *testing.T) {
	c := GRAEMLIN32(smallCfg)
	insts := c.Instances()
	if len(insts) != len(c.Patterns) {
		t.Fatalf("instances = %d, patterns = %d", len(insts), len(c.Patterns))
	}
	for i, inst := range insts {
		if inst.Index != i || inst.Collection != "GRAEMLIN32" {
			t.Fatalf("instance %d mis-wired: %+v", i, inst)
		}
		if inst.Target != c.Targets[inst.Meta.TargetIndex] {
			t.Fatal("instance target does not match pattern provenance")
		}
	}
}

func TestPatternEdgeTargets(t *testing.T) {
	c := PPIS32(Config{Scale: 0.05, Seed: 5, NumPatterns: 30})
	for _, p := range c.Patterns {
		und := p.Graph.NumEdges() / 2
		if und == 0 {
			t.Fatalf("%s: pattern has no edges", p.Name)
		}
		// Extraction may stop early in tiny components but must never
		// exceed the requested class by much.
		if und > p.WantEdges+p.WantEdges/2 {
			t.Errorf("%s: %d edges for class %d", p.Name, und, p.WantEdges)
		}
	}
}

func TestQuickScaledCollectionsSane(t *testing.T) {
	f := func(seedRaw uint32) bool {
		cfg := Config{Scale: 0.015, Seed: int64(seedRaw), NumPatterns: 3, NumTargets: 2}
		for _, name := range Names() {
			c, err := ByName(name, cfg)
			if err != nil {
				return false
			}
			for _, tgt := range c.Targets {
				if tgt.NumNodes() < 1 || tgt.NumEdges() == 0 {
					return false
				}
			}
			for _, p := range c.Patterns {
				if p.Graph.NumNodes() > c.Targets[p.TargetIndex].NumNodes() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGeneratePPIS32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		PPIS32(Config{Scale: 0.02, Seed: int64(i), NumPatterns: 10})
	}
}

// TestUndirectedRoundTrip: every generated graph is symmetric by
// construction (both arcs per undirected edge), so the compact
// %undirected serialization must round-trip it exactly — same node
// labels and same edge multiset — at half the edge-line count. This is
// the reader path sgegen-produced files now take.
func TestUndirectedRoundTrip(t *testing.T) {
	for _, name := range Names() {
		c, err := ByName(name, Config{Scale: 0.012, Seed: 3, NumPatterns: 6, NumTargets: 2})
		if err != nil {
			t.Fatal(err)
		}
		graphs := append([]*graph.Graph(nil), c.Targets...)
		for _, p := range c.Patterns {
			graphs = append(graphs, p.Graph)
		}
		table := graphio.NewLabelTable()
		var buf bytes.Buffer
		for i, g := range graphs {
			if !g.Symmetric() {
				t.Fatalf("%s graph %d not symmetric", name, i)
			}
			if err := graphio.WriteUndirected(&buf, fmt.Sprintf("g%03d", i), g, table); err != nil {
				t.Fatalf("%s graph %d: %v", name, i, err)
			}
		}
		back, err := graphio.NewReader(bytes.NewReader(buf.Bytes()), table).ReadAll()
		if err != nil {
			t.Fatalf("%s: reread: %v", name, err)
		}
		if len(back) != len(graphs) {
			t.Fatalf("%s: %d sections back, want %d", name, len(back), len(graphs))
		}
		// Numeric labels are re-interned on reread (graphio.Spell), so
		// round-tripping preserves label *equivalence*, not label ids:
		// the original→reread mapping must be a bijection consistent
		// across the whole collection (the table is shared).
		fwd := map[graph.Label]graph.Label{}
		rev := map[graph.Label]graph.Label{}
		mapLabel := func(where string, orig, got graph.Label) {
			if prev, ok := fwd[orig]; ok && prev != got {
				t.Fatalf("%s %s: label %d reread inconsistently (%d vs %d)", name, where, orig, prev, got)
			}
			if prev, ok := rev[got]; ok && prev != orig {
				t.Fatalf("%s %s: labels %d and %d collapsed onto %d", name, where, prev, orig, got)
			}
			fwd[orig], rev[got] = got, orig
		}
		for i, g := range graphs {
			got := back[i].Graph
			if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
				t.Fatalf("%s graph %d: round-trip changed size: n=%d→%d m=%d→%d",
					name, i, g.NumNodes(), got.NumNodes(), g.NumEdges(), got.NumEdges())
			}
			for v := int32(0); v < int32(g.NumNodes()); v++ {
				mapLabel(fmt.Sprintf("graph %d node %d", i, v), g.NodeLabel(v), got.NodeLabel(v))
			}
			want := g.Edges()
			have := got.Edges()
			sortEdges(want)
			sortEdges(have)
			for k := range want {
				if want[k].From != have[k].From || want[k].To != have[k].To {
					t.Fatalf("%s graph %d: edge %d differs after round-trip: %v vs %v",
						name, i, k, want[k], have[k])
				}
				mapLabel(fmt.Sprintf("graph %d edge %d", i, k), want[k].Label, have[k].Label)
			}
		}
	}
}

// sortEdges orders an edge slice canonically for comparison.
func sortEdges(es []graph.Edge) {
	sort.Slice(es, func(a, b int) bool {
		if es[a].From != es[b].From {
			return es[a].From < es[b].From
		}
		if es[a].To != es[b].To {
			return es[a].To < es[b].To
		}
		return es[a].Label < es[b].Label
	})
}
