// Package datasets synthesizes stand-ins for the three biochemical data
// collections of the paper's evaluation (Kimmig et al. §5.1, Table 1):
//
//	PPIS32     — 10 large, dense protein-protein interaction networks,
//	             32 node labels with a normal (Gaussian) distribution,
//	             heavy-tailed degrees (Table 1: µ=27.38, σ=60.88);
//	GRAEMLIN32 — 10 medium/large dense microbial networks, 32 uniformly
//	             distributed labels (µ=55.41, σ=88.74);
//	PDBSv1     — 30 large sparse RNA/DNA/protein molecular graphs
//	             (µ=3.06, σ=2.67).
//
// The original .gff files from the RI distribution are not
// redistributable, so each generator reproduces the *shape* that drives
// the algorithms: node/edge scale, degree distribution (Chung–Lu heavy
// tail for the PPI-like sets, tree-plus-chords for the molecular set),
// label alphabet and label distribution. Pattern graphs are extracted as
// connected subgraphs of the targets with 4–256 edges and classified
// dense / semi-dense / sparse, exactly like the original collections
// (which were produced the same way) — guaranteeing every instance has
// at least one match. Everything is deterministic in Config.Seed.
//
// All graphs are undirected in nature and encoded, as throughout this
// repository, with both directed arcs per undirected edge.
package datasets

import (
	"fmt"
	"math"
	"math/rand"

	"parsge/internal/graph"
)

// DensityClass is the paper's pattern taxonomy (§5.1).
type DensityClass int

const (
	// Sparse patterns have fewer than 1.2 undirected edges per node.
	Sparse DensityClass = iota
	// SemiDense patterns have between 1.2 and 1.8 edges per node.
	SemiDense
	// Dense patterns have at least 1.8 edges per node.
	Dense
)

// String names the class as in the paper.
func (d DensityClass) String() string {
	switch d {
	case Sparse:
		return "sparse"
	case SemiDense:
		return "semi-dense"
	case Dense:
		return "dense"
	default:
		return fmt.Sprintf("DensityClass(%d)", int(d))
	}
}

// Classify assigns the density class from undirected edge and node counts.
func Classify(nodes, edges int) DensityClass {
	if nodes == 0 {
		return Sparse
	}
	ratio := float64(edges) / float64(nodes)
	switch {
	case ratio >= 1.8:
		return Dense
	case ratio >= 1.2:
		return SemiDense
	default:
		return Sparse
	}
}

// Pattern is one query graph with its provenance metadata.
type Pattern struct {
	// Graph is the pattern graph.
	Graph *graph.Graph
	// TargetIndex is the collection target it was extracted from (and
	// is benchmarked against).
	TargetIndex int
	// WantEdges is the nominal undirected edge count class (4, 8, ...).
	WantEdges int
	// Class is the density classification.
	Class DensityClass
	// Name identifies the pattern for reports ("ppis32-p0017-e32-dense").
	Name string
}

// Collection bundles targets and patterns.
type Collection struct {
	Name     string
	Targets  []*graph.Graph
	Patterns []Pattern
}

// Instance is one benchmark unit: a pattern matched against its target.
type Instance struct {
	Collection string
	Index      int
	Pattern    *graph.Graph
	Target     *graph.Graph
	Meta       Pattern
}

// Instances expands the collection into its benchmark instances.
func (c *Collection) Instances() []Instance {
	out := make([]Instance, len(c.Patterns))
	for i, p := range c.Patterns {
		out[i] = Instance{
			Collection: c.Name,
			Index:      i,
			Pattern:    p.Graph,
			Target:     c.Targets[p.TargetIndex],
			Meta:       p,
		}
	}
	return out
}

// Config scales and seeds generation.
type Config struct {
	// Scale multiplies the paper's node counts; 1.0 reproduces Table 1
	// sizes. The experiment harness defaults to a much smaller scale so
	// that full sweeps finish on one machine. Values ≤ 0 mean 1.0.
	Scale float64
	// Seed makes generation deterministic. Two configs with equal seeds
	// and scales produce identical collections.
	Seed int64
	// NumTargets overrides the number of target graphs (0 = paper's).
	NumTargets int
	// NumPatterns overrides the number of patterns (0 = a scaled count).
	NumPatterns int
}

func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 1.0
	}
	return c.Scale
}

// patternEdgeClasses are the paper's pattern sizes (§5.1). Scaled-down
// collections cap the list so patterns stay smaller than their targets.
var patternEdgeClasses = []int{4, 8, 16, 32, 64, 128, 256}

// ByName builds a collection from its paper name.
func ByName(name string, cfg Config) (*Collection, error) {
	switch name {
	case "PPIS32", "ppis32":
		return PPIS32(cfg), nil
	case "GRAEMLIN32", "graemlin32":
		return GRAEMLIN32(cfg), nil
	case "PDBSv1", "pdbsv1":
		return PDBSv1(cfg), nil
	default:
		return nil, fmt.Errorf("datasets: unknown collection %q (want PPIS32, GRAEMLIN32 or PDBSv1)", name)
	}
}

// Names lists the available collections.
func Names() []string { return []string{"PPIS32", "GRAEMLIN32", "PDBSv1"} }

// PPIS32 generates the dense PPI-like collection: 10 targets between
// 5 720 and 12 575 nodes (scaled), Chung–Lu heavy-tail degrees around
// mean 27, 32 normally-distributed labels.
func PPIS32(cfg Config) *Collection {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x50504953))
	s := cfg.scale()
	numTargets := cfg.NumTargets
	if numTargets == 0 {
		numTargets = 10
	}
	c := &Collection{Name: "PPIS32"}
	for i := 0; i < numTargets; i++ {
		n := scaledSize(5720, 12575, i, numTargets, s)
		meanDeg := 14.0 // undirected; total degree ≈ 28, matching Table 1
		c.Targets = append(c.Targets, chungLu(rng, n, meanDeg, 1.1, normalLabels(32)))
	}
	addPatterns(rng, c, patternCount(cfg, 420), normalLabels(32))
	return c
}

// GRAEMLIN32 generates the microbial-network-like collection: 10 targets
// between 1 081 and 6 726 nodes, mean total degree ≈ 55, 32 uniform
// labels.
func GRAEMLIN32(cfg Config) *Collection {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x4752414D))
	s := cfg.scale()
	numTargets := cfg.NumTargets
	if numTargets == 0 {
		numTargets = 10
	}
	c := &Collection{Name: "GRAEMLIN32"}
	for i := 0; i < numTargets; i++ {
		n := scaledSize(1081, 6726, i, numTargets, s)
		c.Targets = append(c.Targets, chungLu(rng, n, 28.0, 1.0, uniformLabels(32)))
	}
	addPatterns(rng, c, patternCount(cfg, 420), uniformLabels(32))
	return c
}

// PDBSv1 generates the sparse molecular collection: 30 targets between
// 240 and 33 067 nodes, tree-plus-chords structure with mean total degree
// ≈ 3, 8 uniform labels (atom-type-like alphabet).
func PDBSv1(cfg Config) *Collection {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x50444253))
	s := cfg.scale()
	numTargets := cfg.NumTargets
	if numTargets == 0 {
		numTargets = 30
	}
	c := &Collection{Name: "PDBSv1"}
	for i := 0; i < numTargets; i++ {
		n := scaledSize(240, 33067, i, numTargets, s)
		c.Targets = append(c.Targets, molecular(rng, n, uniformLabels(8)))
	}
	addPatterns(rng, c, patternCount(cfg, 1760), uniformLabels(8))
	return c
}

// patternCount scales the paper's pattern counts down with the same
// factor as the graphs, with a floor that keeps experiments meaningful.
func patternCount(cfg Config, paper int) int {
	if cfg.NumPatterns > 0 {
		return cfg.NumPatterns
	}
	n := int(float64(paper) * cfg.scale())
	if n < 21 {
		n = 21
	}
	if n > paper {
		n = paper
	}
	return n
}

// scaledSize interpolates target sizes geometrically between the paper's
// min and max, applies the scale factor and enforces a small floor.
func scaledSize(min, max, i, total int, scale float64) int {
	if total == 1 {
		return clampSize(int(float64(max) * scale))
	}
	f := float64(i) / float64(total-1)
	n := float64(min) * math.Pow(float64(max)/float64(min), f)
	return clampSize(int(n * scale))
}

func clampSize(n int) int {
	if n < 40 {
		return 40
	}
	return n
}

// labelFn draws a node label.
type labelFn func(rng *rand.Rand) graph.Label

// normalLabels approximates the "normal (Gaussian) distribution" label
// assignment of the PPI collections: labels cluster around the middle of
// the alphabet, making some labels far more frequent than others.
func normalLabels(k int) labelFn {
	return func(rng *rand.Rand) graph.Label {
		x := int(float64(k)/2 + rng.NormFloat64()*float64(k)/6)
		if x < 0 {
			x = 0
		}
		if x >= k {
			x = k - 1
		}
		return graph.Label(x)
	}
}

// uniformLabels draws labels uniformly from [0, k).
func uniformLabels(k int) labelFn {
	return func(rng *rand.Rand) graph.Label {
		return graph.Label(rng.Intn(k))
	}
}

// chungLu samples an undirected graph with expected mean degree meanDeg
// and a lognormal weight distribution (sigma controls tail heaviness —
// the paper's PPI collections have degree σ ≈ 2× µ). Self-loops and
// duplicate edges are rejected.
func chungLu(rng *rand.Rand, n int, meanDeg, sigma float64, lab labelFn) *graph.Graph {
	weights := make([]float64, n)
	var sum float64
	for i := range weights {
		weights[i] = math.Exp(rng.NormFloat64() * sigma)
		sum += weights[i]
	}
	cum := make([]float64, n)
	acc := 0.0
	for i, w := range weights {
		acc += w
		cum[i] = acc
	}
	pick := func() int32 {
		x := rng.Float64() * sum
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return int32(lo)
	}

	wantEdges := int(float64(n) * meanDeg / 2)
	b := graph.NewBuilder(n, 2*wantEdges)
	for i := 0; i < n; i++ {
		b.AddNode(lab(rng))
	}
	seen := make(map[int64]bool, wantEdges)
	attempts := 0
	for added := 0; added < wantEdges && attempts < 20*wantEdges; attempts++ {
		u, v := pick(), pick()
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := int64(u)<<32 | int64(v)
		if seen[key] {
			continue
		}
		seen[key] = true
		b.AddEdgeBoth(u, v, graph.NoLabel)
		added++
	}
	return b.MustBuild()
}

// molecular builds a sparse, highly self-similar graph the way RNA/DNA/
// protein graphs are: a small monomer motif (a labeled tree with a
// chord) repeated along a backbone, plus a few random cross-links. The
// repetition is what makes real PDBSv1 instances hard — a pattern
// extracted from one region recurs at every repetition, so enumeration
// explores a combinatorial number of partial embeddings. Mean total
// degree stays ≈ 3 with small variance, like Table 1.
func molecular(rng *rand.Rand, n int, lab labelFn) *graph.Graph {
	const monomer = 8
	// Random monomer shape, fixed for this target: a tree over
	// [0, monomer) plus one chord, with per-position labels.
	parent := make([]int, monomer)
	for i := 1; i < monomer; i++ {
		lo := i - 3
		if lo < 0 {
			lo = 0
		}
		parent[i] = lo + rng.Intn(i-lo)
	}
	chordA, chordB := rng.Intn(monomer), rng.Intn(monomer)
	labels := make([]graph.Label, monomer)
	for i := range labels {
		labels[i] = lab(rng)
	}

	reps := (n + monomer - 1) / monomer
	total := reps * monomer
	b := graph.NewBuilder(total, 3*total)
	for r := 0; r < reps; r++ {
		for i := 0; i < monomer; i++ {
			b.AddNode(labels[i])
		}
		base := int32(r * monomer)
		for i := 1; i < monomer; i++ {
			b.AddEdgeBoth(base+int32(parent[i]), base+int32(i), graph.NoLabel)
		}
		if chordA != chordB && !b.HasEdgePending(base+int32(chordA), base+int32(chordB)) {
			b.AddEdgeBoth(base+int32(chordA), base+int32(chordB), graph.NoLabel)
		}
		if r > 0 {
			// Backbone link between consecutive monomers, always at the
			// same positions — preserving translational symmetry.
			b.AddEdgeBoth(base-int32(monomer), base, graph.NoLabel)
		}
	}
	// Sparse random cross-links (~2% of nodes) break perfect symmetry a
	// little, as disulfide bridges and base pairing do.
	for k := 0; k < total/50; k++ {
		u := int32(rng.Intn(total))
		v := int32(rng.Intn(total))
		if u != v && !b.HasEdgePending(u, v) {
			b.AddEdgeBoth(u, v, graph.NoLabel)
		}
	}
	return b.MustBuild()
}

// addPatterns extracts count patterns from the collection's targets,
// cycling through the paper's edge-count classes and targets. Pattern
// node labels are inherited from the target (extraction), so every
// pattern matches its target at least once. Edge classes are capped per
// source target (a 4-edge pattern from a tiny molecular graph, a
// 128-edge one from a large target), as in the original collections.
func addPatterns(rng *rand.Rand, c *Collection, count int, _ labelFn) {
	perTarget := make([][]int, len(c.Targets))
	for t, tgt := range c.Targets {
		perTarget[t] = usableEdgeClasses(tgt.NumEdges() / 2)
	}
	for i := 0; i < count; i++ {
		tIdx := i % len(c.Targets)
		classes := perTarget[tIdx]
		want := classes[i%len(classes)]
		gp := extractByEdges(rng, c.Targets[tIdx], want)
		und := gp.NumEdges() / 2
		p := Pattern{
			Graph:       gp,
			TargetIndex: tIdx,
			WantEdges:   want,
			Class:       Classify(gp.NumNodes(), und),
		}
		p.Name = fmt.Sprintf("%s-p%04d-e%d-%s", c.Name, i, want, p.Class)
		c.Patterns = append(c.Patterns, p)
	}
}

// usableEdgeClasses drops pattern sizes that would not fit a target with
// the given undirected edge count.
func usableEdgeClasses(targetEdges int) []int {
	var out []int
	for _, e := range patternEdgeClasses {
		if e*4 <= targetEdges {
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		out = []int{4}
	}
	return out
}

// extractByEdges grows a connected subgraph of gt until it contains
// roughly want undirected edges: starting from a random node, it
// repeatedly adopts a random incident edge of the current node set,
// importing the far endpoint when new.
func extractByEdges(rng *rand.Rand, gt *graph.Graph, want int) *graph.Graph {
	start := int32(rng.Intn(gt.NumNodes()))
	nodes := []int32{start}
	index := map[int32]int32{start: 0}
	type und struct{ a, b int32 } // target ids, a < b
	chosen := make(map[und]bool)

	for len(chosen) < want {
		v := nodes[rng.Intn(len(nodes))]
		adj := gt.OutNeighbors(v)
		if len(adj) == 0 {
			break
		}
		w := adj[rng.Intn(len(adj))]
		a, bb := v, w
		if a > bb {
			a, bb = bb, a
		}
		e := und{a, bb}
		if chosen[e] {
			// Densify: also try adopting an edge between two already
			// chosen nodes to reach dense classes.
			progress := false
			for _, u := range gt.OutNeighbors(v) {
				if _, ok := index[u]; ok && u != v {
					x, y := v, u
					if x > y {
						x, y = y, x
					}
					if !chosen[und{x, y}] {
						chosen[und{x, y}] = true
						progress = true
						break
					}
				}
			}
			if !progress && len(chosen) > 0 && rng.Intn(8) == 0 {
				break // stuck in a tiny component
			}
			continue
		}
		chosen[e] = true
		if _, ok := index[w]; !ok {
			index[w] = int32(len(nodes))
			nodes = append(nodes, w)
		}
	}

	b := graph.NewBuilder(len(nodes), 2*len(chosen))
	for _, tv := range nodes {
		b.AddNode(gt.NodeLabel(tv))
	}
	for e := range chosen {
		b.AddEdgeBoth(index[e.a], index[e.b], graph.NoLabel)
	}
	return b.MustBuild()
}

// Table1Row summarizes a collection like the paper's Table 1.
type Table1Row struct {
	Name                 string
	MinNodes, MaxNodes   int
	MinEdges, MaxEdges   int // undirected edge counts
	DegreeMean, DegreeSD float64
	NumTargets           int
	NumPatterns          int
}

// Table1 computes the summary row of a collection. Degree statistics are
// undirected (half the stored total degree), matching the paper's
// convention.
func Table1(c *Collection) Table1Row {
	row := Table1Row{
		Name:        c.Name,
		MinNodes:    int(^uint(0) >> 1),
		MinEdges:    int(^uint(0) >> 1),
		NumTargets:  len(c.Targets),
		NumPatterns: len(c.Patterns),
	}
	var allDeg []float64
	for _, t := range c.Targets {
		n, m := t.NumNodes(), t.NumEdges()/2
		if n < row.MinNodes {
			row.MinNodes = n
		}
		if n > row.MaxNodes {
			row.MaxNodes = n
		}
		if m < row.MinEdges {
			row.MinEdges = m
		}
		if m > row.MaxEdges {
			row.MaxEdges = m
		}
		for v := int32(0); v < int32(n); v++ {
			allDeg = append(allDeg, float64(t.Degree(v))/2)
		}
	}
	row.DegreeMean = mean(allDeg)
	row.DegreeSD = stddev(allDeg, row.DegreeMean)
	return row
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func stddev(xs []float64, m float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}
