package ri

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"parsge/internal/domain"
	"parsge/internal/graph"
	"parsge/internal/order"
	"parsge/internal/testutil"
)

var allVariants = []Variant{VariantRI, VariantRIDS, VariantRIDSSI, VariantRIDSSIFC}

func mustEnumerate(t *testing.T, gp, gt *graph.Graph, v Variant, run RunOptions) Result {
	t.Helper()
	res, err := Enumerate(gp, gt, Options{Variant: v}, run)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// trianglePair builds a directed triangle pattern and a target containing
// exactly two triangles sharing no vertices.
func trianglePair() (gp, gt *graph.Graph) {
	bp := &graph.Builder{}
	bp.AddNodes(3)
	bp.AddEdge(0, 1, 0)
	bp.AddEdge(1, 2, 0)
	bp.AddEdge(2, 0, 0)
	gp = bp.MustBuild()

	bt := &graph.Builder{}
	bt.AddNodes(6)
	for _, base := range []int32{0, 3} {
		bt.AddEdge(base, base+1, 0)
		bt.AddEdge(base+1, base+2, 0)
		bt.AddEdge(base+2, base, 0)
	}
	gt = bt.MustBuild()
	return gp, gt
}

func TestTriangles(t *testing.T) {
	gp, gt := trianglePair()
	// Each directed triangle matches in 3 rotations; two triangles → 6.
	for _, v := range allVariants {
		res := mustEnumerate(t, gp, gt, v, RunOptions{})
		if res.Matches != 6 {
			t.Errorf("%v: matches = %d, want 6", v, res.Matches)
		}
		if res.States <= 0 {
			t.Errorf("%v: search visited no states", v)
		}
	}
}

func TestEmptyPattern(t *testing.T) {
	gp := (&graph.Builder{}).MustBuild()
	bt := &graph.Builder{}
	bt.AddNodes(3)
	gt := bt.MustBuild()
	for _, v := range allVariants {
		res := mustEnumerate(t, gp, gt, v, RunOptions{})
		if res.Matches != 0 {
			t.Errorf("%v: empty pattern yielded %d matches", v, res.Matches)
		}
	}
}

func TestPatternLargerThanTarget(t *testing.T) {
	bp := &graph.Builder{}
	bp.AddNodes(4)
	bp.AddEdgeBoth(0, 1, 0)
	bp.AddEdgeBoth(1, 2, 0)
	bp.AddEdgeBoth(2, 3, 0)
	gp := bp.MustBuild()
	bt := &graph.Builder{}
	bt.AddNodes(2)
	bt.AddEdgeBoth(0, 1, 0)
	gt := bt.MustBuild()
	for _, v := range allVariants {
		if res := mustEnumerate(t, gp, gt, v, RunOptions{}); res.Matches != 0 {
			t.Errorf("%v: impossible instance yielded %d matches", v, res.Matches)
		}
	}
}

func TestNodeLabelsRespected(t *testing.T) {
	bp := &graph.Builder{}
	bp.AddNode(1)
	bp.AddNode(2)
	bp.AddEdge(0, 1, 0)
	gp := bp.MustBuild()

	bt := &graph.Builder{}
	bt.AddNode(1)
	bt.AddNode(2)
	bt.AddNode(2)
	bt.AddEdge(0, 1, 0) // label-compatible
	bt.AddEdge(1, 2, 0) // 1 has label 2, pattern wants 1→2
	gt := bt.MustBuild()
	for _, v := range allVariants {
		if res := mustEnumerate(t, gp, gt, v, RunOptions{}); res.Matches != 1 {
			t.Errorf("%v: matches = %d, want 1", v, res.Matches)
		}
	}
}

func TestEdgeLabelsRespected(t *testing.T) {
	bp := &graph.Builder{}
	bp.AddNodes(2)
	bp.AddEdge(0, 1, 5)
	gp := bp.MustBuild()

	bt := &graph.Builder{}
	bt.AddNodes(3)
	bt.AddEdge(0, 1, 5)
	bt.AddEdge(1, 2, 6)
	gt := bt.MustBuild()
	for _, v := range allVariants {
		if res := mustEnumerate(t, gp, gt, v, RunOptions{}); res.Matches != 1 {
			t.Errorf("%v: matches = %d, want 1", v, res.Matches)
		}
	}
}

func TestDirectionality(t *testing.T) {
	// Pattern 0→1 must not match target 1→0 only.
	bp := &graph.Builder{}
	bp.AddNodes(2)
	bp.AddEdge(0, 1, 0)
	gp := bp.MustBuild()
	bt := &graph.Builder{}
	bt.AddNodes(2)
	bt.AddEdge(1, 0, 0)
	gt := bt.MustBuild()
	for _, v := range allVariants {
		if res := mustEnumerate(t, gp, gt, v, RunOptions{}); res.Matches != 1 {
			// (0,1)→(1,0) is the single valid mapping.
			t.Errorf("%v: matches = %d, want 1", v, res.Matches)
		}
	}
}

func TestNonInducedSemantics(t *testing.T) {
	// Pattern path 0→1→2; target triangle has the extra edge 2→0, which
	// must NOT disqualify the match (non-induced enumeration).
	bp := &graph.Builder{}
	bp.AddNodes(3)
	bp.AddEdge(0, 1, 0)
	bp.AddEdge(1, 2, 0)
	gp := bp.MustBuild()
	bt := &graph.Builder{}
	bt.AddNodes(3)
	bt.AddEdge(0, 1, 0)
	bt.AddEdge(1, 2, 0)
	bt.AddEdge(2, 0, 0)
	gt := bt.MustBuild()
	want := testutil.BruteCount(gp, gt) // 3 rotations
	for _, v := range allVariants {
		if res := mustEnumerate(t, gp, gt, v, RunOptions{}); res.Matches != want {
			t.Errorf("%v: matches = %d, want %d", v, res.Matches, want)
		}
	}
}

func TestVisitCallback(t *testing.T) {
	gp, gt := trianglePair()
	var seen [][]int32
	res := mustEnumerate(t, gp, gt, VariantRI, RunOptions{
		Visit: func(m []int32) bool {
			cp := append([]int32(nil), m...)
			seen = append(seen, cp)
			return true
		},
	})
	if int64(len(seen)) != res.Matches {
		t.Fatalf("callback called %d times for %d matches", len(seen), res.Matches)
	}
	// Each mapping must be a valid injective, edge-preserving map.
	for _, m := range seen {
		usedT := map[int32]bool{}
		for _, vt := range m {
			if usedT[vt] {
				t.Fatal("mapping not injective")
			}
			usedT[vt] = true
		}
		for _, e := range gp.Edges() {
			if !gt.HasEdgeLabeled(m[e.From], m[e.To], e.Label) {
				t.Fatalf("mapping %v does not preserve edge %v", m, e)
			}
		}
	}
}

func TestVisitStop(t *testing.T) {
	gp, gt := trianglePair()
	calls := 0
	res := mustEnumerate(t, gp, gt, VariantRI, RunOptions{
		Visit: func([]int32) bool {
			calls++
			return calls < 2
		},
	})
	if calls != 2 {
		t.Fatalf("visit called %d times, want 2", calls)
	}
	if res.Matches != 2 {
		t.Fatalf("Matches = %d, want 2 (stopped)", res.Matches)
	}
}

func TestLimit(t *testing.T) {
	gp, gt := trianglePair()
	res := mustEnumerate(t, gp, gt, VariantRIDS, RunOptions{Limit: 3})
	if res.Matches != 3 {
		t.Fatalf("Matches = %d, want 3", res.Matches)
	}
}

func TestCancel(t *testing.T) {
	gp, gt := trianglePair()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before starting: Run aborts before any search
	res := mustEnumerate(t, gp, gt, VariantRI, RunOptions{Ctx: ctx})
	if !res.Aborted {
		t.Fatal("pre-cancelled context did not abort the run")
	}
	if res.Matches != 0 {
		t.Fatalf("aborted-before-start run found %d matches", res.Matches)
	}
	// An already-expired ctx must not disturb a fresh run's results.
	res = mustEnumerate(t, gp, gt, VariantRI, RunOptions{Ctx: context.Background()})
	if res.Aborted || res.Matches != 6 {
		t.Fatalf("background ctx run: aborted=%v matches=%d", res.Aborted, res.Matches)
	}
}

func TestArenaReuse(t *testing.T) {
	gp, gt := trianglePair()
	arena := NewArena(gt.NumNodes())
	for i := 0; i < 3; i++ {
		res := mustEnumerate(t, gp, gt, VariantRI, RunOptions{Arena: arena})
		if res.Matches != 6 {
			t.Fatalf("run %d with arena: %d matches, want 6", i, res.Matches)
		}
	}
	// A mis-sized arena is ignored, not trusted.
	res := mustEnumerate(t, gp, gt, VariantRI, RunOptions{Arena: NewArena(1)})
	if res.Matches != 6 {
		t.Fatalf("mis-sized arena run: %d matches, want 6", res.Matches)
	}
	// Early-stopped runs (Limit) must still return the buffer clean.
	lim := mustEnumerate(t, gp, gt, VariantRI, RunOptions{Arena: arena, Limit: 1})
	if lim.Matches != 1 {
		t.Fatalf("limit run: %d matches", lim.Matches)
	}
	u := arena.AcquireUsed()
	for i, b := range u {
		if b {
			t.Fatalf("arena buffer returned dirty at %d", i)
		}
	}
	arena.ReleaseUsed(u)
}

func TestTargetIndexAgrees(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		gp, gt := testutil.RandomInstance(seed, testutil.InstanceOptions{
			TargetNodes: 40, TargetEdges: 160, PatternNodes: 4,
			NodeLabels: 3, Extract: seed%2 == 0,
		})
		ix := domain.NewIndex(gt)
		for _, v := range allVariants {
			plain := mustEnumerate(t, gp, gt, v, RunOptions{})
			res, err := Enumerate(gp, gt, Options{Variant: v, TargetIndex: ix}, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Matches != plain.Matches {
				t.Fatalf("seed %d %v: indexed %d matches, plain %d", seed, v, res.Matches, plain.Matches)
			}
		}
	}
}

func TestUnsatisfiableByDomains(t *testing.T) {
	bp := &graph.Builder{}
	bp.AddNode(9) // label that does not occur in the target
	gp := bp.MustBuild()
	bt := &graph.Builder{}
	bt.AddNode(1)
	gt := bt.MustBuild()
	res := mustEnumerate(t, gp, gt, VariantRIDS, RunOptions{})
	if !res.Unsatisfiable || res.Matches != 0 || res.States != 0 {
		t.Fatalf("expected unsat shortcut, got %+v", res)
	}
}

func TestVariantString(t *testing.T) {
	names := map[Variant]string{
		VariantRI:       "RI",
		VariantRIDS:     "RI-DS",
		VariantRIDSSI:   "RI-DS-SI",
		VariantRIDSSIFC: "RI-DS-SI-FC",
		Variant(42):     "Variant(42)",
	}
	for v, want := range names {
		if v.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(v), v.String(), want)
		}
	}
}

func TestDisconnectedPattern(t *testing.T) {
	// Two disjoint edges as pattern; target has three disjoint edges.
	bp := &graph.Builder{}
	bp.AddNodes(4)
	bp.AddEdge(0, 1, 0)
	bp.AddEdge(2, 3, 0)
	gp := bp.MustBuild()
	bt := &graph.Builder{}
	bt.AddNodes(6)
	bt.AddEdge(0, 1, 0)
	bt.AddEdge(2, 3, 0)
	bt.AddEdge(4, 5, 0)
	gt := bt.MustBuild()
	want := testutil.BruteCount(gp, gt) // 3*2 = 6 ordered pairs of distinct edges
	for _, v := range allVariants {
		if res := mustEnumerate(t, gp, gt, v, RunOptions{}); res.Matches != want {
			t.Errorf("%v: matches = %d, want %d", v, res.Matches, want)
		}
	}
}

// TestQuickAllVariantsAgreeWithBruteForce is the central cross-validation:
// on random instances (both extracted-subgraph and independent patterns),
// every variant must produce exactly the brute-force match count.
func TestQuickAllVariantsAgreeWithBruteForce(t *testing.T) {
	f := func(seed int64, extract bool) bool {
		gp, gt := testutil.RandomInstance(seed, testutil.InstanceOptions{
			TargetNodes:  10,
			TargetEdges:  35,
			PatternNodes: 4,
			Extract:      extract,
		})
		want := testutil.BruteCount(gp, gt)
		for _, v := range allVariants {
			res, err := Enumerate(gp, gt, Options{Variant: v}, RunOptions{})
			if err != nil || res.Matches != want {
				t.Logf("seed=%d extract=%v variant=%v got=%d want=%d err=%v",
					seed, extract, v, res.Matches, want, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickExtractedAlwaysMatches: extracted patterns must match at least
// once — this validates the generator as much as the engine.
func TestQuickExtractedAlwaysMatches(t *testing.T) {
	f := func(seed int64) bool {
		gp, gt := testutil.RandomInstance(seed, testutil.InstanceOptions{
			TargetNodes:  14,
			TargetEdges:  50,
			PatternNodes: 5,
			Extract:      true,
		})
		res, err := Enumerate(gp, gt, Options{Variant: VariantRIDSSIFC}, RunOptions{Limit: 1})
		return err == nil && res.Matches >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickImprovementsNeverExpandSearch: SI and FC must not *increase*
// match counts, and FC's search space must not exceed RI-DS-SI's on the
// same instance (it only removes candidates).
func TestQuickSearchSpaceShrinks(t *testing.T) {
	f := func(seed int64) bool {
		gp, gt := testutil.RandomInstance(seed, testutil.InstanceOptions{
			TargetNodes:  12,
			TargetEdges:  45,
			PatternNodes: 5,
			Extract:      true,
		})
		ds, err1 := Enumerate(gp, gt, Options{Variant: VariantRIDS}, RunOptions{})
		fc, err2 := Enumerate(gp, gt, Options{Variant: VariantRIDSSIFC}, RunOptions{})
		if err1 != nil || err2 != nil {
			return false
		}
		return ds.Matches == fc.Matches
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPreparedReuse(t *testing.T) {
	gp, gt := trianglePair()
	p, err := Prepare(gp, gt, Options{Variant: VariantRIDS})
	if err != nil {
		t.Fatal(err)
	}
	r1 := p.Run(RunOptions{})
	r2 := p.Run(RunOptions{})
	if r1.Matches != r2.Matches || r1.States != r2.States {
		t.Fatalf("re-running a Prepared instance differs: %+v vs %+v", r1, r2)
	}
}

func TestTotalTime(t *testing.T) {
	r := Result{PreprocTime: 2, MatchTime: 3}
	if r.TotalTime() != 5 {
		t.Fatal("TotalTime wrong")
	}
}

func BenchmarkSequentialRI(b *testing.B) {
	gp, gt := testutil.RandomInstance(11, testutil.InstanceOptions{
		TargetNodes:  60,
		TargetEdges:  400,
		PatternNodes: 6,
		Extract:      true,
	})
	p, err := Prepare(gp, gt, Options{Variant: VariantRI})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Run(RunOptions{})
	}
}

func BenchmarkSequentialRIDSSIFC(b *testing.B) {
	gp, gt := testutil.RandomInstance(11, testutil.InstanceOptions{
		TargetNodes:  60,
		TargetEdges:  400,
		PatternNodes: 6,
		Extract:      true,
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Enumerate(gp, gt, Options{Variant: VariantRIDSSIFC}, RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestMatchTimeRecorded guards against the named-return/defer pitfall
// that once reported zero match times.
func TestMatchTimeRecorded(t *testing.T) {
	gp, gt := testutil.RandomInstance(17, testutil.InstanceOptions{
		TargetNodes: 80, TargetEdges: 600, PatternNodes: 6, Extract: true,
	})
	res, err := Enumerate(gp, gt, Options{Variant: VariantRI}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MatchTime <= 0 {
		t.Fatalf("MatchTime not recorded: %v", res.MatchTime)
	}
}

func TestSelfLoops(t *testing.T) {
	// Pattern: one node with a self-loop pointing into a second node.
	bp := &graph.Builder{}
	bp.AddNodes(2)
	bp.AddEdge(0, 0, 3)
	bp.AddEdge(0, 1, 0)
	gp := bp.MustBuild()

	// Target: node 0 has the labeled self-loop, node 2 has a wrongly
	// labeled one, node 3 has none.
	bt := &graph.Builder{}
	bt.AddNodes(4)
	bt.AddEdge(0, 0, 3)
	bt.AddEdge(0, 1, 0)
	bt.AddEdge(2, 2, 9)
	bt.AddEdge(2, 1, 0)
	bt.AddEdge(3, 1, 0)
	gt := bt.MustBuild()

	want := testutil.BruteCount(gp, gt)
	if want != 1 {
		t.Fatalf("brute force self-loop count = %d, want 1", want)
	}
	for _, v := range allVariants {
		if res := mustEnumerate(t, gp, gt, v, RunOptions{}); res.Matches != want {
			t.Errorf("%v: self-loop matches = %d, want %d", v, res.Matches, want)
		}
	}
}

// TestQuickSelfLoopInstances cross-validates on random instances that
// include self-loops, which the default generators avoid.
func TestQuickSelfLoopInstances(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nt := 6 + rng.Intn(6)
		bt := &graph.Builder{}
		for i := 0; i < nt; i++ {
			bt.AddNode(graph.Label(rng.Intn(2)))
		}
		for i := 0; i < 3*nt; i++ {
			bt.AddEdge(int32(rng.Intn(nt)), int32(rng.Intn(nt)), graph.Label(rng.Intn(2)))
		}
		gt := bt.MustBuild()

		np := 2 + rng.Intn(3)
		bp := &graph.Builder{}
		for i := 0; i < np; i++ {
			bp.AddNode(graph.Label(rng.Intn(2)))
		}
		for i := 1; i < np; i++ {
			bp.AddEdge(int32(rng.Intn(i)), int32(i), graph.Label(rng.Intn(2)))
		}
		// Sprinkle self-loops.
		for i := 0; i < np; i++ {
			if rng.Intn(2) == 0 {
				bp.AddEdge(int32(i), int32(i), graph.Label(rng.Intn(2)))
			}
		}
		gp := bp.MustBuild()

		want := testutil.BruteCount(gp, gt)
		for _, v := range allVariants {
			res, err := Enumerate(gp, gt, Options{Variant: v}, RunOptions{})
			if err != nil || res.Matches != want {
				t.Logf("seed=%d variant=%v got=%d want=%d", seed, v, res.Matches, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInducedTriangleVsPath(t *testing.T) {
	// Pattern path 0→1→2. Target triangle: non-induced finds 3 rotations,
	// induced finds none (the extra closing edge violates a non-edge).
	bp := &graph.Builder{}
	bp.AddNodes(3)
	bp.AddEdge(0, 1, 0)
	bp.AddEdge(1, 2, 0)
	gp := bp.MustBuild()
	bt := &graph.Builder{}
	bt.AddNodes(3)
	bt.AddEdge(0, 1, 0)
	bt.AddEdge(1, 2, 0)
	bt.AddEdge(2, 0, 0)
	gt := bt.MustBuild()
	for _, v := range allVariants {
		nonInd, err := Enumerate(gp, gt, Options{Variant: v}, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ind, err := Enumerate(gp, gt, Options{Variant: v, Semantics: graph.InducedIso}, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if nonInd.Matches != 3 || ind.Matches != 0 {
			t.Errorf("%v: non-induced=%d (want 3), induced=%d (want 0)", v, nonInd.Matches, ind.Matches)
		}
	}
}

func TestInducedSelfLoopExcluded(t *testing.T) {
	// Pattern: single node, no self-loop. Target: one plain node, one
	// node with a self-loop. Induced excludes the looped node.
	bp := &graph.Builder{}
	bp.AddNodes(1)
	gp := bp.MustBuild()
	bt := &graph.Builder{}
	bt.AddNodes(2)
	bt.AddEdge(1, 1, 0)
	gt := bt.MustBuild()
	res, err := Enumerate(gp, gt, Options{Variant: VariantRI, Semantics: graph.InducedIso}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 1 {
		t.Fatalf("induced matches = %d, want 1", res.Matches)
	}
}

// TestQuickInducedAgreesWithBruteForce cross-validates induced mode,
// sequentially and in parallel, on random instances.
func TestQuickInducedAgreesWithBruteForce(t *testing.T) {
	f := func(seed int64, nasty bool) bool {
		gp, gt := testutil.RandomInstance(seed, testutil.InstanceOptions{
			TargetNodes:  9,
			TargetEdges:  30,
			PatternNodes: 4,
			Nasty:        nasty,
		})
		want := testutil.BruteCountInduced(gp, gt)
		for _, v := range allVariants {
			res, err := Enumerate(gp, gt, Options{Variant: v, Semantics: graph.InducedIso}, RunOptions{})
			if err != nil || res.Matches != want {
				t.Logf("seed=%d nasty=%v variant=%v got=%d want=%d", seed, nasty, v, res.Matches, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestInducedSubsetOfNonInduced: induced matches are a subset.
func TestQuickInducedSubset(t *testing.T) {
	f := func(seed int64) bool {
		gp, gt := testutil.RandomInstance(seed, testutil.InstanceOptions{
			TargetNodes: 12, TargetEdges: 40, PatternNodes: 4, Extract: true,
		})
		ind, err1 := Enumerate(gp, gt, Options{Variant: VariantRIDS, Semantics: graph.InducedIso}, RunOptions{})
		non, err2 := Enumerate(gp, gt, Options{Variant: VariantRIDS}, RunOptions{})
		return err1 == nil && err2 == nil && ind.Matches <= non.Matches
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestDepthStatesProfile(t *testing.T) {
	gp, gt := trianglePair()
	res := mustEnumerate(t, gp, gt, VariantRI, RunOptions{})
	if len(res.DepthStates) != 3 {
		t.Fatalf("DepthStates length = %d, want 3", len(res.DepthStates))
	}
	var sum int64
	for _, c := range res.DepthStates {
		sum += c
	}
	if sum != res.States {
		t.Fatalf("depth profile sums to %d, States = %d", sum, res.States)
	}
	if res.DepthStates[0] != int64(gt.NumNodes()) {
		t.Errorf("root depth visited %d states, want %d (all target nodes)", res.DepthStates[0], gt.NumNodes())
	}
}

// TestOrderStrategyCorrectness: the ordering strategy changes the search
// space, never the result.
func TestOrderStrategyCorrectness(t *testing.T) {
	gp, gt := testutil.RandomInstance(31, testutil.InstanceOptions{
		TargetNodes: 30, TargetEdges: 150, PatternNodes: 5, Extract: true,
	})
	gcf, err := Enumerate(gp, gt, Options{Variant: VariantRI}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	deg, err := Enumerate(gp, gt, Options{Variant: VariantRI, OrderStrategy: order.DegreeOnly}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if gcf.Matches != deg.Matches {
		t.Fatalf("orderings disagree: GCF %d vs degree-only %d", gcf.Matches, deg.Matches)
	}
}

// TestQuickHomomorphismAgreesWithBruteForce cross-validates the
// non-injective semantics against the oracle for every variant: the
// used-set, degree pruning and forward checking must all be disabled
// consistently or counts drift.
func TestQuickHomomorphismAgreesWithBruteForce(t *testing.T) {
	f := func(seed int64, nasty bool) bool {
		gp, gt := testutil.RandomInstance(seed, testutil.InstanceOptions{
			TargetNodes:  8,
			TargetEdges:  22,
			PatternNodes: 4,
			Nasty:        nasty,
		})
		want := testutil.BruteCountSem(gp, gt, graph.Homomorphism)
		for _, v := range allVariants {
			res, err := Enumerate(gp, gt, Options{Variant: v, Semantics: graph.Homomorphism}, RunOptions{})
			if err != nil || res.Matches != want {
				t.Logf("seed=%d nasty=%v variant=%v got=%d want=%d", seed, nasty, v, res.Matches, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestHomomorphismSharedImage: homs into the single undirected edge K2
// are exactly proper 2-colorings, so the odd cycle C3 has none and the
// even cycle C4 has two.
func TestHomomorphismSharedImage(t *testing.T) {
	edge := func() *graph.Graph {
		b := &graph.Builder{}
		b.AddNodes(2)
		b.AddEdge(0, 1, 0)
		b.AddEdge(1, 0, 0)
		return b.MustBuild()
	}
	cycle := func(n int) *graph.Graph {
		b := &graph.Builder{}
		b.AddNodes(n)
		for i := 0; i < n; i++ {
			b.AddEdge(int32(i), int32((i+1)%n), 0)
			b.AddEdge(int32((i+1)%n), int32(i), 0)
		}
		return b.MustBuild()
	}
	res, err := Enumerate(cycle(3), edge(), Options{Semantics: graph.Homomorphism}, RunOptions{})
	if err != nil || res.Matches != 0 {
		t.Fatalf("C3 -> K2 homs = %d, %v; want 0 (odd cycle)", res.Matches, err)
	}
	res, err = Enumerate(cycle(4), edge(), Options{Semantics: graph.Homomorphism}, RunOptions{})
	if err != nil || res.Matches != 2 {
		t.Fatalf("C4 -> K2 homs = %d, %v; want 2 (proper 2-colorings)", res.Matches, err)
	}
}
