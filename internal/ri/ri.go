// Package ri implements the sequential RI family of subgraph enumeration
// algorithms from Bonnici et al. (BMC Bioinformatics 2013), including the
// RI-DS dense-graph variant and the two improvements contributed by
// Kimmig, Meyerhenke and Strash: domain-size tie-breaking in the static
// node ordering (RI-DS-SI, §4.2.1) and forward checking of singleton
// domains (RI-DS-SI-FC, §4.2.2).
//
// The search is a depth-first traversal of the state space tree (§2.2.1):
// pattern nodes are visited in a static order computed before the search;
// each state extends the partial mapping M by one (pattern node, target
// node) pair, validated by a set of increasingly expensive consistency
// rules. No expensive inference runs during the search — RI trades a
// larger search space for much faster state transitions.
//
// The package splits preprocessing (Prepare: ordering + domains + back
// edges) from the search (Run) so that the parallel engine in
// internal/parallel can reuse the exact same preprocessing and
// feasibility rules while scheduling states onto workers itself.
package ri

import (
	"context"
	"fmt"
	"sync"
	"time"

	"parsge/internal/bitset"
	"parsge/internal/domain"
	"parsge/internal/graph"
	"parsge/internal/order"
)

// Variant selects the algorithm configuration.
type Variant int

const (
	// VariantRI is plain RI: no domains, root candidates are all target
	// nodes. The paper uses it for sparse collections (PDBSv1).
	VariantRI Variant = iota
	// VariantRIDS precomputes candidate domains per pattern node and
	// hoists singleton domains to the front of the ordering (§4.1).
	VariantRIDS
	// VariantRIDSSI adds domain-size tie-breaking to the node ordering
	// (§4.2.1).
	VariantRIDSSI
	// VariantRIDSSIFC additionally forward-checks singleton domains
	// (§4.2.2). This is the paper's best variant on dense collections.
	VariantRIDSSIFC
)

// String returns the paper's name for the variant.
func (v Variant) String() string {
	switch v {
	case VariantRI:
		return "RI"
	case VariantRIDS:
		return "RI-DS"
	case VariantRIDSSI:
		return "RI-DS-SI"
	case VariantRIDSSIFC:
		return "RI-DS-SI-FC"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// UsesDomains reports whether the variant precomputes domains.
func (v Variant) UsesDomains() bool { return v != VariantRI }

// Options configures Prepare.
type Options struct {
	Variant Variant
	// ACPasses bounds arc-consistency sweeps (0 = fixpoint); forwarded
	// to domain.Compute for the DS variants.
	ACPasses int
	// SkipAC disables arc consistency (ablation only).
	SkipAC bool
	// SkipNLF disables the neighborhood-label-frequency domain filter
	// (ablation and differential testing); see domain.Options.SkipNLF.
	SkipNLF bool
	// SkipInducedAC disables the induced non-edge domain propagation
	// (ablation and differential testing); see
	// domain.Options.SkipInducedAC.
	SkipInducedAC bool
	// Schedule selects the preprocessing filter plan for the DS
	// variants: the zero value, domain.ScheduleAuto, adapts the filters
	// to the target's statistics (see domain.AutoTune) while
	// domain.ScheduleFixed runs the full fixed pipeline. Explicit
	// ACPasses/Skip* knobs are respected under both. The chosen plan is
	// recorded in Prepared.PreprocStats.
	Schedule domain.Schedule
	// Kernel selects the candidate-intersection implementation of the
	// feasibility hot path (and of domain propagation): the zero value,
	// domain.KernelAuto, picks bitset adjacency rows whenever the target
	// fits graph.DenseRowLimit; KernelBitset/KernelSlice force one side
	// (the differential battery and the kernel ablation run both).
	Kernel domain.Kernel
	// Semantics selects the matching semantics; the zero value
	// (graph.SemanticsUnset) normalizes to the paper's non-induced
	// subgraph isomorphism (§2.1). InducedIso adds per-direction
	// non-edge checks; Homomorphism drops injectivity (no used-set) and
	// degree-based pruning. An extension beyond the paper.
	Semantics graph.Semantics
	// OrderStrategy overrides the node-ordering ranking rule (ablation:
	// order.DegreeOnly vs the default GreatestConstraintFirst).
	OrderStrategy order.Strategy
	// TargetIndex, when non-nil and built for the same target graph,
	// supplies precomputed label→node buckets: domain computation scans
	// only matching buckets, and the plain-RI variant draws root (and
	// parentless-position) candidates from the root label's bucket
	// instead of the whole vertex set. Queries sharing one target build
	// it once (see the parsge.Target session API).
	TargetIndex *domain.Index
}

// RunOptions configures a single search over a Prepared instance.
type RunOptions struct {
	// Limit stops the search after this many matches (0 = enumerate all).
	Limit int64
	// Visit, when non-nil, is called for every match with the mapping
	// indexed by pattern node id (mapping[v_p] = v_t). The slice is
	// reused between calls; copy it to retain. Returning false stops
	// the search.
	Visit func(mapping []int32) bool
	// Ctx, when non-nil, cooperatively aborts the search soon after the
	// context is cancelled. The done channel is polled at the same low
	// frequency the previous atomic-flag design used (every
	// cancelCheckMask+1 states), so the hot loop stays flat; time limits
	// are a context.WithTimeout at the caller.
	Ctx context.Context
	// Arena, when non-nil and sized for the same target, supplies the
	// target-sized scratch (the used-set) from a reusable pool instead
	// of allocating per run.
	Arena *Arena
}

// Result reports one search run.
type Result struct {
	// Matches is the number of isomorphic subgraphs found.
	Matches int64
	// States is the number of search states visited (candidate
	// extensions checked) — the paper's "search space size".
	States int64
	// DepthStates breaks States down by ordering position: the search
	// profile. Highly irregular instances show most states concentrated
	// at a few depths — the load-balancing challenge of §3.
	DepthStates []int64
	// PreprocTime is the time spent computing domains and the ordering.
	PreprocTime time.Duration
	// MatchTime is the time spent enumerating.
	MatchTime time.Duration
	// Aborted reports whether Cancel stopped the search early.
	Aborted bool
	// Unsatisfiable reports that preprocessing proved zero matches
	// (empty or conflicting domains) without any search.
	Unsatisfiable bool
}

// TotalTime returns preprocessing plus matching time, the paper's "total
// time" metric (Figs 9-11).
func (r Result) TotalTime() time.Duration { return r.PreprocTime + r.MatchTime }

// backEdge records a pattern edge from the node at some position to a
// node at an earlier position; the search validates all of them for every
// candidate ("introducing additional constraints as early as possible").
// Under the bitset kernel each back edge is pre-bound to the adjacency
// rows that answer it (mode/rows), so the hot loop is a single word
// indexed bit test instead of a binary search over the CSR.
type backEdge struct {
	pos   int32       // earlier ordering position
	label graph.Label // required edge label
	out   bool        // true: pattern edge (current → earlier); false: (earlier → current)
	mode  uint8       // row binding, see the row* constants
	// rows is indexed by the candidate target node vt: under rowExact
	// the per-(direction, label) rows, under rowPrefilter the direction
	// rows. rows[vt].Test(w) asks "does the required arc exist?" (exact)
	// or "does any arc exist?" (prefilter).
	rows []*bitset.Set
}

const (
	// rowNone: no BitGraph rows (slice kernel or target above
	// graph.DenseRowLimit) — the CSR HasEdgeLabeled path.
	rowNone uint8 = iota
	// rowExact: per-label rows are built and the edge's label is in the
	// target alphabet; the bit test is the whole check.
	rowExact
	// rowAbsent: per-label rows are built but the edge's label never
	// occurs in the target — no candidate can satisfy this position.
	rowAbsent
	// rowPrefilter: only direction rows exist; a row miss is definitive,
	// a row hit still confirms the edge label against the CSR.
	rowPrefilter
)

// Prepared is the immutable product of preprocessing: everything the
// sequential and parallel searches share. It is safe for concurrent use
// once built.
type Prepared struct {
	Pattern *graph.Graph
	Target  *graph.Graph
	Variant Variant
	// Sem is the matching semantics every search over this instance
	// enumerates under; the parallel engine inherits it through the
	// shared Feasible rules, so it never needs its own semantics switch.
	Sem graph.Semantics

	Ord  *order.Ordering
	Doms *domain.Domains // nil for VariantRI
	// Idx is the optional shared target label index (nil without one).
	Idx *domain.Index
	// rows are the target's dense bitset adjacency rows under the bitset
	// kernel (nil under the slice kernel or above graph.DenseRowLimit);
	// the back-edge and induced checks read them instead of the CSR.
	rows *graph.BitGraph

	back [][]backEdge
	// selfLoops[i] lists the labels of pattern self-loops at Seq[i]; the
	// target node must carry an equally-labeled self-loop.
	selfLoops [][]graph.Label

	// Induced-mode tables (nil otherwise): noOut[i][j] marks earlier
	// position j with NO pattern edge Seq[i]→Seq[j] (the target must
	// then lack the corresponding edge too); noIn likewise for
	// Seq[j]→Seq[i]. hasSelfLoop[i] marks a pattern self-loop at Seq[i].
	induced bool
	// injective and degPrune cache Sem.Injective() / Sem.DegreePruning()
	// for the hot loop.
	injective   bool
	degPrune    bool
	noOut, noIn [][]bool
	hasSelfLoop []bool

	// Unsat is set when domain preprocessing proved zero matches.
	Unsat bool
	// PreprocTime is the wall time Prepare took.
	PreprocTime time.Duration
	// PreprocStats reports the filter plan the scheduler resolved and
	// the per-filter timings of domain preprocessing (nil for VariantRI,
	// which computes no domains).
	PreprocStats *domain.ComputeStats
}

// Prepare runs the preprocessing phase: domain computation (DS variants),
// forward checking (FC variant), static ordering, and back-edge tables.
func Prepare(gp, gt *graph.Graph, opts Options) (*Prepared, error) {
	start := time.Now()
	if !opts.Semantics.Valid() {
		return nil, fmt.Errorf("ri: unknown semantics %d", int32(opts.Semantics))
	}
	opts.Semantics = opts.Semantics.Norm()
	// Duplicate pattern edges add no constraint under any of the
	// supported semantics but would poison the degree-based pruning
	// bounds; see graph.Simplify.
	gp = gp.Simplify()
	p := &Prepared{
		Pattern:   gp,
		Target:    gt,
		Variant:   opts.Variant,
		Sem:       opts.Semantics,
		injective: opts.Semantics.Injective(),
		degPrune:  opts.Semantics.DegreePruning(),
	}
	if ix := opts.TargetIndex; ix != nil && ix.NumNodes() == gt.NumNodes() {
		p.Idx = ix
	}

	if opts.Variant.UsesDomains() {
		dopts := domain.Options{
			ACPasses:      opts.ACPasses,
			SkipAC:        opts.SkipAC,
			SkipNLF:       opts.SkipNLF,
			SkipInducedAC: opts.SkipInducedAC,
			Index:         p.Idx,
			Kernel:        opts.Kernel,
			Semantics:     opts.Semantics,
		}
		if opts.Schedule == domain.ScheduleAuto {
			dopts = domain.AutoTune(dopts, gp, gt)
		}
		var dstats domain.ComputeStats
		p.Doms, dstats = domain.ComputeWithStats(gp, gt, dopts)
		p.PreprocStats = &dstats
		if p.Doms.AnyEmpty() {
			p.Unsat = true
		}
		// Forward checking propagates injectivity; it is skipped for
		// homomorphisms, where two pattern nodes sharing a pinned image
		// is perfectly legal.
		if !p.Unsat && opts.Variant == VariantRIDSSIFC && p.injective {
			if !p.Doms.ForwardCheck() {
				p.Unsat = true
			}
		}
	}

	if !p.Unsat && domain.ResolveKernel(opts.Kernel, gt.NumNodes()) == domain.KernelBitset {
		// Reuse the rows domain propagation built; otherwise build (or
		// fetch from the shared index's cache) the kernel layer here, so
		// plain RI and skip-AC ablations run the bitset hot path too.
		if p.PreprocStats != nil && p.PreprocStats.Rows != nil {
			p.rows = p.PreprocStats.Rows
		} else if p.Idx != nil {
			p.rows = p.Idx.Rows(gt)
		} else {
			p.rows = graph.NewBitGraph(gt)
		}
	}

	oopts := order.Options{Strategy: opts.OrderStrategy}
	if p.Doms != nil {
		oopts.DomainSizes = p.Doms.Sizes()
		oopts.DomainTieBreak = opts.Variant == VariantRIDSSI || opts.Variant == VariantRIDSSIFC
	}
	ord, err := order.Compute(gp, oopts)
	if err != nil {
		return nil, fmt.Errorf("ri: %w", err)
	}
	p.Ord = ord
	p.buildBackEdges()
	p.bindBackEdgeRows()
	if opts.Semantics.Induced() {
		p.buildInducedTables()
	}
	p.PreprocTime = time.Since(start)
	return p, nil
}

// buildInducedTables precomputes, for every ordering position, which
// earlier positions are pattern non-neighbors per direction.
func (p *Prepared) buildInducedTables() {
	p.induced = true
	n := len(p.Ord.Seq)
	p.noOut = make([][]bool, n)
	p.noIn = make([][]bool, n)
	p.hasSelfLoop = make([]bool, n)
	for i := 0; i < n; i++ {
		u := p.Ord.Seq[i]
		p.hasSelfLoop[i] = len(p.selfLoops[i]) > 0
		no, ni := make([]bool, i), make([]bool, i)
		for j := 0; j < i; j++ {
			w := p.Ord.Seq[j]
			no[j] = !p.Pattern.HasEdge(u, w)
			ni[j] = !p.Pattern.HasEdge(w, u)
		}
		p.noOut[i], p.noIn[i] = no, ni
	}
}

// buildBackEdges fills p.back: for ordering position i, all pattern edges
// between Seq[i] and earlier-ordered nodes, in both directions.
func (p *Prepared) buildBackEdges() {
	n := len(p.Ord.Seq)
	p.back = make([][]backEdge, n)
	p.selfLoops = make([][]graph.Label, n)
	for i := 0; i < n; i++ {
		u := p.Ord.Seq[i]
		var bes []backEdge
		adj := p.Pattern.OutNeighbors(u)
		labs := p.Pattern.OutEdgeLabels(u)
		for k, w := range adj {
			if w == u {
				p.selfLoops[i] = append(p.selfLoops[i], labs[k])
				continue
			}
			if wp := p.Ord.Pos[w]; wp < int32(i) {
				bes = append(bes, backEdge{pos: wp, label: labs[k], out: true})
			}
		}
		adj = p.Pattern.InNeighbors(u)
		labs = p.Pattern.InEdgeLabels(u)
		for k, w := range adj {
			if w == u {
				continue // already recorded from the out side
			}
			if wp := p.Ord.Pos[w]; wp < int32(i) {
				bes = append(bes, backEdge{pos: wp, label: labs[k], out: false})
			}
		}
		p.back[i] = bes
	}
}

// bindBackEdgeRows binds every back edge to the bitset rows that answer
// it (see the row* constants). A no-op under the slice kernel.
func (p *Prepared) bindBackEdgeRows() {
	if p.rows == nil {
		return
	}
	labelRows := p.rows.HasLabelRows()
	for i := range p.back {
		for k := range p.back[i] {
			be := &p.back[i][k]
			if labelRows {
				var rows []*bitset.Set
				if be.out {
					rows = p.rows.OutLab[be.label]
				} else {
					rows = p.rows.InLab[be.label]
				}
				if rows == nil {
					be.mode = rowAbsent
				} else {
					be.mode, be.rows = rowExact, rows
				}
				continue
			}
			if be.out {
				be.rows = p.rows.Out
			} else {
				be.rows = p.rows.In
			}
			be.mode = rowPrefilter
		}
	}
}

// NumPositions returns the depth of a complete mapping.
func (p *Prepared) NumPositions() int { return len(p.Ord.Seq) }

// Candidates returns the slice of target nodes to try at position pos
// given the target node the parent position is mapped to. It returns nil
// when pos has no parent; the caller must then use RootCandidates (RI) or
// the domain (DS variants). The slice aliases graph storage.
func (p *Prepared) Candidates(pos int, parentImage int32) []int32 {
	if p.Ord.Parent[pos] == order.NoParent {
		return nil
	}
	if p.Ord.ParentOut[pos] {
		return p.Target.OutNeighbors(parentImage)
	}
	return p.Target.InNeighbors(parentImage)
}

// ParentPos returns the ordering position of pos's parent, or
// order.NoParent.
func (p *Prepared) ParentPos(pos int) int32 { return p.Ord.Parent[pos] }

// Feasible applies RI's consistency rules for mapping the pattern node at
// ordering position pos onto target node vt, given the current partial
// mapping (indexed by position) and the used-set of target nodes. The
// rules run cheapest-first (§3.1): injectivity (skipped for
// homomorphisms), then label equality and degree bounds (subsumed by the
// domain test for DS variants; degree bounds are dropped under
// homomorphism where they are unsound), then edge existence and
// edge-label compatibility towards every already-mapped pattern
// neighbor, and finally the induced non-edge checks when Sem requires
// them.
func (p *Prepared) Feasible(pos int, vt int32, mapped []int32, used []bool) bool {
	if p.injective && used[vt] {
		return false
	}
	u := p.Ord.Seq[pos]
	if p.Doms != nil {
		if !p.Doms.Of(u).Test(int(vt)) {
			return false
		}
	} else {
		if p.Target.NodeLabel(vt) != p.Pattern.NodeLabel(u) {
			return false
		}
		if p.degPrune &&
			(p.Target.OutDegree(vt) < p.Pattern.OutDegree(u) ||
				p.Target.InDegree(vt) < p.Pattern.InDegree(u)) {
			return false
		}
	}
	for _, l := range p.selfLoops[pos] {
		if !p.Target.HasEdgeLabeled(vt, vt, l) {
			return false
		}
	}
	for i := range p.back[pos] {
		be := &p.back[pos][i]
		w := mapped[be.pos]
		switch be.mode {
		case rowExact:
			if !be.rows[vt].Test(int(w)) {
				return false
			}
			continue
		case rowAbsent:
			return false
		case rowPrefilter:
			if !be.rows[vt].Test(int(w)) {
				return false
			}
			// Some arc exists; fall through to confirm its label.
		}
		if be.out {
			if !p.Target.HasEdgeLabeled(vt, w, be.label) {
				return false
			}
		} else {
			if !p.Target.HasEdgeLabeled(w, vt, be.label) {
				return false
			}
		}
	}
	if p.induced {
		if rows := p.rows; rows != nil {
			outRow, inRow := rows.Out[vt], rows.In[vt]
			if !p.hasSelfLoop[pos] && outRow.Test(int(vt)) {
				return false
			}
			noOut, noIn := p.noOut[pos], p.noIn[pos]
			for j := 0; j < pos; j++ {
				w := int(mapped[j])
				if noOut[j] && outRow.Test(w) {
					return false
				}
				if noIn[j] && inRow.Test(w) {
					return false
				}
			}
			return true
		}
		if !p.hasSelfLoop[pos] && p.Target.HasEdge(vt, vt) {
			return false
		}
		noOut, noIn := p.noOut[pos], p.noIn[pos]
		for j := 0; j < pos; j++ {
			w := mapped[j]
			if noOut[j] && p.Target.HasEdge(vt, w) {
				return false
			}
			if noIn[j] && p.Target.HasEdge(w, vt) {
				return false
			}
		}
	}
	return true
}

// RootCandidates calls yield for every candidate target node of the first
// ordering position: the domain for DS variants ("RI-DS uses domains as
// candidates for the root node of the search space, unlike RI, which
// considers V(G_t)", §4.1), all target nodes otherwise — narrowed to the
// root label's bucket when a target index is attached. yield returning
// false stops the iteration.
func (p *Prepared) RootCandidates(yield func(vt int32) bool) {
	if p.NumPositions() == 0 {
		return
	}
	if p.Doms != nil {
		root := p.Ord.Seq[0]
		p.Doms.Of(root).ForEach(func(i int) bool { return yield(int32(i)) })
		return
	}
	p.FreeCandidates(0, yield)
}

// FreeCandidates iterates the candidate targets of an ordering position
// that has neither a mapped parent nor a domain: the label bucket of the
// shared index when available (sound because Feasible re-checks label
// equality anyway, so skipping other labels cannot lose matches), else
// every target node.
func (p *Prepared) FreeCandidates(pos int, yield func(vt int32) bool) {
	if p.Idx != nil {
		for _, vt := range p.Idx.Nodes(p.Pattern.NodeLabel(p.Ord.Seq[pos])) {
			if !yield(vt) {
				return
			}
		}
		return
	}
	for vt := int32(0); vt < int32(p.Target.NumNodes()); vt++ {
		if !yield(vt) {
			return
		}
	}
}

// Arena pools target-sized scratch buffers shared by all queries against
// one target graph, so a session serving many queries (or a batch fanned
// over many workers) does not allocate a fresh used-set per run. An Arena
// is safe for concurrent use; buffers are returned to the pool all-false.
type Arena struct {
	nt   int
	pool sync.Pool
}

// NewArena returns an arena for targets with targetNodes nodes.
func NewArena(targetNodes int) *Arena {
	a := &Arena{nt: targetNodes}
	a.pool.New = func() any { return make([]bool, targetNodes) }
	return a
}

// NumNodes returns the target size the arena was built for.
func (a *Arena) NumNodes() int { return a.nt }

// AcquireUsed returns an all-false used-set of length NumNodes.
func (a *Arena) AcquireUsed() []bool { return a.pool.Get().([]bool) }

// ReleaseUsed returns a used-set to the pool. The caller must have
// cleared every bit it set (the searches unwind theirs on backtrack).
func (a *Arena) ReleaseUsed(u []bool) { a.pool.Put(u) }

// cancelCheckMask controls how often the hot loop polls the context's
// done channel: every (mask+1) states. Power of two minus one.
const cancelCheckMask = 0x3FF

// searcher is the sequential DFS state.
type searcher struct {
	p       *Prepared
	mapped  []int32 // position → target node
	used    []bool  // target node → used
	nodeMap []int32 // pattern node id → target node (for Visit)

	states      int64
	depthStates []int64
	matches     int64

	limit   int64
	visit   func([]int32) bool
	done    <-chan struct{}
	aborted bool
	stopped bool
}

// Run executes the sequential search over the prepared instance.
func (p *Prepared) Run(opts RunOptions) (res Result) {
	res = Result{PreprocTime: p.PreprocTime, Unsatisfiable: p.Unsat}
	start := time.Now()
	defer func() { res.MatchTime = time.Since(start) }()

	if p.Unsat || p.NumPositions() == 0 {
		return res
	}
	var used []bool
	if opts.Arena != nil && opts.Arena.nt == p.Target.NumNodes() {
		used = opts.Arena.AcquireUsed()
		// The DFS unwinds every bit it sets even when stopped early, so
		// the buffer goes back all-false.
		defer opts.Arena.ReleaseUsed(used)
	} else {
		used = make([]bool, p.Target.NumNodes())
	}
	s := &searcher{
		p:           p,
		mapped:      make([]int32, p.NumPositions()),
		used:        used,
		nodeMap:     make([]int32, p.Pattern.NumNodes()),
		depthStates: make([]int64, p.NumPositions()),
		limit:       opts.Limit,
		visit:       opts.Visit,
	}
	if opts.Ctx != nil {
		s.done = opts.Ctx.Done()
		if opts.Ctx.Err() != nil {
			res.Aborted = true
			return res
		}
	}
	for i := range s.mapped {
		s.mapped[i] = -1
	}

	p.RootCandidates(func(vt int32) bool {
		s.tryExtend(0, vt)
		return !s.stopped
	})

	res.Matches = s.matches
	res.States = s.states
	res.DepthStates = s.depthStates
	res.Aborted = s.aborted
	return res
}

// tryExtend checks candidate vt at position pos and recurses on success.
func (s *searcher) tryExtend(pos int, vt int32) {
	s.states++
	s.depthStates[pos]++
	if s.states&cancelCheckMask == 0 && s.done != nil {
		select {
		case <-s.done:
			s.aborted = true
			s.stopped = true
			return
		default:
		}
	}
	if !s.p.Feasible(pos, vt, s.mapped, s.used) {
		return
	}
	s.mapped[pos] = vt
	s.used[vt] = true
	s.descend(pos + 1)
	s.used[vt] = false
	s.mapped[pos] = -1
}

// descend visits the subtree below a freshly-extended mapping of length pos.
func (s *searcher) descend(pos int) {
	if pos == s.p.NumPositions() {
		s.emit()
		return
	}
	parent := s.p.Ord.Parent[pos]
	if parent != order.NoParent {
		adj := s.p.Candidates(pos, s.mapped[parent])
		for i, vt := range adj {
			if i > 0 && adj[i-1] == vt {
				continue // parallel target edges: same candidate node
			}
			s.tryExtend(pos, vt)
			if s.stopped {
				return
			}
		}
		return
	}
	// Parentless non-root position (disconnected pattern or hoisted
	// singleton): candidates come from the domain, the label bucket, or
	// all target nodes.
	u := s.p.Ord.Seq[pos]
	if s.p.Doms != nil {
		s.p.Doms.Of(u).ForEach(func(i int) bool {
			s.tryExtend(pos, int32(i))
			return !s.stopped
		})
		return
	}
	s.p.FreeCandidates(pos, func(vt int32) bool {
		s.tryExtend(pos, vt)
		return !s.stopped
	})
}

// emit records a complete match and invokes the callback.
func (s *searcher) emit() {
	s.matches++
	if s.visit != nil {
		for i, vt := range s.mapped {
			s.nodeMap[s.p.Ord.Seq[i]] = vt
		}
		if !s.visit(s.nodeMap) {
			// A Visit stop ends the run before exhaustion: report it as
			// an abort (Matches is a lower bound), exactly like the
			// parallel engine's visitStop. A Limit stop below is not an
			// abort — the caller got everything it asked for.
			s.stopped = true
			s.aborted = true
			return
		}
	}
	if s.limit > 0 && s.matches >= s.limit {
		s.stopped = true
	}
}

// Enumerate is the convenience entry point: Prepare followed by Run.
func Enumerate(gp, gt *graph.Graph, opts Options, run RunOptions) (Result, error) {
	p, err := Prepare(gp, gt, opts)
	if err != nil {
		return Result{}, err
	}
	return p.Run(run), nil
}
