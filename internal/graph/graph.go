// Package graph provides the directed, labeled graph representation shared
// by every engine in this repository.
//
// Graphs are immutable after construction and stored in compressed sparse
// row (CSR) form with both out- and in-adjacency, each sorted by neighbor
// id. Sorted adjacency makes edge-existence checks O(log deg) and lets the
// search engines iterate neighborhoods as contiguous slices — the paper
// notes that "during search, we must iterate over relatively short
// adjacency lists, implemented as arrays" (Kimmig et al. §5.2.4), and CSR
// is the Go equivalent of that layout.
//
// Both node and edge labels are small integers (Label). Applications map
// their string labels to ids via graphio.LabelTable or by any scheme of
// their own; the engines only ever compare labels for equality (§2.1,
// "we assume strict equality for labels").
package graph

import (
	"fmt"
	"sort"
)

// Label identifies a node or edge label. Labels are compared for equality
// only. NoLabel is the zero label, used by unlabeled graphs throughout.
type Label int32

// NoLabel is the label of nodes/edges in unlabeled graphs.
const NoLabel Label = 0

// Semantics selects what "match" means for every engine in this
// repository. All semantics preserve node labels (equal labels) and map
// every pattern edge onto a label-compatible target edge of the same
// direction; they differ in injectivity and in how pattern *non*-edges
// constrain the target.
//
// The zero value is SemanticsUnset — "no semantics chosen" — so that an
// explicitly chosen SubgraphIso is distinguishable from an Options
// struct that simply left the field alone. Session defaults
// (parsge.TargetOptions.DefaultSemantics) substitute only for unset
// queries; the engines themselves normalize unset to SubgraphIso (the
// paper's semantics) via Norm, so zero-valued engine options keep their
// historical meaning.
type Semantics int32

const (
	// SemanticsUnset is the zero value: no semantics was chosen. The
	// public API resolves it against session defaults; every engine
	// normalizes it to SubgraphIso.
	SemanticsUnset Semantics = iota
	// SubgraphIso is non-induced subgraph isomorphism (subgraph
	// monomorphism), the semantics of Kimmig et al. §2.1 and the
	// library default: the mapping is injective and target edges not
	// present in the pattern are ignored.
	SubgraphIso
	// InducedIso is induced subgraph isomorphism: injective, and every
	// ordered pattern non-edge (self-loops included) must map onto a
	// target non-edge — the target may not add edges between images,
	// regardless of edge labels.
	InducedIso
	// Homomorphism drops injectivity: distinct pattern nodes may share
	// an image, so several pattern edges may map onto one target edge.
	// Degree-based pruning is unsound under this semantics and every
	// engine disables it.
	Homomorphism
)

// Norm maps SemanticsUnset to the library default, SubgraphIso, and
// returns every other value unchanged. Engines call it once at their
// entry points so the zero value of their option structs keeps meaning
// the paper's semantics.
func (s Semantics) Norm() Semantics {
	if s == SemanticsUnset {
		return SubgraphIso
	}
	return s
}

// String returns the conventional name of the semantics.
func (s Semantics) String() string {
	switch s {
	case SemanticsUnset:
		return "unset"
	case SubgraphIso:
		return "subgraph-iso"
	case InducedIso:
		return "induced-iso"
	case Homomorphism:
		return "homomorphism"
	default:
		return fmt.Sprintf("Semantics(%d)", int32(s))
	}
}

// Injective reports whether distinct pattern nodes must map to distinct
// target nodes. Engines gate their used-set checks — and every
// consequence of injectivity such as forward checking — on this.
// SemanticsUnset behaves like its normalization, SubgraphIso.
func (s Semantics) Injective() bool { return s != Homomorphism }

// Induced reports whether pattern non-edges must map to target non-edges.
func (s Semantics) Induced() bool { return s == InducedIso }

// DegreePruning reports whether "image degree ≥ pattern degree" is a
// sound filter. Under homomorphism several pattern edges may collapse
// onto one target edge, so it is not.
func (s Semantics) DegreePruning() bool { return s != Homomorphism }

// Valid reports whether s is one of the defined semantics constants
// (SemanticsUnset included — it normalizes to SubgraphIso).
func (s Semantics) Valid() bool {
	return s == SemanticsUnset || s == SubgraphIso || s == InducedIso || s == Homomorphism
}

// Graph is an immutable directed labeled graph in CSR form. Construct one
// with a Builder. The zero value is an empty graph.
type Graph struct {
	nodeLabels []Label

	outStart []int32 // len n+1; out edges of v are outAdj[outStart[v]:outStart[v+1]]
	outAdj   []int32
	outLab   []Label

	inStart []int32 // len n+1; in edges of v are inAdj[inStart[v]:inStart[v+1]]
	inAdj   []int32
	inLab   []Label

	numEdges int
}

// NumNodes returns the number of nodes. Nodes are identified by the dense
// range [0, NumNodes()).
func (g *Graph) NumNodes() int { return len(g.nodeLabels) }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return g.numEdges }

// NodeLabel returns the label of node v.
func (g *Graph) NodeLabel(v int32) Label { return g.nodeLabels[v] }

// OutDegree returns deg+(v), the number of edges leaving v.
func (g *Graph) OutDegree(v int32) int {
	return int(g.outStart[v+1] - g.outStart[v])
}

// InDegree returns deg-(v), the number of edges entering v.
func (g *Graph) InDegree(v int32) int {
	return int(g.inStart[v+1] - g.inStart[v])
}

// Degree returns the total degree deg+(v) + deg-(v). For a graph built
// with undirected edges (both directions present) this counts each
// undirected edge twice, consistently for pattern and target.
func (g *Graph) Degree(v int32) int { return g.OutDegree(v) + g.InDegree(v) }

// OutNeighbors returns the out-neighbors of v sorted ascending. The
// returned slice aliases internal storage and must not be modified.
func (g *Graph) OutNeighbors(v int32) []int32 {
	return g.outAdj[g.outStart[v]:g.outStart[v+1]]
}

// OutEdgeLabels returns labels parallel to OutNeighbors(v).
func (g *Graph) OutEdgeLabels(v int32) []Label {
	return g.outLab[g.outStart[v]:g.outStart[v+1]]
}

// InNeighbors returns the in-neighbors of v sorted ascending. The returned
// slice aliases internal storage and must not be modified.
func (g *Graph) InNeighbors(v int32) []int32 {
	return g.inAdj[g.inStart[v]:g.inStart[v+1]]
}

// InEdgeLabels returns labels parallel to InNeighbors(v).
func (g *Graph) InEdgeLabels(v int32) []Label {
	return g.inLab[g.inStart[v]:g.inStart[v+1]]
}

// HasEdge reports whether the directed edge (u, v) exists.
func (g *Graph) HasEdge(u, v int32) bool {
	_, ok := g.EdgeLabel(u, v)
	return ok
}

// EdgeLabel returns the label of edge (u, v) and whether the edge exists.
// If parallel edges were added, the label of one of them is returned.
func (g *Graph) EdgeLabel(u, v int32) (Label, bool) {
	adj := g.OutNeighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	if i < len(adj) && adj[i] == v {
		return g.OutEdgeLabels(u)[i], true
	}
	return NoLabel, false
}

// HasEdgeLabeled reports whether a directed edge (u, v) with exactly the
// given label exists. Unlike EdgeLabel it is correct in the presence of
// parallel edges carrying different labels: it scans the whole run of
// (u, v) entries in the sorted adjacency row.
func (g *Graph) HasEdgeLabeled(u, v int32, l Label) bool {
	adj := g.OutNeighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	labs := g.OutEdgeLabels(u)
	for ; i < len(adj) && adj[i] == v; i++ {
		if labs[i] == l {
			return true
		}
	}
	return false
}

// MaxNodeLabel returns the largest node label present, or NoLabel for an
// empty graph. Useful for sizing label-indexed tables.
func (g *Graph) MaxNodeLabel() Label {
	max := NoLabel
	for _, l := range g.nodeLabels {
		if l > max {
			max = l
		}
	}
	return max
}

// DegreeStats returns the mean and population standard deviation of the
// total degree, matching the µ and σ columns of the paper's Table 1.
func (g *Graph) DegreeStats() (mean, stddev float64) {
	n := g.NumNodes()
	if n == 0 {
		return 0, 0
	}
	var sum float64
	for v := int32(0); v < int32(n); v++ {
		sum += float64(g.Degree(v))
	}
	mean = sum / float64(n)
	var sq float64
	for v := int32(0); v < int32(n); v++ {
		d := float64(g.Degree(v)) - mean
		sq += d * d
	}
	return mean, sqrt(sq / float64(n))
}

// sqrt is a tiny Newton implementation so the package stays free of math
// imports in its hot path; precision is ample for reporting statistics.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z -= (z*z - x) / (2 * z)
	}
	return z
}

// Edge is an explicit directed edge, used by Builder and by graph I/O.
type Edge struct {
	From, To int32
	Label    Label
}

// Builder accumulates nodes and edges and produces an immutable Graph.
// The zero value is ready to use.
type Builder struct {
	labels []Label
	edges  []Edge
}

// NewBuilder returns a Builder pre-sized for n nodes and m edges.
func NewBuilder(n, m int) *Builder {
	return &Builder{
		labels: make([]Label, 0, n),
		edges:  make([]Edge, 0, m),
	}
}

// AddNode appends a node with the given label and returns its id.
func (b *Builder) AddNode(l Label) int32 {
	b.labels = append(b.labels, l)
	return int32(len(b.labels) - 1)
}

// AddNodes appends k unlabeled nodes and returns the id of the first.
func (b *Builder) AddNodes(k int) int32 {
	first := int32(len(b.labels))
	for i := 0; i < k; i++ {
		b.labels = append(b.labels, NoLabel)
	}
	return first
}

// NumNodes returns the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.labels) }

// NumEdges returns the number of directed edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// AddEdge adds the directed edge (u, v) with the given label. Adding an
// edge with an endpoint that has not been added yet causes Build to fail.
func (b *Builder) AddEdge(u, v int32, l Label) {
	b.edges = append(b.edges, Edge{From: u, To: v, Label: l})
}

// AddEdgeBoth adds both (u, v) and (v, u) with the same label, the usual
// encoding of an undirected edge in this code base.
func (b *Builder) AddEdgeBoth(u, v int32, l Label) {
	b.AddEdge(u, v, l)
	b.AddEdge(v, u, l)
}

// HasEdgePending reports whether edge (u,v) was already added. It is a
// linear scan intended for generators that avoid duplicate edges; the
// immutable Graph offers O(log deg) HasEdge instead.
func (b *Builder) HasEdgePending(u, v int32) bool {
	for _, e := range b.edges {
		if e.From == u && e.To == v {
			return true
		}
	}
	return false
}

// Build validates the accumulated nodes and edges and returns the
// immutable CSR graph. The Builder may be reused afterwards; the returned
// graph does not alias its storage.
func (b *Builder) Build() (*Graph, error) {
	n := int32(len(b.labels))
	for _, e := range b.edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) references missing node (n=%d)", e.From, e.To, n)
		}
	}

	g := &Graph{
		nodeLabels: append([]Label(nil), b.labels...),
		numEdges:   len(b.edges),
	}
	g.outStart, g.outAdj, g.outLab = buildCSR(b.edges, n, false)
	g.inStart, g.inAdj, g.inLab = buildCSR(b.edges, n, true)
	return g, nil
}

// MustBuild is Build for statically-known-good graphs (tests, examples).
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// buildCSR produces one direction of adjacency via counting sort over the
// source endpoint, then sorts each row by neighbor id.
func buildCSR(edges []Edge, n int32, reverse bool) ([]int32, []int32, []Label) {
	start := make([]int32, n+1)
	src := func(e Edge) int32 {
		if reverse {
			return e.To
		}
		return e.From
	}
	dst := func(e Edge) int32 {
		if reverse {
			return e.From
		}
		return e.To
	}
	for _, e := range edges {
		start[src(e)+1]++
	}
	for v := int32(0); v < n; v++ {
		start[v+1] += start[v]
	}
	adj := make([]int32, len(edges))
	lab := make([]Label, len(edges))
	next := make([]int32, n)
	copy(next, start[:n])
	for _, e := range edges {
		s := src(e)
		adj[next[s]] = dst(e)
		lab[next[s]] = e.Label
		next[s]++
	}
	for v := int32(0); v < n; v++ {
		lo, hi := start[v], start[v+1]
		row := adj[lo:hi]
		rowLab := lab[lo:hi]
		sort.Sort(&rowSorter{row, rowLab})
	}
	return start, adj, lab
}

type rowSorter struct {
	adj []int32
	lab []Label
}

func (r *rowSorter) Len() int           { return len(r.adj) }
func (r *rowSorter) Less(i, j int) bool { return r.adj[i] < r.adj[j] }
func (r *rowSorter) Swap(i, j int) {
	r.adj[i], r.adj[j] = r.adj[j], r.adj[i]
	r.lab[i], r.lab[j] = r.lab[j], r.lab[i]
}

// Edges returns all directed edges of g in out-CSR order. It allocates;
// intended for I/O and tests, not search.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.numEdges)
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		adj := g.OutNeighbors(v)
		labs := g.OutEdgeLabels(v)
		for i, w := range adj {
			out = append(out, Edge{From: v, To: w, Label: labs[i]})
		}
	}
	return out
}

// Simplify returns a graph with duplicate edges — equal (From, To,
// Label) triples — removed; nodes and labels are unchanged. If g has no
// duplicates it is returned as-is.
//
// The search engines call this on pattern graphs: under the non-induced
// edge-set semantics of subgraph enumeration (§2.1 of the paper), a
// duplicated pattern edge imposes no additional constraint on the
// target, but counting it in deg⁻/deg⁺ would make degree-based pruning
// unsound (a valid image could be rejected for having "too few" edges).
func (g *Graph) Simplify() *Graph {
	seen := make(map[Edge]bool, g.numEdges)
	dup := false
	for _, e := range g.Edges() {
		if seen[e] {
			dup = true
			break
		}
		seen[e] = true
	}
	if !dup {
		return g
	}
	b := NewBuilder(g.NumNodes(), g.numEdges)
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		b.AddNode(g.NodeLabel(v))
	}
	clear(seen)
	for _, e := range g.Edges() {
		if !seen[e] {
			seen[e] = true
			b.AddEdge(e.From, e.To, e.Label)
		}
	}
	// The node set and endpoints are unchanged, so Build cannot fail.
	return b.MustBuild()
}

// Symmetric reports whether every arc (u, v, l) has a matching reverse
// arc (v, u, l), with equal multiplicities — the property that lets the
// graph be serialized in graphio's compact %undirected form. Self-loops
// are their own reverse. It allocates; intended for I/O and tooling,
// not search.
func (g *Graph) Symmetric() bool {
	unpaired := make(map[Edge]int)
	for _, e := range g.Edges() {
		if e.From == e.To {
			continue
		}
		rev := Edge{From: e.To, To: e.From, Label: e.Label}
		if unpaired[rev] > 0 {
			unpaired[rev]--
		} else {
			unpaired[e]++
		}
	}
	for _, n := range unpaired {
		if n > 0 {
			return false
		}
	}
	return true
}

// Relabel returns the graph with node ids permuted by perm (node v of g
// becomes node perm[v]); node labels, edges and edge labels follow their
// nodes. perm must be a permutation of [0, NumNodes()). Enumeration
// counts are invariant under Relabel for every matching semantics, which
// the property tests exploit to catch ordering-dependent bugs.
func (g *Graph) Relabel(perm []int32) (*Graph, error) {
	n := g.NumNodes()
	if len(perm) != n {
		return nil, fmt.Errorf("graph: permutation has %d entries for %d nodes", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || int(p) >= n || seen[p] {
			return nil, fmt.Errorf("graph: not a permutation of [0,%d)", n)
		}
		seen[p] = true
	}
	b := NewBuilder(n, g.numEdges)
	labels := make([]Label, n)
	for v := int32(0); v < int32(n); v++ {
		labels[perm[v]] = g.NodeLabel(v)
	}
	for _, l := range labels {
		b.AddNode(l)
	}
	for _, e := range g.Edges() {
		b.AddEdge(perm[e.From], perm[e.To], e.Label)
	}
	// Permuting endpoints of a valid graph cannot fail validation.
	return b.MustBuild(), nil
}

// ConnectedUndirected reports whether g is connected when edge direction
// is ignored. Pattern extraction uses this to guarantee usable patterns.
func (g *Graph) ConnectedUndirected() bool {
	n := g.NumNodes()
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	stack := []int32{0}
	seen[0] = true
	visited := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.OutNeighbors(v) {
			if !seen[w] {
				seen[w] = true
				visited++
				stack = append(stack, w)
			}
		}
		for _, w := range g.InNeighbors(v) {
			if !seen[w] {
				seen[w] = true
				visited++
				stack = append(stack, w)
			}
		}
	}
	return visited == n
}

// String summarizes the graph for logs and test failures.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(n=%d, m=%d)", g.NumNodes(), g.NumEdges())
}
