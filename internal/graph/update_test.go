package graph

import (
	"math/rand"
	"sort"
	"testing"
)

// edgeMultiset renders a graph's edge multiset in a canonical order so
// two graphs can be compared for equality regardless of row-internal
// storage order.
func edgeMultiset(g *Graph) []Edge {
	es := g.Edges()
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Label < b.Label
	})
	return es
}

func sameEdges(t *testing.T, got, want *Graph) {
	t.Helper()
	ge, we := edgeMultiset(got), edgeMultiset(want)
	if len(ge) != len(we) {
		t.Fatalf("edge count: got %d, want %d", len(ge), len(we))
	}
	for i := range ge {
		if ge[i] != we[i] {
			t.Fatalf("edge %d: got %v, want %v", i, ge[i], we[i])
		}
	}
	if got.NumEdges() != want.NumEdges() {
		t.Fatalf("NumEdges: got %d, want %d", got.NumEdges(), want.NumEdges())
	}
}

// rebuild applies updates to the edge list by brute force and rebuilds
// via Builder — the oracle ApplyUpdates is held to.
func rebuild(t *testing.T, g *Graph, ups []EdgeUpdate) *Graph {
	t.Helper()
	edges := g.Edges()
	for _, u := range ups {
		e := Edge{From: u.From, To: u.To, Label: u.Label}
		if !u.Remove {
			edges = append(edges, e)
			continue
		}
		for i, ex := range edges {
			if ex == e {
				edges[i] = edges[len(edges)-1]
				edges = edges[:len(edges)-1]
				break
			}
		}
	}
	b := NewBuilder(g.NumNodes(), len(edges))
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		b.AddNode(g.NodeLabel(v))
	}
	for _, e := range edges {
		b.AddEdge(e.From, e.To, e.Label)
	}
	ng, err := b.Build()
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	return ng
}

func baseGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(5, 8)
	for i := 0; i < 5; i++ {
		b.AddNode(Label(i % 2))
	}
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 2)
	b.AddEdge(2, 3, 1)
	b.AddEdge(3, 4, 1)
	b.AddEdge(4, 0, 2)
	b.AddEdge(0, 0, 3) // self-loop
	b.AddEdge(0, 1, 1) // parallel duplicate of (0,1,1)
	b.AddEdge(0, 1, 2) // parallel with a different label
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestApplyUpdatesBasic(t *testing.T) {
	g := baseGraph(t)
	ups := []EdgeUpdate{
		{From: 1, To: 3, Label: 4},               // new arc
		{From: 0, To: 1, Label: 1, Remove: true}, // one of the two parallels
		{From: 2, To: 3, Label: 1, Remove: true},
	}
	g2, touched, applied, noops, err := g.ApplyUpdates(ups)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 3 || noops != 0 {
		t.Fatalf("applied=%d noops=%d, want 3/0", applied, noops)
	}
	wantTouched := []int32{0, 1, 2, 3}
	if len(touched) != len(wantTouched) {
		t.Fatalf("touched %v, want %v", touched, wantTouched)
	}
	for i := range touched {
		if touched[i] != wantTouched[i] {
			t.Fatalf("touched %v, want %v", touched, wantTouched)
		}
	}
	sameEdges(t, g2, rebuild(t, g, ups))
	// The original is untouched.
	if g.NumEdges() != 8 || !g.HasEdgeLabeled(2, 3, 1) {
		t.Fatal("ApplyUpdates mutated the receiver")
	}
	// One parallel copy of (0,1,1) must remain.
	if g2.countArcs(0, 1, 1) != 1 {
		t.Fatalf("parallel multiplicity after removal: %d, want 1", g2.countArcs(0, 1, 1))
	}
}

func TestApplyUpdatesNoopAndCancellation(t *testing.T) {
	g := baseGraph(t)

	// Removing an absent arc is a counted no-op.
	g2, touched, applied, noops, err := g.ApplyUpdates([]EdgeUpdate{
		{From: 1, To: 0, Label: 9, Remove: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g2 != g {
		t.Fatal("no-net-effect batch should return the receiver")
	}
	if len(touched) != 0 || applied != 0 || noops != 1 {
		t.Fatalf("touched=%v applied=%d noops=%d", touched, applied, noops)
	}

	// add then remove of the same triple cancels to nothing.
	g2, touched, applied, noops, err = g.ApplyUpdates([]EdgeUpdate{
		{From: 1, To: 0, Label: 9},
		{From: 1, To: 0, Label: 9, Remove: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g2 != g || len(touched) != 0 || applied != 0 || noops != 0 {
		t.Fatalf("cancelled batch: touched=%v applied=%d noops=%d same=%v", touched, applied, noops, g2 == g)
	}

	// remove then re-add restores the arc: net zero.
	g2, _, _, _, err = g.ApplyUpdates([]EdgeUpdate{
		{From: 1, To: 2, Label: 2, Remove: true},
		{From: 1, To: 2, Label: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g2 != g {
		t.Fatal("remove+re-add should cancel to the receiver")
	}

	// Removing both parallel copies works; a third removal is a no-op.
	g2, _, applied, noops, err = g.ApplyUpdates([]EdgeUpdate{
		{From: 0, To: 1, Label: 1, Remove: true},
		{From: 0, To: 1, Label: 1, Remove: true},
		{From: 0, To: 1, Label: 1, Remove: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if applied != 2 || noops != 1 {
		t.Fatalf("applied=%d noops=%d, want 2/1", applied, noops)
	}
	if g2.countArcs(0, 1, 1) != 0 || !g2.HasEdgeLabeled(0, 1, 2) {
		t.Fatal("wrong copies removed")
	}
}

func TestApplyUpdatesValidation(t *testing.T) {
	g := baseGraph(t)
	for _, bad := range []EdgeUpdate{
		{From: -1, To: 0},
		{From: 0, To: 5},
		{From: 7, To: 7, Remove: true},
	} {
		if _, _, _, _, err := g.ApplyUpdates([]EdgeUpdate{{From: 0, To: 1, Label: 9}, bad}); err == nil {
			t.Fatalf("update %+v: expected error", bad)
		}
	}
	// A failed batch must not partially apply.
	if g.countArcs(0, 1, 9) != 0 {
		t.Fatal("failed batch leaked an edge")
	}
}

func TestApplyUpdatesSelfLoops(t *testing.T) {
	g := baseGraph(t)
	ups := []EdgeUpdate{
		{From: 0, To: 0, Label: 3, Remove: true},
		{From: 2, To: 2, Label: 5},
	}
	g2, touched, _, _, err := g.ApplyUpdates(ups)
	if err != nil {
		t.Fatal(err)
	}
	if len(touched) != 2 || touched[0] != 0 || touched[1] != 2 {
		t.Fatalf("touched=%v, want [0 2]", touched)
	}
	sameEdges(t, g2, rebuild(t, g, ups))
}

// TestApplyUpdatesRandom holds ApplyUpdates to the brute-force
// edge-list oracle over random batches, including chains of batches
// (each applied to the previous incremental result).
func TestApplyUpdatesRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(7)
		b := NewBuilder(n, 0)
		for i := 0; i < n; i++ {
			b.AddNode(Label(rng.Intn(3)))
		}
		m := rng.Intn(3 * n)
		for i := 0; i < m; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), Label(rng.Intn(3)))
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		cur, oracle := g, g
		for batch := 0; batch < 4; batch++ {
			k := 1 + rng.Intn(6)
			ups := make([]EdgeUpdate, k)
			for i := range ups {
				ups[i] = EdgeUpdate{
					From:   int32(rng.Intn(n)),
					To:     int32(rng.Intn(n)),
					Label:  Label(rng.Intn(3)),
					Remove: rng.Intn(2) == 0,
				}
			}
			next, touched, _, _, err := cur.ApplyUpdates(ups)
			if err != nil {
				t.Fatal(err)
			}
			oracle = rebuild(t, oracle, ups)
			sameEdges(t, next, oracle)
			// Rows of untouched vertices are identical.
			tset := make(map[int32]bool)
			for _, v := range touched {
				tset[v] = true
			}
			for v := int32(0); v < int32(n); v++ {
				if tset[v] {
					continue
				}
				if next.OutDegree(v) != cur.OutDegree(v) || next.InDegree(v) != cur.InDegree(v) {
					t.Fatalf("trial %d: untouched node %d changed degree", trial, v)
				}
			}
			cur = next
		}
	}
}
