package graph

import (
	"fmt"
	"sort"
)

// EdgeUpdate is one mutation of a graph's edge multiset: an arc to add
// or (with Remove set) one matching arc to remove. Updates address arcs
// by their full (From, To, Label) triple; with parallel edges present,
// a removal consumes exactly one copy of the triple. Node sets and node
// labels are immutable — an update batch can rewire a graph but never
// grow or relabel it (the invariant that keeps per-node scratch arenas
// and label buckets valid across updates).
type EdgeUpdate struct {
	From, To int32
	Label    Label
	Remove   bool
}

// ApplyUpdates applies a batch of edge updates and returns the
// resulting graph, leaving g untouched (persistent-structure style: the
// two graphs share node labels and the adjacency rows of unaffected
// vertices' storage is rebuilt only where needed).
//
// The batch is applied in order with multiset semantics:
//
//   - an add always contributes one arc (parallel duplicates are legal,
//     exactly as with Builder.AddEdge) — unless it restores an arc a
//     prior update in the same batch removed, in which case the two
//     cancel;
//   - a remove first cancels a pending add of the same triple from this
//     batch, then consumes one copy present in g, and otherwise is a
//     no-op (removing an absent arc is not an error — callers replaying
//     update streams must tolerate duplicates).
//
// Returns the new graph, the sorted distinct endpoints of all arcs that
// actually changed (empty when the batch had no net effect, in which
// case the returned graph is g itself), the number of arcs added plus
// removed net of cancellation, and the number of no-op removals. An
// update referencing a node outside [0, NumNodes()) fails the whole
// batch; no partial application is visible.
func (g *Graph) ApplyUpdates(updates []EdgeUpdate) (*Graph, []int32, int, int, error) {
	n := int32(g.NumNodes())
	for i, u := range updates {
		if u.From < 0 || u.From >= n || u.To < 0 || u.To >= n {
			return nil, nil, 0, 0, fmt.Errorf("graph: update %d: edge (%d,%d) references missing node (n=%d)", i, u.From, u.To, n)
		}
	}

	adds := make(map[Edge]int)
	removes := make(map[Edge]int)
	base := make(map[Edge]int) // memoized multiplicity of the triple in g
	multiplicity := func(e Edge) int {
		if c, ok := base[e]; ok {
			return c
		}
		c := g.countArcs(e.From, e.To, e.Label)
		base[e] = c
		return c
	}
	noops := 0
	for _, u := range updates {
		e := Edge{From: u.From, To: u.To, Label: u.Label}
		if !u.Remove {
			if removes[e] > 0 {
				removes[e]-- // restores a copy removed earlier in the batch
			} else {
				adds[e]++
			}
			continue
		}
		switch {
		case adds[e] > 0:
			adds[e]-- // cancels a pending add from this batch
		case removes[e] < multiplicity(e):
			removes[e]++
		default:
			noops++ // the triple is absent: nothing to remove
		}
	}

	// Net effect per direction: which rows must be rebuilt and by how
	// much their degree changes.
	applied := 0
	outDelta := make(map[int32]int) // From endpoints (out-rows)
	inDelta := make(map[int32]int)  // To endpoints (in-rows)
	touchedSet := make(map[int32]struct{})
	for e, c := range adds {
		if c <= 0 {
			continue
		}
		applied += c
		outDelta[e.From] += c
		inDelta[e.To] += c
		touchedSet[e.From] = struct{}{}
		touchedSet[e.To] = struct{}{}
	}
	for e, c := range removes {
		if c <= 0 {
			continue
		}
		applied += c
		outDelta[e.From] -= c
		inDelta[e.To] -= c
		touchedSet[e.From] = struct{}{}
		touchedSet[e.To] = struct{}{}
	}
	if len(touchedSet) == 0 {
		return g, nil, 0, noops, nil
	}
	touched := make([]int32, 0, len(touchedSet))
	for v := range touchedSet {
		touched = append(touched, v)
	}
	sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })

	netAdds, netRems := 0, 0
	for _, c := range adds {
		netAdds += c
	}
	for _, c := range removes {
		netRems += c
	}
	g2 := &Graph{
		nodeLabels: g.nodeLabels, // immutable, shared
		numEdges:   g.numEdges + netAdds - netRems,
	}
	g2.outStart, g2.outAdj, g2.outLab = g.rebuildDirection(adds, removes, outDelta, false)
	g2.inStart, g2.inAdj, g2.inLab = g.rebuildDirection(adds, removes, inDelta, true)
	return g2, touched, applied, noops, nil
}

// countArcs returns the multiplicity of the (u, v, l) triple in g's
// edge multiset. The sorted out-row makes the (u, v) run O(log deg) to
// locate.
func (g *Graph) countArcs(u, v int32, l Label) int {
	adj := g.OutNeighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	labs := g.OutEdgeLabels(u)
	c := 0
	for ; i < len(adj) && adj[i] == v; i++ {
		if labs[i] == l {
			c++
		}
	}
	return c
}

// rebuildDirection produces one direction of the updated CSR: untouched
// rows are copied verbatim, touched rows are filtered of their removed
// arcs, extended with the added ones, and re-sorted by (neighbor id,
// edge label) — a deterministic order regardless of map iteration.
func (g *Graph) rebuildDirection(adds, removes map[Edge]int, delta map[int32]int, reverse bool) ([]int32, []int32, []Label) {
	n := int32(g.NumNodes())
	oldStart, oldAdj, oldLab := g.outStart, g.outAdj, g.outLab
	if reverse {
		oldStart, oldAdj, oldLab = g.inStart, g.inAdj, g.inLab
	}
	src := func(e Edge) int32 {
		if reverse {
			return e.To
		}
		return e.From
	}
	dst := func(e Edge) int32 {
		if reverse {
			return e.From
		}
		return e.To
	}
	// Per-row pending work, keyed by the row (source endpoint in this
	// direction).
	type rowEdit struct {
		add []Edge // arcs to append (triples, possibly repeated)
		rem map[Edge]int
	}
	edits := make(map[int32]*rowEdit, len(delta))
	editOf := func(v int32) *rowEdit {
		e := edits[v]
		if e == nil {
			e = &rowEdit{}
			edits[v] = e
		}
		return e
	}
	for e, c := range adds {
		if c <= 0 {
			continue
		}
		ed := editOf(src(e))
		for i := 0; i < c; i++ {
			ed.add = append(ed.add, e)
		}
	}
	for e, c := range removes {
		if c <= 0 {
			continue
		}
		ed := editOf(src(e))
		if ed.rem == nil {
			ed.rem = make(map[Edge]int)
		}
		ed.rem[e] = c
	}

	start := make([]int32, n+1)
	for v := int32(0); v < n; v++ {
		start[v+1] = start[v] + (oldStart[v+1] - oldStart[v]) + int32(delta[v])
	}
	adj := make([]int32, start[n])
	lab := make([]Label, start[n])
	for v := int32(0); v < n; v++ {
		lo, hi := start[v], start[v+1]
		ed := edits[v]
		if ed == nil {
			copy(adj[lo:hi], oldAdj[oldStart[v]:oldStart[v+1]])
			copy(lab[lo:hi], oldLab[oldStart[v]:oldStart[v+1]])
			continue
		}
		row := adj[lo:lo]
		rowLab := lab[lo:lo]
		for i := oldStart[v]; i < oldStart[v+1]; i++ {
			var e Edge
			if reverse {
				e = Edge{From: oldAdj[i], To: v, Label: oldLab[i]}
			} else {
				e = Edge{From: v, To: oldAdj[i], Label: oldLab[i]}
			}
			if ed.rem[e] > 0 {
				ed.rem[e]--
				continue
			}
			row = append(row, oldAdj[i])
			rowLab = append(rowLab, oldLab[i])
		}
		for _, e := range ed.add {
			row = append(row, dst(e))
			rowLab = append(rowLab, e.Label)
		}
		sort.Sort(&labeledRowSorter{row, rowLab})
	}
	return start, adj, lab
}

// labeledRowSorter orders a rebuilt row by (neighbor id, edge label):
// the neighbor order every consumer requires, with the label tiebreak
// making update application fully deterministic (buildCSR's plain
// neighbor sort leaves parallel-edge label order to sort.Sort's whims,
// which is fine for fresh builds but would make incremental and rebuilt
// graphs gratuitously diverge).
type labeledRowSorter struct {
	adj []int32
	lab []Label
}

func (r *labeledRowSorter) Len() int { return len(r.adj) }
func (r *labeledRowSorter) Less(i, j int) bool {
	if r.adj[i] != r.adj[j] {
		return r.adj[i] < r.adj[j]
	}
	return r.lab[i] < r.lab[j]
}
func (r *labeledRowSorter) Swap(i, j int) {
	r.adj[i], r.adj[j] = r.adj[j], r.adj[i]
	r.lab[i], r.lab[j] = r.lab[j], r.lab[i]
}
