package graph

import (
	"fmt"

	"parsge/internal/bitset"
)

// BitGraph is the dense bitset-adjacency kernel layer: one bitset row
// per vertex and direction, so the enumeration hot paths (back-edge
// verification, induced non-edge checks, per-direction neighborhood
// subtraction, arc-consistency support tests) become word-parallel set
// ops instead of per-neighbor binary searches. When the edge-label
// alphabet is small a per-(direction, label) row variant rides along,
// making labeled adjacency tests exact without touching the CSR.
//
// A BitGraph is immutable after construction and safe for concurrent
// readers, like the Graph it mirrors. It is a cache, not a replacement:
// rows record edge *existence* only (parallel edges collapse), which is
// exactly what the hot-path predicates ask.
type BitGraph struct {
	n int
	// Out[v] / In[v] hold the out-/in-neighbors of v (self-loops
	// included), one bit per target vertex.
	Out, In []*bitset.Set
	// OutLab[l][v] / InLab[l][v] hold the neighbors reachable over an
	// edge labeled l, built only when the edge-label alphabet has at
	// most MaxLabelRows members and n ≤ LabelRowLimit. When present the
	// maps cover the alphabet exactly: a label missing from the map has
	// no edge in the graph.
	OutLab, InLab map[Label][]*bitset.Set
}

// DenseRowLimit is the node count up to which dense bitset adjacency
// rows are built (O(n²) bits — 32 MiB per direction at the limit).
// Above it NewBitGraph returns nil and every kernel consumer falls back
// to the sorted-slice CSR paths. The census's dense-adjacency heuristic
// is this same constant (it predates the BitGraph and was lifted here).
const DenseRowLimit = 1 << 14

// LabelRowLimit is the tighter node-count bound for the per-edge-label
// row variant: label rows multiply the O(n²) bit cost by the alphabet
// size, so they stop at 2^12 nodes (2 MiB per label and direction).
const LabelRowLimit = 1 << 12

// MaxLabelRows bounds the edge-label alphabet for which per-label rows
// are built.
const MaxLabelRows = 4

// NewBitGraph builds the dense adjacency rows of g, or returns nil when
// g exceeds DenseRowLimit nodes (the sorted-slice fallback rule).
func NewBitGraph(g *Graph) *BitGraph {
	n := g.NumNodes()
	if n > DenseRowLimit {
		return nil
	}
	bg := &BitGraph{n: n, Out: make([]*bitset.Set, n), In: make([]*bitset.Set, n)}
	labels, ok := edgeLabelAlphabet(g)
	if ok && n <= LabelRowLimit {
		bg.OutLab = make(map[Label][]*bitset.Set, len(labels))
		bg.InLab = make(map[Label][]*bitset.Set, len(labels))
		for _, l := range labels {
			bg.OutLab[l] = make([]*bitset.Set, n)
			bg.InLab[l] = make([]*bitset.Set, n)
		}
	}
	for v := int32(0); v < int32(n); v++ {
		bg.buildRows(g, v)
	}
	return bg
}

// NumNodes returns the number of vertices the rows cover.
func (bg *BitGraph) NumNodes() int { return bg.n }

// HasLabelRows reports whether the per-(direction, label) variant was
// built; when true, a label absent from OutLab/InLab has no edge.
func (bg *BitGraph) HasLabelRows() bool { return bg.OutLab != nil }

// buildRows (re)builds every row of vertex v from g: the out/in
// direction rows and, when label rows are enabled, v's row under every
// label of the alphabet.
func (bg *BitGraph) buildRows(g *Graph, v int32) {
	out, in := bitset.New(bg.n), bitset.New(bg.n)
	for _, u := range g.OutNeighbors(v) {
		out.Set(int(u))
	}
	for _, u := range g.InNeighbors(v) {
		in.Set(int(u))
	}
	bg.Out[v], bg.In[v] = out, in
	if bg.OutLab == nil {
		return
	}
	for l := range bg.OutLab {
		bg.OutLab[l][v] = bitset.New(bg.n)
		bg.InLab[l][v] = bitset.New(bg.n)
	}
	outN, outL := g.OutNeighbors(v), g.OutEdgeLabels(v)
	for i, u := range outN {
		bg.OutLab[outL[i]][v].Set(int(u))
	}
	inN, inL := g.InNeighbors(v), g.InEdgeLabels(v)
	for i, u := range inN {
		bg.InLab[inL[i]][v].Set(int(u))
	}
}

// Rebuild returns a BitGraph for g2, sharing every row of bg whose
// vertex is untouched and rebuilding only the touched vertices' rows —
// the incremental-maintenance step under Target.ApplyUpdates. Both
// endpoints of every changed arc appear in touched, so per-vertex
// rebuilds cover every changed row. The label-row variant covers the
// edge-label alphabet exactly (a label absent from the maps has no
// edge), so ANY alphabet change — a new label, or a label vanishing
// with its last edge — invalidates the row structure, not just row
// contents; Rebuild recomputes the alphabet and falls back to a
// from-scratch NewBitGraph when it no longer matches (likewise on a
// node-count change). Correctness never depends on the incremental
// path, and the result is always bit-identical to a clean build of g2.
func (bg *BitGraph) Rebuild(g2 *Graph, touched []int32) *BitGraph {
	if bg == nil || g2.NumNodes() != bg.n {
		return NewBitGraph(g2)
	}
	labels, ok := edgeLabelAlphabet(g2)
	switch {
	case bg.OutLab == nil:
		// No label rows yet; a clean build of g2 would create them iff
		// its alphabet is small enough, so only that case forces one.
		if ok && bg.n <= LabelRowLimit {
			return NewBitGraph(g2)
		}
	case !ok || len(labels) != len(bg.OutLab):
		return NewBitGraph(g2)
	default:
		for _, l := range labels {
			if _, have := bg.OutLab[l]; !have {
				return NewBitGraph(g2)
			}
		}
	}
	n2 := &BitGraph{n: bg.n, Out: make([]*bitset.Set, bg.n), In: make([]*bitset.Set, bg.n)}
	copy(n2.Out, bg.Out)
	copy(n2.In, bg.In)
	if bg.OutLab != nil {
		n2.OutLab = make(map[Label][]*bitset.Set, len(bg.OutLab))
		n2.InLab = make(map[Label][]*bitset.Set, len(bg.InLab))
		for l, rows := range bg.OutLab {
			nr := make([]*bitset.Set, bg.n)
			copy(nr, rows)
			n2.OutLab[l] = nr
		}
		for l, rows := range bg.InLab {
			nr := make([]*bitset.Set, bg.n)
			copy(nr, rows)
			n2.InLab[l] = nr
		}
	}
	for _, v := range touched {
		n2.buildRows(g2, v)
	}
	return n2
}

// BitGraphEqual reports whether two BitGraphs encode identical
// adjacency (rows and label rows), with a short human-readable
// diagnosis of the first difference — the differential hook
// domain.IndexEqual uses to pin incremental row maintenance against a
// from-scratch rebuild.
func BitGraphEqual(a, b *BitGraph) (bool, string) {
	if (a == nil) != (b == nil) {
		return false, "one BitGraph is nil"
	}
	if a == nil {
		return true, ""
	}
	if a.n != b.n {
		return false, "node counts differ"
	}
	for v := 0; v < a.n; v++ {
		if !a.Out[v].Equal(b.Out[v]) {
			return false, fmt.Sprintf("out row differs at vertex %d", v)
		}
		if !a.In[v].Equal(b.In[v]) {
			return false, fmt.Sprintf("in row differs at vertex %d", v)
		}
	}
	if (a.OutLab == nil) != (b.OutLab == nil) || len(a.OutLab) != len(b.OutLab) {
		return false, "label-row alphabets differ"
	}
	for l, rows := range a.OutLab {
		or, ok := b.OutLab[l]
		ir := b.InLab[l]
		if !ok {
			return false, "label-row alphabets differ"
		}
		for v := 0; v < a.n; v++ {
			if !rows[v].Equal(or[v]) {
				return false, fmt.Sprintf("label %d out row differs at vertex %d", l, v)
			}
			if !a.InLab[l][v].Equal(ir[v]) {
				return false, fmt.Sprintf("label %d in row differs at vertex %d", l, v)
			}
		}
	}
	return true, ""
}

// UnionRows returns per-vertex undirected adjacency rows — out ∪ in
// neighbors with self-loops removed — or nil above DenseRowLimit. This
// is the census walker's neighbor structure (connectivity ignores
// direction, multiplicity and self-loops), derived from the same
// per-direction row construction as the query kernels so there is one
// adjacency-row implementation.
func UnionRows(g *Graph) []*bitset.Set {
	n := g.NumNodes()
	if n > DenseRowLimit {
		return nil
	}
	rows := make([]*bitset.Set, n)
	for v := int32(0); v < int32(n); v++ {
		s := bitset.New(n)
		for _, u := range g.OutNeighbors(v) {
			s.Set(int(u))
		}
		for _, u := range g.InNeighbors(v) {
			s.Set(int(u))
		}
		s.Clear(int(v))
		rows[v] = s
	}
	return rows
}

// edgeLabelAlphabet collects the distinct edge labels of g, giving up
// (ok=false) as soon as the alphabet exceeds MaxLabelRows.
func edgeLabelAlphabet(g *Graph) ([]Label, bool) {
	seen := make(map[Label]bool, MaxLabelRows)
	var labels []Label
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		for _, l := range g.OutEdgeLabels(v) {
			if !seen[l] {
				if len(labels) == MaxLabelRows {
					return nil, false
				}
				seen[l] = true
				labels = append(labels, l)
			}
		}
	}
	return labels, true
}
