package graph

import (
	"encoding/binary"
	"slices"
)

// This file implements canonical forms: a relabeling-invariant encoding
// of a graph, the foundation of the service layer's result cache. Two
// graphs have equal canonical encodings if and only if they are
// isomorphic (same labeled structure under some node relabeling), so an
// encoding — or a hash of it — identifies a pattern regardless of how
// the client happened to number its nodes.
//
// The algorithm is the classic individualization–refinement scheme in
// miniature: iterated color refinement (1-dimensional Weisfeiler–Leman,
// on node labels and per-direction edge-label multisets) partitions the
// nodes into an ordered sequence of cells; whenever a cell is not a
// singleton, each of its members is individualized in turn and the
// lexicographically minimal serialized adjacency over all resulting
// complete orderings is kept. The worst case is exponential — as for
// every known canonical-labeling algorithm — but the intended inputs
// are pattern graphs (a handful of nodes), where refinement almost
// always discretizes after one or two individualizations.

// CanonicalForm returns a relabeling-invariant encoding of g and the
// permutation that produced it (node v of g becomes node perm[v] of the
// canonical numbering, as in Relabel). Isomorphic graphs — and only
// isomorphic graphs — share an encoding; the bytes are an opaque value
// for comparison and hashing, not a serialization format.
//
// Cost is near-linear on label-diverse graphs and exponential in the
// worst case (highly symmetric unlabeled graphs); intended for pattern
// graphs, not million-node targets. Callers canonicalizing untrusted
// input use CanonicalFormBudget, which refuses pathological inputs
// instead of burning a core on them.
func CanonicalForm(g *Graph) (encoding []byte, perm []int32) {
	enc, perm, _ := CanonicalFormBudget(g, 0)
	return enc, perm
}

// CanonicalFormBudget is CanonicalForm with a cost bound: budget caps
// the number of complete orderings the individualization search may
// serialize (0 = unlimited). On label-diverse patterns refinement
// discretizes after a branch or two, so even a tiny budget never
// triggers; a highly symmetric unlabeled pattern (an n-clique explores
// n! orderings — measured minutes from ~10 nodes up) exhausts it
// quickly and returns ok == false with no encoding. Callers serving
// untrusted patterns treat that as "not cacheable" rather than an
// error: correctness never depends on canonicalization succeeding.
func CanonicalFormBudget(g *Graph, budget int) (encoding []byte, perm []int32, ok bool) {
	n := g.NumNodes()
	if n == 0 {
		return []byte{}, []int32{}, true
	}
	colors := refine(g, initialColors(g))
	best := &canonSearch{g: g, n: n, budget: budget}
	best.search(colors)
	if best.overBudget {
		return nil, nil, false
	}
	return best.bestEnc, best.bestPerm, true
}

// CanonicalHash returns a 64-bit FNV-1a hash of g's canonical encoding:
// equal for isomorphic graphs, and distinct for non-isomorphic ones up
// to hash collisions — callers for whom a collision would be a
// correctness bug (the service cache) compare the full encodings.
//
// A caller that already holds the encoding (the census memo, the
// service cache-key path) should hash those bytes with HashBytes
// directly instead of paying the individualization search a second
// time here.
func CanonicalHash(g *Graph) uint64 {
	enc, _ := CanonicalForm(g)
	return HashBytes(enc)
}

// CanonicalHashBudget is CanonicalHash under the CanonicalFormBudget
// cost bound: ok == false means the individualization search exceeded
// budget and no hash was derived. The census memo uses it to identify
// induced-subgraph isomorphism classes without risking a factorial
// blowup on a hostile input.
func CanonicalHashBudget(g *Graph, budget int) (hash uint64, ok bool) {
	enc, _, ok := CanonicalFormBudget(g, budget)
	if !ok {
		return 0, false
	}
	return HashBytes(enc), true
}

// HashBytes is the 64-bit FNV-1a hash used for canonical encodings and
// the service layer's cache-key fingerprints.
func HashBytes(b []byte) uint64 {
	const offset64, prime64 = uint64(14695981039346656037), uint64(1099511628211)
	h := offset64
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// initialColors keys each node by its node label plus its sorted
// self-loop label multiset (self-loops are node-local structure, so
// folding them in here keeps the refinement signatures smaller).
func initialColors(g *Graph) []int {
	n := g.NumNodes()
	keys := make([]string, n)
	for v := int32(0); v < int32(n); v++ {
		var loops []Label
		adj := g.OutNeighbors(v)
		labs := g.OutEdgeLabels(v)
		for i, w := range adj {
			if w == v {
				loops = append(loops, labs[i])
			}
		}
		slices.Sort(loops)
		b := binary.AppendVarint(nil, int64(g.NodeLabel(v)))
		for _, l := range loops {
			b = binary.AppendVarint(b, int64(l))
		}
		keys[v] = string(b)
	}
	return colorize(keys)
}

// refine iterates 1-WL color refinement to a fixpoint: each round a
// node's new color is its old color plus the sorted multisets of
// (edge label, neighbor color) pairs over out- and in-edges. Signatures
// are built only from relabeling-invariant data (labels and colors), so
// the resulting color ids are relabeling-invariant too.
func refine(g *Graph, colors []int) []int {
	n := g.NumNodes()
	distinct := countDistinct(colors)
	keys := make([]string, n)
	for {
		for v := int32(0); v < int32(n); v++ {
			b := binary.AppendVarint(nil, int64(colors[v]))
			b = appendNeighborSig(b, g.OutNeighbors(v), g.OutEdgeLabels(v), v, colors)
			b = append(b, 0xff) // direction separator
			b = appendNeighborSig(b, g.InNeighbors(v), g.InEdgeLabels(v), v, colors)
			keys[v] = string(b)
		}
		colors = colorize(keys)
		nd := countDistinct(colors)
		if nd == distinct || nd == n {
			return colors
		}
		distinct = nd
	}
}

// appendNeighborSig appends the sorted (edge label, neighbor color)
// multiset of one adjacency row, self-loops excluded (they are part of
// the initial colors already).
func appendNeighborSig(dst []byte, adj []int32, labs []Label, self int32, colors []int) []byte {
	pairs := make([][2]int64, 0, len(adj))
	for i, w := range adj {
		if w == self {
			continue
		}
		pairs = append(pairs, [2]int64{int64(labs[i]), int64(colors[w])})
	}
	slices.SortFunc(pairs, func(a, b [2]int64) int {
		if a[0] != b[0] {
			return cmpInt64(a[0], b[0])
		}
		return cmpInt64(a[1], b[1])
	})
	for _, p := range pairs {
		dst = binary.AppendVarint(dst, p[0])
		dst = binary.AppendVarint(dst, p[1])
	}
	return dst
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// colorize maps per-node string keys to dense color ids ordered by the
// key's rank among the distinct keys. Ranking by key value — never by
// node id — is what keeps the colors relabeling-invariant.
func colorize(keys []string) []int {
	distinct := append([]string(nil), keys...)
	slices.Sort(distinct)
	distinct = slices.Compact(distinct)
	rank := make(map[string]int, len(distinct))
	for i, k := range distinct {
		rank[k] = i
	}
	out := make([]int, len(keys))
	for v, k := range keys {
		out[v] = rank[k]
	}
	return out
}

func countDistinct(colors []int) int {
	seen := make(map[int]bool, len(colors))
	for _, c := range colors {
		seen[c] = true
	}
	return len(seen)
}

// canonSearch explores the orderings compatible with a refined coloring
// and keeps the minimal serialized adjacency.
type canonSearch struct {
	g        *Graph
	n        int
	bestEnc  []byte
	bestPerm []int32

	budget     int // max offers; 0 = unlimited
	offers     int
	overBudget bool
}

// search individualizes each member of the first non-singleton cell in
// turn and recurses; with a discrete coloring the ordering is forced
// and the candidate encoding is compared against the best so far.
func (c *canonSearch) search(colors []int) {
	if c.overBudget {
		return
	}
	cell := firstNonSingletonCell(colors)
	if cell == nil {
		c.offers++
		if c.budget > 0 && c.offers > c.budget {
			c.overBudget = true
			return
		}
		c.offer(colors)
		return
	}
	for _, v := range cell {
		if c.overBudget {
			return
		}
		ind := make([]int, c.n)
		// Individualize v: give it a fresh color slotted just before the
		// rest of its cell (doubling makes room between ranks), then
		// re-refine.
		for w, col := range colors {
			ind[w] = 2 * col
		}
		ind[v] = 2*colors[v] - 1
		c.search(refine(c.g, normalizeColors(ind)))
	}
}

// firstNonSingletonCell returns the nodes of the smallest-color cell
// with more than one member, or nil if the coloring is discrete.
func firstNonSingletonCell(colors []int) []int32 {
	byColor := make(map[int][]int32)
	minCol := -1
	for v, col := range colors {
		byColor[col] = append(byColor[col], int32(v))
		if len(byColor[col]) > 1 && (minCol == -1 || col < minCol) {
			minCol = col
		}
	}
	if minCol == -1 {
		return nil
	}
	return byColor[minCol]
}

// normalizeColors re-densifies color ids preserving order.
func normalizeColors(colors []int) []int {
	distinct := append([]int(nil), colors...)
	slices.Sort(distinct)
	distinct = slices.Compact(distinct)
	rank := make(map[int]int, len(distinct))
	for i, c := range distinct {
		rank[c] = i
	}
	out := make([]int, len(colors))
	for v, c := range colors {
		out[v] = rank[c]
	}
	return out
}

// offer serializes the graph under a discrete coloring (color =
// canonical position) and keeps the lexicographically smallest encoding
// seen across the individualization branches.
func (c *canonSearch) offer(colors []int) {
	perm := make([]int32, c.n) // node v → canonical position colors[v]
	for v, col := range colors {
		perm[v] = int32(col)
	}
	enc := encodeUnder(c.g, perm)
	if c.bestEnc == nil || slices.Compare(enc, c.bestEnc) < 0 {
		c.bestEnc = enc
		c.bestPerm = perm
	}
}

// encodeUnder serializes node labels and sorted relabeled edges under
// the permutation.
func encodeUnder(g *Graph, perm []int32) []byte {
	n := g.NumNodes()
	inv := make([]int32, n) // canonical position → node
	for v, p := range perm {
		inv[p] = int32(v)
	}
	buf := binary.AppendUvarint(nil, uint64(n))
	for p := 0; p < n; p++ {
		buf = binary.AppendVarint(buf, int64(g.NodeLabel(inv[p])))
	}
	type edge struct{ u, v, l int64 }
	edges := make([]edge, 0, g.NumEdges())
	for v := int32(0); v < int32(n); v++ {
		adj := g.OutNeighbors(v)
		labs := g.OutEdgeLabels(v)
		for i, w := range adj {
			edges = append(edges, edge{int64(perm[v]), int64(perm[w]), int64(labs[i])})
		}
	}
	slices.SortFunc(edges, func(a, b edge) int {
		if a.u != b.u {
			return cmpInt64(a.u, b.u)
		}
		if a.v != b.v {
			return cmpInt64(a.v, b.v)
		}
		return cmpInt64(a.l, b.l)
	})
	buf = binary.AppendUvarint(buf, uint64(len(edges)))
	for _, e := range edges {
		buf = binary.AppendVarint(buf, e.u)
		buf = binary.AppendVarint(buf, e.v)
		buf = binary.AppendVarint(buf, e.l)
	}
	return buf
}
