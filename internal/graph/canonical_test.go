package graph

import (
	"bytes"
	"math/rand"
	"slices"
	"testing"
	"time"
)

// randomLabeledGraph builds a random labeled digraph (with occasional
// self-loops and parallel edges) directly — testutil would import-cycle.
func randomLabeledGraph(rng *rand.Rand, n, m, nodeLabels, edgeLabels int) *Graph {
	b := NewBuilder(n, m)
	for i := 0; i < n; i++ {
		b.AddNode(Label(rng.Intn(nodeLabels)))
	}
	for i := 0; i < m; i++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		b.AddEdge(u, v, Label(rng.Intn(edgeLabels)))
	}
	return b.MustBuild()
}

func randomPerm(rng *rand.Rand, n int) []int32 {
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	return perm
}

// TestCanonicalFormRelabelingInvariant: the encoding must be identical
// for every relabeling of the same graph — the property the service
// cache stands on.
func TestCanonicalFormRelabelingInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		g := randomLabeledGraph(rng, n, rng.Intn(3*n), 1+rng.Intn(3), 1+rng.Intn(2))
		enc, _ := CanonicalForm(g)
		h := CanonicalHash(g)
		for k := 0; k < 4; k++ {
			pg, err := g.Relabel(randomPerm(rng, n))
			if err != nil {
				t.Fatal(err)
			}
			enc2, _ := CanonicalForm(pg)
			if !bytes.Equal(enc, enc2) {
				t.Fatalf("trial %d: relabeled encoding differs\n g=%v", trial, g)
			}
			if CanonicalHash(pg) != h {
				t.Fatalf("trial %d: relabeled hash differs", trial)
			}
		}
	}
}

// TestCanonicalFormPermValid: the returned permutation must actually
// relabel g onto a graph whose identity encoding equals the canonical
// encoding — i.e. the encoding really is "g under perm".
func TestCanonicalFormPermValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(7)
		g := randomLabeledGraph(rng, n, rng.Intn(3*n), 1+rng.Intn(3), 1+rng.Intn(2))
		enc, perm := CanonicalForm(g)
		canon, err := g.Relabel(perm)
		if err != nil {
			t.Fatal(err)
		}
		ident := make([]int32, n)
		for i := range ident {
			ident[i] = int32(i)
		}
		if got := encodeUnder(canon, ident); !bytes.Equal(got, enc) {
			t.Fatalf("trial %d: perm does not reproduce the canonical encoding", trial)
		}
	}
}

// TestCanonicalFormSeparatesNonIsomorphic: structurally different small
// graphs must get different encodings (P3 vs triangle, label swaps,
// direction flips, edge-label changes).
func TestCanonicalFormSeparatesNonIsomorphic(t *testing.T) {
	build := func(labels []Label, edges [][3]int32) *Graph {
		b := NewBuilder(len(labels), len(edges))
		for _, l := range labels {
			b.AddNode(l)
		}
		for _, e := range edges {
			b.AddEdge(e[0], e[1], Label(e[2]))
		}
		return b.MustBuild()
	}
	graphs := []*Graph{
		// P3 (undirected) vs triangle.
		build([]Label{0, 0, 0}, [][3]int32{{0, 1, 0}, {1, 0, 0}, {1, 2, 0}, {2, 1, 0}}),
		build([]Label{0, 0, 0}, [][3]int32{{0, 1, 0}, {1, 0, 0}, {1, 2, 0}, {2, 1, 0}, {0, 2, 0}, {2, 0, 0}}),
		// Directed 3-cycle vs directed path.
		build([]Label{0, 0, 0}, [][3]int32{{0, 1, 0}, {1, 2, 0}, {2, 0, 0}}),
		build([]Label{0, 0, 0}, [][3]int32{{0, 1, 0}, {1, 2, 0}}),
		// Label variations on one edge.
		build([]Label{1, 2}, [][3]int32{{0, 1, 0}}),
		build([]Label{1, 2}, [][3]int32{{1, 0, 0}}),
		build([]Label{1, 2}, [][3]int32{{0, 1, 1}}),
		build([]Label{1, 1}, [][3]int32{{0, 1, 0}}),
		// Self-loop vs none.
		build([]Label{1, 2}, [][3]int32{{0, 1, 0}, {0, 0, 0}}),
	}
	seen := make(map[string]int)
	for i, g := range graphs {
		enc, _ := CanonicalForm(g)
		if j, dup := seen[string(enc)]; dup {
			t.Fatalf("graphs %d and %d share an encoding but are not isomorphic", j, i)
		}
		seen[string(enc)] = i
	}
}

// TestCanonicalFormSymmetricGraphs: highly symmetric graphs exercise the
// individualization branching; all relabelings must still agree.
func TestCanonicalFormSymmetricGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Unlabeled undirected C6 and K4.
	c6 := NewBuilder(6, 12)
	c6.AddNodes(6)
	for i := int32(0); i < 6; i++ {
		c6.AddEdgeBoth(i, (i+1)%6, NoLabel)
	}
	k4 := NewBuilder(4, 12)
	k4.AddNodes(4)
	for i := int32(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			k4.AddEdgeBoth(i, j, NoLabel)
		}
	}
	for _, g := range []*Graph{c6.MustBuild(), k4.MustBuild()} {
		enc, _ := CanonicalForm(g)
		for k := 0; k < 8; k++ {
			pg, err := g.Relabel(randomPerm(rng, g.NumNodes()))
			if err != nil {
				t.Fatal(err)
			}
			enc2, _ := CanonicalForm(pg)
			if !bytes.Equal(enc, enc2) {
				t.Fatalf("%v: symmetric graph relabeling changed the encoding", g)
			}
		}
	}
}

// TestCanonicalFormEmpty: the zero graph canonicalizes without panicking.
func TestCanonicalFormEmpty(t *testing.T) {
	g := (&Builder{}).MustBuild()
	enc, perm := CanonicalForm(g)
	if len(perm) != 0 || enc == nil {
		t.Fatalf("empty graph: enc=%v perm=%v", enc, perm)
	}
}

// TestCanonicalFormBudget: a hostile symmetric pattern must exhaust the
// budget quickly (ok=false) instead of burning factorial time, while
// ordinary labeled patterns never notice the budget; and the budgeted
// encoding, when it succeeds, equals the unbudgeted one.
func TestCanonicalFormBudget(t *testing.T) {
	// Unlabeled K9: 9! ≈ 363k orderings, measured in whole seconds
	// unbudgeted — the budget must cut it off in milliseconds.
	k := NewBuilder(9, 72)
	k.AddNodes(9)
	for i := int32(0); i < 9; i++ {
		for j := i + 1; j < 9; j++ {
			k.AddEdgeBoth(i, j, NoLabel)
		}
	}
	start := time.Now()
	if _, _, ok := CanonicalFormBudget(k.MustBuild(), 4096); ok {
		t.Fatal("K9 canonicalized within a 4096-ordering budget (budget not enforced?)")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("budget cutoff took %v — not bounding the search", d)
	}

	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		g := randomLabeledGraph(rng, n, rng.Intn(3*n), 1+rng.Intn(3), 1+rng.Intn(2))
		enc, perm := CanonicalForm(g)
		benc, bperm, ok := CanonicalFormBudget(g, 4096)
		if !ok {
			t.Fatalf("trial %d: ordinary pattern exceeded the budget", trial)
		}
		if !bytes.Equal(enc, benc) || !slices.Equal(perm, bperm) {
			t.Fatalf("trial %d: budgeted result differs from unbudgeted", trial)
		}
	}
}

// TestCanonicalHashBudget: the budgeted hash must equal
// HashBytes(CanonicalForm) when it succeeds, refuse hostile symmetric
// inputs (ok=false) instead of hanging, and never require re-deriving
// the encoding a caller already holds.
func TestCanonicalHashBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(7)
		g := randomLabeledGraph(rng, n, rng.Intn(3*n), 1+rng.Intn(3), 1+rng.Intn(2))
		enc, _ := CanonicalForm(g)
		h, ok := CanonicalHashBudget(g, 4096)
		if !ok {
			t.Fatalf("trial %d: ordinary pattern exceeded the budget", trial)
		}
		if h != HashBytes(enc) {
			t.Fatalf("trial %d: CanonicalHashBudget %d != HashBytes(encoding) %d", trial, h, HashBytes(enc))
		}
		if h != CanonicalHash(g) {
			t.Fatalf("trial %d: CanonicalHashBudget %d != CanonicalHash %d", trial, h, CanonicalHash(g))
		}
	}

	k := NewBuilder(9, 72)
	k.AddNodes(9)
	for i := int32(0); i < 9; i++ {
		for j := i + 1; j < 9; j++ {
			k.AddEdgeBoth(i, j, NoLabel)
		}
	}
	if _, ok := CanonicalHashBudget(k.MustBuild(), 4096); ok {
		t.Fatal("K9 hashed within a 4096-ordering budget (budget not enforced?)")
	}
}
