package graph

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// triangle builds the labeled directed triangle 0→1→2→0 used by several
// tests.
func triangle(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(3, 3)
	b.AddNode(1)
	b.AddNode(2)
	b.AddNode(3)
	b.AddEdge(0, 1, 10)
	b.AddEdge(1, 2, 11)
	b.AddEdge(2, 0, 12)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := (&Builder{}).MustBuild()
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	mean, sd := g.DegreeStats()
	if mean != 0 || sd != 0 {
		t.Fatalf("degree stats of empty graph = %f, %f", mean, sd)
	}
	if !g.ConnectedUndirected() {
		t.Fatal("empty graph should count as connected")
	}
}

func TestBasicAccessors(t *testing.T) {
	g := triangle(t)
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if g.NodeLabel(0) != 1 || g.NodeLabel(2) != 3 {
		t.Error("node labels wrong")
	}
	if g.OutDegree(0) != 1 || g.InDegree(0) != 1 || g.Degree(0) != 2 {
		t.Error("degrees wrong")
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("edge existence wrong")
	}
	if l, ok := g.EdgeLabel(1, 2); !ok || l != 11 {
		t.Errorf("EdgeLabel(1,2) = %d, %v", l, ok)
	}
	if _, ok := g.EdgeLabel(2, 1); ok {
		t.Error("EdgeLabel found nonexistent edge")
	}
}

func TestBuildRejectsBadEndpoint(t *testing.T) {
	b := NewBuilder(1, 1)
	b.AddNode(0)
	b.AddEdge(0, 5, 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted out-of-range endpoint")
	}
	b2 := NewBuilder(1, 1)
	b2.AddNode(0)
	b2.AddEdge(-1, 0, 0)
	if _, err := b2.Build(); err == nil {
		t.Fatal("Build accepted negative endpoint")
	}
}

func TestAddNodesAndEdgeBoth(t *testing.T) {
	b := &Builder{}
	first := b.AddNodes(4)
	if first != 0 || b.NumNodes() != 4 {
		t.Fatalf("AddNodes first=%d n=%d", first, b.NumNodes())
	}
	b.AddEdgeBoth(0, 3, 7)
	g := b.MustBuild()
	if !g.HasEdge(0, 3) || !g.HasEdge(3, 0) {
		t.Fatal("AddEdgeBoth missing a direction")
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
}

func TestHasEdgePending(t *testing.T) {
	b := &Builder{}
	b.AddNodes(3)
	b.AddEdge(0, 1, 0)
	if !b.HasEdgePending(0, 1) || b.HasEdgePending(1, 0) {
		t.Fatal("HasEdgePending wrong")
	}
}

func TestAdjacencySorted(t *testing.T) {
	b := &Builder{}
	b.AddNodes(5)
	// Insert edges in scrambled order.
	for _, w := range []int32{4, 1, 3, 2} {
		b.AddEdge(0, w, Label(w))
	}
	g := b.MustBuild()
	adj := g.OutNeighbors(0)
	if !sort.SliceIsSorted(adj, func(i, j int) bool { return adj[i] < adj[j] }) {
		t.Fatalf("out adjacency not sorted: %v", adj)
	}
	labs := g.OutEdgeLabels(0)
	for i, w := range adj {
		if labs[i] != Label(w) {
			t.Fatalf("edge label misaligned after sort: adj=%v labs=%v", adj, labs)
		}
	}
}

func TestInOutConsistency(t *testing.T) {
	g := triangle(t)
	in1 := g.InNeighbors(1)
	if len(in1) != 1 || in1[0] != 0 {
		t.Fatalf("InNeighbors(1) = %v", in1)
	}
	if l := g.InEdgeLabels(1)[0]; l != 10 {
		t.Fatalf("in edge label = %d", l)
	}
}

func TestDegreeStats(t *testing.T) {
	g := triangle(t)
	mean, sd := g.DegreeStats()
	if math.Abs(mean-2) > 1e-9 {
		t.Errorf("mean degree = %f, want 2", mean)
	}
	if math.Abs(sd) > 1e-9 {
		t.Errorf("stddev = %f, want 0", sd)
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := triangle(t)
	es := g.Edges()
	if len(es) != 3 {
		t.Fatalf("Edges returned %d edges", len(es))
	}
	b := NewBuilder(3, 3)
	for v := 0; v < 3; v++ {
		b.AddNode(g.NodeLabel(int32(v)))
	}
	for _, e := range es {
		b.AddEdge(e.From, e.To, e.Label)
	}
	g2 := b.MustBuild()
	for u := int32(0); u < 3; u++ {
		for v := int32(0); v < 3; v++ {
			l1, ok1 := g.EdgeLabel(u, v)
			l2, ok2 := g2.EdgeLabel(u, v)
			if ok1 != ok2 || l1 != l2 {
				t.Fatalf("round trip differs at (%d,%d)", u, v)
			}
		}
	}
}

func TestConnectedUndirected(t *testing.T) {
	b := &Builder{}
	b.AddNodes(4)
	b.AddEdge(0, 1, 0)
	b.AddEdge(2, 1, 0) // reachable only via in-edges from 1's perspective
	g := b.MustBuild()
	if g.ConnectedUndirected() {
		t.Fatal("graph with isolated node 3 reported connected")
	}
	b.AddEdge(3, 0, 0)
	if !b.MustBuild().ConnectedUndirected() {
		t.Fatal("connected graph reported disconnected")
	}
}

func TestString(t *testing.T) {
	if s := triangle(t).String(); s != "Graph(n=3, m=3)" {
		t.Fatalf("String = %q", s)
	}
}

// randomGraph builds a random directed graph for property tests.
func randomGraph(seed int64, n, m int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n, m)
	for i := 0; i < n; i++ {
		b.AddNode(Label(rng.Intn(4)))
	}
	for i := 0; i < m; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), Label(rng.Intn(3)))
	}
	return b.MustBuild()
}

func TestQuickInOutAreTransposes(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 30, 120)
		// every out edge (u,v) appears as in edge at v, with same label
		for u := int32(0); u < int32(g.NumNodes()); u++ {
			adj := g.OutNeighbors(u)
			labs := g.OutEdgeLabels(u)
			for i, v := range adj {
				found := false
				in := g.InNeighbors(v)
				inl := g.InEdgeLabels(v)
				for j, w := range in {
					if w == u && inl[j] == labs[i] {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDegreeSumsEqualEdges(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 25, 80)
		outSum, inSum := 0, 0
		for v := int32(0); v < int32(g.NumNodes()); v++ {
			outSum += g.OutDegree(v)
			inSum += g.InDegree(v)
		}
		return outSum == g.NumEdges() && inSum == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEdgeLabelAgreesWithEdges(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 20, 60)
		for _, e := range g.Edges() {
			if l, ok := g.EdgeLabel(e.From, e.To); !ok || (l != e.Label && !g.hasParallel(e.From, e.To)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// hasParallel reports whether more than one (u,v) edge exists; with
// parallel edges EdgeLabel may legitimately return the other label.
func (g *Graph) hasParallel(u, v int32) bool {
	c := 0
	for _, w := range g.OutNeighbors(u) {
		if w == v {
			c++
		}
	}
	return c > 1
}

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n, m = 2000, 20000
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{From: int32(rng.Intn(n)), To: int32(rng.Intn(n))}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld := NewBuilder(n, m)
		bld.AddNodes(n)
		for _, e := range edges {
			bld.AddEdge(e.From, e.To, e.Label)
		}
		if _, err := bld.Build(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHasEdge(b *testing.B) {
	g := randomGraph(3, 1000, 20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasEdge(int32(i%1000), int32((i*7)%1000))
	}
}

func TestSimplify(t *testing.T) {
	b := NewBuilder(3, 6)
	b.AddNode(1)
	b.AddNode(2)
	b.AddNode(3)
	b.AddEdge(0, 1, 5)
	b.AddEdge(0, 1, 5) // exact duplicate
	b.AddEdge(0, 1, 6) // parallel, different label: kept
	b.AddEdge(1, 2, 5)
	g := b.MustBuild()
	s := g.Simplify()
	if s == g {
		t.Fatal("graph with duplicates returned unsimplified")
	}
	if s.NumEdges() != 3 {
		t.Fatalf("simplified edges = %d, want 3", s.NumEdges())
	}
	if s.NumNodes() != 3 || s.NodeLabel(2) != 3 {
		t.Fatal("Simplify changed nodes")
	}
	if !s.HasEdgeLabeled(0, 1, 5) || !s.HasEdgeLabeled(0, 1, 6) || !s.HasEdgeLabeled(1, 2, 5) {
		t.Fatal("Simplify dropped a distinct edge")
	}
	// No duplicates: identity.
	if s2 := s.Simplify(); s2 != s {
		t.Fatal("duplicate-free graph should be returned as-is")
	}
}

func TestQuickSimplifyIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 15, 60) // may contain duplicates
		s := g.Simplify()
		// Same reachability with labels: every edge of s is in g and
		// vice versa (as sets).
		for _, e := range s.Edges() {
			if !g.HasEdgeLabeled(e.From, e.To, e.Label) {
				return false
			}
		}
		for _, e := range g.Edges() {
			if !s.HasEdgeLabeled(e.From, e.To, e.Label) {
				return false
			}
		}
		return s.Simplify() == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
