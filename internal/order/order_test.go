package order

import (
	"math/rand"
	"testing"
	"testing/quick"

	"parsge/internal/graph"
)

// path builds the undirected path 0-1-2-...-k encoded as directed edges in
// both directions.
func path(k int) *graph.Graph {
	b := &graph.Builder{}
	b.AddNodes(k + 1)
	for i := 0; i < k; i++ {
		b.AddEdgeBoth(int32(i), int32(i+1), 0)
	}
	return b.MustBuild()
}

// star builds a star with center 0 and k leaves.
func star(k int) *graph.Graph {
	b := &graph.Builder{}
	b.AddNodes(k + 1)
	for i := 1; i <= k; i++ {
		b.AddEdgeBoth(0, int32(i), 0)
	}
	return b.MustBuild()
}

func TestEmptyAndSingle(t *testing.T) {
	o := Greatest((&graph.Builder{}).MustBuild())
	if len(o.Seq) != 0 {
		t.Fatal("ordering of empty graph not empty")
	}
	b := &graph.Builder{}
	b.AddNode(0)
	o = Greatest(b.MustBuild())
	if len(o.Seq) != 1 || o.Seq[0] != 0 || o.Parent[0] != NoParent {
		t.Fatalf("singleton ordering wrong: %+v", o)
	}
}

func TestStarStartsAtCenter(t *testing.T) {
	g := star(5)
	o := Greatest(g)
	if o.Seq[0] != 0 {
		t.Fatalf("star ordering starts at %d, want center 0", o.Seq[0])
	}
	if err := o.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Every leaf's parent must be the center's position 0.
	for i := 1; i < len(o.Seq); i++ {
		if o.Parent[i] != 0 {
			t.Errorf("leaf at position %d has parent %d, want 0", i, o.Parent[i])
		}
	}
}

func TestPathConnectivity(t *testing.T) {
	g := path(6)
	o := Greatest(g)
	if err := o.Validate(g); err != nil {
		t.Fatal(err)
	}
	// After the first node every node must have a parent: the graph is
	// connected and GCF extends along the fringe.
	for i := 1; i < len(o.Seq); i++ {
		if o.Parent[i] == NoParent {
			t.Errorf("position %d has no parent in a connected graph", i)
		}
	}
}

func TestDisconnectedComponents(t *testing.T) {
	b := &graph.Builder{}
	b.AddNodes(4)
	b.AddEdgeBoth(0, 1, 0)
	b.AddEdgeBoth(2, 3, 0)
	g := b.MustBuild()
	o := Greatest(g)
	if err := o.Validate(g); err != nil {
		t.Fatal(err)
	}
	noParent := 0
	for i := range o.Seq {
		if o.Parent[i] == NoParent {
			noParent++
		}
	}
	if noParent != 2 {
		t.Fatalf("expected 2 parentless positions (one per component), got %d", noParent)
	}
}

func TestParentDirection(t *testing.T) {
	// 0→1 only: when 1 is ordered after 0, its candidates must come from
	// out-neighbors of 0's image (ParentOut = true); and vice versa.
	b := &graph.Builder{}
	b.AddNodes(2)
	b.AddEdge(0, 1, 0)
	g := b.MustBuild()
	o := Greatest(g)
	if err := o.Validate(g); err != nil {
		t.Fatal(err)
	}
	second := o.Seq[1]
	if second == 1 && !o.ParentOut[1] {
		t.Error("edge 0→1: node 1's parent direction should be out")
	}
	if second == 0 && o.ParentOut[1] {
		t.Error("edge 0→1: node 0's parent direction should be in")
	}
}

func TestSingletonDomainsHoisted(t *testing.T) {
	g := path(4) // nodes 0..4
	dom := []int{5, 5, 1, 5, 1}
	o, err := Compute(g, Options{DomainSizes: dom})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Validate(g); err != nil {
		t.Fatal(err)
	}
	if o.Seq[0] != 2 || o.Seq[1] != 4 {
		t.Fatalf("singleton-domain nodes not hoisted: Seq = %v", o.Seq)
	}
}

func TestDomainTieBreak(t *testing.T) {
	// Two leaves of a star tie on (wm, wn, degree); SI prefers the
	// smaller domain. Leaf 2 gets the smaller domain and must precede
	// leaf 1 even though 1 has the smaller id.
	g := star(2)
	dom := []int{10, 9, 3}
	si, err := Compute(g, Options{DomainSizes: dom, DomainTieBreak: true})
	if err != nil {
		t.Fatal(err)
	}
	if si.Seq[1] != 2 {
		t.Fatalf("SI ordering = %v, want node 2 second", si.Seq)
	}
	// Without the tie-break, id order wins.
	plain, err := Compute(g, Options{DomainSizes: dom})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Seq[1] != 1 {
		t.Fatalf("plain ordering = %v, want node 1 second", plain.Seq)
	}
}

func TestOptionValidation(t *testing.T) {
	g := path(2)
	if _, err := Compute(g, Options{DomainTieBreak: true}); err == nil {
		t.Error("DomainTieBreak without sizes should fail")
	}
	if _, err := Compute(g, Options{DomainSizes: []int{1}}); err == nil {
		t.Error("wrong-length DomainSizes should fail")
	}
}

// randomPattern builds a random connected-ish directed graph.
func randomPattern(seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(12)
	b := &graph.Builder{}
	for i := 0; i < n; i++ {
		b.AddNode(graph.Label(rng.Intn(3)))
	}
	// Spanning chain keeps it connected, then extra random edges.
	for i := 1; i < n; i++ {
		b.AddEdge(int32(rng.Intn(i)), int32(i), 0)
	}
	for i := 0; i < n; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), 0)
	}
	return b.MustBuild()
}

func TestQuickValidPermutationWithParents(t *testing.T) {
	f := func(seed int64) bool {
		g := randomPattern(seed)
		o := Greatest(g)
		return o.Validate(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickConnectedGraphsHaveParents(t *testing.T) {
	f := func(seed int64) bool {
		g := randomPattern(seed)
		if !g.ConnectedUndirected() {
			return true
		}
		o := Greatest(g)
		for i := 1; i < len(o.Seq); i++ {
			if o.Parent[i] == NoParent {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSIOrderingValid(t *testing.T) {
	f := func(seed int64) bool {
		g := randomPattern(seed)
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		dom := make([]int, g.NumNodes())
		for i := range dom {
			dom[i] = 1 + rng.Intn(6)
		}
		o, err := Compute(g, Options{DomainSizes: dom, DomainTieBreak: true})
		if err != nil {
			return false
		}
		if o.Validate(g) != nil {
			return false
		}
		// Singletons occupy a prefix of the ordering.
		firstNonSingleton := -1
		for i, v := range o.Seq {
			if dom[v] != 1 {
				firstNonSingleton = i
				break
			}
		}
		if firstNonSingleton >= 0 {
			for _, v := range o.Seq[firstNonSingleton:] {
				if dom[v] == 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGreatest(b *testing.B) {
	g := randomPattern(99)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Greatest(g)
	}
}

func TestDegreeOnlyStrategy(t *testing.T) {
	// Star + pendant chain: GCF and degree-only agree on the center but
	// may diverge later; both must remain valid orderings.
	g := star(4)
	for _, strat := range []Strategy{GreatestConstraintFirst, DegreeOnly} {
		o, err := Compute(g, Options{Strategy: strat})
		if err != nil {
			t.Fatal(err)
		}
		if err := o.Validate(g); err != nil {
			t.Fatalf("strategy %d: %v", strat, err)
		}
		if o.Seq[0] != 0 {
			t.Errorf("strategy %d: did not start at max-degree center", strat)
		}
	}
}

func TestQuickDegreeOnlyValid(t *testing.T) {
	f := func(seed int64) bool {
		g := randomPattern(seed)
		o, err := Compute(g, Options{Strategy: DegreeOnly})
		return err == nil && o.Validate(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
