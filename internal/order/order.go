// Package order computes the static pattern-node orderings used by the RI
// family of algorithms.
//
// RI visits pattern nodes in an order fixed before the search starts
// ("static variable ordering", Kimmig et al. §2.2.1). The ordering is
// built greedily by GreatestConstraintFirst: always append the unselected
// node that is most constrained by the nodes already selected, ranked
// lexicographically by
//
//	w_m — number of neighbors already in the partial ordering,
//	w_n — number of its unselected neighbors that are themselves
//	      neighbors of the partial ordering (future constraints),
//	deg — total degree,
//
// with node id as the final deterministic tie-break. The RI-DS-SI variant
// (§4.2.1) inserts one more tie-break before the id: when two nodes also
// have identical degree, the one with the *smaller* candidate domain is
// preferred — the "constraint-first principle".
//
// RI-DS additionally places all pattern nodes with singleton domains at
// the very beginning of the ordering (§4.1).
package order

import (
	"fmt"

	"parsge/internal/graph"
)

// NoParent marks an ordering position with no previously-ordered neighbor
// (the root, or the first node of a new connected component).
const NoParent = int32(-1)

// Ordering is a static visit order over a pattern graph's nodes plus the
// parent links the search engine uses for candidate generation.
type Ordering struct {
	// Seq lists pattern node ids in visit order.
	Seq []int32
	// Pos is the inverse permutation: Pos[node] = position in Seq.
	Pos []int32
	// Parent[i] is the position (index into Seq) of the first-ordered
	// neighbor of Seq[i], or NoParent. Candidates for Seq[i] are
	// generated from the target node mapped to the parent.
	Parent []int32
	// ParentOut[i] reports the direction of the parent edge: true means
	// the pattern edge (Seq[Parent[i]], Seq[i]) exists, so candidates
	// come from the out-neighborhood of the parent's image; false means
	// only (Seq[i], Seq[Parent[i]]) exists and candidates come from the
	// in-neighborhood.
	ParentOut []bool
}

// Strategy selects how the next pattern node is ranked.
type Strategy int

const (
	// GreatestConstraintFirst is RI's ordering (the default): rank by
	// (w_m, w_n, degree).
	GreatestConstraintFirst Strategy = iota
	// DegreeOnly ranks by degree alone (ties by id), ignoring the
	// constraint structure — one of the weaker static orderings from
	// the comparison of Bonnici & Giugno (TCBB 2017) that the paper
	// builds on; kept as an ablation baseline. Connectivity is still
	// preferred (nodes adjacent to the ordering come first) so that
	// candidate generation keeps working from parents.
	DegreeOnly
)

// Options configures ordering construction.
type Options struct {
	// Strategy picks the ranking rule; zero value is RI's
	// GreatestConstraintFirst.
	Strategy Strategy
	// DomainSizes, when non-nil, enables the RI-DS behaviors that depend
	// on domains: nodes whose domain has size one are hoisted to the
	// front of the ordering (§4.1).
	DomainSizes []int
	// DomainTieBreak enables the RI-DS-SI rule: among nodes with equal
	// (w_m, w_n, degree), prefer the smaller domain (§4.2.1). Requires
	// DomainSizes.
	DomainTieBreak bool
}

// Greatest computes the GreatestConstraintFirst ordering of gp.
func Greatest(gp *graph.Graph) *Ordering {
	o, err := Compute(gp, Options{})
	if err != nil {
		// Options{} cannot fail validation.
		panic(err)
	}
	return o
}

// Compute builds an ordering of gp under the given options.
func Compute(gp *graph.Graph, opts Options) (*Ordering, error) {
	n := gp.NumNodes()
	if opts.DomainTieBreak && opts.DomainSizes == nil {
		return nil, fmt.Errorf("order: DomainTieBreak requires DomainSizes")
	}
	if opts.DomainSizes != nil && len(opts.DomainSizes) != n {
		return nil, fmt.Errorf("order: got %d domain sizes for %d nodes", len(opts.DomainSizes), n)
	}

	nbr := undirectedNeighbors(gp)

	ord := &Ordering{
		Seq:       make([]int32, 0, n),
		Pos:       make([]int32, n),
		Parent:    make([]int32, 0, n),
		ParentOut: make([]bool, 0, n),
	}
	for v := range ord.Pos {
		ord.Pos[v] = -1
	}

	selected := make([]bool, n)
	// inFringe[v]: v is unselected but adjacent to a selected node.
	inFringe := make([]bool, n)

	appendNode := func(v int32) {
		ord.Pos[v] = int32(len(ord.Seq))
		ord.Seq = append(ord.Seq, v)
		selected[v] = true
		inFringe[v] = false
		for _, w := range nbr[v] {
			if !selected[w] {
				inFringe[w] = true
			}
		}
		p, out := parentOf(gp, ord, v, nbr)
		ord.Parent = append(ord.Parent, p)
		ord.ParentOut = append(ord.ParentOut, out)
	}

	// RI-DS hoists singleton-domain nodes to the front (§4.1). They are
	// appended in id order; each is maximally constrained already (its
	// image is forced), so their relative order is immaterial.
	if opts.DomainSizes != nil {
		for v := int32(0); v < int32(n); v++ {
			if opts.DomainSizes[v] == 1 {
				appendNode(v)
			}
		}
	}

	for len(ord.Seq) < n {
		best := int32(-1)
		var bestWM, bestWN, bestDeg, bestDom int
		for v := int32(0); v < int32(n); v++ {
			if selected[v] {
				continue
			}
			wm, wn := 0, 0
			for _, w := range nbr[v] {
				if selected[w] {
					wm++
				} else if inFringe[w] {
					wn++
				}
			}
			deg := gp.Degree(v)
			dom := 0
			if opts.DomainSizes != nil {
				dom = opts.DomainSizes[v]
			}
			if opts.Strategy == DegreeOnly {
				// Collapse the constraint scores to connectivity only
				// (wm > 0 or not), so degree dominates.
				if wm > 0 {
					wm = 1
				}
				wn = 0
			}
			if best < 0 || better(wm, wn, deg, dom, bestWM, bestWN, bestDeg, bestDom, opts.DomainTieBreak) {
				best, bestWM, bestWN, bestDeg, bestDom = v, wm, wn, deg, dom
			}
		}
		appendNode(best)
	}
	return ord, nil
}

// better reports whether candidate (wm, wn, deg, dom) outranks the best so
// far. Iteration visits nodes in ascending id, so "strictly better"
// comparisons make the lowest id win ties — the deterministic final
// tie-break.
func better(wm, wn, deg, dom, bWM, bWN, bDeg, bDom int, domTie bool) bool {
	if wm != bWM {
		return wm > bWM
	}
	if wn != bWN {
		return wn > bWN
	}
	if deg != bDeg {
		return deg > bDeg
	}
	if domTie && dom != bDom {
		return dom < bDom // smaller domain = more constrained = first
	}
	return false
}

// parentOf finds the first-ordered already-selected neighbor of v and the
// direction of one connecting pattern edge.
func parentOf(gp *graph.Graph, ord *Ordering, v int32, nbr [][]int32) (int32, bool) {
	bestPos := int32(-1)
	for _, w := range nbr[v] {
		if p := ord.Pos[w]; p >= 0 && p < int32(len(ord.Seq))-1 { // exclude v itself (just appended)
			if bestPos < 0 || p < bestPos {
				bestPos = p
			}
		}
	}
	if bestPos < 0 {
		return NoParent, false
	}
	parent := ord.Seq[bestPos]
	// Prefer the out direction when both edges exist; the engine checks
	// every back edge anyway, the parent edge only drives candidate
	// generation.
	if gp.HasEdge(parent, v) {
		return bestPos, true
	}
	return bestPos, false
}

// undirectedNeighbors returns, per node, the sorted deduplicated union of
// in- and out-neighbors, excluding self-loops.
func undirectedNeighbors(gp *graph.Graph) [][]int32 {
	n := gp.NumNodes()
	out := make([][]int32, n)
	seen := make([]int32, n) // seen[w] = v+1 marks w as already added for v
	for v := int32(0); v < int32(n); v++ {
		var row []int32
		add := func(w int32) {
			if w != v && seen[w] != v+1 {
				seen[w] = v + 1
				row = append(row, w)
			}
		}
		for _, w := range gp.OutNeighbors(v) {
			add(w)
		}
		for _, w := range gp.InNeighbors(v) {
			add(w)
		}
		out[v] = row
	}
	return out
}

// Validate checks the structural invariants of an ordering against its
// pattern graph; the engines call it in tests and debug builds.
func (o *Ordering) Validate(gp *graph.Graph) error {
	n := gp.NumNodes()
	if len(o.Seq) != n || len(o.Pos) != n || len(o.Parent) != n || len(o.ParentOut) != n {
		return fmt.Errorf("order: inconsistent lengths seq=%d pos=%d parent=%d", len(o.Seq), len(o.Pos), len(o.Parent))
	}
	seen := make([]bool, n)
	for i, v := range o.Seq {
		if v < 0 || int(v) >= n || seen[v] {
			return fmt.Errorf("order: Seq is not a permutation at %d", i)
		}
		seen[v] = true
		if o.Pos[v] != int32(i) {
			return fmt.Errorf("order: Pos[%d] = %d, want %d", v, o.Pos[v], i)
		}
		p := o.Parent[i]
		if p == NoParent {
			continue
		}
		if p < 0 || p >= int32(i) {
			return fmt.Errorf("order: Parent[%d] = %d out of range", i, p)
		}
		pv := o.Seq[p]
		if o.ParentOut[i] {
			if !gp.HasEdge(pv, v) {
				return fmt.Errorf("order: claimed out-edge (%d,%d) missing", pv, v)
			}
		} else if !gp.HasEdge(v, pv) {
			return fmt.Errorf("order: claimed in-edge (%d,%d) missing", v, pv)
		}
	}
	return nil
}
