// Package bitset provides a dense, fixed-capacity bitset.
//
// RI-DS represents candidate domains as bitmasks over the target graph's
// vertex set ("In RI, domains are implemented as bitmasks", Kimmig et al.
// §4.2.2); this package is that representation. It is deliberately free of
// synchronization: domains are computed once during preprocessing and read
// concurrently afterwards, and the search engines own private scratch sets.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dense bitset over [0, Len()). The zero value is an empty set of
// capacity zero; use New to create one with capacity.
type Set struct {
	words []uint64
	n     int
}

// New returns a set able to hold bits [0, n), all initially clear.
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative capacity %d", n))
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the capacity of the set (number of addressable bits).
func (s *Set) Len() int { return s.n }

// Set sets bit i.
func (s *Set) Set(i int) {
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool {
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no bit is set.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// SetAll sets every bit in [0, Len()).
func (s *Set) SetAll() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// ClearAll clears every bit.
func (s *Set) ClearAll() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// SetRange sets every bit in [lo, hi), a word at a time. The census
// walker uses it to seed its "seen" set with the whole prefix [0, root]
// so the ESU id-order constraint (only extend past the root) falls out
// of the same AndNot that excludes visited neighborhoods. Bounds are
// clamped to [0, Len()); an empty or inverted range is a no-op.
func (s *Set) SetRange(lo, hi int) {
	if lo < 0 {
		lo = 0
	}
	if hi > s.n {
		hi = s.n
	}
	if lo >= hi {
		return
	}
	lw, hw := lo/wordBits, (hi-1)/wordBits
	lmask := ^uint64(0) << uint(lo%wordBits)
	hmask := ^uint64(0) >> uint(wordBits-1-(hi-1)%wordBits)
	if lw == hw {
		s.words[lw] |= lmask & hmask
		return
	}
	s.words[lw] |= lmask
	for i := lw + 1; i < hw; i++ {
		s.words[i] = ^uint64(0)
	}
	s.words[hw] |= hmask
}

// trim clears the unaddressable tail bits of the last word so that Count,
// Empty and Equal see a canonical representation.
func (s *Set) trim() {
	if rem := s.n % wordBits; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &Set{words: w, n: s.n}
}

// Copy overwrites s with the contents of other. The sets must have equal
// capacity.
func (s *Set) Copy(other *Set) {
	s.mustMatch(other)
	copy(s.words, other.words)
}

// And intersects s with other in place.
func (s *Set) And(other *Set) {
	s.mustMatch(other)
	for i := range s.words {
		s.words[i] &= other.words[i]
	}
}

// Or unions other into s in place.
func (s *Set) Or(other *Set) {
	s.mustMatch(other)
	for i := range s.words {
		s.words[i] |= other.words[i]
	}
}

// AndNot removes from s every bit set in other.
func (s *Set) AndNot(other *Set) {
	s.mustMatch(other)
	for i := range s.words {
		s.words[i] &^= other.words[i]
	}
}

// Equal reports whether s and other contain exactly the same bits.
func (s *Set) Equal(other *Set) bool {
	if s.n != other.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != other.words[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether s and other share at least one set bit —
// the word-parallel "non-empty intersection" test the kernel hot paths
// use (arc-consistency support checks), without materializing the
// intersection.
func (s *Set) Intersects(other *Set) bool {
	s.mustMatch(other)
	for i := range s.words {
		if s.words[i]&other.words[i] != 0 {
			return true
		}
	}
	return false
}

// ExistsOutside reports whether s contains a member other than skip
// that is set in neither a nor b. Either (or both) of a and b may be
// nil, meaning "exclude nothing". Pass skip < 0 to exclude no member.
// This is the word-parallel form of the induced non-edge support test:
// "does the domain hold a candidate non-adjacent to v?" — one pass over
// the words, no intersection materialized.
func (s *Set) ExistsOutside(a, b *Set, skip int) bool {
	if a != nil {
		s.mustMatch(a)
	}
	if b != nil {
		s.mustMatch(b)
	}
	for i, w := range s.words {
		if a != nil {
			w &^= a.words[i]
		}
		if b != nil {
			w &^= b.words[i]
		}
		if w == 0 {
			continue
		}
		if skip >= 0 && skip/wordBits == i {
			w &^= 1 << uint(skip%wordBits)
		}
		if w != 0 {
			return true
		}
	}
	return false
}

// Subset reports whether every bit of s is also set in other.
func (s *Set) Subset(other *Set) bool {
	s.mustMatch(other)
	for i := range s.words {
		if s.words[i]&^other.words[i] != 0 {
			return false
		}
	}
	return true
}

// Next returns the index of the first set bit ≥ i, or -1 if none exists.
// Iterating all members:
//
//	for v := s.Next(0); v >= 0; v = s.Next(v + 1) { ... }
func (s *Set) Next(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> uint(i%wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// ForEach calls fn for every set bit in ascending order. It stops early if
// fn returns false.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Members appends the indices of all set bits to dst and returns it.
func (s *Set) Members(dst []int) []int {
	s.ForEach(func(i int) bool {
		dst = append(dst, i)
		return true
	})
	return dst
}

// First returns the lowest set bit, or -1 if the set is empty. For a
// singleton domain this is the unique member.
func (s *Set) First() int { return s.Next(0) }

// String renders the set as "{1, 5, 9}" — intended for tests and debugging.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}

func (s *Set) mustMatch(other *Set) {
	if s.n != other.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d != %d", s.n, other.n))
	}
}
