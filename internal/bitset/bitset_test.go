package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(130)
	if s.Len() != 130 {
		t.Fatalf("Len = %d, want 130", s.Len())
	}
	if !s.Empty() || s.Count() != 0 {
		t.Fatalf("new set not empty: count=%d", s.Count())
	}
	if s.First() != -1 {
		t.Fatalf("First on empty = %d, want -1", s.First())
	}
}

func TestNewZeroCapacity(t *testing.T) {
	s := New(0)
	if !s.Empty() || s.Count() != 0 || s.Next(0) != -1 {
		t.Fatal("zero-capacity set should behave as empty")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetClearTest(t *testing.T) {
	s := New(200)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		s.Set(i)
		if !s.Test(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Clear(64)
	if s.Test(64) {
		t.Error("bit 64 still set after Clear")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
}

func TestSetAllRespectsCapacity(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 100, 128, 129} {
		s := New(n)
		s.SetAll()
		if got := s.Count(); got != n {
			t.Errorf("n=%d: Count after SetAll = %d", n, got)
		}
	}
}

func TestClearAll(t *testing.T) {
	s := New(100)
	s.SetAll()
	s.ClearAll()
	if !s.Empty() {
		t.Fatal("set not empty after ClearAll")
	}
}

func TestNextIteration(t *testing.T) {
	s := New(300)
	want := []int{3, 64, 65, 191, 192, 299}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	for v := s.Next(0); v >= 0; v = s.Next(v + 1) {
		got = append(got, v)
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if s.Next(-5) != 3 {
		t.Errorf("Next(-5) = %d, want 3", s.Next(-5))
	}
	if s.Next(300) != -1 {
		t.Errorf("Next(300) = %d, want -1", s.Next(300))
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := New(64)
	for i := 0; i < 64; i += 2 {
		s.Set(i)
	}
	n := 0
	s.ForEach(func(i int) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("visited %d bits, want 5", n)
	}
}

func TestMembers(t *testing.T) {
	s := New(70)
	s.Set(2)
	s.Set(69)
	m := s.Members(nil)
	if len(m) != 2 || m[0] != 2 || m[1] != 69 {
		t.Fatalf("Members = %v", m)
	}
}

func TestBooleanOps(t *testing.T) {
	a, b := New(130), New(130)
	a.Set(1)
	a.Set(100)
	a.Set(129)
	b.Set(100)
	b.Set(64)

	and := a.Clone()
	and.And(b)
	if and.Count() != 1 || !and.Test(100) {
		t.Errorf("And wrong: %v", and)
	}

	or := a.Clone()
	or.Or(b)
	if or.Count() != 4 {
		t.Errorf("Or wrong: %v", or)
	}

	diff := a.Clone()
	diff.AndNot(b)
	if diff.Count() != 2 || diff.Test(100) {
		t.Errorf("AndNot wrong: %v", diff)
	}
}

func TestSubsetEqual(t *testing.T) {
	a, b := New(80), New(80)
	a.Set(5)
	b.Set(5)
	b.Set(70)
	if !a.Subset(b) {
		t.Error("a should be subset of b")
	}
	if b.Subset(a) {
		t.Error("b should not be subset of a")
	}
	if a.Equal(b) {
		t.Error("a and b should differ")
	}
	a.Set(70)
	if !a.Equal(b) {
		t.Error("a and b should now be equal")
	}
	if a.Equal(New(81)) {
		t.Error("different capacities should not be Equal")
	}
}

func TestCopyClone(t *testing.T) {
	a := New(64)
	a.Set(10)
	c := a.Clone()
	c.Set(11)
	if a.Test(11) {
		t.Error("Clone aliases the original")
	}
	b := New(64)
	b.Copy(a)
	if !b.Equal(a) {
		t.Error("Copy did not reproduce contents")
	}
}

func TestMismatchedCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("And with mismatched capacity did not panic")
		}
	}()
	New(10).And(New(11))
}

func TestString(t *testing.T) {
	s := New(10)
	s.Set(1)
	s.Set(5)
	if got := s.String(); got != "{1, 5}" {
		t.Fatalf("String = %q", got)
	}
}

// randomSet builds a set of capacity n from a seed, for property tests.
func randomSet(n int, seed int64) *Set {
	rng := rand.New(rand.NewSource(seed))
	s := New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			s.Set(i)
		}
	}
	return s
}

func TestQuickDeMorgan(t *testing.T) {
	// complement(a OR b) == complement(a) AND complement(b)
	f := func(seedA, seedB int64) bool {
		const n = 257
		a, b := randomSet(n, seedA), randomSet(n, seedB)
		or := a.Clone()
		or.Or(b)
		notOr := New(n)
		notOr.SetAll()
		notOr.AndNot(or)

		notA := New(n)
		notA.SetAll()
		notA.AndNot(a)
		notB := New(n)
		notB.SetAll()
		notB.AndNot(b)
		notA.And(notB)
		return notOr.Equal(notA)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCountMatchesIteration(t *testing.T) {
	f := func(seed int64) bool {
		s := randomSet(191, seed)
		n := 0
		s.ForEach(func(int) bool { n++; return true })
		return n == s.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAndIsIntersection(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		const n = 200
		a, b := randomSet(n, seedA), randomSet(n, seedB)
		got := a.Clone()
		got.And(b)
		for i := 0; i < n; i++ {
			if got.Test(i) != (a.Test(i) && b.Test(i)) {
				return false
			}
		}
		return got.Subset(a) && got.Subset(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNextVisitsExactlyMembers(t *testing.T) {
	f := func(seed int64) bool {
		s := randomSet(130, seed)
		seen := make(map[int]bool)
		for v := s.Next(0); v >= 0; v = s.Next(v + 1) {
			if seen[v] || !s.Test(v) {
				return false
			}
			seen[v] = true
		}
		return len(seen) == s.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSetAndCount(b *testing.B) {
	s := randomSet(4096, 42)
	o := randomSet(4096, 43)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := s.Clone()
		t.And(o)
		_ = t.Count()
	}
}

func BenchmarkNextIteration(b *testing.B) {
	s := randomSet(4096, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := 0
		for v := s.Next(0); v >= 0; v = s.Next(v + 1) {
			n++
		}
	}
}

// TestSetRange pins the word-boundary cases: within one word, spanning
// words, aligned and unaligned endpoints, and clamping.
func TestSetRange(t *testing.T) {
	cases := []struct {
		n, lo, hi int
		want      []int
	}{
		{10, 2, 5, []int{2, 3, 4}},
		{64, 0, 64, nil}, // filled below
		{130, 60, 70, []int{60, 61, 62, 63, 64, 65, 66, 67, 68, 69}},
		{130, 63, 64, []int{63}},
		{130, 64, 65, []int{64}},
		{130, 128, 130, []int{128, 129}},
		{10, 5, 5, nil},           // empty range
		{10, 7, 3, nil},           // inverted range
		{10, -5, 2, []int{0, 1}},  // clamped low
		{10, 8, 100, []int{8, 9}}, // clamped high
	}
	full := make([]int, 64)
	for i := range full {
		full[i] = i
	}
	cases[1].want = full
	for _, tc := range cases {
		s := New(tc.n)
		s.SetRange(tc.lo, tc.hi)
		got := s.Members(nil)
		if len(got) != len(tc.want) {
			t.Fatalf("SetRange(%d,%d) on n=%d: got %v, want %v", tc.lo, tc.hi, tc.n, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("SetRange(%d,%d) on n=%d: got %v, want %v", tc.lo, tc.hi, tc.n, got, tc.want)
			}
		}
	}
}

// TestQuickSetRangeMatchesLoop: SetRange must equal the bit-at-a-time
// loop for arbitrary ranges, without touching bits outside [lo, hi).
func TestQuickSetRangeMatchesLoop(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		fast, slow := New(n), New(n)
		// Pre-populate identically so SetRange proves it only adds bits.
		for i := 0; i < n/4; i++ {
			b := rng.Intn(n)
			fast.Set(b)
			slow.Set(b)
		}
		lo, hi := rng.Intn(n+1), rng.Intn(n+1)
		fast.SetRange(lo, hi)
		for i := lo; i < hi && i < n; i++ {
			if i >= 0 {
				slow.Set(i)
			}
		}
		return fast.Equal(slow)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCensusWalkerOps exercises the exact op sequence the census
// walker's hot path runs — Copy, AndNot, Or on a prefix-seeded mask —
// against a naive set model.
func TestQuickCensusWalkerOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		adj, seen := New(n), New(n)
		model := make(map[int]bool)
		root := rng.Intn(n)
		seen.SetRange(0, root+1)
		for i := 0; i < n/3; i++ {
			adj.Set(rng.Intn(n))
		}
		// ext = adj \ seen, then seen |= adj: the walker's root setup.
		ext := New(n)
		ext.Copy(adj)
		ext.AndNot(seen)
		seen.Or(adj)
		for i := 0; i < n; i++ {
			model[i] = adj.Test(i) && i > root
		}
		for i := 0; i < n; i++ {
			if ext.Test(i) != model[i] {
				return false
			}
			if seen.Test(i) != (i <= root || adj.Test(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPopIterate mirrors the walker's ext-loop idiom: iterate with
// Next while clearing the current bit — every member must be visited
// exactly once and the set must end empty.
func TestPopIterate(t *testing.T) {
	s := New(200)
	want := []int{0, 1, 63, 64, 65, 127, 128, 199}
	for _, b := range want {
		s.Set(b)
	}
	var got []int
	for u := s.First(); u >= 0; u = s.Next(u + 1) {
		s.Clear(u)
		got = append(got, u)
	}
	if len(got) != len(want) {
		t.Fatalf("pop-iterate visited %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pop-iterate visited %v, want %v", got, want)
		}
	}
	if !s.Empty() {
		t.Fatal("set not empty after pop-iterate")
	}
}
