// Package vf2 implements the VF2 subgraph matching algorithm of Cordella,
// Foggia, Sansone and Vento (IEEE TPAMI 2004) as the comparison baseline
// the paper situates RI against (Kimmig et al. §2.2.1).
//
// Unlike RI's static ordering, VF2 uses a *dynamic* variable ordering: at
// every state it selects the next pattern node from the connectivity
// fringe of the partial mapping, paying per-state selection cost for a
// potentially smaller search space. The implementation enumerates
// matches with node- and edge-label compatibility under any
// graph.Semantics (non-induced by default) — the same semantics axis as
// internal/ri — so the two engines are interchangeable oracles for one
// another in tests and baselines in benchmarks.
//
// The classic VF2 feasibility rules include lookahead counts over the
// "terminal" sets (neighbors of the mapped region). For non-induced
// matching only the conservative parts of those rules are valid; we use
// degree lookahead and fringe-connectivity checks — plus, by default,
// the shared semantics-aware domain preprocessing of internal/domain
// (label/degree/NLF filters and arc consistency): domains are computed
// once before the search and consulted as the first feasibility rule,
// so VF2 benefits from the same candidate reductions as the RI-DS
// family while keeping its dynamic ordering. SkipDomains restores the
// classic domain-free baseline for comparison runs.
package vf2

import (
	"context"
	"time"

	"parsge/internal/domain"
	"parsge/internal/graph"
)

// Options configures an enumeration run.
type Options struct {
	// Limit stops the search after this many matches (0 = all).
	Limit int64
	// Visit is called per match with the mapping indexed by pattern
	// node (reused slice; copy to retain). Returning false stops.
	Visit func(mapping []int32) bool
	// Ctx, when non-nil, cooperatively aborts the search soon after the
	// context is cancelled (polled every cancelCheckMask+1 states).
	Ctx context.Context
	// Index, when non-nil and built for the same target, speeds up the
	// domain preprocessing (label buckets + precomputed NLF signatures).
	Index *domain.Index
	// SkipDomains disables domain preprocessing entirely, restoring the
	// classic VF2 baseline (label + degree + edge checks only). Used by
	// comparison benchmarks and differential tests.
	SkipDomains bool
	// SkipNLF / SkipInducedAC disable individual domain filters
	// (ablation and differential testing); see domain.Options.
	SkipNLF       bool
	SkipInducedAC bool
	// ACPasses caps the arc-consistency sweeps of domain preprocessing
	// (0 = fixpoint); see domain.Options.ACPasses.
	ACPasses int
	// Schedule selects the preprocessing filter plan: the zero value,
	// domain.ScheduleAuto, adapts the filters to the target's statistics
	// (see domain.AutoTune); domain.ScheduleFixed runs the full fixed
	// pipeline. The resolved plan is reported in Result.PreprocStats.
	Schedule domain.Schedule
	// Kernel selects the candidate-pool filtering implementation: under
	// the bitset kernel the per-candidate edge and induced non-edge
	// checks are bit tests on graph.BitGraph adjacency rows instead of
	// CSR binary searches. The zero value, domain.KernelAuto, picks by
	// target size.
	Kernel domain.Kernel
	// Semantics selects the matching semantics (zero value: normalized
	// to non-induced subgraph isomorphism, identical to internal/ri's
	// default, so the engines stay interchangeable oracles across all
	// semantics).
	Semantics graph.Semantics
}

// Result reports an enumeration run.
type Result struct {
	Matches int64
	States  int64 // candidate pairs examined
	// PreprocTime covers the domain computation (zero with SkipDomains).
	PreprocTime time.Duration
	// PreprocStats reports the resolved filter plan and per-filter
	// timings of domain preprocessing (nil with SkipDomains).
	PreprocStats *domain.ComputeStats
	MatchTime    time.Duration
	Aborted      bool
	// Unsatisfiable reports that domain preprocessing proved zero
	// matches without any search.
	Unsatisfiable bool
}

const cancelCheckMask = 0x3FF

type state struct {
	gp, gt *graph.Graph
	opts   Options
	doms   *domain.Domains // nil with SkipDomains
	// rows are the target's bitset adjacency rows under the bitset
	// kernel (nil otherwise); feasible reads them instead of the CSR.
	rows *graph.BitGraph

	core      []int32 // pattern node → target node or -1
	used      []bool  // target node used
	injective bool
	induced   bool
	degPrune  bool
	depth     int
	matches   int64
	states    int64
	done      <-chan struct{}
	stopped   bool
	aborted   bool
}

// Enumerate lists all label-compatible embeddings of gp in gt under the
// configured semantics (non-induced subgraph isomorphism by default).
func Enumerate(gp, gt *graph.Graph, opts Options) Result {
	start := time.Now()
	opts.Semantics = opts.Semantics.Norm()
	gp = gp.Simplify() // duplicate pattern edges would poison degree pruning
	s := &state{
		gp:        gp,
		gt:        gt,
		opts:      opts,
		core:      make([]int32, gp.NumNodes()),
		used:      make([]bool, gt.NumNodes()),
		injective: opts.Semantics.Injective(),
		induced:   opts.Semantics.Induced(),
		degPrune:  opts.Semantics.DegreePruning(),
	}
	res := Result{}
	if !opts.SkipDomains {
		dopts := domain.Options{
			Index:         opts.Index,
			ACPasses:      opts.ACPasses,
			SkipNLF:       opts.SkipNLF,
			SkipInducedAC: opts.SkipInducedAC,
			Kernel:        opts.Kernel,
			Semantics:     opts.Semantics,
		}
		if opts.Schedule == domain.ScheduleAuto {
			dopts = domain.AutoTune(dopts, gp, gt)
		}
		var dstats domain.ComputeStats
		s.doms, dstats = domain.ComputeWithStats(gp, gt, dopts)
		s.rows = dstats.Rows
		res.PreprocStats = &dstats
		res.PreprocTime = time.Since(start)
		if gp.NumNodes() > 0 && s.doms.AnyEmpty() {
			res.Unsatisfiable = true
			return res
		}
	}
	if s.rows == nil && domain.ResolveKernel(opts.Kernel, gt.NumNodes()) == domain.KernelBitset {
		if opts.Index != nil && opts.Index.NumNodes() == gt.NumNodes() {
			s.rows = opts.Index.Rows(gt)
		} else {
			s.rows = graph.NewBitGraph(gt)
		}
	}
	for i := range s.core {
		s.core[i] = -1
	}
	if opts.Ctx != nil {
		s.done = opts.Ctx.Done()
		if opts.Ctx.Err() != nil {
			s.aborted = true
		}
	}
	// Injective semantics cannot fit a larger pattern into a smaller
	// target; homomorphisms can (images may coincide), so the size gate
	// only applies when injective.
	matchStart := time.Now()
	sizeOK := !s.injective || gp.NumNodes() <= gt.NumNodes()
	if !s.aborted && gp.NumNodes() > 0 && sizeOK {
		s.match()
	}
	res.Matches = s.matches
	res.States = s.states
	res.MatchTime = time.Since(matchStart)
	res.Aborted = s.aborted
	return res
}

// nextPatternNode picks the unmapped pattern node with dynamic ordering:
// prefer nodes adjacent to the mapped region (connectivity), break ties
// by larger degree then smaller id. Returns -1 when all nodes are mapped.
func (s *state) nextPatternNode() int32 {
	best, bestConn, bestDeg := int32(-1), -1, -1
	for u := int32(0); u < int32(s.gp.NumNodes()); u++ {
		if s.core[u] >= 0 {
			continue
		}
		conn := 0
		for _, w := range s.gp.OutNeighbors(u) {
			if s.core[w] >= 0 {
				conn = 1
				break
			}
		}
		if conn == 0 {
			for _, w := range s.gp.InNeighbors(u) {
				if s.core[w] >= 0 {
					conn = 1
					break
				}
			}
		}
		deg := s.gp.Degree(u)
		if conn > bestConn || (conn == bestConn && deg > bestDeg) {
			best, bestConn, bestDeg = u, conn, deg
		}
	}
	return best
}

// candidatePairs iterates candidate target nodes for pattern node u: the
// appropriately-directed neighbors of a mapped pattern neighbor's image
// when one exists, else the whole target vertex set.
func (s *state) candidates(u int32) []int32 {
	for _, w := range s.gp.OutNeighbors(u) {
		if tv := s.core[w]; tv >= 0 {
			// pattern edge (u, w): target edge (cand, tv) required, so
			// candidates are in-neighbors of tv.
			return s.gt.InNeighbors(tv)
		}
	}
	for _, w := range s.gp.InNeighbors(u) {
		if tv := s.core[w]; tv >= 0 {
			return s.gt.OutNeighbors(tv)
		}
	}
	return nil // caller falls back to all target nodes
}

// feasible validates mapping u→v under the configured semantics plus a
// conservative degree lookahead (when Semantics.DegreePruning() — under
// homomorphism several pattern edges may share one target edge, so the
// degree bound would wrongly prune). With domain preprocessing, the
// domain membership test subsumes the label and degree rules and adds
// the NLF and arc-consistency reductions.
func (s *state) feasible(u, v int32) bool {
	if s.injective && s.used[v] {
		return false
	}
	if s.doms != nil {
		if !s.doms.Of(u).Test(int(v)) {
			return false
		}
	} else {
		if s.gt.NodeLabel(v) != s.gp.NodeLabel(u) {
			return false
		}
		if s.degPrune &&
			(s.gt.OutDegree(v) < s.gp.OutDegree(u) || s.gt.InDegree(v) < s.gp.InDegree(u)) {
			return false
		}
	}
	// Every mapped pattern neighbor must be consistent now. Under the
	// bitset kernel the edge tests are row bit tests: exact when
	// per-label rows exist, direction-row prefilter (miss is definitive,
	// hit confirms the label) otherwise.
	labelRows := s.rows != nil && s.rows.HasLabelRows()
	adj := s.gp.OutNeighbors(u)
	labs := s.gp.OutEdgeLabels(u)
	for i, w := range adj {
		if tw := s.core[w]; tw >= 0 {
			if labelRows {
				r := s.rows.OutLab[labs[i]]
				if r == nil || !r[v].Test(int(tw)) {
					return false
				}
				continue
			}
			if s.rows != nil && !s.rows.Out[v].Test(int(tw)) {
				return false
			}
			if !s.gt.HasEdgeLabeled(v, tw, labs[i]) {
				return false
			}
		} else if w == u {
			if !s.gt.HasEdgeLabeled(v, v, labs[i]) {
				return false
			}
		}
	}
	adj = s.gp.InNeighbors(u)
	labs = s.gp.InEdgeLabels(u)
	for i, w := range adj {
		if tw := s.core[w]; tw >= 0 && w != u {
			if labelRows {
				r := s.rows.InLab[labs[i]]
				if r == nil || !r[v].Test(int(tw)) {
					return false
				}
				continue
			}
			if s.rows != nil && !s.rows.In[v].Test(int(tw)) {
				return false
			}
			if !s.gt.HasEdgeLabeled(tw, v, labs[i]) {
				return false
			}
		}
	}
	if s.induced {
		// Pattern non-edges (per direction, any label) must map onto
		// target non-edges, self-loops included.
		if rows := s.rows; rows != nil {
			outRow, inRow := rows.Out[v], rows.In[v]
			if !s.gp.HasEdge(u, u) && outRow.Test(int(v)) {
				return false
			}
			for w := int32(0); w < int32(s.gp.NumNodes()); w++ {
				tw := s.core[w]
				if tw < 0 || w == u {
					continue
				}
				if !s.gp.HasEdge(u, w) && outRow.Test(int(tw)) {
					return false
				}
				if !s.gp.HasEdge(w, u) && inRow.Test(int(tw)) {
					return false
				}
			}
			return true
		}
		if !s.gp.HasEdge(u, u) && s.gt.HasEdge(v, v) {
			return false
		}
		for w := int32(0); w < int32(s.gp.NumNodes()); w++ {
			tw := s.core[w]
			if tw < 0 || w == u {
				continue
			}
			if !s.gp.HasEdge(u, w) && s.gt.HasEdge(v, tw) {
				return false
			}
			if !s.gp.HasEdge(w, u) && s.gt.HasEdge(tw, v) {
				return false
			}
		}
	}
	return true
}

func (s *state) match() {
	if s.depth == s.gp.NumNodes() {
		s.emit()
		return
	}
	u := s.nextPatternNode()
	cands := s.candidates(u)
	if cands != nil {
		for i, v := range cands {
			if i > 0 && cands[i-1] == v {
				continue // parallel target edges: same candidate node
			}
			s.try(u, v)
			if s.stopped {
				return
			}
		}
		return
	}
	// No mapped pattern neighbor: candidates are u's precomputed domain
	// when available, the whole target vertex set otherwise.
	if s.doms != nil {
		s.doms.Of(u).ForEach(func(vi int) bool {
			s.try(u, int32(vi))
			return !s.stopped
		})
		return
	}
	for v := int32(0); v < int32(s.gt.NumNodes()); v++ {
		s.try(u, v)
		if s.stopped {
			return
		}
	}
}

func (s *state) try(u, v int32) {
	s.states++
	if s.states&cancelCheckMask == 0 && s.done != nil {
		select {
		case <-s.done:
			s.aborted = true
			s.stopped = true
			return
		default:
		}
	}
	if !s.feasible(u, v) {
		return
	}
	s.core[u] = v
	s.used[v] = true
	s.depth++
	s.match()
	s.depth--
	s.used[v] = false
	s.core[u] = -1
}

func (s *state) emit() {
	s.matches++
	if s.opts.Visit != nil && !s.opts.Visit(s.core) {
		// Visit stop = abort (truncated result); limit stop is not.
		s.stopped = true
		s.aborted = true
		return
	}
	if s.opts.Limit > 0 && s.matches >= s.opts.Limit {
		s.stopped = true
	}
}
