package vf2

import (
	"context"
	"testing"
	"testing/quick"

	"parsge/internal/graph"
	"parsge/internal/ri"
	"parsge/internal/testutil"
)

func TestTriangleRotations(t *testing.T) {
	bp := &graph.Builder{}
	bp.AddNodes(3)
	bp.AddEdge(0, 1, 0)
	bp.AddEdge(1, 2, 0)
	bp.AddEdge(2, 0, 0)
	gp := bp.MustBuild()
	res := Enumerate(gp, gp, Options{})
	if res.Matches != 3 {
		t.Fatalf("triangle self-match = %d, want 3 rotations", res.Matches)
	}
}

func TestEmptyAndOversizedPattern(t *testing.T) {
	gt := func() *graph.Graph {
		b := &graph.Builder{}
		b.AddNodes(2)
		b.AddEdge(0, 1, 0)
		return b.MustBuild()
	}()
	if res := Enumerate((&graph.Builder{}).MustBuild(), gt, Options{}); res.Matches != 0 {
		t.Error("empty pattern should yield 0 matches")
	}
	big := &graph.Builder{}
	big.AddNodes(5)
	if res := Enumerate(big.MustBuild(), gt, Options{}); res.Matches != 0 {
		t.Error("pattern larger than target should yield 0 matches")
	}
}

func TestLabels(t *testing.T) {
	bp := &graph.Builder{}
	bp.AddNode(1)
	bp.AddNode(1)
	bp.AddEdge(0, 1, 7)
	gp := bp.MustBuild()

	bt := &graph.Builder{}
	bt.AddNode(1)
	bt.AddNode(1)
	bt.AddNode(2)
	bt.AddEdge(0, 1, 7)
	bt.AddEdge(1, 2, 7) // wrong node label at 2
	bt.AddEdge(1, 0, 8) // wrong edge label
	gt := bt.MustBuild()
	if res := Enumerate(gp, gt, Options{}); res.Matches != 1 {
		t.Fatalf("matches = %d, want 1", res.Matches)
	}
}

func TestSelfLoop(t *testing.T) {
	bp := &graph.Builder{}
	bp.AddNodes(1)
	bp.AddEdge(0, 0, 0)
	gp := bp.MustBuild()
	bt := &graph.Builder{}
	bt.AddNodes(3)
	bt.AddEdge(0, 0, 0)
	bt.AddEdge(1, 2, 0)
	gt := bt.MustBuild()
	if res := Enumerate(gp, gt, Options{}); res.Matches != 1 {
		t.Fatalf("self-loop matches = %d, want 1", res.Matches)
	}
}

func TestLimitAndVisit(t *testing.T) {
	bp := &graph.Builder{}
	bp.AddNodes(1)
	gp := bp.MustBuild()
	bt := &graph.Builder{}
	bt.AddNodes(10)
	gt := bt.MustBuild()

	res := Enumerate(gp, gt, Options{Limit: 4})
	if res.Matches != 4 {
		t.Fatalf("limit ignored: %d", res.Matches)
	}
	calls := 0
	res = Enumerate(gp, gt, Options{Visit: func(m []int32) bool {
		calls++
		return calls < 3
	}})
	if calls != 3 || res.Matches != 3 {
		t.Fatalf("visit stop wrong: calls=%d matches=%d", calls, res.Matches)
	}
}

func TestCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	bp := &graph.Builder{}
	bp.AddNodes(1)
	bt := &graph.Builder{}
	bt.AddNodes(3000)
	res := Enumerate(bp.MustBuild(), bt.MustBuild(), Options{Ctx: ctx})
	if !res.Aborted {
		t.Fatal("pre-cancelled context did not abort a 3000-candidate scan")
	}
}

// TestQuickAgreesWithBruteForce cross-validates VF2 against the ground
// truth on random instances.
func TestQuickAgreesWithBruteForce(t *testing.T) {
	f := func(seed int64, extract bool) bool {
		gp, gt := testutil.RandomInstance(seed, testutil.InstanceOptions{
			TargetNodes:  10,
			TargetEdges:  30,
			PatternNodes: 4,
			Extract:      extract,
		})
		return Enumerate(gp, gt, Options{}).Matches == testutil.BruteCount(gp, gt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAgreesWithRI: the two independent engines must agree — this is
// the strongest mutual validation in the suite.
func TestQuickAgreesWithRI(t *testing.T) {
	f := func(seed int64) bool {
		gp, gt := testutil.RandomInstance(seed, testutil.InstanceOptions{
			TargetNodes:  16,
			TargetEdges:  70,
			PatternNodes: 5,
			Extract:      true,
		})
		want, err := ri.Enumerate(gp, gt, ri.Options{Variant: ri.VariantRIDSSIFC}, ri.RunOptions{})
		if err != nil {
			return false
		}
		return Enumerate(gp, gt, Options{}).Matches == want.Matches
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkVF2(b *testing.B) {
	gp, gt := testutil.RandomInstance(11, testutil.InstanceOptions{
		TargetNodes:  60,
		TargetEdges:  400,
		PatternNodes: 6,
		Extract:      true,
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Enumerate(gp, gt, Options{})
	}
}

// TestSemanticsAgainstOracle validates the engine under every matching
// semantics directly at the package level (the facade-level differential
// lives in the root package).
func TestSemanticsAgainstOracle(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		gp, gt := testutil.RandomInstance(seed, testutil.InstanceOptions{
			TargetNodes: 8, TargetEdges: 20, PatternNodes: 4, Nasty: seed%2 == 0,
		})
		for _, sem := range []graph.Semantics{graph.SubgraphIso, graph.InducedIso, graph.Homomorphism} {
			want := testutil.BruteCountSem(gp, gt, sem)
			res := Enumerate(gp, gt, Options{Semantics: sem})
			if res.Matches != want {
				t.Errorf("seed %d under %v: VF2 = %d, oracle = %d", seed, sem, res.Matches, want)
			}
		}
	}
}

// TestHomomorphismFoldsPath: the canonical non-injective case — the path
// P3 folds onto a single undirected edge in exactly two ways.
func TestHomomorphismFoldsPath(t *testing.T) {
	bp := &graph.Builder{}
	bp.AddNodes(3)
	bp.AddEdge(0, 1, 0)
	bp.AddEdge(1, 0, 0)
	bp.AddEdge(1, 2, 0)
	bp.AddEdge(2, 1, 0)
	gp := bp.MustBuild()
	bt := &graph.Builder{}
	bt.AddNodes(2)
	bt.AddEdge(0, 1, 0)
	bt.AddEdge(1, 0, 0)
	gt := bt.MustBuild()
	if res := Enumerate(gp, gt, Options{Semantics: graph.Homomorphism}); res.Matches != 2 {
		t.Fatalf("P3 -> K2 homs = %d, want 2", res.Matches)
	}
	if res := Enumerate(gp, gt, Options{}); res.Matches != 0 {
		t.Fatalf("P3 -> K2 subgraph isos = %d, want 0", res.Matches)
	}
}

// TestDomainsMatchBaseline: the domain-backed default and the classic
// domain-free baseline (SkipDomains) must count identically under every
// semantics, while the default never explores more states — the wiring
// of the shared pruning subsystem into VF2 is an optimization, not a
// semantics change.
func TestDomainsMatchBaseline(t *testing.T) {
	sems := []graph.Semantics{graph.SubgraphIso, graph.InducedIso, graph.Homomorphism}
	for seed := int64(0); seed < 30; seed++ {
		gp, gt := testutil.RandomInstance(seed, testutil.InstanceOptions{
			TargetNodes: 10, TargetEdges: 30, PatternNodes: 4, Extract: seed%2 == 0, Nasty: seed%3 == 0,
		})
		for _, sem := range sems {
			pruned := Enumerate(gp, gt, Options{Semantics: sem})
			base := Enumerate(gp, gt, Options{Semantics: sem, SkipDomains: true})
			if pruned.Matches != base.Matches {
				t.Fatalf("seed %d %v: pruned=%d baseline=%d matches", seed, sem, pruned.Matches, base.Matches)
			}
			if pruned.States > base.States {
				t.Errorf("seed %d %v: domains enlarged the search: %d > %d states",
					seed, sem, pruned.States, base.States)
			}
		}
	}
}

// TestUnsatisfiableViaDomains: a pattern whose label does not occur in
// the target is rejected by preprocessing without visiting any state.
func TestUnsatisfiableViaDomains(t *testing.T) {
	bp := &graph.Builder{}
	bp.AddNode(7)
	gp := bp.MustBuild()
	bt := &graph.Builder{}
	bt.AddNodes(3)
	gt := bt.MustBuild()
	res := Enumerate(gp, gt, Options{})
	if !res.Unsatisfiable || res.Matches != 0 || res.States != 0 {
		t.Fatalf("want unsatisfiable with zero work, got %+v", res)
	}
}
