package parsge

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"parsge/internal/domain"
	"parsge/internal/testutil"
)

// randomUpdateTarget builds a random labeled target. When undirected is
// set, every edge is added in both directions (the usual undirected
// encoding).
func randomUpdateTarget(rng *rand.Rand, undirected bool) *Graph {
	n := 2 + rng.Intn(8)
	b := NewBuilder(n, 0)
	for i := 0; i < n; i++ {
		b.AddNode(Label(rng.Intn(3)))
	}
	m := rng.Intn(3 * n)
	for i := 0; i < m; i++ {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		l := Label(rng.Intn(3))
		if undirected {
			b.AddEdgeBoth(u, v, l)
		} else {
			b.AddEdge(u, v, l)
		}
	}
	return b.MustBuild()
}

// randomUpdateBatch mixes adds, removes of existing arcs (so removals
// are not mostly no-ops), removes of random (often absent) arcs, and
// exact duplicates. Undirected targets get both directions per update.
func randomUpdateBatch(rng *rand.Rand, g *Graph, undirected bool) []EdgeUpdate {
	n := int32(g.NumNodes())
	edges := g.Edges()
	k := 1 + rng.Intn(6)
	var ups []EdgeUpdate
	add := func(u EdgeUpdate) {
		ups = append(ups, u)
		if undirected && u.From != u.To {
			ups = append(ups, EdgeUpdate{From: u.To, To: u.From, Label: u.Label, Remove: u.Remove})
		}
	}
	for i := 0; i < k; i++ {
		switch c := rng.Intn(4); {
		case c == 0 && len(edges) > 0: // remove an existing arc
			e := edges[rng.Intn(len(edges))]
			add(EdgeUpdate{From: e.From, To: e.To, Label: e.Label, Remove: true})
		case c == 1: // remove a random (likely absent) arc: no-op fodder
			add(EdgeUpdate{From: rng.Int31n(n), To: rng.Int31n(n), Label: Label(rng.Intn(3)), Remove: true})
		case c == 2 && len(ups) > 0: // duplicate an earlier update verbatim
			ups = append(ups, ups[rng.Intn(len(ups))])
		default: // add
			add(EdgeUpdate{From: rng.Int31n(n), To: rng.Int31n(n), Label: Label(rng.Intn(3))})
		}
	}
	return ups
}

// applyOracle maintains the brute-force edge-multiset oracle: the edge
// list updated naively, update by update.
func applyOracle(edges []Edge, ups []EdgeUpdate) []Edge {
	out := append([]Edge(nil), edges...)
	for _, u := range ups {
		e := Edge{From: u.From, To: u.To, Label: u.Label}
		if !u.Remove {
			out = append(out, e)
			continue
		}
		for i, ex := range out {
			if ex == e {
				out[i] = out[len(out)-1]
				out = out[:len(out)-1]
				break
			}
		}
	}
	return out
}

func graphFromEdges(t *testing.T, labels []Label, edges []Edge) *Graph {
	t.Helper()
	b := NewBuilder(len(labels), len(edges))
	for _, l := range labels {
		b.AddNode(l)
	}
	for _, e := range edges {
		b.AddEdge(e.From, e.To, e.Label)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func nodeLabels(g *Graph) []Label {
	labels := make([]Label, g.NumNodes())
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		labels[v] = g.NodeLabel(v)
	}
	return labels
}

func sortedEdges(g *Graph) []Edge {
	es := g.Edges()
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Label < b.Label
	})
	return es
}

// TestApplyUpdatesDifferential is the headline battery of the mutable-
// target API (ISSUE 7 satellite 1): across 120 random update sequences
// (60 directed, 60 undirected; each a chain of batches mixing adds,
// removes, no-ops and duplicates), after every batch the incrementally-
// maintained target — graph edge multiset, domain.Index with its NLF
// signatures and label buckets, cached TargetStats down to the float
// bits — must equal a from-scratch NewTarget rebuild.
func TestApplyUpdatesDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, undirected := range []bool{false, true} {
		for trial := 0; trial < 60; trial++ {
			g := randomUpdateTarget(rng, undirected)
			tgt, err := NewTarget(g, TargetOptions{NLF: NLFExact})
			if err != nil {
				t.Fatal(err)
			}
			// Materialize the bitset rows so every batch below goes
			// through the incremental touched-row Rebuild, which the
			// IndexEqual comparison then pins against a clean build.
			tgt.state.Load().index.Rows(tgt.Graph())
			oracle := g.Edges()
			labels := nodeLabels(g)
			wantEpoch := uint64(0)
			for batch := 0; batch < 4; batch++ {
				ups := randomUpdateBatch(rng, tgt.Graph(), undirected)
				before := sortedEdges(tgt.Graph())
				upRes, err := tgt.ApplyUpdates(context.Background(), ups)
				if err != nil {
					t.Fatal(err)
				}
				oracle = applyOracle(oracle, ups)
				og := graphFromEdges(t, labels, oracle)

				// Graph: same edge multiset as the naive oracle.
				got, want := sortedEdges(tgt.Graph()), sortedEdges(og)
				if len(got) != len(want) {
					t.Fatalf("undirected=%v trial %d batch %d: %d edges, oracle %d", undirected, trial, batch, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("undirected=%v trial %d batch %d: edge %d = %v, oracle %v", undirected, trial, batch, i, got[i], want[i])
					}
				}

				// Epoch: bumps exactly when the edge multiset moved.
				changed := len(before) != len(got)
				for i := 0; !changed && i < len(got); i++ {
					changed = before[i] != got[i]
				}
				if changed {
					wantEpoch++
				}
				if upRes.Epoch != wantEpoch || tgt.Epoch() != wantEpoch {
					t.Fatalf("undirected=%v trial %d batch %d: epoch %d/%d, want %d (changed=%v)",
						undirected, trial, batch, upRes.Epoch, tgt.Epoch(), wantEpoch, changed)
				}

				// Index: bit-identical to a from-scratch rebuild —
				// signatures, label buckets, stats floats and all.
				rebuilt, err := NewTarget(og, TargetOptions{NLF: NLFExact})
				if err != nil {
					t.Fatal(err)
				}
				si, sr := tgt.state.Load(), rebuilt.state.Load()
				sr.index.Rows(rebuilt.Graph())
				if ok, diff := domain.IndexEqual(si.index, sr.index); !ok {
					t.Fatalf("undirected=%v trial %d batch %d: incremental index differs from rebuild: %s", undirected, trial, batch, diff)
				}
				if si.meanDegree != sr.meanDegree || si.autoAlgorithm != sr.autoAlgorithm {
					t.Fatalf("undirected=%v trial %d batch %d: snapshot stats drifted: mean %v vs %v, auto %v vs %v",
						undirected, trial, batch, si.meanDegree, sr.meanDegree, si.autoAlgorithm, sr.autoAlgorithm)
				}
			}
		}
	}
}

// TestMetamorphicUpdates (ISSUE 7 satellite 2): for random pattern/
// target pairs, Enumerate after ApplyUpdates(batch) must equal
// Enumerate on a from-scratch rebuild of the updated graph — for all
// three semantics across the RI-family sequential engine, the parallel
// steal pool, VF2 and LAD — and both must equal the brute-force oracle.
func TestMetamorphicUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	engines := []struct {
		name string
		opts Options
	}{
		{"ri", Options{Algorithm: RIDSSIFC, Workers: 1}},
		{"ri/bitset", Options{Algorithm: RIDSSIFC, Workers: 1, Pruning: PruningOptions{Kernel: KernelBitset}}},
		{"ri/slice", Options{Algorithm: RIDSSIFC, Workers: 1, Pruning: PruningOptions{Kernel: KernelSlice}}},
		{"steal", Options{Algorithm: RIDSSIFC, Workers: 4}},
		{"steal/bitset", Options{Algorithm: RIDSSIFC, Workers: 4, Pruning: PruningOptions{Kernel: KernelBitset}}},
		{"vf2", Options{Algorithm: VF2}},
		{"vf2/slice", Options{Algorithm: VF2, Pruning: PruningOptions{Kernel: KernelSlice}}},
		{"lad", Options{Algorithm: LAD}},
		{"lad/slice", Options{Algorithm: LAD, Pruning: PruningOptions{Kernel: KernelSlice}}},
	}
	for trial := 0; trial < 30; trial++ {
		g := randomUpdateTarget(rng, trial%2 == 0)
		tgt, err := NewTarget(g, TargetOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// Force the bitset rows up front so every batch exercises the
		// incremental Rebuild; after each batch they must be bit-identical
		// to rows built from scratch on the same logical graph.
		tgt.state.Load().index.Rows(tgt.Graph())
		oracle := g.Edges()
		labels := nodeLabels(g)
		for batch := 0; batch < 3; batch++ {
			ups := randomUpdateBatch(rng, tgt.Graph(), false)
			if _, err := tgt.ApplyUpdates(context.Background(), ups); err != nil {
				t.Fatal(err)
			}
			oracle = applyOracle(oracle, ups)
			scratch, err := NewTarget(graphFromEdges(t, labels, oracle), TargetOptions{})
			if err != nil {
				t.Fatal(err)
			}
			scratch.state.Load().index.Rows(scratch.Graph())
			if ok, diff := domain.IndexEqual(tgt.state.Load().index, scratch.state.Load().index); !ok {
				t.Fatalf("trial %d batch %d: incremental rows differ from rebuild: %s", trial, batch, diff)
			}
		}
		og := graphFromEdges(t, labels, oracle)
		rebuilt, err := NewTarget(og, TargetOptions{})
		if err != nil {
			t.Fatal(err)
		}
		pattern := testutil.ExtractPattern(rng, og, 2+rng.Intn(3))
		for _, sem := range []Semantics{SubgraphIso, InducedIso, Homomorphism} {
			want := testutil.BruteCountSem(pattern, og, sem)
			for _, eng := range engines {
				opts := eng.opts
				opts.Semantics = sem
				inc, err := tgt.Count(context.Background(), pattern, opts)
				if err != nil {
					t.Fatalf("trial %d %s/%v on updated target: %v", trial, eng.name, sem, err)
				}
				reb, err := rebuilt.Count(context.Background(), pattern, opts)
				if err != nil {
					t.Fatalf("trial %d %s/%v on rebuilt target: %v", trial, eng.name, sem, err)
				}
				if inc != reb || inc != want {
					t.Fatalf("trial %d %s under %v: updated=%d rebuilt=%d oracle=%d\npattern=%v\ntarget=%v",
						trial, eng.name, sem, inc, reb, want, pattern.Edges(), og.Edges())
				}
			}
		}
	}
}

// TestApplyUpdatesEpochs pins the epoch contract: 0 at NewTarget, +1
// per effective batch, unchanged by no-op batches, stamped into every
// Result and CensusResult, and frozen by pre-commit ctx cancellation.
func TestApplyUpdatesEpochs(t *testing.T) {
	b := NewBuilder(4, 4)
	for i := 0; i < 4; i++ {
		b.AddNode(Label(i % 2))
	}
	b.AddEdgeBoth(0, 1, 0)
	b.AddEdgeBoth(1, 2, 0)
	g := b.MustBuild()
	tgt, err := NewTarget(g, TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tgt.Epoch() != 0 {
		t.Fatalf("fresh target epoch %d", tgt.Epoch())
	}
	pat := NewBuilder(2, 2)
	pat.AddNode(0)
	pat.AddNode(1)
	pat.AddEdgeBoth(0, 1, 0)
	pattern := pat.MustBuild()

	res, err := tgt.Enumerate(context.Background(), pattern, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 0 {
		t.Fatalf("pre-update result epoch %d", res.Epoch)
	}

	// No-op batch: absent-arc removal. Epoch must not move.
	up, err := tgt.ApplyUpdates(context.Background(), []EdgeUpdate{{From: 3, To: 3, Label: 7, Remove: true}})
	if err != nil {
		t.Fatal(err)
	}
	if up.Epoch != 0 || up.NoOps != 1 || up.Applied != 0 || tgt.Epoch() != 0 {
		t.Fatalf("no-op batch: %+v, epoch now %d", up, tgt.Epoch())
	}

	// Effective batch.
	up, err = tgt.ApplyUpdates(context.Background(), []EdgeUpdate{{From: 2, To: 3, Label: 0}, {From: 3, To: 2, Label: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if up.Epoch != 1 || up.Applied != 2 || up.TouchedVertices != 2 {
		t.Fatalf("effective batch: %+v", up)
	}
	res, err = tgt.Enumerate(context.Background(), pattern, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 1 {
		t.Fatalf("post-update result epoch %d", res.Epoch)
	}
	cres, err := tgt.Census(context.Background(), CensusOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cres.Epoch != 1 {
		t.Fatalf("census epoch %d", cres.Epoch)
	}

	// Cancelled context: the batch is discarded wholesale.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tgt.ApplyUpdates(ctx, []EdgeUpdate{{From: 0, To: 3, Label: 1}}); err == nil {
		t.Fatal("cancelled update did not error")
	}
	if tgt.Epoch() != 1 || tgt.Graph().HasEdgeLabeled(0, 3, 1) {
		t.Fatal("cancelled update committed state")
	}

	// Invalid endpoint: batch rejected atomically.
	if _, err := tgt.ApplyUpdates(context.Background(), []EdgeUpdate{{From: 0, To: 1, Label: 1}, {From: 0, To: 99, Label: 0}}); err == nil {
		t.Fatal("out-of-range update did not error")
	}
	if tgt.Epoch() != 1 || tgt.Graph().HasEdgeLabeled(0, 1, 1) {
		t.Fatal("failed batch leaked state")
	}
}

// TestReleaseEnsureIndex covers the Router's LRU eviction primitive: a
// released index keeps the target correct (index-free preprocessing)
// and EnsureIndex restores a bit-identical index without moving the
// epoch.
func TestReleaseEnsureIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomUpdateTarget(rng, true)
	tgt, err := NewTarget(g, TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pattern := testutil.ExtractPattern(rng, g, 3)
	want := testutil.BruteCountSem(pattern, g, SubgraphIso)

	if !tgt.HasIndex() {
		t.Fatal("fresh target lacks an index")
	}
	if !tgt.ReleaseIndex() {
		t.Fatal("ReleaseIndex returned false with an index present")
	}
	if tgt.HasIndex() || tgt.ReleaseIndex() {
		t.Fatal("double release")
	}
	if tgt.Epoch() != 0 {
		t.Fatal("ReleaseIndex moved the epoch")
	}
	got, err := tgt.Count(context.Background(), pattern, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("index-free count %d, want %d", got, want)
	}
	if !tgt.EnsureIndex() || !tgt.HasIndex() {
		t.Fatal("EnsureIndex did not rebuild")
	}
	if tgt.EnsureIndex() {
		t.Fatal("EnsureIndex rebuilt twice")
	}
	ref, err := NewTarget(tgt.Graph(), TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ok, diff := domain.IndexEqual(tgt.state.Load().index, ref.state.Load().index); !ok {
		t.Fatalf("EnsureIndex index differs from fresh build: %s", diff)
	}
	// Updates applied while the index is released: the next EnsureIndex
	// must reflect the updated graph.
	tgt.ReleaseIndex()
	if _, err := tgt.ApplyUpdates(context.Background(), []EdgeUpdate{{From: 0, To: 1, Label: 2}}); err != nil {
		t.Fatal(err)
	}
	tgt.EnsureIndex()
	ref, err = NewTarget(tgt.Graph(), TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ok, diff := domain.IndexEqual(tgt.state.Load().index, ref.state.Load().index); !ok {
		t.Fatalf("post-update EnsureIndex differs from fresh build: %s", diff)
	}

	// SkipLabelIndex targets opted out for good.
	skip, err := NewTarget(g, TargetOptions{SkipLabelIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if skip.HasIndex() || skip.EnsureIndex() || skip.ReleaseIndex() {
		t.Fatal("SkipLabelIndex target grew an index")
	}
}

// TestPlanHistogramEpochs is the regression test of ISSUE 7 satellite
// 5: the plan histogram and the census buckets used to alias traffic
// across mutation epochs by construction — a histogram consumer could
// not tell pre- from post-update queries apart. Buckets now carry the
// epoch; Bucket() aggregates for back-compat, BucketAt() separates.
func TestPlanHistogramEpochs(t *testing.T) {
	b := NewBuilder(4, 4)
	for i := 0; i < 4; i++ {
		b.AddNode(Label(i % 2))
	}
	b.AddEdgeBoth(0, 1, 0)
	b.AddEdgeBoth(1, 2, 0)
	g := b.MustBuild()
	tgt, err := NewTarget(g, TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pat := NewBuilder(2, 2)
	pat.AddNode(0)
	pat.AddNode(1)
	pat.AddEdgeBoth(0, 1, 0)
	pattern := pat.MustBuild()

	run := func() string {
		res, err := tgt.Enumerate(context.Background(), pattern, Options{Algorithm: RIDSSIFC})
		if err != nil {
			t.Fatal(err)
		}
		if res.Plan == nil {
			t.Fatal("expected a plan")
		}
		return res.Plan.String()
	}
	plan0 := run()
	if _, err := tgt.Census(context.Background(), CensusOptions{K: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := tgt.ApplyUpdates(context.Background(), []EdgeUpdate{{From: 2, To: 3, Label: 0}, {From: 3, To: 2, Label: 0}}); err != nil {
		t.Fatal(err)
	}
	plan1 := run()
	if _, err := tgt.Census(context.Background(), CensusOptions{K: 3}); err != nil {
		t.Fatal(err)
	}

	h := tgt.Stats().Plans
	if got := h.BucketAt(0, plan0).Count; got != 1 {
		t.Fatalf("epoch-0 bucket %q count %d, want 1", plan0, got)
	}
	if got := h.BucketAt(1, plan1).Count; got != 1 {
		t.Fatalf("epoch-1 bucket %q count %d, want 1", plan1, got)
	}
	if got := h.BucketAt(0, "census:k=3").Count; got != 1 {
		t.Fatalf("epoch-0 census bucket count %d, want 1", got)
	}
	if got := h.BucketAt(1, "census:k=3").Count; got != 1 {
		t.Fatalf("epoch-1 census bucket count %d, want 1", got)
	}
	// The aggregate view still sums across epochs (back-compat).
	if got := h.Bucket("census:k=3").Count; got != 2 {
		t.Fatalf("aggregate census bucket count %d, want 2", got)
	}
	if plan0 == plan1 {
		if got := h.Bucket(plan0).Count; got != 2 {
			t.Fatalf("aggregate plan bucket count %d, want 2", got)
		}
	}
	// The cross-epoch aliasing the old code permitted by construction:
	// one bucket absorbing both epochs' counts. With epochs in the key
	// there must be two distinct census buckets.
	census := 0
	for _, bk := range h.Buckets {
		if bk.Plan == "census:k=3" {
			census++
		}
	}
	if census != 2 {
		t.Fatalf("census buckets across epochs: %d, want 2 (cross-epoch aliasing regressed)", census)
	}
}
