package parsge

import (
	"context"
	"testing"
	"time"
)

// costClique builds an unlabeled complete graph on n nodes.
func costClique(n int32) *Graph {
	b := NewBuilder(int(n), int(n*(n-1)))
	b.AddNodes(int(n))
	for i := int32(0); i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdgeBoth(i, j, NoLabel)
		}
	}
	return b.MustBuild()
}

// costStar builds an unlabeled undirected star with the given leaf count.
func costStar(leaves int) *Graph {
	b := NewBuilder(1+leaves, 2*leaves)
	b.AddNodes(1 + leaves)
	for i := 1; i <= leaves; i++ {
		b.AddEdgeBoth(0, int32(i), NoLabel)
	}
	return b.MustBuild()
}

// TestTruncatedRunsRecordedSeparately pins the estimator-skew bugfix: a
// timed-out run must land in the plan bucket's truncated counters, not
// among the completed samples — its partial match time is a cost floor,
// not a mean-cost observation. Before the split, one truncated run of a
// heavy query dragged the plan's "mean match time" down to the timeout
// value and the admission model under-priced everything on that plan.
func TestTruncatedRunsRecordedSeparately(t *testing.T) {
	t.Parallel()
	tgt, err := NewTarget(costClique(14), TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// A 9-leaf hom star over K14 has 14·13^9 ≈ 1.5e11 embeddings; 10 ms
	// cannot finish it.
	res, err := tgt.Enumerate(context.Background(), costStar(9), Options{
		Algorithm: RIDSSIFC, // domain-using engine: the run records a plan
		Semantics: Homomorphism,
		Timeout:   10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Fatalf("heavy query finished under 10ms (matches=%d) — test target too small", res.Matches)
	}
	if res.Plan == nil {
		t.Fatal("run recorded no preprocessing plan; cannot locate its histogram bucket")
	}
	plan := res.Plan.String()

	st := tgt.Stats()
	b := st.Plans.Bucket(plan)
	if b.Truncated != 1 || b.Count != 0 {
		t.Fatalf("bucket %q: Truncated=%d Count=%d, want 1/0 (truncated run must not count as a sample)",
			plan, b.Truncated, b.Count)
	}
	if b.TruncatedTime <= 0 {
		t.Fatalf("bucket %q: TruncatedTime=%v, want > 0", plan, b.TruncatedTime)
	}
	if b.MatchTime != 0 {
		t.Fatalf("bucket %q: MatchTime=%v leaked from a truncated run", plan, b.MatchTime)
	}

	pc := tgt.PlanCost(res.Epoch, plan)
	if pc.Samples != 0 || pc.Truncated != 1 {
		t.Fatalf("PlanCost: Samples=%d Truncated=%d, want 0/1", pc.Samples, pc.Truncated)
	}
	if pc.TruncatedMean <= 0 {
		t.Fatalf("PlanCost: TruncatedMean=%v, want > 0 (the truncated floor)", pc.TruncatedMean)
	}
	if pc.MeanMatch != 0 {
		t.Fatalf("PlanCost: MeanMatch=%v from zero completed samples", pc.MeanMatch)
	}
}

// TestEstimateCostMatchesRealRun pins the contract the admission model
// depends on: EstimateCost resolves the same preprocessing plan the real
// enumeration will record (PlanKey names the bucket the run lands in)
// and pins its verdict to the target's current epoch.
func TestEstimateCostMatchesRealRun(t *testing.T) {
	t.Parallel()
	tgt, err := NewTarget(costClique(10), TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pat := costStar(3)
	opts := Options{Algorithm: RIDSSIFC, Semantics: Homomorphism, Timeout: 5 * time.Second}

	est, err := tgt.EstimateCost(context.Background(), pat, opts)
	if err != nil {
		t.Fatal(err)
	}
	if est.Unsatisfiable {
		t.Fatal("satisfiable query estimated unsatisfiable")
	}
	if est.LogDomainProduct <= 0 {
		t.Fatalf("LogDomainProduct=%v, want > 0 for a satisfiable pattern", est.LogDomainProduct)
	}
	if est.Epoch != tgt.Epoch() {
		t.Fatalf("estimate epoch %d, target epoch %d", est.Epoch, tgt.Epoch())
	}

	res, err := tgt.Enumerate(context.Background(), pat, opts)
	if err != nil {
		t.Fatal(err)
	}
	gotPlan := "none"
	if res.Plan != nil {
		gotPlan = res.Plan.String()
	}
	if est.PlanKey != gotPlan {
		t.Fatalf("estimate PlanKey %q, real run recorded plan %q", est.PlanKey, gotPlan)
	}
	st := tgt.Stats()
	if bkt := st.Plans.Bucket(est.PlanKey); bkt.Count != 1 {
		t.Fatalf("real run did not land in the estimated bucket %q (Count=%d)", est.PlanKey, bkt.Count)
	}

	// A pattern whose label does not occur in the target must be proved
	// unsatisfiable by preprocessing — the admission model prices it free.
	lb := NewBuilder(2, 2)
	lb.AddNode(9)
	lb.AddNode(9)
	lb.AddEdgeBoth(0, 1, NoLabel)
	uest, err := tgt.EstimateCost(context.Background(), lb.MustBuild(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !uest.Unsatisfiable {
		t.Fatal("absent-label pattern not estimated unsatisfiable")
	}
	if uest.LogDomainProduct != 0 {
		t.Fatalf("unsatisfiable estimate carries LogDomainProduct=%v", uest.LogDomainProduct)
	}
}

// TestCensusTruncationRecorded: a census ended by its timeout must also
// record as truncated in the census plan bucket, keeping the census cost
// signal honest the same way query truncation does.
func TestCensusTruncationRecorded(t *testing.T) {
	t.Parallel()
	tgt, err := NewTarget(costClique(40), TargetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tgt.Census(context.Background(), CensusOptions{K: 6, Timeout: 15 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Skipf("census of C(40,6) finished under 15ms on this machine (subgraphs=%d)", res.Subgraphs)
	}
	st := tgt.Stats()
	b := st.Plans.Bucket("census:k=6")
	if b.Truncated != 1 || b.Count != 0 {
		t.Fatalf("census bucket: Truncated=%d Count=%d, want 1/0", b.Truncated, b.Count)
	}
}
