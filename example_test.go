package parsge_test

import (
	"context"
	"fmt"

	"parsge"
)

// Example enumerates a labeled triangle pattern in a small target graph.
func Example() {
	// Pattern: directed triangle with node labels 1→2→3.
	pb := parsge.NewBuilder(3, 3)
	a := pb.AddNode(1)
	b := pb.AddNode(2)
	c := pb.AddNode(3)
	pb.AddEdge(a, b, parsge.NoLabel)
	pb.AddEdge(b, c, parsge.NoLabel)
	pb.AddEdge(c, a, parsge.NoLabel)
	pattern := pb.MustBuild()

	// Target: two such triangles.
	tb := parsge.NewBuilder(6, 6)
	for i := 0; i < 2; i++ {
		x := tb.AddNode(1)
		y := tb.AddNode(2)
		z := tb.AddNode(3)
		tb.AddEdge(x, y, parsge.NoLabel)
		tb.AddEdge(y, z, parsge.NoLabel)
		tb.AddEdge(z, x, parsge.NoLabel)
	}
	target := tb.MustBuild()

	res, err := parsge.Enumerate(pattern, target, parsge.Options{Algorithm: parsge.RIDSSIFC})
	if err != nil {
		panic(err)
	}
	fmt.Println("matches:", res.Matches)
	// Output: matches: 2
}

// ExampleFindAll collects every embedding as a slice of mappings.
func ExampleFindAll() {
	pb := parsge.NewBuilder(2, 1)
	pb.AddNodes(2)
	pb.AddEdge(0, 1, parsge.NoLabel)
	pattern := pb.MustBuild()

	tb := parsge.NewBuilder(3, 2)
	tb.AddNodes(3)
	tb.AddEdge(0, 1, parsge.NoLabel)
	tb.AddEdge(1, 2, parsge.NoLabel)
	target := tb.MustBuild()

	maps, err := parsge.FindAll(pattern, target, parsge.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("embeddings:", len(maps))
	// Output: embeddings: 2
}

// ExampleNewTarget answers several pattern queries against one target
// through a session: target-side state is preprocessed once, queries
// take a context, and a batch runs over one shared worker pool.
func ExampleNewTarget() {
	// Target: a directed 5-cycle.
	tb := parsge.NewBuilder(5, 5)
	tb.AddNodes(5)
	for i := int32(0); i < 5; i++ {
		tb.AddEdge(i, (i+1)%5, parsge.NoLabel)
	}
	tgt, err := parsge.NewTarget(tb.MustBuild(), parsge.TargetOptions{})
	if err != nil {
		panic(err)
	}

	// Patterns: a directed path of length 1 and one of length 2.
	patterns := make([]*parsge.Graph, 2)
	for k := range patterns {
		pb := parsge.NewBuilder(k+2, k+1)
		pb.AddNodes(k + 2)
		for i := int32(0); i <= int32(k); i++ {
			pb.AddEdge(i, i+1, parsge.NoLabel)
		}
		patterns[k] = pb.MustBuild()
	}

	results, err := tgt.EnumerateBatch(context.Background(), patterns, parsge.Options{})
	if err != nil {
		panic(err)
	}
	for i, res := range results {
		fmt.Printf("path-%d embeddings: %d\n", i+1, res.Matches)
	}
	// Output:
	// path-1 embeddings: 5
	// path-2 embeddings: 5
}

// ExampleEnumerateStream consumes matches as they are produced.
func ExampleEnumerateStream() {
	pb := parsge.NewBuilder(1, 0)
	pb.AddNode(7)
	pattern := pb.MustBuild()

	tb := parsge.NewBuilder(4, 0)
	for i := 0; i < 4; i++ {
		tb.AddNode(7)
	}
	target := tb.MustBuild()

	matches, done := parsge.EnumerateStream(pattern, target, parsge.Options{})
	n := 0
	for range matches {
		n++
	}
	if err := <-done; err != nil {
		panic(err)
	}
	fmt.Println("streamed:", n)
	// Output: streamed: 4
}
